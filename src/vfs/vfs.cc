#include "vfs/vfs.h"

namespace cfs::vfs {

using meta::kRootInode;
using sim::Task;

Status FileSystem::SplitPath(const std::string& path, std::vector<std::string>* parts) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  parts->clear();
  size_t i = 1;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j > i) {
      std::string part = path.substr(i, j - i);
      if (part == ".") {
        // skip
      } else if (part == "..") {
        if (parts->empty()) return Status::InvalidArgument(".. above root");
        parts->pop_back();
      } else {
        parts->push_back(std::move(part));
      }
    }
    i = j + 1;
  }
  return Status::OK();
}

Attr FileSystem::ToAttr(const meta::Inode& ino) {
  Attr a;
  a.ino = ino.id;
  a.type = ino.type;
  a.size = ino.size;
  a.nlink = ino.nlink;
  a.mtime = ino.mtime;
  return a;
}

Task<Result<InodeId>> FileSystem::Resolve(std::string path, bool follow_symlink) {
  std::vector<std::string> parts;
  CFS_CO_RETURN_IF_ERROR(SplitPath(path, &parts));
  InodeId cur = kRootInode;
  int symlink_budget = 16;
  for (size_t i = 0; i < parts.size(); i++) {
    auto d = co_await client_->Lookup(cur, parts[i]);
    if (!d.ok()) co_return d.status();
    if (d->type == FileType::kSymlink && (follow_symlink || i + 1 < parts.size())) {
      if (--symlink_budget == 0) co_return Status::InvalidArgument("symlink loop");
      auto target_ino = co_await client_->GetInode(d->inode);
      if (!target_ino.ok()) co_return target_ino.status();
      // Restart resolution at the symlink target + remaining components.
      std::string rest;
      for (size_t k = i + 1; k < parts.size(); k++) rest += "/" + parts[k];
      std::string target = target_ino->link_target + rest;
      std::vector<std::string> new_parts;
      CFS_CO_RETURN_IF_ERROR(SplitPath(target, &new_parts));
      parts = std::move(new_parts);
      cur = kRootInode;
      i = static_cast<size_t>(-1);  // restart loop
      continue;
    }
    cur = d->inode;
  }
  co_return cur;
}

Task<Result<InodeId>> FileSystem::ResolveParent(const std::string& path, std::string* last) {
  std::vector<std::string> parts;
  CFS_CO_RETURN_IF_ERROR(SplitPath(path, &parts));
  if (parts.empty()) co_return Status::InvalidArgument("root has no parent");
  *last = parts.back();
  std::string parent = "/";
  for (size_t i = 0; i + 1 < parts.size(); i++) parent += parts[i] + "/";
  co_return co_await Resolve(parent);
}

// --- Directories -------------------------------------------------------------

Task<Status> FileSystem::Mkdir(std::string path) {
  std::string name;
  auto parent = co_await ResolveParent(path, &name);
  if (!parent.ok()) co_return parent.status();
  auto r = co_await client_->Create(*parent, name, FileType::kDir);
  co_return r.status();
}

Task<Status> FileSystem::Rmdir(std::string path) {
  auto ino = co_await Resolve(path);
  if (!ino.ok()) co_return ino.status();
  auto attr = co_await client_->GetInode(*ino);
  if (!attr.ok()) co_return attr.status();
  if (!attr->IsDir()) co_return Status::InvalidArgument("not a directory");
  auto entries = co_await client_->ReadDir(*ino);
  if (!entries.ok()) co_return entries.status();
  if (!entries->empty()) co_return Status::InvalidArgument("directory not empty");
  std::string name;
  auto parent = co_await ResolveParent(path, &name);
  if (!parent.ok()) co_return parent.status();
  co_return co_await client_->Unlink(*parent, name);
}

Task<Result<std::vector<DirEntry>>> FileSystem::ListDir(std::string path) {
  auto ino = co_await Resolve(path);
  if (!ino.ok()) co_return ino.status();
  auto pairs = co_await client_->ReadDirPlus(*ino);
  if (!pairs.ok()) co_return pairs.status();
  std::vector<DirEntry> out;
  out.reserve(pairs->size());
  for (auto& [dentry, inode] : *pairs) {
    out.push_back(DirEntry{dentry.name, ToAttr(inode)});
  }
  co_return out;
}

// --- Files ---------------------------------------------------------------------

Task<Result<Fd>> FileSystem::Open(std::string path, uint32_t flags) {
  auto resolved = co_await Resolve(path);
  InodeId ino = 0;
  if (resolved.ok()) {
    if ((flags & kCreate) && (flags & kExclusive)) {
      co_return Status::AlreadyExists(path);
    }
    ino = *resolved;
  } else if (resolved.status().IsNotFound() && (flags & kCreate)) {
    std::string name;
    auto parent = co_await ResolveParent(path, &name);
    if (!parent.ok()) co_return parent.status();
    auto created = co_await client_->Create(*parent, name, FileType::kFile);
    if (!created.ok()) {
      // Lost a create race: fall back to the winner's file.
      if (created.status().IsAlreadyExists() && !(flags & kExclusive)) {
        auto again = co_await Resolve(path);
        if (!again.ok()) co_return again.status();
        ino = *again;
      } else {
        co_return created.status();
      }
    } else {
      ino = created->id;
    }
  } else {
    co_return resolved.status();
  }

  CFS_CO_RETURN_IF_ERROR(co_await client_->Open(ino));
  if (flags & kTruncate) {
    CFS_CO_RETURN_IF_ERROR(co_await client_->Truncate(ino, 0));
  }
  FdState st;
  st.ino = ino;
  st.flags = flags;
  if (flags & kAppend) {
    auto inode = co_await client_->GetInode(ino);
    if (inode.ok()) st.offset = inode->size;
  }
  Fd fd = next_fd_++;
  fds_[fd] = st;
  co_return fd;
}

Task<Status> FileSystem::Close(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  InodeId ino = it->second.ino;
  fds_.erase(it);
  // Close flushes metadata only when no other descriptor references the
  // inode (last-close semantics).
  for (const auto& [ofd, st] : fds_) {
    if (st.ino == ino) co_return Status::OK();
  }
  co_return co_await client_->Close(ino);
}

Task<Status> FileSystem::Fsync(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  co_return co_await client_->Fsync(it->second.ino);
}

Task<Result<size_t>> FileSystem::Write(Fd fd, std::string data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  if (!(it->second.flags & kWrite)) co_return Status::InvalidArgument("fd not writable");
  size_t n = data.size();
  CFS_CO_RETURN_IF_ERROR(
      co_await client_->Write(it->second.ino, it->second.offset, std::move(data)));
  // Re-look the fd up: fds_ may have been mutated (open/close) while this
  // coroutine was suspended in the write, invalidating the iterator (A1).
  it = fds_.find(fd);
  if (it != fds_.end()) it->second.offset += n;
  co_return n;
}

Task<Result<size_t>> FileSystem::Pwrite(Fd fd, uint64_t offset, std::string data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  if (!(it->second.flags & kWrite)) co_return Status::InvalidArgument("fd not writable");
  size_t n = data.size();
  CFS_CO_RETURN_IF_ERROR(co_await client_->Write(it->second.ino, offset, std::move(data)));
  co_return n;
}

Task<Result<std::string>> FileSystem::Read(Fd fd, uint64_t len) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  auto r = co_await client_->Read(it->second.ino, it->second.offset, len);
  if (!r.ok()) co_return r.status();
  // Re-look the fd up: fds_ may have been mutated (open/close) while this
  // coroutine was suspended in the read, invalidating the iterator (A1).
  it = fds_.find(fd);
  if (it != fds_.end()) it->second.offset += r->size();
  co_return r->ToString();  // VFS hands out owned bytes (POSIX read semantics)
}

Task<Result<std::string>> FileSystem::Pread(Fd fd, uint64_t offset, uint64_t len) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  auto r = co_await client_->Read(it->second.ino, offset, len);
  if (!r.ok()) co_return r.status();
  co_return r->ToString();
}

Task<Result<uint64_t>> FileSystem::Seek(Fd fd, uint64_t offset) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Status::InvalidArgument("bad fd");
  it->second.offset = offset;
  co_return offset;
}

Task<Status> FileSystem::Unlink(std::string path) {
  auto ino = co_await Resolve(path, /*follow_symlink=*/false);
  if (!ino.ok()) co_return ino.status();
  auto attr = co_await client_->GetInode(*ino);
  if (attr.ok() && attr->IsDir()) co_return Status::InvalidArgument("is a directory");
  std::string name;
  auto parent = co_await ResolveParent(path, &name);
  if (!parent.ok()) co_return parent.status();
  co_return co_await client_->Unlink(*parent, name);
}

Task<Status> FileSystem::Rename(std::string from, std::string to) {
  std::string from_name, to_name;
  auto from_parent = co_await ResolveParent(from, &from_name);
  if (!from_parent.ok()) co_return from_parent.status();
  auto to_parent = co_await ResolveParent(to, &to_name);
  if (!to_parent.ok()) co_return to_parent.status();
  co_return co_await client_->Rename(*from_parent, from_name, *to_parent, to_name);
}

Task<Status> FileSystem::Truncate(std::string path, uint64_t size) {
  auto ino = co_await Resolve(path);
  if (!ino.ok()) co_return ino.status();
  co_return co_await client_->Truncate(*ino, size);
}

// --- Links ---------------------------------------------------------------------

Task<Status> FileSystem::HardLink(std::string existing, std::string link_path) {
  auto ino = co_await Resolve(existing);
  if (!ino.ok()) co_return ino.status();
  auto attr = co_await client_->GetInode(*ino);
  if (attr.ok() && attr->IsDir()) {
    co_return Status::InvalidArgument("hard links to directories are not allowed");
  }
  std::string name;
  auto parent = co_await ResolveParent(link_path, &name);
  if (!parent.ok()) co_return parent.status();
  co_return co_await client_->Link(*parent, name, *ino);
}

Task<Status> FileSystem::Symlink(std::string target, std::string link_path) {
  std::string name;
  auto parent = co_await ResolveParent(link_path, &name);
  if (!parent.ok()) co_return parent.status();
  auto r = co_await client_->Create(*parent, name, FileType::kSymlink, target);
  co_return r.status();
}

Task<Result<std::string>> FileSystem::ReadLink(std::string path) {
  auto ino = co_await Resolve(path, /*follow_symlink=*/false);
  if (!ino.ok()) co_return ino.status();
  auto inode = co_await client_->GetInode(*ino);
  if (!inode.ok()) co_return inode.status();
  if (inode->type != FileType::kSymlink) co_return Status::InvalidArgument("not a symlink");
  co_return inode->link_target;
}

// --- Metadata --------------------------------------------------------------------

Task<Result<Attr>> FileSystem::Stat(std::string path) {
  auto ino = co_await Resolve(path);
  if (!ino.ok()) co_return ino.status();
  auto inode = co_await client_->GetInode(*ino);
  if (!inode.ok()) co_return inode.status();
  co_return ToAttr(*inode);
}

Task<Result<bool>> FileSystem::Exists(std::string path) {
  auto ino = co_await Resolve(path);
  if (ino.ok()) co_return true;
  if (ino.status().IsNotFound()) co_return false;
  co_return ino.status();
}

}  // namespace cfs::vfs
