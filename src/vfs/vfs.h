// POSIX-like file-system facade over the CFS client: the in-process stand-in
// for the FUSE integration (§2.4). Provides path resolution, a file
// descriptor table, and the usual operations (open/read/write/mkdir/readdir/
// unlink/rename/symlink/stat) with CFS's relaxed consistency semantics
// (§2.7): sequential consistency, no leases, and no atomicity guarantee
// between the inode and dentry of one file beyond "a dentry always points at
// a live inode".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "client/client.h"

namespace cfs::vfs {

using client::Client;
using meta::FileType;
using meta::InodeId;

/// Open flags (subset of POSIX).
enum OpenFlags : uint32_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
  kAppend = 1u << 4,
  kExclusive = 1u << 5,  // with kCreate: fail if the path exists
};

struct Attr {
  InodeId ino = 0;
  FileType type = FileType::kFile;
  uint64_t size = 0;
  uint32_t nlink = 0;
  int64_t mtime = 0;
};

struct DirEntry {
  std::string name;
  Attr attr;
};

using Fd = int;

class FileSystem {
 public:
  explicit FileSystem(Client* client) : client_(client) {}

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // --- Directories ---
  sim::Task<Status> Mkdir(std::string path);
  sim::Task<Status> Rmdir(std::string path);  // fails on non-empty dirs
  sim::Task<Result<std::vector<DirEntry>>> ListDir(std::string path);

  // --- Files ---
  sim::Task<Result<Fd>> Open(std::string path, uint32_t flags);
  sim::Task<Status> Close(Fd fd);
  sim::Task<Status> Fsync(Fd fd);

  /// Write at the descriptor's offset; advances it.
  sim::Task<Result<size_t>> Write(Fd fd, std::string data);
  /// Positional write; does not move the offset.
  sim::Task<Result<size_t>> Pwrite(Fd fd, uint64_t offset, std::string data);
  /// Read up to `len` bytes at the descriptor's offset; advances it.
  sim::Task<Result<std::string>> Read(Fd fd, uint64_t len);
  sim::Task<Result<std::string>> Pread(Fd fd, uint64_t offset, uint64_t len);

  sim::Task<Result<uint64_t>> Seek(Fd fd, uint64_t offset);

  sim::Task<Status> Unlink(std::string path);
  sim::Task<Status> Rename(std::string from, std::string to);
  sim::Task<Status> Truncate(std::string path, uint64_t size);

  // --- Links ---
  sim::Task<Status> HardLink(std::string existing, std::string link_path);
  sim::Task<Status> Symlink(std::string target, std::string link_path);
  sim::Task<Result<std::string>> ReadLink(std::string path);

  // --- Metadata ---
  sim::Task<Result<Attr>> Stat(std::string path);
  sim::Task<Result<bool>> Exists(std::string path);

  Client* client() { return client_; }
  size_t open_fds() const { return fds_.size(); }

  /// Per-RPC metrics of the mounted client (every meta/data/master leg this
  /// file system issued); see rpc/metrics.h.
  const rpc::MetricRegistry& rpc_metrics() const { return client_->rpc_metrics(); }

 private:
  struct FdState {
    InodeId ino = 0;
    uint64_t offset = 0;
    uint32_t flags = 0;
  };

  /// Split "/a/b/c" into components; rejects empty and non-absolute paths.
  static Status SplitPath(const std::string& path, std::vector<std::string>* parts);

  /// Resolve a path to its inode, following symlinks (bounded depth).
  /// With `want_parent`, resolves to the parent directory and returns the
  /// final component in `last`.
  sim::Task<Result<InodeId>> Resolve(std::string path, bool follow_symlink = true);
  sim::Task<Result<InodeId>> ResolveParent(const std::string& path, std::string* last);

  static Attr ToAttr(const meta::Inode& ino);

  Client* client_;
  std::map<Fd, FdState> fds_;
  Fd next_fd_ = 3;  // 0-2 reserved, as tradition demands
};

}  // namespace cfs::vfs
