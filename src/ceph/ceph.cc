#include "ceph/ceph.h"

#include <algorithm>

#include "common/logging.h"

namespace cfs::ceph {

using sim::Spawn;
using sim::Task;

namespace {
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

// --- Mds -----------------------------------------------------------------------

Mds::Mds(CephCluster* cluster, sim::Host* host, int index)
    : cluster_(cluster),
      host_(host),
      index_(index),
      journal_(cluster->sched(), cluster->options().journal_lanes),
      dispatch_(cluster->sched(), cluster->options().mds_dispatch_lanes) {}

bool Mds::TouchCache(InodeId ino) {
  auto it = resident_.find(ino);
  if (it != resident_.end()) {
    lru_.erase(it->second);
    lru_.push_front(ino);
    it->second = lru_.begin();
    cache_hits_++;
    return false;
  }
  cache_misses_++;
  lru_.push_front(ino);
  resident_[ino] = lru_.begin();
  while (resident_.size() > cluster_->options().mds_cache_capacity) {
    resident_.erase(lru_.back());
    lru_.pop_back();
  }
  return true;
}

Task<void> Mds::ChargeMiss() {
  // Metadata-pool read from the local disk (§4.3: cache misses cause
  // "frequent disk IOs").
  (void)co_await host_->disk(cluster_->options().metadata_pool_disk)->Read(4 * kKiB);
}

Task<void> Mds::Journal() {
  // Metadata update commit through the (mostly serial) MDS journal.
  co_await journal_.Use(cluster_->options().journal_service);
  (void)co_await host_->disk(cluster_->options().metadata_pool_disk)->Write(512);
}

void Mds::AdoptDirectory(InodeId dir, DirBundle bundle) {
  for (auto& [ino, rec] : bundle.inodes) inodes_[ino] = rec;
  dirs_[dir] = std::move(bundle.entries);
}

Mds::DirBundle Mds::YieldDirectory(InodeId dir) {
  DirBundle bundle;
  auto it = dirs_.find(dir);
  if (it == dirs_.end()) return bundle;
  bundle.entries = std::move(it->second);
  for (const auto& [name, ino] : bundle.entries) {
    auto iit = inodes_.find(ino);
    if (iit != inodes_.end()) {
      bundle.inodes[ino] = iit->second;
      inodes_.erase(iit);
    }
  }
  dirs_.erase(it);
  hot_dirs_.erase(dir);
  return bundle;
}

size_t Mds::DirectorySize(InodeId dir) const {
  auto it = dirs_.find(dir);
  return it == dirs_.end() ? 0 : it->second.size();
}

Task<MdsResp> Mds::Handle(MdsReq req) {
  MdsResp resp;
  ops_++;
  window_ops_++;
  hot_dirs_[req.dir]++;
  co_await dispatch_.Use(cluster_->options().mds_dispatch_service);
  co_await host_->cpu().Use(cluster_->options().mds_cpu_per_op);

  // Authority check: if this directory was rebalanced away, proxy the
  // request to the current authority (the "extra overheads" of §4.2).
  int authority = cluster_->AuthorityOf(req.dir);
  if (authority != index_ && !req.internal) {
    MdsReq fwd = req;
    fwd.internal = true;
    auto r = co_await cluster_->channel()->Unary<MdsReq, MdsResp>(
        host_->id(), cluster_->mds_host(authority)->id(), std::move(fwd), 2 * kSec);
    if (!r.ok()) {
      resp.status = r.status();
      co_return resp;
    }
    co_return std::move(*r);
  }

  switch (req.op) {
    case MetaOp::kMkdir:
    case MetaOp::kCreate: {
      auto& dir = dirs_[req.dir];
      if (dir.count(req.name)) {
        resp.status = Status::AlreadyExists(req.name);
        co_return resp;
      }
      CephInode ino;
      ino.id = cluster_->AllocInode();
      ino.is_dir = req.op == MetaOp::kMkdir;
      dir[req.name] = ino.id;
      inodes_[ino.id] = ino;
      if (TouchCache(ino.id)) {
        // Fresh inode is resident by construction; no miss IO.
      }
      // New directories take their hash authority (the paper's setup bonds
      // each directory to a specific MDS "to maximize the concurrency").
      // All metadata of one directory stays on that single MDS — the
      // directory-locality property the comparison hinges on.
      co_await Journal();
      resp.inode = ino;
      resp.status = Status::OK();
      co_return resp;
    }
    case MetaOp::kLookup: {
      auto dit = dirs_.find(req.dir);
      if (dit == dirs_.end() || !dit->second.count(req.name)) {
        resp.status = Status::NotFound(req.name);
        co_return resp;
      }
      InodeId ino = dit->second[req.name];
      if (TouchCache(ino)) co_await ChargeMiss();
      resp.inode = inodes_[ino];
      resp.status = Status::OK();
      co_return resp;
    }
    case MetaOp::kInodeGet: {
      auto it = inodes_.find(req.ino);
      if (it == inodes_.end()) {
        resp.status = Status::NotFound("inode");
        co_return resp;
      }
      // Copy before the cache-miss suspension: a concurrent remove can erase
      // the inode while this coroutine is parked, invalidating `it` (A1).
      resp.inode = it->second;
      if (TouchCache(req.ino)) co_await ChargeMiss();
      resp.status = Status::OK();
      co_return resp;
    }
    case MetaOp::kReaddir: {
      auto dit = dirs_.find(req.dir);
      if (dit == dirs_.end()) {
        resp.status = Status::OK();  // empty
        co_return resp;
      }
      for (const auto& [name, ino] : dit->second) {
        resp.entries.emplace_back(name, ino);
      }
      resp.status = Status::OK();
      co_return resp;
    }
    case MetaOp::kRemove:
    case MetaOp::kRmdir: {
      auto dit = dirs_.find(req.dir);
      if (dit == dirs_.end() || !dit->second.count(req.name)) {
        resp.status = Status::NotFound(req.name);
        co_return resp;
      }
      InodeId ino = dit->second[req.name];
      if (req.op == MetaOp::kRmdir) {
        // The victim directory's entries live at ITS authority MDS, which
        // may differ from the parent's; check emptiness there.
        int child_auth = cluster_->AuthorityOf(ino);
        size_t count = 0;
        if (child_auth == index_) {
          count = DirectorySize(ino);
        } else {
          MdsReq probe;
          probe.op = MetaOp::kReaddir;
          probe.dir = ino;
          probe.internal = true;
          auto r = co_await cluster_->channel()->Unary<MdsReq, MdsResp>(
              host_->id(), cluster_->mds_host(child_auth)->id(), std::move(probe), 2 * kSec);
          if (!r.ok()) {
            resp.status = r.status();
            co_return resp;
          }
          count = r->entries.size();
        }
        if (count > 0) {
          resp.status = Status::InvalidArgument("directory not empty");
          co_return resp;
        }
      }
      if (TouchCache(ino)) co_await ChargeMiss();
      // Re-look the parent up: dirs_ may have been mutated while this
      // coroutine was suspended in the readdir probe / cache-miss charge
      // above, invalidating the earlier iterator (A1).
      dit = dirs_.find(req.dir);
      if (dit != dirs_.end()) dit->second.erase(req.name);
      inodes_.erase(ino);
      if (req.op == MetaOp::kRmdir) dirs_.erase(ino);
      co_await Journal();
      resp.status = Status::OK();
      co_return resp;
    }
    case MetaOp::kSetSize: {
      auto it = inodes_.find(req.ino);
      if (it == inodes_.end()) {
        resp.status = Status::NotFound("inode");
        co_return resp;
      }
      it->second.size = std::max(it->second.size, req.size);
      co_await Journal();
      resp.status = Status::OK();
      co_return resp;
    }
  }
  resp.status = Status::InvalidArgument("bad op");
  co_return resp;
}

// --- CephCluster ------------------------------------------------------------------

CephCluster::CephCluster(sim::Scheduler* sched, sim::Network* net, const CephOptions& opts)
    : sched_(sched), net_(net), opts_(opts), channel_(net, &rpc_metrics_) {
  for (int i = 0; i < opts_.num_nodes; i++) {
    sim::HostOptions ho;
    ho.num_disks = opts_.osds_per_node;
    sim::Host* h = net_->AddHost(ho);
    hosts_.push_back(h);
    mds_.push_back(std::make_unique<Mds>(this, h, i));
    onode_caches_.emplace_back();
    osd_queues_.push_back(std::make_unique<sim::Resource>(
        sched_, opts_.osd_op_num_shards * opts_.osd_threads_per_shard));
    kv_lanes_.push_back(std::make_unique<sim::Resource>(sched_, opts_.kv_lanes));
    // Route MDS requests.
    Mds* m = mds_.back().get();
    h->Register<MdsReq, MdsResp>([m](MdsReq req, sim::NodeId) -> Task<MdsResp> {
      return m->Handle(std::move(req));
    });
    RegisterOsdHandlers(h, i);
  }
  // Root directory authority: MDS 0.
  SetAuthority(kCephRoot, 0);
  Spawn(RebalanceLoop());
}

int CephCluster::HashAuthority(InodeId dir) const {
  return static_cast<int>(Mix(dir) % mds_.size());
}

int CephCluster::AuthorityOf(InodeId dir) const {
  auto it = authority_override_.find(dir);
  if (it != authority_override_.end()) return it->second;
  return HashAuthority(dir);
}

void CephCluster::SetAuthority(InodeId dir, int mds) { authority_override_[dir] = mds; }

bool CephCluster::RecentlyMoved(InodeId dir) const {
  auto it = moved_at_.find(dir);
  if (it == moved_at_.end()) return false;
  return sched_->Now() - it->second < opts_.proxy_penalty_window;
}

std::vector<sim::NodeId> CephCluster::PlaceObject(ObjectId object) const {
  std::vector<sim::NodeId> out;
  uint64_t h = Mix(object);
  for (uint32_t i = 0; i < opts_.replica_factor; i++) {
    out.push_back(hosts_[(h + i * 0x9e3779b9u) % hosts_.size()]->id());
  }
  return out;
}

bool CephCluster::TouchOnode(int node_index, ObjectId object) {
  OnodeCache& c = onode_caches_[node_index];
  auto it = c.resident.find(object);
  if (it != c.resident.end()) {
    c.lru.erase(it->second);
    c.lru.push_front(object);
    it->second = c.lru.begin();
    return false;
  }
  onode_misses_++;
  c.lru.push_front(object);
  c.resident[object] = c.lru.begin();
  while (c.resident.size() > opts_.osd_onode_cache) {
    c.resident.erase(c.lru.back());
    c.lru.pop_back();
  }
  return true;
}

void CephCluster::RegisterOsdHandlers(sim::Host* host, int node_index) {
  sim::Resource* queue = osd_queues_[node_index].get();
  sim::Resource* kv = kv_lanes_[node_index].get();
  host->Register<OsdWriteReq, OsdWriteResp>(
      [this, host, queue, kv, node_index](OsdWriteReq req, sim::NodeId) -> Task<OsdWriteResp> {
        // Sharded op queue -> journal write -> data write -> kv commit ->
        // (overwrites: another queue walk + metadata sync) -> replicate.
        co_await queue->Use(opts_.osd_op_cost);
        co_await host->cpu().Use(opts_.osd_op_cost);
        int disk = static_cast<int>(req.object % host->num_disks());
        if (TouchOnode(node_index, req.object)) {
          // Cold onode: metadata walk through the kv store (§4.3).
          co_await kv->Use(opts_.kv_lookup_service);
          (void)co_await host->disk(disk)->Read(4 * kKiB);
          (void)co_await host->disk(disk)->Read(4 * kKiB);
        }
        (void)co_await host->disk(disk)->Write(req.len);  // journal (write amp)
        (void)co_await host->disk(disk)->Write(req.len);  // data apply
        co_await kv->Use(opts_.kv_commit_service);        // kv commit
        if (req.is_overwrite) {
          // "Only after the data and metadata have been persisted and
          // synchronized, the commit message can be returned" (§4.3).
          co_await queue->Use(opts_.osd_op_cost);
          (void)co_await host->disk(disk)->Write(4 * kKiB);
        }
        if (req.fanout_index == 0) {
          // Primary replicates to the remaining copies in parallel.
          auto placement = PlaceObject(req.object);
          sim::Join join(sched_, static_cast<int>(placement.size()) - 1);
          for (uint32_t i = 1; i < placement.size(); i++) {
            OsdWriteReq sub = req;
            sub.fanout_index = i;
            Spawn([](CephCluster* c, sim::NodeId from, sim::NodeId to, OsdWriteReq sub,
                     std::function<void()> done) -> Task<void> {
              (void)co_await c->channel()->Unary<OsdWriteReq, OsdWriteResp>(
                  from, to, std::move(sub), 5 * kSec);
              done();
            }(this, host->id(), placement[i], std::move(sub), join.Arrive()));
          }
          co_await join.Wait();
        }
        co_return OsdWriteResp{Status::OK()};
      });

  host->Register<OsdReadReq, OsdReadResp>(
      [this, host, queue, kv, node_index](OsdReadReq req, sim::NodeId) -> Task<OsdReadResp> {
        co_await queue->Use(opts_.osd_op_cost);
        co_await host->cpu().Use(opts_.osd_op_cost);
        int disk = static_cast<int>(req.object % host->num_disks());
        if (TouchOnode(node_index, req.object)) {
          // Cold onode: metadata walk through the kv store (§4.3).
          co_await kv->Use(opts_.kv_lookup_service);
          (void)co_await host->disk(disk)->Read(4 * kKiB);
          (void)co_await host->disk(disk)->Read(4 * kKiB);
        }
        (void)co_await host->disk(disk)->Read(req.len);
        OsdReadResp resp;
        resp.status = Status::OK();
        resp.len = req.len;
        co_return resp;
      });
}

Task<void> CephCluster::RebalanceLoop() {
  // Dynamic subtree rebalancing: move the hottest directories off the most
  // loaded MDS when imbalance exceeds the threshold (§4.2).
  while (true) {
    co_await sim::SleepFor{*sched_, opts_.rebalance_interval};
    std::vector<uint64_t> load;
    uint64_t total = 0;
    for (auto& m : mds_) {
      load.push_back(m->TakeLoad());
      total += load.back();
    }
    if (total == 0) continue;
    uint64_t avg = total / load.size();
    auto hottest = static_cast<int>(
        std::max_element(load.begin(), load.end()) - load.begin());
    if (avg == 0 || load[hottest] < avg * opts_.rebalance_imbalance_factor) continue;
    // Move the busiest directory from the hottest MDS to the least loaded.
    auto coldest = static_cast<int>(
        std::min_element(load.begin(), load.end()) - load.begin());
    Mds* src = mds_[hottest].get();
    InodeId victim = 0;
    uint64_t best = 0;
    for (auto& [dir, n] : src->hot_dirs()) {
      if (n > best && AuthorityOf(dir) == hottest) {
        best = n;
        victim = dir;
      }
    }
    src->hot_dirs().clear();
    if (victim == 0) continue;
    // Migration: ship the directory's entries to the new authority; charge
    // network + CPU proportional to the metadata moved.
    auto bundle = src->YieldDirectory(victim);
    size_t items = bundle.entries.size();
    mds_[coldest]->AdoptDirectory(victim, std::move(bundle));
    SetAuthority(victim, coldest);
    moved_at_[victim] = sched_->Now();
    rebalances_++;
    (void)co_await mds_host(hottest)->cpu().Use(static_cast<SimDuration>(items) * 2);
    LOG_DEBUG("ceph rebalance: dir ", victim, " mds ", hottest, " -> ", coldest, " (",
              items, " items)");
  }
}

// --- CephClient -----------------------------------------------------------------

CephClient::CephClient(CephCluster* cluster, sim::Host* host)
    : cluster_(cluster), host_(host) {}

Task<Result<MdsResp>> CephClient::CallMds(InodeId dir, MdsReq req) {
  meta_rpcs_++;
  co_await host_->cpu().Use(cluster_->options().client_cpu_per_op);
  // Clients route by the static hash placement; directories that the
  // balancer moved get forwarded by the hash MDS to the current authority —
  // the "proxy MDS" overhead of §4.2.
  int authority = cluster_->HashAuthority(dir);
  auto r = co_await cluster_->channel()->Unary<MdsReq, MdsResp>(
      host_->id(), cluster_->mds_host(authority)->id(), std::move(req), 5 * kSec);
  if (!r.ok()) co_return r.status();
  co_return std::move(*r);
}

Task<Result<InodeId>> CephClient::Mkdir(InodeId parent, std::string name) {
  MdsReq req;
  req.op = MetaOp::kMkdir;
  req.dir = parent;
  req.name = std::move(name);
  auto r = co_await CallMds(parent, std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return r->inode.id;
}

Task<Result<InodeId>> CephClient::Create(InodeId parent, std::string name) {
  MdsReq req;
  req.op = MetaOp::kCreate;
  req.dir = parent;
  req.name = std::move(name);
  auto r = co_await CallMds(parent, std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return r->inode.id;
}

Task<Result<CephInode>> CephClient::Lookup(InodeId parent, std::string name) {
  MdsReq req;
  req.op = MetaOp::kLookup;
  req.dir = parent;
  req.name = std::move(name);
  auto r = co_await CallMds(parent, std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return r->inode;
}

Task<Result<CephInode>> CephClient::InodeGet(InodeId ino, InodeId authority_dir) {
  MdsReq req;
  req.op = MetaOp::kInodeGet;
  req.dir = authority_dir;
  req.ino = ino;
  auto r = co_await CallMds(authority_dir, std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return r->inode;
}

Task<Result<std::vector<std::pair<std::string, CephInode>>>> CephClient::ReaddirPlus(
    InodeId dir) {
  MdsReq req;
  req.op = MetaOp::kReaddir;
  req.dir = dir;
  auto r = co_await CallMds(dir, std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  // "Each readdir request is followed by a set of inodeGet requests to fetch
  // all the inodes in the current directory" (§4.2).
  std::vector<std::pair<std::string, CephInode>> out;
  for (auto& [name, ino] : r->entries) {
    auto g = co_await InodeGet(ino, dir);
    if (!g.ok()) co_return g.status();
    out.emplace_back(name, *g);
  }
  co_return out;
}

Task<Status> CephClient::Remove(InodeId parent, std::string name) {
  MdsReq req;
  req.op = MetaOp::kRemove;
  req.dir = parent;
  req.name = std::move(name);
  auto r = co_await CallMds(parent, std::move(req));
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

Task<Status> CephClient::Rmdir(InodeId parent, std::string name) {
  MdsReq req;
  req.op = MetaOp::kRmdir;
  req.dir = parent;
  req.name = std::move(name);
  auto r = co_await CallMds(parent, std::move(req));
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

Task<Status> CephClient::Write(InodeId ino, InodeId parent_dir, uint64_t offset,
                               uint64_t len, bool is_overwrite) {
  data_rpcs_++;
  co_await host_->cpu().Use(cluster_->options().client_cpu_per_op);
  const uint64_t obj_size = cluster_->options().object_size;
  uint64_t end = offset + len;
  while (offset < end) {
    uint64_t idx = offset / obj_size;
    uint64_t in_obj = offset % obj_size;
    uint64_t piece = std::min(end - offset, obj_size - in_obj);
    ObjectId object = (ino << 20) | idx;
    auto placement = cluster_->PlaceObject(object);
    OsdWriteReq req;
    req.object = object;
    req.offset = in_obj;
    req.len = piece;
    req.is_overwrite = is_overwrite;
    auto r = co_await cluster_->channel()->Unary<OsdWriteReq, OsdWriteResp>(
        host_->id(), placement[0], std::move(req), 10 * kSec);
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
    offset += piece;
  }
  // Appends must also persist the new size at the MDS before the write is
  // durable ("data and metadata persisted and synchronized", §4.3).
  if (!is_overwrite && parent_dir != 0) {
    MdsReq req;
    req.op = MetaOp::kSetSize;
    req.dir = parent_dir;
    req.ino = ino;
    req.size = end;
    auto r = co_await CallMds(parent_dir, std::move(req));
    if (!r.ok()) co_return r.status();
    co_return r->status;
  }
  co_return Status::OK();
}

Task<Status> CephClient::Read(InodeId ino, uint64_t offset, uint64_t len) {
  data_rpcs_++;
  co_await host_->cpu().Use(cluster_->options().client_cpu_per_op);
  const uint64_t obj_size = cluster_->options().object_size;
  uint64_t end = offset + len;
  while (offset < end) {
    uint64_t idx = offset / obj_size;
    uint64_t in_obj = offset % obj_size;
    uint64_t piece = std::min(end - offset, obj_size - in_obj);
    ObjectId object = (ino << 20) | idx;
    auto placement = cluster_->PlaceObject(object);
    OsdReadReq req;
    req.object = object;
    req.offset = in_obj;
    req.len = piece;
    auto r = co_await cluster_->channel()->Unary<OsdReadReq, OsdReadResp>(
        host_->id(), placement[0], std::move(req), 10 * kSec);
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
    offset += piece;
  }
  co_return Status::OK();
}

}  // namespace cfs::ceph
