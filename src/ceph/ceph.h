// A behavioural model of Ceph (v12, bluestore) as configured in the paper's
// evaluation (§4.1): 10 machines, 16 OSDs + 1 MDS per machine, 3-way
// replication, tuned osd_op_num_shards=6 / threads_per_shard=4.
//
// The model captures exactly the mechanisms the paper uses to explain every
// comparative result:
//  * directory-locality metadata placement: a directory's dentries+inodes
//    live on one MDS (good cache reuse at low concurrency, hotspots at high);
//  * bounded MDS inode cache: misses read from the RADOS metadata pool
//    (§4.3: "the cache miss rate can be increased dramatically...");
//  * dynamic subtree rebalancing with proxy forwarding (§4.2 TreeCreation);
//  * per-update journaling: metadata ops commit through the MDS journal;
//  * readdir followed by per-inode inodeGet requests (vs CFS batchInodeGet);
//  * OSD writes that walk sharded op queues and persist journal + data +
//    metadata before ack (§4.3: why overwrites are slow);
//  * client-side data path striped over 4 MiB objects placed by a
//    CRUSH-style hash.
//
// It is NOT a reimplementation of Ceph; it is the paper's explanatory model
// made executable, running on the same simulation substrate (hosts, NICs,
// disks) as CFS so the comparison is apples-to-apples.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "rpc/channel.h"
#include "rpc/metrics.h"
#include "sim/network.h"
#include "sim/task.h"

namespace cfs::ceph {

using InodeId = uint64_t;
using ObjectId = uint64_t;

struct CephOptions {
  int num_nodes = 10;       // MDS + 16 OSDs per machine (§4.1)
  int osds_per_node = 16;
  uint32_t replica_factor = 3;
  uint64_t object_size = 4 * kMiB;

  /// MDS knobs.
  uint64_t mds_cache_capacity = 48 * 1024;  // resident inodes per MDS
  SimDuration mds_cpu_per_op = 12;
  /// The MDS dispatch path is mostly single-threaded; requests serialize
  /// through a small number of dispatch lanes.
  int mds_dispatch_lanes = 2;
  SimDuration mds_dispatch_service = 70;
  /// Journal commit: mostly-serial append to the RADOS journal; the group
  /// commit pipeline is modelled as a few lanes with a per-op service time.
  int journal_lanes = 1;
  SimDuration journal_service = 350;
  /// Cache miss: synchronous read from the local metadata-pool disk.
  int metadata_pool_disk = 0;

  /// Dynamic subtree rebalancing (§4.2).
  SimDuration rebalance_interval = 2 * kSec;
  double rebalance_imbalance_factor = 2.0;
  /// Forwarded (proxied) request overhead window after a directory moves.
  SimDuration proxy_penalty_window = 2 * kSec;

  /// OSD knobs (paper-tuned).
  int osd_op_num_shards = 6;
  int osd_threads_per_shard = 4;
  SimDuration osd_op_cost = 15;        // per queue stage
  SimDuration client_cpu_per_op = 6;
  /// Bounded per-node object-metadata (onode) cache: IO on an object that
  /// fell out pays an extra metadata disk read (§4.3: "each MDS/metadata
  /// cache holds a portion ... cache miss rate increases dramatically").
  uint64_t osd_onode_cache = 512;
  /// bluestore kv-commit lanes per node: small writes and cold-onode walks
  /// serialize through RocksDB compaction/commit threads.
  int kv_lanes = 2;
  SimDuration kv_commit_service = 100;
  SimDuration kv_lookup_service = 100;
};

struct CephInode {
  InodeId id = 0;
  bool is_dir = false;
  uint64_t size = 0;
};

/// One MDS process. Owns the metadata of the directories it is authoritative
/// for; caches a bounded number of inodes in memory.
class Mds;
/// One machine running 1 MDS + 16 OSDs.
class CephCluster;

// --- Wire messages -----------------------------------------------------------

enum class MetaOp : uint8_t {
  kMkdir = 1,
  kCreate = 2,
  kLookup = 3,
  kInodeGet = 4,
  kReaddir = 5,
  kRemove = 6,
  kRmdir = 7,
  kSetSize = 8,
};

struct MdsReq {
  static constexpr const char* kRpcName = "Mds";
  MetaOp op = MetaOp::kLookup;
  InodeId dir = 0;       // directory the op targets (authority routing key)
  std::string name;      // entry name (create/lookup/remove)
  InodeId ino = 0;       // inodeGet / setsize target
  uint64_t size = 0;     // setsize
  bool is_dir = false;   // create
  bool internal = false; // proxied from another MDS (no second forward)
  size_t WireBytes() const { return 64 + name.size(); }
};
struct MdsResp {
  Status status;
  CephInode inode;
  std::vector<std::pair<std::string, InodeId>> entries;  // readdir
  size_t WireBytes() const { return 64 + entries.size() * 48; }
};

struct OsdWriteReq {
  static constexpr const char* kRpcName = "OsdWrite";
  ObjectId object = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
  bool is_overwrite = false;
  uint32_t fanout_index = 0;  // 0 = primary
  size_t WireBytes() const { return 64 + len; }
};
struct OsdWriteResp {
  Status status;
};
struct OsdReadReq {
  static constexpr const char* kRpcName = "OsdRead";
  ObjectId object = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
};
struct OsdReadResp {
  Status status;
  uint64_t len = 0;
  size_t WireBytes() const { return 32 + len; }
};

// --- MDS ----------------------------------------------------------------------

class Mds {
 public:
  Mds(CephCluster* cluster, sim::Host* host, int index);

  sim::Task<MdsResp> Handle(MdsReq req);

  uint64_t ops() const { return ops_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t cache_hits() const { return cache_hits_; }
  /// Per-directory op counts since the last rebalance tick.
  std::map<InodeId, uint64_t>& hot_dirs() { return hot_dirs_; }
  uint64_t TakeLoad() {
    uint64_t l = window_ops_;
    window_ops_ = 0;
    return l;
  }

  /// Authority transfer (rebalancer): a directory moves with its dentries
  /// AND the inode records of its children.
  struct DirBundle {
    std::map<std::string, InodeId> entries;
    std::map<InodeId, CephInode> inodes;
  };
  void AdoptDirectory(InodeId dir, DirBundle bundle);
  DirBundle YieldDirectory(InodeId dir);
  size_t DirectorySize(InodeId dir) const;

 private:
  /// Touch an inode in the LRU cache; returns true on a miss (charged by the
  /// caller as a metadata-pool disk read).
  bool TouchCache(InodeId ino);
  sim::Task<void> ChargeMiss();
  sim::Task<void> Journal();

  CephCluster* cluster_;
  sim::Host* host_;
  int index_;

  /// dir inode -> (name -> child inode id). Authority-local directories.
  std::map<InodeId, std::map<std::string, InodeId>> dirs_;
  std::map<InodeId, CephInode> inodes_;  // the "on-disk" metadata pool view

  /// LRU inode cache (bounded; §4.3). Ordered map: the residency index is
  /// point-queried on the hot path, and keeping it ordered guarantees any
  /// future iteration (debug dumps, deep checks) is deterministic.
  std::list<InodeId> lru_;
  std::map<InodeId, std::list<InodeId>::iterator> resident_;

  sim::Resource journal_;
  sim::Resource dispatch_;
  uint64_t ops_ = 0;
  uint64_t window_ops_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  std::map<InodeId, uint64_t> hot_dirs_;
};

// --- Cluster --------------------------------------------------------------------

class CephCluster {
 public:
  CephCluster(sim::Scheduler* sched, sim::Network* net, const CephOptions& opts = {});

  const CephOptions& options() const { return opts_; }
  sim::Network* net() { return net_; }
  sim::Scheduler* sched() { return sched_; }
  /// Metered channel all Ceph-model RPC legs go through (MDS forwards, OSD
  /// replication, client calls). One registry for the whole model cluster.
  rpc::Channel* channel() { return &channel_; }
  const rpc::MetricRegistry& rpc_metrics() const { return rpc_metrics_; }

  /// Authority MDS index for a directory (hash placement + rebalancing
  /// moves). Clients use this to route; stale routes get proxied.
  int AuthorityOf(InodeId dir) const;
  int HashAuthority(InodeId dir) const;
  void SetAuthority(InodeId dir, int mds);
  bool RecentlyMoved(InodeId dir) const;

  Mds* mds(int i) { return mds_[i].get(); }
  sim::Host* mds_host(int i) { return hosts_[i]; }
  int num_mds() const { return static_cast<int>(mds_.size()); }

  InodeId AllocInode() { return next_inode_++; }

  /// CRUSH-ish: object -> primary node + replica nodes.
  std::vector<sim::NodeId> PlaceObject(ObjectId object) const;
  sim::Host* host_of(sim::NodeId id) { return net_->host(id); }

  uint64_t rebalances() const { return rebalances_; }

 private:
  void RegisterOsdHandlers(sim::Host* host, int node_index);
  sim::Task<void> RebalanceLoop();

  sim::Scheduler* sched_;
  sim::Network* net_;
  CephOptions opts_;
  rpc::MetricRegistry rpc_metrics_;
  rpc::Channel channel_;
  std::vector<sim::Host*> hosts_;
  std::vector<std::unique_ptr<Mds>> mds_;
  /// Per (node, shard-pool) op queues: osd_op_num_shards * threads_per_shard.
  std::vector<std::unique_ptr<sim::Resource>> osd_queues_;
  std::vector<std::unique_ptr<sim::Resource>> kv_lanes_;
  /// Per-node onode LRU (object metadata cache). Ordered for the same
  /// determinism reason as the MDS inode cache above.
  struct OnodeCache {
    std::list<ObjectId> lru;
    std::map<ObjectId, std::list<ObjectId>::iterator> resident;
  };
  std::vector<OnodeCache> onode_caches_;
  /// Touch; returns true on miss.
  bool TouchOnode(int node_index, ObjectId object);

 public:
  uint64_t onode_misses() const { return onode_misses_; }

 private:
  uint64_t onode_misses_ = 0;
  std::map<InodeId, int> authority_override_;
  std::map<InodeId, SimTime> moved_at_;
  InodeId next_inode_ = 2;  // 1 = root
  uint64_t rebalances_ = 0;
};

// --- Client ----------------------------------------------------------------------

class CephClient {
 public:
  CephClient(CephCluster* cluster, sim::Host* host);

  // Metadata (each op routes to the directory's authority MDS; stale
  // authority knowledge costs a proxy hop inside the MDS).
  sim::Task<Result<InodeId>> Mkdir(InodeId parent, std::string name);
  sim::Task<Result<InodeId>> Create(InodeId parent, std::string name);
  sim::Task<Result<CephInode>> Lookup(InodeId parent, std::string name);
  sim::Task<Result<CephInode>> InodeGet(InodeId ino, InodeId authority_dir);
  /// readdir + one inodeGet per entry (§4.2's contrast with batchInodeGet).
  sim::Task<Result<std::vector<std::pair<std::string, CephInode>>>> ReaddirPlus(InodeId dir);
  sim::Task<Status> Remove(InodeId parent, std::string name);
  sim::Task<Status> Rmdir(InodeId parent, std::string name);

  // Data: striped over objects, placed by CRUSH, written through the
  // primary with 2 replicas, journal+data+metadata persisted before ack.
  sim::Task<Status> Write(InodeId ino, InodeId parent_dir, uint64_t offset, uint64_t len,
                          bool is_overwrite);
  sim::Task<Status> Read(InodeId ino, uint64_t offset, uint64_t len);

  uint64_t meta_rpcs() const { return meta_rpcs_; }
  uint64_t data_rpcs() const { return data_rpcs_; }
  sim::Scheduler* cluster_sched() { return cluster_->sched(); }

 private:
  sim::Task<Result<MdsResp>> CallMds(InodeId dir, MdsReq req);

  CephCluster* cluster_;
  sim::Host* host_;
  uint64_t meta_rpcs_ = 0;
  uint64_t data_rpcs_ = 0;
};

constexpr InodeId kCephRoot = 1;

}  // namespace cfs::ceph
