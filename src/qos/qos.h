// Deterministic QoS primitives for multi-tenant admission (ROADMAP item 3):
//
//   TokenBucket    — virtual-time GCRA rate limiter charged at each mount
//                    (per-tenant IOPS and byte ceilings). Reserve() computes
//                    the delay an op must wait before it conforms; the caller
//                    sleeps that long on the sim clock. O(1) state, zero RNG,
//                    zero scheduler events when unconfigured (rate 0).
//
//   AdmissionQueue — weighted-fair queueing in front of meta/data handler
//                    dispatch. Each tenant gets a FIFO of waiters tagged with
//                    a virtual finish time (cost scaled by 1/weight); the
//                    queue admits the smallest tag first, so long-run service
//                    shares converge to the weight ratio while requests of
//                    one tenant never reorder among themselves. Disabled
//                    (slots 0) it admits synchronously with no suspension and
//                    no events — the default, keeping pinned bench schedules
//                    byte-identical.
//
// Everything runs on the single-threaded sim scheduler: ordered containers
// only, waiters resume via Scheduler::After(0, ...) like sim::Semaphore, and
// all time is virtual, so same-seed runs stay byte-identical (the QoS knobs
// themselves are part of the seed/config, not of wall-clock state).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/units.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace cfs::qos {

using TenantId = uint64_t;

/// Generic cell rate algorithm on the virtual clock. `rate` is units/sec
/// (ops or bytes), `burst` is the instantaneous credit. Rate 0 = unlimited.
class TokenBucket {
 public:
  void Configure(uint64_t rate_per_sec, uint64_t burst) {
    rate_ = rate_per_sec;
    burst_ = burst > 0 ? burst : 1;
    tat_ = 0;
  }

  bool enabled() const { return rate_ > 0; }
  uint64_t rate() const { return rate_; }

  /// Charge `n` units at virtual time `now`; returns how long the caller
  /// must sleep before the charge conforms (0 = admit immediately). The
  /// reservation is committed either way — GCRA's theoretical arrival time
  /// advances by n/rate per call, capped in the past by the burst tolerance.
  SimDuration Reserve(uint64_t n, SimTime now) {
    if (rate_ == 0 || n == 0) return 0;
    const SimDuration need = static_cast<SimDuration>(n * kSec / rate_);
    const SimDuration tol = static_cast<SimDuration>(burst_ * kSec / rate_);
    const SimTime eligible = tat_ > tol ? tat_ - tol : 0;
    const SimTime grant = eligible > now ? eligible : now;
    tat_ = (tat_ > now ? tat_ : now) + need;
    return grant - now;
  }

 private:
  uint64_t rate_ = 0;   // units per virtual second; 0 = unlimited
  uint64_t burst_ = 1;  // instantaneous credit, same units as rate
  SimTime tat_ = 0;     // GCRA theoretical arrival time
};

/// Weighted-fair admission gate for request handlers. Usage:
///
///   auto guard = co_await admission_.Enter(req.tenant, cost);
///   ... handle the request; slot releases when guard dies ...
///
/// Configure(slots) bounds concurrent in-service requests; SetWeight gives a
/// tenant more than the default unit share. With slots == 0 (default) Enter
/// admits without suspending and the returned guard is inert.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(sim::Scheduler* sched) : sched_(sched) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  void Configure(uint64_t slots) { slots_ = slots; }
  void SetWeight(TenantId tenant, uint32_t weight) {
    weights_[tenant] = weight > 0 ? weight : 1;
  }

  bool enabled() const { return slots_ > 0; }
  uint64_t in_service() const { return in_service_; }
  size_t queued() const {
    size_t n = 0;
    for (const auto& [t, q] : queues_) n += q.size();
    return n;
  }

  /// Move-only slot holder; releases the admission slot (and dispatches the
  /// next waiter) on destruction. Inert when the queue is disabled.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(AdmissionQueue* q) : q_(q) {}
    Guard(Guard&& o) noexcept : q_(o.q_) { o.q_ = nullptr; }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        q_ = o.q_;
        o.q_ = nullptr;
      }
      return *this;
    }
    ~Guard() { Release(); }
    void Release() {
      if (q_) {
        q_->Leave();
        q_ = nullptr;
      }
    }

   private:
    AdmissionQueue* q_ = nullptr;
  };

  /// Awaitable: admit immediately when a slot is free and nobody queues
  /// (no barging past waiters, mirroring sim::Semaphore), else enqueue under
  /// the tenant's WFQ tag. `cost` is in abstract service units (we use the
  /// handler's cpu cost) and scales the virtual finish tag by 1/weight.
  auto Enter(TenantId tenant, uint64_t cost) {
    struct Awaiter {
      AdmissionQueue* q;
      TenantId tenant;
      uint64_t cost;
      bool await_ready() noexcept {
        if (!q->enabled()) return true;
        if (q->in_service_ < q->slots_ && q->QueuesEmpty()) {
          q->Admit(tenant, /*waited=*/0);
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        q->Enqueue(tenant, cost, h);
      }
      Guard await_resume() noexcept {
        return q->enabled() ? Guard(q) : Guard();
      }
    };
    return Awaiter{this, tenant, cost};
  }

  /// Export per-tenant admission counters as
  /// "<prefix>.tenant.<id>.{admitted,queued,wait_usec}".
  void ExportTo(obs::Registry* reg, const std::string& prefix) const {
    for (const auto& [t, s] : stats_) {
      const std::string base = prefix + ".tenant." + std::to_string(t) + ".";
      reg->Add(base + "admitted", s.admitted);
      reg->Add(base + "queued", s.queued);
      reg->Add(base + "wait_usec", s.wait_usec);
    }
    // Unconditional: a disabled queue reports depth 0, so the metric key is
    // always present and fig-bench metric lines keep a stable schema.
    reg->SetMax(prefix + ".max_depth", static_cast<int64_t>(max_depth_));
  }

  struct TenantStats {
    uint64_t admitted = 0;   // total requests granted a slot
    uint64_t queued = 0;     // requests that had to wait
    uint64_t wait_usec = 0;  // total virtual time spent queued
  };
  const std::map<TenantId, TenantStats>& tenant_stats() const { return stats_; }

 private:
  friend class Guard;

  struct Waiter {
    std::coroutine_handle<> h;
    uint64_t vfinish = 0;
    SimTime enq_time = 0;
  };

  bool QueuesEmpty() const {
    for (const auto& [t, q] : queues_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  uint32_t WeightOf(TenantId tenant) const {
    auto it = weights_.find(tenant);
    return it == weights_.end() ? 1 : it->second;
  }

  void Admit(TenantId tenant, SimDuration waited) {
    in_service_++;
    TenantStats& s = stats_[tenant];
    s.admitted++;
    if (waited > 0) s.wait_usec += static_cast<uint64_t>(waited);
  }

  void Enqueue(TenantId tenant, uint64_t cost, std::coroutine_handle<> h) {
    // WFQ start tag: never earlier than the queue's virtual time, never
    // earlier than the tenant's previous finish (per-tenant FIFO order).
    uint64_t& last = last_finish_[tenant];
    const uint64_t start = last > vtime_ ? last : vtime_;
    const uint64_t vfinish = start + (cost > 0 ? cost : 1) * kVScale / WeightOf(tenant);
    last = vfinish;
    queues_[tenant].push_back(Waiter{h, vfinish, sched_->Now()});
    stats_[tenant].queued++;
    size_t depth = queued();
    if (depth > max_depth_) max_depth_ = depth;
  }

  void Leave() {
    in_service_--;
    Dispatch();
  }

  void Dispatch() {
    while (in_service_ < slots_) {
      // Smallest virtual finish tag wins; ties resolve to the smallest
      // tenant id because the map iterates in id order and the comparison
      // is strict.
      auto best = queues_.end();
      for (auto it = queues_.begin(); it != queues_.end(); ++it) {
        if (it->second.empty()) continue;
        if (best == queues_.end() ||
            it->second.front().vfinish < best->second.front().vfinish) {
          best = it;
        }
      }
      if (best == queues_.end()) return;
      Waiter w = best->second.front();
      best->second.pop_front();
      if (w.vfinish > vtime_) vtime_ = w.vfinish;
      Admit(best->first, sched_->Now() - w.enq_time);
      sched_->After(0, [h = w.h] { h.resume(); });
    }
  }

  static constexpr uint64_t kVScale = 1024;  // tag resolution per unit cost

  sim::Scheduler* sched_;
  uint64_t slots_ = 0;  // 0 = disabled (admit everything synchronously)
  uint64_t in_service_ = 0;
  uint64_t vtime_ = 0;  // WFQ virtual clock, advances to each dispatched tag
  size_t max_depth_ = 0;
  std::map<TenantId, uint32_t> weights_;
  std::map<TenantId, std::deque<Waiter>> queues_;
  std::map<TenantId, uint64_t> last_finish_;
  std::map<TenantId, TenantStats> stats_;
};

}  // namespace cfs::qos
