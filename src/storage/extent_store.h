// The extent store (§2.2): the data-partition storage engine.
//
// Large files are stored as a sequence of private extents — a new file
// always starts writing at offset zero of a fresh extent, the last extent is
// never padded, and an extent never mixes files (§2.2.2). Small files (size
// <= `small_file_threshold`, 128 KB by default) are aggregated into shared
// "tiny" extents; the physical offset of each small file in the extent is
// recorded at the meta node, and deletion frees the range asynchronously via
// the punch-hole interface instead of a garbage collector (§2.2.3).
//
// Each extent's CRC is cached in memory to speed up integrity checks
// (§2.2.1). Byte contents are retained only when `track_contents` is on
// (tests); benchmarks run in accounting mode where sizes, CRCs and disk
// timing are tracked without materializing gigabytes of payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/check.h"
#include "common/flat_map.h"
#include "common/crc32.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/disk.h"
#include "sim/task.h"

namespace cfs::storage {

using ExtentId = uint64_t;

struct ExtentStoreOptions {
  uint64_t extent_size_limit = 128 * kMiB;
  uint64_t small_file_threshold = 128 * kKiB;  // the paper's threshold t
  /// Keep real byte contents (tests) or account sizes/timing only (benches).
  bool track_contents = true;
};

/// One storage unit. `size` is the logical end-of-extent offset; punched
/// ranges release physical space without shrinking the logical size.
struct Extent {
  ExtentId id = 0;
  uint64_t size = 0;
  uint32_t crc = 0;  // cached in memory (rebuilt on recovery)
  bool tiny = false;  // shared small-file extent
  uint64_t punched_bytes = 0;
  std::vector<std::pair<uint64_t, uint64_t>> holes;  // (offset, len), sorted
  std::string data;  // only when track_contents

  /// Physical bytes still occupied on disk.
  uint64_t PhysicalBytes() const { return size - punched_bytes; }
  bool FullyPunched() const { return size > 0 && punched_bytes >= size; }
};

class ExtentStore {
 public:
  ExtentStore(sim::Disk* disk, const ExtentStoreOptions& opts = {})
      : disk_(disk), opts_(opts) {}

  const ExtentStoreOptions& options() const { return opts_; }

  /// Allocate a fresh (large-file) extent and return its id.
  ExtentId CreateExtent();

  /// Next id CreateExtent would hand out. Large-extent allocation at the
  /// chain leader (DataPartition::AllocExtentId) folds this in so tiny
  /// extents (allocated store-side by WriteSmall) and chained large extents
  /// never collide in the shared id namespace.
  ExtentId peek_next_id() const { return next_id_; }

  /// Replica path: create an extent with a leader-assigned id (the chain
  /// replicates leader decisions, so ids must match across replicas).
  Status CreateExtentWithId(ExtentId id, bool tiny);

  /// Bench/test rig: materialize an extent of `size` logical bytes without
  /// simulating the writes (stands in for fio's laydown phase, which the
  /// paper's measurements exclude). Contents are zero in tracking mode.
  Status ImportExtent(ExtentId id, uint64_t size, bool tiny);

  /// Replica path: place bytes at an exact offset, which must equal the
  /// extent's current size (the chain delivers placements in order; callers
  /// buffer out-of-order arrivals). A traced caller passes its span context
  /// so the disk write shows up as a "disk:write" child span.
  ///
  /// Write paths take the shared Buffer (by value — a refcount bump): its
  /// memoized payload CRC (Buffer::Crc0) lets the second and third chain
  /// replicas extend their cached extent CRC via Crc32cConcat instead of
  /// re-checksumming the same bytes. The string_view overloads below are
  /// conveniences for tests/tools and pay a copy.
  sim::Task<Status> PlaceAt(ExtentId id, uint64_t offset, Buffer data,
                            obs::TraceContext trace = {});
  sim::Task<Status> PlaceAt(ExtentId id, uint64_t offset, std::string_view data,
                            obs::TraceContext trace = {}) {
    return PlaceAt(id, offset, Buffer::CopyOf(data), trace);
  }

  /// Visit (id, extent) pairs in id order.
  template <typename F>
  void ForEach(F fn) const {
    for (const auto& [id, e] : extents_) fn(e);
  }

  // --- Synchronous variants for raft Apply (§2.2.4 overwrite path) ---
  // Raft state machines apply commands synchronously; these validate and
  // mutate inline and charge the disk time as a detached task.
  Status OverwriteSync(ExtentId id, uint64_t offset, std::string_view data);
  Status DeleteExtentSync(ExtentId id);
  Status PunchHoleSync(ExtentId id, uint64_t offset, uint64_t len);

  /// Sequential write: `offset` must equal the extent's current size.
  /// Returns NoSpace once the extent reaches its size limit.
  sim::Task<Status> Append(ExtentId id, uint64_t offset, Buffer data);
  sim::Task<Status> Append(ExtentId id, uint64_t offset, std::string_view data) {
    return Append(id, offset, Buffer::CopyOf(data));
  }

  /// In-place overwrite of already-written bytes (§2.7.2: random writes in
  /// CFS are in-place; the extent layout and file offsets do not change).
  sim::Task<Status> Overwrite(ExtentId id, uint64_t offset, Buffer data);
  sim::Task<Status> Overwrite(ExtentId id, uint64_t offset, std::string_view data) {
    return Overwrite(id, offset, Buffer::CopyOf(data));
  }

  /// Read `len` bytes at `offset`; verifies the cached CRC when contents are
  /// tracked. Reading a punched range is a caller bug -> InvalidArgument.
  /// Returns a shared Buffer: the response path ships it without copying
  /// (accounting mode serves slices of one static zero block).
  sim::Task<Result<Buffer>> Read(ExtentId id, uint64_t offset, uint64_t len,
                                 obs::TraceContext trace = {});

  /// Small-file write: aggregate into the current tiny extent. Returns the
  /// (extent id, physical offset) pair the meta node records.
  sim::Task<Result<std::pair<ExtentId, uint64_t>>> WriteSmall(Buffer data,
                                                              obs::TraceContext trace = {});
  sim::Task<Result<std::pair<ExtentId, uint64_t>>> WriteSmall(std::string_view data,
                                                              obs::TraceContext trace = {}) {
    return WriteSmall(Buffer::CopyOf(data), trace);
  }

  /// Release a small file's range via fallocate(PUNCH_HOLE). The extent is
  /// removed entirely once every byte of it has been punched.
  sim::Task<Status> PunchHole(ExtentId id, uint64_t offset, uint64_t len);

  /// Large-file delete path: remove the whole extent from disk (§2.2.3:
  /// "different from deleting large files, where the extents of the file can
  /// be removed directly").
  sim::Task<Status> DeleteExtent(ExtentId id);

  /// Verify the cached CRC of an extent against its contents (tracking mode
  /// only). Used by replica repair.
  sim::Task<Status> VerifyExtent(ExtentId id);

  /// Rebuild the in-memory CRC cache after a restart (charges a scan read).
  sim::Task<Status> RebuildCrcCache();

  const Extent* Find(ExtentId id) const;
  bool Has(ExtentId id) const { return extents_.count(id) > 0; }
  uint64_t ExtentSize(ExtentId id) const;

  /// Deep check (see common/check.h): per-extent hole/punch bookkeeping,
  /// logical/physical byte aggregates, id-allocator high-water mark, and (in
  /// tracking mode) cached-CRC agreement with the byte contents. Violations
  /// are tagged "extent" and prefixed with `label`.
  void CheckInvariants(InvariantReport* report, const std::string& label = "") const;

  /// Negative-test hook: direct mutable access so tests can seed a
  /// deliberate corruption and assert CheckInvariants fires. Not for
  /// production paths.
  Extent* MutableExtentForTest(ExtentId id) { return FindMutable(id); }

  size_t num_extents() const { return extents_.size(); }
  uint64_t logical_bytes() const { return logical_bytes_; }
  uint64_t physical_bytes() const { return physical_bytes_; }

 private:
  Extent* FindMutable(ExtentId id);
  bool RangeIsPunched(const Extent& e, uint64_t offset, uint64_t len) const;

  sim::Disk* disk_;
  ExtentStoreOptions opts_;
  /// Sorted flat vector: every packet of every write/read does a point
  /// lookup here; stores hold at most a few hundred extents, so binary
  /// search over contiguous memory wins. ForEach stays id-ordered.
  FlatMap<ExtentId, Extent> extents_;
  ExtentId next_id_ = 1;
  /// Current tiny extent receiving small-file appends (0 = none yet).
  ExtentId active_tiny_ = 0;
  uint64_t logical_bytes_ = 0;
  uint64_t physical_bytes_ = 0;
};

}  // namespace cfs::storage
