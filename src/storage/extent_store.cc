#include "storage/extent_store.h"

#include <algorithm>

namespace cfs::storage {

namespace {
/// Detached disk-time charge used by the synchronous apply variants.
sim::Task<void> ChargeWrite(sim::Disk* disk, uint64_t bytes) {
  (void)co_await disk->Write(bytes);
}
}  // namespace

Status ExtentStore::OverwriteSync(ExtentId id, uint64_t offset, std::string_view data) {
  Extent* e = FindMutable(id);
  if (!e) return Status::NotFound("extent " + std::to_string(id));
  if (offset + data.size() > e->size) return Status::InvalidArgument("overwrite beyond end");
  if (RangeIsPunched(*e, offset, data.size())) {
    return Status::InvalidArgument("overwrite into punched hole");
  }
  if (opts_.track_contents) {
    e->data.replace(offset, data.size(), data.data(), data.size());
    e->crc = Crc32c(e->data);
  } else {
    e->crc ^= Crc32c(data);
  }
  sim::Spawn(ChargeWrite(disk_, data.size()));
  return Status::OK();
}

Status ExtentStore::DeleteExtentSync(ExtentId id) {
  Extent* e = FindMutable(id);
  if (!e) return Status::NotFound("extent " + std::to_string(id));
  if (e->tiny) return Status::InvalidArgument("tiny extents are freed via punch hole");
  uint64_t phys = e->PhysicalBytes();
  logical_bytes_ -= e->size;
  physical_bytes_ -= phys;
  disk_->PunchHole(phys);
  if (active_tiny_ == id) active_tiny_ = 0;
  extents_.erase(id);
  sim::Spawn(ChargeWrite(disk_, 0));
  return Status::OK();
}

Status ExtentStore::PunchHoleSync(ExtentId id, uint64_t offset, uint64_t len) {
  Extent* e = FindMutable(id);
  if (!e) return Status::NotFound("extent " + std::to_string(id));
  if (offset + len > e->size) return Status::InvalidArgument("hole beyond extent end");
  if (RangeIsPunched(*e, offset, len)) return Status::InvalidArgument("range already punched");
  e->holes.emplace_back(offset, len);
  std::sort(e->holes.begin(), e->holes.end());
  e->punched_bytes += len;
  physical_bytes_ -= len;
  disk_->PunchHole(len);
  if (opts_.track_contents) e->data.replace(offset, len, len, '\0');
  sim::Spawn(ChargeWrite(disk_, 0));
  if (e->FullyPunched()) {
    logical_bytes_ -= e->size;
    if (active_tiny_ == id) active_tiny_ = 0;
    extents_.erase(id);
  }
  return Status::OK();
}

ExtentId ExtentStore::CreateExtent() {
  ExtentId id = next_id_++;
  Extent e;
  e.id = id;
  extents_.emplace(id, std::move(e));
  return id;
}

Status ExtentStore::CreateExtentWithId(ExtentId id, bool tiny) {
  if (extents_.count(id)) return Status::AlreadyExists("extent " + std::to_string(id));
  Extent e;
  e.id = id;
  e.tiny = tiny;
  extents_.emplace(id, std::move(e));
  if (id >= next_id_) next_id_ = id + 1;
  return Status::OK();
}

Status ExtentStore::ImportExtent(ExtentId id, uint64_t size, bool tiny) {
  CFS_RETURN_IF_ERROR(CreateExtentWithId(id, tiny));
  Extent* e = FindMutable(id);
  e->size = size;
  e->crc = 0;
  if (opts_.track_contents) {
    e->data.assign(size, '\0');
    e->crc = Crc32c(e->data);  // cached CRC must agree with the laid-down bytes
  }
  logical_bytes_ += size;
  physical_bytes_ += size;
  return Status::OK();
}

sim::Task<Status> ExtentStore::PlaceAt(ExtentId id, uint64_t offset, Buffer data,
                                       obs::TraceContext trace) {
  Extent* e = FindMutable(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (offset != e->size) co_return Status::InvalidArgument("out-of-order placement");
  if (e->size + data.size() > opts_.extent_size_limit) co_return Status::NoSpace("extent full");
  if (opts_.track_contents) e->data.append(data.data(), data.size());
  e->crc = Crc32cConcat(e->crc, data.Crc0(), data.size());
  e->size += data.size();
  logical_bytes_ += data.size();
  physical_bytes_ += data.size();
  co_return co_await disk_->Write(data.size(), trace);
}

Extent* ExtentStore::FindMutable(ExtentId id) {
  auto it = extents_.find(id);
  return it == extents_.end() ? nullptr : &it->second;
}

const Extent* ExtentStore::Find(ExtentId id) const {
  auto it = extents_.find(id);
  return it == extents_.end() ? nullptr : &it->second;
}

uint64_t ExtentStore::ExtentSize(ExtentId id) const {
  const Extent* e = Find(id);
  return e ? e->size : 0;
}

sim::Task<Status> ExtentStore::Append(ExtentId id, uint64_t offset, Buffer data) {
  Extent* e = FindMutable(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (offset != e->size) {
    co_return Status::InvalidArgument("append must be at end of extent");
  }
  if (e->size + data.size() > opts_.extent_size_limit) {
    co_return Status::NoSpace("extent full");
  }
  if (opts_.track_contents) e->data.append(data.data(), data.size());
  // Appends extend the cached CRC incrementally (memo-assisted).
  e->crc = Crc32cConcat(e->crc, data.Crc0(), data.size());
  e->size += data.size();
  logical_bytes_ += data.size();
  physical_bytes_ += data.size();
  co_return co_await disk_->Write(data.size());
}

sim::Task<Status> ExtentStore::Overwrite(ExtentId id, uint64_t offset, Buffer data) {
  Extent* e = FindMutable(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (offset + data.size() > e->size) {
    co_return Status::InvalidArgument("overwrite beyond extent end");
  }
  if (RangeIsPunched(*e, offset, data.size())) {
    co_return Status::InvalidArgument("overwrite into punched hole");
  }
  if (opts_.track_contents) {
    e->data.replace(offset, data.size(), data.data(), data.size());
    e->crc = Crc32c(e->data);  // full recompute: overwrites break incremental CRC
  } else {
    e->crc ^= data.Crc0();
  }
  co_return co_await disk_->Write(data.size());
}

bool ExtentStore::RangeIsPunched(const Extent& e, uint64_t offset, uint64_t len) const {
  if (e.punched_bytes == 0) return false;  // hot path: most extents have no holes
  for (const auto& [ho, hl] : e.holes) {
    if (offset < ho + hl && ho < offset + len) return true;  // overlap
  }
  return false;
}

namespace {
/// Accounting-mode reads serve slices of one shared zero block instead of
/// allocating and zero-filling a fresh string per read.
Buffer ZeroBlock(uint64_t len) {
  static const Buffer zeros = Buffer::Filled(256 * kKiB, '\0');
  if (len <= zeros.size()) return zeros.Slice(0, len);
  return Buffer::Filled(len, '\0');
}
}  // namespace

sim::Task<Result<Buffer>> ExtentStore::Read(ExtentId id, uint64_t offset, uint64_t len,
                                            obs::TraceContext trace) {
  const Extent* e = Find(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (offset + len > e->size) co_return Status::InvalidArgument("read beyond extent end");
  if (RangeIsPunched(*e, offset, len)) {
    co_return Status::InvalidArgument("read from punched hole");
  }
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Read(len, trace));
  if (!opts_.track_contents) co_return ZeroBlock(len);
  // Whole-extent reads verify against the cached CRC.
  if (offset == 0 && len == e->size && e->punched_bytes == 0) {
    if (Crc32c(e->data) != e->crc) {
      co_return Status::Corruption("extent crc mismatch");
    }
  }
  co_return Buffer::CopyOf(std::string_view(e->data).substr(offset, len));
}

sim::Task<Result<std::pair<ExtentId, uint64_t>>> ExtentStore::WriteSmall(
    Buffer data, obs::TraceContext trace) {
  if (data.size() > opts_.small_file_threshold) {
    co_return Status::InvalidArgument("not a small file");
  }
  Extent* tiny = active_tiny_ ? FindMutable(active_tiny_) : nullptr;
  if (!tiny || tiny->size + data.size() > opts_.extent_size_limit) {
    ExtentId id = CreateExtent();
    tiny = FindMutable(id);
    tiny->tiny = true;
    active_tiny_ = id;
  }
  uint64_t offset = tiny->size;
  ExtentId id = tiny->id;
  if (opts_.track_contents) {
    tiny->data.append(data.data(), data.size());
  }
  tiny->crc = Crc32cConcat(tiny->crc, data.Crc0(), data.size());
  tiny->size += data.size();
  logical_bytes_ += data.size();
  physical_bytes_ += data.size();
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Write(data.size(), trace));
  co_return std::make_pair(id, offset);
}

sim::Task<Status> ExtentStore::PunchHole(ExtentId id, uint64_t offset, uint64_t len) {
  Extent* e = FindMutable(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (offset + len > e->size) co_return Status::InvalidArgument("hole beyond extent end");
  if (RangeIsPunched(*e, offset, len)) {
    co_return Status::InvalidArgument("range already punched");
  }
  e->holes.emplace_back(offset, len);
  std::sort(e->holes.begin(), e->holes.end());
  e->punched_bytes += len;
  physical_bytes_ -= len;
  disk_->PunchHole(len);
  if (opts_.track_contents) {
    e->data.replace(offset, len, len, '\0');
  }
  // fallocate(PUNCH_HOLE) is metadata-only on the device: charge a fixed
  // small latency, not a data transfer.
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Write(0));
  if (e->FullyPunched()) {
    logical_bytes_ -= e->size;
    if (active_tiny_ == id) active_tiny_ = 0;
    extents_.erase(id);
  }
  co_return Status::OK();
}

sim::Task<Status> ExtentStore::DeleteExtent(ExtentId id) {
  Extent* e = FindMutable(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  if (e->tiny) co_return Status::InvalidArgument("tiny extents are freed via punch hole");
  uint64_t phys = e->PhysicalBytes();
  logical_bytes_ -= e->size;
  physical_bytes_ -= phys;
  disk_->PunchHole(phys);
  if (active_tiny_ == id) active_tiny_ = 0;
  extents_.erase(id);
  co_return co_await disk_->Write(0);  // unlink is a metadata op
}

sim::Task<Status> ExtentStore::VerifyExtent(ExtentId id) {
  const Extent* e = Find(id);
  if (!e) co_return Status::NotFound("extent " + std::to_string(id));
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Read(e->PhysicalBytes()));
  if (!opts_.track_contents) co_return Status::OK();
  if (e->punched_bytes == 0 && Crc32c(e->data) != e->crc) {
    co_return Status::Corruption("extent " + std::to_string(id) + " crc mismatch");
  }
  co_return Status::OK();
}

void ExtentStore::CheckInvariants(InvariantReport* report, const std::string& label) const {
  auto where = [&](ExtentId id) {
    return (label.empty() ? std::string() : label + " ") + "extent " + std::to_string(id);
  };
  uint64_t logical = 0, physical = 0;
  ExtentId max_id = 0;
  for (const auto& [id, e] : extents_) {
    max_id = std::max(max_id, id);
    if (e.id != id) {
      report->Violation("extent", where(id) + ": stored id " + std::to_string(e.id) +
                                      " disagrees with map key");
    }
    // Punch-hole bookkeeping: holes sorted, disjoint, inside the extent, and
    // their total length equals punched_bytes.
    uint64_t hole_total = 0, prev_end = 0;
    bool holes_ok = true;
    for (const auto& [ho, hl] : e.holes) {
      if (ho < prev_end) {
        report->Violation("extent", where(id) + ": holes overlap or are unsorted at offset " +
                                        std::to_string(ho));
        holes_ok = false;
        break;
      }
      if (ho + hl > e.size) {
        report->Violation("extent", where(id) + ": hole [" + std::to_string(ho) + ", " +
                                        std::to_string(ho + hl) + ") beyond size " +
                                        std::to_string(e.size));
        holes_ok = false;
        break;
      }
      hole_total += hl;
      prev_end = ho + hl;
    }
    if (holes_ok && hole_total != e.punched_bytes) {
      report->Violation("extent", where(id) + ": punched_bytes " +
                                      std::to_string(e.punched_bytes) +
                                      " != sum of hole lengths " + std::to_string(hole_total));
    }
    if (e.punched_bytes > e.size) {
      report->Violation("extent", where(id) + ": punched_bytes exceeds size");
    }
    if (e.FullyPunched()) {
      report->Violation("extent", where(id) + ": fully punched extent still resident");
    }
    if (opts_.track_contents) {
      if (e.data.size() != e.size) {
        report->Violation("extent", where(id) + ": data size " +
                                        std::to_string(e.data.size()) +
                                        " != logical size " + std::to_string(e.size));
      } else if (e.punched_bytes == 0 && Crc32c(e.data) != e.crc) {
        report->Violation("extent", where(id) + ": cached CRC disagrees with contents");
      }
    }
    logical += e.size;
    physical += e.PhysicalBytes();
  }
  if (logical != logical_bytes_) {
    report->Violation("extent", (label.empty() ? std::string("store") : label) +
                                    ": logical_bytes " + std::to_string(logical_bytes_) +
                                    " != sum of extent sizes " + std::to_string(logical));
  }
  if (physical != physical_bytes_) {
    report->Violation("extent", (label.empty() ? std::string("store") : label) +
                                    ": physical_bytes " + std::to_string(physical_bytes_) +
                                    " != sum of resident bytes " + std::to_string(physical));
  }
  if (!extents_.empty() && next_id_ <= max_id) {
    report->Violation("extent", (label.empty() ? std::string("store") : label) +
                                    ": id allocator " + std::to_string(next_id_) +
                                    " not past max extent id " + std::to_string(max_id));
  }
  if (active_tiny_ != 0) {
    const Extent* t = Find(active_tiny_);
    if (!t) {
      report->Violation("extent", (label.empty() ? std::string("store") : label) +
                                      ": active tiny extent " + std::to_string(active_tiny_) +
                                      " does not exist");
    } else if (!t->tiny) {
      report->Violation("extent", where(active_tiny_) + ": active tiny extent not flagged tiny");
    }
  }
}

sim::Task<Status> ExtentStore::RebuildCrcCache() {
  uint64_t scanned = 0;
  for (auto& [id, e] : extents_) {
    scanned += e.PhysicalBytes();
    if (opts_.track_contents && e.punched_bytes == 0) {
      e.crc = Crc32c(e.data);
    }
  }
  co_return co_await disk_->Read(scanned + 64);
}

}  // namespace cfs::storage
