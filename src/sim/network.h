// Simulated cluster network: hosts, typed RPC, latency/bandwidth modelling,
// partitions and message loss.
//
// An RPC is dispatched by request type: each Host registers one handler per
// request struct. Handlers are coroutines; the network charges NIC transfer
// time on both sides plus propagation latency, so large transfers (128 KB
// write packets) consume bandwidth and small control messages are
// latency-bound — exactly the distinction the paper's sequential-vs-random
// results hinge on.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <typeinfo>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/disk.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs::sim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0;  // node ids are 1-based

constexpr SimDuration kDefaultRpcTimeout = 1 * kSec;

/// Size-on-the-wire of a message. Messages can report their own payload size
/// via a `WireBytes()` member; otherwise the in-memory size is used.
template <typename T>
concept HasWireBytes = requires(const T& t) {
  { t.WireBytes() } -> std::convertible_to<size_t>;
};

template <typename T>
size_t WireBytesOf(const T& v) {
  if constexpr (HasWireBytes<T>) {
    return v.WireBytes() + 64;  // + header
  } else {
    return sizeof(T) + 64;
  }
}

/// Messages name themselves (kRpcName) for metrics and span labels; anything
/// without one falls back to the (mangled, stable-within-a-build) RTTI name.
template <typename T>
concept HasMsgName = requires {
  { T::kRpcName } -> std::convertible_to<const char*>;
};

template <typename T>
const char* MsgNameOf() {
  if constexpr (HasMsgName<T>) {
    return T::kRpcName;
  } else {
    return typeid(T).name();
  }
}

/// Requests carrying a TraceContext propagate it across the wire: the rpc
/// layer stamps it on send and the receiving host opens a handler span
/// under it. The field is inert (all zero) on untraced requests, so its
/// presence never changes scheduling.
template <typename T>
concept HasTraceContext = requires(const T& t) {
  { t.trace } -> std::convertible_to<obs::TraceContext>;
};

/// Durable per-node blob store: stands in for the node's local file system
/// (raft logs, snapshots, extent files survive a crash). Backed by a sorted
/// flat map so List() enumerates in name order — recovery paths iterate
/// the listing, and their scheduling order must not depend on hash layout.
///
/// Blobs are ropes (base string + appended chunks): the raft WAL appends a
/// few-KiB record per commit batch to a blob that grows to many MiB, and
/// keeping it contiguous meant geometric reallocation copied the whole log
/// over and over. Appends now push a chunk; Get() — recovery only —
/// compacts the rope back into the base string.
class StableStorage {
 public:
  void Put(const std::string& name, std::string data) {
    Blob& b = blobs_[name];
    b.base = std::move(data);
    b.chunks.clear();
    b.size = b.base.size();
  }
  void Append(const std::string& name, std::string_view data) {
    Blob& b = blobs_[name];
    b.chunks.emplace_back(data);
    b.size += data.size();
  }
  bool Get(const std::string& name, std::string* out) const {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) return false;
    it->second.Compact();
    *out = it->second.base;
    return true;
  }
  bool Has(const std::string& name) const { return blobs_.count(name) > 0; }
  void Delete(const std::string& name) { blobs_.erase(name); }
  std::vector<std::string> List(const std::string& prefix) const {
    std::vector<std::string> names;
    for (const auto& [k, v] : blobs_) {
      if (k.rfind(prefix, 0) == 0) names.push_back(k);
    }
    return names;
  }
  uint64_t TotalBytes() const {
    uint64_t n = 0;
    for (const auto& [k, v] : blobs_) n += v.size;
    return n;
  }

 private:
  struct Blob {
    void Compact() const {
      if (chunks.empty()) return;
      base.reserve(size);
      for (const std::string& c : chunks) base.append(c);
      chunks.clear();
    }
    // Compaction is caching, not mutation: the logical value is unchanged.
    mutable std::string base;
    mutable std::vector<std::string> chunks;
    size_t size = 0;
  };
  FlatMap<std::string, Blob> blobs_;
};

struct HostOptions {
  int cpu_cores = 16;              // paper testbed: Xeon E5-2683V4, 16 cores
  int num_disks = 16;              // 16 x 960 GB SSD
  DiskOptions disk;
  uint64_t memory_bytes = 256ull * kGiB;  // 8 x 32 GB
};

class Network;

/// A simulated machine: CPU, NIC accounting, disks, durable storage, and the
/// RPC handler registry. Hosts are never destroyed mid-simulation; a crash
/// marks the host down and bumps its epoch so in-flight handlers bail out.
class Host {
 public:
  Host(Scheduler* sched, NodeId id, const HostOptions& opts)
      : sched_(sched),
        id_(id),
        opts_(opts),
        cpu_(sched, opts.cpu_cores),
        nic_in_(sched, 1),
        nic_out_(sched, 1) {
    for (int i = 0; i < opts.num_disks; i++) {
      disks_.push_back(std::make_unique<Disk>(sched, opts.disk, id));
    }
  }

  NodeId id() const { return id_; }
  bool up() const { return up_; }
  uint64_t epoch() const { return epoch_; }

  void Crash() {
    up_ = false;
    epoch_++;
  }
  void Restart() {
    up_ = true;
    epoch_++;
    cpu_.Reset();
  }

  Resource& cpu() { return cpu_; }
  Resource& nic_in() { return nic_in_; }
  Resource& nic_out() { return nic_out_; }
  Disk* disk(int i) { return disks_[i].get(); }
  int num_disks() const { return static_cast<int>(disks_.size()); }
  StableStorage& storage() { return storage_; }
  const HostOptions& options() const { return opts_; }

  /// Tracked memory use (meta partitions report in; drives utilization-based
  /// placement, §2.3.1).
  uint64_t memory_used() const { return memory_used_; }
  void AddMemory(int64_t delta) {
    memory_used_ = static_cast<uint64_t>(static_cast<int64_t>(memory_used_) + delta);
  }
  double MemoryUtilization() const {
    return static_cast<double>(memory_used_) / static_cast<double>(opts_.memory_bytes);
  }
  double DiskUtilization() const {
    uint64_t used = 0, cap = 0;
    for (const auto& d : disks_) {
      used += d->used_bytes();
      cap += d->capacity_bytes();
    }
    return cap ? static_cast<double>(used) / static_cast<double>(cap) : 0.0;
  }
  /// Least-utilized local disk (data partitions are created there).
  int PickDisk() const {
    int best = 0;
    for (int i = 1; i < static_cast<int>(disks_.size()); i++) {
      if (disks_[i]->used_bytes() < disks_[best]->used_bytes()) best = i;
    }
    return best;
  }

  using ReplyFn = std::function<void(std::any resp, size_t resp_bytes)>;
  using RawHandler = std::function<void(std::any req, NodeId from, ReplyFn reply)>;

  /// Register the coroutine handler for request type Req. `h` is
  /// `Task<Resp>(Req, NodeId from)`.
  template <typename Req, typename Resp, typename F>
  void Register(F h) {
    handlers_[std::type_index(typeid(Req))] = [this, h = std::move(h)](std::any req, NodeId from,
                                                                       ReplyFn reply) {
      Spawn(InvokeHandler<Req, Resp, F>(this, h, std::any_cast<Req>(std::move(req)), from,
                                        std::move(reply)));
    };
  }

  /// Remove all handlers (a decommissioned node).
  void ClearHandlers() { handlers_.clear(); }

  const RawHandler* FindHandler(std::type_index t) const {
    auto it = handlers_.find(t);
    return it == handlers_.end() ? nullptr : &it->second;
  }

 private:
  /// Every registered handler runs under a "handler:<rpc>" span when the
  /// request is traced: the one interception point that covers master, meta
  /// and data services alike.
  template <typename Req, typename Resp, typename F>
  static Task<void> InvokeHandler(Host* self, F h, Req req, NodeId from, ReplyFn reply) {
    obs::SpanScope span = self->OpenHandlerSpan(req);
    Resp resp = co_await h(std::move(req), from);
    size_t bytes = WireBytesOf(resp);
    reply(std::any(std::move(resp)), bytes);
  }

  template <typename Req>
  obs::SpanScope OpenHandlerSpan(const Req& req) {
    if constexpr (HasTraceContext<Req>) {
      obs::Tracer& t = sched_->tracer();
      if (t.enabled() && req.trace.valid()) {
        return obs::SpanScope(
            &t, t.BeginSpan(std::string("handler:") + MsgNameOf<Req>(), req.trace, id_));
      }
    }
    return {};
  }

  Scheduler* sched_;
  NodeId id_;
  HostOptions opts_;
  bool up_ = true;
  uint64_t epoch_ = 1;
  Resource cpu_;
  Resource nic_in_, nic_out_;
  std::vector<std::unique_ptr<Disk>> disks_;
  StableStorage storage_;
  uint64_t memory_used_ = 0;
  /// Sorted flat vector keyed by type_index: the registry is looked up on
  /// every delivered message, and a dozen-entry sorted array beats node
  /// chasing; ordered, so iteration stays hash-layout independent.  The
  /// type_index order itself is address-dependent, but the registry is only
  /// ever point-queried (FindHandler) — nothing iterates it, so no decision
  /// or output depends on the ordering.
  FlatMap<std::type_index, RawHandler> handlers_;  // analyze:allow(A3)
};

struct NetworkOptions {
  SimDuration base_latency_usec = 120;  // same-datacenter RTT/2 incl. stack
  SimDuration jitter_usec = 30;
  uint64_t bandwidth_mib = 117;  // 1000 Mbps ~= 117 MiB/s (paper testbed NIC)
};

class Network {
 public:
  Network(Scheduler* sched, const NetworkOptions& opts = {}) : sched_(sched), opts_(opts) {}

  Scheduler* scheduler() { return sched_; }

  Host* AddHost(const HostOptions& opts = {}) {
    NodeId id = static_cast<NodeId>(hosts_.size() + 1);
    hosts_.push_back(std::make_unique<Host>(sched_, id, opts));
    return hosts_.back().get();
  }

  Host* host(NodeId id) { return hosts_[id - 1].get(); }
  size_t num_hosts() const { return hosts_.size(); }

  /// Bidirectional partition between two nodes.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned) {
    auto key = std::minmax(a, b);
    if (partitioned) {
      partitions_.insert(key);
    } else {
      partitions_.erase(key);
    }
  }
  bool IsPartitioned(NodeId a, NodeId b) const {
    return partitions_.count(std::minmax(a, b)) > 0;
  }

  /// Probability that any given message is dropped (failure injection).
  void SetDropProbability(double p) { drop_prob_ = p; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Awaitable returned by Call(): resolves to Result<Resp> (TimedOut on
  /// network-level failure).
  template <typename Resp>
  struct RpcAwaitable {
    std::shared_ptr<typename Future<Resp>::State> st;
    SimDuration timeout;
    NodeId to;

    bool await_ready() const noexcept { return st->value.has_value(); }
    void await_suspend(std::coroutine_handle<> h) {
      st->waiter = h;
      auto stc = st;
      st->sched->After(timeout, [stc] {
        if (!stc->delivered && stc->waiter) {
          stc->delivered = true;
          auto w = std::exchange(stc->waiter, nullptr);
          w.resume();
        }
      });
    }
    Result<Resp> await_resume() {
      if (st->value.has_value()) return std::move(*st->value);
      return Status::TimedOut("rpc to node " + std::to_string(to));
    }
  };

  /// Issue a typed RPC. Network-level failures (timeout, drop, dead or
  /// partitioned destination) surface as Status::TimedOut; application-level
  /// errors travel inside Resp.
  ///
  /// This is the transport primitive, not the application API: service code
  /// goes through the rpc layer (src/rpc/ — rpc::Channel and the typed
  /// stubs), which adds deadlines, retry policy, leader routing and per-RPC
  /// metrics on top. lint.py R4 flags direct Call<> use outside src/rpc/;
  /// only the raft transport opts out site-by-site.
  ///
  /// Deliberately NOT a coroutine: gcc 12 double-destroys braced-init
  /// temporary arguments passed to coroutine parameters (observed with
  /// -fsanitize=address; aggregate prvalues only). A plain function
  /// returning an awaitable keeps every call site safe regardless of how
  /// the request argument is materialized.
  template <typename Req, typename Resp>
  RpcAwaitable<Resp> Call(NodeId from, NodeId to, Req req,
                          SimDuration timeout = kDefaultRpcTimeout) {
    Promise<Resp> prom(sched_);
    size_t req_bytes = WireBytesOf(req);
    SendRequest(from, to, std::any(std::move(req)), std::type_index(typeid(Req)), req_bytes,
                [this, prom, to, from](std::any resp, size_t resp_bytes) {
                  // Reply path: charge the reverse transfer.
                  SimTime at = TransferFinish(to, from, resp_bytes);
                  MixTrace(to, from, resp_bytes, std::type_index(typeid(Resp)), at);
                  if (ShouldDrop(to, from)) return;
                  sched_->At(at, [prom, resp = std::move(resp)]() mutable {
                    prom.Set(std::any_cast<Resp>(std::move(resp)));
                  });
                });
    return RpcAwaitable<Resp>{prom.state(), timeout, to};
  }

 private:
  /// Determinism auditor: fold one message into the trace hash. The type
  /// name (not the type_index hash) feeds the digest so iteration-order or
  /// wall-clock bugs change the hash while ASLR does not.
  void MixTrace(NodeId from, NodeId to, size_t bytes, std::type_index type, SimTime at) {
    TraceHasher& t = sched_->trace();
    t.Mix(from);
    t.Mix(to);
    t.Mix(bytes);
    t.Mix(at);
    const char* name = type.name();
    t.MixBytes(name, std::char_traits<char>::length(name));
  }

  bool ShouldDrop(NodeId from, NodeId to) {
    if (IsPartitioned(from, to)) return true;
    if (drop_prob_ > 0 && sched_->rng().Chance(drop_prob_)) return true;
    return false;
  }

  /// Charge sender egress + propagation + receiver ingress; returns the
  /// delivery completion time. Local (same-node) messages skip the NIC.
  SimTime TransferFinish(NodeId from, NodeId to, size_t bytes) {
    messages_sent_++;
    bytes_sent_ += bytes;
    if (from == to) return sched_->Now() + 2;  // loopback
    SimDuration wire = static_cast<SimDuration>(bytes * kSec / (opts_.bandwidth_mib * kMiB));
    SimTime out_done = host(from)->nic_out().Reserve(wire);
    SimDuration lat = opts_.base_latency_usec +
                      static_cast<SimDuration>(sched_->rng().Uniform(opts_.jitter_usec + 1));
    SimTime arrive = out_done + lat;
    // Ingress reservation begins when the bytes arrive.
    SimTime in_free = host(to)->nic_in().Reserve(wire);
    return std::max(arrive, in_free);
  }

  void SendRequest(NodeId from, NodeId to, std::any req, std::type_index type, size_t bytes,
                   Host::ReplyFn reply) {
    if (ShouldDrop(from, to)) return;
    SimTime at = TransferFinish(from, to, bytes);
    MixTrace(from, to, bytes, type, at);
    // The Network is a sim-lifetime singleton owned by the harness: it
    // strictly outlives every scheduled delivery, so capturing `this` into
    // the deferred event cannot dangle (crash schedules kill Hosts, checked
    // via h->up() below, never the Network itself).
    sched_->At(at, [this, to, from, req = std::move(req), type, reply = std::move(reply)]() mutable {  // analyze:allow(A2)
      Host* h = host(to);
      if (!h->up()) return;  // dead node: request vanishes, caller times out
      const Host::RawHandler* handler = h->FindHandler(type);
      if (!handler) return;  // no service registered: drop
      (*handler)(std::move(req), from, std::move(reply));
    });
  }

  Scheduler* sched_;
  NetworkOptions opts_;
  std::vector<std::unique_ptr<Host>> hosts_;
  FlatSet<std::pair<NodeId, NodeId>> partitions_;
  double drop_prob_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace cfs::sim
