// Simulated cluster network: hosts, typed RPC, latency/bandwidth modelling,
// partitions and message loss.
//
// An RPC is dispatched by request type: each Host registers one handler per
// request struct. Handlers are coroutines; the network charges NIC transfer
// time on both sides plus propagation latency, so large transfers (128 KB
// write packets) consume bandwidth and small control messages are
// latency-bound — exactly the distinction the paper's sequential-vs-random
// results hinge on.
//
// The transport is zero-heap-allocation per RPC in steady state (DESIGN.md
// "RPC transport"): requests/responses travel in slab-pooled Envelopes with
// inline storage, dispatch indexes a flat per-host handler table by the
// dense MsgTypeId (sim/msg_type.h) instead of probing a type_index map, and
// the caller's pending-call state lives in a generation-checked RpcSlot
// slab instead of a shared_ptr promise. The reply path cancels the timeout
// watchdog through Scheduler::CancelAudited, which keeps the cancelled
// timer's (time, seq) in the audited event stream — same-seed schedule
// hashes are byte-identical to the boxing transport this replaced
// (tests/schedule_hash_test.cc, tests/network_test.cc).
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/disk.h"
#include "sim/msg_type.h"
#include "sim/resource.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs::sim {

using NodeId = uint32_t;
constexpr NodeId kInvalidNode = 0;  // node ids are 1-based

constexpr SimDuration kDefaultRpcTimeout = 1 * kSec;

/// Size-on-the-wire of a message. Messages can report their own payload size
/// via a `WireBytes()` member; otherwise the in-memory size is used.
template <typename T>
concept HasWireBytes = requires(const T& t) {
  { t.WireBytes() } -> std::convertible_to<size_t>;
};

template <typename T>
size_t WireBytesOf(const T& v) {
  if constexpr (HasWireBytes<T>) {
    return v.WireBytes() + 64;  // + header
  } else {
    return sizeof(T) + 64;
  }
}

/// Requests carrying a TraceContext propagate it across the wire: the rpc
/// layer stamps it on send and the receiving host opens a handler span
/// under it. The field is inert (all zero) on untraced requests, so its
/// presence never changes scheduling.
template <typename T>
concept HasTraceContext = requires(const T& t) {
  { t.trace } -> std::convertible_to<obs::TraceContext>;
};

/// Type-erased message payload in a pooled, fixed-size node. Small payloads
/// (nearly every RPC struct: the big data-path Buffers are shared-ownership
/// handles, not byte arrays) are constructed inline; oversized ones live in
/// a FramePool cell referenced from the node. Envelopes are pinned — never
/// relocated — and recycled LIFO through the owning pool's free list, so a
/// raw Envelope* must NOT be held across a co_await (the analyzer's
/// A1.pooled check enforces this; see tests/analyze/fixtures/envelope_bad.cc).
struct Envelope {
  static constexpr size_t kInlineBytes = 192;

  template <typename T>
  static constexpr bool IsInline() {
    return sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t);
  }

  template <typename T>
  T* Payload() {
    if constexpr (IsInline<T>()) {
      return std::launder(reinterpret_cast<T*>(buf));
    } else {
      return static_cast<T*>(heap);
    }
  }

  template <typename T>
  static void DestroyPayload(Envelope* e) {
    if constexpr (IsInline<T>()) {
      std::launder(reinterpret_cast<T*>(e->buf))->~T();
    } else {
      static_cast<T*>(e->heap)->~T();
      detail::FramePool::Free(e->heap, sizeof(T));
      e->heap = nullptr;
    }
  }

  MsgTypeId type = 0;
  uint32_t next = kNilIndex;             // pool free-list link
  void (*destroy)(Envelope*) = nullptr;  // non-null while a payload is held
  void* heap = nullptr;                  // oversize payload cell (FramePool)
  alignas(std::max_align_t) unsigned char buf[kInlineBytes];
};

/// Slab allocator for Envelopes: chunked storage, LIFO free list, no
/// deallocation until the pool dies. Steady-state Make/Take/Free cycles
/// touch only the free list — zero heap traffic.
class EnvelopePool {
 public:
  EnvelopePool() = default;
  EnvelopePool(const EnvelopePool&) = delete;
  EnvelopePool& operator=(const EnvelopePool&) = delete;

  /// Tear-down safety: envelopes parked in never-dispatched delivery events
  /// (a simulation cut off mid-flight) still hold payloads; destroy them so
  /// owning resources (strings, buffers) are released.
  ~EnvelopePool() {
    for (auto& chunk : chunks_) {
      for (uint32_t i = 0; i < kChunk; i++) {
        Envelope& e = chunk[i];
        if (e.destroy != nullptr) e.destroy(&e);
      }
    }
  }

  template <typename T>
  Envelope* Make(T v) {
    Envelope* e = Alloc();
    e->type = MsgTypeIdOf<T>();
    if constexpr (Envelope::IsInline<T>()) {
      new (e->buf) T(std::move(v));
    } else {
      void* cell = detail::FramePool::Alloc(sizeof(T));
      e->heap = new (cell) T(std::move(v));
    }
    e->destroy = &Envelope::DestroyPayload<T>;
    return e;
  }

  /// Move the payload out and recycle the envelope.
  template <typename T>
  T Take(Envelope* e) {
    T v = std::move(*e->Payload<T>());
    Free(e);
    return v;
  }

  /// Destroy the payload (if any) and recycle the node — every drop path
  /// (dead destination, partition, message loss, stale reply) ends here.
  void Free(Envelope* e) {
    if (e->destroy != nullptr) {
      e->destroy(e);
      e->destroy = nullptr;
    }
    const uint32_t idx = IndexOf(e);
    e->next = free_head_;
    free_head_ = idx;
    in_use_--;
  }

  size_t capacity() const { return chunks_.size() * kChunk; }
  size_t in_use() const { return in_use_; }

 private:
  static constexpr uint32_t kChunk = 128;

  Envelope* Alloc() {
    if (free_head_ == kNilIndex) {
      const uint32_t base = static_cast<uint32_t>(chunks_.size() * kChunk);
      chunks_.push_back(std::make_unique<Envelope[]>(kChunk));
      for (uint32_t i = kChunk; i-- > 0;) {
        Envelope& e = chunks_.back()[i];
        e.next = free_head_;
        free_head_ = base + i;
      }
    }
    Envelope* e = At(free_head_);
    free_head_ = e->next;
    e->next = kNilIndex;
    in_use_++;
    return e;
  }

  Envelope* At(uint32_t idx) { return &chunks_[idx / kChunk][idx % kChunk]; }
  uint32_t IndexOf(const Envelope* e) const {
    for (uint32_t c = 0; c < chunks_.size(); c++) {
      if (e >= chunks_[c].get() && e < chunks_[c].get() + kChunk) {
        return static_cast<uint32_t>(c * kChunk + (e - chunks_[c].get()));
      }
    }
    return kNilIndex;
  }

  std::vector<std::unique_ptr<Envelope[]>> chunks_;
  uint32_t free_head_ = kNilIndex;
  size_t in_use_ = 0;
};

/// Durable per-node blob store: stands in for the node's local file system
/// (raft logs, snapshots, extent files survive a crash). Backed by a sorted
/// flat map so List() enumerates in name order — recovery paths iterate
/// the listing, and their scheduling order must not depend on hash layout.
///
/// Blobs are ropes (base string + appended chunks): the raft WAL appends a
/// few-KiB record per commit batch to a blob that grows to many MiB, and
/// keeping it contiguous meant geometric reallocation copied the whole log
/// over and over. Appends now push a chunk; Get() — recovery only —
/// compacts the rope back into the base string.
class StableStorage {
 public:
  void Put(const std::string& name, std::string data) {
    Blob& b = blobs_[name];
    b.base = std::move(data);
    b.chunks.clear();
    b.size = b.base.size();
  }
  void Append(const std::string& name, std::string_view data) {
    Blob& b = blobs_[name];
    b.chunks.emplace_back(data);
    b.size += data.size();
  }
  bool Get(const std::string& name, std::string* out) const {
    auto it = blobs_.find(name);
    if (it == blobs_.end()) return false;
    it->second.Compact();
    *out = it->second.base;
    return true;
  }
  bool Has(const std::string& name) const { return blobs_.count(name) > 0; }
  void Delete(const std::string& name) { blobs_.erase(name); }
  std::vector<std::string> List(const std::string& prefix) const {
    std::vector<std::string> names;
    for (const auto& [k, v] : blobs_) {
      if (k.rfind(prefix, 0) == 0) names.push_back(k);
    }
    return names;
  }
  uint64_t TotalBytes() const {
    uint64_t n = 0;
    for (const auto& [k, v] : blobs_) n += v.size;
    return n;
  }

 private:
  struct Blob {
    void Compact() const {
      if (chunks.empty()) return;
      base.reserve(size);
      for (const std::string& c : chunks) base.append(c);
      chunks.clear();
    }
    // Compaction is caching, not mutation: the logical value is unchanged.
    mutable std::string base;
    mutable std::vector<std::string> chunks;
    size_t size = 0;
  };
  FlatMap<std::string, Blob> blobs_;
};

struct HostOptions {
  int cpu_cores = 16;              // paper testbed: Xeon E5-2683V4, 16 cores
  int num_disks = 16;              // 16 x 960 GB SSD
  DiskOptions disk;
  uint64_t memory_bytes = 256ull * kGiB;  // 8 x 32 GB
};

class Network;

/// The caller's claim on a pending-call slot, handed to the handler side so
/// the reply can find its way back. A 16-byte POD — replaces the per-call
/// heap-allocated std::function reply closure of the boxing transport.
struct ReplyTicket {
  uint32_t slot = 0;
  uint32_t gen = 0;
  NodeId caller = kInvalidNode;  // the node awaiting the response
  NodeId callee = kInvalidNode;  // the node running the handler
};

/// Move-only type-erased handler entry with small-buffer storage:
/// `void(Network*, Envelope* request, NodeId from, ReplyTicket)`. The
/// registered closure (Host* + the user handler functor) almost always fits
/// inline; a larger one costs one heap cell at Register() time — never per
/// message.
class HandlerFn {
 public:
  static constexpr size_t kInlineBytes = 64;

  HandlerFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, HandlerFn>)
  explicit HandlerFn(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (buf_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(buf_)) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  HandlerFn(HandlerFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }
  HandlerFn& operator=(HandlerFn&& o) noexcept {
    if (this != &o) {
      Reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }
  HandlerFn(const HandlerFn&) = delete;
  HandlerFn& operator=(const HandlerFn&) = delete;
  ~HandlerFn() { Reset(); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }
  explicit operator bool() const { return ops_ != nullptr; }
  void operator()(Network* net, Envelope* req, NodeId from, ReplyTicket ticket) const {
    ops_->invoke(const_cast<unsigned char*>(buf_), net, req, from, ticket);
  }

 private:
  struct Ops {
    void (*invoke)(void*, Network*, Envelope*, NodeId, ReplyTicket);
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p, Network* net, Envelope* req, NodeId from, ReplyTicket t) {
      (*std::launder(reinterpret_cast<Fn*>(p)))(net, req, from, t);
    }
    static void Relocate(void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* p) { return *reinterpret_cast<Fn**>(p); }
    static void Invoke(void* p, Network* net, Envelope* req, NodeId from, ReplyTicket t) {
      (*Get(p))(net, req, from, t);
    }
    static void Relocate(void* dst, void* src) { std::memcpy(dst, src, sizeof(Fn*)); }
    static void Destroy(void* p) { delete Get(p); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/// A simulated machine: CPU, NIC accounting, disks, durable storage, and the
/// RPC handler registry. Hosts are never destroyed mid-simulation; a crash
/// marks the host down and bumps its epoch so in-flight handlers bail out.
class Host {
 public:
  Host(Scheduler* sched, NodeId id, const HostOptions& opts)
      : sched_(sched),
        id_(id),
        opts_(opts),
        cpu_(sched, opts.cpu_cores),
        nic_in_(sched, 1),
        nic_out_(sched, 1) {
    for (int i = 0; i < opts.num_disks; i++) {
      disks_.push_back(std::make_unique<Disk>(sched, opts.disk, id));
    }
  }

  NodeId id() const { return id_; }
  bool up() const { return up_; }
  uint64_t epoch() const { return epoch_; }

  void Crash() {
    up_ = false;
    epoch_++;
  }
  void Restart() {
    up_ = true;
    epoch_++;
    cpu_.Reset();
  }

  Resource& cpu() { return cpu_; }
  Resource& nic_in() { return nic_in_; }
  Resource& nic_out() { return nic_out_; }
  Disk* disk(int i) { return disks_[i].get(); }
  int num_disks() const { return static_cast<int>(disks_.size()); }
  StableStorage& storage() { return storage_; }
  const HostOptions& options() const { return opts_; }

  /// Tracked memory use (meta partitions report in; drives utilization-based
  /// placement, §2.3.1).
  uint64_t memory_used() const { return memory_used_; }
  void AddMemory(int64_t delta) {
    memory_used_ = static_cast<uint64_t>(static_cast<int64_t>(memory_used_) + delta);
  }
  double MemoryUtilization() const {
    return static_cast<double>(memory_used_) / static_cast<double>(opts_.memory_bytes);
  }
  double DiskUtilization() const {
    uint64_t used = 0, cap = 0;
    for (const auto& d : disks_) {
      used += d->used_bytes();
      cap += d->capacity_bytes();
    }
    return cap ? static_cast<double>(used) / static_cast<double>(cap) : 0.0;
  }
  /// Least-utilized local disk (data partitions are created there).
  int PickDisk() const {
    int best = 0;
    for (int i = 1; i < static_cast<int>(disks_.size()); i++) {
      if (disks_[i]->used_bytes() < disks_[best]->used_bytes()) best = i;
    }
    return best;
  }

  /// Register the coroutine handler for request type Req. `h` is
  /// `Task<Resp>(Req, NodeId from)`. Handlers live in a flat vector indexed
  /// by the dense MsgTypeId — delivery dispatch is one bounds check and an
  /// array load; the only handler-related allocation happens here, at
  /// registration. (Defined after Network below.)
  template <typename Req, typename Resp, typename F>
  void Register(F h);

  /// Remove all handlers (a decommissioned node).
  void ClearHandlers() { handlers_.clear(); }

  const HandlerFn* FindHandler(MsgTypeId t) const {
    if (t >= handlers_.size() || !handlers_[t]) return nullptr;
    return &handlers_[t];
  }

 private:
  friend class Network;

  /// Every registered handler runs under a "handler:<rpc>" span when the
  /// request is traced: the one interception point that covers master, meta
  /// and data services alike. The request payload is moved OUT of its pooled
  /// envelope before this coroutine starts, so handler code never touches
  /// recycled storage. `h` arrives by value (copied into the frame):
  /// ClearHandlers() while the handler is suspended cannot dangle it.
  template <typename Req, typename Resp, typename F>
  static Task<void> InvokeHandler(Host* self, Network* net, F h, Req req, NodeId from,
                                  ReplyTicket ticket);

  template <typename Req>
  obs::SpanScope OpenHandlerSpan(const Req& req) {
    if constexpr (HasTraceContext<Req>) {
      obs::Tracer& t = sched_->tracer();
      if (t.enabled() && req.trace.valid()) {
        return obs::SpanScope(&t, t.BeginSpan(MsgSpanHandler<Req>(), req.trace, id_));
      }
    }
    return {};
  }

  Scheduler* sched_;
  NodeId id_;
  HostOptions opts_;
  bool up_ = true;
  uint64_t epoch_ = 1;
  Resource cpu_;
  Resource nic_in_, nic_out_;
  std::vector<std::unique_ptr<Disk>> disks_;
  StableStorage storage_;
  uint64_t memory_used_ = 0;
  /// Flat handler table indexed by MsgTypeId. Ids are first-use-ordered and
  /// never iterated here — only point-indexed — so the (build-dependent)
  /// assignment order can't leak into scheduling decisions.
  std::vector<HandlerFn> handlers_;
};

struct NetworkOptions {
  SimDuration base_latency_usec = 120;  // same-datacenter RTT/2 incl. stack
  SimDuration jitter_usec = 30;
  uint64_t bandwidth_mib = 117;  // 1000 Mbps ~= 117 MiB/s (paper testbed NIC)
};

class Network {
 public:
  Network(Scheduler* sched, const NetworkOptions& opts = {}) : sched_(sched), opts_(opts) {}

  Scheduler* scheduler() { return sched_; }

  Host* AddHost(const HostOptions& opts = {}) {
    NodeId id = static_cast<NodeId>(hosts_.size() + 1);
    hosts_.push_back(std::make_unique<Host>(sched_, id, opts));
    return hosts_.back().get();
  }

  Host* host(NodeId id) { return hosts_[id - 1].get(); }
  size_t num_hosts() const { return hosts_.size(); }

  /// Bidirectional partition between two nodes.
  void SetPartitioned(NodeId a, NodeId b, bool partitioned) {
    auto key = std::minmax(a, b);
    if (partitioned) {
      partitions_.insert(key);
    } else {
      partitions_.erase(key);
    }
  }
  bool IsPartitioned(NodeId a, NodeId b) const {
    return partitions_.count(std::minmax(a, b)) > 0;
  }

  /// Probability that any given message is dropped (failure injection).
  void SetDropProbability(double p) { drop_prob_ = p; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  /// Timeout-watchdog accounting: replies delivered in time cancel their
  /// watchdog (audited — the phantom keeps the schedule hash intact); only
  /// genuinely lost/late calls let it fire.
  uint64_t rpc_timeouts_cancelled() const { return rpc_timeouts_cancelled_; }
  uint64_t rpc_timeouts_fired() const { return rpc_timeouts_fired_; }

  /// Pool/slab introspection (tests pin reuse and leak-freedom on these).
  EnvelopePool& envelope_pool() { return pool_; }
  size_t rpc_slots_in_use() const { return slots_in_use_; }
  size_t rpc_slot_capacity() const { return slots_.size(); }

  /// Awaitable returned by Call(): resolves to Result<Resp> (TimedOut on
  /// network-level failure). Holds only the slot coordinates — the pending
  /// state itself lives in the Network's recycled slab.
  template <typename Resp>
  struct RpcAwaitable {
    Network* net;
    uint32_t slot;
    uint32_t gen;
    SimDuration timeout;
    NodeId to;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { net->ArmRpc(slot, gen, h, timeout); }
    Result<Resp> await_resume() { return net->FinishRpc<Resp>(slot, gen, to); }
  };

  /// Issue a typed RPC. Network-level failures (timeout, drop, dead or
  /// partitioned destination) surface as Status::TimedOut; application-level
  /// errors travel inside Resp.
  ///
  /// This is the transport primitive, not the application API: service code
  /// goes through the rpc layer (src/rpc/ — rpc::Channel and the typed
  /// stubs), which adds deadlines, retry policy, leader routing and per-RPC
  /// metrics on top. lint.py R4 flags direct Call<> use outside src/rpc/;
  /// only the raft transport opts out site-by-site.
  ///
  /// Deliberately NOT a coroutine: gcc 12 double-destroys braced-init
  /// temporary arguments passed to coroutine parameters (observed with
  /// -fsanitize=address; aggregate prvalues only). A plain function
  /// returning an awaitable keeps every call site safe regardless of how
  /// the request argument is materialized.
  template <typename Req, typename Resp>
  RpcAwaitable<Resp> Call(NodeId from, NodeId to, Req req,
                          SimDuration timeout = kDefaultRpcTimeout) {
    const uint32_t slot = AllocSlot();
    const uint32_t gen = slots_[slot].gen;
    const size_t req_bytes = WireBytesOf(req);
    SendRequest(from, to, pool_.Make<Req>(std::move(req)), req_bytes,
                ReplyTicket{slot, gen, from, to});
    return RpcAwaitable<Resp>{this, slot, gen, timeout, to};
  }

  /// Reply-path entry (Host::InvokeHandler): charge the reverse transfer,
  /// then deliver into the caller's slot. Transfer metering and the audit
  /// mix happen before the drop check — the exact (odd, but golden-hashed)
  /// order of the transport this replaced.
  void Reply(ReplyTicket ticket, Envelope* resp, size_t resp_bytes) {
    SimTime at = TransferFinish(ticket.callee, ticket.caller, resp_bytes);
    MixTrace(ticket.callee, ticket.caller, resp_bytes, resp->type, at);
    if (ShouldDrop(ticket.callee, ticket.caller)) {
      pool_.Free(resp);
      return;
    }
    // Network is a sim-lifetime singleton owned by the harness (see
    // SendRequest): `this` in a deferred event cannot dangle.
    sched_->At(at, [this, ticket, resp] { DeliverReply(ticket, resp); });  // analyze:allow(A2)
  }

 private:
  /// One pending unary call. Slots are recycled through a free list; `gen`
  /// distinguishes the current occupant from stale replies/timeouts aimed at
  /// a previous one (the same trick TimerWheel plays with TimerIds).
  struct RpcSlot {
    std::coroutine_handle<> waiter = nullptr;
    Envelope* resp = nullptr;
    Scheduler::TimerId timer{};
    uint32_t gen = 0;
    uint32_t next_free = kNilIndex;
    bool delivered = false;  // waiter resumption initiated (reply or timeout)
  };

  /// Determinism auditor: fold one message into the trace hash. The
  /// registry's stored RTTI name (not the dense id, which is assignment-
  /// order-dependent) feeds the digest, so iteration-order or wall-clock
  /// bugs change the hash while ASLR and registration order do not.
  void MixTrace(NodeId from, NodeId to, size_t bytes, MsgTypeId type, SimTime at) {
    TraceHasher& t = sched_->trace();
    t.Mix(from);
    t.Mix(to);
    t.Mix(bytes);
    t.Mix(at);
    const MsgTypeRegistry::Info& info = MsgTypeRegistry::Instance().info(type);
    t.MixBytes(info.trace_name, info.trace_len);
  }

  bool ShouldDrop(NodeId from, NodeId to) {
    if (IsPartitioned(from, to)) return true;
    if (drop_prob_ > 0 && sched_->rng().Chance(drop_prob_)) return true;
    return false;
  }

  /// Charge sender egress + propagation + receiver ingress; returns the
  /// delivery completion time. Local (same-node) messages skip the NIC.
  SimTime TransferFinish(NodeId from, NodeId to, size_t bytes) {
    messages_sent_++;
    bytes_sent_ += bytes;
    if (from == to) return sched_->Now() + 2;  // loopback
    SimDuration wire = static_cast<SimDuration>(bytes * kSec / (opts_.bandwidth_mib * kMiB));
    SimTime out_done = host(from)->nic_out().Reserve(wire);
    SimDuration lat = opts_.base_latency_usec +
                      static_cast<SimDuration>(sched_->rng().Uniform(opts_.jitter_usec + 1));
    SimTime arrive = out_done + lat;
    // Ingress reservation begins when the bytes arrive.
    SimTime in_free = host(to)->nic_in().Reserve(wire);
    return std::max(arrive, in_free);
  }

  void SendRequest(NodeId from, NodeId to, Envelope* req, size_t bytes, ReplyTicket ticket) {
    if (ShouldDrop(from, to)) {
      pool_.Free(req);
      return;
    }
    SimTime at = TransferFinish(from, to, bytes);
    MixTrace(from, to, bytes, req->type, at);
    // The Network is a sim-lifetime singleton owned by the harness: it
    // strictly outlives every scheduled delivery, so capturing `this` into
    // the deferred event cannot dangle (crash schedules kill Hosts, checked
    // via h->up() below, never the Network itself).
    sched_->At(at, [this, to, from, req, ticket] {  // analyze:allow(A2)
      Host* h = host(to);
      const HandlerFn* handler = h->up() ? h->FindHandler(req->type) : nullptr;
      if (handler == nullptr) {
        // Dead node or no service registered: the request vanishes and the
        // caller's watchdog fires for real.
        pool_.Free(req);
        return;
      }
      (*handler)(this, req, from, ticket);
    });
  }

  void ArmRpc(uint32_t slot, uint32_t gen, std::coroutine_handle<> h, SimDuration timeout) {
    RpcSlot& s = slots_[slot];
    s.waiter = h;
    // Same singleton-lifetime argument as SendRequest for the `this` capture.
    s.timer = sched_->ScheduleAfter(timeout, [this, slot, gen] {  // analyze:allow(A2)
      TimeoutFire(slot, gen);
    });
  }

  void TimeoutFire(uint32_t slot, uint32_t gen) {
    RpcSlot& s = slots_[slot];
    if (s.gen != gen || s.delivered) return;
    rpc_timeouts_fired_++;
    s.delivered = true;
    s.timer = {};
    auto w = std::exchange(s.waiter, nullptr);
    if (w) w.resume();
  }

  void DeliverReply(ReplyTicket ticket, Envelope* resp) {
    RpcSlot& s = slots_[ticket.slot];
    if (s.gen != ticket.gen || s.delivered) {
      pool_.Free(resp);  // caller already timed out: late reply drops
      return;
    }
    s.resp = resp;
    s.delivered = true;
    // The watchdog leaves the wheel now (its closure is released, its node
    // recycled) but stays in the audited stream as a phantom — the schedule
    // hash and executed-event count are unchanged.
    if (sched_->CancelAudited(s.timer)) rpc_timeouts_cancelled_++;
    s.timer = {};
    // Resume via the scheduler at the current timestamp to bound recursion —
    // the same two-event delivery (store + resume) the promise path used.
    sched_->After(0, [this, slot = ticket.slot, gen = ticket.gen] {  // analyze:allow(A2)
      RpcSlot& s2 = slots_[slot];
      if (s2.gen != gen) return;
      auto w = std::exchange(s2.waiter, nullptr);
      if (w) w.resume();
    });
  }

  template <typename Resp>
  Result<Resp> FinishRpc(uint32_t slot, uint32_t gen, NodeId to) {
    RpcSlot& s = slots_[slot];
    (void)gen;  // the waiter is the slot's only consumer; gens match by construction
    if (s.resp != nullptr) {
      Envelope* e = std::exchange(s.resp, nullptr);
      FreeSlot(slot);
      return pool_.Take<Resp>(e);
    }
    FreeSlot(slot);
    // Built lazily: the timeout path is the only one that pays for the
    // message string.
    return Status::TimedOut("rpc to node " + std::to_string(to));
  }

  uint32_t AllocSlot() {
    uint32_t idx;
    if (slot_free_ != kNilIndex) {
      idx = slot_free_;
      slot_free_ = slots_[idx].next_free;
    } else {
      idx = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    slots_in_use_++;
    return idx;
  }

  void FreeSlot(uint32_t idx) {
    RpcSlot& s = slots_[idx];
    s.gen++;  // stale tickets/timers aimed at the old occupant miss
    s.waiter = nullptr;
    s.resp = nullptr;
    s.timer = {};
    s.delivered = false;
    s.next_free = slot_free_;
    slot_free_ = idx;
    slots_in_use_--;
  }

  Scheduler* sched_;
  NetworkOptions opts_;
  std::vector<std::unique_ptr<Host>> hosts_;
  FlatSet<std::pair<NodeId, NodeId>> partitions_;
  double drop_prob_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t rpc_timeouts_cancelled_ = 0;
  uint64_t rpc_timeouts_fired_ = 0;
  EnvelopePool pool_;
  /// Pending-call slab: deque for reference stability under growth; slots
  /// are recycled LIFO via the embedded free list.
  std::deque<RpcSlot> slots_;
  uint32_t slot_free_ = kNilIndex;
  size_t slots_in_use_ = 0;
};

// --- Host template definitions (need the complete Network type) -------------

template <typename Req, typename Resp, typename F>
void Host::Register(F h) {
  const MsgTypeId id = MsgTypeIdOf<Req>();
  if (handlers_.size() <= id) handlers_.resize(id + 1);
  handlers_[id] = HandlerFn(
      [this, h = std::move(h)](Network* net, Envelope* req, NodeId from, ReplyTicket ticket) {
        // Take() moves the payload out and recycles the envelope BEFORE the
        // handler coroutine can suspend — no pooled storage crosses a
        // co_await.
        Spawn(InvokeHandler<Req, Resp, F>(this, net, h, net->envelope_pool().Take<Req>(req),
                                          from, ticket));
      });
}

template <typename Req, typename Resp, typename F>
Task<void> Host::InvokeHandler(Host* self, Network* net, F h, Req req, NodeId from,
                               ReplyTicket ticket) {
  obs::SpanScope span = self->OpenHandlerSpan(req);
  Resp resp = co_await h(std::move(req), from);
  const size_t bytes = WireBytesOf(resp);
  net->Reply(ticket, net->envelope_pool().Make<Resp>(std::move(resp)), bytes);
}

}  // namespace cfs::sim
