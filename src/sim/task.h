// Coroutine primitives for the simulator: Task<T>, detached spawning,
// one-shot Future/Promise, and virtual-time sleep.
//
// Conventions:
//  * Task<T> is lazy: it starts when awaited (or when passed to Spawn).
//  * Everything is single-threaded; no synchronization anywhere.
//  * Components are never destroyed while their coroutines are in flight;
//    crashed nodes are marked down and their handlers bail out on epoch
//    checks (see sim::Host).
#pragma once

#include <cassert>
#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "sim/scheduler.h"

namespace cfs::sim {

template <typename T>
class Task;

namespace detail {

/// Size-class recycler for coroutine frames (DESIGN.md "Simulator
/// performance"). Every simulated op spawns a handful of short-lived
/// coroutines, so frame allocation is a hot malloc/free pair; this keeps
/// freed frames on per-size free lists (64-byte classes up to 4 KiB) and
/// hands them back LIFO — still-warm memory, no allocator round trip.
/// The RPC transport reuses the same pool for the rare message payload too
/// large for an Envelope's inline buffer (sim/network.h), so oversize
/// requests also recycle instead of round-tripping malloc.
/// Sized operator delete gives the class back without a header byte.
/// Single-threaded by simulator convention; frames larger than the largest
/// class (rare: big inline locals) fall through to the global allocator.
class FramePool {
 public:
  static void* Alloc(size_t n) {
    size_t cls = (n + kGran - 1) / kGran;
    if (cls >= kClasses) return ::operator new(n);
    void*& head = Buckets()[cls];
    if (head != nullptr) {
      void* p = head;
      head = *static_cast<void**>(p);
      return p;
    }
    return ::operator new(cls * kGran);
  }
  static void Free(void* p, size_t n) {
    size_t cls = (n + kGran - 1) / kGran;
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = Buckets()[cls];
    Buckets()[cls] = p;
  }

 private:
  static constexpr size_t kGran = 64;
  static constexpr size_t kClasses = 64;  // pools frames up to 4 KiB

  static void** Buckets() {
    static void* buckets[kClasses] = {};
    return buckets;
  }
};

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;

  static void* operator new(size_t n) { return FramePool::Alloc(n); }
  static void operator delete(void* p, size_t n) { FramePool::Free(p, n); }

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() { return std::move(*h.promise().value); }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> handle() const { return h_; }

 private:
  std::coroutine_handle<promise_type> h_ = nullptr;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {}
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> handle() const { return h_; }

 private:
  std::coroutine_handle<promise_type> h_ = nullptr;
};

namespace detail {

/// Self-destroying wrapper used by Spawn(): starts immediately, frees its
/// frame on completion.
struct Detached {
  struct promise_type {
    static void* operator new(size_t n) { return FramePool::Alloc(n); }
    static void operator delete(void* p, size_t n) { FramePool::Free(p, n); }
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline Detached RunDetached(Task<void> t) { co_await std::move(t); }

}  // namespace detail

/// Start `t` immediately as a fire-and-forget coroutine. The frame is
/// destroyed automatically when the task completes.
inline void Spawn(Task<void> t) { detail::RunDetached(std::move(t)); }

/// Awaitable that suspends the current coroutine for `d` virtual
/// microseconds: `co_await SleepFor(sched, d);`
struct SleepFor {
  Scheduler& sched;
  SimDuration d;
  bool await_ready() const noexcept { return d <= 0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sched.After(d, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

/// One-shot promise/future pair. Single waiter; Set() may race with a
/// timeout (whichever happens first resumes the waiter, the other is a
/// no-op).
template <typename T>
class Future {
 public:
  struct State {
    Scheduler* sched;
    std::optional<T> value;
    std::coroutine_handle<> waiter;
    bool delivered = false;  // waiter already resumed (by value or timeout)
  };

  explicit Future(std::shared_ptr<State> st) : st_(std::move(st)) {}

  bool ready() const { return st_->value.has_value(); }

  /// Await with a timeout; returns nullopt on timeout.
  auto WithTimeout(SimDuration timeout) {
    struct Awaiter {
      std::shared_ptr<State> st;
      SimDuration timeout;
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        st->waiter = h;
        auto st_copy = st;
        st->sched->After(timeout, [st_copy] {
          if (!st_copy->delivered && st_copy->waiter) {
            st_copy->delivered = true;
            auto w = std::exchange(st_copy->waiter, nullptr);
            w.resume();
          }
        });
      }
      std::optional<T> await_resume() {
        if (st->value.has_value()) {
          std::optional<T> v = std::move(st->value);
          return v;
        }
        return std::nullopt;
      }
    };
    return Awaiter{st_, timeout};
  }

  /// Await without a timeout (used by tests and internal barriers).
  auto operator co_await() {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) { st->waiter = h; }
      T await_resume() { return std::move(*st->value); }
    };
    return Awaiter{st_};
  }

 private:
  std::shared_ptr<State> st_;
};

template <typename T>
class Promise {
 public:
  explicit Promise(Scheduler* sched) : st_(std::make_shared<typename Future<T>::State>()) {
    st_->sched = sched;
  }

  Future<T> future() const { return Future<T>(st_); }

  /// Deliver the value. The waiter (if any, and not already timed out) is
  /// resumed via the scheduler at the current timestamp to bound recursion.
  void Set(T v) const {
    if (st_->value.has_value()) return;  // idempotent
    st_->value = std::move(v);
    if (st_->waiter && !st_->delivered) {
      st_->delivered = true;
      auto st = st_;
      st_->sched->After(0, [st] {
        auto w = std::exchange(st->waiter, nullptr);
        if (w) w.resume();
      });
    }
  }

  bool has_waiter() const { return st_->waiter != nullptr; }

  const std::shared_ptr<typename Future<T>::State>& state() const { return st_; }

 private:
  std::shared_ptr<typename Future<T>::State> st_;
};

/// Join helper: spawn `n` subtasks and await all. Usage:
///   Join j(&sched, n); for (...) Spawn(Work(..., j.Arrive())); co_await j.Wait();
class Join {
 public:
  Join(Scheduler* sched, int n) : sched_(sched), remaining_(std::make_shared<int>(n)), promise_(sched) {
    if (n == 0) promise_.Set(true);
  }

  /// Returns a completion callback to invoke exactly once per subtask.
  std::function<void()> Arrive() {
    auto rem = remaining_;
    auto p = promise_;
    return [rem, p] {
      if (--*rem == 0) p.Set(true);
    };
  }

  Task<void> Wait() {
    co_await promise_.future();
  }

 private:
  Scheduler* sched_;
  std::shared_ptr<int> remaining_;
  Promise<bool> promise_;
};

}  // namespace cfs::sim
