// Hierarchical timer wheel + pooled event records: the scheduler's event
// queue (see DESIGN.md "Simulator performance").
//
// Replaces the std::priority_queue<Event, vector, greater<>> heap: O(log n)
// sift costs and per-event std::function heap traffic dominated simulator
// profiles once pending-event counts reached cluster scale (every in-flight
// RPC parks a timeout event; a 100-node bench keeps tens of thousands
// pending). The wheel gives O(1) insert, O(1) amortized pop, and recycles
// fixed-size event nodes through a slab free list so steady-state scheduling
// performs no allocation at all; callbacks live in a small-buffer-optimized
// move-only EventFn, so typical closures (coroutine resumptions, delivery
// thunks) stay inline in the node.
//
// Layout: 8 levels x 256 slots, keyed on the *absolute* event tick — the
// slot of an event at level L is byte L of its 64-bit virtual time. An event
// is filed at the highest byte in which its tick differs from the wheel
// cursor `wcur_` (the level-0 block holds the next 256 us, level 1 the rest
// of the current 64 Ki-us region, and so on). The cursor only moves forward
// and never passes a live event, which yields the key invariant: a live node
// at level L agrees with the cursor on every byte above L. Cascading is
// therefore local — whenever the cursor enters a region, the one slot it
// points at per level is redistributed downward — and a level-0 slot holds
// exactly one tick's events.
//
// Determinism: dispatch collects one tick's nodes and sorts them by the
// scheduler-assigned sequence number, so execution order is exactly
// (time, seq) — byte-identical to the heap it replaces (tests/
// schedule_hash_test.cc pins that with golden hashes). Cancellation is lazy
// (mark + sweep on contact) so cancelled timers cost nothing to remove and
// never perturb live ordering.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace cfs::sim {

constexpr uint32_t kNilIndex = 0xffffffffu;

/// Move-only type-erased callable with small-buffer optimization. Most
/// scheduler callbacks (coroutine resumptions, RPC delivery thunks) fit the
/// inline buffer, so scheduling an event allocates nothing; larger closures
/// fall back to one heap cell.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 80;

  EventFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      new (buf_) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *reinterpret_cast<Fn**>(static_cast<void*>(buf_)) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  EventFn(EventFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      Reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }
  explicit operator bool() const { return ops_ != nullptr; }
  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); }
    static void Relocate(void* dst, void* src) {
      Fn* s = std::launder(reinterpret_cast<Fn*>(src));
      new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void Destroy(void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* p) { return *reinterpret_cast<Fn**>(p); }
    static void Invoke(void* p) { (*Get(p))(); }
    static void Relocate(void* dst, void* src) { std::memcpy(dst, src, sizeof(Fn*)); }
    static void Destroy(void* p) { delete Get(p); }
    static constexpr Ops kOps = {&Invoke, &Relocate, &Destroy};
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/// One pending event. Nodes live in the wheel's slab and are recycled
/// through a free list; `gen` is bumped whenever a node leaves pending state
/// (execution or recycle), invalidating outstanding TimerIds.
struct EventNode {
  SimTime time = 0;
  uint64_t seq = 0;
  uint32_t next = kNilIndex;  // intrusive slot-list link / free-list link
  uint32_t gen = 0;
  uint32_t self = kNilIndex;  // own slab index
  bool cancelled = false;
  EventFn fn;
};

class TimerWheel {
 public:
  /// Cancellable handle returned by Insert. Stale ids (event already ran or
  /// was cancelled) are detected via the node generation counter.
  struct TimerId {
    uint32_t index = kNilIndex;
    uint32_t gen = 0;
    bool valid() const { return index != kNilIndex; }
  };

  static constexpr SimTime kNoLimit = INT64_MAX;

  TimerId Insert(SimTime t, uint64_t seq, EventFn fn) {
    if (Tick(t) < wcur_) RebuildFor(t);  // defensive; scheduler keeps Now() >= cursor
    uint32_t idx = AllocNode();
    EventNode& n = Node(idx);
    n.time = t;
    n.seq = seq;
    n.cancelled = false;
    n.fn = std::move(fn);
    live_++;
    Place(idx);
    return TimerId{idx, n.gen};
  }

  /// Lazily cancel a pending event: O(1) mark now, node reclaimed when the
  /// dispatch path next touches it. Returns false for stale ids (already
  /// executed, already cancelled, or recycled).
  bool Cancel(TimerId id) { return Cancel(id, nullptr, nullptr); }

  /// Cancel variant reporting the cancelled event's (time, seq) — the
  /// scheduler's audited cancellation replays that pair into the trace
  /// digest as a phantom so the executed-event stream is unchanged
  /// (Scheduler::CancelAudited).
  bool Cancel(TimerId id, SimTime* time, uint64_t* seq) {
    if (!id.valid() || id.index >= num_nodes_) return false;
    EventNode& n = Node(id.index);
    if (n.gen != id.gen || n.cancelled) return false;
    if (time != nullptr) *time = n.time;
    if (seq != nullptr) *seq = n.seq;
    n.cancelled = true;
    n.fn.Reset();  // release captured resources eagerly
    live_--;
    return true;
  }

  /// Pop the next event with time <= limit in (time, seq) order, or nullptr.
  /// The caller runs the callback and then hands the node back via Recycle.
  /// When nullptr is returned with a finite limit, the cursor has advanced
  /// to `limit` (there is provably nothing at or before it).
  EventNode* PopRunnable(SimTime limit) {
    for (;;) {
      while (ready_pos_ < ready_.size()) {
        uint32_t idx = ready_[ready_pos_];
        EventNode& n = Node(idx);
        if (n.time > limit) return nullptr;  // whole batch shares one tick
        ready_pos_++;
        if (n.cancelled) {
          FreeNode(idx);
          continue;
        }
        live_--;
        n.gen++;  // from here on the id is stale: too late to cancel
        return &n;
      }
      ready_.clear();
      ready_pos_ = 0;
      if (!FindNext(limit)) return nullptr;
    }
  }

  void Recycle(EventNode* n) { FreeNode(n->self); }

  size_t live() const { return live_; }
  bool empty() const { return live_ == 0; }

 private:
  static constexpr int kLevels = 8;
  static constexpr int kSlots = 256;
  static constexpr uint32_t kChunk = 512;

  struct Slot {
    uint32_t head = kNilIndex;
    uint32_t tail = kNilIndex;
  };

  static uint64_t Tick(SimTime t) { return static_cast<uint64_t>(t); }
  static int ByteOf(uint64_t tick, int level) {
    return static_cast<int>((tick >> (8 * level)) & 0xff);
  }

  EventNode& Node(uint32_t i) { return chunks_[i / kChunk][i % kChunk]; }

  uint32_t AllocNode() {
    if (free_head_ == kNilIndex) {
      uint32_t base = num_nodes_;
      chunks_.push_back(std::make_unique<EventNode[]>(kChunk));
      num_nodes_ += kChunk;
      for (uint32_t i = kChunk; i-- > 0;) {
        EventNode& n = chunks_.back()[i];
        n.self = base + i;
        n.next = free_head_;
        free_head_ = base + i;
      }
    }
    uint32_t idx = free_head_;
    free_head_ = Node(idx).next;
    return idx;
  }

  void FreeNode(uint32_t idx) {
    EventNode& n = Node(idx);
    n.fn.Reset();
    n.cancelled = false;
    n.gen++;
    n.next = free_head_;
    free_head_ = idx;
  }

  /// File a node at the highest byte where its tick differs from the cursor.
  int LevelFor(uint64_t tick) const {
    uint64_t x = tick ^ wcur_;
    if (x == 0) return 0;
    return (63 - std::countl_zero(x)) >> 3;
  }

  void Place(uint32_t idx) {
    uint64_t tick = Tick(Node(idx).time);
    int level = LevelFor(tick);
    PushAt(level, ByteOf(tick, level), idx);
  }

  void PushAt(int level, int slot, uint32_t idx) {
    Node(idx).next = kNilIndex;
    Slot& s = slots_[level][slot];
    if (s.tail == kNilIndex) {
      s.head = s.tail = idx;
      occ_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
    } else {
      Node(s.tail).next = idx;
      s.tail = idx;
    }
  }

  bool Occupied(int level, int slot) const {
    return (occ_[level][slot >> 6] >> (slot & 63)) & 1;
  }

  /// Lowest occupied slot >= from at `level`, or -1.
  int NextOccupied(int level, int from) const {
    if (from >= kSlots) return -1;
    int w = from >> 6;
    uint64_t word = occ_[level][w] & (~uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) return (w << 6) + std::countr_zero(word);
      if (++w >= kSlots / 64) return -1;
      word = occ_[level][w];
    }
  }

  /// Detach a slot's list (clearing its occupancy bit) and return the head.
  uint32_t DetachSlot(int level, int slot) {
    Slot& s = slots_[level][slot];
    uint32_t head = s.head;
    s.head = s.tail = kNilIndex;
    occ_[level][slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    return head;
  }

  /// Redistribute a slot the cursor points into: live nodes re-file at a
  /// strictly lower level (their byte here equals the cursor's), cancelled
  /// debris is reclaimed.
  void CascadeSlot(int level, int slot) {
    uint32_t i = DetachSlot(level, slot);
    while (i != kNilIndex) {
      uint32_t nx = Node(i).next;
      if (Node(i).cancelled) {
        FreeNode(i);
      } else {
        Place(i);
      }
      i = nx;
    }
  }

  bool SlotHasLive(int level, int slot) {
    for (uint32_t i = slots_[level][slot].head; i != kNilIndex; i = Node(i).next) {
      if (!Node(i).cancelled) return true;
    }
    return false;
  }

  void DrainCancelledSlot(int level, int slot) {
    uint32_t i = DetachSlot(level, slot);
    while (i != kNilIndex) {
      uint32_t nx = Node(i).next;
      FreeNode(i);
      i = nx;
    }
  }

  /// Collect the tick at level-0 slot `slot` into ready_, sorted by seq.
  void CollectTick(int slot) {
    uint32_t i = DetachSlot(0, slot);
    while (i != kNilIndex) {
      uint32_t nx = Node(i).next;
      if (Node(i).cancelled) {
        FreeNode(i);
      } else {
        ready_.push_back(i);
      }
      i = nx;
    }
    std::sort(ready_.begin(), ready_.end(),
              [this](uint32_t a, uint32_t b) { return Node(a).seq < Node(b).seq; });
  }

  /// Advance the cursor to the next live tick <= limit and fill ready_ with
  /// that tick's events. Returns false (cursor parked at `limit` when it is
  /// finite) if no live event is due.
  bool FindNext(SimTime limit) {
    uint64_t lim = Tick(limit < 0 ? 0 : limit);
    if (live_ == 0) {
      if (limit != kNoLimit && lim > wcur_) wcur_ = lim;
      return false;
    }
    if (lim < wcur_) return false;
    for (;;) {
      // The cursor just entered this position: redistribute every slot it
      // points into, coarsest level first (each cascade can feed the next).
      for (int level = kLevels - 1; level >= 1; level--) {
        int slot = ByteOf(wcur_, level);
        if (Occupied(level, slot)) CascadeSlot(level, slot);
      }
      // Scan the current level-0 block (one slot == one tick).
      int s = NextOccupied(0, ByteOf(wcur_, 0));
      while (s >= 0) {
        uint64_t t0 = (wcur_ & ~uint64_t{0xff}) | static_cast<uint64_t>(s);
        if (SlotHasLive(0, s)) {
          // Live level-0 nodes agree with the cursor above byte 0, so their
          // time is exactly t0.
          if (t0 > lim) {
            wcur_ = lim;  // same block: no live event in (wcur_, lim]
            return false;
          }
          wcur_ = t0;
          CollectTick(s);
          return true;
        }
        DrainCancelledSlot(0, s);
        s = NextOccupied(0, s + 1);
      }
      // Block exhausted: jump to the next occupied region. Finer levels are
      // strictly nearer in time than coarser ones (the cursor's own slots
      // were already cascaded), so take the first live slot bottom-up.
      bool advanced = false;
      for (int level = 1; level < kLevels && !advanced; level++) {
        int s2 = NextOccupied(level, ByteOf(wcur_, level) + 1);
        while (s2 >= 0) {
          if (SlotHasLive(level, s2)) {
            uint64_t low_mask = level == kLevels - 1
                                    ? ~uint64_t{0}
                                    : (uint64_t{1} << (8 * (level + 1))) - 1;
            uint64_t base =
                (wcur_ & ~low_mask) | (static_cast<uint64_t>(s2) << (8 * level));
            if (base > lim) {
              if (lim > wcur_) wcur_ = lim;
              return false;
            }
            wcur_ = base;
            advanced = true;
            break;
          }
          DrainCancelledSlot(level, s2);
          s2 = NextOccupied(level, s2 + 1);
        }
      }
      if (!advanced) {
        // live_ > 0 yet nothing found anywhere ahead of the cursor — only
        // reachable if an invariant broke; fail closed instead of spinning.
        return false;
      }
    }
  }

  /// Cursor retreat (insert below wcur_): re-place every pending node
  /// relative to the new cursor. The scheduler never triggers this (events
  /// clamp to Now() >= cursor); kept for direct wheel users.
  void RebuildFor(SimTime t) {
    std::vector<uint32_t> pending;
    for (int level = 0; level < kLevels; level++) {
      for (int slot = NextOccupied(level, 0); slot >= 0;
           slot = NextOccupied(level, slot + 1)) {
        uint32_t i = DetachSlot(level, slot);
        while (i != kNilIndex) {
          uint32_t nx = Node(i).next;
          if (Node(i).cancelled) {
            FreeNode(i);
          } else {
            pending.push_back(i);
          }
          i = nx;
        }
      }
    }
    wcur_ = Tick(t);
    for (uint32_t idx : pending) Place(idx);
  }

  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  uint32_t num_nodes_ = 0;
  uint32_t free_head_ = kNilIndex;
  Slot slots_[kLevels][kSlots];
  uint64_t occ_[kLevels][kSlots / 64] = {};
  /// Wheel cursor: <= every live event's tick; only moves forward (except
  /// the defensive RebuildFor path).
  uint64_t wcur_ = 0;
  size_t live_ = 0;
  /// Current tick's dispatch batch (indices, seq-sorted), consumed from
  /// ready_pos_. Same-tick events inserted during dispatch land in the wheel
  /// and are collected as a follow-up batch — their seqs are higher, so
  /// (time, seq) order is preserved.
  std::vector<uint32_t> ready_;
  size_t ready_pos_ = 0;
};

}  // namespace cfs::sim
