// Simulated SSD: a queued service-time model plus space accounting with
// punch-hole support (stand-in for fallocate(FALLOC_FL_PUNCH_HOLE), §2.2.3).
//
// The disk does not store bytes — data contents live in the extent store —
// but it charges virtual time for every read/write and tracks allocated
// space, including ranges later released by hole punching.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/resource.h"

namespace cfs::sim {

struct DiskOptions {
  /// Fixed per-op latencies (SSD-class defaults). Writes model synchronous
  /// (fsync-grade) commits — raft logs and extent stores ack only after
  /// durability, which on SATA-era SSDs costs a few hundred microseconds.
  SimDuration read_latency_usec = 90;
  SimDuration write_latency_usec = 200;
  /// Sustained bandwidth in MiB/s.
  uint64_t bandwidth_mib = 400;
  /// Internal parallelism (NVMe/SATA queue lanes).
  int queue_depth = 8;
  /// Capacity in bytes (paper testbed: 960 GB per SSD).
  uint64_t capacity_bytes = 960ull * kGiB;
};

class Disk {
 public:
  /// Passive per-op hook: (is_read, end-to-end latency incl. queueing, trace
  /// id of the issuing op). Invoked synchronously when an op completes —
  /// pure observation, never a scheduler event (health telemetry taps this).
  using OpObserver = std::function<void(bool, SimDuration, uint64_t)>;

  /// `node` labels this disk's spans with the owning host (0 = unattached),
  /// so per-node tracks line up in trace viewers.
  Disk(Scheduler* sched, const DiskOptions& opts = {}, uint32_t node = 0)
      : sched_(sched), opts_(opts), queue_(sched, opts.queue_depth), node_(node) {}

  /// Charge time for reading `bytes`. A traced caller passes its context so
  /// the queue+service interval shows up as a "disk:read" span (bytes and
  /// the queue backlog at entry annotated).
  Task<Status> Read(uint64_t bytes, obs::TraceContext trace = {}) {
    if (failed_) co_return Status::IOError("disk failed");
    obs::SpanScope span = OpenSpan("disk:read", trace, bytes);
    const SimTime op_start = sched_->Now();
    co_await queue_.Use(ServiceTime(bytes, opts_.read_latency_usec));
    reads_++;
    read_bytes_ += bytes;
    if (op_observer_) op_observer_(true, sched_->Now() - op_start, trace.trace_id);
    co_return Status::OK();
  }

  /// Charge time for writing `bytes` and account the space.
  Task<Status> Write(uint64_t bytes, obs::TraceContext trace = {}) {
    if (failed_) co_return Status::IOError("disk failed");
    if (used_ + bytes > opts_.capacity_bytes) co_return Status::NoSpace("disk full");
    obs::SpanScope span = OpenSpan("disk:write", trace, bytes);
    const SimTime op_start = sched_->Now();
    co_await queue_.Use(ServiceTime(bytes, opts_.write_latency_usec));
    used_ += bytes;
    writes_++;
    write_bytes_ += bytes;
    if (op_observer_) op_observer_(false, sched_->Now() - op_start, trace.trace_id);
    co_return Status::OK();
  }

  /// Release `bytes` of previously written space (punch hole / delete).
  /// Asynchronous space reclamation is modelled as immediate accounting; the
  /// caller is responsible for scheduling it off the foreground path.
  void PunchHole(uint64_t bytes) {
    punched_bytes_ += bytes;
    used_ = used_ >= bytes ? used_ - bytes : 0;
  }

  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

  /// Gray-failure injection: multiply every op's service time by `factor`
  /// (1 = nominal). Unlike set_failed, ops still succeed — they are just
  /// slow, which is exactly the failure mode binary liveness checks miss.
  void set_slow_factor(uint32_t factor) { slow_factor_ = factor > 0 ? factor : 1; }
  uint32_t slow_factor() const { return slow_factor_; }

  void set_op_observer(OpObserver obs) { op_observer_ = std::move(obs); }

  uint64_t used_bytes() const { return used_; }
  uint64_t capacity_bytes() const { return opts_.capacity_bytes; }
  double utilization() const {
    return static_cast<double>(used_) / static_cast<double>(opts_.capacity_bytes);
  }
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t read_bytes() const { return read_bytes_; }
  uint64_t write_bytes() const { return write_bytes_; }
  uint64_t punched_bytes() const { return punched_bytes_; }

  SimDuration QueueDelay() const { return queue_.QueueDelay(); }
  void ResetQueue() { queue_.Reset(); }

 private:
  SimDuration ServiceTime(uint64_t bytes, SimDuration base) const {
    const SimDuration t =
        base + static_cast<SimDuration>(bytes * kSec / (opts_.bandwidth_mib * kMiB));
    return t * static_cast<SimDuration>(slow_factor_);
  }

  obs::SpanScope OpenSpan(std::string_view name, const obs::TraceContext& trace,
                          uint64_t bytes) {
    obs::Tracer& t = sched_->tracer();
    obs::SpanRef ref = t.BeginSpan(name, trace, node_);
    if (ref.valid()) {
      t.Note(ref, "bytes", static_cast<int64_t>(bytes));
      t.Note(ref, "queue_usec", queue_.QueueDelay());
    }
    return obs::SpanScope(&t, ref);
  }

  Scheduler* sched_;
  DiskOptions opts_;
  Resource queue_;
  uint32_t node_ = 0;
  bool failed_ = false;
  uint32_t slow_factor_ = 1;
  OpObserver op_observer_;
  uint64_t used_ = 0;
  uint64_t reads_ = 0, writes_ = 0;
  uint64_t read_bytes_ = 0, write_bytes_ = 0;
  uint64_t punched_bytes_ = 0;
};

}  // namespace cfs::sim
