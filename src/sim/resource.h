// Analytic queueing resources for the simulator.
//
// Resource models a FIFO station with `servers` parallel servers (a CPU with
// N cores, a disk with queue depth Q, a NIC with 1 "server"). A reservation
// made at time `now` for `service` microseconds starts when the earliest
// server frees up and occupies it for `service`; the caller sleeps until the
// finish time. Queueing delay under load emerges naturally, which is what
// produces the concurrency/saturation shapes in the paper's figures.
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs::sim {

class Resource {
 public:
  Resource(Scheduler* sched, int servers) : sched_(sched) { free_at_.assign(servers, 0); }

  /// Reserve one server for `service` usec; returns the finish time.
  SimTime Reserve(SimDuration service) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    SimTime start = std::max(*it, sched_->Now());
    SimTime end = start + service;
    *it = end;
    busy_usec_ += service;
    ops_++;
    return end;
  }

  /// Reserve and suspend until the work completes.
  Task<void> Use(SimDuration service) {
    SimTime end = Reserve(service);
    co_await SleepFor{*sched_, end - sched_->Now()};
  }

  /// Current backlog of the least-loaded server, in usec.
  SimDuration QueueDelay() const {
    SimTime earliest = *std::min_element(free_at_.begin(), free_at_.end());
    return std::max<SimDuration>(0, earliest - sched_->Now());
  }

  int servers() const { return static_cast<int>(free_at_.size()); }
  uint64_t ops() const { return ops_; }
  SimDuration busy_usec() const { return busy_usec_; }

  /// Forget all backlog (used when a node restarts).
  void Reset() { std::fill(free_at_.begin(), free_at_.end(), 0); }

 private:
  Scheduler* sched_;
  std::vector<SimTime> free_at_;
  SimDuration busy_usec_ = 0;
  uint64_t ops_ = 0;
};

}  // namespace cfs::sim
