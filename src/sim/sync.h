// Coroutine notification primitive: many waiters, NotifyAll resumes them via
// the scheduler at the current virtual time (no synchronization — the whole
// simulation is single-threaded).
#pragma once

#include <coroutine>
#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace cfs::sim {

class Notifier {
 public:
  explicit Notifier(Scheduler* sched) : sched_(sched) {}

  /// Awaitable: suspend until the next NotifyAll().
  auto Wait() {
    struct Awaiter {
      Notifier* n;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { n->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Resume all current waiters (scheduled, not inline, to bound recursion).
  void NotifyAll() {
    if (waiters_.empty()) return;
    auto ws = std::move(waiters_);
    waiters_.clear();
    sched_->After(0, [ws = std::move(ws)] {
      for (auto h : ws) h.resume();
    });
  }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace cfs::sim
