// Coroutine synchronization primitives: Notifier (many waiters, NotifyAll
// resumes them via the scheduler at the current virtual time) and Semaphore
// (bounded counter, FIFO waiters). No synchronization anywhere — the whole
// simulation is single-threaded.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/scheduler.h"

namespace cfs::sim {

class Notifier {
 public:
  explicit Notifier(Scheduler* sched) : sched_(sched) {}

  /// Awaitable: suspend until the next NotifyAll().
  auto Wait() {
    struct Awaiter {
      Notifier* n;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { n->waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Resume all current waiters (scheduled, not inline, to bound recursion).
  /// The overwhelmingly common case is a single waiter (one fetcher parked on
  /// a cache notifier): its handle is captured inline in the pooled event and
  /// the waiters vector keeps its capacity, so that path never allocates.
  /// Either way exactly one After(0) event is scheduled — the fast path is
  /// invisible to the audited schedule.
  void NotifyAll() {
    if (waiters_.empty()) return;
    if (waiters_.size() == 1) {
      auto h = waiters_.front();
      waiters_.clear();
      sched_->After(0, [h] { h.resume(); });
      return;
    }
    auto ws = std::move(waiters_);
    waiters_.clear();
    sched_->After(0, [ws = std::move(ws)] {
      for (auto h : ws) h.resume();
    });
  }

  size_t num_waiters() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Bounded-counter awaitable: the window gate of the pipelined write path.
/// Acquire() consumes a permit, suspending FIFO when none are available;
/// Release() returns one, handing it to the oldest waiter directly (no
/// barging: a release with queued waiters never lets a fresh Acquire() jump
/// the line). Waiters resume via the scheduler to bound recursion.
class Semaphore {
 public:
  Semaphore(Scheduler* sched, int64_t permits) : sched_(sched), permits_(permits) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Awaitable. Resumes with `true` if the acquire had to suspend (a window
  /// stall) and `false` if a permit was free immediately.
  auto Acquire() {
    struct Awaiter {
      Semaphore* s;
      bool stalled = false;
      bool await_ready() noexcept {
        if (s->waiters_.empty() && s->permits_ > 0) {
          s->permits_--;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        stalled = true;
        s->waiters_.push_back(h);
      }
      bool await_resume() const noexcept { return stalled; }
    };
    return Awaiter{this};
  }

  /// Non-blocking acquire; returns false instead of suspending.
  bool TryAcquire() {
    if (!waiters_.empty() || permits_ <= 0) return false;
    permits_--;
    return true;
  }

  /// Return `n` permits, resuming up to `n` queued waiters in FIFO order.
  void Release(int64_t n = 1) {
    permits_ += n;
    while (!waiters_.empty() && permits_ > 0) {
      permits_--;  // the permit is handed to the waiter, not pooled
      auto h = waiters_.front();
      waiters_.pop_front();
      sched_->After(0, [h] { h.resume(); });
    }
  }

  int64_t available() const { return permits_; }
  size_t num_waiters() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  int64_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace cfs::sim
