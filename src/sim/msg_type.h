// Dense message-type registry: every RPC request/response struct gets a
// small integer MsgTypeId the first time the transport sees it, assigned
// through a function-local static in MsgTypeIdOf<T>(). Handler dispatch and
// envelope typing index flat arrays with it — no std::type_index, no RTTI
// hashing on the hot path.
//
// Determinism: ids are assigned in first-use order, which is stable for a
// given binary + workload but NOT across builds — so ids never feed the
// trace hash or any ordered iteration. What does feed the determinism
// digest is the registered type's RTTI *name* (Itanium-ABI-stable across
// gcc/clang builds): the registry captures the exact bytes MixTrace hashed
// before this registry existed, keeping golden schedule hashes byte-
// identical (tests/schedule_hash_test.cc).
//
// The registry also interns the per-type span labels ("rpc:<name>",
// "handler:<name>", "call:<name>") that the rpc layer and Host used to
// rebuild with a string concatenation on every traced call.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <typeinfo>

namespace cfs::sim {

/// Messages name themselves (kRpcName) for metrics and span labels; anything
/// without one falls back to the (mangled, stable-within-a-build) RTTI name.
template <typename T>
concept HasMsgName = requires {
  { T::kRpcName } -> std::convertible_to<const char*>;
};

template <typename T>
const char* MsgNameOf() {
  if constexpr (HasMsgName<T>) {
    return T::kRpcName;
  } else {
    return typeid(T).name();
  }
}

using MsgTypeId = uint32_t;

class MsgTypeRegistry {
 public:
  struct Info {
    const char* name;        // kRpcName (metric key) or RTTI fallback
    const char* trace_name;  // typeid(T).name(): the determinism-digest bytes
    size_t trace_len;
    std::string span_rpc;      // "rpc:<name>"     (Channel leg span)
    std::string span_handler;  // "handler:<name>" (Host handler span)
    std::string span_call;     // "call:<name>"    (service logical-call span)
  };

  static MsgTypeRegistry& Instance() {
    static MsgTypeRegistry r;
    return r;
  }

  MsgTypeId Register(const char* name, const std::type_info& ti) {
    const char* tn = ti.name();
    infos_.push_back(Info{name, tn, std::strlen(tn), std::string("rpc:") + name,
                          std::string("handler:") + name, std::string("call:") + name});
    return static_cast<MsgTypeId>(infos_.size() - 1);
  }

  /// Stable reference (deque storage never relocates registered entries).
  const Info& info(MsgTypeId id) const { return infos_[id]; }
  size_t size() const { return infos_.size(); }

 private:
  MsgTypeRegistry() = default;
  std::deque<Info> infos_;
};

/// The dense id of message type T, assigned on first use. Process-global:
/// every Network/Host in the process shares one id space (benches construct
/// several simulations per run).
template <typename T>
MsgTypeId MsgTypeIdOf() {
  static const MsgTypeId id =
      MsgTypeRegistry::Instance().Register(MsgNameOf<T>(), typeid(T));
  return id;
}

/// Interned span labels: one allocation per *type* at registration, shared
/// by every call (obs::Tracer::BeginSpan takes a string_view).
template <typename T>
const std::string& MsgSpanRpc() {
  return MsgTypeRegistry::Instance().info(MsgTypeIdOf<T>()).span_rpc;
}
template <typename T>
const std::string& MsgSpanHandler() {
  return MsgTypeRegistry::Instance().info(MsgTypeIdOf<T>()).span_handler;
}
template <typename T>
const std::string& MsgSpanCall() {
  return MsgTypeRegistry::Instance().info(MsgTypeIdOf<T>()).span_call;
}

}  // namespace cfs::sim
