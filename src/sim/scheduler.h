// Discrete-event scheduler: the heart of the simulation substrate.
//
// All cluster components (raft groups, meta/data nodes, clients) run as
// C++20 coroutines scheduled on a single virtual-time event loop. Events at
// the same timestamp execute in scheduling order, so runs are fully
// deterministic given a seed. The queue itself is a hierarchical timer
// wheel over pooled event nodes (sim/timer_wheel.h; DESIGN.md "Simulator
// performance") — O(1) insert/pop and allocation-free steady state, with
// dispatch order identical to the (time, seq) heap it replaced.
//
// The determinism contract is audited, not assumed: the scheduler folds
// every executed event into a running FNV-1a trace hash, and the network
// folds in every message (sender, receiver, size, payload type, delivery
// time). Two runs of the same scenario with the same seed must produce
// identical trace hashes; see DESIGN.md "Determinism contract" and
// tests/determinism_test.cc. Hashes are comparable within one process only
// (type names feed the digest via pointers into process-local RTTI).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/timer_wheel.h"

namespace cfs::sim {

/// Incremental FNV-1a over 64-bit words and byte strings; the determinism
/// auditor's digest.
class TraceHasher {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= kPrime;
    }
  }
  void MixBytes(const char* data, size_t n) {
    for (size_t i = 0; i < n; i++) {
      hash_ ^= static_cast<unsigned char>(data[i]);
      hash_ *= kPrime;
    }
  }
  uint64_t hash() const { return hash_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = kOffset;
};

class Scheduler {
 public:
  using TimerId = TimerWheel::TimerId;

  explicit Scheduler(uint64_t seed = 1) : rng_(seed), tracer_(seed, &now_) {
    // Log lines carry virtual timestamps while this scheduler is the active
    // one (see common/logging.h — keeps same-seed log diffs clean).
    internal::PushSimClock(&now_);
  }
  ~Scheduler() { internal::PopSimClock(&now_); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time in microseconds.
  SimTime Now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `t` (clamped to Now()).
  /// Accepts any callable (EventFn is a drop-in for std::function<void()>
  /// with small-buffer storage inside the pooled event node).
  void At(SimTime t, EventFn fn) {
    if (t < now_) t = now_;
    (void)wheel_.Insert(t, seq_++, std::move(fn));
  }

  /// Schedule `fn` to run `d` microseconds from now.
  void After(SimDuration d, EventFn fn) { At(now_ + d, std::move(fn)); }

  /// Cancellable variants: same scheduling semantics as At/After (a seq
  /// number is consumed either way), but the returned TimerId can revoke the
  /// event before it fires. Cancellation is O(1)-lazy in the wheel. NOTE:
  /// plain Cancel() of events that the copying engine used to let fire as
  /// no-ops (e.g. RPC timeout watchdogs) CHANGES the executed-event stream
  /// and therefore the schedule hash — adopting it on an existing path is a
  /// deliberate, golden-hash-re-baselining change, not a free cleanup. Use
  /// CancelAudited() when the event must disappear from the wheel but stay
  /// in the audited stream.
  TimerId ScheduleAt(SimTime t, EventFn fn) {
    if (t < now_) t = now_;
    return wheel_.Insert(t, seq_++, std::move(fn));
  }
  TimerId ScheduleAfter(SimDuration d, EventFn fn) { return ScheduleAt(now_ + d, std::move(fn)); }

  /// Cancel a pending event scheduled via ScheduleAt/ScheduleAfter. Returns
  /// false if it already ran or was already cancelled.
  bool Cancel(TimerId id) { return wheel_.Cancel(id); }

  /// Audited cancellation: the event is truly removed from the wheel (its
  /// closure released now, its node recycled without ever cascading through
  /// wheel levels), but its (time, seq) pair is kept as a *phantom* that the
  /// dispatch loop replays into the determinism digest and executed-event
  /// counter at exactly the position the no-op event would have occupied.
  /// This is how the RPC reply path cancels its timeout watchdog without
  /// shifting a single (time, seq) pair of the audited schedule — plain
  /// Cancel() on a formerly-firing event changes the stream (see the note on
  /// ScheduleAt); CancelAudited() does not, by construction.
  bool CancelAudited(TimerId id) {
    SimTime t = 0;
    uint64_t s = 0;
    if (!wheel_.Cancel(id, &t, &s)) return false;
    phantoms_.push_back(Phantom{t, s});
    std::push_heap(phantoms_.begin(), phantoms_.end(), PhantomAfter);
    return true;
  }

  /// Run a single event (or replay one phantom). Returns false if nothing is
  /// pending.
  bool RunOne() {
    EventNode* n = wheel_.PopRunnable(TimerWheel::kNoLimit);
    if (n == nullptr) {
      if (phantoms_.empty()) return false;
      ReplayPhantom();
      return true;
    }
    ReplayPhantomsBefore(n);
    Dispatch(n);
    return true;
  }

  /// Process-wide count of executed events across every Scheduler instance
  /// (single-threaded process; benches report events/sec wall-clock from it).
  static uint64_t process_executed_events() { return g_process_executed_events; }

  /// Run until the queue is empty.
  void Run() {
    while (RunOne()) {
    }
  }

  /// Run all events with time <= t, then set Now() to t. Events scheduled
  /// after t remain queued (periodic timers keep the queue non-empty).
  void RunUntil(SimTime t) {
    while (EventNode* n = wheel_.PopRunnable(t)) {
      ReplayPhantomsBefore(n);
      Dispatch(n);
    }
    while (!phantoms_.empty() && phantoms_.front().time <= t) ReplayPhantom();
    if (now_ < t) now_ = t;
  }

  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  /// Run until the queue is empty or `max_events` have been processed.
  /// Returns the number of events processed (guards against livelock in
  /// tests).
  uint64_t RunBounded(uint64_t max_events) {
    uint64_t n = 0;
    while (n < max_events && RunOne()) n++;
    return n;
  }

  bool empty() const { return wheel_.empty() && phantoms_.empty(); }
  size_t pending() const { return wheel_.live() + phantoms_.size(); }

  /// The simulation-wide RNG: every stochastic decision draws from it.
  Rng& rng() { return rng_; }

  /// Determinism auditor digest: folds every executed event (time, seq) plus
  /// whatever components Mix in (the network adds per-message digests). Two
  /// same-seed runs of one scenario must end with equal hashes.
  TraceHasher& trace() { return trace_; }
  uint64_t trace_hash() const { return trace_.hash(); }

  /// Distributed-tracing span collector (obs/trace.h). Disabled by default;
  /// enabling it must not perturb the schedule (the tracer owns a private
  /// Rng and never schedules events) — the determinism tests audit that.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  /// An audit-preserving record of a cancelled event: nothing executes, but
  /// the (time, seq) pair is replayed into the digest in stream order.
  struct Phantom {
    SimTime time;
    uint64_t seq;
  };
  static bool PhantomAfter(const Phantom& a, const Phantom& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  }

  /// Execute one popped event: advance the clock, fold (time, seq) into the
  /// determinism digest, invoke, recycle the node into the slab.
  void Dispatch(EventNode* n) {
    now_ = n->time;
    trace_.Mix(n->time);
    trace_.Mix(static_cast<uint64_t>(n->seq));
    g_process_executed_events++;
    n->fn();
    wheel_.Recycle(n);
  }

  /// Replay every phantom ordered before `n`. A phantom created while `n`
  /// dispatches always orders after `n` (a still-pending timer's (time, seq)
  /// exceeds the event being executed), so checking before each dispatch is
  /// exhaustive.
  void ReplayPhantomsBefore(const EventNode* n) {
    while (!phantoms_.empty() &&
           (phantoms_.front().time < n->time ||
            (phantoms_.front().time == n->time && phantoms_.front().seq < n->seq))) {
      ReplayPhantom();
    }
  }

  void ReplayPhantom() {
    const Phantom p = phantoms_.front();
    std::pop_heap(phantoms_.begin(), phantoms_.end(), PhantomAfter);
    phantoms_.pop_back();
    now_ = p.time;
    trace_.Mix(p.time);
    trace_.Mix(p.seq);
    g_process_executed_events++;
  }

  static inline uint64_t g_process_executed_events = 0;

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  TimerWheel wheel_;
  Rng rng_;
  TraceHasher trace_;
  obs::Tracer tracer_;
  /// Min-heap on (time, seq); capacity is retained across replays, so
  /// steady-state audited cancellation performs no allocation.
  std::vector<Phantom> phantoms_;
};

}  // namespace cfs::sim
