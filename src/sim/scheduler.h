// Discrete-event scheduler: the heart of the simulation substrate.
//
// All cluster components (raft groups, meta/data nodes, clients) run as
// C++20 coroutines scheduled on a single virtual-time event loop. Events at
// the same timestamp execute in scheduling order, so runs are fully
// deterministic given a seed.
//
// The determinism contract is audited, not assumed: the scheduler folds
// every executed event into a running FNV-1a trace hash, and the network
// folds in every message (sender, receiver, size, payload type, delivery
// time). Two runs of the same scenario with the same seed must produce
// identical trace hashes; see DESIGN.md "Determinism contract" and
// tests/determinism_test.cc. Hashes are comparable within one process only
// (type names feed the digest via pointers into process-local RTTI).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/trace.h"

namespace cfs::sim {

/// Incremental FNV-1a over 64-bit words and byte strings; the determinism
/// auditor's digest.
class TraceHasher {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; i++) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= kPrime;
    }
  }
  void MixBytes(const char* data, size_t n) {
    for (size_t i = 0; i < n; i++) {
      hash_ ^= static_cast<unsigned char>(data[i]);
      hash_ *= kPrime;
    }
  }
  uint64_t hash() const { return hash_; }

 private:
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;
  uint64_t hash_ = kOffset;
};

class Scheduler {
 public:
  explicit Scheduler(uint64_t seed = 1) : rng_(seed), tracer_(seed, &now_) {
    // Log lines carry virtual timestamps while this scheduler is the active
    // one (see common/logging.h — keeps same-seed log diffs clean).
    internal::PushSimClock(&now_);
  }
  ~Scheduler() { internal::PopSimClock(&now_); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current virtual time in microseconds.
  SimTime Now() const { return now_; }

  /// Schedule `fn` to run at absolute virtual time `t` (clamped to Now()).
  void At(SimTime t, std::function<void()> fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, seq_++, std::move(fn)});
  }

  /// Schedule `fn` to run `d` microseconds from now.
  void After(SimDuration d, std::function<void()> fn) { At(now_ + d, std::move(fn)); }

  /// Run a single event. Returns false if the queue is empty.
  bool RunOne() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    trace_.Mix(ev.time);
    trace_.Mix(ev.seq);
    ev.fn();
    return true;
  }

  /// Run until the queue is empty.
  void Run() {
    while (RunOne()) {
    }
  }

  /// Run all events with time <= t, then set Now() to t. Events scheduled
  /// after t remain queued (periodic timers keep the queue non-empty).
  void RunUntil(SimTime t) {
    while (!queue_.empty() && queue_.top().time <= t) RunOne();
    if (now_ < t) now_ = t;
  }

  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  /// Run until the queue is empty or `max_events` have been processed.
  /// Returns the number of events processed (guards against livelock in
  /// tests).
  uint64_t RunBounded(uint64_t max_events) {
    uint64_t n = 0;
    while (n < max_events && RunOne()) n++;
    return n;
  }

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

  /// The simulation-wide RNG: every stochastic decision draws from it.
  Rng& rng() { return rng_; }

  /// Determinism auditor digest: folds every executed event (time, seq) plus
  /// whatever components Mix in (the network adds per-message digests). Two
  /// same-seed runs of one scenario must end with equal hashes.
  TraceHasher& trace() { return trace_; }
  uint64_t trace_hash() const { return trace_.hash(); }

  /// Distributed-tracing span collector (obs/trace.h). Disabled by default;
  /// enabling it must not perturb the schedule (the tracer owns a private
  /// Rng and never schedules events) — the determinism tests audit that.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Rng rng_;
  TraceHasher trace_;
  obs::Tracer tracer_;
};

}  // namespace cfs::sim
