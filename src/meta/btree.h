// In-memory B-tree used by meta partitions for the inodeTree and dentryTree
// (§2.1.1). Classic CLRS structure with configurable minimum degree;
// supports point lookup, insert, delete with rebalancing, and ordered range
// scans (ReadDir walks all dentries sharing a parent inode id).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace cfs::meta {

template <typename K, typename V, typename Less = std::less<K>, size_t MinDegree = 16>
class BTree {
  static_assert(MinDegree >= 2, "B-tree minimum degree must be >= 2");

 public:
  BTree() : root_(std::make_unique<Node>()) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Clear() {
    root_ = std::make_unique<Node>();
    size_ = 0;
  }

  /// Insert; returns false (and leaves the tree unchanged) if the key exists.
  bool Insert(K key, V value) {
    if (Find(key) != nullptr) return false;
    if (root_->keys.size() == kMaxKeys) {
      auto new_root = std::make_unique<Node>();
      new_root->kids.push_back(std::move(root_));
      SplitChild(new_root.get(), 0);
      root_ = std::move(new_root);
    }
    InsertNonFull(root_.get(), std::move(key), std::move(value));
    size_++;
    return true;
  }

  /// Insert or overwrite.
  void Upsert(K key, V value) {
    if (V* v = FindMutable(key)) {
      *v = std::move(value);
      return;
    }
    Insert(std::move(key), std::move(value));
  }

  const V* Find(const K& key) const {
    const Node* n = root_.get();
    while (n) {
      size_t i = LowerBound(n, key);
      if (i < n->keys.size() && !less_(key, n->keys[i])) return &n->vals[i];
      if (n->leaf()) return nullptr;
      n = n->kids[i].get();
    }
    return nullptr;
  }

  V* FindMutable(const K& key) { return const_cast<V*>(Find(key)); }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Erase; returns false if the key was absent.
  bool Erase(const K& key) {
    if (Find(key) == nullptr) return false;
    EraseFrom(root_.get(), key);
    if (root_->keys.empty() && !root_->leaf()) {
      root_ = std::move(root_->kids[0]);
    }
    size_--;
    return true;
  }

  /// Visit pairs in key order starting at the first key >= `from`.
  /// `fn(key, value)` returns false to stop the scan.
  template <typename F>
  void AscendFrom(const K& from, F fn) const {
    bool keep_going = true;
    VisitFrom(root_.get(), from, fn, &keep_going);
  }

  /// Visit every pair in key order.
  template <typename F>
  void Ascend(F fn) const {
    bool keep_going = true;
    VisitAll(root_.get(), fn, &keep_going);
  }

  /// Structural invariant check (tests): every node except the root has at
  /// least MinDegree-1 keys, keys are ordered, leaves at equal depth.
  bool CheckInvariants() const {
    int leaf_depth = -1;
    return CheckNode(root_.get(), true, 0, &leaf_depth, nullptr, nullptr);
  }

 private:
  static constexpr size_t kMaxKeys = 2 * MinDegree - 1;
  static constexpr size_t kMinKeys = MinDegree - 1;

  struct Node {
    std::vector<K> keys;
    std::vector<V> vals;
    std::vector<std::unique_ptr<Node>> kids;  // empty for leaves
    bool leaf() const { return kids.empty(); }
  };

  size_t LowerBound(const Node* n, const K& key) const {
    size_t lo = 0, hi = n->keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (less_(n->keys[mid], key)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void SplitChild(Node* parent, size_t i) {
    Node* child = parent->kids[i].get();
    auto right = std::make_unique<Node>();
    // Middle key moves up; right half moves to the new sibling.
    right->keys.assign(std::make_move_iterator(child->keys.begin() + MinDegree),
                       std::make_move_iterator(child->keys.end()));
    right->vals.assign(std::make_move_iterator(child->vals.begin() + MinDegree),
                       std::make_move_iterator(child->vals.end()));
    K mid_key = std::move(child->keys[MinDegree - 1]);
    V mid_val = std::move(child->vals[MinDegree - 1]);
    child->keys.resize(MinDegree - 1);
    child->vals.resize(MinDegree - 1);
    if (!child->leaf()) {
      right->kids.assign(std::make_move_iterator(child->kids.begin() + MinDegree),
                         std::make_move_iterator(child->kids.end()));
      child->kids.resize(MinDegree);
    }
    parent->keys.insert(parent->keys.begin() + i, std::move(mid_key));
    parent->vals.insert(parent->vals.begin() + i, std::move(mid_val));
    parent->kids.insert(parent->kids.begin() + i + 1, std::move(right));
  }

  void InsertNonFull(Node* n, K key, V value) {
    while (true) {
      size_t i = LowerBound(n, key);
      if (n->leaf()) {
        n->keys.insert(n->keys.begin() + i, std::move(key));
        n->vals.insert(n->vals.begin() + i, std::move(value));
        return;
      }
      if (n->kids[i]->keys.size() == kMaxKeys) {
        SplitChild(n, i);
        if (less_(n->keys[i], key)) i++;
      }
      n = n->kids[i].get();
    }
  }

  std::pair<K, V> TakeMax(Node* n) {
    while (!n->leaf()) n = n->kids.back().get();
    std::pair<K, V> kv(std::move(n->keys.back()), std::move(n->vals.back()));
    n->keys.pop_back();
    n->vals.pop_back();
    return kv;
  }

  std::pair<K, V> TakeMin(Node* n) {
    while (!n->leaf()) n = n->kids.front().get();
    std::pair<K, V> kv(std::move(n->keys.front()), std::move(n->vals.front()));
    n->keys.erase(n->keys.begin());
    n->vals.erase(n->vals.begin());
    return kv;
  }

  /// Merge kids[i], keys[i] and kids[i+1] into kids[i].
  void MergeChildren(Node* n, size_t i) {
    Node* left = n->kids[i].get();
    Node* right = n->kids[i + 1].get();
    left->keys.push_back(std::move(n->keys[i]));
    left->vals.push_back(std::move(n->vals[i]));
    for (auto& k : right->keys) left->keys.push_back(std::move(k));
    for (auto& v : right->vals) left->vals.push_back(std::move(v));
    for (auto& c : right->kids) left->kids.push_back(std::move(c));
    n->keys.erase(n->keys.begin() + i);
    n->vals.erase(n->vals.begin() + i);
    n->kids.erase(n->kids.begin() + i + 1);
  }

  /// Ensure kids[i] has at least MinDegree keys before descending into it.
  /// Returns the (possibly shifted) child index to descend into.
  size_t FixChild(Node* n, size_t i) {
    if (n->kids[i]->keys.size() >= MinDegree) return i;
    if (i > 0 && n->kids[i - 1]->keys.size() >= MinDegree) {
      // Borrow from the left sibling through the separator.
      Node* child = n->kids[i].get();
      Node* left = n->kids[i - 1].get();
      child->keys.insert(child->keys.begin(), std::move(n->keys[i - 1]));
      child->vals.insert(child->vals.begin(), std::move(n->vals[i - 1]));
      n->keys[i - 1] = std::move(left->keys.back());
      n->vals[i - 1] = std::move(left->vals.back());
      left->keys.pop_back();
      left->vals.pop_back();
      if (!left->leaf()) {
        child->kids.insert(child->kids.begin(), std::move(left->kids.back()));
        left->kids.pop_back();
      }
      return i;
    }
    if (i + 1 < n->kids.size() && n->kids[i + 1]->keys.size() >= MinDegree) {
      // Borrow from the right sibling.
      Node* child = n->kids[i].get();
      Node* right = n->kids[i + 1].get();
      child->keys.push_back(std::move(n->keys[i]));
      child->vals.push_back(std::move(n->vals[i]));
      n->keys[i] = std::move(right->keys.front());
      n->vals[i] = std::move(right->vals.front());
      right->keys.erase(right->keys.begin());
      right->vals.erase(right->vals.begin());
      if (!right->leaf()) {
        child->kids.push_back(std::move(right->kids.front()));
        right->kids.erase(right->kids.begin());
      }
      return i;
    }
    // Merge with a sibling.
    if (i + 1 < n->kids.size()) {
      MergeChildren(n, i);
      return i;
    }
    MergeChildren(n, i - 1);
    return i - 1;
  }

  void EraseFrom(Node* n, const K& key) {
    size_t i = LowerBound(n, key);
    if (i < n->keys.size() && !less_(key, n->keys[i])) {
      if (n->leaf()) {
        n->keys.erase(n->keys.begin() + i);
        n->vals.erase(n->vals.begin() + i);
        return;
      }
      if (n->kids[i]->keys.size() >= MinDegree) {
        auto kv = ReplaceWithPredecessor(n, i);
        (void)kv;
        return;
      }
      if (n->kids[i + 1]->keys.size() >= MinDegree) {
        auto kv = TakeMinBalanced(n, i);
        (void)kv;
        return;
      }
      MergeChildren(n, i);
      EraseFrom(n->kids[i].get(), key);
      return;
    }
    if (n->leaf()) return;  // not found (caller pre-checked, defensive)
    i = FixChild(n, i);
    // After fixing, the key may have moved into kids[i] via merge; the
    // standard descent handles it because separators stay ordered.
    size_t j = LowerBound(n, key);
    if (j < n->keys.size() && !less_(key, n->keys[j])) {
      EraseFrom(n, key);  // separator became the key after rotation
      return;
    }
    EraseFrom(n->kids[j].get(), key);
  }

  /// Delete-by-predecessor: kids[i] has >= MinDegree keys. The predecessor
  /// must be removed along a balanced path, so descend with FixChild.
  int ReplaceWithPredecessor(Node* n, size_t i) {
    // Simple and correct: extract max of left subtree along a pre-balanced
    // path.
    Node* cur = n->kids[i].get();
    // Descend ensuring every visited node has >= MinDegree keys.
    while (!cur->leaf()) {
      size_t last = cur->kids.size() - 1;
      last = FixChild(cur, last);
      cur = cur->kids[last].get();
    }
    n->keys[i] = cur->keys.back();
    n->vals[i] = std::move(cur->vals.back());
    cur->keys.pop_back();
    cur->vals.pop_back();
    return 0;
  }

  int TakeMinBalanced(Node* n, size_t i) {
    Node* cur = n->kids[i + 1].get();
    while (!cur->leaf()) {
      size_t first = FixChild(cur, 0);
      cur = cur->kids[first].get();
    }
    n->keys[i] = cur->keys.front();
    n->vals[i] = std::move(cur->vals.front());
    cur->keys.erase(cur->keys.begin());
    cur->vals.erase(cur->vals.begin());
    return 0;
  }

  template <typename F>
  void VisitAll(const Node* n, F& fn, bool* keep_going) const {
    for (size_t i = 0; i < n->keys.size() && *keep_going; i++) {
      if (!n->leaf()) VisitAll(n->kids[i].get(), fn, keep_going);
      if (*keep_going && !fn(n->keys[i], n->vals[i])) *keep_going = false;
    }
    if (*keep_going && !n->leaf()) VisitAll(n->kids.back().get(), fn, keep_going);
  }

  template <typename F>
  void VisitFrom(const Node* n, const K& from, F& fn, bool* keep_going) const {
    size_t i = LowerBound(n, from);
    if (!n->leaf()) VisitFrom(n->kids[i].get(), from, fn, keep_going);
    for (size_t j = i; j < n->keys.size() && *keep_going; j++) {
      if (!fn(n->keys[j], n->vals[j])) {
        *keep_going = false;
        return;
      }
      if (!n->leaf()) VisitAll(n->kids[j + 1].get(), fn, keep_going);
    }
  }

  bool CheckNode(const Node* n, bool is_root, int depth, int* leaf_depth, const K* lo,
                 const K* hi) const {
    if (!is_root && n->keys.size() < kMinKeys) return false;
    if (n->keys.size() > kMaxKeys) return false;
    for (size_t i = 0; i + 1 < n->keys.size(); i++) {
      if (!less_(n->keys[i], n->keys[i + 1])) return false;
    }
    if (lo && !n->keys.empty() && !less_(*lo, n->keys.front())) return false;
    if (hi && !n->keys.empty() && !less_(n->keys.back(), *hi)) return false;
    if (n->leaf()) {
      if (*leaf_depth == -1) *leaf_depth = depth;
      return *leaf_depth == depth;
    }
    if (n->kids.size() != n->keys.size() + 1) return false;
    for (size_t i = 0; i < n->kids.size(); i++) {
      const K* clo = i == 0 ? lo : &n->keys[i - 1];
      const K* chi = i == n->keys.size() ? hi : &n->keys[i];
      if (!CheckNode(n->kids[i].get(), false, depth + 1, leaf_depth, clo, chi)) return false;
    }
    return true;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  Less less_;
};

}  // namespace cfs::meta
