// Inode and dentry definitions (§2.1.1). Mirrors the paper's structures:
// the inode carries type, link target, nlink and flags; the dentry is keyed
// by (parent inode id, name) and references the child inode. Extent
// locations of file content are recorded on the inode as ExtentKeys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/units.h"

namespace cfs::meta {

using InodeId = uint64_t;
using PartitionId = uint64_t;
using VolumeId = uint64_t;

constexpr InodeId kRootInode = 1;

enum class FileType : uint8_t { kFile = 1, kDir = 2, kSymlink = 3 };

/// Inode flag bits.
constexpr uint32_t kInodeDeleteMark = 1u << 0;  // nlink hit threshold; content pending purge

/// Location of a piece of file content: which data partition / extent, the
/// physical offset inside the extent (non-zero only for aggregated small
/// files, §2.2.3), and the logical placement in the file.
struct ExtentKey {
  uint64_t file_offset = 0;
  PartitionId partition_id = 0;
  uint64_t extent_id = 0;
  uint64_t extent_offset = 0;
  uint64_t size = 0;

  void Encode(Encoder* enc) const {
    enc->PutVarint(file_offset);
    enc->PutVarint(partition_id);
    enc->PutVarint(extent_id);
    enc->PutVarint(extent_offset);
    enc->PutVarint(size);
  }
  static Status Decode(Decoder* dec, ExtentKey* k) {
    CFS_RETURN_IF_ERROR(dec->GetVarint(&k->file_offset));
    CFS_RETURN_IF_ERROR(dec->GetVarint(&k->partition_id));
    CFS_RETURN_IF_ERROR(dec->GetVarint(&k->extent_id));
    CFS_RETURN_IF_ERROR(dec->GetVarint(&k->extent_offset));
    return dec->GetVarint(&k->size);
  }
  bool operator==(const ExtentKey&) const = default;
};

struct Inode {
  InodeId id = 0;
  FileType type = FileType::kFile;
  std::string link_target;  // symlink target name
  uint32_t nlink = 0;
  uint32_t flag = 0;
  uint64_t size = 0;
  int64_t mtime = 0;
  std::vector<ExtentKey> extents;

  bool IsDeleted() const { return (flag & kInodeDeleteMark) != 0; }
  bool IsDir() const { return type == FileType::kDir; }

  /// Approximate resident memory, used for utilization-based placement.
  uint64_t MemoryFootprint() const {
    return 96 + link_target.size() + extents.size() * sizeof(ExtentKey);
  }

  void Encode(Encoder* enc) const {
    enc->PutVarint(id);
    enc->PutU8(static_cast<uint8_t>(type));
    enc->PutString(link_target);
    enc->PutU32(nlink);
    enc->PutU32(flag);
    enc->PutVarint(size);
    enc->PutI64(mtime);
    enc->PutVarint(extents.size());
    for (const auto& e : extents) e.Encode(enc);
  }
  static Status Decode(Decoder* dec, Inode* ino) {
    uint8_t type;
    CFS_RETURN_IF_ERROR(dec->GetVarint(&ino->id));
    CFS_RETURN_IF_ERROR(dec->GetU8(&type));
    ino->type = static_cast<FileType>(type);
    CFS_RETURN_IF_ERROR(dec->GetString(&ino->link_target));
    CFS_RETURN_IF_ERROR(dec->GetU32(&ino->nlink));
    CFS_RETURN_IF_ERROR(dec->GetU32(&ino->flag));
    CFS_RETURN_IF_ERROR(dec->GetVarint(&ino->size));
    CFS_RETURN_IF_ERROR(dec->GetI64(&ino->mtime));
    uint64_t n;
    CFS_RETURN_IF_ERROR(dec->GetVarint(&n));
    ino->extents.resize(n);
    for (uint64_t i = 0; i < n; i++) {
      CFS_RETURN_IF_ERROR(ExtentKey::Decode(dec, &ino->extents[i]));
    }
    return Status::OK();
  }
};

struct DentryKey {
  InodeId parent = 0;
  std::string name;

  bool operator<(const DentryKey& o) const {
    if (parent != o.parent) return parent < o.parent;
    return name < o.name;
  }
  bool operator==(const DentryKey&) const = default;
};

struct Dentry {
  InodeId parent = 0;
  std::string name;
  InodeId inode = 0;
  FileType type = FileType::kFile;

  uint64_t MemoryFootprint() const { return 48 + name.size(); }

  void Encode(Encoder* enc) const {
    enc->PutVarint(parent);
    enc->PutString(name);
    enc->PutVarint(inode);
    enc->PutU8(static_cast<uint8_t>(type));
  }
  static Status Decode(Decoder* dec, Dentry* d) {
    CFS_RETURN_IF_ERROR(dec->GetVarint(&d->parent));
    CFS_RETURN_IF_ERROR(dec->GetString(&d->name));
    CFS_RETURN_IF_ERROR(dec->GetVarint(&d->inode));
    uint8_t type;
    CFS_RETURN_IF_ERROR(dec->GetU8(&type));
    d->type = static_cast<FileType>(type);
    return Status::OK();
  }
};

/// nlink threshold at which an inode is marked deleted (§2.6.3, §2.7.3):
/// 0 for files and symlinks, 2 for directories ("." and "..").
inline uint32_t UnlinkThreshold(FileType type) {
  return type == FileType::kDir ? 2u : 0u;
}

}  // namespace cfs::meta
