#include "meta/meta_node.h"

#include "common/logging.h"

namespace cfs::meta {

using sim::Spawn;
using sim::Task;

MetaNode::MetaNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
                   const MetaNodeOptions& opts)
    : net_(net), host_(host), raft_(raft), opts_(opts), admission_(net->scheduler()) {
  admission_.Configure(opts_.admission_slots);
  RegisterHandlers();
  Spawn(PurgeLoop());
}

Status MetaNode::CreatePartition(const MetaPartitionConfig& config,
                                 const std::vector<sim::NodeId>& peers, bool recover) {
  if (partitions_.count(config.id)) return Status::AlreadyExists("partition");
  // The volume's WFQ share rides along with every partition install, so the
  // admission queue learns tenant weights without a separate control RPC.
  admission_.SetWeight(config.volume, config.qos_weight);
  auto mp = std::make_unique<MetaPartition>(config, host_);
  MetaPartition* ptr = mp.get();
  partitions_[config.id] = std::move(mp);
  raft::RaftNode* node =
      raft_->CreateGroup(RaftGid(config.id), peers, ptr, host_->disk(opts_.raft_disk));
  if (recover) {
    Spawn([](raft::RaftNode* n) -> Task<void> { (void)co_await n->Recover(); }(node));
  } else {
    node->Start();
  }
  return Status::OK();
}

MetaPartition* MetaNode::GetPartition(PartitionId pid) {
  auto it = partitions_.find(pid);
  return it == partitions_.end() ? nullptr : it->second.get();
}

Status MetaNode::CheckLeader(PartitionId pid) const {
  auto it = partitions_.find(pid);
  if (it == partitions_.end()) return Status::NotFound("meta partition");
  raft::RaftNode* node = raft_->Get(RaftGid(pid));
  if (!node) return Status::NotFound("raft group");
  if (!node->IsLeader()) return Status::NotLeader(std::to_string(node->leader_hint()));
  return Status::OK();
}

Task<ApplyResult> MetaNode::Execute(PartitionId pid, std::string cmd,
                                    obs::TraceContext trace) {
  const SimTime exec_start = net_->scheduler()->Now();
  ApplyResult res;
  MetaPartition* mp = GetPartition(pid);
  if (!mp) {
    res.status = Status::NotFound("meta partition " + std::to_string(pid));
    co_return res;
  }
  raft::RaftNode* node = raft_->Get(RaftGid(pid));
  if (!node || !node->IsLeader()) {
    res.status = Status::NotLeader(node ? std::to_string(node->leader_hint()) : "0");
    co_return res;
  }
  if (mp->read_only()) {
    res.status = Status::Unavailable("partition is read-only");
    co_return res;
  }
  auto idx = co_await node->ProposeIndexed(std::move(cmd), trace);
  if (!idx.ok()) {
    res.status = idx.status();
    co_return res;
  }
  auto taken = mp->TakeResult(*idx);
  if (!taken) {
    res.status = Status::Retry("apply result pruned");
    co_return res;
  }
  if (exec_observer_) {
    exec_observer_(net_->scheduler()->Now() - exec_start, trace.trace_id);
  }
  co_return std::move(*taken);
}

std::vector<MetaPartitionReport> MetaNode::Reports() const {
  std::vector<MetaPartitionReport> out;
  for (const auto& [pid, mp] : partitions_) {
    MetaPartitionReport r;
    r.pid = pid;
    r.volume = mp->config().volume;
    r.start = mp->config().start;
    r.end = mp->config().end;
    r.max_inode_id = mp->max_inode_id();
    r.item_count = mp->item_count();
    raft::RaftNode* node = raft_->Get(RaftGid(pid));
    r.is_leader = node && node->IsLeader();
    r.full = mp->IsFull();
    out.push_back(r);
  }
  return out;
}

sim::Task<void> MetaNode::RecoverAll() {
  co_await raft_->RecoverAll();
}

sim::Task<void> MetaNode::PurgeLoop() {
  // "There will be a separate process to clear up this inode and communicate
  // with the data node to delete the file content" (§2.7.3). Runs on the
  // raft leader of each partition.
  while (true) {
    co_await sim::SleepFor{*net_->scheduler(), opts_.purge_interval};
    if (!host_->up()) continue;
    // Snapshot the partition ids: Execute suspends on raft, and partitions_
    // can gain entries (partition split/create) while this coroutine is
    // parked, invalidating a live iterator into the map (A1).
    std::vector<PartitionId> pids;
    for (const auto& [pid, mp] : partitions_) pids.push_back(pid);
    for (PartitionId pid : pids) {
      auto pit = partitions_.find(pid);
      if (pit == partitions_.end()) continue;
      MetaPartition* mp = pit->second.get();
      raft::RaftNode* node = raft_->Get(RaftGid(pid));
      if (!node || !node->IsLeader()) continue;
      // Drain a bounded batch per scan so one partition cannot starve others.
      for (int n = 0; n < 64 && !mp->free_list().empty(); n++) {
        InodeId ino_id = mp->free_list().front();
        ApplyResult res = co_await Execute(pid, MetaPartition::EncodeEvictInode(ino_id));
        if (!res.status.ok()) break;
        if (purger_ && !res.inode.extents.empty()) {
          // Content purge runs asynchronously; losing the race with a crash
          // only leaks disk space until fsck, never corrupts metadata.
          Spawn([](ExtentPurger purger, Inode ino) -> Task<void> {
            (void)co_await purger(std::move(ino));
          }(purger_, std::move(res.inode)));
        }
      }
    }
  }
}

void MetaNode::RegisterHandlers() {
  host_->Register<MetaCreateInodeReq, MetaCreateInodeResp>(
      [this](MetaCreateInodeReq req, sim::NodeId) -> Task<MetaCreateInodeResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid,
            MetaPartition::EncodeCreateInode(req.type, req.link_target,
                                             net_->scheduler()->Now()),
            req.trace);
        co_return MetaCreateInodeResp{res.status, std::move(res.inode)};
      });

  host_->Register<MetaUnlinkInodeReq, MetaUnlinkInodeResp>(
      [this](MetaUnlinkInodeReq req, sim::NodeId) -> Task<MetaUnlinkInodeResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(req.pid, MetaPartition::EncodeUnlinkInode(req.ino),
                                           req.trace);
        co_return MetaUnlinkInodeResp{res.status, res.value, std::move(res.inode)};
      });

  host_->Register<MetaLinkInodeReq, MetaLinkInodeResp>(
      [this](MetaLinkInodeReq req, sim::NodeId) -> Task<MetaLinkInodeResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(req.pid, MetaPartition::EncodeLinkInode(req.ino),
                                           req.trace);
        co_return MetaLinkInodeResp{res.status, std::move(res.inode)};
      });

  host_->Register<MetaEvictInodeReq, MetaEvictInodeResp>(
      [this](MetaEvictInodeReq req, sim::NodeId) -> Task<MetaEvictInodeResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(req.pid, MetaPartition::EncodeEvictInode(req.ino),
                                           req.trace);
        co_return MetaEvictInodeResp{res.status, std::move(res.inode)};
      });

  host_->Register<MetaCreateDentryReq, MetaCreateDentryResp>(
      [this](MetaCreateDentryReq req, sim::NodeId) -> Task<MetaCreateDentryResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid, MetaPartition::EncodeCreateDentry(req.dentry), req.trace);
        co_return MetaCreateDentryResp{res.status};
      });

  host_->Register<MetaDeleteDentryReq, MetaDeleteDentryResp>(
      [this](MetaDeleteDentryReq req, sim::NodeId) -> Task<MetaDeleteDentryResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid, MetaPartition::EncodeDeleteDentry(req.parent, req.name), req.trace);
        co_return MetaDeleteDentryResp{res.status, std::move(res.dentry)};
      });

  host_->Register<MetaAppendExtentReq, MetaAppendExtentResp>(
      [this](MetaAppendExtentReq req, sim::NodeId) -> Task<MetaAppendExtentResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid, MetaPartition::EncodeAppendExtent(req.ino, req.key, req.new_size),
            req.trace);
        co_return MetaAppendExtentResp{res.status, std::move(res.inode)};
      });

  host_->Register<MetaSetAttrReq, MetaSetAttrResp>(
      [this](MetaSetAttrReq req, sim::NodeId) -> Task<MetaSetAttrResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid, MetaPartition::EncodeSetAttr(req.ino, req.size, req.mtime), req.trace);
        co_return MetaSetAttrResp{res.status};
      });

  host_->Register<MetaTruncateReq, MetaTruncateResp>(
      [this](MetaTruncateReq req, sim::NodeId) -> Task<MetaTruncateResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        ApplyResult res = co_await Execute(
            req.pid, MetaPartition::EncodeTruncate(req.ino, req.new_size), req.trace);
        co_return MetaTruncateResp{res.status, std::move(res.inode)};
      });

  // --- Reads: served from leader memory, no consensus round (§2.7.4) ---

  host_->Register<MetaGetInodeReq, MetaGetInodeResp>(
      [this](MetaGetInodeReq req, sim::NodeId) -> Task<MetaGetInodeResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        MetaGetInodeResp resp;
        resp.status = CheckLeader(req.pid);
        if (!resp.status.ok()) co_return resp;
        const Inode* ino = GetPartition(req.pid)->GetInode(req.ino);
        if (!ino) {
          resp.status = Status::NotFound("inode " + std::to_string(req.ino));
          co_return resp;
        }
        resp.inode = *ino;
        co_return resp;
      });

  host_->Register<MetaBatchInodeGetReq, MetaBatchInodeGetResp>(
      [this](MetaBatchInodeGetReq req, sim::NodeId) -> Task<MetaBatchInodeGetResp> {
        ops_++;
        // One request amortizes the per-op cost across the batch.
        const SimDuration batch_cost =
            opts_.cpu_per_op + static_cast<SimDuration>(req.inos.size()) / 4;
        auto admit = co_await admission_.Enter(req.tenant, batch_cost);
        co_await host_->cpu().Use(batch_cost);
        MetaBatchInodeGetResp resp;
        resp.status = CheckLeader(req.pid);
        if (!resp.status.ok()) co_return resp;
        resp.inodes = GetPartition(req.pid)->BatchInodeGet(req.inos);
        co_return resp;
      });

  host_->Register<MetaLookupReq, MetaLookupResp>(
      [this](MetaLookupReq req, sim::NodeId) -> Task<MetaLookupResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        MetaLookupResp resp;
        resp.status = CheckLeader(req.pid);
        if (!resp.status.ok()) co_return resp;
        const Dentry* d = GetPartition(req.pid)->Lookup(req.parent, req.name);
        if (!d) {
          resp.status = Status::NotFound(req.name);
          co_return resp;
        }
        resp.dentry = *d;
        co_return resp;
      });

  host_->Register<MetaReadDirReq, MetaReadDirResp>(
      [this](MetaReadDirReq req, sim::NodeId) -> Task<MetaReadDirResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, opts_.cpu_per_op);
        co_await host_->cpu().Use(opts_.cpu_per_op);
        MetaReadDirResp resp;
        resp.status = CheckLeader(req.pid);
        if (!resp.status.ok()) co_return resp;
        resp.dentries = GetPartition(req.pid)->ReadDir(req.parent);
        co_return resp;
      });

  // --- Admin ---

  host_->Register<CreateMetaPartitionReq, CreateMetaPartitionResp>(
      [this](CreateMetaPartitionReq req, sim::NodeId) -> Task<CreateMetaPartitionResp> {
        co_await host_->cpu().Use(opts_.cpu_per_op);
        co_return CreateMetaPartitionResp{CreatePartition(req.config, req.peers)};
      });

  host_->Register<SplitMetaPartitionReq, SplitMetaPartitionResp>(
      [this](SplitMetaPartitionReq req, sim::NodeId) -> Task<SplitMetaPartitionResp> {
        co_await host_->cpu().Use(opts_.cpu_per_op);
        SplitMetaPartitionResp resp;
        ApplyResult res = co_await Execute(req.pid, MetaPartition::EncodeSetEnd(req.end));
        resp.status = res.status;
        MetaPartition* mp = GetPartition(req.pid);
        if (mp) resp.max_inode_id = mp->max_inode_id();
        co_return resp;
      });
}

}  // namespace cfs::meta
