// The meta node service (§2.1): hosts a set of meta partitions, routes
// client RPCs to them, executes writes through raft, serves reads from
// leader memory, and runs the background purge loop that frees the content
// of deleted inodes (§2.7.3's "separate process").
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "meta/messages.h"
#include "meta/meta_partition.h"
#include "qos/qos.h"
#include "raft/multiraft.h"
#include "sim/network.h"

namespace cfs::meta {

struct MetaNodeOptions {
  /// CPU charged per metadata RPC (request parse + btree op + respond).
  SimDuration cpu_per_op = 12;
  /// Background purge scan interval.
  SimDuration purge_interval = 500 * kMsec;
  /// Raft groups of meta partitions are stored on this local disk.
  int raft_disk = 0;
  /// Weighted-fair admission in front of client-facing handlers: bound on
  /// concurrently serviced requests. 0 = disabled (admit synchronously, no
  /// events — the default, keeping pinned schedules byte-identical).
  uint64_t admission_slots = 0;
};

class MetaNode {
 public:
  /// Frees the on-disk content of an evicted inode (wired to the data
  /// subsystem by the harness; receives the inode with its extent keys).
  using ExtentPurger = std::function<sim::Task<Status>(Inode)>;

  MetaNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
           const MetaNodeOptions& opts = {});

  MetaNode(const MetaNode&) = delete;
  MetaNode& operator=(const MetaNode&) = delete;

  sim::Host* host() { return host_; }

  /// Create (or re-create during recovery) a partition replica.
  Status CreatePartition(const MetaPartitionConfig& config,
                         const std::vector<sim::NodeId>& peers, bool recover = false);

  MetaPartition* GetPartition(PartitionId pid);
  raft::RaftNode* GetRaft(PartitionId pid) { return raft_->Get(RaftGid(pid)); }
  size_t num_partitions() const { return partitions_.size(); }

  /// Partition ids hosted here, in id order (deep checks).
  std::vector<PartitionId> PartitionIds() const {
    std::vector<PartitionId> ids;
    ids.reserve(partitions_.size());
    for (const auto& [pid, p] : partitions_) ids.push_back(pid);
    return ids;
  }

  void set_extent_purger(ExtentPurger purger) { purger_ = std::move(purger); }

  /// Passive hook observing every successful raft-backed write (latency from
  /// Execute entry to apply-result pickup, plus the op's trace id). Invoked
  /// synchronously — pure observation, never a scheduler event. Health
  /// telemetry taps this for the per-node meta exec latency series.
  using ExecObserver = std::function<void(SimDuration, uint64_t)>;
  void set_exec_observer(ExecObserver obs) { exec_observer_ = std::move(obs); }

  /// Reports for the resource-manager heartbeat (§2.3.2: maxInodeID flows to
  /// the master through periodic communication).
  std::vector<MetaPartitionReport> Reports() const;

  /// Restart-time recovery of all partitions from raft snapshots + logs.
  sim::Task<void> RecoverAll();

  uint64_t ops_served() const { return ops_; }

  /// Per-tenant admission counters (weighted-fair queue in front of the
  /// client-facing handlers). Weights arrive with each partition's config.
  const qos::AdmissionQueue& admission() const { return admission_; }

  /// Meta partition raft groups live in a distinct gid namespace.
  static raft::GroupId RaftGid(PartitionId pid) { return 0x4D00000000000000ull | pid; }

 private:
  void RegisterHandlers();

  /// Propose `cmd` on the partition's raft group and fetch the apply result.
  sim::Task<ApplyResult> Execute(PartitionId pid, std::string cmd,
                                 obs::TraceContext trace = {});

  /// Leader check for serving reads.
  Status CheckLeader(PartitionId pid) const;

  sim::Task<void> PurgeLoop();

  sim::Network* net_;
  sim::Host* host_;
  raft::RaftHost* raft_;
  MetaNodeOptions opts_;
  qos::AdmissionQueue admission_;
  std::map<PartitionId, std::unique_ptr<MetaPartition>> partitions_;
  ExtentPurger purger_;
  ExecObserver exec_observer_;
  uint64_t ops_ = 0;
};

}  // namespace cfs::meta
