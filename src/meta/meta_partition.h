// A meta partition (§2.1.1): an in-memory shard of the file metadata of one
// volume, holding the inodeTree and dentryTree B-trees, replicated by raft,
// persisted via snapshots + logs (§2.1.3), and owning an inode id range
// [start, end] that the resource manager may cut off when splitting
// (Algorithm 1).
//
// Write operations are raft commands applied deterministically by every
// replica; reads (lookup, readdir, batch inode get) are served from leader
// memory without consensus, matching the paper's read-at-leader design.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "common/check.h"
#include "meta/btree.h"
#include "meta/types.h"
#include "raft/types.h"
#include "sim/network.h"

namespace cfs::meta {

/// Raft command opcodes for meta partitions.
enum class MetaOp : uint8_t {
  kCreateInode = 1,
  kUnlinkInode = 2,   // nlink--; marks deleted at the threshold
  kLinkInode = 3,     // nlink++
  kEvictInode = 4,    // remove a fully-deleted/orphan inode from the tree
  kCreateDentry = 5,
  kDeleteDentry = 6,
  kAppendExtent = 7,  // record an extent key + new size on an inode
  kSetAttr = 8,
  kTruncate = 9,
  kSetEnd = 10,       // Algorithm 1: cut off the inode id range at `end`
};

/// Outcome of applying a command, retrievable by the proposing coroutine at
/// the commit index.
struct ApplyResult {
  Status status;
  Inode inode;       // for inode-returning ops
  Dentry dentry;     // for dentry-returning ops
  uint64_t value = 0;  // nlink after unlink, etc.
};

struct MetaPartitionConfig {
  PartitionId id = 0;
  VolumeId volume = 0;
  InodeId start = kRootInode;               // first allocatable inode id
  InodeId end = UINT64_MAX;                 // inclusive range end (∞ until split)
  uint64_t max_items = 1u << 20;            // inode+dentry capacity threshold
  /// Set on the volume's first partition: pre-creates the root directory
  /// inode (id 1) as part of the partition's initial state.
  bool create_root = false;
  uint32_t qos_weight = 1;  // weighted-fair admission share of the owning volume
};

class MetaPartition : public raft::StateMachine {
 public:
  MetaPartition(const MetaPartitionConfig& config, sim::Host* host);

  /// Deterministic initial state: the root directory inode, when configured.
  void InitRoot();
  ~MetaPartition() override;

  const MetaPartitionConfig& config() const { return config_; }
  PartitionId id() const { return config_.id; }

  // --- Command encoding (client/meta-node side) ---
  static std::string EncodeCreateInode(FileType type, std::string_view link_target,
                                       int64_t mtime);
  static std::string EncodeUnlinkInode(InodeId ino);
  static std::string EncodeLinkInode(InodeId ino);
  static std::string EncodeEvictInode(InodeId ino);
  static std::string EncodeCreateDentry(const Dentry& d);
  static std::string EncodeDeleteDentry(InodeId parent, std::string_view name);
  static std::string EncodeAppendExtent(InodeId ino, const ExtentKey& key, uint64_t new_size);
  static std::string EncodeSetAttr(InodeId ino, uint64_t size, int64_t mtime);
  static std::string EncodeTruncate(InodeId ino, uint64_t new_size);
  static std::string EncodeSetEnd(InodeId end);

  // --- raft::StateMachine ---
  void Apply(raft::Index index, std::string_view data) override;
  std::string TakeSnapshot() override;
  void Restore(std::string_view snapshot) override;

  /// Fetch (and erase) the apply outcome at `index`; nullopt if pruned.
  std::optional<ApplyResult> TakeResult(raft::Index index);

  // --- Leader reads (no consensus; §2.7.4 reads happen at the leader) ---
  const Inode* GetInode(InodeId ino) const { return inode_tree_.Find(ino); }
  const Dentry* Lookup(InodeId parent, const std::string& name) const;
  std::vector<Dentry> ReadDir(InodeId parent) const;
  std::vector<Inode> BatchInodeGet(const std::vector<InodeId>& inos) const;

  // --- Capacity / placement inputs ---
  InodeId max_inode_id() const { return next_inode_ - 1; }
  size_t inode_count() const { return inode_tree_.size(); }
  size_t dentry_count() const { return dentry_tree_.size(); }
  size_t item_count() const { return inode_tree_.size() + dentry_tree_.size(); }
  bool IsFull() const { return item_count() >= config_.max_items || next_inode_ > config_.end; }
  uint64_t memory_bytes() const { return memory_bytes_; }
  bool read_only() const { return read_only_; }
  void set_read_only(bool v) { read_only_ = v; }

  /// Inodes marked deleted, awaiting content purge (the free list). Entries
  /// are removed deterministically when the evict command applies.
  const std::deque<InodeId>& free_list() const { return free_list_; }

  /// fsck helper: inode ids on THIS partition with no LOCAL referencing
  /// dentry. Because CFS stores a file's inode and dentry on potentially
  /// different partitions (§2.6), real fsck must union ReferencedInodes()
  /// across all partitions of the volume and subtract; see the
  /// fault-injection tests for the full walk.
  std::vector<InodeId> FindOrphanInodes() const;

  /// All inode ids referenced by dentries stored on this partition.
  std::vector<InodeId> ReferencedInodes() const;

  /// All live (non-deleted) file inode ids stored on this partition.
  std::vector<InodeId> LiveFileInodes() const;

  /// Deep checks / fsck: visit every inode or dentry on this partition in
  /// key order. `fn(key, value)` returns false to stop.
  template <typename F>
  void ForEachInode(F fn) const {
    inode_tree_.Ascend(fn);
  }
  template <typename F>
  void ForEachDentry(F fn) const {
    dentry_tree_.Ascend(fn);
  }

  /// Negative-test hook: direct mutable access so tests can seed a
  /// deliberate corruption (bad nlink, wrong id) and assert CheckInvariants
  /// fires. Not for production paths.
  Inode* MutableInodeForTest(InodeId id) { return inode_tree_.FindMutable(id); }

  /// Deep check (see common/check.h): B-tree structure of both trees, inode
  /// ids within the partition's allocated range, dentry key/value agreement,
  /// memory accounting, free-list <-> delete-mark agreement, and local nlink
  /// floors (live dirs >= 2, live files/symlinks >= 1). Cross-partition
  /// dentry->inode referential integrity lives in
  /// harness::Cluster::CheckInvariants, because a file's dentry and inode may
  /// sit on different partitions (§2.6). Violations are tagged "meta" and
  /// prefixed with `label`.
  void CheckInvariants(InvariantReport* report, const std::string& label = "") const;

 private:
  void ApplyCreateInode(Decoder* dec, ApplyResult* res);
  void ApplyUnlinkInode(Decoder* dec, ApplyResult* res);
  void ApplyLinkInode(Decoder* dec, ApplyResult* res);
  void ApplyEvictInode(Decoder* dec, ApplyResult* res);
  void ApplyCreateDentry(Decoder* dec, ApplyResult* res);
  void ApplyDeleteDentry(Decoder* dec, ApplyResult* res);
  void ApplyAppendExtent(Decoder* dec, ApplyResult* res);
  void ApplySetAttr(Decoder* dec, ApplyResult* res);
  void ApplyTruncate(Decoder* dec, ApplyResult* res);
  void ApplySetEnd(Decoder* dec, ApplyResult* res);

  void AccountMemory(int64_t delta);

  MetaPartitionConfig config_;
  sim::Host* host_;

  BTree<InodeId, Inode> inode_tree_;
  BTree<DentryKey, Dentry> dentry_tree_;
  InodeId next_inode_;
  std::deque<InodeId> free_list_;
  uint64_t memory_bytes_ = 0;
  bool read_only_ = false;

  std::map<raft::Index, ApplyResult> results_;
  static constexpr size_t kMaxResults = 4096;
};

}  // namespace cfs::meta
