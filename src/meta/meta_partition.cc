#include "meta/meta_partition.h"

namespace cfs::meta {

MetaPartition::MetaPartition(const MetaPartitionConfig& config, sim::Host* host)
    : config_(config), host_(host), next_inode_(config.start) {
  InitRoot();
}

void MetaPartition::InitRoot() {
  if (!config_.create_root || next_inode_ != kRootInode) return;
  Inode root;
  root.id = next_inode_++;
  root.type = FileType::kDir;
  root.nlink = 2;
  AccountMemory(static_cast<int64_t>(root.MemoryFootprint()));
  inode_tree_.Insert(root.id, std::move(root));
}

MetaPartition::~MetaPartition() {
  // Return the accounted memory to the host.
  if (memory_bytes_ > 0) host_->AddMemory(-static_cast<int64_t>(memory_bytes_));
}

void MetaPartition::AccountMemory(int64_t delta) {
  memory_bytes_ = static_cast<uint64_t>(static_cast<int64_t>(memory_bytes_) + delta);
  host_->AddMemory(delta);
}

// --- Command encoding ------------------------------------------------------

std::string MetaPartition::EncodeCreateInode(FileType type, std::string_view link_target,
                                             int64_t mtime) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kCreateInode));
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutString(link_target);
  enc.PutI64(mtime);
  return enc.Take();
}

std::string MetaPartition::EncodeUnlinkInode(InodeId ino) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kUnlinkInode));
  enc.PutVarint(ino);
  return enc.Take();
}

std::string MetaPartition::EncodeLinkInode(InodeId ino) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kLinkInode));
  enc.PutVarint(ino);
  return enc.Take();
}

std::string MetaPartition::EncodeEvictInode(InodeId ino) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kEvictInode));
  enc.PutVarint(ino);
  return enc.Take();
}

std::string MetaPartition::EncodeCreateDentry(const Dentry& d) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kCreateDentry));
  d.Encode(&enc);
  return enc.Take();
}

std::string MetaPartition::EncodeDeleteDentry(InodeId parent, std::string_view name) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kDeleteDentry));
  enc.PutVarint(parent);
  enc.PutString(name);
  return enc.Take();
}

std::string MetaPartition::EncodeAppendExtent(InodeId ino, const ExtentKey& key,
                                              uint64_t new_size) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kAppendExtent));
  enc.PutVarint(ino);
  key.Encode(&enc);
  enc.PutVarint(new_size);
  return enc.Take();
}

std::string MetaPartition::EncodeSetAttr(InodeId ino, uint64_t size, int64_t mtime) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kSetAttr));
  enc.PutVarint(ino);
  enc.PutVarint(size);
  enc.PutI64(mtime);
  return enc.Take();
}

std::string MetaPartition::EncodeTruncate(InodeId ino, uint64_t new_size) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kTruncate));
  enc.PutVarint(ino);
  enc.PutVarint(new_size);
  return enc.Take();
}

std::string MetaPartition::EncodeSetEnd(InodeId end) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(MetaOp::kSetEnd));
  enc.PutVarint(end);
  return enc.Take();
}

// --- Apply -----------------------------------------------------------------

void MetaPartition::Apply(raft::Index index, std::string_view data) {
  Decoder dec(data);
  uint8_t op = 0;
  ApplyResult res;
  if (!dec.GetU8(&op).ok()) {
    res.status = Status::Corruption("empty meta command");
  } else {
    switch (static_cast<MetaOp>(op)) {
      case MetaOp::kCreateInode: ApplyCreateInode(&dec, &res); break;
      case MetaOp::kUnlinkInode: ApplyUnlinkInode(&dec, &res); break;
      case MetaOp::kLinkInode: ApplyLinkInode(&dec, &res); break;
      case MetaOp::kEvictInode: ApplyEvictInode(&dec, &res); break;
      case MetaOp::kCreateDentry: ApplyCreateDentry(&dec, &res); break;
      case MetaOp::kDeleteDentry: ApplyDeleteDentry(&dec, &res); break;
      case MetaOp::kAppendExtent: ApplyAppendExtent(&dec, &res); break;
      case MetaOp::kSetAttr: ApplySetAttr(&dec, &res); break;
      case MetaOp::kTruncate: ApplyTruncate(&dec, &res); break;
      case MetaOp::kSetEnd: ApplySetEnd(&dec, &res); break;
      default: res.status = Status::Corruption("unknown meta op"); break;
    }
  }
  results_.emplace(index, std::move(res));
  while (results_.size() > kMaxResults) results_.erase(results_.begin());
}

std::optional<ApplyResult> MetaPartition::TakeResult(raft::Index index) {
  auto it = results_.find(index);
  if (it == results_.end()) return std::nullopt;
  ApplyResult res = std::move(it->second);
  results_.erase(it);
  return res;
}

void MetaPartition::ApplyCreateInode(Decoder* dec, ApplyResult* res) {
  uint8_t type;
  std::string link_target;
  int64_t mtime;
  res->status = dec->GetU8(&type);
  if (!res->status.ok()) return;
  res->status = dec->GetString(&link_target);
  if (!res->status.ok()) return;
  res->status = dec->GetI64(&mtime);
  if (!res->status.ok()) return;

  if (next_inode_ > config_.end) {
    // The id range was cut off by a split; the client must retry on the
    // partition owning the higher range.
    res->status = Status::NoSpace("inode range exhausted");
    return;
  }
  // "The meta node picks up the smallest inode id that has not been used so
  // far in this partition ... and updates its largest inode id" (§2.6.1).
  Inode ino;
  ino.id = next_inode_++;
  ino.type = static_cast<FileType>(type);
  ino.link_target = std::move(link_target);
  // A fresh file inode has one pending link (the dentry about to be
  // created); a directory starts at 2 ("." and itself-in-parent).
  ino.nlink = ino.type == FileType::kDir ? 2 : 1;
  ino.mtime = mtime;
  AccountMemory(static_cast<int64_t>(ino.MemoryFootprint()));
  res->inode = ino;
  inode_tree_.Insert(ino.id, std::move(ino));
  res->status = Status::OK();
}

void MetaPartition::ApplyUnlinkInode(Decoder* dec, ApplyResult* res) {
  InodeId id;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  Inode* ino = inode_tree_.FindMutable(id);
  if (!ino) {
    res->status = Status::NotFound("inode " + std::to_string(id));
    return;
  }
  if (ino->nlink > 0) ino->nlink--;
  if (ino->nlink <= UnlinkThreshold(ino->type) && !ino->IsDeleted()) {
    ino->flag |= kInodeDeleteMark;
    free_list_.push_back(id);  // content purge handled by the meta node
  }
  res->value = ino->nlink;
  res->inode = *ino;
  res->status = Status::OK();
}

void MetaPartition::ApplyLinkInode(Decoder* dec, ApplyResult* res) {
  InodeId id;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  Inode* ino = inode_tree_.FindMutable(id);
  if (!ino) {
    res->status = Status::NotFound("inode " + std::to_string(id));
    return;
  }
  if (ino->IsDeleted()) {
    res->status = Status::NotFound("inode already deleted");
    return;
  }
  ino->nlink++;
  res->inode = *ino;
  res->status = Status::OK();
}

void MetaPartition::ApplyEvictInode(Decoder* dec, ApplyResult* res) {
  InodeId id;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  const Inode* ino = inode_tree_.Find(id);
  if (!ino) {
    res->status = Status::OK();  // idempotent: already evicted
    return;
  }
  res->inode = *ino;  // caller needs the extent keys for content purge
  AccountMemory(-static_cast<int64_t>(ino->MemoryFootprint()));
  inode_tree_.Erase(id);
  // Free-list membership is replicated state: erase deterministically here.
  for (auto it = free_list_.begin(); it != free_list_.end(); ++it) {
    if (*it == id) {
      free_list_.erase(it);
      break;
    }
  }
  res->status = Status::OK();
}

void MetaPartition::ApplyCreateDentry(Decoder* dec, ApplyResult* res) {
  Dentry d;
  res->status = Dentry::Decode(dec, &d);
  if (!res->status.ok()) return;
  DentryKey key{d.parent, d.name};
  if (dentry_tree_.Contains(key)) {
    res->status = Status::AlreadyExists(d.name);
    return;
  }
  AccountMemory(static_cast<int64_t>(d.MemoryFootprint()));
  res->dentry = d;
  dentry_tree_.Insert(std::move(key), std::move(d));
  res->status = Status::OK();
}

void MetaPartition::ApplyDeleteDentry(Decoder* dec, ApplyResult* res) {
  InodeId parent;
  std::string name;
  res->status = dec->GetVarint(&parent);
  if (!res->status.ok()) return;
  res->status = dec->GetString(&name);
  if (!res->status.ok()) return;
  DentryKey key{parent, name};
  const Dentry* d = dentry_tree_.Find(key);
  if (!d) {
    res->status = Status::NotFound(name);
    return;
  }
  res->dentry = *d;  // caller unlinks this inode next (§2.6.3)
  AccountMemory(-static_cast<int64_t>(d->MemoryFootprint()));
  dentry_tree_.Erase(key);
  res->status = Status::OK();
}

void MetaPartition::ApplyAppendExtent(Decoder* dec, ApplyResult* res) {
  InodeId id;
  ExtentKey key;
  uint64_t new_size;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  res->status = ExtentKey::Decode(dec, &key);
  if (!res->status.ok()) return;
  res->status = dec->GetVarint(&new_size);
  if (!res->status.ok()) return;
  Inode* ino = inode_tree_.FindMutable(id);
  if (!ino) {
    res->status = Status::NotFound("inode " + std::to_string(id));
    return;
  }
  // A client re-syncing a grown extent replaces the existing key (size is
  // monotone); an exact duplicate (retry) is a no-op.
  bool found = false;
  for (auto& e : ino->extents) {
    if (e.partition_id == key.partition_id && e.extent_id == key.extent_id &&
        e.extent_offset == key.extent_offset && e.file_offset == key.file_offset) {
      e.size = std::max(e.size, key.size);
      found = true;
      break;
    }
  }
  if (!found) {
    ino->extents.push_back(key);
    AccountMemory(sizeof(ExtentKey));
  }
  ino->size = std::max(ino->size, new_size);
  res->inode = *ino;
  res->status = Status::OK();
}

void MetaPartition::ApplySetAttr(Decoder* dec, ApplyResult* res) {
  InodeId id;
  uint64_t size;
  int64_t mtime;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  res->status = dec->GetVarint(&size);
  if (!res->status.ok()) return;
  res->status = dec->GetI64(&mtime);
  if (!res->status.ok()) return;
  Inode* ino = inode_tree_.FindMutable(id);
  if (!ino) {
    res->status = Status::NotFound("inode");
    return;
  }
  ino->size = size;
  ino->mtime = mtime;
  res->inode = *ino;
  res->status = Status::OK();
}

void MetaPartition::ApplyTruncate(Decoder* dec, ApplyResult* res) {
  InodeId id;
  uint64_t new_size;
  res->status = dec->GetVarint(&id);
  if (!res->status.ok()) return;
  res->status = dec->GetVarint(&new_size);
  if (!res->status.ok()) return;
  Inode* ino = inode_tree_.FindMutable(id);
  if (!ino) {
    res->status = Status::NotFound("inode");
    return;
  }
  // Return the truncated-away extent keys so the caller can free content.
  res->inode = *ino;
  std::vector<ExtentKey> kept;
  for (const auto& e : ino->extents) {
    if (e.file_offset < new_size) kept.push_back(e);
  }
  int64_t delta = static_cast<int64_t>(kept.size() * sizeof(ExtentKey)) -
                  static_cast<int64_t>(ino->extents.size() * sizeof(ExtentKey));
  AccountMemory(delta);
  ino->extents = std::move(kept);
  ino->size = new_size;
  res->status = Status::OK();
}

void MetaPartition::ApplySetEnd(Decoder* dec, ApplyResult* res) {
  InodeId end;
  res->status = dec->GetVarint(&end);
  if (!res->status.ok()) return;
  // Algorithm 1: the new end must still cover every allocated inode id.
  if (end < next_inode_ - 1) {
    res->status = Status::InvalidArgument("split end below maxInodeID");
    return;
  }
  config_.end = end;
  res->value = end;
  res->status = Status::OK();
}

// --- Reads -----------------------------------------------------------------

const Dentry* MetaPartition::Lookup(InodeId parent, const std::string& name) const {
  return dentry_tree_.Find(DentryKey{parent, name});
}

std::vector<Dentry> MetaPartition::ReadDir(InodeId parent) const {
  std::vector<Dentry> out;
  dentry_tree_.AscendFrom(DentryKey{parent, ""}, [&](const DentryKey& k, const Dentry& d) {
    if (k.parent != parent) return false;
    out.push_back(d);
    return true;
  });
  return out;
}

std::vector<Inode> MetaPartition::BatchInodeGet(const std::vector<InodeId>& inos) const {
  std::vector<Inode> out;
  out.reserve(inos.size());
  for (InodeId id : inos) {
    if (const Inode* ino = inode_tree_.Find(id)) out.push_back(*ino);
  }
  return out;
}

std::vector<InodeId> MetaPartition::ReferencedInodes() const {
  std::vector<InodeId> out;
  dentry_tree_.Ascend([&](const DentryKey&, const Dentry& d) {
    out.push_back(d.inode);
    return true;
  });
  return out;
}

std::vector<InodeId> MetaPartition::LiveFileInodes() const {
  std::vector<InodeId> out;
  inode_tree_.Ascend([&](const InodeId& id, const Inode& ino) {
    if (!ino.IsDeleted() && ino.type != FileType::kDir) out.push_back(id);
    return true;
  });
  return out;
}

void MetaPartition::CheckInvariants(InvariantReport* report,
                                    const std::string& label) const {
  std::string prefix = label.empty() ? "partition " + std::to_string(config_.id)
                                     : label;
  if (!inode_tree_.CheckInvariants()) {
    report->Violation("meta", prefix + ": inodeTree structural invariant broken");
  }
  if (!dentry_tree_.CheckInvariants()) {
    report->Violation("meta", prefix + ": dentryTree structural invariant broken");
  }
  uint64_t footprint = 0;
  std::set<InodeId> deleted;
  inode_tree_.Ascend([&](const InodeId& id, const Inode& ino) {
    footprint += ino.MemoryFootprint();
    if (ino.id != id) {
      report->Violation("meta", prefix + ": inode " + std::to_string(id) +
                                    " stores mismatched id " + std::to_string(ino.id));
    }
    if (id < config_.start || id >= next_inode_) {
      report->Violation("meta", prefix + ": inode " + std::to_string(id) +
                                    " outside allocated range [" +
                                    std::to_string(config_.start) + ", " +
                                    std::to_string(next_inode_) + ")");
    }
    if (ino.IsDeleted()) {
      deleted.insert(id);
    } else if (ino.nlink < UnlinkThreshold(ino.type) + (ino.IsDir() ? 0u : 1u)) {
      // Live floors: dirs carry "." and ".." (nlink >= 2); files and
      // symlinks are born with nlink 1.
      report->Violation("meta", prefix + ": live inode " + std::to_string(id) +
                                    " has nlink " + std::to_string(ino.nlink) +
                                    " below its floor");
    }
    return true;
  });
  dentry_tree_.Ascend([&](const DentryKey& key, const Dentry& d) {
    footprint += d.MemoryFootprint();
    if (d.parent != key.parent || d.name != key.name) {
      report->Violation("meta", prefix + ": dentry key (" +
                                    std::to_string(key.parent) + ", " + key.name +
                                    ") disagrees with stored fields (" +
                                    std::to_string(d.parent) + ", " + d.name + ")");
    }
    if (d.inode == 0) {
      report->Violation("meta", prefix + ": dentry (" + std::to_string(key.parent) +
                                    ", " + key.name + ") references inode 0");
    }
    return true;
  });
  if (footprint != memory_bytes_) {
    report->Violation("meta", prefix + ": memory accounting " +
                                  std::to_string(memory_bytes_) +
                                  " != recomputed footprint " +
                                  std::to_string(footprint));
  }
  // Free list <-> delete mark agreement, both directions, no duplicates.
  std::set<InodeId> freed;
  for (InodeId id : free_list_) {
    if (!freed.insert(id).second) {
      report->Violation("meta", prefix + ": inode " + std::to_string(id) +
                                    " appears twice in the free list");
      continue;
    }
    const Inode* ino = inode_tree_.Find(id);
    if (!ino) {
      report->Violation("meta", prefix + ": free-list inode " + std::to_string(id) +
                                    " not in the inodeTree");
    } else if (!ino->IsDeleted()) {
      report->Violation("meta", prefix + ": free-list inode " + std::to_string(id) +
                                    " not marked deleted");
    }
  }
  for (InodeId id : deleted) {
    if (!freed.count(id)) {
      report->Violation("meta", prefix + ": deleted inode " + std::to_string(id) +
                                    " missing from the free list");
    }
  }
}

std::vector<InodeId> MetaPartition::FindOrphanInodes() const {
  std::set<InodeId> referenced;
  dentry_tree_.Ascend([&](const DentryKey&, const Dentry& d) {
    referenced.insert(d.inode);
    return true;
  });
  std::vector<InodeId> orphans;
  inode_tree_.Ascend([&](const InodeId& id, const Inode& ino) {
    if (!referenced.count(id) && !ino.IsDeleted() && ino.type != FileType::kDir) {
      orphans.push_back(id);
    }
    return true;
  });
  return orphans;
}

// --- Snapshot --------------------------------------------------------------

std::string MetaPartition::TakeSnapshot() {
  Encoder enc;
  enc.PutVarint(config_.id);
  enc.PutVarint(config_.volume);
  enc.PutVarint(config_.start);
  enc.PutVarint(config_.end);
  enc.PutVarint(next_inode_);
  enc.PutVarint(inode_tree_.size());
  inode_tree_.Ascend([&](const InodeId&, const Inode& ino) {
    ino.Encode(&enc);
    return true;
  });
  enc.PutVarint(dentry_tree_.size());
  dentry_tree_.Ascend([&](const DentryKey&, const Dentry& d) {
    d.Encode(&enc);
    return true;
  });
  enc.PutVarint(free_list_.size());
  for (InodeId id : free_list_) enc.PutVarint(id);
  return enc.Take();
}

void MetaPartition::Restore(std::string_view snapshot) {
  AccountMemory(-static_cast<int64_t>(memory_bytes_));
  inode_tree_.Clear();
  dentry_tree_.Clear();
  free_list_.clear();
  results_.clear();
  if (snapshot.empty()) {
    next_inode_ = config_.start;
    InitRoot();
    return;
  }
  Decoder dec(snapshot);
  uint64_t n = 0;
  (void)dec.GetVarint(&config_.id);
  (void)dec.GetVarint(&config_.volume);
  (void)dec.GetVarint(&config_.start);
  (void)dec.GetVarint(&config_.end);
  (void)dec.GetVarint(&next_inode_);
  (void)dec.GetVarint(&n);
  int64_t mem = 0;
  for (uint64_t i = 0; i < n; i++) {
    Inode ino;
    if (!Inode::Decode(&dec, &ino).ok()) break;
    mem += static_cast<int64_t>(ino.MemoryFootprint());
    InodeId id = ino.id;
    inode_tree_.Insert(id, std::move(ino));
  }
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    Dentry d;
    if (!Dentry::Decode(&dec, &d).ok()) break;
    mem += static_cast<int64_t>(d.MemoryFootprint());
    DentryKey key{d.parent, d.name};  // build before moving d
    dentry_tree_.Insert(std::move(key), std::move(d));
  }
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    uint64_t id;
    if (!dec.GetVarint(&id).ok()) break;
    free_list_.push_back(id);
  }
  AccountMemory(mem);
}

}  // namespace cfs::meta
