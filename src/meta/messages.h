// Wire messages between clients and meta nodes, plus resource-manager admin
// messages for meta partitions. Request routing is by partition id; write
// operations are executed through the partition's raft group, reads are
// served from leader memory.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "meta/meta_partition.h"
#include "obs/trace.h"
#include "meta/types.h"
#include "sim/network.h"

namespace cfs::meta {

/// Tenant label carried by client-facing requests; equals the VolumeId the
/// issuing mount belongs to (0 = unlabeled / pre-mount traffic).
using TenantId = uint64_t;

// --- Inode ops -------------------------------------------------------------

struct MetaCreateInodeReq {
  static constexpr const char* kRpcName = "MetaCreateInode";
  PartitionId pid = 0;
  FileType type = FileType::kFile;
  std::string link_target;
  size_t WireBytes() const { return 48 + link_target.size(); }  obs::TraceContext trace;
  TenantId tenant = 0;
};
struct MetaCreateInodeResp {
  Status status;
  Inode inode;
};

struct MetaUnlinkInodeReq {
  static constexpr const char* kRpcName = "MetaUnlinkInode";
  PartitionId pid = 0;
  InodeId ino = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  // Frozen at the pre-tenant sizeof so simulated transfer timing (and the
  // pinned bench schedules) did not move when the tenant label was added.
  size_t WireBytes() const { return 32; }
};
struct MetaUnlinkInodeResp {
  Status status;
  uint64_t nlink = 0;
  Inode inode;
};

struct MetaLinkInodeReq {
  static constexpr const char* kRpcName = "MetaLinkInode";
  PartitionId pid = 0;
  InodeId ino = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32; }  // frozen pre-tenant sizeof
};
struct MetaLinkInodeResp {
  Status status;
  Inode inode;
};

struct MetaEvictInodeReq {
  static constexpr const char* kRpcName = "MetaEvictInode";
  PartitionId pid = 0;
  InodeId ino = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32; }  // frozen pre-tenant sizeof
};
struct MetaEvictInodeResp {
  Status status;
  Inode inode;  // evicted inode (extent keys used for content purge)
};

struct MetaGetInodeReq {
  static constexpr const char* kRpcName = "MetaGetInode";
  PartitionId pid = 0;
  InodeId ino = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32; }  // frozen pre-tenant sizeof
};
struct MetaGetInodeResp {
  Status status;
  Inode inode;
};

/// The batched inode fetch CFS uses to serve readdir efficiently (§4.2: a
/// batchInodeGet replaces Ceph's per-inode fetches).
struct MetaBatchInodeGetReq {
  static constexpr const char* kRpcName = "MetaBatchInodeGet";
  PartitionId pid = 0;
  std::vector<InodeId> inos;
  size_t WireBytes() const { return 32 + inos.size() * 8; }  obs::TraceContext trace;
  TenantId tenant = 0;
};
struct MetaBatchInodeGetResp {
  Status status;
  std::vector<Inode> inodes;
  size_t WireBytes() const { return 16 + inodes.size() * 96; }
};

// --- Dentry ops ------------------------------------------------------------

struct MetaCreateDentryReq {
  static constexpr const char* kRpcName = "MetaCreateDentry";
  PartitionId pid = 0;
  Dentry dentry;
  size_t WireBytes() const { return 64 + dentry.name.size(); }  obs::TraceContext trace;
  TenantId tenant = 0;
};
struct MetaCreateDentryResp {
  Status status;
};

struct MetaDeleteDentryReq {
  static constexpr const char* kRpcName = "MetaDeleteDentry";
  PartitionId pid = 0;
  InodeId parent = 0;
  std::string name;
  size_t WireBytes() const { return 48 + name.size(); }  obs::TraceContext trace;
  TenantId tenant = 0;
};
struct MetaDeleteDentryResp {
  Status status;
  Dentry dentry;  // the removed dentry (its inode gets unlinked next)
};

struct MetaLookupReq {
  static constexpr const char* kRpcName = "MetaLookup";
  PartitionId pid = 0;
  InodeId parent = 0;
  std::string name;
  size_t WireBytes() const { return 48 + name.size(); }  obs::TraceContext trace;
  TenantId tenant = 0;
};
struct MetaLookupResp {
  Status status;
  Dentry dentry;
};

struct MetaReadDirReq {
  static constexpr const char* kRpcName = "MetaReadDir";
  PartitionId pid = 0;
  InodeId parent = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32; }  // frozen pre-tenant sizeof
};
struct MetaReadDirResp {
  Status status;
  std::vector<Dentry> dentries;
  size_t WireBytes() const { return 16 + dentries.size() * 64; }
};

// --- File content metadata ---------------------------------------------------

struct MetaAppendExtentReq {
  static constexpr const char* kRpcName = "MetaAppendExtent";
  PartitionId pid = 0;
  InodeId ino = 0;
  ExtentKey key;
  uint64_t new_size = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 80; }  // frozen pre-tenant sizeof
};
struct MetaAppendExtentResp {
  Status status;
  Inode inode;
};

struct MetaSetAttrReq {
  static constexpr const char* kRpcName = "MetaSetAttr";
  PartitionId pid = 0;
  InodeId ino = 0;
  uint64_t size = 0;
  int64_t mtime = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 48; }  // frozen pre-tenant sizeof
};
struct MetaSetAttrResp {
  Status status;
};

struct MetaTruncateReq {
  static constexpr const char* kRpcName = "MetaTruncate";
  PartitionId pid = 0;
  InodeId ino = 0;
  uint64_t new_size = 0;  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 40; }  // frozen pre-tenant sizeof
};
struct MetaTruncateResp {
  Status status;
  Inode inode;  // pre-truncate inode: dropped extents get freed by the caller
};

// --- Admin (resource manager -> meta node) ----------------------------------

struct CreateMetaPartitionReq {
  static constexpr const char* kRpcName = "CreateMetaPartition";
  MetaPartitionConfig config;
  std::vector<sim::NodeId> peers;
  size_t WireBytes() const { return 64 + peers.size() * 4; }
};
struct CreateMetaPartitionResp {
  Status status;
};

/// Algorithm 1, step "sync with the meta node": cut the inode range.
struct SplitMetaPartitionReq {
  static constexpr const char* kRpcName = "SplitMetaPartition";
  PartitionId pid = 0;
  InodeId end = 0;
};
struct SplitMetaPartitionResp {
  Status status;
  InodeId max_inode_id = 0;
};

/// Per-partition state reported to the resource manager.
struct MetaPartitionReport {
  PartitionId pid = 0;
  VolumeId volume = 0;
  InodeId start = 0;
  InodeId end = 0;
  InodeId max_inode_id = 0;
  uint64_t item_count = 0;
  bool is_leader = false;
  bool full = false;
};

}  // namespace cfs::meta
