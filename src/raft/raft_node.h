// A single raft group replica: leader election, log replication, commit,
// apply, snapshots/compaction, and crash recovery.
//
// One RaftNode exists per (group, host). Message transport and heartbeat
// coalescing live in RaftHost (multiraft.h); RaftNode exposes the protocol
// entry points the transport routes into.
//
// Group commit (§2.2.4 write amplification): Propose() enqueues into a
// leader-side batch queue; BatcherLoop drains it, assigning contiguous
// indices and persisting the whole batch with ONE LogStore::Append (so
// concurrent proposals share a log disk write) and kicking each peer once
// per batch. A dedicated apply loop decouples state-machine application
// from commit advance, so applying batch i overlaps replication and
// persistence of batch i+1.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "raft/log_store.h"
#include "raft/types.h"
#include "rpc/channel.h"
#include "sim/network.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cfs::raft {

enum class Role { kFollower, kCandidate, kLeader };

class RaftNode {
 public:
  /// `peers` lists every replica of the group including `self`. `channel`
  /// (owned by RaftHost) meters every raft RPC leg into the host's
  /// MetricRegistry.
  RaftNode(const RaftOptions& opts, GroupId gid, NodeId self, std::vector<NodeId> peers,
           sim::Network* net, sim::Host* host, sim::Disk* disk, StateMachine* sm,
           rpc::Channel* channel);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Start the election timer and the apply loop (fresh group, empty state).
  void Start();

  /// Crash-recover from stable storage, then start. Resets the state
  /// machine from the latest snapshot and re-applies nothing beyond it
  /// (commit is re-learned from the leader).
  sim::Task<Status> Recover();

  /// Stop participating (node decommissioned or test teardown).
  void Stop();

  /// Replicate a command; resolves once the command is committed AND applied
  /// on this replica. Returns NotLeader (with leader_hint) when this replica
  /// is not the leader. A traced caller passes its span context: the whole
  /// consensus round runs under a "raft:propose" span with "raft:batch"
  /// (group-commit WAL flush) and "raft:apply" children.
  sim::Task<Status> Propose(std::string cmd, obs::TraceContext trace = {});

  /// Like Propose, but returns the log index the command committed at, so
  /// state machines can hand back per-command apply results (see
  /// MetaPartition::TakeResult).
  sim::Task<Result<Index>> ProposeIndexed(std::string cmd, obs::TraceContext trace = {});

  // --- Observers ---
  GroupId gid() const { return gid_; }
  NodeId self() const { return self_; }
  const std::vector<NodeId>& peers() const { return peers_; }
  bool IsLeader() const { return role_ == Role::kLeader && host_->up(); }
  NodeId leader_hint() const { return leader_; }
  Term term() const { return log_.term(); }
  Index commit_index() const { return commit_; }
  Index applied_index() const { return applied_; }
  Index last_log_index() const { return log_.last_index(); }
  Role role() const { return role_; }
  LogStore& log() { return log_; }
  const LogStore& log() const { return log_; }
  const GroupCommitStats& group_commit_stats() const { return gc_stats_; }

  // --- Transport entry points (called by RaftHost) ---
  sim::Task<VoteResp> OnVote(VoteReq req);
  sim::Task<AppendResp> OnAppend(AppendReq req);
  sim::Task<InstallSnapshotResp> OnInstallSnapshot(InstallSnapshotReq req);
  /// Returns true if the item is stale (heartbeat term < our term).
  bool OnHeartbeat(const HeartbeatItem& item, NodeId from);

  /// Leader-side: peer observed a higher term via heartbeat response.
  void StepDownIfStale(Term observed);

  /// Test hook: force an immediate election attempt.
  void TriggerElection() { election_deadline_ = 0; }

 private:
  /// A waiting proposer. Lives in propose_queue_ until the batcher assigns
  /// an index, then in pending_ until committed+applied (or failed over).
  /// shared_ptr because the proposer can abandon it on timeout while the
  /// batcher/apply loop still holds it.
  struct ProposeWaiter {
    explicit ProposeWaiter(sim::Scheduler* s) : done(s) {}
    sim::Promise<Status> done;
    Index index = 0;        // 0 until the batcher assigns one
    bool cancelled = false; // proposer timed out; skip if still queued
    obs::TraceContext trace;  // propose-span context; batch/apply spans chain here
  };
  using WaiterPtr = std::shared_ptr<ProposeWaiter>;

  sim::Scheduler& sched() { return *net_->scheduler(); }
  int Majority() const { return static_cast<int>(peers_.size() / 2 + 1); }
  SimDuration RandomElectionTimeout();

  sim::Task<void> ElectionLoop(uint64_t gen);
  sim::Task<void> RunElection(uint64_t gen);
  void BecomeFollower(Term term, NodeId leader);
  void BecomeLeader();
  sim::Task<void> PersistTerm(Term term, NodeId voted_for);

  /// Ensure the batcher coroutine is draining the propose queue.
  void KickBatcher();
  sim::Task<void> BatcherLoop(uint64_t gen);

  /// Ensure a replication pump is running toward `peer`.
  void KickPeer(NodeId peer);
  sim::Task<void> PeerPump(NodeId peer, Term my_term, uint64_t gen);
  sim::Task<bool> SendSnapshotTo(NodeId peer, Term my_term);

  void AdvanceCommit();
  void KickApply() { apply_notifier_.NotifyAll(); }
  sim::Task<void> ApplyLoop(uint64_t gen);
  sim::Task<void> MaybeCompact();

  void FailPendingProposals(const Status& status);
  /// Leader-change failover: proposals still queued (no index yet) are
  /// failed so callers re-route to the new leader.
  void FailQueuedProposals(const Status& status);

  RaftOptions opts_;
  GroupId gid_;
  NodeId self_;
  std::vector<NodeId> peers_;
  sim::Network* net_;
  sim::Host* host_;
  StateMachine* sm_;
  rpc::Channel* channel_;
  LogStore log_;

  Role role_ = Role::kFollower;
  NodeId leader_ = sim::kInvalidNode;
  Index commit_ = 0;
  Index applied_ = 0;
  SimTime election_deadline_ = 0;

  std::map<NodeId, Index> next_index_;
  std::map<NodeId, Index> match_index_;
  std::map<NodeId, bool> pump_active_;

  /// Leader-side group commit: commands awaiting a batch slot. Commands are
  /// adopted into shared Buffers at Propose(), so the batcher, log store and
  /// every replication leg share one allocation per command.
  std::deque<std::pair<Buffer, WaiterPtr>> propose_queue_;
  bool batcher_running_ = false;
  GroupCommitStats gc_stats_;

  /// index -> (term at proposal, waiter). Batch-atomic: the batcher
  /// registers a whole batch before its single Append await.
  std::map<Index, std::pair<Term, WaiterPtr>> pending_;

  sim::Notifier apply_notifier_;
  bool compacting_ = false;
  bool running_ = false;
  uint64_t gen_ = 0;  // bumped on Stop/Recover; loops from old gens exit
};

}  // namespace cfs::raft
