// MultiRaft transport: routes raft RPCs to the local replicas of many
// groups, and replaces per-group idle heartbeats with one coalesced
// heartbeat message per (node, peer) pair — the optimization the paper
// adopts from CockroachDB's multiraft (§2.1.2) and extends with Raft sets
// (§2.5.1) by placing a group's replicas within one subset of nodes so the
// heartbeat fan-out of each node is bounded by the set size.
//
// All raft traffic (votes, appends, snapshots, coalesced heartbeats) issues
// through one rpc::Channel per host, so per-RPC outcome/latency metrics
// cover the consensus path like every other subsystem. Pass a shared
// MetricRegistry to fold raft legs into a cluster-wide registry; without
// one, the host owns a private registry.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "raft/raft_node.h"
#include "raft/types.h"
#include "rpc/channel.h"
#include "rpc/metrics.h"
#include "sim/network.h"
#include "sim/task.h"

namespace cfs::raft {

class RaftHost {
 public:
  RaftHost(sim::Network* net, sim::Host* host, const RaftOptions& opts = {},
           rpc::MetricRegistry* metrics = nullptr)
      : net_(net),
        host_(host),
        opts_(opts),
        owned_metrics_(metrics ? nullptr : std::make_unique<rpc::MetricRegistry>()),
        channel_(net, metrics ? metrics : owned_metrics_.get()) {
    RegisterHandlers();
    sim::Spawn(HeartbeatLoop());
  }

  RaftHost(const RaftHost&) = delete;
  RaftHost& operator=(const RaftHost&) = delete;

  sim::Host* host() { return host_; }
  const RaftOptions& options() const { return opts_; }
  rpc::MetricRegistry* metrics() { return channel_.metrics(); }

  /// Create a replica of group `gid` on this host. The caller retains
  /// ownership of the state machine and must call Start() (fresh group) or
  /// Recover() (after restart) on the returned node.
  RaftNode* CreateGroup(GroupId gid, std::vector<NodeId> peers, StateMachine* sm,
                        sim::Disk* disk) {
    auto node = std::make_unique<RaftNode>(opts_, gid, host_->id(), std::move(peers), net_,
                                           host_, disk, sm, &channel_);
    RaftNode* ptr = node.get();
    groups_[gid] = std::move(node);
    return ptr;
  }

  RaftNode* Get(GroupId gid) {
    auto it = groups_.find(gid);
    return it == groups_.end() ? nullptr : it->second.get();
  }

  void RemoveGroup(GroupId gid) {
    auto it = groups_.find(gid);
    if (it == groups_.end()) return;
    it->second->Stop();
    groups_.erase(it);
  }

  size_t num_groups() const { return groups_.size(); }

  /// Group ids of every replica hosted here, in id order (deep checks gather
  /// per-group replica snapshots across hosts with this).
  std::vector<GroupId> GroupIds() const {
    std::vector<GroupId> ids;
    ids.reserve(groups_.size());
    for (const auto& [gid, node] : groups_) ids.push_back(gid);
    return ids;
  }

  /// Recover every group from stable storage (host restart).
  sim::Task<void> RecoverAll() {
    // Iterate a snapshot: Recover() suspends, and groups_ can be mutated
    // (AddGroup/RemoveGroup) while this coroutine is parked, invalidating a
    // live iterator into the map (A1).
    for (GroupId gid : GroupIds()) {
      auto it = groups_.find(gid);
      if (it == groups_.end()) continue;
      (void)co_await it->second->Recover();
    }
  }

  /// Group-commit counters summed over every group replica on this host
  /// (only groups this host has led contribute).
  GroupCommitStats group_commit_stats() const {
    GroupCommitStats s;
    for (const auto& [gid, node] : groups_) s.MergeFrom(node->group_commit_stats());
    return s;
  }

  /// Log-write accounting summed over this host's groups: Append() disk
  /// writes, entries persisted by them, and total persisted bytes.
  struct LogWriteStats {
    uint64_t append_writes = 0;
    uint64_t appended_entries = 0;
    uint64_t persisted_bytes = 0;
  };
  LogWriteStats log_write_stats() const {
    LogWriteStats s;
    for (const auto& [gid, node] : groups_) {
      s.append_writes += node->log().append_writes();
      s.appended_entries += node->log().appended_entries();
      s.persisted_bytes += node->log().persisted_bytes();
    }
    return s;
  }

  /// Ablation knob: when false, one heartbeat message is sent per group
  /// instead of one per peer node (i.e. plain Raft without MultiRaft).
  void set_coalesce_heartbeats(bool v) { coalesce_ = v; }

  uint64_t heartbeat_msgs_sent() const { return hb_msgs_; }
  uint64_t heartbeat_items_sent() const { return hb_items_; }

 private:
  void RegisterHandlers() {
    host_->Register<VoteReq, VoteResp>([this](VoteReq req, NodeId) -> sim::Task<VoteResp> {
      RaftNode* g = Get(req.gid);
      if (!g) co_return VoteResp{req.gid, 0, false};
      co_return co_await g->OnVote(std::move(req));
    });
    host_->Register<AppendReq, AppendResp>(
        [this](AppendReq req, NodeId) -> sim::Task<AppendResp> {
          RaftNode* g = Get(req.gid);
          if (!g) co_return AppendResp{req.gid, 0, false, 0};
          co_return co_await g->OnAppend(std::move(req));
        });
    host_->Register<InstallSnapshotReq, InstallSnapshotResp>(
        [this](InstallSnapshotReq req, NodeId) -> sim::Task<InstallSnapshotResp> {
          RaftNode* g = Get(req.gid);
          if (!g) co_return InstallSnapshotResp{req.gid, 0, false};
          co_return co_await g->OnInstallSnapshot(std::move(req));
        });
    host_->Register<MultiHeartbeatReq, MultiHeartbeatResp>(
        [this](MultiHeartbeatReq req, NodeId from) -> sim::Task<MultiHeartbeatResp> {
          co_await host_->cpu().Use(opts_.cpu_per_message);
          MultiHeartbeatResp resp;
          for (const auto& item : req.items) {
            RaftNode* g = Get(item.gid);
            if (!g) continue;
            if (g->OnHeartbeat(item, from)) {
              resp.stale.emplace_back(item.gid, g->term());
            }
          }
          co_return resp;
        });
  }

  sim::Task<void> HeartbeatLoop() {
    while (true) {
      co_await sim::SleepFor{*net_->scheduler(), opts_.heartbeat_interval};
      if (!host_->up()) continue;
      // peer -> heartbeat items for all groups this node currently leads.
      std::map<NodeId, std::vector<HeartbeatItem>> outbox;
      for (auto& [gid, node] : groups_) {
        if (!node->IsLeader()) continue;
        HeartbeatItem item{gid, node->term(), node->commit_index()};
        for (NodeId peer : node->peers()) {
          if (peer != host_->id()) outbox[peer].push_back(item);
        }
      }
      for (auto& [peer, items] : outbox) {
        if (coalesce_) {
          hb_msgs_++;
          hb_items_ += items.size();
          sim::Spawn(SendHeartbeat(peer, std::move(items)));
        } else {
          for (auto& item : items) {
            hb_msgs_++;
            hb_items_++;
            sim::Spawn(SendHeartbeat(peer, {item}));
          }
        }
      }
    }
  }

  sim::Task<void> SendHeartbeat(NodeId peer, std::vector<HeartbeatItem> items) {
    MultiHeartbeatReq req{host_->id(), std::move(items)};
    auto r = co_await channel_.Unary<MultiHeartbeatReq, MultiHeartbeatResp>(
        host_->id(), peer, std::move(req), opts_.rpc_timeout);
    if (!r.ok()) co_return;
    for (const auto& [gid, term] : r->stale) {
      RaftNode* g = Get(gid);
      if (g) g->StepDownIfStale(term);
    }
  }

  sim::Network* net_;
  sim::Host* host_;
  RaftOptions opts_;
  std::unique_ptr<rpc::MetricRegistry> owned_metrics_;
  rpc::Channel channel_;
  std::map<GroupId, std::unique_ptr<RaftNode>> groups_;
  bool coalesce_ = true;
  uint64_t hb_msgs_ = 0;
  uint64_t hb_items_ = 0;
};

}  // namespace cfs::raft
