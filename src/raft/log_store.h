// Persistent raft log, hard state and snapshot for one group, stored in the
// node's StableStorage with IO time charged to a disk.
//
// This is where raft's write amplification lives: every replicated command
// is written to the log file before it is acknowledged, which is exactly the
// extra IO the paper cites (§2.2.4) as the reason CFS uses primary-backup
// replication for sequential writes and reserves raft for overwrites.
#pragma once

#include <deque>
#include <span>
#include <string>

#include "common/codec.h"
#include "common/status.h"
#include "raft/types.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/task.h"

namespace cfs::raft {

class LogStore {
 public:
  LogStore(sim::StableStorage* storage, sim::Disk* disk, GroupId gid);

  /// Load hard state, snapshot metadata and log entries from stable storage
  /// (crash recovery). Charges a disk read for the bytes scanned.
  sim::Task<Status> Load();

  // --- Hard state ---
  Term term() const { return term_; }
  NodeId voted_for() const { return voted_for_; }
  sim::Task<Status> SaveHardState(Term term, NodeId voted_for);

  // --- Log ---
  Index first_index() const { return snap_index_ + 1; }
  Index last_index() const { return snap_index_ + entries_.size(); }
  Term last_term() const {
    return entries_.empty() ? snap_term_ : entries_.back().term;
  }
  /// Term of the entry at `index`; 0 if unknown (compacted away, except the
  /// snapshot boundary itself).
  Term TermAt(Index index) const;
  bool Has(Index index) const { return index >= first_index() && index <= last_index(); }
  const LogEntry& At(Index index) const { return entries_[index - first_index()]; }

  /// Append entries (already indexed/termed by the caller) and persist them.
  /// A traced caller (the group-commit batcher) passes its batch span
  /// context so the WAL flush shows up as a "disk:write" child span.
  sim::Task<Status> Append(std::span<const LogEntry> entries, obs::TraceContext trace = {});

  /// Drop all entries with index >= `from` (follower conflict resolution)
  /// and rewrite the log file.
  sim::Task<Status> TruncateFrom(Index from);

  // --- Snapshot ---
  Index snapshot_index() const { return snap_index_; }
  Term snapshot_term() const { return snap_term_; }
  const std::string& snapshot_data() const { return snap_data_; }
  bool has_snapshot() const { return snap_index_ > 0 || !snap_data_.empty(); }

  /// Persist a snapshot at `index` and compact the log prefix up to it.
  sim::Task<Status> SaveSnapshot(Index index, Term term, std::string data);

  /// Install a snapshot that is ahead of the log (follower catching up):
  /// the whole log is discarded.
  sim::Task<Status> InstallSnapshot(Index index, Term term, std::string data);

  uint64_t persisted_bytes() const { return persisted_bytes_; }
  /// Group-commit observability: disk writes issued by Append() and entries
  /// persisted across them. appended_entries / append_writes is the realized
  /// WAL coalescing factor (1.0 = one write per entry, no batching).
  uint64_t append_writes() const { return append_writes_; }
  uint64_t appended_entries() const { return appended_entries_; }

 private:
  std::string Key(const char* what) const;
  sim::Task<Status> RewriteLog();
  static void EncodeEntry(Encoder* enc, const LogEntry& e);
  static Status DecodeEntry(Decoder* dec, LogEntry* e);

  sim::StableStorage* storage_;
  sim::Disk* disk_;
  GroupId gid_;
  // Built once from gid_ (declared after it: init order); keeps per-batch
  // WAL appends free of string concatenation.
  const std::string key_hs_, key_snap_, key_log_;

  Term term_ = 0;
  NodeId voted_for_ = sim::kInvalidNode;

  Index snap_index_ = 0;
  Term snap_term_ = 0;
  std::string snap_data_;

  std::deque<LogEntry> entries_;  // entries_[i] has index snap_index_ + 1 + i
  uint64_t persisted_bytes_ = 0;
  uint64_t append_writes_ = 0;
  uint64_t appended_entries_ = 0;
};

}  // namespace cfs::raft
