// Raft protocol types shared by RaftNode and the MultiRaft transport.
//
// The paper replicates meta partitions and the overwrite path of data
// partitions with "MultiRaft" (§2.1.2): many raft groups whose heartbeats
// between the same pair of nodes are coalesced into one message. Raft sets
// (§2.5.1) further bound heartbeat fan-out by preferring replicas from the
// same subset of nodes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "sim/network.h"

namespace cfs::raft {

using GroupId = uint64_t;
using Term = uint64_t;
using Index = uint64_t;
using sim::NodeId;

struct LogEntry {
  Term term = 0;
  Index index = 0;
  /// Shared immutable payload: copying an entry (into an AppendEntries
  /// batch, a peer catch-up, a ReplicaSnapshot) bumps a refcount instead of
  /// duplicating the command bytes.
  Buffer data;

  size_t WireBytes() const { return 24 + data.size(); }
};

/// Deterministic state machine replicated by a raft group. Applied exactly
/// once per replica in log order.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Apply a committed command.
  virtual void Apply(Index index, std::string_view data) = 0;
  /// Serialize the complete state (for snapshots / log compaction).
  virtual std::string TakeSnapshot() = 0;
  /// Replace the state from a snapshot.
  virtual void Restore(std::string_view snapshot) = 0;
};

// --- Wire messages -------------------------------------------------------

struct VoteReq {
  static constexpr const char* kRpcName = "RaftVote";
  GroupId gid = 0;
  Term term = 0;
  NodeId candidate = 0;
  Index last_log_index = 0;
  Term last_log_term = 0;
};
struct VoteResp {
  GroupId gid = 0;
  Term term = 0;
  bool granted = false;
};

struct AppendReq {
  static constexpr const char* kRpcName = "RaftAppend";
  GroupId gid = 0;
  Term term = 0;
  NodeId leader = 0;
  Index prev_index = 0;
  Term prev_term = 0;
  Index commit = 0;
  std::vector<LogEntry> entries;

  size_t WireBytes() const {
    size_t n = 64;
    for (const auto& e : entries) n += e.WireBytes();
    return n;
  }
};
struct AppendResp {
  GroupId gid = 0;
  Term term = 0;
  bool success = false;
  /// On success: last replicated index. On failure: follower's suggestion
  /// for the next probe point (its last index + 1, capped).
  Index match_hint = 0;
};

struct InstallSnapshotReq {
  static constexpr const char* kRpcName = "RaftInstallSnapshot";
  GroupId gid = 0;
  Term term = 0;
  NodeId leader = 0;
  Index snap_index = 0;
  Term snap_term = 0;
  std::string data;

  size_t WireBytes() const { return 64 + data.size(); }
};
struct InstallSnapshotResp {
  GroupId gid = 0;
  Term term = 0;
  bool ok = false;
};

/// One coalesced heartbeat per (leader node -> peer node) pair covering all
/// groups led by that node with a replica on the peer (the MultiRaft
/// optimization; compare bench_ablation_raftset).
struct HeartbeatItem {
  GroupId gid = 0;
  Term term = 0;
  Index commit = 0;
};
struct MultiHeartbeatReq {
  static constexpr const char* kRpcName = "RaftMultiHeartbeat";
  NodeId from = 0;
  std::vector<HeartbeatItem> items;
  size_t WireBytes() const { return 32 + items.size() * 20; }
};
struct MultiHeartbeatResp {
  /// Groups where the follower observed a higher term (leader must step
  /// down) paired with that term.
  std::vector<std::pair<GroupId, Term>> stale;
  size_t WireBytes() const { return 16 + stale.size() * 16; }
};

struct RaftOptions {
  SimDuration heartbeat_interval = 50 * kMsec;
  SimDuration election_timeout_min = 250 * kMsec;
  SimDuration election_timeout_max = 500 * kMsec;
  SimDuration rpc_timeout = 200 * kMsec;
  /// How long Propose() waits for commit+apply before returning TimedOut.
  SimDuration propose_timeout = 2 * kSec;
  /// Take a snapshot and truncate the log after this many applied entries.
  uint64_t compaction_threshold = 4096;
  /// Max entries per AppendEntries batch.
  size_t max_batch_entries = 64;
  /// CPU cost charged per processed raft message.
  SimDuration cpu_per_message = 3;
  // --- Group commit (leader-side proposal batching) ---
  /// Max concurrent proposals folded into one leader log write (and one
  /// AppendEntries kick). 1 disables batching: every proposal pays its own
  /// log write, the pre-group-commit behaviour.
  size_t max_batch_proposals = 64;
  /// Max payload bytes per proposal batch. A single command larger than this
  /// still ships, as a batch of one.
  size_t max_batch_bytes = 1 * kMiB;
  /// Optional wait before the batcher drains its queue, trading latency for
  /// larger batches. 0 (default) relies on natural batching only: the next
  /// batch forms while the previous log write is in flight, so an
  /// uncontended proposal is never delayed.
  SimDuration batch_linger = 0;
};

/// Leader-side group-commit counters, one set per RaftNode (aggregated
/// across a host's groups by RaftHost::group_commit_stats()).
struct GroupCommitStats {
  uint64_t batches = 0;          ///< proposal-batch log writes
  uint64_t proposals = 0;        ///< proposals folded into those writes
  uint64_t batched_bytes = 0;    ///< payload bytes across those writes
  uint64_t max_batch = 0;        ///< largest single batch (proposals)
  uint64_t queue_high_watermark = 0;  ///< deepest the propose queue got

  void MergeFrom(const GroupCommitStats& o) {
    batches += o.batches;
    proposals += o.proposals;
    batched_bytes += o.batched_bytes;
    max_batch = std::max(max_batch, o.max_batch);
    queue_high_watermark = std::max(queue_high_watermark, o.queue_high_watermark);
  }
};

}  // namespace cfs::raft
