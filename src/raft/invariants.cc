#include "raft/invariants.h"

#include <map>
#include <sstream>
#include <string>

namespace cfs::raft {

namespace {

std::string Where(const std::string& label, NodeId node) {
  std::ostringstream os;
  if (!label.empty()) os << label << " ";
  os << "node " << node;
  return os.str();
}

/// Term of `r`'s entry at `index`, or 0 if compacted away / absent (the
/// snapshot boundary itself reports snap_term).
Term TermAt(const ReplicaSnapshot& r, Index index) {
  if (index == r.snap_index) return r.snap_term;
  if (index < r.first_index || index >= r.first_index + r.entries.size()) return 0;
  return r.entries[index - r.first_index].term;
}

const LogEntry* EntryAt(const ReplicaSnapshot& r, Index index) {
  if (index < r.first_index || index >= r.first_index + r.entries.size()) return nullptr;
  return &r.entries[index - r.first_index];
}

Index LastIndex(const ReplicaSnapshot& r) {
  return r.first_index + r.entries.size() - 1;
}

void CheckReplica(const ReplicaSnapshot& r, InvariantReport* report,
                  const std::string& label) {
  const std::string who = Where(label, r.node);
  Index last = LastIndex(r);
  if (r.commit > last) {
    report->Violation("raft", who + ": commit index " + std::to_string(r.commit) +
                                  " > last log index " + std::to_string(last));
  }
  if (r.applied > r.commit) {
    report->Violation("raft", who + ": applied index " + std::to_string(r.applied) +
                                  " > commit index " + std::to_string(r.commit));
  }
  Term prev_term = r.snap_term;
  for (size_t i = 0; i < r.entries.size(); i++) {
    const LogEntry& e = r.entries[i];
    Index expect = r.first_index + i;
    if (e.index != expect) {
      report->Violation("raft", who + ": entry at slot " + std::to_string(i) +
                                    " has index " + std::to_string(e.index) +
                                    ", expected " + std::to_string(expect));
      break;  // indices are broken; further per-entry checks would cascade
    }
    if (e.term < prev_term) {
      report->Violation("raft", who + ": entry term regressed at index " +
                                    std::to_string(e.index) + " (" +
                                    std::to_string(prev_term) + " -> " +
                                    std::to_string(e.term) + ")");
    }
    if (e.term > r.term) {
      report->Violation("raft", who + ": entry at index " + std::to_string(e.index) +
                                    " has term " + std::to_string(e.term) +
                                    " above current term " + std::to_string(r.term));
    }
    prev_term = e.term;
  }
}

}  // namespace

ReplicaSnapshot SnapshotReplica(const RaftNode& node) {
  ReplicaSnapshot snap;
  snap.node = node.self();
  snap.is_leader = node.role() == Role::kLeader;
  snap.term = node.term();
  snap.commit = node.commit_index();
  snap.applied = node.applied_index();
  const LogStore& log = node.log();
  snap.first_index = log.first_index();
  snap.snap_index = log.snapshot_index();
  snap.snap_term = log.snapshot_term();
  snap.entries.reserve(log.last_index() + 1 - log.first_index());
  for (Index i = log.first_index(); i <= log.last_index(); i++) {
    snap.entries.push_back(log.At(i));
  }
  return snap;
}

void CheckRaftGroup(const std::vector<ReplicaSnapshot>& replicas, InvariantReport* report,
                    const std::string& label) {
  for (const auto& r : replicas) CheckReplica(r, report, label);

  // Election safety: at most one leader per term.
  std::map<Term, NodeId> leaders;
  for (const auto& r : replicas) {
    if (!r.is_leader) continue;
    auto [it, inserted] = leaders.emplace(r.term, r.node);
    if (!inserted) {
      report->Violation("raft", Where(label, r.node) + " and node " +
                                    std::to_string(it->second) +
                                    " are both leaders in term " + std::to_string(r.term));
    }
  }

  // Log matching + committed-prefix agreement across every replica pair.
  for (size_t a = 0; a < replicas.size(); a++) {
    for (size_t b = a + 1; b < replicas.size(); b++) {
      const ReplicaSnapshot& x = replicas[a];
      const ReplicaSnapshot& y = replicas[b];
      Index lo = std::max(x.first_index, y.first_index);
      Index hi = std::min(LastIndex(x), LastIndex(y));
      for (Index i = lo; i <= hi && i > 0; i++) {
        const LogEntry* ex = EntryAt(x, i);
        const LogEntry* ey = EntryAt(y, i);
        if (!ex || !ey) continue;
        if (ex->term == ey->term && ex->data != ey->data) {
          report->Violation("raft", Where(label, x.node) + " and node " +
                                        std::to_string(y.node) +
                                        " disagree on data at index " + std::to_string(i) +
                                        " despite equal term " + std::to_string(ex->term));
        }
      }
      // Entries both replicas consider committed must agree on term.
      Index chi = std::min({x.commit, y.commit, hi});
      for (Index i = lo; i <= chi && i > 0; i++) {
        Term tx = TermAt(x, i);
        Term ty = TermAt(y, i);
        if (tx != 0 && ty != 0 && tx != ty) {
          report->Violation("raft", Where(label, x.node) + " and node " +
                                        std::to_string(y.node) +
                                        " disagree on committed entry term at index " +
                                        std::to_string(i) + " (" + std::to_string(tx) +
                                        " vs " + std::to_string(ty) + ")");
        }
      }
    }
  }
}

}  // namespace cfs::raft
