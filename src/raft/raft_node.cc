#include "raft/raft_node.h"

#include <algorithm>

#include "common/logging.h"
#include "rpc/retry_policy.h"

namespace cfs::raft {

using sim::SleepFor;
using sim::Spawn;
using sim::Task;

// Concurrency rule used throughout this file: all structural state mutation
// happens synchronously (between awaits); co_await is used only for timing
// (disk persistence, RPCs). After any await, leadership/term/generation are
// re-checked before acting.
//
// Index-assignment rule (group commit): a log index is valid only if it is
// computed and handed to LogStore::Append with NO intervening await —
// Append pushes entries into the in-memory log synchronously before
// awaiting the disk write, so concurrent appenders (batcher, BecomeLeader
// no-op) always see a current last_index().

RaftNode::RaftNode(const RaftOptions& opts, GroupId gid, NodeId self, std::vector<NodeId> peers,
                   sim::Network* net, sim::Host* host, sim::Disk* disk, StateMachine* sm,
                   rpc::Channel* channel)
    : opts_(opts),
      gid_(gid),
      self_(self),
      peers_(std::move(peers)),
      net_(net),
      host_(host),
      sm_(sm),
      channel_(channel),
      log_(&host->storage(), disk, gid),
      apply_notifier_(net->scheduler()) {}

SimDuration RaftNode::RandomElectionTimeout() {
  return static_cast<SimDuration>(sched().rng().Range(
      static_cast<uint64_t>(opts_.election_timeout_min),
      static_cast<uint64_t>(opts_.election_timeout_max)));
}

void RaftNode::Start() {
  running_ = true;
  gen_++;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  Spawn(ElectionLoop(gen_));
  Spawn(ApplyLoop(gen_));
}

void RaftNode::Stop() {
  running_ = false;
  gen_++;
  FailPendingProposals(Status::Unavailable("raft node stopped"));
  apply_notifier_.NotifyAll();  // wake the apply loop so it observes gen_
}

sim::Task<Status> RaftNode::Recover() {
  gen_++;  // kill any loops from the previous incarnation
  running_ = false;
  FailPendingProposals(Status::Unavailable("raft node restarting"));
  apply_notifier_.NotifyAll();
  role_ = Role::kFollower;
  leader_ = sim::kInvalidNode;
  CFS_CO_RETURN_IF_ERROR(co_await log_.Load());
  if (log_.has_snapshot()) {
    sm_->Restore(log_.snapshot_data());
  }
  // Volatile indices restart at the snapshot boundary; commit is re-learned
  // from the current leader.
  applied_ = log_.snapshot_index();
  commit_ = log_.snapshot_index();
  Start();
  co_return Status::OK();
}

void RaftNode::FailPendingProposals(const Status& status) {
  for (auto& [idx, p] : pending_) p.second->done.Set(status);
  pending_.clear();
  FailQueuedProposals(status);
}

void RaftNode::FailQueuedProposals(const Status& status) {
  for (auto& [cmd, w] : propose_queue_) w->done.Set(status);
  propose_queue_.clear();
}

// --- Election ------------------------------------------------------------

Task<void> RaftNode::ElectionLoop(uint64_t gen) {
  const SimDuration tick = opts_.election_timeout_min / 5;
  while (running_ && gen_ == gen) {
    co_await SleepFor{sched(), tick};
    if (!running_ || gen_ != gen) break;
    if (!host_->up()) {
      election_deadline_ = sched().Now() + RandomElectionTimeout();
      continue;
    }
    if (role_ == Role::kLeader) continue;
    if (sched().Now() >= election_deadline_) {
      co_await RunElection(gen);
    }
  }
}

Task<void> RaftNode::RunElection(uint64_t gen) {
  role_ = Role::kCandidate;
  leader_ = sim::kInvalidNode;
  Term my_term = log_.term() + 1;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  co_await PersistTerm(my_term, self_);
  if (!running_ || gen_ != gen || log_.term() != my_term) co_return;

  struct Tally {
    int votes = 1;  // self
    bool done = false;
  };
  auto tally = std::make_shared<Tally>();
  sim::Promise<bool> won(&sched());

  for (NodeId peer : peers_) {
    if (peer == self_) continue;
    VoteReq req{gid_, my_term, self_, log_.last_index(), log_.last_term()};
    Spawn([](RaftNode* self, NodeId peer, VoteReq req, std::shared_ptr<Tally> tally,
             sim::Promise<bool> won, Term my_term) -> Task<void> {
      auto r = co_await self->channel_->Unary<VoteReq, VoteResp>(
          self->self_, peer, req, self->opts_.rpc_timeout);
      if (!r.ok() || tally->done) co_return;
      if (r->term > my_term) {
        tally->done = true;
        self->StepDownIfStale(r->term);
        won.Set(false);
        co_return;
      }
      if (r->granted && self->role_ == Role::kCandidate && self->log_.term() == my_term) {
        tally->votes++;
        if (tally->votes >= self->Majority()) {
          tally->done = true;
          won.Set(true);
        }
      }
    }(this, peer, req, tally, won, my_term));
  }
  if (Majority() == 1) won.Set(true);  // single-replica group

  auto v = co_await won.future().WithTimeout(opts_.election_timeout_min);
  tally->done = true;
  if (!running_ || gen_ != gen) co_return;
  if (v.value_or(false) && role_ == Role::kCandidate && log_.term() == my_term) {
    BecomeLeader();
  }
}

void RaftNode::BecomeFollower(Term term, NodeId leader) {
  role_ = Role::kFollower;
  leader_ = leader;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  (void)term;  // persisted by the caller where required
}

void RaftNode::StepDownIfStale(Term observed) {
  if (observed <= log_.term()) return;
  BecomeFollower(observed, sim::kInvalidNode);
  Spawn([](RaftNode* self, Term t) -> Task<void> {
    if (t > self->log_.term()) co_await self->PersistTerm(t, sim::kInvalidNode);
  }(this, observed));
}

Task<void> RaftNode::PersistTerm(Term term, NodeId voted_for) {
  (void)co_await log_.SaveHardState(term, voted_for);
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  leader_ = self_;
  LOG_DEBUG("raft group ", gid_, " node ", self_, " became leader, term ", log_.term());
  for (NodeId peer : peers_) {
    if (peer == self_) continue;
    next_index_[peer] = log_.last_index() + 1;
    match_index_[peer] = 0;
  }
  // Commit a no-op entry from the new term so earlier-term entries become
  // committable (Raft §5.4.2).
  Spawn([](RaftNode* self) -> Task<void> {
    if (self->role_ != Role::kLeader) co_return;
    LogEntry noop{self->log_.term(), self->log_.last_index() + 1, {}};
    (void)co_await self->log_.Append(std::span<const LogEntry>(&noop, 1));
    for (NodeId peer : self->peers_) {
      if (peer != self->self_) self->KickPeer(peer);
    }
    self->AdvanceCommit();
  }(this));
  if (!propose_queue_.empty()) KickBatcher();
}

// --- Proposals -----------------------------------------------------------

Task<Status> RaftNode::Propose(std::string cmd, obs::TraceContext trace) {
  auto r = co_await ProposeIndexed(std::move(cmd), trace);
  co_return r.status();
}

Task<Result<Index>> RaftNode::ProposeIndexed(std::string cmd, obs::TraceContext trace) {
  if (!host_->up() || !running_) co_return Status::Unavailable("node down");
  if (role_ != Role::kLeader) {
    co_return Status::NotLeader(std::to_string(leader_));
  }
  auto w = std::make_shared<ProposeWaiter>(&sched());
  obs::Tracer& tracer = sched().tracer();
  obs::SpanRef propose_span;
  if (tracer.enabled() && trace.valid()) {
    propose_span = tracer.BeginSpan("raft:propose", trace, self_);
    tracer.Note(propose_span, "gid", static_cast<int64_t>(gid_));
    tracer.Note(propose_span, "queue_depth", static_cast<int64_t>(propose_queue_.size()));
    w->trace = propose_span.ctx;
  }
  propose_queue_.emplace_back(Buffer::FromString(std::move(cmd)), w);
  gc_stats_.queue_high_watermark =
      std::max<uint64_t>(gc_stats_.queue_high_watermark, propose_queue_.size());
  // Spawn runs the batcher synchronously up to its first await (the log
  // disk write), so an uncontended proposal persists immediately — same
  // latency as the unbatched path.
  KickBatcher();

  auto st = co_await w->done.future().WithTimeout(opts_.propose_timeout);
  tracer.End(propose_span);  // covers enqueue -> commit+apply (or failure)
  if (!st) {
    w->cancelled = true;
    auto it = pending_.find(w->index);
    if (w->index != 0 && it != pending_.end() && it->second.second == w) {
      pending_.erase(it);
    }
    co_return Status::TimedOut("propose not committed in time");
  }
  if (!st->ok()) co_return *st;
  co_return w->index;
}

void RaftNode::KickBatcher() {
  if (batcher_running_) return;
  batcher_running_ = true;
  Spawn(BatcherLoop(gen_));
}

Task<void> RaftNode::BatcherLoop(uint64_t gen) {
  while (running_ && gen_ == gen && role_ == Role::kLeader && host_->up() &&
         !propose_queue_.empty()) {
    if (opts_.batch_linger > 0) {
      co_await SleepFor{sched(), opts_.batch_linger};
      if (!running_ || gen_ != gen || role_ != Role::kLeader || !host_->up()) break;
    }
    // Drain one batch: assign contiguous indices and register the whole
    // batch in pending_ synchronously (batch-atomic bookkeeping), then
    // persist with ONE Append. New proposals arriving during that disk
    // write queue up and form the next batch (natural batching).
    const Term my_term = log_.term();
    const size_t cap = std::max<size_t>(1, opts_.max_batch_proposals);
    std::vector<LogEntry> entries;
    std::vector<WaiterPtr> waiters;
    size_t bytes = 0;
    while (!propose_queue_.empty() && waiters.size() < cap) {
      auto& [cmd, w] = propose_queue_.front();
      if (w->cancelled) {
        propose_queue_.pop_front();
        continue;
      }
      if (!entries.empty() && bytes + cmd.size() > opts_.max_batch_bytes) break;
      Index idx = log_.last_index() + entries.size() + 1;
      bytes += cmd.size();
      w->index = idx;
      pending_.emplace(idx, std::make_pair(my_term, w));
      waiters.push_back(w);
      entries.push_back(LogEntry{my_term, idx, std::move(cmd)});
      propose_queue_.pop_front();
    }
    if (entries.empty()) continue;  // everything at the front was cancelled

    gc_stats_.batches++;
    gc_stats_.proposals += entries.size();
    gc_stats_.batched_bytes += bytes;
    gc_stats_.max_batch = std::max<uint64_t>(gc_stats_.max_batch, entries.size());
    // Batch shape histograms ride the registry's latency field: count =
    // batches, sum/count = mean batch size (entries) / write size (bytes).
    channel_->metrics()->RecordLeg("RaftBatchEntries", rpc::Outcome::kOk,
                                   static_cast<SimDuration>(entries.size()));
    channel_->metrics()->RecordLeg("RaftBatchBytes", rpc::Outcome::kOk,
                                   static_cast<SimDuration>(bytes));

    // The batch's WAL flush runs under a "raft:batch" span chained to the
    // first traced proposer (one span per batch, annotated with its shape).
    obs::Tracer& tracer = sched().tracer();
    obs::SpanRef batch_span;
    if (tracer.enabled()) {
      for (const auto& w : waiters) {
        if (!w->trace.valid()) continue;
        batch_span = tracer.BeginSpan("raft:batch", w->trace, self_);
        tracer.Note(batch_span, "entries", static_cast<int64_t>(entries.size()));
        tracer.Note(batch_span, "bytes", static_cast<int64_t>(bytes));
        break;
      }
    }
    Status st = co_await log_.Append(std::span<const LogEntry>(entries), batch_span.ctx);
    tracer.End(batch_span);
    if (!running_ || gen_ != gen) co_return;
    if (!st.ok()) {
      for (auto& w : waiters) {
        auto it = pending_.find(w->index);
        if (it != pending_.end() && it->second.second == w) pending_.erase(it);
        w->done.Set(st);
      }
      continue;
    }
    if (role_ == Role::kLeader && log_.term() == my_term) {
      for (NodeId peer : peers_) {
        if (peer != self_) KickPeer(peer);
      }
      AdvanceCommit();  // single-replica groups commit immediately
    }
  }
  batcher_running_ = false;
  if (!running_ || gen_ != gen) co_return;
  // Leader-change failover: anything still queued never got an index here;
  // fail it so callers retry against the new leader.
  if (role_ != Role::kLeader) {
    FailQueuedProposals(Status::NotLeader(std::to_string(leader_)));
  }
}

void RaftNode::KickPeer(NodeId peer) {
  if (pump_active_[peer]) return;
  pump_active_[peer] = true;
  Spawn(PeerPump(peer, log_.term(), gen_));
}

Task<void> RaftNode::PeerPump(NodeId peer, Term my_term, uint64_t gen) {
  rpc::Backoff backoff(&sched(), rpc::RetryPolicy::RaftPump());
  while (running_ && gen_ == gen && role_ == Role::kLeader && log_.term() == my_term &&
         host_->up()) {
    Index next = next_index_[peer];
    if (next > log_.last_index()) break;  // caught up; pump goes idle

    if (next < log_.first_index()) {
      // Peer is behind the compacted prefix: ship the snapshot.
      bool ok = co_await SendSnapshotTo(peer, my_term);
      if (!running_ || gen_ != gen || role_ != Role::kLeader || log_.term() != my_term) break;
      if (!ok) {
        backoff.NextAttempt();
        co_await backoff.Delay();
      } else {
        backoff.Reset();
      }
      continue;
    }

    AppendReq req;
    req.gid = gid_;
    req.term = my_term;
    req.leader = self_;
    req.prev_index = next - 1;
    req.prev_term = log_.TermAt(next - 1);
    req.commit = commit_;
    Index end = std::min(log_.last_index(), next + opts_.max_batch_entries - 1);
    for (Index i = next; i <= end; i++) req.entries.push_back(log_.At(i));

    auto r = co_await channel_->Unary<AppendReq, AppendResp>(
        self_, peer, std::move(req), opts_.rpc_timeout);
    if (!running_ || gen_ != gen || role_ != Role::kLeader || log_.term() != my_term) break;
    if (!r.ok()) {
      backoff.NextAttempt();
      co_await backoff.Delay();
      continue;
    }
    backoff.Reset();
    if (r->term > my_term) {
      StepDownIfStale(r->term);
      break;
    }
    if (r->success) {
      match_index_[peer] = std::max(match_index_[peer], r->match_hint);
      next_index_[peer] = match_index_[peer] + 1;
      AdvanceCommit();
    } else {
      Index hint = std::max<Index>(1, std::min(next - 1, r->match_hint));
      next_index_[peer] = hint;
    }
  }
  pump_active_[peer] = false;
  // New entries may have arrived while we were finishing; re-arm if so. The
  // host_->up() guard matters: without it a crashed leader would respawn a
  // pump that exits immediately, recursing until the stack blows.
  if (running_ && gen_ == gen && role_ == Role::kLeader && log_.term() == my_term &&
      host_->up() && next_index_[peer] <= log_.last_index()) {
    KickPeer(peer);
  }
}

Task<bool> RaftNode::SendSnapshotTo(NodeId peer, Term my_term) {
  InstallSnapshotReq req;
  req.gid = gid_;
  req.term = my_term;
  req.leader = self_;
  req.snap_index = log_.snapshot_index();
  req.snap_term = log_.snapshot_term();
  req.data = log_.snapshot_data();
  auto r = co_await channel_->Unary<InstallSnapshotReq, InstallSnapshotResp>(
      self_, peer, std::move(req), opts_.rpc_timeout * 4);
  if (!r.ok()) co_return false;
  if (r->term > my_term) {
    StepDownIfStale(r->term);
    co_return false;
  }
  if (r->ok) {
    match_index_[peer] = std::max(match_index_[peer], log_.snapshot_index());
    next_index_[peer] = match_index_[peer] + 1;
  }
  co_return r->ok;
}

void RaftNode::AdvanceCommit() {
  if (role_ != Role::kLeader) return;
  std::vector<Index> matches;
  matches.push_back(log_.last_index());  // self
  for (NodeId peer : peers_) {
    if (peer != self_) matches.push_back(match_index_[peer]);
  }
  std::sort(matches.begin(), matches.end(), std::greater<>());
  Index candidate = matches[Majority() - 1];
  if (candidate > commit_ && log_.TermAt(candidate) == log_.term()) {
    commit_ = candidate;
    KickApply();
  }
}

// Dedicated apply loop (one per Start/Recover incarnation): drains
// [applied_+1, commit_], resolving waiters as their entries apply, then
// parks on apply_notifier_. Decoupling apply from commit advance means the
// state machine chews batch i while the batcher/pumps replicate batch i+1.
Task<void> RaftNode::ApplyLoop(uint64_t gen) {
  while (running_ && gen_ == gen) {
    while (applied_ < commit_ && running_ && gen_ == gen) {
      Index idx = applied_ + 1;
      if (idx <= log_.snapshot_index()) {
        applied_ = log_.snapshot_index();
        continue;
      }
      if (!log_.Has(idx)) break;  // should not happen; wait for entries
      const LogEntry& e = log_.At(idx);
      if (!e.data.empty()) {
        sm_->Apply(idx, e.data.view());
      }
      applied_ = idx;
      obs::SpanRef apply_span;
      auto it = pending_.find(idx);
      if (it != pending_.end()) {
        obs::Tracer& tracer = sched().tracer();
        apply_span = tracer.BeginSpan("raft:apply", it->second.second->trace, self_);
        tracer.Note(apply_span, "index", static_cast<int64_t>(idx));
        Status st = it->second.first == e.term
                        ? Status::OK()
                        : Status::NotLeader("entry overwritten by new leader");
        it->second.second->done.Set(st);
        pending_.erase(it);
      }
      co_await host_->cpu().Use(2);  // apply cost
      sched().tracer().End(apply_span);
    }
    if (!running_ || gen_ != gen) break;
    co_await MaybeCompact();
    if (!running_ || gen_ != gen) break;
    // Re-check before parking: commit may have advanced during the awaits
    // above, and Notifier wakeups are not sticky.
    if (applied_ >= commit_ || !log_.Has(applied_ + 1)) {
      co_await apply_notifier_.Wait();
    }
  }
}

Task<void> RaftNode::MaybeCompact() {
  if (compacting_) co_return;
  if (applied_ - log_.snapshot_index() < opts_.compaction_threshold) co_return;
  compacting_ = true;
  Index snap_at = applied_;
  Term snap_term = log_.TermAt(snap_at);
  std::string snap = sm_->TakeSnapshot();  // synchronous: consistent at applied_
  (void)co_await log_.SaveSnapshot(snap_at, snap_term, std::move(snap));
  compacting_ = false;
}

// --- Handlers (called via RaftHost) --------------------------------------

Task<VoteResp> RaftNode::OnVote(VoteReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  VoteResp resp;
  resp.gid = gid_;
  if (!running_) {
    resp.term = log_.term();
    co_return resp;
  }
  Term term = log_.term();
  NodeId voted_for = log_.voted_for();
  if (req.term < term) {
    resp.term = term;
    resp.granted = false;
    co_return resp;
  }
  if (req.term > term) {
    term = req.term;
    voted_for = sim::kInvalidNode;
    BecomeFollower(term, sim::kInvalidNode);
  }
  bool log_ok = req.last_log_term > log_.last_term() ||
                (req.last_log_term == log_.last_term() && req.last_log_index >= log_.last_index());
  bool grant = log_ok && (voted_for == sim::kInvalidNode || voted_for == req.candidate);
  if (grant) {
    voted_for = req.candidate;
    election_deadline_ = sched().Now() + RandomElectionTimeout();
  }
  if (term != log_.term() || voted_for != log_.voted_for()) {
    co_await PersistTerm(term, voted_for);
  }
  resp.term = term;
  resp.granted = grant;
  co_return resp;
}

Task<AppendResp> RaftNode::OnAppend(AppendReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  AppendResp resp;
  resp.gid = gid_;
  resp.term = log_.term();
  if (!running_) co_return resp;

  if (req.term < log_.term()) {
    resp.success = false;
    co_return resp;
  }
  if (req.term > log_.term()) {
    co_await PersistTerm(req.term, sim::kInvalidNode);
  }
  BecomeFollower(req.term, req.leader);
  resp.term = req.term;

  // Consistency check against prev_index/prev_term. Anything at or below the
  // snapshot boundary is known committed and therefore matches.
  if (req.prev_index > log_.last_index()) {
    resp.success = false;
    resp.match_hint = log_.last_index() + 1;
    co_return resp;
  }
  if (req.prev_index > log_.snapshot_index() &&
      log_.TermAt(req.prev_index) != req.prev_term) {
    resp.success = false;
    resp.match_hint = req.prev_index;  // probe backwards
    co_return resp;
  }

  // Append, resolving conflicts. All structural mutation is synchronous;
  // persistence cost is charged once at the end.
  Index last_new = req.prev_index;
  bool truncated = false;
  std::vector<LogEntry> to_append;
  for (auto& e : req.entries) {
    last_new = e.index;
    if (e.index <= log_.snapshot_index()) continue;  // covered by snapshot
    if (log_.Has(e.index)) {
      if (log_.TermAt(e.index) == e.term) continue;  // duplicate
      // Conflict: drop our divergent suffix (and fail proposals that lived
      // in it — they were overwritten by a newer leader).
      for (auto it = pending_.lower_bound(e.index); it != pending_.end();) {
        it->second.second->done.Set(Status::NotLeader("entry overwritten"));
        it = pending_.erase(it);
      }
      (void)co_await log_.TruncateFrom(e.index);
      truncated = true;
    }
    to_append.push_back(std::move(e));
  }
  (void)truncated;
  if (!to_append.empty()) {
    Status st = co_await log_.Append(std::span<const LogEntry>(to_append));
    if (!st.ok()) {
      resp.success = false;
      resp.match_hint = log_.last_index() + 1;
      co_return resp;
    }
  }

  if (req.commit > commit_) {
    commit_ = std::min(req.commit, last_new);
    KickApply();
  }
  resp.success = true;
  resp.match_hint = last_new;
  co_return resp;
}

Task<InstallSnapshotResp> RaftNode::OnInstallSnapshot(InstallSnapshotReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  InstallSnapshotResp resp;
  resp.gid = gid_;
  resp.term = log_.term();
  if (!running_) co_return resp;
  if (req.term < log_.term()) co_return resp;
  if (req.term > log_.term()) {
    co_await PersistTerm(req.term, sim::kInvalidNode);
  }
  BecomeFollower(req.term, req.leader);
  resp.term = req.term;
  if (req.snap_index <= log_.snapshot_index()) {
    resp.ok = true;  // already have it
    co_return resp;
  }
  sm_->Restore(req.data);
  (void)co_await log_.InstallSnapshot(req.snap_index, req.snap_term, std::move(req.data));
  applied_ = std::max(applied_, log_.snapshot_index());
  commit_ = std::max(commit_, log_.snapshot_index());
  resp.ok = true;
  co_return resp;
}

bool RaftNode::OnHeartbeat(const HeartbeatItem& item, NodeId from) {
  if (!running_ || !host_->up()) return false;
  if (item.term < log_.term()) return true;  // stale leader
  if (item.term > log_.term()) {
    BecomeFollower(item.term, from);
    Spawn([](RaftNode* self, Term t) -> Task<void> {
      if (t > self->log_.term()) co_await self->PersistTerm(t, sim::kInvalidNode);
    }(this, item.term));
    return false;  // don't advance commit until the term is persisted
  }
  if (role_ == Role::kLeader) return false;  // self heartbeat echo; ignore
  BecomeFollower(item.term, from);
  // Commit advance is safe only when our tail is from the leader's term
  // (log matching property guarantees our prefix equals the leader's).
  if (log_.last_term() == item.term && item.commit > commit_) {
    commit_ = std::min(item.commit, log_.last_index());
    KickApply();
  }
  return false;
}

}  // namespace cfs::raft
