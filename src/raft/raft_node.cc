#include "raft/raft_node.h"

#include <algorithm>

#include "common/logging.h"

namespace cfs::raft {

using sim::SleepFor;
using sim::Spawn;
using sim::Task;

// Concurrency rule used throughout this file: all structural state mutation
// happens synchronously (between awaits); co_await is used only for timing
// (disk persistence, RPCs). After any await, leadership/term/generation are
// re-checked before acting.

RaftNode::RaftNode(const RaftOptions& opts, GroupId gid, NodeId self, std::vector<NodeId> peers,
                   sim::Network* net, sim::Host* host, sim::Disk* disk, StateMachine* sm)
    : opts_(opts),
      gid_(gid),
      self_(self),
      peers_(std::move(peers)),
      net_(net),
      host_(host),
      sm_(sm),
      log_(&host->storage(), disk, gid) {}

SimDuration RaftNode::RandomElectionTimeout() {
  return static_cast<SimDuration>(sched().rng().Range(
      static_cast<uint64_t>(opts_.election_timeout_min),
      static_cast<uint64_t>(opts_.election_timeout_max)));
}

void RaftNode::Start() {
  running_ = true;
  gen_++;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  Spawn(ElectionLoop(gen_));
}

void RaftNode::Stop() {
  running_ = false;
  gen_++;
  FailPendingProposals(Status::Unavailable("raft node stopped"));
}

sim::Task<Status> RaftNode::Recover() {
  gen_++;  // kill any loops from the previous incarnation
  running_ = false;
  FailPendingProposals(Status::Unavailable("raft node restarting"));
  role_ = Role::kFollower;
  leader_ = sim::kInvalidNode;
  CFS_CO_RETURN_IF_ERROR(co_await log_.Load());
  if (log_.has_snapshot()) {
    sm_->Restore(log_.snapshot_data());
  }
  // Volatile indices restart at the snapshot boundary; commit is re-learned
  // from the current leader.
  applied_ = log_.snapshot_index();
  commit_ = log_.snapshot_index();
  Start();
  co_return Status::OK();
}

void RaftNode::FailPendingProposals(const Status& status) {
  for (auto& [idx, p] : pending_) p.second.Set(status);
  pending_.clear();
}

// --- Election ------------------------------------------------------------

Task<void> RaftNode::ElectionLoop(uint64_t gen) {
  const SimDuration tick = opts_.election_timeout_min / 5;
  while (running_ && gen_ == gen) {
    co_await SleepFor{sched(), tick};
    if (!running_ || gen_ != gen) break;
    if (!host_->up()) {
      election_deadline_ = sched().Now() + RandomElectionTimeout();
      continue;
    }
    if (role_ == Role::kLeader) continue;
    if (sched().Now() >= election_deadline_) {
      co_await RunElection(gen);
    }
  }
}

Task<void> RaftNode::RunElection(uint64_t gen) {
  role_ = Role::kCandidate;
  leader_ = sim::kInvalidNode;
  Term my_term = log_.term() + 1;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  co_await PersistTerm(my_term, self_);
  if (!running_ || gen_ != gen || log_.term() != my_term) co_return;

  struct Tally {
    int votes = 1;  // self
    bool done = false;
  };
  auto tally = std::make_shared<Tally>();
  sim::Promise<bool> won(&sched());

  for (NodeId peer : peers_) {
    if (peer == self_) continue;
    VoteReq req{gid_, my_term, self_, log_.last_index(), log_.last_term()};
    Spawn([](RaftNode* self, NodeId peer, VoteReq req, std::shared_ptr<Tally> tally,
             sim::Promise<bool> won, Term my_term) -> Task<void> {
      auto r = co_await self->net_->Call<VoteReq, VoteResp>(  // lint:allow(raw-rpc)
          self->self_, peer, req, self->opts_.rpc_timeout);
      if (!r.ok() || tally->done) co_return;
      if (r->term > my_term) {
        tally->done = true;
        self->StepDownIfStale(r->term);
        won.Set(false);
        co_return;
      }
      if (r->granted && self->role_ == Role::kCandidate && self->log_.term() == my_term) {
        tally->votes++;
        if (tally->votes >= self->Majority()) {
          tally->done = true;
          won.Set(true);
        }
      }
    }(this, peer, req, tally, won, my_term));
  }
  if (Majority() == 1) won.Set(true);  // single-replica group

  auto v = co_await won.future().WithTimeout(opts_.election_timeout_min);
  tally->done = true;
  if (!running_ || gen_ != gen) co_return;
  if (v.value_or(false) && role_ == Role::kCandidate && log_.term() == my_term) {
    BecomeLeader();
  }
}

void RaftNode::BecomeFollower(Term term, NodeId leader) {
  role_ = Role::kFollower;
  leader_ = leader;
  election_deadline_ = sched().Now() + RandomElectionTimeout();
  (void)term;  // persisted by the caller where required
}

void RaftNode::StepDownIfStale(Term observed) {
  if (observed <= log_.term()) return;
  BecomeFollower(observed, sim::kInvalidNode);
  Spawn([](RaftNode* self, Term t) -> Task<void> {
    if (t > self->log_.term()) co_await self->PersistTerm(t, sim::kInvalidNode);
  }(this, observed));
}

Task<void> RaftNode::PersistTerm(Term term, NodeId voted_for) {
  (void)co_await log_.SaveHardState(term, voted_for);
}

void RaftNode::BecomeLeader() {
  role_ = Role::kLeader;
  leader_ = self_;
  LOG_DEBUG("raft group ", gid_, " node ", self_, " became leader, term ", log_.term());
  for (NodeId peer : peers_) {
    if (peer == self_) continue;
    next_index_[peer] = log_.last_index() + 1;
    match_index_[peer] = 0;
  }
  // Commit a no-op entry from the new term so earlier-term entries become
  // committable (Raft §5.4.2).
  Spawn([](RaftNode* self) -> Task<void> {
    if (self->role_ != Role::kLeader) co_return;
    LogEntry noop{self->log_.term(), self->log_.last_index() + 1, ""};
    (void)co_await self->log_.Append(std::span<const LogEntry>(&noop, 1));
    for (NodeId peer : self->peers_) {
      if (peer != self->self_) self->KickPeer(peer);
    }
    self->AdvanceCommit();
  }(this));
}

// --- Proposals -----------------------------------------------------------

Task<Status> RaftNode::Propose(std::string cmd) {
  auto r = co_await ProposeIndexed(std::move(cmd));
  co_return r.status();
}

Task<Result<Index>> RaftNode::ProposeIndexed(std::string cmd) {
  if (!host_->up() || !running_) co_return Status::Unavailable("node down");
  if (role_ != Role::kLeader) {
    co_return Status::NotLeader(std::to_string(leader_));
  }
  Term my_term = log_.term();
  LogEntry entry{my_term, log_.last_index() + 1, std::move(cmd)};
  Index idx = entry.index;

  sim::Promise<Status> done(&sched());
  pending_.emplace(idx, std::make_pair(my_term, done));

  CFS_CO_RETURN_IF_ERROR(co_await log_.Append(std::span<const LogEntry>(&entry, 1)));
  if (role_ == Role::kLeader && log_.term() == my_term) {
    for (NodeId peer : peers_) {
      if (peer != self_) KickPeer(peer);
    }
    AdvanceCommit();  // single-replica groups commit immediately
  }

  auto st = co_await done.future().WithTimeout(opts_.propose_timeout);
  if (!st) {
    pending_.erase(idx);
    co_return Status::TimedOut("propose not committed in time");
  }
  if (!st->ok()) co_return *st;
  co_return idx;
}

void RaftNode::KickPeer(NodeId peer) {
  if (pump_active_[peer]) return;
  pump_active_[peer] = true;
  Spawn(PeerPump(peer, log_.term(), gen_));
}

Task<void> RaftNode::PeerPump(NodeId peer, Term my_term, uint64_t gen) {
  while (running_ && gen_ == gen && role_ == Role::kLeader && log_.term() == my_term &&
         host_->up()) {
    Index next = next_index_[peer];
    if (next > log_.last_index()) break;  // caught up; pump goes idle

    if (next < log_.first_index()) {
      // Peer is behind the compacted prefix: ship the snapshot.
      bool ok = co_await SendSnapshotTo(peer, my_term);
      if (!running_ || gen_ != gen || role_ != Role::kLeader || log_.term() != my_term) break;
      if (!ok) co_await SleepFor{sched(), 20 * kMsec};
      continue;
    }

    AppendReq req;
    req.gid = gid_;
    req.term = my_term;
    req.leader = self_;
    req.prev_index = next - 1;
    req.prev_term = log_.TermAt(next - 1);
    req.commit = commit_;
    Index end = std::min(log_.last_index(), next + opts_.max_batch_entries - 1);
    for (Index i = next; i <= end; i++) req.entries.push_back(log_.At(i));

    auto r = co_await net_->Call<AppendReq, AppendResp>(  // lint:allow(raw-rpc)
        self_, peer, std::move(req), opts_.rpc_timeout);
    if (!running_ || gen_ != gen || role_ != Role::kLeader || log_.term() != my_term) break;
    if (!r.ok()) {
      co_await SleepFor{sched(), 10 * kMsec};
      continue;
    }
    if (r->term > my_term) {
      StepDownIfStale(r->term);
      break;
    }
    if (r->success) {
      match_index_[peer] = std::max(match_index_[peer], r->match_hint);
      next_index_[peer] = match_index_[peer] + 1;
      AdvanceCommit();
    } else {
      Index hint = std::max<Index>(1, std::min(next - 1, r->match_hint));
      next_index_[peer] = hint;
    }
  }
  pump_active_[peer] = false;
  // New entries may have arrived while we were finishing; re-arm if so.
  if (running_ && gen_ == gen && role_ == Role::kLeader && log_.term() == my_term &&
      next_index_[peer] <= log_.last_index()) {
    KickPeer(peer);
  }
}

Task<bool> RaftNode::SendSnapshotTo(NodeId peer, Term my_term) {
  InstallSnapshotReq req;
  req.gid = gid_;
  req.term = my_term;
  req.leader = self_;
  req.snap_index = log_.snapshot_index();
  req.snap_term = log_.snapshot_term();
  req.data = log_.snapshot_data();
  auto r = co_await net_->Call<InstallSnapshotReq, InstallSnapshotResp>(  // lint:allow(raw-rpc)
      self_, peer, std::move(req), opts_.rpc_timeout * 4);
  if (!r.ok()) co_return false;
  if (r->term > my_term) {
    StepDownIfStale(r->term);
    co_return false;
  }
  if (r->ok) {
    match_index_[peer] = std::max(match_index_[peer], log_.snapshot_index());
    next_index_[peer] = match_index_[peer] + 1;
  }
  co_return r->ok;
}

void RaftNode::AdvanceCommit() {
  if (role_ != Role::kLeader) return;
  std::vector<Index> matches;
  matches.push_back(log_.last_index());  // self
  for (NodeId peer : peers_) {
    if (peer != self_) matches.push_back(match_index_[peer]);
  }
  std::sort(matches.begin(), matches.end(), std::greater<>());
  Index candidate = matches[Majority() - 1];
  if (candidate > commit_ && log_.TermAt(candidate) == log_.term()) {
    commit_ = candidate;
    KickApply();
  }
}

void RaftNode::KickApply() {
  if (apply_running_) return;
  apply_running_ = true;
  Spawn(ApplyLoop());
}

Task<void> RaftNode::ApplyLoop() {
  while (applied_ < commit_) {
    Index idx = applied_ + 1;
    if (idx <= log_.snapshot_index()) {
      applied_ = log_.snapshot_index();
      continue;
    }
    if (!log_.Has(idx)) break;  // should not happen; wait for entries
    const LogEntry& e = log_.At(idx);
    if (!e.data.empty()) {
      sm_->Apply(idx, e.data);
    }
    applied_ = idx;
    auto it = pending_.find(idx);
    if (it != pending_.end()) {
      Status st = it->second.first == e.term
                      ? Status::OK()
                      : Status::NotLeader("entry overwritten by new leader");
      it->second.second.Set(st);
      pending_.erase(it);
    }
    co_await host_->cpu().Use(2);  // apply cost
  }
  apply_running_ = false;
  if (applied_ < commit_) KickApply();
  co_await MaybeCompact();
}

Task<void> RaftNode::MaybeCompact() {
  if (compacting_) co_return;
  if (applied_ - log_.snapshot_index() < opts_.compaction_threshold) co_return;
  compacting_ = true;
  Index snap_at = applied_;
  Term snap_term = log_.TermAt(snap_at);
  std::string snap = sm_->TakeSnapshot();  // synchronous: consistent at applied_
  (void)co_await log_.SaveSnapshot(snap_at, snap_term, std::move(snap));
  compacting_ = false;
}

// --- Handlers (called via RaftHost) --------------------------------------

Task<VoteResp> RaftNode::OnVote(VoteReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  VoteResp resp;
  resp.gid = gid_;
  if (!running_) {
    resp.term = log_.term();
    co_return resp;
  }
  Term term = log_.term();
  NodeId voted_for = log_.voted_for();
  if (req.term < term) {
    resp.term = term;
    resp.granted = false;
    co_return resp;
  }
  if (req.term > term) {
    term = req.term;
    voted_for = sim::kInvalidNode;
    BecomeFollower(term, sim::kInvalidNode);
  }
  bool log_ok = req.last_log_term > log_.last_term() ||
                (req.last_log_term == log_.last_term() && req.last_log_index >= log_.last_index());
  bool grant = log_ok && (voted_for == sim::kInvalidNode || voted_for == req.candidate);
  if (grant) {
    voted_for = req.candidate;
    election_deadline_ = sched().Now() + RandomElectionTimeout();
  }
  if (term != log_.term() || voted_for != log_.voted_for()) {
    co_await PersistTerm(term, voted_for);
  }
  resp.term = term;
  resp.granted = grant;
  co_return resp;
}

Task<AppendResp> RaftNode::OnAppend(AppendReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  AppendResp resp;
  resp.gid = gid_;
  resp.term = log_.term();
  if (!running_) co_return resp;

  if (req.term < log_.term()) {
    resp.success = false;
    co_return resp;
  }
  if (req.term > log_.term()) {
    co_await PersistTerm(req.term, sim::kInvalidNode);
  }
  BecomeFollower(req.term, req.leader);
  resp.term = req.term;

  // Consistency check against prev_index/prev_term. Anything at or below the
  // snapshot boundary is known committed and therefore matches.
  if (req.prev_index > log_.last_index()) {
    resp.success = false;
    resp.match_hint = log_.last_index() + 1;
    co_return resp;
  }
  if (req.prev_index > log_.snapshot_index() &&
      log_.TermAt(req.prev_index) != req.prev_term) {
    resp.success = false;
    resp.match_hint = req.prev_index;  // probe backwards
    co_return resp;
  }

  // Append, resolving conflicts. All structural mutation is synchronous;
  // persistence cost is charged once at the end.
  Index last_new = req.prev_index;
  bool truncated = false;
  std::vector<LogEntry> to_append;
  for (auto& e : req.entries) {
    last_new = e.index;
    if (e.index <= log_.snapshot_index()) continue;  // covered by snapshot
    if (log_.Has(e.index)) {
      if (log_.TermAt(e.index) == e.term) continue;  // duplicate
      // Conflict: drop our divergent suffix (and fail proposals that lived
      // in it — they were overwritten by a newer leader).
      for (auto it = pending_.lower_bound(e.index); it != pending_.end();) {
        it->second.second.Set(Status::NotLeader("entry overwritten"));
        it = pending_.erase(it);
      }
      (void)co_await log_.TruncateFrom(e.index);
      truncated = true;
    }
    to_append.push_back(std::move(e));
  }
  (void)truncated;
  if (!to_append.empty()) {
    Status st = co_await log_.Append(std::span<const LogEntry>(to_append));
    if (!st.ok()) {
      resp.success = false;
      resp.match_hint = log_.last_index() + 1;
      co_return resp;
    }
  }

  if (req.commit > commit_) {
    commit_ = std::min(req.commit, last_new);
    KickApply();
  }
  resp.success = true;
  resp.match_hint = last_new;
  co_return resp;
}

Task<InstallSnapshotResp> RaftNode::OnInstallSnapshot(InstallSnapshotReq req) {
  co_await host_->cpu().Use(opts_.cpu_per_message);
  InstallSnapshotResp resp;
  resp.gid = gid_;
  resp.term = log_.term();
  if (!running_) co_return resp;
  if (req.term < log_.term()) co_return resp;
  if (req.term > log_.term()) {
    co_await PersistTerm(req.term, sim::kInvalidNode);
  }
  BecomeFollower(req.term, req.leader);
  resp.term = req.term;
  if (req.snap_index <= log_.snapshot_index()) {
    resp.ok = true;  // already have it
    co_return resp;
  }
  sm_->Restore(req.data);
  (void)co_await log_.InstallSnapshot(req.snap_index, req.snap_term, std::move(req.data));
  applied_ = std::max(applied_, log_.snapshot_index());
  commit_ = std::max(commit_, log_.snapshot_index());
  resp.ok = true;
  co_return resp;
}

bool RaftNode::OnHeartbeat(const HeartbeatItem& item, NodeId from) {
  if (!running_ || !host_->up()) return false;
  if (item.term < log_.term()) return true;  // stale leader
  if (item.term > log_.term()) {
    BecomeFollower(item.term, from);
    Spawn([](RaftNode* self, Term t) -> Task<void> {
      if (t > self->log_.term()) co_await self->PersistTerm(t, sim::kInvalidNode);
    }(this, item.term));
    return false;  // don't advance commit until the term is persisted
  }
  if (role_ == Role::kLeader) return false;  // self heartbeat echo; ignore
  BecomeFollower(item.term, from);
  // Commit advance is safe only when our tail is from the leader's term
  // (log matching property guarantees our prefix equals the leader's).
  if (log_.last_term() == item.term && item.commit > commit_) {
    commit_ = std::min(item.commit, log_.last_index());
    KickApply();
  }
  return false;
}

}  // namespace cfs::raft
