// Machine-checked raft protocol invariants (deep checks; see common/check.h).
//
// The checker operates on ReplicaSnapshot values — a cheap, copyable capture
// of one replica's externally visible protocol state — so that (a) the
// harness can snapshot a live group between scheduler steps and (b) negative
// tests can construct violating states directly without reaching into
// RaftNode internals.
//
// Invariant catalog (per group):
//  * election safety: at most one leader per term;
//  * log matching: if two replicas hold an entry with the same index and
//    term, the entries carry identical data;
//  * committed-prefix agreement: entries at or below both replicas' commit
//    indices agree on term (and therefore, by log matching, on data);
//  * per-replica sanity: commit index <= last log index, applied index <=
//    commit index, entry indices are dense, and entry terms are monotone
//    non-decreasing and never exceed the replica's current term.
#pragma once

#include <vector>

#include "common/check.h"
#include "raft/raft_node.h"
#include "raft/types.h"

namespace cfs::raft {

/// Externally visible protocol state of one replica at a point in time.
struct ReplicaSnapshot {
  NodeId node = 0;
  bool is_leader = false;
  Term term = 0;           ///< current (hard-state) term
  Index commit = 0;
  Index applied = 0;
  Index first_index = 1;   ///< first index still in the log (post-compaction)
  Index snap_index = 0;    ///< snapshot boundary (0 = none)
  Term snap_term = 0;
  std::vector<LogEntry> entries;  ///< entries[i] has index first_index + i
};

/// Capture a replica's state. Safe to call between scheduler events.
ReplicaSnapshot SnapshotReplica(const RaftNode& node);

/// Check the invariant catalog over one group's replicas. Violations are
/// appended to `report` tagged "raft"; `label` names the group in messages.
void CheckRaftGroup(const std::vector<ReplicaSnapshot>& replicas, InvariantReport* report,
                    const std::string& label = "");

}  // namespace cfs::raft
