#include "raft/log_store.h"

namespace cfs::raft {

LogStore::LogStore(sim::StableStorage* storage, sim::Disk* disk, GroupId gid)
    : storage_(storage),
      disk_(disk),
      gid_(gid),
      // Blob names are fixed for the store's lifetime; building them once
      // keeps the per-batch WAL append free of string concatenation.
      key_hs_(Key("hs")),
      key_snap_(Key("snap")),
      key_log_(Key("log")) {}

std::string LogStore::Key(const char* what) const {
  return "raft/" + std::to_string(gid_) + "/" + what;
}

void LogStore::EncodeEntry(Encoder* enc, const LogEntry& e) {
  enc->PutU64(e.term);
  enc->PutU64(e.index);
  enc->PutString(e.data.view());
}

Status LogStore::DecodeEntry(Decoder* dec, LogEntry* e) {
  CFS_RETURN_IF_ERROR(dec->GetU64(&e->term));
  CFS_RETURN_IF_ERROR(dec->GetU64(&e->index));
  std::string data;
  CFS_RETURN_IF_ERROR(dec->GetString(&data));
  e->data = Buffer::FromString(std::move(data));
  return Status::OK();
}

sim::Task<Status> LogStore::Load() {
  std::string hs;
  if (storage_->Get(key_hs_, &hs)) {
    Decoder dec(hs);
    uint64_t term, vote;
    CFS_CO_RETURN_IF_ERROR(dec.GetU64(&term));
    CFS_CO_RETURN_IF_ERROR(dec.GetU64(&vote));
    term_ = term;
    voted_for_ = static_cast<NodeId>(vote);
  }
  std::string snap;
  if (storage_->Get(key_snap_, &snap)) {
    Decoder dec(snap);
    std::string data;
    CFS_CO_RETURN_IF_ERROR(dec.GetU64(&snap_index_));
    CFS_CO_RETURN_IF_ERROR(dec.GetU64(&snap_term_));
    CFS_CO_RETURN_IF_ERROR(dec.GetString(&data));
    snap_data_ = std::move(data);
  }
  entries_.clear();
  std::string log;
  if (storage_->Get(key_log_, &log)) {
    Decoder dec(log);
    while (!dec.Done()) {
      LogEntry e;
      CFS_CO_RETURN_IF_ERROR(DecodeEntry(&dec, &e));
      // Entries covered by the snapshot were compacted logically but a
      // crash may have preserved the pre-compaction file; skip them.
      if (e.index <= snap_index_) continue;
      if (e.index != snap_index_ + 1 + entries_.size()) {
        co_return Status::Corruption("log entry index gap");
      }
      entries_.push_back(std::move(e));
    }
  }
  co_return co_await disk_->Read(hs.size() + snap.size() + log.size() + 64);
}

sim::Task<Status> LogStore::SaveHardState(Term term, NodeId voted_for) {
  term_ = term;
  voted_for_ = voted_for;
  Encoder enc;
  enc.PutU64(term_);
  enc.PutU64(voted_for_);
  storage_->Put(key_hs_, enc.Take());
  // Hard-state updates must be durable before acting on them (fsync).
  co_return co_await disk_->Write(16);
}

Term LogStore::TermAt(Index index) const {
  if (index == snap_index_) return snap_term_;
  if (index == 0) return 0;
  if (!Has(index)) return 0;
  return At(index).term;
}

sim::Task<Status> LogStore::Append(std::span<const LogEntry> entries,
                                   obs::TraceContext trace) {
  Encoder enc;
  for (const auto& e : entries) {
    if (e.index != last_index() + 1) co_return Status::Corruption("append index gap");
    EncodeEntry(&enc, e);
    entries_.push_back(e);
  }
  size_t bytes = enc.size();
  storage_->Append(key_log_, enc.data());
  persisted_bytes_ += bytes;
  append_writes_++;
  appended_entries_ += entries.size();
  co_return co_await disk_->Write(bytes, trace);
}

sim::Task<Status> LogStore::TruncateFrom(Index from) {
  if (from <= snap_index_) co_return Status::InvalidArgument("truncate into snapshot");
  while (last_index() >= from) entries_.pop_back();
  co_return co_await RewriteLog();
}

sim::Task<Status> LogStore::RewriteLog() {
  Encoder enc;
  for (const auto& e : entries_) EncodeEntry(&enc, e);
  size_t bytes = enc.size();
  storage_->Put(key_log_, enc.Take());
  persisted_bytes_ += bytes;
  co_return co_await disk_->Write(bytes + 64);
}

sim::Task<Status> LogStore::SaveSnapshot(Index index, Term term, std::string data) {
  if (index <= snap_index_) co_return Status::OK();  // stale snapshot request
  if (index > last_index()) co_return Status::InvalidArgument("snapshot beyond log");
  // Drop the compacted prefix.
  while (!entries_.empty() && entries_.front().index <= index) entries_.pop_front();
  snap_index_ = index;
  snap_term_ = term;
  snap_data_ = std::move(data);

  Encoder enc;
  enc.PutU64(snap_index_);
  enc.PutU64(snap_term_);
  enc.PutString(snap_data_);
  size_t bytes = enc.size();
  storage_->Put(key_snap_, enc.Take());
  persisted_bytes_ += bytes;
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Write(bytes));
  co_return co_await RewriteLog();
}

sim::Task<Status> LogStore::InstallSnapshot(Index index, Term term, std::string data) {
  entries_.clear();
  snap_index_ = index;
  snap_term_ = term;
  snap_data_ = std::move(data);

  Encoder enc;
  enc.PutU64(snap_index_);
  enc.PutU64(snap_term_);
  enc.PutString(snap_data_);
  size_t bytes = enc.size();
  storage_->Put(key_snap_, enc.Take());
  persisted_bytes_ += bytes;
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Write(bytes));
  co_return co_await RewriteLog();
}

}  // namespace cfs::raft
