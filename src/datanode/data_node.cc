#include "datanode/data_node.h"

#include "common/logging.h"

namespace cfs::data {

using sim::Spawn;
using sim::Task;

DataNode::DataNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
                   const DataNodeOptions& opts)
    : net_(net), host_(host), raft_(raft), opts_(opts), channel_(net, &rpc_metrics_),
      admission_(net->scheduler()) {
  admission_.Configure(opts_.admission_slots);
  RegisterHandlers();
}

Status DataNode::CreatePartition(const DataPartitionConfig& config, bool recover) {
  if (partitions_.count(config.id)) return Status::AlreadyExists("partition");
  // Admission weights ride along with partition installs.
  admission_.SetWeight(config.volume, config.qos_weight);
  DataPartitionConfig cfg = config;
  cfg.store.track_contents = opts_.track_contents;
  if (cfg.disk_index < 0) {
    // The resource manager leaves the disk choice to the node: pick the
    // least-utilized local disk (utilization-based placement, §2.3.1),
    // breaking fresh-disk ties round-robin so partition load spreads.
    int best = static_cast<int>(next_disk_++ % host_->num_disks());
    uint64_t best_used = host_->disk(best)->used_bytes();
    for (int i = 0; i < host_->num_disks(); i++) {
      if (host_->disk(i)->used_bytes() < best_used) {
        best = i;
        best_used = host_->disk(i)->used_bytes();
      }
    }
    cfg.disk_index = best;
  }
  auto dp = std::make_unique<DataPartition>(cfg, net_, host_, raft_);
  DataPartition* ptr = dp.get();
  partitions_[config.id] = std::move(dp);
  if (recover) {
    Spawn([](raft::RaftNode* n) -> Task<void> { (void)co_await n->Recover(); }(
        ptr->raft_node()));
  } else {
    ptr->raft_node()->Start();
  }
  return Status::OK();
}

DataPartition* DataNode::GetPartition(PartitionId pid) {
  auto it = partitions_.find(pid);
  return it == partitions_.end() ? nullptr : it->second.get();
}

std::vector<DataPartitionReport> DataNode::Reports() const {
  std::vector<DataPartitionReport> out;
  for (const auto& [pid, dp] : partitions_) {
    DataPartitionReport r;
    r.pid = pid;
    r.volume = dp->config().volume;
    r.extents = dp->store().num_extents();
    r.used_bytes = dp->store().physical_bytes();
    r.is_chain_leader = dp->IsChainLeader();
    r.is_raft_leader = dp->raft_node()->IsLeader();
    r.full = dp->IsFull();
    r.read_only = dp->read_only();
    out.push_back(r);
  }
  return out;
}

sim::Task<void> DataNode::RecoverAll() {
  // Snapshot the partition ids: recovery suspends on peer RPCs, and
  // partitions_ can gain entries (CreateDataPartition) while this coroutine
  // is parked, invalidating live iterators into the map (A1).
  std::vector<PartitionId> pids;
  for (const auto& [pid, dp] : partitions_) pids.push_back(pid);
  // Phase 1 (§2.2.5): primary-backup recovery — check and align all extents.
  for (PartitionId pid : pids) {
    auto it = partitions_.find(pid);
    if (it == partitions_.end()) continue;
    it->second->ReinitAfterRecovery();
    co_await AlignPartition(it->second.get());
  }
  // Phase 2: raft recovery of the overwrite groups.
  for (PartitionId pid : pids) {
    auto it = partitions_.find(pid);
    if (it == partitions_.end()) continue;
    (void)co_await it->second->raft_node()->Recover();
  }
}

sim::Task<void> DataNode::AlignPartition(DataPartition* p) {
  // Copy the replica list: the partition's config lives outside this frame
  // and the loop body suspends on peer RPCs (A1).
  const std::vector<sim::NodeId> replicas = p->config().replicas;
  for (sim::NodeId peer : replicas) {
    if (peer == host_->id()) continue;
    auto info = co_await channel_.Unary<ExtentInfoReq, ExtentInfoResp>(
        host_->id(), peer, ExtentInfoReq{p->id()}, opts_.chain_rpc_timeout);
    if (!info.ok() || !info->status.ok()) continue;
    for (const ExtentInfo& e : info->extents) {
      if (!p->store().Has(e.id)) {
        (void)p->store().CreateExtentWithId(e.id, e.tiny);
      }
      uint64_t local = p->store().ExtentSize(e.id);
      if (e.size <= local) continue;
      // Fetch the missing suffix from the longer peer.
      auto fetched = co_await channel_.Unary<FetchRangeReq, FetchRangeResp>(
          host_->id(), peer, FetchRangeReq{p->id(), e.id, local, e.size - local},
          opts_.chain_rpc_timeout);
      if (!fetched.ok() || !fetched->status.ok()) continue;
      (void)co_await p->store().PlaceAt(e.id, local, fetched->data);
      p->set_committed(e.id, p->store().ExtentSize(e.id));
    }
  }
}

Task<Status> DataNode::ForwardChainImpl(DataPartition* p, ChainAppendReq req) {
  uint32_t next = req.chain_index + 1;
  if (next >= p->config().replicas.size()) co_return Status::OK();
  req.chain_index = next;
  sim::NodeId target = p->config().replicas[next];
  // Each hop re-parents on the incoming context, so a traced write shows one
  // "rpc:ChainAppend" span per chain position.
  obs::TraceContext trace = req.trace;
  auto r = co_await channel_.Unary<ChainAppendReq, ChainAppendResp>(
      host_->id(), target, std::move(req), opts_.chain_rpc_timeout, trace);
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

Task<Status> DataNode::ForwardChainCreateImpl(DataPartition* p, ChainCreateExtentReq req) {
  uint32_t next = req.chain_index + 1;
  if (next >= p->config().replicas.size()) co_return Status::OK();
  req.chain_index = next;
  sim::NodeId target = p->config().replicas[next];
  auto r = co_await channel_.Unary<ChainCreateExtentReq, ChainCreateExtentResp>(
      host_->id(), target, req, opts_.chain_rpc_timeout, req.trace);
  if (!r.ok()) co_return r.status();
  co_return r->status;
}

void DataNode::RegisterHandlers() {
  host_->Register<CreateDataPartitionReq, CreateDataPartitionResp>(
      [this](CreateDataPartitionReq req, sim::NodeId) -> Task<CreateDataPartitionResp> {
        co_await host_->cpu().Use(OpCost(0));
        co_return CreateDataPartitionResp{CreatePartition(req.config)};
      });

  host_->Register<CreateExtentReq, CreateExtentResp>(
      [this](CreateExtentReq req, sim::NodeId) -> Task<CreateExtentResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(0));
        co_await host_->cpu().Use(OpCost(0));
        CreateExtentResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        if (!p->IsChainLeader()) {
          resp.status = Status::NotLeader(std::to_string(p->config().replicas.empty()
                                                             ? 0
                                                             : p->config().replicas[0]));
          co_return resp;
        }
        if (p->read_only() || p->IsFull()) {
          resp.status = Status::NoSpace("partition full or read-only");
          co_return resp;
        }
        storage::ExtentId id = p->AllocExtentId();
        Status st = p->store().CreateExtentWithId(id, false);
        if (st.ok()) {
          st = co_await ForwardChainCreate(p, ChainCreateExtentReq{req.pid, id, 0, req.trace});
        }
        resp.status = st;
        resp.extent_id = id;
        co_return resp;
      });

  host_->Register<ChainCreateExtentReq, ChainCreateExtentResp>(
      [this](ChainCreateExtentReq req, sim::NodeId) -> Task<ChainCreateExtentResp> {
        co_await host_->cpu().Use(OpCost(0));
        DataPartition* p = GetPartition(req.pid);
        if (!p) co_return ChainCreateExtentResp{Status::NotFound("data partition")};
        Status st = p->store().CreateExtentWithId(req.extent_id, false);
        if (st.IsAlreadyExists()) st = Status::OK();  // retried chain
        if (st.ok()) st = co_await ForwardChainCreate(p, req);
        co_return ChainCreateExtentResp{st};
      });

  // Sequential write packet (Fig. 4): the primary overlaps its local append
  // with the chain forward — both must succeed before the committed offset
  // advances ("committed by all the replicas", §2.2.5) — then acks the
  // client with the contiguous committed offset. Pipelined clients keep
  // several packets in flight, so completions can arrive out of order; the
  // durable-range tracker in DataPartition keeps the commit contiguous.
  host_->Register<WritePacketReq, WritePacketResp>(
      [this](WritePacketReq req, sim::NodeId) -> Task<WritePacketResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(req.data.size()));
        co_await host_->cpu().Use(OpCost(req.data.size()));
        WritePacketResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        if (!p->IsChainLeader()) {
          resp.status = Status::NotLeader("");
          co_return resp;
        }
        if (p->read_only()) {
          resp.status = Status::Unavailable("read-only");
          resp.committed_offset = p->committed(req.extent_id);
          co_return resp;
        }
        uint64_t end_offset = req.offset + req.data.size();
        if (end_offset > p->store().options().extent_size_limit) {
          resp.status = Status::NoSpace("extent full");
          resp.committed_offset = p->committed(req.extent_id);
          co_return resp;
        }
        // A packet can (rarely) overtake its predecessor on the wire when the
        // trailing packet is much smaller than the jitter window. Wait
        // briefly for the gap to fill instead of failing the whole window;
        // the wakeup timer bounds the wait if the predecessor was lost.
        for (int spin = 0; spin < 3 && p->store().Has(req.extent_id) &&
                           p->store().ExtentSize(req.extent_id) < req.offset;
             spin++) {
          sim::Notifier* gate = &p->placement_gate();
          net_->scheduler()->After(opts_.chain_rpc_timeout, [gate] { gate->NotifyAll(); });
          co_await gate->Wait();
        }
        if (p->store().ExtentSize(req.extent_id) != req.offset) {
          // Missing extent, lost predecessor, or an overlapping retry: report
          // the committed offset so the client resends the suffix elsewhere.
          resp.status = Status::Unavailable("packet out of order");
          resp.committed_offset = p->committed(req.extent_id);
          co_return resp;
        }
        // Overlap the local placement with the chain replication; the
        // request frame outlives both (we join below), so the local path
        // reads the payload in place and only the forward hop copies it.
        Status local_st, fwd_st;
        sim::Join join(net_->scheduler(), 2);
        Spawn([](DataPartition* p, ExtentId extent, uint64_t offset, Buffer data,
                 obs::TraceContext trace, Status* out, std::function<void()> done) -> Task<void> {
          *out = co_await p->store().PlaceAt(extent, offset, data, trace);
          if (out->ok()) p->placement_gate().NotifyAll();
          done();
        }(p, req.extent_id, req.offset, req.data, req.trace, &local_st, join.Arrive()));
        ChainAppendReq fwd;
        fwd.pid = req.pid;
        fwd.extent_id = req.extent_id;
        fwd.offset = req.offset;
        fwd.tiny = false;
        fwd.data = req.data;
        fwd.chain_index = 0;
        fwd.trace = req.trace;
        Spawn([](DataNode* self, DataPartition* p, ChainAppendReq fwd, Status* out,
                 std::function<void()> done) -> Task<void> {
          *out = co_await self->ForwardChain(p, std::move(fwd));
          done();
        }(this, p, std::move(fwd), &fwd_st, join.Arrive()));
        co_await join.Wait();
        if (local_st.ok() && fwd_st.ok()) {
          p->MarkDurable(req.extent_id, req.offset, end_offset);
          resp.status = Status::OK();
        } else {
          resp.status = local_st.ok() ? std::move(fwd_st) : std::move(local_st);
        }
        resp.committed_offset = p->committed(req.extent_id);
        co_return resp;
      });

  host_->Register<ChainAppendReq, ChainAppendResp>(
      [this](ChainAppendReq req, sim::NodeId) -> Task<ChainAppendResp> {
        co_await host_->cpu().Use(OpCost(req.data.size()));
        DataPartition* p = GetPartition(req.pid);
        if (!p) co_return ChainAppendResp{Status::NotFound("data partition")};
        // Apply from a view of the request payload, then forward the same
        // buffer downstream: one buffer per hop (the apply only copies when
        // it has to park an out-of-order arrival).
        Status st = co_await p->ApplyChainAppend(req.extent_id, req.offset, req.data,
                                                 req.tiny, req.trace);
        if (st.ok()) st = co_await ForwardChain(p, std::move(req));
        co_return ChainAppendResp{st};
      });

  // Small-file write (§2.2.3): the primary assigns the slot in the active
  // tiny extent; the placement replicates down the chain.
  host_->Register<WriteSmallReq, WriteSmallResp>(
      [this](WriteSmallReq req, sim::NodeId) -> Task<WriteSmallResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(req.data.size()));
        co_await host_->cpu().Use(OpCost(req.data.size()));
        WriteSmallResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        if (!p->IsChainLeader()) {
          resp.status = Status::NotLeader("");
          co_return resp;
        }
        if (p->read_only() || p->IsFull()) {
          resp.status = Status::NoSpace("partition full or read-only");
          co_return resp;
        }
        auto placed = co_await p->store().WriteSmall(req.data, req.trace);
        if (!placed.ok()) {
          resp.status = placed.status();
          co_return resp;
        }
        auto [extent, offset] = *placed;
        uint64_t len = req.data.size();
        ChainAppendReq fwd{req.pid, extent, offset, true, std::move(req.data), 0, req.trace};
        Status st = co_await ForwardChain(p, std::move(fwd));
        // Durable-range commit (not a blind max): concurrent small writes
        // into the shared tiny extent can complete out of slot order.
        if (st.ok()) p->MarkDurable(extent, offset, offset + len);
        resp.status = st;
        resp.extent_id = extent;
        resp.extent_offset = offset;
        co_return resp;
      });

  // Overwrite (Fig. 5): raft-replicated, in-place, no metadata update.
  host_->Register<OverwriteReq, OverwriteResp>(
      [this](OverwriteReq req, sim::NodeId) -> Task<OverwriteResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(req.data.size()));
        co_await host_->cpu().Use(OpCost(req.data.size()));
        DataPartition* p = GetPartition(req.pid);
        if (!p) co_return OverwriteResp{Status::NotFound("data partition")};
        raft::RaftNode* rn = p->raft_node();
        if (!rn->IsLeader()) {
          co_return OverwriteResp{Status::NotLeader(std::to_string(rn->leader_hint()))};
        }
        // Validate against local state before paying for consensus.
        const storage::Extent* e = p->store().Find(req.extent_id);
        if (!e) co_return OverwriteResp{Status::NotFound("extent")};
        if (req.offset + req.data.size() > e->size) {
          co_return OverwriteResp{Status::InvalidArgument("overwrite beyond extent end")};
        }
        auto idx = co_await rn->ProposeIndexed(
            DataPartition::EncodeOverwrite(req.extent_id, req.offset, req.data.view()),
            req.trace);
        if (!idx.ok()) co_return OverwriteResp{idx.status()};
        auto st = p->TakeResult(*idx);
        co_return OverwriteResp{st.value_or(Status::OK())};
      });

  // Read at the raft leader (§2.7.4), bounded by the committed offset.
  host_->Register<ReadExtentReq, ReadExtentResp>(
      [this](ReadExtentReq req, sim::NodeId) -> Task<ReadExtentResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(req.len));
        co_await host_->cpu().Use(OpCost(req.len));
        ReadExtentResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        if (!p->raft_node()->IsLeader()) {
          resp.status = Status::NotLeader(std::to_string(p->raft_node()->leader_hint()));
          co_return resp;
        }
        // Stale tails beyond the committed offset are never returned
        // (§2.2.5). The chain leader knows the committed offset; other
        // replicas bound by their local size (data at equal offsets is
        // identical by the chain invariant).
        uint64_t bound = p->IsChainLeader() ? p->committed(req.extent_id)
                                            : p->store().ExtentSize(req.extent_id);
        if (bound == 0) bound = p->store().ExtentSize(req.extent_id);
        if (req.offset + req.len > bound) {
          resp.status = Status::InvalidArgument("read beyond committed offset");
          co_return resp;
        }
        auto r = co_await p->store().Read(req.extent_id, req.offset, req.len, req.trace);
        if (!r.ok()) {
          resp.status = r.status();
          co_return resp;
        }
        resp.data = std::move(*r);
        resp.status = Status::OK();
        co_return resp;
      });

  host_->Register<DeleteExtentReq, DeleteExtentResp>(
      [this](DeleteExtentReq req, sim::NodeId) -> Task<DeleteExtentResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(0));
        co_await host_->cpu().Use(OpCost(0));
        DataPartition* p = GetPartition(req.pid);
        if (!p) co_return DeleteExtentResp{Status::NotFound("data partition")};
        raft::RaftNode* rn = p->raft_node();
        if (!rn->IsLeader()) {
          co_return DeleteExtentResp{Status::NotLeader(std::to_string(rn->leader_hint()))};
        }
        auto idx = co_await rn->ProposeIndexed(DataPartition::EncodeDeleteExtent(req.extent_id),
                                               req.trace);
        if (!idx.ok()) co_return DeleteExtentResp{idx.status()};
        co_return DeleteExtentResp{p->TakeResult(*idx).value_or(Status::OK())};
      });

  host_->Register<PunchHoleReq, PunchHoleResp>(
      [this](PunchHoleReq req, sim::NodeId) -> Task<PunchHoleResp> {
        ops_++;
        auto admit = co_await admission_.Enter(req.tenant, OpCost(0));
        co_await host_->cpu().Use(OpCost(0));
        DataPartition* p = GetPartition(req.pid);
        if (!p) co_return PunchHoleResp{Status::NotFound("data partition")};
        raft::RaftNode* rn = p->raft_node();
        if (!rn->IsLeader()) {
          co_return PunchHoleResp{Status::NotLeader(std::to_string(rn->leader_hint()))};
        }
        auto idx = co_await rn->ProposeIndexed(
            DataPartition::EncodePunchHole(req.extent_id, req.offset, req.len), req.trace);
        if (!idx.ok()) co_return PunchHoleResp{idx.status()};
        co_return PunchHoleResp{p->TakeResult(*idx).value_or(Status::OK())};
      });

  // --- Recovery helpers ---

  host_->Register<ExtentInfoReq, ExtentInfoResp>(
      [this](ExtentInfoReq req, sim::NodeId) -> Task<ExtentInfoResp> {
        co_await host_->cpu().Use(OpCost(0));
        ExtentInfoResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        p->store().ForEach([&](const storage::Extent& e) {
          resp.extents.push_back(ExtentInfo{e.id, e.size, e.tiny});
        });
        resp.status = Status::OK();
        co_return resp;
      });

  host_->Register<FetchRangeReq, FetchRangeResp>(
      [this](FetchRangeReq req, sim::NodeId) -> Task<FetchRangeResp> {
        co_await host_->cpu().Use(OpCost(req.len));
        FetchRangeResp resp;
        DataPartition* p = GetPartition(req.pid);
        if (!p) {
          resp.status = Status::NotFound("data partition");
          co_return resp;
        }
        auto r = co_await p->store().Read(req.extent_id, req.offset, req.len);
        if (!r.ok()) {
          resp.status = r.status();
          co_return resp;
        }
        resp.data = std::move(*r);
        resp.status = Status::OK();
        co_return resp;
      });
}

}  // namespace cfs::data
