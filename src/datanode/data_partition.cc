#include "datanode/data_partition.h"

namespace cfs::data {

using sim::Spawn;
using sim::Task;

DataPartition::DataPartition(const DataPartitionConfig& config, sim::Network* net,
                             sim::Host* host, raft::RaftHost* raft)
    : config_(config), net_(net), host_(host), placement_gate_(net->scheduler()) {
  store_ = std::make_unique<storage::ExtentStore>(host_->disk(config.disk_index),
                                                  config.store);
  raft_node_ = raft->CreateGroup(RaftGid(config.id), config.replicas, this,
                                 host_->disk(config.disk_index));
}

uint32_t DataPartition::ChainIndexOf(sim::NodeId node) const {
  for (uint32_t i = 0; i < config_.replicas.size(); i++) {
    if (config_.replicas[i] == node) return i;
  }
  return UINT32_MAX;
}

void DataPartition::MarkDurable(storage::ExtentId id, uint64_t begin, uint64_t end) {
  if (end <= begin) return;
  uint64_t& c = committed_[id];
  if (end <= c) return;  // already inside the committed prefix
  auto& ranges = durable_[id];
  auto [it, inserted] = ranges.emplace(begin, end);
  if (!inserted) it->second = std::max(it->second, end);
  // Advance across the contiguous prefix (ranges may abut or overlap).
  while (!ranges.empty() && ranges.begin()->first <= c) {
    c = std::max(c, ranges.begin()->second);
    ranges.erase(ranges.begin());
  }
  if (ranges.empty()) durable_.erase(id);
}

Task<Status> DataPartition::ApplyChainAppend(storage::ExtentId extent, uint64_t offset,
                                             Buffer data, bool tiny,
                                             obs::TraceContext trace) {
  if (!store_->Has(extent)) {
    // Tiny extents materialize lazily on replicas the first time a
    // placement arrives; large extents were created by the chained create.
    if (tiny) {
      CFS_CO_RETURN_IF_ERROR(store_->CreateExtentWithId(extent, /*tiny=*/true));
    } else {
      co_return Status::NotFound("extent " + std::to_string(extent));
    }
  }
  uint64_t cur = store_->ExtentSize(extent);
  if (offset < cur) co_return Status::OK();  // duplicate (client retry)
  if (offset > cur) {
    // Out of order: park the shared buffer until the gap fills.
    pending_[extent].emplace(offset, std::move(data));
    co_return Status::OK();
  }
  CFS_CO_RETURN_IF_ERROR(co_await store_->PlaceAt(extent, offset, data, trace));
  TryDrainPending(extent);
  co_return Status::OK();
}

void DataPartition::TryDrainPending(storage::ExtentId extent) {
  auto it = pending_.find(extent);
  if (it == pending_.end()) return;
  auto& waiting = it->second;
  while (!waiting.empty()) {
    auto first = waiting.begin();
    uint64_t cur = store_->ExtentSize(extent);
    if (first->first != cur) break;
    Buffer data = std::move(first->second);
    waiting.erase(first);
    // Structural mutation inside PlaceAt is synchronous; the disk charge
    // completes asynchronously.
    Spawn([](storage::ExtentStore* store, storage::ExtentId extent, uint64_t off,
             Buffer data) -> Task<void> {
      (void)co_await store->PlaceAt(extent, off, data);
    }(store_.get(), extent, cur, std::move(data)));
  }
  if (waiting.empty()) pending_.erase(it);
}

// --- Raft command encoding ---------------------------------------------------

std::string DataPartition::EncodeOverwrite(storage::ExtentId id, uint64_t offset,
                                           std::string_view data) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(DataOp::kOverwrite));
  enc.PutVarint(id);
  enc.PutVarint(offset);
  enc.PutString(data);
  return enc.Take();
}

std::string DataPartition::EncodeDeleteExtent(storage::ExtentId id) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(DataOp::kDeleteExtent));
  enc.PutVarint(id);
  return enc.Take();
}

std::string DataPartition::EncodePunchHole(storage::ExtentId id, uint64_t offset,
                                           uint64_t len) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(DataOp::kPunchHole));
  enc.PutVarint(id);
  enc.PutVarint(offset);
  enc.PutVarint(len);
  return enc.Take();
}

void DataPartition::Apply(raft::Index index, std::string_view cmd) {
  Decoder dec(cmd);
  uint8_t op = 0;
  Status st = dec.GetU8(&op);
  if (st.ok()) {
    switch (static_cast<DataOp>(op)) {
      case DataOp::kOverwrite: {
        uint64_t id, offset;
        // View into `cmd` (the log entry outlives the apply): overwrites are
        // the raft hot path, and copying the payload out would double its
        // memory traffic.
        std::string_view data;
        st = dec.GetVarint(&id);
        if (st.ok()) st = dec.GetVarint(&offset);
        if (st.ok()) st = dec.GetStringView(&data);
        if (st.ok()) st = store_->OverwriteSync(id, offset, data);
        break;
      }
      case DataOp::kDeleteExtent: {
        uint64_t id;
        st = dec.GetVarint(&id);
        if (st.ok()) {
          st = store_->DeleteExtentSync(id);
          committed_.erase(id);
          durable_.erase(id);
        }
        break;
      }
      case DataOp::kPunchHole: {
        uint64_t id, offset, len;
        st = dec.GetVarint(&id);
        if (st.ok()) st = dec.GetVarint(&offset);
        if (st.ok()) st = dec.GetVarint(&len);
        if (st.ok()) st = store_->PunchHoleSync(id, offset, len);
        break;
      }
      default:
        st = Status::Corruption("unknown data op");
    }
  }
  results_.emplace(index, std::move(st));
  while (results_.size() > kMaxResults) results_.erase(results_.begin());
}

std::optional<Status> DataPartition::TakeResult(raft::Index index) {
  auto it = results_.find(index);
  if (it == results_.end()) return std::nullopt;
  Status st = std::move(it->second);
  results_.erase(it);
  return st;
}

std::string DataPartition::TakeSnapshot() {
  // Marker only: extent contents are recovered via chain alignment, not
  // raft snapshots (see header comment).
  Encoder enc;
  enc.PutVarint(next_extent_id_);
  return enc.Take();
}

void DataPartition::Restore(std::string_view snapshot) {
  if (snapshot.empty()) return;
  Decoder dec(snapshot);
  uint64_t next = 0;
  if (dec.GetVarint(&next).ok()) {
    next_extent_id_ = std::max(next_extent_id_, next);
  }
}

void DataPartition::CheckInvariants(InvariantReport* report,
                                    const std::string& label) const {
  std::string prefix = label.empty() ? "partition " + std::to_string(config_.id)
                                     : label;
  store_->CheckInvariants(report, prefix);
  for (const auto& [id, off] : committed_) {
    if (!store_->Has(id)) continue;  // delete can race a stale committed entry
    if (off > store_->ExtentSize(id)) {
      report->Violation("data", prefix + " extent " + std::to_string(id) +
                                    ": committed offset " + std::to_string(off) +
                                    " beyond local size " +
                                    std::to_string(store_->ExtentSize(id)));
    }
  }
  for (const auto& [id, ranges] : durable_) {
    if (ranges.empty()) {
      report->Violation("data", prefix + " extent " + std::to_string(id) +
                                    ": empty durable-range map left behind");
      continue;
    }
    uint64_t c = committed(id);
    for (const auto& [begin, end] : ranges) {
      if (end <= begin) {
        report->Violation("data", prefix + " extent " + std::to_string(id) +
                                      ": empty durable range at " +
                                      std::to_string(begin));
      }
      if (begin <= c) {
        report->Violation("data", prefix + " extent " + std::to_string(id) +
                                      ": durable range [" + std::to_string(begin) +
                                      ", " + std::to_string(end) +
                                      ") not merged into committed prefix " +
                                      std::to_string(c));
      }
      if (store_->Has(id) && end > store_->ExtentSize(id)) {
        report->Violation("data", prefix + " extent " + std::to_string(id) +
                                      ": durable range ends beyond local size");
      }
    }
  }
  for (const auto& [id, waiting] : pending_) {
    if (waiting.empty()) {
      report->Violation("data", prefix + " extent " + std::to_string(id) +
                                    ": empty placement buffer left behind");
    }
  }
  if (IsChainLeader()) {
    // The effective allocator is the max of the partition-level counter and
    // the store-level one (tiny extents come from the latter); the next id it
    // hands out must not collide with any resident extent.
    storage::ExtentId max_id = 0;
    store_->ForEach(
        [&](const storage::Extent& e) { max_id = std::max(max_id, e.id); });
    storage::ExtentId next = std::max(next_extent_id_, store_->peek_next_id());
    if (max_id != 0 && next <= max_id) {
      report->Violation("data", prefix + ": extent-id allocator " +
                                    std::to_string(next) +
                                    " not past max allocated id " +
                                    std::to_string(max_id));
    }
  }
}

void DataPartition::ReinitAfterRecovery() {
  storage::ExtentId max_id = 0;
  store_->ForEach([&](const storage::Extent& e) { max_id = std::max(max_id, e.id); });
  next_extent_id_ = std::max(next_extent_id_, max_id + 1);
  // Committed offsets are re-derived conservatively from local sizes; the
  // alignment phase then raises them to the cluster-wide values.
  committed_.clear();
  durable_.clear();
  store_->ForEach([&](const storage::Extent& e) { committed_[e.id] = e.size; });
}

}  // namespace cfs::data
