// Wire messages for the data subsystem: client-facing extent I/O, the
// primary-backup replication chain for sequential writes (§2.2.4, Fig. 4),
// raft-replicated overwrites (Fig. 5), recovery alignment (§2.2.5), and
// resource-manager admin.
#pragma once

#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "storage/extent_store.h"

namespace cfs::data {

using PartitionId = uint64_t;
using storage::ExtentId;

/// Tenant label on client-facing requests (= owning VolumeId; 0 = unlabeled).
using TenantId = uint64_t;

struct DataPartitionConfig {
  PartitionId id = 0;
  uint64_t volume = 0;
  /// Replica order defines the primary-backup chain; index 0 is the leader
  /// ("the replica whose address is at index zero is the leader", §2.7.1).
  std::vector<sim::NodeId> replicas;
  int disk_index = 0;
  uint64_t max_extents = 4096;  // "full" threshold (§2.3.1)
  uint32_t qos_weight = 1;      // weighted-fair admission share of the owning volume
  storage::ExtentStoreOptions store;
};

// --- Client-facing ----------------------------------------------------------

/// Allocate a fresh large-file extent on every replica (chained).
struct CreateExtentReq {
  static constexpr const char* kRpcName = "CreateExtent";
  PartitionId pid = 0;
  obs::TraceContext trace;
  TenantId tenant = 0;
  // Frozen at the pre-tenant sizeof so simulated transfer timing (and the
  // pinned bench schedules) did not move when the tenant label was added.
  size_t WireBytes() const { return 24; }
};
struct CreateExtentResp {
  Status status;
  ExtentId extent_id = 0;
};

/// One fixed-size packet of a sequential write (Fig. 4). Goes to the
/// primary; replicated down the chain; acked once all replicas committed.
struct WritePacketReq {
  static constexpr const char* kRpcName = "WritePacket";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  Buffer data;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 64 + data.size(); }
};
struct WritePacketResp {
  Status status;
  /// Largest offset committed by ALL replicas (§2.2.5); on failure the
  /// client uses this to resend the uncommitted suffix elsewhere.
  uint64_t committed_offset = 0;
};

/// Small-file write (§2.2.3): the primary picks the (tiny extent, offset)
/// slot and replicates the placement.
struct WriteSmallReq {
  static constexpr const char* kRpcName = "WriteSmall";
  PartitionId pid = 0;
  Buffer data;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 48 + data.size(); }
};
struct WriteSmallResp {
  Status status;
  ExtentId extent_id = 0;
  uint64_t extent_offset = 0;
};

/// In-place overwrite of existing bytes; replicated via the partition's
/// raft group (Fig. 5), which charges raft's log-write amplification.
struct OverwriteReq {
  static constexpr const char* kRpcName = "Overwrite";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  Buffer data;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 64 + data.size(); }
};
struct OverwriteResp {
  Status status;
};

/// Read served only by the raft leader, bounded by the all-replica
/// committed offset (§2.7.4).
struct ReadExtentReq {
  static constexpr const char* kRpcName = "ReadExtent";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 48; }  // frozen pre-tenant sizeof
};
struct ReadExtentResp {
  Status status;
  Buffer data;
  size_t WireBytes() const { return 32 + data.size(); }
};

/// Content purge (delete path): large extents are removed whole, small
/// files are punch-holed (§2.2.3). Replicated via raft.
struct DeleteExtentReq {
  static constexpr const char* kRpcName = "DeleteExtent";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32; }  // frozen pre-tenant sizeof
};
struct DeleteExtentResp {
  Status status;
};
struct PunchHoleReq {
  static constexpr const char* kRpcName = "PunchHole";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 48; }  // frozen pre-tenant sizeof
};
struct PunchHoleResp {
  Status status;
};

// --- Replication chain (node -> node) ----------------------------------------

struct ChainCreateExtentReq {
  static constexpr const char* kRpcName = "ChainCreateExtent";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint32_t chain_index = 0;  // position of the RECEIVER in the replica array
  obs::TraceContext trace;
};
struct ChainCreateExtentResp {
  Status status;
};

struct ChainAppendReq {
  static constexpr const char* kRpcName = "ChainAppend";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  bool tiny = false;  // small-file placement vs large-file append
  /// Shared with the upstream hop: forwarding down the chain or retrying a
  /// leg re-sends the same refcounted bytes, never a fresh copy.
  Buffer data;
  uint32_t chain_index = 0;
  obs::TraceContext trace;
  size_t WireBytes() const { return 64 + data.size(); }
};
struct ChainAppendResp {
  Status status;
};

// --- Recovery (§2.2.5) -------------------------------------------------------

/// First phase of replica recovery: fetch every peer's extent sizes and
/// align (extend short extents by copying, keep stale tails unexposed).
struct ExtentInfo {
  ExtentId id = 0;
  uint64_t size = 0;
  bool tiny = false;
};
struct ExtentInfoReq {
  static constexpr const char* kRpcName = "ExtentInfo";
  PartitionId pid = 0;
};
struct ExtentInfoResp {
  Status status;
  std::vector<ExtentInfo> extents;
  size_t WireBytes() const { return 16 + extents.size() * 20; }
};

/// Raw range fetch used by alignment (ignores the committed bound; the
/// fetched replica's bytes are by definition committed if shorter peers ask
/// only up to the aligned size).
struct FetchRangeReq {
  static constexpr const char* kRpcName = "FetchRange";
  PartitionId pid = 0;
  ExtentId extent_id = 0;
  uint64_t offset = 0;
  uint64_t len = 0;
};
struct FetchRangeResp {
  Status status;
  Buffer data;
  size_t WireBytes() const { return 32 + data.size(); }
};

// --- Admin (resource manager -> data node) -----------------------------------

struct CreateDataPartitionReq {
  static constexpr const char* kRpcName = "CreateDataPartition";
  DataPartitionConfig config;
  size_t WireBytes() const { return 96 + config.replicas.size() * 4; }
};
struct CreateDataPartitionResp {
  Status status;
};

struct DataPartitionReport {
  PartitionId pid = 0;
  uint64_t volume = 0;
  uint64_t extents = 0;
  uint64_t used_bytes = 0;
  bool is_chain_leader = false;
  bool is_raft_leader = false;
  bool full = false;
  bool read_only = false;
};

}  // namespace cfs::data
