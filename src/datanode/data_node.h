// The data node service (§2.2): hosts data partitions, serves the
// primary-backup replication chain for sequential/small-file writes, routes
// overwrites through raft, serves reads at the raft leader bounded by the
// committed offset, and runs the two-phase replica recovery of §2.2.5
// (extent alignment first, then raft).
#pragma once

#include <map>
#include <memory>

#include "datanode/data_partition.h"
#include "datanode/messages.h"
#include "qos/qos.h"
#include "raft/multiraft.h"
#include "rpc/channel.h"
#include "rpc/metrics.h"
#include "sim/network.h"

namespace cfs::data {

struct DataNodeOptions {
  /// Applied to every partition's extent store: keep real bytes (tests) or
  /// account sizes/timing only (benches).
  bool track_contents = true;
  /// CPU charged per data RPC, plus a per-KiB component for payload handling.
  SimDuration cpu_per_op = 8;
  SimDuration cpu_per_kib = 1;
  SimDuration chain_rpc_timeout = 500 * kMsec;
  /// Weighted-fair admission in front of client-facing handlers: bound on
  /// concurrently serviced requests. 0 = disabled (admit synchronously, no
  /// events — the default, keeping pinned schedules byte-identical).
  uint64_t admission_slots = 0;
};

class DataNode {
 public:
  DataNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
           const DataNodeOptions& opts = {});

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  sim::Host* host() { return host_; }

  Status CreatePartition(const DataPartitionConfig& config, bool recover = false);
  DataPartition* GetPartition(PartitionId pid);
  size_t num_partitions() const { return partitions_.size(); }

  /// Partition ids hosted here, in id order (deep checks).
  std::vector<PartitionId> PartitionIds() const {
    std::vector<PartitionId> ids;
    ids.reserve(partitions_.size());
    for (const auto& [pid, p] : partitions_) ids.push_back(pid);
    return ids;
  }

  std::vector<DataPartitionReport> Reports() const;

  /// Restart recovery: primary-backup alignment of every partition's
  /// extents against its peers, then raft recovery (§2.2.5's ordering).
  sim::Task<void> RecoverAll();

  uint64_t ops_served() const { return ops_; }

  /// Per-RPC metrics of node-issued legs (chain forwards, recovery aligns).
  const rpc::MetricRegistry& rpc_metrics() const { return rpc_metrics_; }

  /// The channel carrying node-issued legs (chain forwards, recovery
  /// aligns) — exposed so the harness can attach its per-peer health
  /// observer (rpc::Channel::set_peer_observer).
  rpc::Channel& chain_channel() { return channel_; }

  /// Per-tenant admission counters (weighted-fair queue in front of the
  /// client-facing handlers). Weights arrive with each partition's config.
  const qos::AdmissionQueue& admission() const { return admission_; }

 private:
  void RegisterHandlers();
  SimDuration OpCost(size_t payload) const {
    return opts_.cpu_per_op +
           opts_.cpu_per_kib * static_cast<SimDuration>(payload / kKiB);
  }

  /// Forward a chain request to the next replica; returns OK at chain end.
  /// (Plain wrappers over the *Impl coroutines; see the gcc-12 note in
  /// sim/network.h.)
  sim::Task<Status> ForwardChain(DataPartition* p, ChainAppendReq req) {
    return ForwardChainImpl(p, std::move(req));
  }
  sim::Task<Status> ForwardChainCreate(DataPartition* p, ChainCreateExtentReq req) {
    return ForwardChainCreateImpl(p, std::move(req));
  }
  sim::Task<Status> ForwardChainImpl(DataPartition* p, ChainAppendReq req);
  sim::Task<Status> ForwardChainCreateImpl(DataPartition* p, ChainCreateExtentReq req);

  sim::Task<void> AlignPartition(DataPartition* p);

  sim::Network* net_;
  sim::Host* host_;
  raft::RaftHost* raft_;
  DataNodeOptions opts_;
  rpc::MetricRegistry rpc_metrics_;
  rpc::Channel channel_;
  qos::AdmissionQueue admission_;
  std::map<PartitionId, std::unique_ptr<DataPartition>> partitions_;
  uint64_t next_disk_ = 0;  // round-robin tie-break for fresh disks
  uint64_t ops_ = 0;
};

}  // namespace cfs::data
