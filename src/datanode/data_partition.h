// A data partition replica (§2.2.1): partition metadata, an extent store,
// per-extent committed offsets (chain leader), a raft group for the
// overwrite path, and an out-of-order placement buffer for the replication
// chain.
//
// Scenario-aware replication (§2.2.4): sequential writes use the
// primary-backup chain implemented in DataNode; overwrites are proposed to
// this partition's raft group and applied here, paying raft's log-write
// amplification — the tradeoff the paper calls out explicitly.
#pragma once

#include <map>
#include <memory>

#include "common/flat_map.h"

#include "datanode/messages.h"
#include "raft/multiraft.h"
#include "sim/sync.h"
#include "storage/extent_store.h"

namespace cfs::data {

/// Raft command opcodes for the overwrite/purge path.
enum class DataOp : uint8_t {
  kOverwrite = 1,
  kDeleteExtent = 2,
  kPunchHole = 3,
};

class DataPartition : public raft::StateMachine {
 public:
  DataPartition(const DataPartitionConfig& config, sim::Network* net, sim::Host* host,
                raft::RaftHost* raft);

  const DataPartitionConfig& config() const { return config_; }
  PartitionId id() const { return config_.id; }
  storage::ExtentStore& store() { return *store_; }
  raft::RaftNode* raft_node() { return raft_node_; }

  /// Primary-backup chain leader: the first replica in the array (§2.7.1).
  bool IsChainLeader() const {
    return !config_.replicas.empty() && config_.replicas[0] == host_->id() && host_->up();
  }
  uint32_t ChainIndexOf(sim::NodeId node) const;

  bool read_only() const { return read_only_; }
  void set_read_only(bool v) { read_only_ = v; }
  bool IsFull() const { return store_->num_extents() >= config_.max_extents; }

  // --- Chain-leader bookkeeping ---
  /// Tiny extents are allocated store-side (WriteSmall) in the same id
  /// namespace, so fold the store's allocator in before handing out an id —
  /// otherwise a partition that served a small-file write first would hand a
  /// chained create a colliding id (AlreadyExists -> wasted client retry).
  storage::ExtentId AllocExtentId() {
    next_extent_id_ = std::max(next_extent_id_, store_->peek_next_id());
    return next_extent_id_++;
  }
  uint64_t committed(storage::ExtentId id) const {
    auto it = committed_.find(id);
    return it == committed_.end() ? 0 : it->second;
  }
  void set_committed(storage::ExtentId id, uint64_t offset) {
    uint64_t& c = committed_[id];
    c = std::max(c, offset);
    // A forced baseline (recovery/import) supersedes finer-grained ranges.
    auto it = durable_.find(id);
    if (it != durable_.end()) {
      while (!it->second.empty() && it->second.begin()->second <= c) {
        it->second.erase(it->second.begin());
      }
      if (it->second.empty()) durable_.erase(it);
    }
  }

  /// Pipelined-commit bookkeeping (§2.2.5): record that [begin, end) of an
  /// extent is durable on ALL replicas, and advance the committed offset only
  /// across the contiguous durable prefix. With a write window > 1, packet
  /// k+1 can finish replication before packet k; the leader must still
  /// "return the largest offset that has been committed by all the
  /// replicas", which is the contiguous one.
  void MarkDurable(storage::ExtentId id, uint64_t begin, uint64_t end);

  /// Notified after every successful local placement; lets a (rare)
  /// out-of-order packet at the primary wait for its predecessor instead of
  /// failing the whole window.
  sim::Notifier& placement_gate() { return placement_gate_; }

  /// Replica-side chain placement with buffering of out-of-order arrivals
  /// (shared tiny extents interleave placements from many clients). Takes
  /// the shared Buffer: the in-order fast path applies a view of it, and an
  /// out-of-order arrival parks the Buffer itself (refcount, no copy).
  sim::Task<Status> ApplyChainAppend(storage::ExtentId extent, uint64_t offset,
                                     Buffer data, bool tiny,
                                     obs::TraceContext trace = {});

  // --- Raft state machine (overwrite/purge path) ---
  void Apply(raft::Index index, std::string_view data) override;
  /// Extent contents are NOT snapshotted through raft (they are recovered by
  /// the primary-backup alignment phase first, §2.2.5); the snapshot is a
  /// marker carrying only the allocation high-water mark.
  std::string TakeSnapshot() override;
  void Restore(std::string_view snapshot) override;

  std::optional<Status> TakeResult(raft::Index index);

  static std::string EncodeOverwrite(storage::ExtentId id, uint64_t offset,
                                     std::string_view data);
  static std::string EncodeDeleteExtent(storage::ExtentId id);
  static std::string EncodePunchHole(storage::ExtentId id, uint64_t offset, uint64_t len);

  /// Post-restart: bump the extent-id allocator past everything on disk.
  void ReinitAfterRecovery();

  /// Deep check (see common/check.h): delegates to the extent store, then
  /// verifies chain-commit bookkeeping — every committed offset is within the
  /// local extent, durable ranges sit strictly beyond the committed prefix
  /// (MarkDurable merges anything touching it), and the id allocator on the
  /// chain leader is past every allocated extent. Violations are tagged
  /// "data" and prefixed with `label`.
  void CheckInvariants(InvariantReport* report, const std::string& label = "") const;

  static raft::GroupId RaftGid(PartitionId pid) { return 0x4400000000000000ull | pid; }

 private:
  void TryDrainPending(storage::ExtentId extent);

  DataPartitionConfig config_;
  sim::Network* net_;
  sim::Host* host_;
  std::unique_ptr<storage::ExtentStore> store_;
  raft::RaftNode* raft_node_ = nullptr;

  storage::ExtentId next_extent_id_ = 1;
  FlatMap<storage::ExtentId, uint64_t> committed_;  // point-looked-up per packet
  /// extent -> begin -> end: all-replica durable ranges beyond the
  /// contiguous committed prefix (out-of-order completions in the window).
  std::map<storage::ExtentId, std::map<uint64_t, uint64_t>> durable_;
  sim::Notifier placement_gate_;
  bool read_only_ = false;

  /// extent -> offset -> payload: buffered until contiguous (refcounted, so
  /// parking an out-of-order arrival shares the sender's bytes).
  std::map<storage::ExtentId, std::map<uint64_t, Buffer>> pending_;

  std::map<raft::Index, Status> results_;
  static constexpr size_t kMaxResults = 4096;
};

}  // namespace cfs::data
