// The resource manager (§2.3): a 3-replica raft group whose state machine
// holds the cluster map (nodes, volumes, partitions) with write-through to a
// RocksDB-style KV store for backup/recovery, plus leader-side soft state
// (liveness, utilizations, partition reports).
//
// Responsibilities implemented here:
//  * utilization-based placement of meta/data partitions (§2.3.1), with
//    Raft sets (§2.5.1) and alternative policies for the ablation bench;
//  * volume creation and the client-facing volume view;
//  * meta partition splitting per Algorithm 1 (§2.3.2);
//  * automatic volume expansion when partitions fill up (§2.3.1);
//  * exception handling: heartbeat-loss and client-reported timeouts mark
//    partitions read-only (§2.3.3).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "kv/kvstore.h"
#include "master/messages.h"
#include "raft/multiraft.h"
#include "rpc/channel.h"
#include "rpc/metrics.h"
#include "sim/network.h"

namespace cfs::master {

enum class PlacementPolicy {
  kUtilization,  // the paper's policy: lowest memory/disk utilization
  kHash,         // baseline for the ablation: hash(pid) over the node ring
  kRandom,       // baseline: uniform random
};

struct MasterOptions {
  uint32_t raft_set_size = 5;
  PlacementPolicy placement = PlacementPolicy::kUtilization;
  bool use_raft_sets = true;
  /// Split a meta partition once it reports this many items (§2.3.2).
  uint64_t meta_split_threshold = 1u << 19;
  /// Inode-range headroom added above maxInodeID when cutting (Algorithm 1's ∆).
  uint64_t split_delta = 1u << 21;
  /// Keep at least this many writable data partitions per volume.
  uint32_t min_writable_data_partitions = 4;
  uint32_t expand_batch = 4;
  /// Initial inode-range chunk per meta partition (last partition gets ∞).
  uint64_t inode_chunk = 1ull << 32;
  SimDuration admin_interval = 500 * kMsec;
  SimDuration node_timeout = 4 * kSec;
  SimDuration admin_rpc_timeout = 1 * kSec;
};

/// Replicated cluster-map records.
struct NodeRecord {
  sim::NodeId node = 0;
  bool is_meta = false;
  bool is_data = false;
  uint32_t raft_set = 0;
};
struct MetaPartitionRecord {
  PartitionId pid = 0;
  VolumeId volume = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  std::vector<sim::NodeId> replicas;
  bool read_only = false;
};
struct DataPartitionRecord {
  PartitionId pid = 0;
  VolumeId volume = 0;
  std::vector<sim::NodeId> replicas;
  bool read_only = false;
};
struct VolumeRecord {
  VolumeId id = 0;
  std::string name;
  uint32_t replica_factor = 3;
  VolumeQos qos;
  std::vector<PartitionId> meta_partitions;
  std::vector<PartitionId> data_partitions;
};

/// Leader-side soft state per node (never replicated).
struct NodeRuntime {
  SimTime last_heartbeat = 0;
  double memory_utilization = 0;
  double disk_utilization = 0;
  std::map<PartitionId, meta::MetaPartitionReport> meta_reports;
  std::map<PartitionId, data::DataPartitionReport> data_reports;
  /// Latest gray-failure summary piggybacked on the node's heartbeat
  /// (empty structure when health telemetry is off).
  obs::NodeHealthSummary health;
};

/// The replicated state machine of the resource manager.
class MasterState : public raft::StateMachine {
 public:
  enum class Op : uint8_t {
    kRegisterNode = 1,
    kCreateVolume = 2,
    kAddMetaPartition = 3,
    kAddDataPartition = 4,
    kSetMetaPartitionEnd = 5,
    kSetPartitionReadOnly = 6,
  };

  struct ApplyOutcome {
    Status status;
    uint64_t value = 0;  // allocated volume/partition id
  };

  explicit MasterState(kv::KvStore* kv) : kv_(kv) {}

  // raft::StateMachine
  void Apply(raft::Index index, std::string_view data) override;
  std::string TakeSnapshot() override;
  void Restore(std::string_view snapshot) override;

  std::optional<ApplyOutcome> TakeResult(raft::Index index);

  // Command encoders.
  static std::string EncodeRegisterNode(sim::NodeId node, bool is_meta, bool is_data,
                                        uint32_t raft_set);
  static std::string EncodeCreateVolume(std::string_view name, uint32_t replica_factor,
                                        const VolumeQos& qos = {});
  static std::string EncodeAddMetaPartition(VolumeId vol, uint64_t start, uint64_t end,
                                            const std::vector<sim::NodeId>& replicas);
  static std::string EncodeAddDataPartition(VolumeId vol,
                                            const std::vector<sim::NodeId>& replicas);
  static std::string EncodeSetMetaPartitionEnd(PartitionId pid, uint64_t end);
  static std::string EncodeSetPartitionReadOnly(PartitionId pid, bool is_meta,
                                                bool read_only);

  // State access (leader reads).
  const std::map<sim::NodeId, NodeRecord>& nodes() const { return nodes_; }
  const std::map<VolumeId, VolumeRecord>& volumes() const { return volumes_; }
  const std::map<PartitionId, MetaPartitionRecord>& meta_partitions() const {
    return meta_partitions_;
  }
  const std::map<PartitionId, DataPartitionRecord>& data_partitions() const {
    return data_partitions_;
  }
  const VolumeRecord* FindVolume(const std::string& name) const;
  uint32_t next_raft_set(uint32_t set_size) const;

 private:
  void Persist(const char* kind, uint64_t id, std::string value);

  kv::KvStore* kv_;
  std::map<sim::NodeId, NodeRecord> nodes_;
  std::map<VolumeId, VolumeRecord> volumes_;
  std::map<std::string, VolumeId> volume_by_name_;
  std::map<PartitionId, MetaPartitionRecord> meta_partitions_;
  std::map<PartitionId, DataPartitionRecord> data_partitions_;
  VolumeId next_volume_ = 1;
  PartitionId next_partition_ = 1;

  std::map<raft::Index, ApplyOutcome> results_;
  static constexpr size_t kMaxResults = 4096;
};

/// One resource-manager replica (service + raft + admin loops).
class MasterNode {
 public:
  MasterNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
             std::vector<sim::NodeId> master_peers, const MasterOptions& opts = {});

  MasterNode(const MasterNode&) = delete;
  MasterNode& operator=(const MasterNode&) = delete;

  sim::Host* host() { return host_; }
  bool IsLeader() const { return raft_node_->IsLeader(); }
  sim::NodeId leader_hint() const { return raft_node_->leader_hint(); }
  MasterState& state() { return state_; }
  raft::RaftNode* raft_node() { return raft_node_; }
  const std::map<sim::NodeId, NodeRuntime>& runtime() const { return runtime_; }

  /// Restart recovery.
  sim::Task<Status> Recover();

  uint64_t splits_performed() const { return splits_; }
  uint64_t expansions_performed() const { return expansions_; }

  static raft::GroupId RaftGid() { return 0x5200000000000001ull; }

  // Exposed for tests/benches: deterministic placement given current soft
  // state. Returns empty when not enough candidate nodes exist.
  std::vector<sim::NodeId> PickReplicas(bool for_meta, uint32_t n, uint64_t salt);

  /// Per-RPC metrics of this master's admin fan-outs (partition install,
  /// split sync).
  const rpc::MetricRegistry& rpc_metrics() const { return rpc_metrics_; }

  /// Cluster-wide health view from heartbeat-piggybacked summaries plus the
  /// master's own liveness judgment: {"time":t,"nodes":{id:{"alive":b,
  /// "last_heartbeat":t,"health":{...}}}} — byte-stable (ordered map, all
  /// integers). Meaningful on the leader; followers see only their own
  /// registration-time soft state.
  std::string HealthViewJson() const;

 private:
  void RegisterHandlers();
  sim::Task<MasterState::ApplyOutcome> Propose(std::string cmd);
  sim::Task<void> AdminLoop();
  sim::Task<void> CheckLiveness();
  sim::Task<void> MaybeSplitMetaPartitions();
  sim::Task<void> MaybeExpandVolumes();
  sim::Task<Status> CreatePartitionsForVolume(VolumeId vol, uint32_t meta_count,
                                              uint32_t data_count, uint32_t rf);
  // By value: the coroutine iterates rec.replicas across RPC suspensions,
  // so it must own the record — callers pass map entries that can be erased
  // or rehomed while the install is in flight (A1).
  sim::Task<Status> InstallMetaPartition(MetaPartitionRecord rec);
  sim::Task<Status> InstallDataPartition(DataPartitionRecord rec);
  GetVolumeResp BuildVolumeView(const VolumeRecord& vol) const;
  uint32_t VolumeWeight(VolumeId vol) const;
  sim::Task<Status> MarkReadOnly(PartitionId pid, bool is_meta);

  sim::Network* net_;
  sim::Host* host_;
  raft::RaftHost* raft_;
  MasterOptions opts_;
  rpc::MetricRegistry rpc_metrics_;
  rpc::Channel admin_channel_;
  kv::KvStore kv_;
  MasterState state_;
  raft::RaftNode* raft_node_ = nullptr;
  std::map<sim::NodeId, NodeRuntime> runtime_;
  uint64_t splits_ = 0;
  uint64_t expansions_ = 0;
  std::set<PartitionId> splitting_;  // guards double-split of one partition
};

}  // namespace cfs::master
