// Resource-manager wire messages (§2.3): node registration and heartbeats,
// volume creation, volume views handed to clients, and failure reports.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "datanode/messages.h"
#include "meta/messages.h"
#include "obs/health.h"
#include "sim/network.h"

namespace cfs::master {

using meta::PartitionId;
using meta::VolumeId;
using TenantId = VolumeId;

/// Per-volume QoS knobs, stored in the replicated VolumeRecord and handed to
/// clients with the volume view. Zero limits = unthrottled; weight is the
/// volume's share in node-side weighted-fair admission (default 1).
struct VolumeQos {
  uint64_t iops_limit = 0;     // client-side token bucket, ops/sec (0 = off)
  uint64_t bytes_per_sec = 0;  // client-side token bucket, bytes/sec (0 = off)
  uint32_t weight = 1;         // node-side WFQ share
};

struct RegisterNodeReq {
  static constexpr const char* kRpcName = "RegisterNode";
  sim::NodeId node = 0;
  bool is_meta = false;
  bool is_data = false;
};
struct RegisterNodeResp {
  Status status;
  uint32_t raft_set = 0;  // the Raft set this node was assigned to (§2.5.1)
};

/// Periodic node -> master heartbeat carrying utilization and per-partition
/// reports (how the master learns maxInodeID, fullness and leadership).
struct NodeHeartbeatReq {
  static constexpr const char* kRpcName = "NodeHeartbeat";
  sim::NodeId node = 0;
  double memory_utilization = 0;
  double disk_utilization = 0;
  std::vector<meta::MetaPartitionReport> meta_reports;
  std::vector<data::DataPartitionReport> data_reports;
  /// Compact health summary from the node's local gray-failure scorer
  /// (empty when health telemetry is off). Wire size stays frozen — the
  /// summary is a few dozen bytes, within the 64-byte header allowance, and
  /// keeping the formula unchanged keeps pinned schedules byte-identical.
  obs::NodeHealthSummary health;
  size_t WireBytes() const {
    return 64 + meta_reports.size() * 48 + data_reports.size() * 40;
  }
};
struct NodeHeartbeatResp {
  Status status;
};

struct CreateVolumeReq {
  static constexpr const char* kRpcName = "CreateVolume";
  std::string name;
  uint32_t meta_partitions = 3;
  uint32_t data_partitions = 10;
  uint32_t replica_factor = 3;
  VolumeQos qos;
  size_t WireBytes() const { return 64 + name.size(); }
};
struct CreateVolumeResp {
  Status status;
  VolumeId volume = 0;
};

/// Client-visible placement of one meta partition (inode range + replicas).
struct MetaPartitionView {
  PartitionId pid = 0;
  uint64_t start = 0;
  uint64_t end = 0;
  std::vector<sim::NodeId> replicas;
  sim::NodeId leader_hint = 0;
  bool writable = true;
};

/// Client-visible placement of one data partition.
struct DataPartitionView {
  PartitionId pid = 0;
  std::vector<sim::NodeId> replicas;  // index 0 = chain leader (§2.7.1)
  sim::NodeId raft_leader_hint = 0;
  bool writable = true;
};

struct GetVolumeReq {
  static constexpr const char* kRpcName = "GetVolume";
  std::string name;
  obs::TraceContext trace;
  TenantId tenant = 0;
  size_t WireBytes() const { return 32 + name.size(); }
};
struct GetVolumeResp {
  Status status;
  VolumeId volume = 0;
  VolumeQos qos;
  std::vector<MetaPartitionView> meta_partitions;
  std::vector<DataPartitionView> data_partitions;
  size_t WireBytes() const {
    return 32 + meta_partitions.size() * 48 + data_partitions.size() * 40;
  }
};

/// Exception handling (§2.3.3): a client observed a request timeout on a
/// partition; the master marks the remaining replicas read-only.
struct ReportPartitionFailureReq {
  static constexpr const char* kRpcName = "ReportPartitionFailure";
  PartitionId pid = 0;
  bool is_meta = false;
  TenantId tenant = 0;
  // Frozen at the pre-tenant sizeof so simulated transfer timing (and the
  // pinned bench schedules) did not move when the tenant label was added.
  size_t WireBytes() const { return 16; }
};
struct ReportPartitionFailureResp {
  Status status;
};

}  // namespace cfs::master
