#include "master/master.h"

#include <algorithm>

#include "common/logging.h"

namespace cfs::master {

using sim::Spawn;
using sim::Task;

namespace {

// QoS fields ride behind a flag bit folded into replica_factor so volumes
// with default QoS encode byte-identically to the pre-QoS format: raft entry
// and snapshot sizes feed simulated transfer timing, which the golden
// schedule hashes (and the pinned bench event counts) hold fixed.
constexpr uint32_t kQosEncodedFlag = 0x80000000u;

bool HasNonDefaultQos(const VolumeQos& q) {
  return q.iops_limit != 0 || q.bytes_per_sec != 0 || q.weight != 1;
}

}  // namespace

// --- MasterState: command encoding -----------------------------------------

std::string MasterState::EncodeRegisterNode(sim::NodeId node, bool is_meta, bool is_data,
                                            uint32_t raft_set) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kRegisterNode));
  enc.PutU32(node);
  enc.PutU8(is_meta ? 1 : 0);
  enc.PutU8(is_data ? 1 : 0);
  enc.PutU32(raft_set);
  return enc.Take();
}

std::string MasterState::EncodeCreateVolume(std::string_view name, uint32_t replica_factor,
                                            const VolumeQos& qos) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kCreateVolume));
  enc.PutString(name);
  const bool has_qos = HasNonDefaultQos(qos);
  enc.PutU32(replica_factor | (has_qos ? kQosEncodedFlag : 0));
  if (has_qos) {
    enc.PutVarint(qos.iops_limit);
    enc.PutVarint(qos.bytes_per_sec);
    enc.PutU32(qos.weight);
  }
  return enc.Take();
}

std::string MasterState::EncodeAddMetaPartition(VolumeId vol, uint64_t start, uint64_t end,
                                                const std::vector<sim::NodeId>& replicas) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kAddMetaPartition));
  enc.PutVarint(vol);
  enc.PutVarint(start);
  enc.PutVarint(end);
  enc.PutVarint(replicas.size());
  for (auto r : replicas) enc.PutU32(r);
  return enc.Take();
}

std::string MasterState::EncodeAddDataPartition(VolumeId vol,
                                                const std::vector<sim::NodeId>& replicas) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kAddDataPartition));
  enc.PutVarint(vol);
  enc.PutVarint(replicas.size());
  for (auto r : replicas) enc.PutU32(r);
  return enc.Take();
}

std::string MasterState::EncodeSetMetaPartitionEnd(PartitionId pid, uint64_t end) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kSetMetaPartitionEnd));
  enc.PutVarint(pid);
  enc.PutVarint(end);
  return enc.Take();
}

std::string MasterState::EncodeSetPartitionReadOnly(PartitionId pid, bool is_meta,
                                                    bool read_only) {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(Op::kSetPartitionReadOnly));
  enc.PutVarint(pid);
  enc.PutU8(is_meta ? 1 : 0);
  enc.PutU8(read_only ? 1 : 0);
  return enc.Take();
}

// --- MasterState: apply ------------------------------------------------------

void MasterState::Persist(const char* kind, uint64_t id, std::string value) {
  // Write-through backup to the local KV store ("persisted to a key-value
  // store such as RocksDB", §2). Recovery authority is the raft log; the KV
  // store allows offline inspection/repair.
  if (!kv_) return;
  std::string key = std::string(kind) + "/" + std::to_string(id);
  Spawn([](kv::KvStore* kv, std::string key, std::string value) -> Task<void> {
    (void)co_await kv->Put(std::move(key), std::move(value));
  }(kv_, std::move(key), std::move(value)));
}

void MasterState::Apply(raft::Index index, std::string_view data) {
  Decoder dec(data);
  uint8_t op = 0;
  ApplyOutcome out;
  Status st = dec.GetU8(&op);
  if (!st.ok()) {
    out.status = st;
  } else {
    switch (static_cast<Op>(op)) {
      case Op::kRegisterNode: {
        uint32_t node, raft_set;
        uint8_t is_meta, is_data;
        st = dec.GetU32(&node);
        if (st.ok()) st = dec.GetU8(&is_meta);
        if (st.ok()) st = dec.GetU8(&is_data);
        if (st.ok()) st = dec.GetU32(&raft_set);
        if (st.ok()) {
          NodeRecord rec{node, is_meta != 0, is_data != 0, raft_set};
          nodes_[node] = rec;
          Persist("node", node, std::to_string(raft_set));
          out.value = raft_set;
        }
        out.status = st;
        break;
      }
      case Op::kCreateVolume: {
        std::string name;
        uint32_t rf = 3;
        VolumeQos qos;
        st = dec.GetString(&name);
        if (st.ok()) st = dec.GetU32(&rf);
        if (st.ok() && (rf & kQosEncodedFlag)) {
          rf &= ~kQosEncodedFlag;
          st = dec.GetVarint(&qos.iops_limit);
          if (st.ok()) st = dec.GetVarint(&qos.bytes_per_sec);
          if (st.ok()) st = dec.GetU32(&qos.weight);
        }
        if (st.ok()) {
          if (volume_by_name_.count(name)) {
            out.status = Status::AlreadyExists("volume " + name);
            out.value = volume_by_name_[name];
            break;
          }
          VolumeRecord vol;
          vol.id = next_volume_++;
          vol.name = name;
          vol.replica_factor = rf;
          vol.qos = qos;
          volume_by_name_[name] = vol.id;
          out.value = vol.id;
          Persist("volume", vol.id, name);
          volumes_[vol.id] = std::move(vol);
        }
        out.status = st;
        break;
      }
      case Op::kAddMetaPartition: {
        MetaPartitionRecord rec;
        uint64_t n = 0;
        st = dec.GetVarint(&rec.volume);
        if (st.ok()) st = dec.GetVarint(&rec.start);
        if (st.ok()) st = dec.GetVarint(&rec.end);
        if (st.ok()) st = dec.GetVarint(&n);
        for (uint64_t i = 0; st.ok() && i < n; i++) {
          uint32_t r;
          st = dec.GetU32(&r);
          if (st.ok()) rec.replicas.push_back(r);
        }
        if (st.ok()) {
          auto vit = volumes_.find(rec.volume);
          if (vit == volumes_.end()) {
            out.status = Status::NotFound("volume");
            break;
          }
          rec.pid = next_partition_++;
          vit->second.meta_partitions.push_back(rec.pid);
          out.value = rec.pid;
          Persist("mp", rec.pid, std::to_string(rec.start));
          meta_partitions_[rec.pid] = std::move(rec);
        }
        out.status = st;
        break;
      }
      case Op::kAddDataPartition: {
        DataPartitionRecord rec;
        uint64_t n = 0;
        st = dec.GetVarint(&rec.volume);
        if (st.ok()) st = dec.GetVarint(&n);
        for (uint64_t i = 0; st.ok() && i < n; i++) {
          uint32_t r;
          st = dec.GetU32(&r);
          if (st.ok()) rec.replicas.push_back(r);
        }
        if (st.ok()) {
          auto vit = volumes_.find(rec.volume);
          if (vit == volumes_.end()) {
            out.status = Status::NotFound("volume");
            break;
          }
          rec.pid = next_partition_++;
          vit->second.data_partitions.push_back(rec.pid);
          out.value = rec.pid;
          Persist("dp", rec.pid, std::to_string(rec.replicas.size()));
          data_partitions_[rec.pid] = std::move(rec);
        }
        out.status = st;
        break;
      }
      case Op::kSetMetaPartitionEnd: {
        uint64_t pid, end;
        st = dec.GetVarint(&pid);
        if (st.ok()) st = dec.GetVarint(&end);
        if (st.ok()) {
          auto it = meta_partitions_.find(pid);
          if (it == meta_partitions_.end()) {
            out.status = Status::NotFound("meta partition");
            break;
          }
          it->second.end = end;
          Persist("mp_end", pid, std::to_string(end));
          out.value = end;
        }
        out.status = st;
        break;
      }
      case Op::kSetPartitionReadOnly: {
        uint64_t pid;
        uint8_t is_meta, read_only;
        st = dec.GetVarint(&pid);
        if (st.ok()) st = dec.GetU8(&is_meta);
        if (st.ok()) st = dec.GetU8(&read_only);
        if (st.ok()) {
          if (is_meta) {
            auto it = meta_partitions_.find(pid);
            if (it != meta_partitions_.end()) it->second.read_only = read_only != 0;
          } else {
            auto it = data_partitions_.find(pid);
            if (it != data_partitions_.end()) it->second.read_only = read_only != 0;
          }
          Persist("ro", pid, std::to_string(read_only));
        }
        out.status = st;
        break;
      }
      default:
        out.status = Status::Corruption("unknown master op");
    }
  }
  results_.emplace(index, std::move(out));
  while (results_.size() > kMaxResults) results_.erase(results_.begin());
}

std::optional<MasterState::ApplyOutcome> MasterState::TakeResult(raft::Index index) {
  auto it = results_.find(index);
  if (it == results_.end()) return std::nullopt;
  ApplyOutcome out = std::move(it->second);
  results_.erase(it);
  return out;
}

const VolumeRecord* MasterState::FindVolume(const std::string& name) const {
  auto it = volume_by_name_.find(name);
  if (it == volume_by_name_.end()) return nullptr;
  auto vit = volumes_.find(it->second);
  return vit == volumes_.end() ? nullptr : &vit->second;
}

uint32_t MasterState::next_raft_set(uint32_t set_size) const {
  // Fill sets round-robin: set k is full once it holds set_size nodes.
  std::map<uint32_t, uint32_t> counts;
  for (const auto& [id, rec] : nodes_) counts[rec.raft_set]++;
  uint32_t set = 0;
  while (counts[set] >= set_size) set++;
  return set;
}

std::string MasterState::TakeSnapshot() {
  Encoder enc;
  enc.PutVarint(next_volume_);
  enc.PutVarint(next_partition_);
  enc.PutVarint(nodes_.size());
  for (const auto& [id, rec] : nodes_) {
    enc.PutU32(rec.node);
    enc.PutU8(rec.is_meta ? 1 : 0);
    enc.PutU8(rec.is_data ? 1 : 0);
    enc.PutU32(rec.raft_set);
  }
  enc.PutVarint(volumes_.size());
  for (const auto& [id, vol] : volumes_) {
    enc.PutVarint(vol.id);
    enc.PutString(vol.name);
    const bool has_qos = HasNonDefaultQos(vol.qos);
    enc.PutU32(vol.replica_factor | (has_qos ? kQosEncodedFlag : 0));
    if (has_qos) {
      enc.PutVarint(vol.qos.iops_limit);
      enc.PutVarint(vol.qos.bytes_per_sec);
      enc.PutU32(vol.qos.weight);
    }
    enc.PutVarint(vol.meta_partitions.size());
    for (auto p : vol.meta_partitions) enc.PutVarint(p);
    enc.PutVarint(vol.data_partitions.size());
    for (auto p : vol.data_partitions) enc.PutVarint(p);
  }
  enc.PutVarint(meta_partitions_.size());
  for (const auto& [id, mp] : meta_partitions_) {
    enc.PutVarint(mp.pid);
    enc.PutVarint(mp.volume);
    enc.PutVarint(mp.start);
    enc.PutVarint(mp.end);
    enc.PutU8(mp.read_only ? 1 : 0);
    enc.PutVarint(mp.replicas.size());
    for (auto r : mp.replicas) enc.PutU32(r);
  }
  enc.PutVarint(data_partitions_.size());
  for (const auto& [id, dp] : data_partitions_) {
    enc.PutVarint(dp.pid);
    enc.PutVarint(dp.volume);
    enc.PutU8(dp.read_only ? 1 : 0);
    enc.PutVarint(dp.replicas.size());
    for (auto r : dp.replicas) enc.PutU32(r);
  }
  return enc.Take();
}

void MasterState::Restore(std::string_view snapshot) {
  nodes_.clear();
  volumes_.clear();
  volume_by_name_.clear();
  meta_partitions_.clear();
  data_partitions_.clear();
  results_.clear();
  next_volume_ = 1;
  next_partition_ = 1;
  if (snapshot.empty()) return;
  Decoder dec(snapshot);
  uint64_t n = 0;
  (void)dec.GetVarint(&next_volume_);
  (void)dec.GetVarint(&next_partition_);
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    NodeRecord rec;
    uint8_t m = 0, d = 0;
    (void)dec.GetU32(&rec.node);
    (void)dec.GetU8(&m);
    (void)dec.GetU8(&d);
    (void)dec.GetU32(&rec.raft_set);
    rec.is_meta = m;
    rec.is_data = d;
    nodes_[rec.node] = rec;
  }
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    VolumeRecord vol;
    uint64_t k = 0;
    (void)dec.GetVarint(&vol.id);
    (void)dec.GetString(&vol.name);
    (void)dec.GetU32(&vol.replica_factor);
    if (vol.replica_factor & kQosEncodedFlag) {
      vol.replica_factor &= ~kQosEncodedFlag;
      (void)dec.GetVarint(&vol.qos.iops_limit);
      (void)dec.GetVarint(&vol.qos.bytes_per_sec);
      (void)dec.GetU32(&vol.qos.weight);
    }
    (void)dec.GetVarint(&k);
    for (uint64_t j = 0; j < k; j++) {
      uint64_t p;
      (void)dec.GetVarint(&p);
      vol.meta_partitions.push_back(p);
    }
    (void)dec.GetVarint(&k);
    for (uint64_t j = 0; j < k; j++) {
      uint64_t p;
      (void)dec.GetVarint(&p);
      vol.data_partitions.push_back(p);
    }
    volume_by_name_[vol.name] = vol.id;
    volumes_[vol.id] = std::move(vol);
  }
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    MetaPartitionRecord mp;
    uint8_t ro = 0;
    uint64_t k = 0;
    (void)dec.GetVarint(&mp.pid);
    (void)dec.GetVarint(&mp.volume);
    (void)dec.GetVarint(&mp.start);
    (void)dec.GetVarint(&mp.end);
    (void)dec.GetU8(&ro);
    (void)dec.GetVarint(&k);
    for (uint64_t j = 0; j < k; j++) {
      uint32_t r;
      (void)dec.GetU32(&r);
      mp.replicas.push_back(r);
    }
    mp.read_only = ro;
    meta_partitions_[mp.pid] = std::move(mp);
  }
  (void)dec.GetVarint(&n);
  for (uint64_t i = 0; i < n; i++) {
    DataPartitionRecord dp;
    uint8_t ro = 0;
    uint64_t k = 0;
    (void)dec.GetVarint(&dp.pid);
    (void)dec.GetVarint(&dp.volume);
    (void)dec.GetU8(&ro);
    (void)dec.GetVarint(&k);
    for (uint64_t j = 0; j < k; j++) {
      uint32_t r;
      (void)dec.GetU32(&r);
      dp.replicas.push_back(r);
    }
    dp.read_only = ro;
    data_partitions_[dp.pid] = std::move(dp);
  }
}

// --- MasterNode --------------------------------------------------------------

MasterNode::MasterNode(sim::Network* net, sim::Host* host, raft::RaftHost* raft,
                       std::vector<sim::NodeId> master_peers, const MasterOptions& opts)
    : net_(net),
      host_(host),
      raft_(raft),
      opts_(opts),
      admin_channel_(net, &rpc_metrics_),
      kv_(&host->storage(), host->disk(0), "master"),
      state_(&kv_) {
  Spawn([](kv::KvStore* kv) -> Task<void> { (void)co_await kv->Open(); }(&kv_));
  raft_node_ = raft_->CreateGroup(RaftGid(), std::move(master_peers), &state_,
                                  host_->disk(0));
  raft_node_->Start();
  RegisterHandlers();
  Spawn(AdminLoop());
}

sim::Task<Status> MasterNode::Recover() {
  CFS_CO_RETURN_IF_ERROR(co_await kv_.Open());
  co_return co_await raft_node_->Recover();
}

Task<MasterState::ApplyOutcome> MasterNode::Propose(std::string cmd) {
  MasterState::ApplyOutcome out;
  auto idx = co_await raft_node_->ProposeIndexed(std::move(cmd));
  if (!idx.ok()) {
    out.status = idx.status();
    co_return out;
  }
  auto taken = state_.TakeResult(*idx);
  if (!taken) {
    out.status = Status::Retry("apply result pruned");
    co_return out;
  }
  co_return std::move(*taken);
}

std::vector<sim::NodeId> MasterNode::PickReplicas(bool for_meta, uint32_t n, uint64_t salt) {
  // Candidates: registered nodes of the right role that are alive.
  struct Cand {
    sim::NodeId node;
    uint32_t raft_set;
    double util;
    uint64_t partitions;  // tie-break: spread fresh clusters evenly
  };
  // Per-node partition counts (utilization reports lag; counts break ties
  // so a freshly-provisioned cluster still spreads uniformly).
  std::map<sim::NodeId, uint64_t> counts;
  for (const auto& [pid, rec] : state_.meta_partitions()) {
    for (auto r : rec.replicas) counts[r]++;
  }
  for (const auto& [pid, rec] : state_.data_partitions()) {
    for (auto r : rec.replicas) counts[r]++;
  }
  std::vector<Cand> cands;
  SimTime now = net_->scheduler()->Now();
  for (const auto& [id, rec] : state_.nodes()) {
    if (for_meta && !rec.is_meta) continue;
    if (!for_meta && !rec.is_data) continue;
    auto rit = runtime_.find(id);
    // Nodes that have never reported are assumed fresh (zero utilization);
    // nodes that stopped reporting are excluded.
    double util = 0;
    if (rit != runtime_.end()) {
      if (now - rit->second.last_heartbeat > opts_.node_timeout) continue;
      util = for_meta ? rit->second.memory_utilization : rit->second.disk_utilization;
    }
    cands.push_back({id, rec.raft_set, util, counts[id]});
  }
  if (cands.size() < n) return {};

  switch (opts_.placement) {
    case PlacementPolicy::kHash: {
      // hash(pid, i) over the ring: the classic scheme that reshuffles on
      // membership change (ablation baseline).
      std::vector<sim::NodeId> out;
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) { return a.node < b.node; });
      for (uint32_t i = 0; out.size() < n && i < 16 * n; i++) {
        uint64_t h = (salt * 0x9e3779b97f4a7c15ull + i * 0xbf58476d1ce4e5b9ull);
        h ^= h >> 29;
        const Cand& c = cands[h % cands.size()];
        if (std::find(out.begin(), out.end(), c.node) == out.end()) out.push_back(c.node);
      }
      return out.size() == n ? out : std::vector<sim::NodeId>{};
    }
    case PlacementPolicy::kRandom: {
      std::vector<sim::NodeId> out;
      auto& rng = net_->scheduler()->rng();
      while (out.size() < n && out.size() < cands.size()) {
        const Cand& c = cands[rng.Uniform(cands.size())];
        if (std::find(out.begin(), out.end(), c.node) == out.end()) out.push_back(c.node);
      }
      return out.size() == n ? out : std::vector<sim::NodeId>{};
    }
    case PlacementPolicy::kUtilization:
      break;
  }

  // Utilization-based placement (§2.3.1), optionally constrained to the
  // least-utilized Raft set with enough members (§2.5.1).
  std::stable_sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.util != b.util) return a.util < b.util;
    return a.partitions < b.partitions;
  });
  if (opts_.use_raft_sets) {
    std::map<uint32_t, std::vector<Cand>> by_set;
    for (const auto& c : cands) by_set[c.raft_set].push_back(c);
    uint32_t best_set = UINT32_MAX;
    // Accumulate utilization in fixed point (picounits): FP summation is
    // order-sensitive and rounds differently across FPUs, and the set chosen
    // here decides placement — it must be exact and platform-stable (A3).
    uint64_t best_util_sum = 0, best_parts_sum = 0, best_cnt = 0;
    for (const auto& [set, members] : by_set) {
      if (members.size() < n) continue;
      uint64_t util_sum = 0, parts_sum = 0;
      for (const auto& m : members) {
        util_sum += static_cast<uint64_t>(m.util * 1e12);
        parts_sum += m.partitions;
      }
      const uint64_t cnt = members.size();
      bool better = best_cnt == 0;
      if (!better) {
        // Compare averages without dividing: a/ca < b/cb  <=>  a*cb < b*ca.
        __int128 lhs = static_cast<__int128>(util_sum) * best_cnt;
        __int128 rhs = static_cast<__int128>(best_util_sum) * cnt;
        better = lhs < rhs ||
                 (lhs == rhs && static_cast<__int128>(parts_sum) * best_cnt <
                                    static_cast<__int128>(best_parts_sum) * cnt);
      }
      if (better) {
        best_util_sum = util_sum;
        best_parts_sum = parts_sum;
        best_cnt = cnt;
        best_set = set;
      }
    }
    if (best_set != UINT32_MAX) {
      std::vector<sim::NodeId> out;
      for (const auto& c : by_set[best_set]) {
        out.push_back(c.node);
        if (out.size() == n) break;
      }
      return out;
    }
    // No set has enough members: fall through to global pick.
  }
  std::vector<sim::NodeId> out;
  for (const auto& c : cands) {
    out.push_back(c.node);
    if (out.size() == n) break;
  }
  return out;
}

Task<Status> MasterNode::InstallMetaPartition(MetaPartitionRecord rec) {
  meta::MetaPartitionConfig cfg;
  cfg.id = rec.pid;
  cfg.volume = rec.volume;
  cfg.start = rec.start;
  cfg.end = rec.end;
  cfg.create_root = rec.start == meta::kRootInode;  // volume's first partition
  cfg.qos_weight = VolumeWeight(rec.volume);
  Status last = Status::OK();
  for (sim::NodeId node : rec.replicas) {
    meta::CreateMetaPartitionReq req{cfg, rec.replicas};
    auto r = co_await admin_channel_.Unary<meta::CreateMetaPartitionReq,
                                           meta::CreateMetaPartitionResp>(
        host_->id(), node, std::move(req), opts_.admin_rpc_timeout);
    if (!r.ok()) {
      last = r.status();
    } else if (!r->status.ok() && !r->status.IsAlreadyExists()) {
      last = r->status;
    }
  }
  co_return last;
}

Task<Status> MasterNode::InstallDataPartition(DataPartitionRecord rec) {
  data::DataPartitionConfig cfg;
  cfg.id = rec.pid;
  cfg.volume = rec.volume;
  cfg.replicas = rec.replicas;
  cfg.qos_weight = VolumeWeight(rec.volume);
  Status last = Status::OK();
  for (sim::NodeId node : rec.replicas) {
    cfg.disk_index = -1;  // each node picks its least-utilized local disk
    data::CreateDataPartitionReq req{cfg};
    auto r = co_await admin_channel_.Unary<data::CreateDataPartitionReq,
                                           data::CreateDataPartitionResp>(
        host_->id(), node, std::move(req), opts_.admin_rpc_timeout);
    if (!r.ok()) {
      last = r.status();
    } else if (!r->status.ok() && !r->status.IsAlreadyExists()) {
      last = r->status;
    }
  }
  co_return last;
}

Task<Status> MasterNode::CreatePartitionsForVolume(VolumeId vol, uint32_t meta_count,
                                                   uint32_t data_count, uint32_t rf) {
  // Meta partitions: chunked inode ranges, last partition unbounded.
  for (uint32_t i = 0; i < meta_count; i++) {
    uint64_t start = i == 0 ? meta::kRootInode : 1 + static_cast<uint64_t>(i) * opts_.inode_chunk;
    uint64_t end = (i + 1 == meta_count) ? UINT64_MAX
                                         : static_cast<uint64_t>(i + 1) * opts_.inode_chunk;
    auto replicas = PickReplicas(true, rf, vol * 131 + i);
    if (replicas.empty()) co_return Status::Unavailable("not enough meta nodes");
    auto out = co_await Propose(MasterState::EncodeAddMetaPartition(vol, start, end, replicas));
    CFS_CO_RETURN_IF_ERROR(out.status);
    auto it = state_.meta_partitions().find(out.value);
    if (it != state_.meta_partitions().end()) {
      CFS_CO_RETURN_IF_ERROR(co_await InstallMetaPartition(it->second));
    }
  }
  for (uint32_t i = 0; i < data_count; i++) {
    auto replicas = PickReplicas(false, rf, vol * 257 + i);
    if (replicas.empty()) co_return Status::Unavailable("not enough data nodes");
    auto out = co_await Propose(MasterState::EncodeAddDataPartition(vol, replicas));
    CFS_CO_RETURN_IF_ERROR(out.status);
    auto it = state_.data_partitions().find(out.value);
    if (it != state_.data_partitions().end()) {
      CFS_CO_RETURN_IF_ERROR(co_await InstallDataPartition(it->second));
    }
  }
  co_return Status::OK();
}

uint32_t MasterNode::VolumeWeight(VolumeId vol) const {
  auto it = state_.volumes().find(vol);
  return it == state_.volumes().end() ? 1 : it->second.qos.weight;
}

GetVolumeResp MasterNode::BuildVolumeView(const VolumeRecord& vol) const {
  GetVolumeResp resp;
  resp.volume = vol.id;
  resp.qos = vol.qos;
  for (PartitionId pid : vol.meta_partitions) {
    auto it = state_.meta_partitions().find(pid);
    if (it == state_.meta_partitions().end()) continue;
    const auto& rec = it->second;
    MetaPartitionView view;
    view.pid = rec.pid;
    view.start = rec.start;
    view.end = rec.end;
    view.replicas = rec.replicas;
    view.writable = !rec.read_only;
    for (sim::NodeId node : rec.replicas) {
      auto rit = runtime_.find(node);
      if (rit == runtime_.end()) continue;
      auto mit = rit->second.meta_reports.find(pid);
      if (mit != rit->second.meta_reports.end()) {
        if (mit->second.is_leader) view.leader_hint = node;
        if (mit->second.full) view.writable = false;
      }
    }
    resp.meta_partitions.push_back(std::move(view));
  }
  for (PartitionId pid : vol.data_partitions) {
    auto it = state_.data_partitions().find(pid);
    if (it == state_.data_partitions().end()) continue;
    const auto& rec = it->second;
    DataPartitionView view;
    view.pid = rec.pid;
    view.replicas = rec.replicas;
    view.writable = !rec.read_only;
    for (sim::NodeId node : rec.replicas) {
      auto rit = runtime_.find(node);
      if (rit == runtime_.end()) continue;
      auto dit = rit->second.data_reports.find(pid);
      if (dit != rit->second.data_reports.end()) {
        if (dit->second.is_raft_leader) view.raft_leader_hint = node;
        if (dit->second.full) view.writable = false;
      }
    }
    resp.data_partitions.push_back(std::move(view));
  }
  resp.status = Status::OK();
  return resp;
}

Task<Status> MasterNode::MarkReadOnly(PartitionId pid, bool is_meta) {
  auto out = co_await Propose(MasterState::EncodeSetPartitionReadOnly(pid, is_meta, true));
  co_return out.status;
}

void MasterNode::RegisterHandlers() {
  host_->Register<RegisterNodeReq, RegisterNodeResp>(
      [this](RegisterNodeReq req, sim::NodeId) -> Task<RegisterNodeResp> {
        co_await host_->cpu().Use(10);
        if (!IsLeader()) {
          co_return RegisterNodeResp{Status::NotLeader(std::to_string(leader_hint())), 0};
        }
        uint32_t set = state_.next_raft_set(opts_.raft_set_size);
        auto out = co_await Propose(
            MasterState::EncodeRegisterNode(req.node, req.is_meta, req.is_data, set));
        if (out.status.ok()) {
          // Seed liveness at registration so a node that dies before its
          // first heartbeat is still detected (§2.3.3).
          runtime_[req.node].last_heartbeat = net_->scheduler()->Now();
        }
        co_return RegisterNodeResp{out.status, static_cast<uint32_t>(out.value)};
      });

  host_->Register<NodeHeartbeatReq, NodeHeartbeatResp>(
      [this](NodeHeartbeatReq req, sim::NodeId) -> Task<NodeHeartbeatResp> {
        co_await host_->cpu().Use(5);
        if (!IsLeader()) {
          co_return NodeHeartbeatResp{Status::NotLeader(std::to_string(leader_hint()))};
        }
        NodeRuntime& rt = runtime_[req.node];
        rt.last_heartbeat = net_->scheduler()->Now();
        rt.memory_utilization = req.memory_utilization;
        rt.disk_utilization = req.disk_utilization;
        for (auto& r : req.meta_reports) rt.meta_reports[r.pid] = r;
        for (auto& r : req.data_reports) rt.data_reports[r.pid] = r;
        rt.health = std::move(req.health);
        co_return NodeHeartbeatResp{Status::OK()};
      });

  host_->Register<CreateVolumeReq, CreateVolumeResp>(
      [this](CreateVolumeReq req, sim::NodeId) -> Task<CreateVolumeResp> {
        co_await host_->cpu().Use(20);
        if (!IsLeader()) {
          co_return CreateVolumeResp{Status::NotLeader(std::to_string(leader_hint())), 0};
        }
        auto out = co_await Propose(
            MasterState::EncodeCreateVolume(req.name, req.replica_factor, req.qos));
        if (!out.status.ok()) co_return CreateVolumeResp{out.status, out.value};
        VolumeId vol = out.value;
        Status st = co_await CreatePartitionsForVolume(vol, req.meta_partitions,
                                                       req.data_partitions,
                                                       req.replica_factor);
        co_return CreateVolumeResp{st, vol};
      });

  host_->Register<GetVolumeReq, GetVolumeResp>(
      [this](GetVolumeReq req, sim::NodeId) -> Task<GetVolumeResp> {
        co_await host_->cpu().Use(8);
        GetVolumeResp resp;
        if (!IsLeader()) {
          resp.status = Status::NotLeader(std::to_string(leader_hint()));
          co_return resp;
        }
        const VolumeRecord* vol = state_.FindVolume(req.name);
        if (!vol) {
          resp.status = Status::NotFound("volume " + req.name);
          co_return resp;
        }
        co_return BuildVolumeView(*vol);
      });

  host_->Register<ReportPartitionFailureReq, ReportPartitionFailureResp>(
      [this](ReportPartitionFailureReq req, sim::NodeId) -> Task<ReportPartitionFailureResp> {
        co_await host_->cpu().Use(8);
        if (!IsLeader()) {
          co_return ReportPartitionFailureResp{
              Status::NotLeader(std::to_string(leader_hint()))};
        }
        co_return ReportPartitionFailureResp{co_await MarkReadOnly(req.pid, req.is_meta)};
      });
}

// --- Admin loop ---------------------------------------------------------------

Task<void> MasterNode::AdminLoop() {
  while (true) {
    co_await sim::SleepFor{*net_->scheduler(), opts_.admin_interval};
    if (!host_->up() || !IsLeader()) continue;
    co_await CheckLiveness();
    co_await MaybeSplitMetaPartitions();
    co_await MaybeExpandVolumes();
  }
}

Task<void> MasterNode::CheckLiveness() {
  // Partitions with a replica on a dead node become read-only until manual
  // migration (§2.3.3).
  SimTime now = net_->scheduler()->Now();
  std::set<sim::NodeId> dead;
  for (const auto& [node, rt] : runtime_) {
    if (now - rt.last_heartbeat > opts_.node_timeout) dead.insert(node);
  }
  if (dead.empty()) co_return;
  // Decide first, act second: MarkReadOnly goes through Raft (a suspension),
  // and the partition maps can be mutated — entries added by splits, the
  // state replaced on apply — while this coroutine is parked, which would
  // invalidate the live iterators of these range-fors (A1).
  std::vector<std::pair<PartitionId, bool>> targets;
  for (const auto& [pid, rec] : state_.meta_partitions()) {
    if (rec.read_only) continue;
    for (sim::NodeId r : rec.replicas) {
      if (dead.count(r)) {
        targets.emplace_back(pid, true);
        break;
      }
    }
  }
  for (const auto& [pid, rec] : state_.data_partitions()) {
    if (rec.read_only) continue;
    for (sim::NodeId r : rec.replicas) {
      if (dead.count(r)) {
        targets.emplace_back(pid, false);
        break;
      }
    }
  }
  for (const auto& [pid, is_meta] : targets) {
    (void)co_await MarkReadOnly(pid, is_meta);
  }
}

Task<void> MasterNode::MaybeSplitMetaPartitions() {
  // Algorithm 1: only the partition owning the unbounded tail of the inode
  // range splits; the cut happens at maxInodeID + delta.
  std::vector<MetaPartitionRecord> to_split;
  for (const auto& [pid, rec] : state_.meta_partitions()) {
    if (rec.end != UINT64_MAX || rec.read_only || splitting_.count(pid)) continue;
    uint64_t max_items = 0, max_inode = 0;
    for (sim::NodeId node : rec.replicas) {
      auto rit = runtime_.find(node);
      if (rit == runtime_.end()) continue;
      auto mit = rit->second.meta_reports.find(pid);
      if (mit == rit->second.meta_reports.end()) continue;
      max_items = std::max(max_items, mit->second.item_count);
      max_inode = std::max(max_inode, mit->second.max_inode_id);
    }
    if (max_items >= opts_.meta_split_threshold) to_split.push_back(rec);
  }
  for (const auto& rec : to_split) {
    splitting_.insert(rec.pid);
    uint64_t max_inode = 0;
    for (sim::NodeId node : rec.replicas) {
      auto rit = runtime_.find(node);
      if (rit == runtime_.end()) continue;
      auto mit = rit->second.meta_reports.find(rec.pid);
      if (mit != rit->second.meta_reports.end()) {
        max_inode = std::max(max_inode, mit->second.max_inode_id);
      }
    }
    uint64_t end = max_inode + opts_.split_delta;  // the cutoff (Algorithm 1 line 8)
    // (1) update the range in the replicated cluster map,
    auto out = co_await Propose(MasterState::EncodeSetMetaPartitionEnd(rec.pid, end));
    if (!out.status.ok()) {
      splitting_.erase(rec.pid);
      continue;
    }
    // (2) sync with the meta node (send the split task),
    for (sim::NodeId node : rec.replicas) {
      auto r = co_await admin_channel_.Unary<meta::SplitMetaPartitionReq,
                                             meta::SplitMetaPartitionResp>(
          host_->id(), node, meta::SplitMetaPartitionReq{rec.pid, end},
          opts_.admin_rpc_timeout);
      if (r.ok() && r->status.ok()) break;  // the leader applied it
    }
    // (3) create the new partition owning [end+1, ∞).
    auto replicas = PickReplicas(true, static_cast<uint32_t>(rec.replicas.size()),
                                 rec.pid * 977);
    if (!replicas.empty()) {
      auto added = co_await Propose(
          MasterState::EncodeAddMetaPartition(rec.volume, end + 1, UINT64_MAX, replicas));
      if (added.status.ok()) {
        auto it = state_.meta_partitions().find(added.value);
        if (it != state_.meta_partitions().end()) {
          (void)co_await InstallMetaPartition(it->second);
          splits_++;
          LOG_INFO("split meta partition ", rec.pid, " at ", end, ", new partition ",
                   added.value);
        }
      }
    }
    splitting_.erase(rec.pid);
  }
}

Task<void> MasterNode::MaybeExpandVolumes() {
  // "When the resource manager finds that all the partitions in a volume
  // [are] about to be full, it automatically adds a set of new partitions"
  // (§2.3.1).
  std::vector<std::pair<VolumeId, uint32_t>> expand;
  for (const auto& [vid, vol] : state_.volumes()) {
    uint32_t writable = 0;
    for (PartitionId pid : vol.data_partitions) {
      auto it = state_.data_partitions().find(pid);
      if (it == state_.data_partitions().end() || it->second.read_only) continue;
      bool full = false;
      for (sim::NodeId node : it->second.replicas) {
        auto rit = runtime_.find(node);
        if (rit == runtime_.end()) continue;
        auto dit = rit->second.data_reports.find(pid);
        if (dit != rit->second.data_reports.end() && dit->second.full) full = true;
      }
      if (!full) writable++;
    }
    if (!vol.data_partitions.empty() && writable < opts_.min_writable_data_partitions) {
      expand.emplace_back(vid, vol.replica_factor);
    }
  }
  for (auto [vid, rf] : expand) {
    for (uint32_t i = 0; i < opts_.expand_batch; i++) {
      auto replicas = PickReplicas(false, rf, vid * 31 + i + expansions_ * 7919);
      if (replicas.empty()) break;
      auto out = co_await Propose(MasterState::EncodeAddDataPartition(vid, replicas));
      if (!out.status.ok()) break;
      auto it = state_.data_partitions().find(out.value);
      if (it != state_.data_partitions().end()) {
        (void)co_await InstallDataPartition(it->second);
      }
    }
    expansions_++;
    LOG_INFO("expanded volume ", vid, " with ", opts_.expand_batch, " data partitions");
  }
}

std::string MasterNode::HealthViewJson() const {
  const SimTime now = net_->scheduler()->Now();
  std::string out = "{\"time\":" + std::to_string(now) + ",\"nodes\":{";
  bool first = true;
  for (const auto& [node, rt] : runtime_) {
    if (!first) out += ",";
    first = false;
    const bool alive = now - rt.last_heartbeat <= opts_.node_timeout;
    out += "\"" + std::to_string(node) + "\":{\"alive\":";
    out += alive ? "true" : "false";
    out += ",\"last_heartbeat\":" + std::to_string(rt.last_heartbeat) +
           ",\"health\":" + rt.health.DumpJson() + "}";
  }
  out += "}}";
  return out;
}

}  // namespace cfs::master
