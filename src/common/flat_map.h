// Sorted-vector associative containers for the simulator's hot point-lookup
// maps (DESIGN.md "Simulator performance").
//
// std::map's node-per-entry layout costs an allocation per insert and a
// pointer chase per comparison; the hot registries this replaces (RPC
// handler tables, router leader caches, extent directories, partition sets)
// are small-to-medium, point-looked-up on every message or IO, and mutated
// comparatively rarely — the classic flat-map regime. Keys stay sorted, so
// iteration order is identical to std::map and the determinism lint's
// no-unordered rule (tools/lint.py R2) is satisfied by construction.
//
// Deliberately a subset of the std::map interface (what the converted call
// sites use): find/contains/count, operator[], insert_or_assign, erase,
// lower_bound, ordered iteration. Iterators invalidate on mutation, like
// any vector.
#pragma once

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

namespace cfs {

template <typename K, typename V, typename Compare = std::less<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }
  void reserve(size_t n) { v_.reserve(n); }

  template <typename Key>
  iterator lower_bound(const Key& k) {
    return std::lower_bound(v_.begin(), v_.end(), k,
                            [this](const value_type& e, const Key& key) {
                              return cmp_(e.first, key);
                            });
  }
  template <typename Key>
  const_iterator lower_bound(const Key& k) const {
    return std::lower_bound(v_.begin(), v_.end(), k,
                            [this](const value_type& e, const Key& key) {
                              return cmp_(e.first, key);
                            });
  }

  template <typename Key>
  iterator find(const Key& k) {
    iterator it = lower_bound(k);
    return (it != v_.end() && !cmp_(k, it->first)) ? it : v_.end();
  }
  template <typename Key>
  const_iterator find(const Key& k) const {
    const_iterator it = lower_bound(k);
    return (it != v_.end() && !cmp_(k, it->first)) ? it : v_.end();
  }

  template <typename Key>
  bool contains(const Key& k) const {
    return find(k) != v_.end();
  }
  template <typename Key>
  size_t count(const Key& k) const {
    return contains(k) ? 1 : 0;
  }

  V& operator[](const K& k) {
    iterator it = lower_bound(k);
    if (it != v_.end() && !cmp_(k, it->first)) return it->second;
    return v_.emplace(it, k, V{})->second;
  }
  V& operator[](K&& k) {
    iterator it = lower_bound(k);
    if (it != v_.end() && !cmp_(k, it->first)) return it->second;
    return v_.emplace(it, std::move(k), V{})->second;
  }

  /// std::map::emplace shape: no-op if the key is present.
  template <typename Key, typename Val>
  std::pair<iterator, bool> emplace(Key&& k, Val&& val) {
    iterator it = lower_bound(k);
    if (it != v_.end() && !cmp_(k, it->first)) return {it, false};
    return {v_.emplace(it, std::forward<Key>(k), std::forward<Val>(val)), true};
  }

  template <typename Key, typename Val>
  std::pair<iterator, bool> insert_or_assign(Key&& k, Val&& val) {
    iterator it = lower_bound(k);
    if (it != v_.end() && !cmp_(k, it->first)) {
      it->second = std::forward<Val>(val);
      return {it, false};
    }
    return {v_.emplace(it, std::forward<Key>(k), std::forward<Val>(val)), true};
  }

  template <typename Key>
  size_t erase(const Key& k) {
    iterator it = find(k);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return v_.erase(it); }

 private:
  std::vector<value_type> v_;
  [[no_unique_address]] Compare cmp_;
};

template <typename K, typename Compare = std::less<K>>
class FlatSet {
 public:
  using const_iterator = typename std::vector<K>::const_iterator;

  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }
  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  bool insert(const K& k) {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, cmp_);
    if (it != v_.end() && !cmp_(k, *it)) return false;
    v_.insert(it, k);
    return true;
  }
  size_t erase(const K& k) {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, cmp_);
    if (it == v_.end() || cmp_(k, *it)) return 0;
    v_.erase(it);
    return 1;
  }
  bool contains(const K& k) const {
    auto it = std::lower_bound(v_.begin(), v_.end(), k, cmp_);
    return it != v_.end() && !cmp_(k, *it);
  }
  size_t count(const K& k) const { return contains(k) ? 1 : 0; }

 private:
  std::vector<K> v_;
  [[no_unique_address]] Compare cmp_;
};

}  // namespace cfs
