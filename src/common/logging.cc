#include "common/logging.h"

#include <algorithm>
#include <vector>

namespace cfs {

namespace {
LogLevel g_level = LogLevel::kOff;

/// Registered virtual clocks, oldest first; the back is the active one.
std::vector<const int64_t*>& SimClocks() {
  static std::vector<const int64_t*> clocks;
  return clocks;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void PushSimClock(const int64_t* now_usec) { SimClocks().push_back(now_usec); }

void PopSimClock(const int64_t* now_usec) {
  auto& clocks = SimClocks();
  auto it = std::find(clocks.begin(), clocks.end(), now_usec);
  if (it != clocks.end()) clocks.erase(it);
}

void LogLine(LogLevel level, const char* file, int line, const std::string& msg) {
  const char* base = file;
  for (const char* p = file; *p; p++) {
    if (*p == '/') base = p + 1;
  }
  if (!SimClocks().empty()) {
    std::fprintf(stderr, "[t=%lldus %s %s:%d] %s\n",
                 static_cast<long long>(*SimClocks().back()), LevelName(level), base, line,
                 msg.c_str());
  } else {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
  }
}

}  // namespace internal

}  // namespace cfs
