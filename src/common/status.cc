#include "common/status.h"

namespace cfs {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kTimedOut: return "TimedOut";
    case StatusCode::kNotLeader: return "NotLeader";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kNoSpace: return "NoSpace";
    case StatusCode::kRetry: return "Retry";
    case StatusCode::kUnsupported: return "Unsupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s(StatusCodeName(code_));
  if (!msg_.empty()) {
    s += ": ";
    s += msg_;
  }
  return s;
}

}  // namespace cfs
