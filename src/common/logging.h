// Minimal leveled logger. Off by default (benchmarks run clean); tests and
// examples can raise the level. Not thread-safe by design: the simulator is
// single-threaded.
//
// Timestamps come from the simulation's virtual clock, never the wall
// clock: each sim::Scheduler registers its clock pointer on construction
// (PushSimClock) and deregisters on destruction, and log lines are prefixed
// with the most recently registered active clock's time. Same-seed runs
// therefore produce byte-identical logs — wall-clock prefixes would violate
// the determinism contract's spirit (DESIGN.md) and make log diffs noisy.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <sstream>
#include <utility>

namespace cfs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogLine(LogLevel level, const char* file, int line, const std::string& msg);

/// Register/deregister a virtual-time source (microseconds). Multiple
/// schedulers may coexist in one process (bench cells build CFS and Ceph
/// simulations side by side); the latest still-registered clock wins. Pop
/// removes the matching entry wherever it sits, so destruction order need
/// not be LIFO.
void PushSimClock(const int64_t* now_usec);
void PopSimClock(const int64_t* now_usec);

template <typename... Args>
std::string StrCat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace internal

}  // namespace cfs

#define CFS_LOG(level, ...)                                                  \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::cfs::GetLogLevel())) { \
      ::cfs::internal::LogLine(level, __FILE__, __LINE__,                    \
                               ::cfs::internal::StrCat(__VA_ARGS__));        \
    }                                                                        \
  } while (0)

#define LOG_DEBUG(...) CFS_LOG(::cfs::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) CFS_LOG(::cfs::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) CFS_LOG(::cfs::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) CFS_LOG(::cfs::LogLevel::kError, __VA_ARGS__)
