// Size and simulated-time units shared across the codebase.
#pragma once

#include <cstdint>

namespace cfs {

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

/// Simulated time is an integer count of microseconds since simulation start.
using SimTime = int64_t;
using SimDuration = int64_t;

constexpr SimDuration kUsec = 1;
constexpr SimDuration kMsec = 1000;
constexpr SimDuration kSec = 1000 * 1000;

}  // namespace cfs
