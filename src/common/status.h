// Status and Result<T>: exception-free error handling in the style of
// RocksDB/Arrow. Every fallible API in this codebase returns a Status or a
// Result<T>; exceptions are reserved for programmer errors (assertions).
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cfs {

/// Error categories used across all subsystems.
enum class StatusCode : int {
  kOk = 0,
  kNotFound,        ///< key/inode/dentry/extent/volume does not exist
  kAlreadyExists,   ///< create of an existing object
  kCorruption,      ///< checksum mismatch / malformed persistent state
  kInvalidArgument, ///< caller error
  kIOError,         ///< simulated disk failure
  kTimedOut,        ///< RPC deadline exceeded
  kNotLeader,       ///< raft/primary request sent to a non-leader replica
  kUnavailable,     ///< node down, partition read-only, no quorum
  kNoSpace,         ///< partition or disk full
  kRetry,           ///< transient; caller should retry (possibly elsewhere)
  kUnsupported,     ///< operation not implemented by this object
};

/// Human-readable name of a status code ("NotFound", "IOError", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
/// [[nodiscard]] on the class makes every ignored Status-returning call a
/// warning (an error under -Werror=unused-result in CI); deliberate
/// fire-and-forget call sites must spell out the (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status Corruption(std::string m = "") { return {StatusCode::kCorruption, std::move(m)}; }
  static Status InvalidArgument(std::string m = "") { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status IOError(std::string m = "") { return {StatusCode::kIOError, std::move(m)}; }
  static Status TimedOut(std::string m = "") { return {StatusCode::kTimedOut, std::move(m)}; }
  static Status NotLeader(std::string m = "") { return {StatusCode::kNotLeader, std::move(m)}; }
  static Status Unavailable(std::string m = "") { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status NoSpace(std::string m = "") { return {StatusCode::kNoSpace, std::move(m)}; }
  static Status Retry(std::string m = "") { return {StatusCode::kRetry, std::move(m)}; }
  static Status Unsupported(std::string m = "") { return {StatusCode::kUnsupported, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsNotLeader() const { return code_ == StatusCode::kNotLeader; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsRetry() const { return code_ == StatusCode::kRetry; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& o) const { return code_ == o.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T>: either a value or an error Status (never kOk with no value).
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {    // NOLINT implicit
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace cfs

/// Propagate a non-OK Status out of the current function.
#define CFS_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::cfs::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Coroutine variant of CFS_RETURN_IF_ERROR (for Task<Status> bodies).
#define CFS_CO_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::cfs::Status _st = (expr);              \
    if (!_st.ok()) co_return _st;            \
  } while (0)

/// Assign a Result's value to `lhs` or return its error status.
#define CFS_ASSIGN_OR_RETURN(lhs, expr)      \
  auto CFS_CONCAT_(_res, __LINE__) = (expr); \
  if (!CFS_CONCAT_(_res, __LINE__).ok())     \
    return CFS_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(CFS_CONCAT_(_res, __LINE__)).value();

#define CFS_CONCAT_IMPL_(a, b) a##b
#define CFS_CONCAT_(a, b) CFS_CONCAT_IMPL_(a, b)
