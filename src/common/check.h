// Invariant-checking layer: CFS_CHECK / CFS_INVARIANT macros plus the
// InvariantReport collector used by every subsystem's deep-check function.
//
// Two tiers:
//  * CFS_CHECK / CFS_INVARIANT: inline assertions on protocol state. In
//    Debug and sanitizer builds (or with -DCFS_FORCE_CHECKS) they abort with
//    file:line context; in Release builds they compile to nothing, so the
//    hot path pays zero cost. CFS_CHECK is for cheap conditions;
//    CFS_INVARIANT marks expensive predicates (tree walks, cross-replica
//    scans) that should never run in a benchmark build.
//  * Deep-check functions (raft/invariants.h, ExtentStore::CheckInvariants,
//    DataPartition::CheckInvariants, MetaPartition::CheckInvariants,
//    harness::Cluster::CheckInvariants): always compiled, collect violations
//    into an InvariantReport instead of aborting, and are invoked from the
//    harness at scenario checkpoints and at the end of integration and
//    fault-injection tests. See DESIGN.md "Invariant catalog".
#pragma once

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace cfs {

#if !defined(NDEBUG) || defined(CFS_FORCE_CHECKS)
#define CFS_CHECKS_ENABLED 1
#else
#define CFS_CHECKS_ENABLED 0
#endif

namespace internal {
/// Prints "<file>:<line>: CHECK failed: <cond>: <msg>" and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond,
                              const std::string& msg);

template <typename... Args>
std::string CheckMsg(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace internal

/// Collects invariant violations instead of aborting, so a deep check can
/// report every broken invariant of a snapshot at once and tests can assert
/// on the full list.
class InvariantReport {
 public:
  /// Record a violation. `subsystem` tags the origin ("raft", "extent",
  /// "data", "meta", "cluster").
  void Violation(std::string subsystem, std::string msg) {
    violations_.push_back(std::move(subsystem) + ": " + std::move(msg));
  }

  bool ok() const { return violations_.empty(); }
  size_t size() const { return violations_.size(); }
  const std::vector<std::string>& violations() const { return violations_; }

  /// One violation per line ("" when clean). Gtest-friendly.
  std::string ToString() const {
    std::string out;
    for (const auto& v : violations_) {
      out += v;
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<std::string> violations_;
};

}  // namespace cfs

#if CFS_CHECKS_ENABLED
/// Abort with context if `cond` is false. Cheap conditions only.
#define CFS_CHECK(cond, ...)                                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::cfs::internal::CheckFailed(__FILE__, __LINE__, #cond,                \
                                   ::cfs::internal::CheckMsg(__VA_ARGS__));  \
    }                                                                        \
  } while (0)
/// Like CFS_CHECK, for expensive predicates (tree walks, full scans).
#define CFS_INVARIANT(cond, ...) CFS_CHECK(cond, __VA_ARGS__)
#else
#define CFS_CHECK(cond, ...) \
  do {                       \
  } while (0)
#define CFS_INVARIANT(cond, ...) \
  do {                           \
  } while (0)
#endif

/// Abort with the status message if `expr` is not OK (Debug/sanitizer only).
#define CFS_CHECK_OK(expr)                                       \
  do {                                                           \
    const ::cfs::Status& _cfs_chk_st = (expr);                   \
    CFS_CHECK(_cfs_chk_st.ok(), _cfs_chk_st.ToString());         \
  } while (0)
