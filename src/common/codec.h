// Endian-safe binary encoding used for raft log entries, WAL records and
// snapshots. Little-endian fixed-width integers, LEB128 varints, and
// length-prefixed strings, mirroring the RocksDB coding utilities.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cfs {

/// Append-only binary encoder.
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>(v | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  /// Varint length prefix followed by raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    buf_.append(s.data(), s.size());
  }

  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    // Serialize little-endian regardless of host order.
    for (size_t i = 0; i < sizeof(T); i++) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// Sequential decoder over a byte view. All getters return
/// Status::Corruption on underflow rather than asserting, so malformed
/// persistent state surfaces as an error.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v) { return GetFixed(v); }
  Status GetU16(uint16_t* v) { return GetFixed(v); }
  Status GetU32(uint32_t* v) { return GetFixed(v); }
  Status GetU64(uint64_t* v) { return GetFixed(v); }
  Status GetI64(int64_t* v) {
    uint64_t u;
    CFS_RETURN_IF_ERROR(GetFixed(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status GetVarint(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift <= 63; shift += 7) {
      if (pos_ >= data_.size()) return Status::Corruption("varint underflow");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *v = result;
        return Status::OK();
      }
    }
    return Status::Corruption("varint overlong");
  }

  Status GetString(std::string* s) {
    uint64_t n;
    CFS_RETURN_IF_ERROR(GetVarint(&n));
    if (remaining() < n) return Status::Corruption("string underflow");
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status GetStringView(std::string_view* s) {
    uint64_t n;
    CFS_RETURN_IF_ERROR(GetVarint(&n));
    if (remaining() < n) return Status::Corruption("string underflow");
    *s = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status GetFixed(T* v) {
    if (remaining() < sizeof(T)) return Status::Corruption("fixed underflow");
    T result = 0;
    for (size_t i = 0; i < sizeof(T); i++) {
      result |= static_cast<T>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    *v = result;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace cfs
