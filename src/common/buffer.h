// Refcounted immutable byte buffer: the zero-copy payload currency of the
// data path (DESIGN.md "Simulator performance", buffer-sharing rules).
//
// A Buffer is a (shared owner, pointer, length) view over immutable bytes.
// Copying a Buffer or taking a Slice bumps a refcount instead of memcpy-ing
// payload, so a 1 MiB client write is materialized exactly once and then
// shared by every packet slice, chain-forward hop, RPC retry, raft log
// entry and append batch that carries it. Ownership rules:
//
//   - The bytes behind a live Buffer never mutate (producers hand ownership
//     to FromString and drop their reference). That makes sharing across
//     "nodes" of the simulated cluster safe: a replica reading its slice
//     observes exactly what the sender produced, whenever it gets around to
//     it.
//   - Consumers that need to retain payload past the producer's lifetime
//     just keep the Buffer (refcount holds the storage alive); consumers
//     that need mutable or owned bytes call ToString() — the one place a
//     copy happens, visible at the call site.
//   - Slices keep the whole underlying allocation alive. Fine here: slices
//     are packet-sized views of payloads whose lifetime ends with the op.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/crc32.h"

namespace cfs {

class Buffer {
 public:
  Buffer() = default;

  /// Adopt a string as immutable shared storage (no copy).
  static Buffer FromString(std::string s) {
    auto owner = std::make_shared<Storage>(std::move(s));
    Buffer b;
    b.data_ = owner->bytes.data();
    b.size_ = owner->bytes.size();
    b.owner_ = std::move(owner);
    return b;
  }

  /// Copy `v` into fresh shared storage.
  static Buffer CopyOf(std::string_view v) { return FromString(std::string(v)); }

  /// `n` bytes of `c` (test/bench convenience).
  static Buffer Filled(size_t n, char c) { return FromString(std::string(n, c)); }

  /// A view of [off, off+len) sharing this buffer's storage. Out-of-range
  /// requests clamp to the buffer's end.
  Buffer Slice(size_t off, size_t len) const {
    Buffer b;
    if (off > size_) off = size_;
    if (len > size_ - off) len = size_ - off;
    b.owner_ = owner_;
    b.data_ = data_ + off;
    b.size_ = len;
    return b;
  }

  std::string_view view() const { return {data_, size_}; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Materialize an owned copy — the only copying operation.
  std::string ToString() const { return std::string(data_, size_); }

  /// Crc32c(view(), 0), memoized in the shared storage. Every chain replica
  /// checksums the same packet bytes; the first caller pays the byte pass and
  /// the rest hit the memo (extended onto a running extent CRC with
  /// Crc32cConcat). Safe because the bytes behind a live Buffer never mutate
  /// and the memo's lifetime equals the storage's — a recycled allocation
  /// gets a fresh Storage, so entries can never go stale.
  uint32_t Crc0() const {
    if (size_ == 0) return 0;
    if (!owner_) return Crc32c(data_, size_);
    size_t off = static_cast<size_t>(data_ - owner_->bytes.data());
    for (const CrcMemoEntry& e : owner_->crc_memo) {
      if (e.off == off && e.len == size_) return e.crc;
    }
    uint32_t c = Crc32c(data_, size_);
    if (owner_->crc_memo.size() < kMaxCrcMemo) owner_->crc_memo.push_back({off, size_, c});
    return c;
  }

  friend bool operator==(const Buffer& a, const Buffer& b) { return a.view() == b.view(); }
  friend bool operator==(const Buffer& a, std::string_view b) { return a.view() == b; }

 private:
  struct CrcMemoEntry {
    size_t off;
    size_t len;
    uint32_t crc;
  };
  struct Storage {
    explicit Storage(std::string s) : bytes(std::move(s)) {}
    const std::string bytes;
    /// Distinct views of one owner are a handful of packet slices; linear
    /// scan beats any map at that size. Bounded as a pathological-case guard.
    mutable std::vector<CrcMemoEntry> crc_memo;
  };
  static constexpr size_t kMaxCrcMemo = 64;

  std::shared_ptr<const Storage> owner_;
  const char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace cfs
