// CRC32C (Castagnoli), software table implementation. Used by the extent
// store to verify data integrity; the per-extent CRC is cached in memory as
// described in §2.2.1 of the paper.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace cfs {

/// Compute CRC32C of `data`, continuing from `init` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

}  // namespace cfs
