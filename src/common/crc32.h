// CRC32C (Castagnoli), software table implementation. Used by the extent
// store to verify data integrity; the per-extent CRC is cached in memory as
// described in §2.2.1 of the paper.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace cfs {

/// Compute CRC32C of `data`, continuing from `init` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t init = 0) {
  return Crc32c(s.data(), s.size(), init);
}

/// CRC of a concatenation from the parts' CRCs, without touching the bytes:
/// given crc_a = Crc32c(A, init) and crc_b0 = Crc32c(B, 0), returns
/// Crc32c(A||B, init). Appending len_b bytes shifts crc_a through a linear
/// operator over GF(2) (cached per distinct length), so extending a running
/// extent CRC with a payload whose own CRC is already known costs ~32 xors
/// instead of a pass over the bytes. Bit-identical to Crc32c(B, crc_a).
uint32_t Crc32cConcat(uint32_t crc_a, uint32_t crc_b0, size_t len_b);

}  // namespace cfs
