#include "common/check.h"

#include <cstdio>

namespace cfs::internal {

void CheckFailed(const char* file, int line, const char* cond, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s%s%s\n", file, line, cond,
               msg.empty() ? "" : ": ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace cfs::internal
