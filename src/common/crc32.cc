// CRC32C (Castagnoli). Profiling the 100-node fig9 smoke showed payload
// checksumming dominating wall-clock (the accounting-mode extent store CRCs
// every packet), so this implements two fast paths with identical outputs:
//
//   - hardware: SSE4.2 `crc32` instruction, 8 bytes per issue, selected at
//     runtime via __builtin_cpu_supports so the binary still runs on
//     pre-Nehalem x86 (and the function multi-versioning keeps -msse4.2 out
//     of the global flags);
//   - software: slice-by-8 table walk (8 parallel table lanes per 8-byte
//     chunk) as the portable fallback, ~5-6x the byte-at-a-time loop.
//
// Both reduce the same reflected polynomial, so the value is bit-identical
// to the original byte-at-a-time implementation — checksum changes would
// alter simulated message contents and break the determinism golden hashes.
#include "common/crc32.h"

#include <array>
#include <cstring>
#include <map>

namespace cfs {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial

// tables[0] is the classic byte table; tables[k][b] is the CRC of byte b
// followed by k zero bytes, letting 8 input bytes fold in parallel.
std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t[0][i] = crc;
  }
  for (int k = 1; k < 8; k++) {
    for (uint32_t i = 0; i < 256; i++) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
    }
  }
  return t;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = MakeTables();
  return tables;
}

uint32_t CrcSoftware(const uint8_t* p, size_t n, uint32_t crc) {
  const auto& t = Tables();
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= crc;  // little-endian: crc folds into the low 4 bytes
    crc = t[7][w & 0xff] ^ t[6][(w >> 8) & 0xff] ^ t[5][(w >> 16) & 0xff] ^
          t[4][(w >> 24) & 0xff] ^ t[3][(w >> 32) & 0xff] ^ t[2][(w >> 40) & 0xff] ^
          t[1][(w >> 48) & 0xff] ^ t[0][(w >> 56) & 0xff];
    p += 8;
    n -= 8;
  }
  while (n--) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

// CFS_CRC32_FORCE_SW pins the portable path (used by the cross-check in
// tests to exercise slice-by-8 on hardware that would dispatch to SSE4.2).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(CFS_CRC32_FORCE_SW)
#define CFS_CRC32_HW 1

// The `crc32` instruction has 3-cycle latency but 1-cycle throughput, so a
// single dependent chain runs at a third of what the unit can sustain.
// Large buffers are split into three independent legs of kCrcLeg bytes
// checksummed in one interleaved loop, then recombined: appending L zero
// bytes to a CRC is a linear operator over GF(2), captured once in a 4x256
// lookup table, and crc(X||Y) = ShiftL(crc(X)) ^ crc(Y with init 0).
constexpr size_t kCrcLeg = 1024;

std::array<std::array<uint32_t, 256>, 4> MakeShiftTable() {
  const auto& t = Tables();
  std::array<std::array<uint32_t, 256>, 4> s{};
  for (int k = 0; k < 4; k++) {
    for (uint32_t b = 0; b < 256; b++) {
      uint32_t crc = b << (8 * k);
      for (size_t i = 0; i < kCrcLeg; i++) {
        crc = (crc >> 8) ^ t[0][crc & 0xff];
      }
      s[k][b] = crc;
    }
  }
  return s;
}

uint32_t ShiftLeg(uint32_t crc) {
  static const std::array<std::array<uint32_t, 256>, 4> s = MakeShiftTable();
  return s[0][crc & 0xff] ^ s[1][(crc >> 8) & 0xff] ^ s[2][(crc >> 16) & 0xff] ^
         s[3][crc >> 24];
}

__attribute__((target("sse4.2"))) uint32_t CrcHardware(const uint8_t* p, size_t n, uint32_t crc) {
  uint64_t c = crc;
  while (n >= 3 * kCrcLeg) {
    uint64_t c0 = c, c1 = 0, c2 = 0;
    for (size_t i = 0; i < kCrcLeg; i += 8) {
      uint64_t w0, w1, w2;
      std::memcpy(&w0, p + i, 8);
      std::memcpy(&w1, p + kCrcLeg + i, 8);
      std::memcpy(&w2, p + 2 * kCrcLeg + i, 8);
      c0 = __builtin_ia32_crc32di(c0, w0);
      c1 = __builtin_ia32_crc32di(c1, w1);
      c2 = __builtin_ia32_crc32di(c2, w2);
    }
    c = ShiftLeg(ShiftLeg(static_cast<uint32_t>(c0)) ^ static_cast<uint32_t>(c1)) ^
        static_cast<uint32_t>(c2);
    p += 3 * kCrcLeg;
    n -= 3 * kCrcLeg;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = __builtin_ia32_crc32di(c, w);
    p += 8;
    n -= 8;
  }
  uint32_t c32 = static_cast<uint32_t>(c);
  while (n--) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}
#endif

// --- Zero-extension operator for Crc32cConcat ---------------------------
// Advancing a CRC register over one zero bit is linear over GF(2); the
// operator for 8*len zero bits is that matrix raised to the 8*len'th power
// (zlib's crc32_combine technique). Matrices are 32 words, cached per
// distinct length — payload sizes in a run are a handful of packet/file
// sizes, and applying a cached matrix is ~32 xors.
struct ZeroOp {
  uint32_t m[32];
};

uint32_t Gf2Apply(const uint32_t m[32], uint32_t v) {
  uint32_t s = 0;
  for (int i = 0; v != 0; v >>= 1, i++) {
    if (v & 1) s ^= m[i];
  }
  return s;
}

// out = a ∘ b (apply b first, then a).
void Gf2Compose(uint32_t out[32], const uint32_t a[32], const uint32_t b[32]) {
  for (int i = 0; i < 32; i++) out[i] = Gf2Apply(a, b[i]);
}

ZeroOp MakeZeroOp(size_t len) {
  // One-zero-bit step of the reflected-polynomial register.
  uint32_t bit[32];
  bit[0] = kPoly;
  for (int i = 1; i < 32; i++) bit[i] = 1u << (i - 1);
  ZeroOp acc;
  for (int i = 0; i < 32; i++) acc.m[i] = 1u << i;  // identity
  uint64_t e = 8 * static_cast<uint64_t>(len);
  uint32_t sq[32], tmp[32];
  std::memcpy(sq, bit, sizeof(sq));
  while (e != 0) {
    if (e & 1) {
      Gf2Compose(tmp, sq, acc.m);
      std::memcpy(acc.m, tmp, sizeof(tmp));
    }
    e >>= 1;
    Gf2Compose(tmp, sq, sq);
    std::memcpy(sq, tmp, sizeof(tmp));
  }
  return acc;
}

const ZeroOp& ZeroOpFor(size_t len) {
  static std::map<size_t, ZeroOp>* cache = new std::map<size_t, ZeroOp>();
  auto it = cache->find(len);
  if (it == cache->end()) it = cache->emplace(len, MakeZeroOp(len)).first;
  return it->second;
}

}  // namespace

uint32_t Crc32cConcat(uint32_t crc_a, uint32_t crc_b0, size_t len_b) {
  // Crc32c(A||B, init) = L_lenB(Crc32c(A, init)) ^ Crc32c(B, 0): the pre/post
  // inversions cancel when the operator is applied to the finalized value.
  return Gf2Apply(ZeroOpFor(len_b).m, crc_a) ^ crc_b0;
}

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
#ifdef CFS_CRC32_HW
  if (HaveSse42()) return ~CrcHardware(p, n, crc);
#endif
  return ~CrcSoftware(p, n, crc);
}

}  // namespace cfs
