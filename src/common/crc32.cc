#include "common/crc32.h"

#include <array>

namespace cfs {
namespace {

constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const auto& table = Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; i++) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xff];
  }
  return ~crc;
}

}  // namespace cfs
