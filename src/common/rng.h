// Deterministic pseudo-random number generation (splitmix64 seeded
// xoshiro256**). Every stochastic decision in the simulator draws from an
// explicitly seeded Rng so simulation runs are reproducible.
#pragma once

#include <cstdint>
#include <cassert>

namespace cfs {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to fill the state; avoids all-zero state.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace cfs
