// The CFS client (§2.4, §2.6, §2.7): mounts volumes, caches partition
// routes / leaders / metadata, and implements the metadata-operation
// workflows of Fig. 3 and the file I/O paths of Fig. 4/5.
//
// Multi-tenancy: one Client (one container host) holds N mounts. All
// per-volume state — the volume view, partition/leader caches, metadata
// caches, open files, orphan list, the refresh loop, and the QoS token
// buckets — lives in an explicit MountContext. The Client itself keeps only
// what is genuinely per-host: the metered channel, the per-RPC metric
// registry, and the aggregate ClientStats. Mount/Unmount are first-class;
// unmounting stops the mount's refresh loop (its coroutine observes the
// generation bump at the next wakeup) and retires the context — it stays
// alive until the Client dies so detached coroutines started under it
// (refresh sleep, async unlink, window packets) can land safely.
//
// Caching (§2.4):
//  * partition views cached at mount and refreshed periodically (the client
//    talks to the resource manager over non-persistent connections);
//  * inodes/dentries cached on create and readdir; forced re-sync on open;
//  * the most recently identified raft leader of each data partition is
//    cached so reads rarely probe replicas.
//
// All RPC goes through the typed stubs in src/rpc: routing and leader
// caching live in rpc::Router, retries/backoff in rpc::RetryPolicy, and
// every leg is metered into a per-client rpc::MetricRegistry. The mount
// context itself only keeps the workflow logic: what to call, in what
// order, and how to compensate on failure.
//
// QoS (ROADMAP item 3): each mount charges a deterministic virtual-time
// token bucket (IOPS and bytes) before issuing work; the limits come from
// the volume's master-side VolumeQos record with the volume view. The
// mount's tenant label (= VolumeId) is bound onto its service channels so
// every request downstream carries who is calling.
//
// Failure semantics: metadata workflows retry and fall back to the mount's
// orphan-inode list (§2.6.1); sequential writes that fail mid-stream resend
// the uncommitted suffix to a new extent on a different partition (§2.2.5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datanode/messages.h"
#include "master/messages.h"
#include "meta/messages.h"
#include "qos/qos.h"
#include "rpc/deadline.h"
#include "rpc/metrics.h"
#include "rpc/retry_policy.h"
#include "rpc/router.h"
#include "rpc/service.h"
#include "sim/network.h"
#include "sim/sync.h"

namespace cfs::client {

using master::DataPartitionView;
using master::MetaPartitionView;
using meta::Dentry;
using meta::ExtentKey;
using meta::FileType;
using meta::Inode;
using meta::InodeId;
using meta::PartitionId;

struct ClientOptions {
  /// Per-leg RPC timeout, applied to both retry policies at construction.
  SimDuration rpc_timeout = 1 * kSec;
  /// Retry budgets for the rpc service layer (see rpc/retry_policy.h):
  /// control for master/meta traffic and placement loops, data for extent IO.
  rpc::RetryPolicy control_policy = rpc::RetryPolicy::Control();
  rpc::RetryPolicy data_policy = rpc::RetryPolicy::Data();
  /// Upper bound on the virtual time one public operation may spend across
  /// all of its nested RPC workflows (0 = unbounded). Propagated as an
  /// rpc::Deadline through every meta/data leg underneath the op.
  SimDuration op_deadline = 0;
  /// Fixed packet size for sequential writes (§2.7.1; also the default
  /// small-file threshold t, §2.2.1).
  uint64_t packet_size = 128 * kKiB;
  uint64_t small_file_threshold = 128 * kKiB;
  /// Sliding-window depth of the sequential-write pipeline: how many
  /// WritePacketReqs may be in flight per open file before the writer
  /// blocks. 1 degenerates to stop-and-wait (one full
  /// client→primary→backups→ack round-trip per packet).
  int write_window_packets = 4;
  /// Periodic re-sync of the cached partition views with the master (§2.4).
  SimDuration volume_refresh_interval = 5 * kSec;
  /// TTL of cached inodes/dentries/readdir results.
  SimDuration metadata_cache_ttl = 2 * kSec;
  bool enable_metadata_cache = true;
  /// LRU capacity of each metadata cache (inode and readdir, separately).
  /// TTL alone only evicts on lookup, so a client scanning a large namespace
  /// would grow its caches without bound. 0 = unbounded.
  size_t metadata_cache_max_entries = 4096;
  /// §2.7.3: "the delete operation is asynchronous" — the unlink returns
  /// once the dentry is gone; the nlink decrement (and the content purge it
  /// triggers) completes in the background. Disable for strict tests.
  bool async_unlink = true;
  /// CPU charged on the client host per operation (FUSE + client path).
  SimDuration client_cpu_per_op = 6;
};

struct ClientStats {
  uint64_t meta_rpcs = 0;
  uint64_t data_rpcs = 0;
  uint64_t master_rpcs = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t inode_cache_evictions = 0;    // LRU-capacity evictions
  uint64_t readdir_cache_evictions = 0;  // LRU-capacity evictions
  uint64_t leader_cache_hits = 0;
  uint64_t leader_probes = 0;
  uint64_t resends = 0;           // §2.2.5 suffix resends
  uint64_t orphans_created = 0;   // create workflows that failed after inode
  // --- Write-pipeline observability ---
  uint64_t window_stalls = 0;         // writer blocked on a full window
  uint64_t max_inflight_packets = 0;  // high-watermark of in-flight packets
  uint64_t suffix_resend_bytes = 0;   // bytes re-sent to a fresh extent (§2.2.5)
  uint64_t parallel_read_fanouts = 0; // reads that fanned out to >1 extent
};

/// Per-mount counters, sliced out of the aggregate ClientStats so
/// multi-tenant fairness is observable per volume.
struct MountStats {
  uint64_t ops = 0;                 // public operations issued on this mount
  uint64_t throttle_waits = 0;      // ops delayed by the mount's token buckets
  uint64_t throttle_wait_usec = 0;  // total virtual time spent throttled
  uint64_t refresh_failures = 0;    // background view refreshes that failed
};

/// Bounded metadata cache: TTL on read plus an LRU capacity cap. Ordered
/// containers only (determinism lint R2); recency is a monotonic sequence
/// number, refreshed on Put and on hit. Capacity evictions bump an external
/// counter (ClientStats) when one is attached.
template <typename K, typename V>
class LruTtlCache {
 public:
  void set_capacity(size_t cap) { cap_ = cap; }
  void set_eviction_counter(uint64_t* c) { eviction_counter_ = c; }
  size_t size() const { return map_.size(); }

  /// Insert or overwrite; evicts the least-recently-used entry when full.
  void Put(const K& k, V v, SimTime now) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      lru_.erase(it->second.seq);
      it->second = Entry{std::move(v), now, next_seq_};
    } else {
      if (cap_ > 0 && map_.size() >= cap_) EvictOldest();
      map_.emplace(k, Entry{std::move(v), now, next_seq_});
    }
    lru_.emplace(next_seq_, k);
    next_seq_++;
  }

  /// nullptr on miss or TTL expiry (an expired entry is dropped). A hit
  /// refreshes recency but not the TTL anchor.
  V* Find(const K& k, SimTime now, SimDuration ttl) {
    auto it = map_.find(k);
    if (it == map_.end()) return nullptr;
    if (now - it->second.at > ttl) {
      lru_.erase(it->second.seq);
      map_.erase(it);
      return nullptr;
    }
    lru_.erase(it->second.seq);
    it->second.seq = next_seq_;
    lru_.emplace(next_seq_, k);
    next_seq_++;
    return &it->second.value;
  }

  void Erase(const K& k) {
    auto it = map_.find(k);
    if (it == map_.end()) return;
    lru_.erase(it->second.seq);
    map_.erase(it);
  }

 private:
  struct Entry {
    V value;
    SimTime at = 0;    // insertion time; TTL anchor
    uint64_t seq = 0;  // recency; larger = more recent
  };

  void EvictOldest() {
    auto oldest = lru_.begin();
    map_.erase(oldest->second);
    lru_.erase(oldest);
    if (eviction_counter_) (*eviction_counter_)++;
  }

  size_t cap_ = 0;  // 0 = unbounded
  std::map<K, Entry> map_;
  std::map<uint64_t, K> lru_;  // seq -> key, oldest first
  uint64_t next_seq_ = 0;
  uint64_t* eviction_counter_ = nullptr;
};

/// All state and workflow logic of ONE mounted volume. Owns the volume's
/// Router (views + leader caches), typed service stubs (tenant-labeled once
/// the mount resolves its VolumeId), metadata caches, open-file table,
/// orphan list, refresh loop, and QoS token buckets. Shares the owning
/// Client's ClientStats / MetricRegistry / raw channel, so aggregate
/// per-client accounting is unchanged by the multi-mount refactor.
///
/// Lifetime: created by Client::MountVolume and owned by the Client until
/// the Client dies — Unmount only deactivates it (stops the refresh loop,
/// fails new ops) and moves it to the retired list. Callers holding a
/// MountContext* across a co_await must re-check mounted() after resuming;
/// the pointer stays valid, the mount may have been retired.
class MountContext {
 public:
  MountContext(sim::Network* net, sim::Host* host, std::vector<sim::NodeId> masters,
               const ClientOptions* opts, ClientStats* stats,
               rpc::MetricRegistry* metrics, rpc::Channel* channel,
               std::string volume_name);

  MountContext(const MountContext&) = delete;
  MountContext& operator=(const MountContext&) = delete;

  /// Fetch the volume view, bind the tenant label, apply the volume's QoS
  /// knobs, and start the periodic refresh loop.
  sim::Task<Status> Mount();
  /// Stop the refresh loop (observed at its next wakeup) and fail new ops.
  void Deactivate();

  bool mounted() const { return mounted_; }
  const std::string& volume_name() const { return volume_name_; }
  /// Tenant label = VolumeId, resolved at mount (0 before the first view).
  uint64_t tenant() const { return tenant_; }
  const master::VolumeQos& qos() const { return qos_; }
  const MountStats& mount_stats() const { return mstats_; }
  const rpc::RouterStats& router_stats() const { return router_.stats(); }

  // --- Metadata operations (Fig. 3 workflows) ---

  /// Create: inode first, then dentry; on dentry failure unlink the inode
  /// and put it on the local orphan list (Fig. 3a).
  sim::Task<Result<Inode>> Create(InodeId parent, std::string name, FileType type,
                                  std::string symlink_target = "");

  /// Link: nlink++ on the inode's partition, then create the dentry on the
  /// parent's partition; decrement on failure (Fig. 3b).
  sim::Task<Status> Link(InodeId parent, std::string name, InodeId ino);

  /// Unlink: delete the dentry first, only then decrement nlink (Fig. 3c).
  sim::Task<Status> Unlink(InodeId parent, std::string name);

  /// Rename = link under the new name + unlink the old (no atomicity across
  /// partitions: the relaxed-metadata-atomicity tradeoff, §2.6).
  sim::Task<Status> Rename(InodeId old_parent, std::string old_name,
                           InodeId new_parent, std::string new_name);

  sim::Task<Result<Dentry>> Lookup(InodeId parent, std::string name);
  sim::Task<Result<Inode>> GetInode(InodeId ino);
  sim::Task<Result<std::vector<Dentry>>> ReadDir(InodeId parent);
  /// readdir + batched inode fetch with client-side caching (§4.2's
  /// batchInodeGet): what mdtest's DirStat exercises.
  sim::Task<Result<std::vector<std::pair<Dentry, Inode>>>> ReadDirPlus(InodeId parent);

  // --- File I/O (§2.7) ---

  /// Open for read/write: forces cached metadata in sync with the meta node
  /// (§2.4) and initializes append state.
  sim::Task<Status> Open(InodeId ino);
  sim::Task<Status> Close(InodeId ino);  // fsync + drop append state

  /// Random writes are in-place for the overwritten range and sequential
  /// for the appended remainder (§2.7.2). Returns after all replicas
  /// committed the data; metadata syncs on Fsync/Close. The payload Buffer
  /// is shared, never copied: every packet, chain hop, retry and raft entry
  /// below carries a slice of it.
  sim::Task<Status> Write(InodeId ino, uint64_t offset, Buffer data);
  sim::Task<Status> Write(InodeId ino, uint64_t offset, std::string data) {
    return Write(ino, offset, Buffer::FromString(std::move(data)));
  }

  /// Zero-copy where possible: a single-extent read returns the data node's
  /// payload Buffer as-is; only multi-extent reads stitch pieces into a
  /// fresh allocation. Callers needing owned bytes use Buffer::ToString().
  sim::Task<Result<Buffer>> Read(InodeId ino, uint64_t offset, uint64_t len);

  /// Push cached size/extent updates to the meta node (fsync, §2.7.1).
  sim::Task<Status> Fsync(InodeId ino);

  sim::Task<Status> Truncate(InodeId ino, uint64_t new_size);

  /// Delete = unlink; content removal is asynchronous on the meta node
  /// (§2.7.3).
  sim::Task<Status> Delete(InodeId parent, std::string name) {
    return Unlink(parent, std::move(name));
  }

  /// Drain the local orphan list: send evict for inodes whose create
  /// workflow failed (§2.6.1).
  sim::Task<void> EvictOrphans();
  size_t orphan_count() const { return orphans_.size(); }

  /// Force-refresh the partition views now.
  sim::Task<Status> RefreshVolume();

  /// Test/bench introspection: the data partition currently receiving this
  /// file's appends (0 if no append stream is active).
  PartitionId append_partition(InodeId ino) const {
    auto it = open_files_.find(ino);
    return it == open_files_.end() ? 0 : it->second.append_pid;
  }

  /// Bench/test rig: register already-materialized extents of a file with
  /// this mount's open-file state (pairs with ExtentStore::ImportExtent;
  /// stands in for the excluded fio laydown phase).
  void InjectPreparedFile(InodeId ino, std::vector<ExtentKey> keys, uint64_t size);

  sim::NodeId node() const { return host_->id(); }

 private:
  sim::Scheduler& sched() { return *net_->scheduler(); }

  /// Deadline for one public operation (unbounded unless opts_->op_deadline
  /// is set); threaded through every nested RPC of the op.
  rpc::Deadline OpDeadline() {
    return opts_->op_deadline > 0 ? rpc::Deadline::In(sched(), opts_->op_deadline)
                                  : rpc::Deadline::None();
  }

  // Routing state lives in router_; these stay as thin views for the
  // workflow code.
  MetaPartitionView* MetaViewForInode(InodeId ino) { return router_.MetaViewForInode(ino); }
  MetaPartitionView* PickWritableMetaView() { return router_.PickWritableMetaView(); }
  DataPartitionView* PickWritableDataView(PartitionId avoid = 0) {
    return router_.PickWritableDataView(avoid);
  }
  DataPartitionView* DataView(PartitionId pid) { return router_.DataView(pid); }

  /// Root span of one public operation ("op:<name>"), minting a fresh trace
  /// id. Invalid (and allocation-free) when tracing is off.
  obs::SpanScope BeginOp(std::string_view name) {
    obs::Tracer& tracer = sched().tracer();
    if (!tracer.enabled()) return {};
    return obs::SpanScope(&tracer, tracer.BeginTrace(name, host_->id()));
  }

  /// Meta RPC with NotLeader redirect + retry (rpc::MetaService).
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> MetaCall(PartitionId pid, Req req, rpc::Deadline dl = {},
                                   obs::TraceContext trace = {}) {
    return meta_svc_.Call<Req, Resp>(pid, std::move(req),
                                     rpc::CallOptions{dl, nullptr, trace});
  }

  /// Data RPC to the partition's raft leader (rpc::DataService).
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> DataLeaderCall(PartitionId pid, Req req, rpc::Deadline dl = {},
                                         obs::TraceContext trace = {}) {
    return data_svc_.Call<Req, Resp>(pid, std::move(req),
                                     rpc::CallOptions{dl, nullptr, trace});
  }

  /// Master RPC with leader probing across replicas (rpc::MasterService).
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> MasterCall(Req req, rpc::Deadline dl = {},
                                     obs::TraceContext trace = {}) {
    return master_svc_.Call<Req, Resp>(std::move(req),
                                       rpc::CallOptions{dl, nullptr, trace});
  }

  sim::Task<void> RefreshLoop(uint64_t gen);
  sim::Task<Status> ReportFailure(PartitionId pid, bool is_meta);

  /// Charge the mount's token buckets: one op plus `bytes` payload. Sleeps
  /// the GCRA delay on the virtual clock; free (no events, no suspension)
  /// when no limit is configured — the default, keeping pinned schedules.
  bool ThrottleEnabled() const {
    return iops_bucket_.enabled() || bytes_bucket_.enabled();
  }
  sim::Task<void> Throttle(uint64_t bytes);

  /// (Re)configure the token buckets from the volume's QoS record.
  void ApplyQos();

  struct OpenFile {
    Inode inode;
    // Append pipeline state (current partition/extent being filled).
    PartitionId append_pid = 0;
    storage::ExtentId append_extent = 0;
    uint64_t append_extent_size = 0;
    // Metadata not yet pushed to the meta node.
    std::vector<ExtentKey> pending_keys;
    uint64_t pending_size = 0;
    bool dirty = false;
  };

  sim::Task<Status> AppendData(OpenFile& of, uint64_t file_offset, Buffer data,
                               rpc::Deadline dl, obs::TraceContext trace);
  sim::Task<Status> OverwriteData(OpenFile& of, uint64_t offset, Buffer data,
                                  rpc::Deadline dl, obs::TraceContext trace);
  sim::Task<Status> WriteSmallFile(OpenFile& of, Buffer data, rpc::Deadline dl,
                                   obs::TraceContext trace);

  void CacheInode(const Inode& ino);
  const Inode* CachedInode(InodeId ino);

  sim::Network* net_;
  sim::Host* host_;
  const ClientOptions* opts_;
  ClientStats* stats_;    // shared with the owning Client (aggregate)
  rpc::Channel* channel_; // shared raw channel (window-packet path)

  // RPC service layer of THIS mount: one Router (views + leader caches +
  // writability marks) and typed stubs, metering into the client's shared
  // registry.
  rpc::Router router_;
  rpc::MasterService master_svc_;
  rpc::MetaService meta_svc_;
  rpc::DataService data_svc_;

  bool mounted_ = false;
  std::string volume_name_;
  uint64_t tenant_ = 0;  // VolumeId; bound onto the stubs at mount
  uint64_t refresh_gen_ = 0;

  // Per-mount QoS (client side): deterministic token buckets fed by the
  // volume's VolumeQos record.
  master::VolumeQos qos_;
  qos::TokenBucket iops_bucket_;
  qos::TokenBucket bytes_bucket_;
  MountStats mstats_;

  LruTtlCache<InodeId, Inode> inode_cache_;
  LruTtlCache<InodeId, std::vector<Dentry>> readdir_cache_;

  std::map<InodeId, OpenFile> open_files_;
  std::vector<std::pair<PartitionId, InodeId>> orphans_;
};

/// Multi-mount client shell. Holds per-host shared state (channel, metric
/// registry, aggregate stats) plus a map of named MountContexts. The
/// single-volume API (Mount + ops without a mount handle) operates on the
/// DEFAULT mount — the first volume mounted — and is bit-compatible with the
/// pre-refactor single-volume client.
class Client {
 public:
  Client(sim::Network* net, sim::Host* host, std::vector<sim::NodeId> masters,
         const ClientOptions& opts = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Fetch the volume view and start the periodic refresh loop. The first
  /// mounted volume becomes the default mount for the mountless op API.
  sim::Task<Status> Mount(std::string volume);

  /// First-class multi-volume mount: returns the (new or existing, if still
  /// mounted) context for `volume`.
  sim::Task<Result<MountContext*>> MountVolume(std::string volume);

  /// Deactivate `volume`'s mount: its refresh loop stops at the next wakeup
  /// and new ops on it fail Unavailable. The context is retired, not
  /// destroyed — in-flight detached coroutines drain safely; memory is
  /// reclaimed when the Client dies.
  Status Unmount(const std::string& volume);
  void UnmountAll();

  /// Active mount lookup (nullptr when not mounted / already unmounted).
  MountContext* mount(const std::string& volume);
  MountContext* default_mount() { return default_mount_; }
  const std::map<std::string, std::unique_ptr<MountContext>>& mounts() const {
    return mounts_;
  }
  size_t num_mounts() const { return mounts_.size(); }

  bool mounted() const { return default_mount_ != nullptr && default_mount_->mounted(); }
  const ClientStats& stats() const { return stats_; }
  ClientStats& mutable_stats() { return stats_; }
  const ClientOptions& options() const { return opts_; }

  /// Per-RPC outcome/latency metrics for every leg this client issued.
  const rpc::MetricRegistry& rpc_metrics() const { return rpc_metrics_; }
  /// Leader-cache behaviour of the default mount's Router (hits, probes,
  /// invalidations, redirects).
  const rpc::RouterStats& router_stats() const;

  // --- Default-mount operation API (see MountContext for semantics) ---

  sim::Task<Result<Inode>> Create(InodeId parent, std::string name, FileType type,
                                  std::string symlink_target = "");
  sim::Task<Status> Link(InodeId parent, std::string name, InodeId ino);
  sim::Task<Status> Unlink(InodeId parent, std::string name);
  sim::Task<Status> Rename(InodeId old_parent, std::string old_name,
                           InodeId new_parent, std::string new_name);
  sim::Task<Result<Dentry>> Lookup(InodeId parent, std::string name);
  sim::Task<Result<Inode>> GetInode(InodeId ino);
  sim::Task<Result<std::vector<Dentry>>> ReadDir(InodeId parent);
  sim::Task<Result<std::vector<std::pair<Dentry, Inode>>>> ReadDirPlus(InodeId parent);
  sim::Task<Status> Open(InodeId ino);
  sim::Task<Status> Close(InodeId ino);
  sim::Task<Status> Write(InodeId ino, uint64_t offset, Buffer data);
  sim::Task<Status> Write(InodeId ino, uint64_t offset, std::string data) {
    return Write(ino, offset, Buffer::FromString(std::move(data)));
  }
  sim::Task<Result<Buffer>> Read(InodeId ino, uint64_t offset, uint64_t len);
  sim::Task<Status> Fsync(InodeId ino);
  sim::Task<Status> Truncate(InodeId ino, uint64_t new_size);
  sim::Task<Status> Delete(InodeId parent, std::string name) {
    return Unlink(parent, std::move(name));
  }

  /// Drain the orphan lists of every active mount.
  sim::Task<void> EvictOrphans();
  /// Orphans across every active mount.
  size_t orphan_count() const;

  /// Force-refresh the default mount's partition views now.
  sim::Task<Status> RefreshVolume();

  PartitionId append_partition(InodeId ino) const {
    return default_mount_ ? default_mount_->append_partition(ino) : 0;
  }
  void InjectPreparedFile(InodeId ino, std::vector<ExtentKey> keys, uint64_t size);

  sim::NodeId node() const { return host_->id(); }

 private:
  sim::Task<Status> MountImpl(std::string volume);
  sim::Task<Result<MountContext*>> MountVolumeImpl(std::string volume);
  sim::Task<void> EvictOrphansImpl();

  /// Error task for ops issued with no active default mount. T must be
  /// constructible from Status (Status itself or any Result<V>).
  template <typename T>
  static sim::Task<T> FailWith(Status st) {
    co_return st;
  }

  sim::Network* net_;
  sim::Host* host_;
  std::vector<sim::NodeId> masters_;
  ClientOptions opts_;
  ClientStats stats_;

  rpc::MetricRegistry rpc_metrics_;
  rpc::Channel channel_;

  std::map<std::string, std::unique_ptr<MountContext>> mounts_;
  /// Unmounted contexts, kept alive for detached-coroutine safety.
  std::vector<std::unique_ptr<MountContext>> retired_mounts_;
  MountContext* default_mount_ = nullptr;
};

}  // namespace cfs::client
