#include "client/client.h"

#include <algorithm>

#include "common/logging.h"

namespace cfs::client {

using sim::Spawn;
using sim::Task;

namespace {

rpc::RetryPolicy WithTimeout(rpc::RetryPolicy p, SimDuration timeout) {
  p.rpc_timeout = timeout;
  return p;
}

}  // namespace

// ============================================================================
// MountContext: all per-volume state and workflow logic.
// ============================================================================

MountContext::MountContext(sim::Network* net, sim::Host* host,
                           std::vector<sim::NodeId> masters, const ClientOptions* opts,
                           ClientStats* stats, rpc::MetricRegistry* metrics,
                           rpc::Channel* channel, std::string volume_name)
    : net_(net),
      host_(host),
      opts_(opts),
      stats_(stats),
      channel_(channel),
      router_(net->scheduler(), std::move(masters)),
      master_svc_(net, host->id(), &router_, metrics,
                  WithTimeout(opts->control_policy, opts->rpc_timeout)),
      meta_svc_(net, host->id(), &router_, metrics,
                WithTimeout(opts->control_policy, opts->rpc_timeout)),
      data_svc_(net, host->id(), &router_, metrics,
                WithTimeout(opts->data_policy, opts->rpc_timeout)),
      volume_name_(std::move(volume_name)) {
  master_svc_.set_rpc_counter(&stats_->master_rpcs);
  meta_svc_.set_rpc_counter(&stats_->meta_rpcs);
  data_svc_.set_rpc_counter(&stats_->data_rpcs);
  meta_svc_.set_refresh([this] { return RefreshVolume(); });
  data_svc_.set_refresh([this] { return RefreshVolume(); });
  meta_svc_.set_timeout_report(
      [this](PartitionId pid) { return ReportFailure(pid, /*is_meta=*/true); });
  data_svc_.set_timeout_report(
      [this](PartitionId pid) { return ReportFailure(pid, /*is_meta=*/false); });
  router_.BindCounters(&stats_->leader_cache_hits, &stats_->leader_probes);
  inode_cache_.set_capacity(opts_->metadata_cache_max_entries);
  inode_cache_.set_eviction_counter(&stats_->inode_cache_evictions);
  readdir_cache_.set_capacity(opts_->metadata_cache_max_entries);
  readdir_cache_.set_eviction_counter(&stats_->readdir_cache_evictions);
}

// --- Volume views (non-persistent master connections, §2.5.2) ----------------

sim::Task<Status> MountContext::Mount() {
  CFS_CO_RETURN_IF_ERROR(co_await RefreshVolume());
  mounted_ = true;
  refresh_gen_++;
  Spawn(RefreshLoop(refresh_gen_));
  co_return Status::OK();
}

void MountContext::Deactivate() {
  mounted_ = false;
  refresh_gen_++;
}

sim::Task<Status> MountContext::RefreshVolume() {
  master::GetVolumeReq req{volume_name_};
  auto r = co_await MasterCall<master::GetVolumeReq, master::GetVolumeResp>(std::move(req));
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  if (tenant_ == 0 && r->volume != 0) {
    // First view: the volume id doubles as the tenant label. Bind it onto
    // the stubs so every subsequent request carries who is calling.
    tenant_ = r->volume;
    master_svc_.set_tenant(tenant_);
    meta_svc_.set_tenant(tenant_);
    data_svc_.set_tenant(tenant_);
  }
  qos_ = r->qos;
  ApplyQos();
  router_.InstallViews(std::move(r->meta_partitions), std::move(r->data_partitions));
  co_return Status::OK();
}

void MountContext::ApplyQos() {
  // Reconfigure only on change so a steady refresh stream doesn't reset the
  // buckets' theoretical-arrival-time state (which would leak burst credit).
  if (qos_.iops_limit != iops_bucket_.rate()) {
    iops_bucket_.Configure(qos_.iops_limit, std::max<uint64_t>(1, qos_.iops_limit / 4));
  }
  if (qos_.bytes_per_sec != bytes_bucket_.rate()) {
    bytes_bucket_.Configure(qos_.bytes_per_sec,
                            std::max<uint64_t>(128 * kKiB, qos_.bytes_per_sec / 4));
  }
}

sim::Task<void> MountContext::Throttle(uint64_t bytes) {
  const SimTime now = sched().Now();
  SimDuration d = iops_bucket_.Reserve(1, now);
  if (bytes > 0) d = std::max(d, bytes_bucket_.Reserve(bytes, now));
  if (d > 0) {
    mstats_.throttle_waits++;
    mstats_.throttle_wait_usec += static_cast<uint64_t>(d);
    co_await sim::SleepFor{sched(), d};
  }
}

Task<void> MountContext::RefreshLoop(uint64_t gen) {
  // Failed refreshes back off exponentially (seeded jitter, same schedule
  // class as the control stubs) instead of silently hammering the master
  // every interval; successes reset the streak so the steady-state schedule
  // is identical to the fixed-interval loop this replaces.
  rpc::RetryPolicy policy = opts_->control_policy;
  policy.max_attempts = 1 << 30;  // the loop itself decides when to stop
  rpc::Backoff backoff(&sched(), policy);
  while (mounted_ && refresh_gen_ == gen) {
    co_await sim::SleepFor{sched(), opts_->volume_refresh_interval};
    if (!mounted_ || refresh_gen_ != gen) break;
    Status st = co_await RefreshVolume();
    if (st.ok()) {
      backoff.Reset();
    } else {
      mstats_.refresh_failures++;
      (void)backoff.NextAttempt();
      co_await backoff.Delay();
    }
  }
}

sim::Task<Status> MountContext::ReportFailure(PartitionId pid, bool is_meta) {
  auto r = co_await MasterCall<master::ReportPartitionFailureReq,
                               master::ReportPartitionFailureResp>(
      master::ReportPartitionFailureReq{pid, is_meta});
  co_return r.ok() ? r->status : r.status();
}

// --- Metadata cache ------------------------------------------------------------

void MountContext::CacheInode(const Inode& ino) {
  if (!opts_->enable_metadata_cache) return;
  inode_cache_.Put(ino.id, ino, sched().Now());
}

const Inode* MountContext::CachedInode(InodeId ino) {
  if (!opts_->enable_metadata_cache) return nullptr;
  return inode_cache_.Find(ino, sched().Now(), opts_->metadata_cache_ttl);
}

// --- Metadata workflows (Fig. 3) -----------------------------------------------

sim::Task<Result<Inode>> MountContext::Create(InodeId parent, std::string name,
                                              FileType type, std::string symlink_target) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:create");
  // Step 1: create the inode on an available (randomly chosen) partition.
  // Placement retries ride the same backoff clock as the stubs.
  Inode inode;
  PartitionId ino_pid = 0;
  Status last = Status::Unavailable("no writable meta partition");
  rpc::Backoff backoff(&sched(), opts_->control_policy);
  while (backoff.NextAttempt()) {
    if (dl.Expired(sched().Now())) co_return Status::TimedOut("create deadline exceeded");
    MetaPartitionView* view = PickWritableMetaView();
    if (!view) {
      (void)co_await RefreshVolume();
      view = PickWritableMetaView();
      if (!view) {
        co_await backoff.Delay();
        continue;
      }
    }
    const PartitionId pid = view->pid;
    meta::MetaCreateInodeReq req{pid, type, symlink_target};
    auto r = co_await MetaCall<meta::MetaCreateInodeReq, meta::MetaCreateInodeResp>(
        pid, std::move(req), dl, op.ctx());
    if (!r.ok()) {
      last = r.status();
      continue;
    }
    if (r->status.IsNoSpace()) {
      // Range cut off by a split or the partition is full: skip it locally,
      // give the resource manager a beat to finish the split/expansion, then
      // re-fetch views.
      router_.MarkUnwritable(pid, sched().Now() + 2 * kSec);
      last = r->status;
      co_await backoff.Delay();
      (void)co_await RefreshVolume();
      continue;
    }
    if (!r->status.ok()) {
      last = r->status;
      continue;
    }
    inode = std::move(r->inode);
    ino_pid = pid;
    break;
  }
  if (ino_pid == 0) co_return last;

  // Step 2: only after the inode exists, create the dentry on the PARENT's
  // partition (the inode and dentry may live on different meta nodes, §2.6.1).
  MetaPartitionView* pview = MetaViewForInode(parent);
  Status dstatus = Status::NotFound("no partition for parent inode");
  if (pview) {
    Dentry d{parent, name, inode.id, type};
    meta::MetaCreateDentryReq req{pview->pid, std::move(d)};
    auto r = co_await MetaCall<meta::MetaCreateDentryReq, meta::MetaCreateDentryResp>(
        pview->pid, std::move(req), dl, op.ctx());
    dstatus = r.ok() ? r->status : r.status();
  }
  if (!dstatus.ok()) {
    // The dentry RPC is retried by the service layer, so a lost response
    // makes the retry observe its own first attempt as AlreadyExists (and a
    // timeout leaves the outcome unknown). Read the name back before undoing
    // the inode: if it already maps to our fresh inode, the create in fact
    // committed and unlinking here would leave a dangling dentry.
    pview = MetaViewForInode(parent);
    if (pview) {
      meta::MetaLookupReq lreq{pview->pid, parent, name};
      auto lr = co_await MetaCall<meta::MetaLookupReq, meta::MetaLookupResp>(
          pview->pid, std::move(lreq), dl, op.ctx());
      if (lr.ok() && lr->status.ok() && lr->dentry.inode == inode.id) {
        CacheInode(inode);
        readdir_cache_.Erase(parent);
        co_return inode;
      }
      if (!lr.ok() || (!lr->status.ok() && !lr->status.IsNotFound())) {
        // Still ambiguous: leave the inode alone. Unlinking (or parking it
        // for eviction) would dangle the dentry if it did land; leaking a
        // live inode is the safe side and fsck can reclaim it.
        co_return dstatus;
      }
    }
    // Fig. 3a failure path: unlink the fresh inode, park it on the local
    // orphan list, evict later.
    (void)co_await MetaCall<meta::MetaUnlinkInodeReq, meta::MetaUnlinkInodeResp>(
        ino_pid, meta::MetaUnlinkInodeReq{ino_pid, inode.id}, dl, op.ctx());
    orphans_.emplace_back(ino_pid, inode.id);
    stats_->orphans_created++;
    co_return dstatus;
  }
  CacheInode(inode);
  readdir_cache_.Erase(parent);
  co_return inode;
}

sim::Task<Status> MountContext::Link(InodeId parent, std::string name, InodeId ino) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:link");
  MetaPartitionView* iview = MetaViewForInode(ino);
  if (!iview) co_return Status::NotFound("inode partition");
  // Fig. 3b: nlink++ first...
  auto r = co_await MetaCall<meta::MetaLinkInodeReq, meta::MetaLinkInodeResp>(
      iview->pid, meta::MetaLinkInodeReq{iview->pid, ino}, dl, op.ctx());
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  // ...then the dentry on the target parent's partition.
  MetaPartitionView* pview = MetaViewForInode(parent);
  Status dstatus = Status::NotFound("parent partition");
  if (pview) {
    Dentry d{parent, name, ino, r->inode.type};
    meta::MetaCreateDentryReq req{pview->pid, std::move(d)};
    auto r2 = co_await MetaCall<meta::MetaCreateDentryReq, meta::MetaCreateDentryResp>(
        pview->pid, std::move(req), dl, op.ctx());
    dstatus = r2.ok() ? r2->status : r2.status();
  }
  if (!dstatus.ok()) {
    // Same read-back as Create: a retried dentry RPC can observe its own
    // first attempt as AlreadyExists. If the name maps to `ino`, the link
    // committed; undoing the nlink++ would leave more dentries than links.
    pview = MetaViewForInode(parent);
    if (pview) {
      meta::MetaLookupReq lreq{pview->pid, parent, name};
      auto lr = co_await MetaCall<meta::MetaLookupReq, meta::MetaLookupResp>(
          pview->pid, std::move(lreq), dl, op.ctx());
      if (lr.ok() && lr->status.ok() && lr->dentry.inode == ino) {
        readdir_cache_.Erase(parent);
        inode_cache_.Erase(ino);
        co_return Status::OK();
      }
      if (!lr.ok() || (!lr->status.ok() && !lr->status.IsNotFound())) {
        co_return dstatus;  // ambiguous: keep the extra link, never dangle
      }
    }
    // Failure path: undo the nlink increment.
    iview = MetaViewForInode(ino);
    if (iview) {
      (void)co_await MetaCall<meta::MetaUnlinkInodeReq, meta::MetaUnlinkInodeResp>(
          iview->pid, meta::MetaUnlinkInodeReq{iview->pid, ino}, dl, op.ctx());
    }
    co_return dstatus;
  }
  readdir_cache_.Erase(parent);
  inode_cache_.Erase(ino);
  co_return Status::OK();
}

sim::Task<Status> MountContext::Unlink(InodeId parent, std::string name) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:unlink");
  MetaPartitionView* pview = MetaViewForInode(parent);
  if (!pview) co_return Status::NotFound("parent partition");
  // Fig. 3c: delete the dentry first; a dentry must always point at a live
  // inode, so the reverse order is never allowed.
  meta::MetaDeleteDentryReq req{pview->pid, parent, name};
  auto r = co_await MetaCall<meta::MetaDeleteDentryReq, meta::MetaDeleteDentryResp>(
      pview->pid, std::move(req), dl, op.ctx());
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  InodeId ino = r->dentry.inode;
  readdir_cache_.Erase(parent);
  inode_cache_.Erase(ino);

  // Then decrement nlink with retries; if every retry fails the inode
  // becomes an orphan for fsck/the administrator (§2.6.3). The decrement is
  // asynchronous by default (§2.7.3: deletes are async once the dentry is
  // gone, so the name disappears immediately and content reclamation
  // trails behind).
  MetaPartitionView* iview = MetaViewForInode(ino);
  if (!iview) co_return Status::OK();
  PartitionId ipid = iview->pid;
  auto decrement = [](MountContext* self, PartitionId pid, InodeId ino) -> sim::Task<void> {
    // Back-to-back retries would all land inside the same failure window;
    // space them out on the shared backoff clock instead.
    rpc::Backoff backoff(&self->sched(), self->opts_->control_policy);
    while (backoff.NextAttempt()) {
      meta::MetaUnlinkInodeReq req{pid, ino};
      auto r = co_await self->MetaCall<meta::MetaUnlinkInodeReq, meta::MetaUnlinkInodeResp>(
          pid, std::move(req));
      if (r.ok() && (r->status.ok() || r->status.IsNotFound())) co_return;
      if (!backoff.exhausted()) co_await backoff.Delay();
    }
    LOG_WARN("unlink of inode ", ino, " failed after retries; inode is now an orphan");
  };
  if (opts_->async_unlink) {
    Spawn(decrement(this, ipid, ino));
    co_return Status::OK();
  }
  co_await decrement(this, ipid, ino);
  co_return Status::OK();
}

sim::Task<Status> MountContext::Rename(InodeId old_parent, std::string old_name,
                                       InodeId new_parent, std::string new_name) {
  auto looked = co_await Lookup(old_parent, old_name);
  if (!looked.ok()) co_return looked.status();
  CFS_CO_RETURN_IF_ERROR(co_await Link(new_parent, new_name, looked->inode));
  co_return co_await Unlink(old_parent, old_name);
}

sim::Task<Result<Dentry>> MountContext::Lookup(InodeId parent, std::string name) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  // Serve from a fresh readdir cache when possible.
  if (opts_->enable_metadata_cache) {
    if (const std::vector<Dentry>* dents =
            readdir_cache_.Find(parent, sched().Now(), opts_->metadata_cache_ttl)) {
      for (const auto& d : *dents) {
        if (d.name == name) {
          stats_->cache_hits++;
          co_return d;
        }
      }
    }
  }
  stats_->cache_misses++;
  obs::SpanScope op = BeginOp("op:lookup");
  MetaPartitionView* pview = MetaViewForInode(parent);
  if (!pview) co_return Status::NotFound("parent partition");
  meta::MetaLookupReq req{pview->pid, parent, name};
  auto r = co_await MetaCall<meta::MetaLookupReq, meta::MetaLookupResp>(
      pview->pid, std::move(req), OpDeadline(), op.ctx());
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  co_return r->dentry;
}

sim::Task<Result<Inode>> MountContext::GetInode(InodeId ino) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  if (const Inode* cached = CachedInode(ino)) {
    stats_->cache_hits++;
    co_return *cached;
  }
  stats_->cache_misses++;
  obs::SpanScope op = BeginOp("op:getinode");
  MetaPartitionView* view = MetaViewForInode(ino);
  if (!view) co_return Status::NotFound("inode partition");
  auto r = co_await MetaCall<meta::MetaGetInodeReq, meta::MetaGetInodeResp>(
      view->pid, meta::MetaGetInodeReq{view->pid, ino}, OpDeadline(), op.ctx());
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  CacheInode(r->inode);
  co_return r->inode;
}

sim::Task<Result<std::vector<Dentry>>> MountContext::ReadDir(InodeId parent) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  if (opts_->enable_metadata_cache) {
    if (const std::vector<Dentry>* dents =
            readdir_cache_.Find(parent, sched().Now(), opts_->metadata_cache_ttl)) {
      stats_->cache_hits++;
      co_return *dents;
    }
  }
  stats_->cache_misses++;
  obs::SpanScope op = BeginOp("op:readdir");
  MetaPartitionView* pview = MetaViewForInode(parent);
  if (!pview) co_return Status::NotFound("parent partition");
  auto r = co_await MetaCall<meta::MetaReadDirReq, meta::MetaReadDirResp>(
      pview->pid, meta::MetaReadDirReq{pview->pid, parent}, OpDeadline(), op.ctx());
  if (!r.ok()) co_return r.status();
  if (!r->status.ok()) co_return r->status;
  if (opts_->enable_metadata_cache) {
    readdir_cache_.Put(parent, r->dentries, sched().Now());
  }
  co_return std::move(r->dentries);
}

sim::Task<Result<std::vector<std::pair<Dentry, Inode>>>> MountContext::ReadDirPlus(
    InodeId parent) {
  // The DirStat path (§4.2): readdir, then ONE batchInodeGet per meta
  // partition instead of per-inode fetches, with client-side caching.
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:readdirplus");
  auto dentries = co_await ReadDir(parent);
  if (!dentries.ok()) co_return dentries.status();

  std::vector<std::pair<Dentry, Inode>> out;
  std::map<PartitionId, std::vector<InodeId>> missing;
  std::map<InodeId, const Dentry*> by_ino;
  for (const auto& d : *dentries) {
    by_ino[d.inode] = &d;
    if (const Inode* cached = CachedInode(d.inode)) {
      stats_->cache_hits++;
      out.emplace_back(d, *cached);
      continue;
    }
    MetaPartitionView* view = MetaViewForInode(d.inode);
    if (view) missing[view->pid].push_back(d.inode);
  }
  for (auto& [pid, inos] : missing) {
    stats_->cache_misses++;
    meta::MetaBatchInodeGetReq req{pid, inos};
    auto r = co_await MetaCall<meta::MetaBatchInodeGetReq, meta::MetaBatchInodeGetResp>(
        pid, std::move(req), dl, op.ctx());
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
    for (auto& ino : r->inodes) {
      CacheInode(ino);
      auto dit = by_ino.find(ino.id);
      if (dit != by_ino.end()) out.emplace_back(*dit->second, std::move(ino));
    }
  }
  co_return out;
}

sim::Task<void> MountContext::EvictOrphans() {
  auto orphans = std::move(orphans_);
  orphans_.clear();
  for (auto& [pid, ino] : orphans) {
    auto r = co_await MetaCall<meta::MetaEvictInodeReq, meta::MetaEvictInodeResp>(
        pid, meta::MetaEvictInodeReq{pid, ino});
    if (!r.ok() || !r->status.ok()) orphans_.emplace_back(pid, ino);  // retry later
  }
}

// --- File I/O (§2.7) -----------------------------------------------------------

sim::Task<Status> MountContext::Open(InodeId ino) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  // "When a file is opened for read/write, the client will force the cached
  // metadata to be synchronous with the meta node" (§2.4).
  inode_cache_.Erase(ino);
  auto r = co_await GetInode(ino);
  if (!r.ok()) co_return r.status();
  OpenFile of;
  of.inode = std::move(*r);
  // Resume appending into the file's last extent when it is private to this
  // file (extent_offset == 0) — small-file slots are immutable.
  if (!of.inode.extents.empty()) {
    const ExtentKey& last = of.inode.extents.back();
    if (last.extent_offset == 0) {
      of.append_pid = last.partition_id;
      of.append_extent = last.extent_id;
      of.append_extent_size = last.size;
    }
  }
  of.pending_size = of.inode.size;
  open_files_[ino] = std::move(of);
  co_return Status::OK();
}

sim::Task<Status> MountContext::Close(InodeId ino) {
  Status st = co_await Fsync(ino);
  open_files_.erase(ino);
  co_return st;
}

sim::Task<Status> MountContext::Fsync(InodeId ino) {
  auto it = open_files_.find(ino);
  if (it == open_files_.end()) co_return Status::OK();
  if (!it->second.dirty) co_return Status::OK();
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:fsync");
  MetaPartitionView* view = MetaViewForInode(ino);
  if (!view) co_return Status::NotFound("inode partition");
  const PartitionId pid = view->pid;
  // Snapshot the pending extents: open_files_ can be mutated by concurrent
  // ops while this coroutine is suspended in MetaCall, invalidating any
  // reference into the map (A1).
  const std::vector<ExtentKey> pending = it->second.pending_keys;
  const uint64_t pending_size = it->second.pending_size;
  for (const ExtentKey& key : pending) {
    auto r = co_await MetaCall<meta::MetaAppendExtentReq, meta::MetaAppendExtentResp>(
        pid, meta::MetaAppendExtentReq{pid, ino, key, pending_size}, dl, op.ctx());
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
  }
  // Keep the local inode view current (§2.7.1: update cache immediately,
  // sync with meta node on fsync).  Re-look the entry up: the map may have
  // rehomed it while we were suspended above.
  it = open_files_.find(ino);
  if (it == open_files_.end()) co_return Status::OK();
  OpenFile& of = it->second;
  for (const ExtentKey& key : pending) {
    bool merged = false;
    for (auto& e : of.inode.extents) {
      if (e.partition_id == key.partition_id && e.extent_id == key.extent_id &&
          e.extent_offset == key.extent_offset && e.file_offset == key.file_offset) {
        e.size = std::max(e.size, key.size);
        merged = true;
        break;
      }
    }
    if (!merged) of.inode.extents.push_back(key);
  }
  of.inode.size = std::max(of.inode.size, pending_size);
  of.pending_keys.clear();
  of.dirty = false;
  CacheInode(of.inode);
  co_return Status::OK();
}

sim::Task<Status> MountContext::WriteSmallFile(OpenFile& of, Buffer data,
                                               rpc::Deadline dl, obs::TraceContext trace) {
  // §4.4: "the CFS client does not need to ask the resource manager for new
  // extents; instead, it sends the write request to the data node directly."
  Status last = Status::Unavailable("no writable data partition");
  rpc::Backoff backoff(&sched(), opts_->control_policy);
  while (backoff.NextAttempt()) {
    if (dl.Expired(sched().Now())) co_return Status::TimedOut("write deadline exceeded");
    DataPartitionView* view = PickWritableDataView();
    if (!view) {
      (void)co_await RefreshVolume();
      view = PickWritableDataView();
      if (!view) {
        co_await backoff.Delay();
        continue;
      }
    }
    const PartitionId pid = view->pid;
    data::WriteSmallReq req{pid, data};  // refcount share; retries re-send the same buffer
    auto r = co_await data_svc_.ChainCall<data::WriteSmallReq, data::WriteSmallResp>(
        pid, std::move(req), rpc::CallOptions{dl, nullptr, trace});
    if (!r.ok()) {
      last = r.status();
      co_await backoff.Delay();
      continue;
    }
    if (!r->status.ok()) {
      if (r->status.IsNoSpace()) {
        router_.MarkUnwritable(pid, sched().Now() + 2 * kSec);
      }
      last = r->status;
      continue;
    }
    ExtentKey key{0, pid, r->extent_id, r->extent_offset, data.size()};
    of.pending_keys.push_back(key);
    of.pending_size = std::max(of.pending_size, static_cast<uint64_t>(data.size()));
    of.dirty = true;
    co_return Status::OK();
  }
  co_return last;
}

namespace {

// Shared state of one window "session": all the packets streamed to a single
// extent between two drain points of the sliding-window append pipeline.
struct WindowCtl {
  sim::Semaphore sem;     // in-flight packet slots
  sim::Notifier drained;  // fires when inflight drops to zero
  int inflight = 0;
  bool failed = false;    // some packet was rejected or its RPC was lost
  bool rpc_lost = false;  // at least one failure carried no leader response
  // Largest committed offset the leader reported across all delivered
  // responses (recovers commits whose own acks were lost in flight).
  uint64_t leader_committed = 0;
  // Contiguous prefix of OK-acked bytes, plus out-of-order acked ranges
  // (begin -> end) ahead of it.
  uint64_t acked_prefix = 0;
  std::map<uint64_t, uint64_t> acked;

  WindowCtl(sim::Scheduler* sched, int permits, uint64_t base)
      : sem(sched, permits), drained(sched), acked_prefix(base) {}
};

// Detached per-packet sender: occupies one window slot until its ack (or
// timeout) comes back, then releases the slot to the writer. Goes through
// the client's metered channel so window packets show up in the per-RPC
// metrics like every other leg.
Task<void> SendWindowPacket(rpc::Channel* channel, sim::NodeId self, sim::NodeId target,
                            SimDuration timeout, std::shared_ptr<WindowCtl> ctl,
                            data::WritePacketReq pkt, obs::TraceContext trace) {
  const uint64_t begin = pkt.offset;
  const uint64_t end = begin + pkt.data.size();
  auto r = co_await channel->Unary<data::WritePacketReq, data::WritePacketResp>(
      self, target, std::move(pkt), timeout, trace);
  if (r.ok()) {
    ctl->leader_committed = std::max(ctl->leader_committed, r->committed_offset);
  }
  if (r.ok() && r->status.ok()) {
    // A success ack means [begin, end) is durable on every replica even if a
    // predecessor is still in flight; fold it into the acked ranges.
    auto [it, inserted] = ctl->acked.emplace(begin, end);
    if (!inserted) it->second = std::max(it->second, end);
    while (!ctl->acked.empty() && ctl->acked.begin()->first <= ctl->acked_prefix) {
      ctl->acked_prefix = std::max(ctl->acked_prefix, ctl->acked.begin()->second);
      ctl->acked.erase(ctl->acked.begin());
    }
  } else {
    ctl->failed = true;
    if (!r.ok()) ctl->rpc_lost = true;
  }
  ctl->inflight--;
  ctl->sem.Release();
  if (ctl->inflight == 0) ctl->drained.NotifyAll();
}

}  // namespace

sim::Task<Status> MountContext::AppendData(OpenFile& of, uint64_t file_offset,
                                           Buffer data, rpc::Deadline dl,
                                           obs::TraceContext trace) {
  // Sliding-window pipeline: up to write_window_packets WritePacketReqs in
  // flight against the active extent; the committed prefix (and with it
  // pending_keys / append_extent_size) only advances over bytes the leader
  // confirmed contiguously. window=1 degenerates to the paper's stop-and-wait
  // packet train.
  uint64_t remaining = data.size();
  uint64_t pos = 0;  // bytes of `data` committed so far
  const uint64_t extent_limit = 128 * kMiB;
  const int window = std::max(1, opts_->write_window_packets);
  PartitionId avoid_pid = 0;  // partition the previous session failed on
  while (remaining > 0) {
    if (dl.Expired(sched().Now())) co_return Status::TimedOut("write deadline exceeded");
    // Ensure an active extent with room.
    if (of.append_pid == 0 || of.append_extent_size >= extent_limit) {
      Status alloc = Status::Unavailable("no writable data partition");
      bool allocated = false;
      rpc::Backoff backoff(&sched(), opts_->control_policy);
      while (backoff.NextAttempt()) {
        if (dl.Expired(sched().Now())) co_return Status::TimedOut("write deadline exceeded");
        DataPartitionView* view = PickWritableDataView(avoid_pid);
        if (!view) {
          (void)co_await RefreshVolume();
          view = PickWritableDataView(avoid_pid);
          if (!view) {
            co_await backoff.Delay();
            continue;
          }
        }
        const PartitionId pid = view->pid;
        auto r = co_await data_svc_.ChainCall<data::CreateExtentReq, data::CreateExtentResp>(
            pid, data::CreateExtentReq{pid}, rpc::CallOptions{dl, nullptr, trace});
        if (!r.ok()) {
          alloc = r.status();
          co_await backoff.Delay();
          continue;
        }
        if (!r->status.ok()) {
          if (r->status.IsNoSpace()) {
            router_.MarkUnwritable(pid, sched().Now() + 2 * kSec);
          }
          alloc = r->status;
          continue;
        }
        of.append_pid = pid;
        of.append_extent = r->extent_id;
        of.append_extent_size = 0;
        allocated = true;
        break;
      }
      if (!allocated) co_return alloc;
    }

    DataPartitionView* view = DataView(of.append_pid);
    if (!view) co_return Status::NotFound("data partition vanished");
    const sim::NodeId target = view->replicas[0];

    // --- One window session against the active extent ---
    const uint64_t base = of.append_extent_size;
    auto ctl = std::make_shared<WindowCtl>(&sched(), window, base);
    // All packets of the session group under one "client:window" span so the
    // trace shows the pipeline depth, not a flat run of rpc legs.
    obs::SpanScope session;
    if (sched().tracer().enabled() && trace.valid()) {
      obs::Tracer& tracer = sched().tracer();
      session = obs::SpanScope(
          &tracer, tracer.BeginSpan("client:window", trace, host_->id()));
      session.Note("window", window);
    }
    const obs::TraceContext pkt_parent = session.ctx().valid() ? session.ctx() : trace;
    uint64_t next_off = base;   // extent offset of the next packet
    uint64_t send_pos = pos;    // data position of the next packet
    int64_t packets = 0, session_stalls = 0, max_occupancy = 0;
    while (send_pos < data.size() && next_off < extent_limit && !ctl->failed) {
      if (co_await ctl->sem.Acquire()) {
        stats_->window_stalls++;
        session_stalls++;
      }
      if (ctl->failed) {
        ctl->sem.Release();
        break;
      }
      uint64_t chunk = std::min({data.size() - send_pos, opts_->packet_size,
                                 extent_limit - next_off});
      data::WritePacketReq pkt;
      pkt.pid = of.append_pid;
      pkt.extent_id = of.append_extent;
      pkt.offset = next_off;
      pkt.data = data.Slice(send_pos, chunk);  // view of the caller's buffer, no copy
      // The raw channel is shared across mounts, so the tenant label is
      // stamped per-packet rather than bound on the channel.
      pkt.tenant = tenant_;
      ctl->inflight++;
      packets++;
      max_occupancy = std::max<int64_t>(max_occupancy, ctl->inflight);
      stats_->max_inflight_packets =
          std::max<uint64_t>(stats_->max_inflight_packets, ctl->inflight);
      stats_->data_rpcs++;
      Spawn(SendWindowPacket(channel_, host_->id(), target,
                             dl.ClampTimeout(sched().Now(), opts_->rpc_timeout), ctl,
                             std::move(pkt), pkt_parent));
      next_off += chunk;
      send_pos += chunk;
    }
    // Drain the window before touching the commit bookkeeping.
    while (ctl->inflight > 0) co_await ctl->drained.Wait();
    session.Note("packets", packets);
    session.Note("stalls", session_stalls);
    session.Note("max_occupancy", max_occupancy);

    uint64_t committed_end =
        std::clamp(std::max(ctl->acked_prefix, ctl->leader_committed), base, next_off);
    uint64_t advanced = committed_end - base;
    if (advanced > 0) {
      // Record/extend the pending extent key for the committed prefix.
      bool merged = false;
      for (auto& key : of.pending_keys) {
        if (key.partition_id == of.append_pid && key.extent_id == of.append_extent &&
            key.file_offset + key.size == file_offset + pos) {
          key.size += advanced;
          merged = true;
          break;
        }
      }
      if (!merged) {
        ExtentKey key;
        key.file_offset = file_offset + pos - base;  // where this extent begins
        key.partition_id = of.append_pid;
        key.extent_id = of.append_extent;
        key.extent_offset = 0;
        key.size = base + advanced;
        of.pending_keys.push_back(key);
      }
      of.append_extent_size = committed_end;
      pos += advanced;
      remaining -= advanced;
      of.pending_size = std::max(of.pending_size, file_offset + pos);
      of.dirty = true;
    }
    if (ctl->failed) {
      // §2.2.5: "the client will resend a write request for the remaining
      // k−p MB data to the extents in different data partitions/nodes."
      stats_->resends++;
      stats_->suffix_resend_bytes += next_off - committed_end;
      avoid_pid = of.append_pid;
      of.append_pid = 0;
      of.append_extent = 0;
      of.append_extent_size = 0;
      if (ctl->rpc_lost) (void)co_await RefreshVolume();
    } else {
      avoid_pid = 0;
    }
  }
  co_return Status::OK();
}

sim::Task<Status> MountContext::OverwriteData(OpenFile& of, uint64_t offset,
                                              Buffer data, rpc::Deadline dl,
                                              obs::TraceContext trace) {
  // In-place (§2.7.2): locate the covering extent keys; offsets don't move;
  // NO metadata update is needed — the paper's key overwrite advantage.
  uint64_t end = offset + data.size();
  // Consider both synced and pending keys.  Snapshot them by value: the
  // OpenFile's extent vectors can grow (and reallocate) while this coroutine
  // is suspended in DataLeaderCall, so interior pointers would dangle (A1).
  std::vector<ExtentKey> keys;
  for (const auto& k : of.inode.extents) keys.push_back(k);
  for (const auto& k : of.pending_keys) keys.push_back(k);
  for (const ExtentKey& k : keys) {
    uint64_t k_end = k.file_offset + k.size;
    if (k_end <= offset || k.file_offset >= end) continue;
    uint64_t piece_begin = std::max(offset, k.file_offset);
    uint64_t piece_end = std::min(end, k_end);
    Buffer piece = data.Slice(piece_begin - offset, piece_end - piece_begin);
    uint64_t extent_off = k.extent_offset + (piece_begin - k.file_offset);
    data::OverwriteReq req{k.partition_id, k.extent_id, extent_off, std::move(piece)};
    auto r = co_await DataLeaderCall<data::OverwriteReq, data::OverwriteResp>(
        k.partition_id, std::move(req), dl, trace);
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
  }
  co_return Status::OK();
}

sim::Task<Status> MountContext::Write(InodeId ino, uint64_t offset, Buffer buf) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(buf.size());
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  const rpc::Deadline dl = OpDeadline();
  auto it = open_files_.find(ino);
  if (it == open_files_.end()) {
    CFS_CO_RETURN_IF_ERROR(co_await Open(ino));
    it = open_files_.find(ino);
  }
  obs::SpanScope op = BeginOp("op:write");
  op.Note("bytes", static_cast<int64_t>(buf.size()));
  uint64_t size = it->second.pending_size;
  if (offset > size) co_return Status::InvalidArgument("write beyond EOF (no holes)");

  // Small-file fast path (§2.2.3): whole file fits under the threshold.
  if (offset == 0 && size == 0 && buf.size() <= opts_->small_file_threshold &&
      it->second.inode.extents.empty() && it->second.pending_keys.empty()) {
    co_return co_await WriteSmallFile(it->second, std::move(buf), dl, op.ctx());
  }

  // §2.7.2: split into the overwritten portion and the appended portion.
  uint64_t overwrite_end = std::min<uint64_t>(offset + buf.size(), size);
  if (offset < overwrite_end) {
    CFS_CO_RETURN_IF_ERROR(co_await OverwriteData(
        it->second, offset, buf.Slice(0, overwrite_end - offset), dl, op.ctx()));
  }
  if (overwrite_end < offset + buf.size()) {
    // Re-look the entry up after the overwrite suspension: open_files_ may
    // have been mutated while this coroutine was parked (A1).
    it = open_files_.find(ino);
    if (it == open_files_.end()) co_return Status::NotFound("file closed during write");
    CFS_CO_RETURN_IF_ERROR(co_await AppendData(
        it->second, overwrite_end, buf.Slice(overwrite_end - offset, buf.size()), dl,
        op.ctx()));
  }
  co_return Status::OK();
}

sim::Task<Result<Buffer>> MountContext::Read(InodeId ino, uint64_t offset, uint64_t len) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(len);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  const rpc::Deadline dl = OpDeadline();
  obs::SpanScope op = BeginOp("op:read");
  op.Note("bytes", static_cast<int64_t>(len));
  // Use open-file state if present (read-your-own-writes), else the cached
  // or fetched inode.
  const Inode* inode = nullptr;
  std::vector<const ExtentKey*> keys;
  uint64_t size = 0;
  auto oit = open_files_.find(ino);
  if (oit != open_files_.end()) {
    inode = &oit->second.inode;
    size = oit->second.pending_size;
    for (const auto& k : oit->second.pending_keys) keys.push_back(&k);
  } else {
    auto r = co_await GetInode(ino);
    if (!r.ok()) co_return r.status();
    CacheInode(*r);
    inode = CachedInode(ino);
    if (!inode) co_return Status::NotFound("inode");
    size = inode->size;
  }
  for (const auto& k : inode->extents) keys.push_back(&k);

  if (offset >= size) co_return Buffer();
  len = std::min(len, size - offset);
  uint64_t end = offset + len;

  // Collect the covering pieces up front. Keys are copied by value: the
  // fan-out below suspends, and pending_keys can reallocate under a
  // concurrent writer on the same file.
  struct Piece {
    ExtentKey key;
    uint64_t begin;
    uint64_t end;
  };
  std::vector<Piece> pieces;
  for (const ExtentKey* k : keys) {
    uint64_t k_end = k->file_offset + k->size;
    if (k_end <= offset || k->file_offset >= end) continue;
    Piece pc{*k, std::max(offset, k->file_offset), std::min(end, k_end)};
    pieces.push_back(std::move(pc));
  }

  if (pieces.size() == 1 && pieces[0].begin == offset && pieces[0].end == end) {
    // Single extent covering the whole range (the common random-read case):
    // stay inline and hand the data node's payload back without a copy.
    const Piece& pc = pieces[0];
    uint64_t extent_off = pc.key.extent_offset + (pc.begin - pc.key.file_offset);
    data::ReadExtentReq req{pc.key.partition_id, pc.key.extent_id, extent_off,
                            pc.end - pc.begin};
    auto r = co_await DataLeaderCall<data::ReadExtentReq, data::ReadExtentResp>(
        pc.key.partition_id, std::move(req), dl, op.ctx());
    if (!r.ok()) co_return r.status();
    if (!r->status.ok()) co_return r->status;
    co_return std::move(r->data);
  }

  std::string out(len, '\0');

  // Multi-extent read: fan the per-extent ReadExtentReqs out concurrently and
  // stitch the pieces into `out` (alive across the join — this frame owns it).
  if (!pieces.empty()) {
    stats_->parallel_read_fanouts++;
    op.Note("fanout", static_cast<int64_t>(pieces.size()));
    std::vector<Status> piece_status(pieces.size(), Status::OK());
    sim::Join join(&sched(), static_cast<int>(pieces.size()));
    for (size_t i = 0; i < pieces.size(); i++) {
      Piece pc = pieces[i];
      Spawn([](MountContext* self, Piece pc, uint64_t offset, rpc::Deadline dl,
               obs::TraceContext trace, std::string* out, Status* st,
               std::function<void()> done) -> Task<void> {
        uint64_t extent_off = pc.key.extent_offset + (pc.begin - pc.key.file_offset);
        data::ReadExtentReq req{pc.key.partition_id, pc.key.extent_id, extent_off,
                                pc.end - pc.begin};
        auto r = co_await self->DataLeaderCall<data::ReadExtentReq, data::ReadExtentResp>(
            pc.key.partition_id, std::move(req), dl, trace);
        if (!r.ok()) {
          *st = r.status();
        } else if (!r->status.ok()) {
          *st = r->status;
        } else {
          out->replace(pc.begin - offset, r->data.size(), r->data.data(), r->data.size());
        }
        done();
      }(this, std::move(pc), offset, dl, op.ctx(), &out, &piece_status[i], join.Arrive()));
    }
    co_await join.Wait();
    for (const Status& st : piece_status) {
      if (!st.ok()) co_return st;  // fail the read on the first piece error
    }
  }
  co_return Buffer::FromString(std::move(out));
}

void MountContext::InjectPreparedFile(InodeId ino, std::vector<ExtentKey> keys,
                                      uint64_t size) {
  OpenFile of;
  of.inode.id = ino;
  of.inode.type = FileType::kFile;
  of.inode.nlink = 1;
  of.inode.size = size;
  of.inode.extents = std::move(keys);
  of.pending_size = size;
  of.dirty = false;
  open_files_[ino] = std::move(of);
}

sim::Task<Status> MountContext::Truncate(InodeId ino, uint64_t new_size) {
  if (!mounted_) co_return Status::Unavailable("volume unmounted");
  mstats_.ops++;
  if (ThrottleEnabled()) co_await Throttle(0);
  co_await host_->cpu().Use(opts_->client_cpu_per_op);
  obs::SpanScope op = BeginOp("op:truncate");
  MetaPartitionView* view = MetaViewForInode(ino);
  if (!view) co_return Status::NotFound("inode partition");
  auto r = co_await MetaCall<meta::MetaTruncateReq, meta::MetaTruncateResp>(
      view->pid, meta::MetaTruncateReq{view->pid, ino, new_size}, OpDeadline(), op.ctx());
  if (!r.ok()) co_return r.status();
  inode_cache_.Erase(ino);
  auto oit = open_files_.find(ino);
  if (oit != open_files_.end()) {
    oit->second.pending_size = std::min(oit->second.pending_size, new_size);
    oit->second.inode.size = std::min(oit->second.inode.size, new_size);
  }
  co_return r->status;
}

// ============================================================================
// Client: the multi-mount shell.
// ============================================================================

Client::Client(sim::Network* net, sim::Host* host, std::vector<sim::NodeId> masters,
               const ClientOptions& opts)
    : net_(net),
      host_(host),
      masters_(std::move(masters)),
      opts_(opts),
      channel_(net, &rpc_metrics_) {}

sim::Task<Status> Client::Mount(std::string volume) {
  return MountImpl(std::move(volume));
}

sim::Task<Status> Client::MountImpl(std::string volume) {
  auto r = co_await MountVolumeImpl(std::move(volume));
  co_return r.ok() ? Status::OK() : r.status();
}

sim::Task<Result<MountContext*>> Client::MountVolume(std::string volume) {
  return MountVolumeImpl(std::move(volume));
}

sim::Task<Result<MountContext*>> Client::MountVolumeImpl(std::string volume) {
  auto it = mounts_.find(volume);
  if (it != mounts_.end()) {
    // Idempotent: mounting a volume twice hands back the live context.
    MountContext* existing = it->second.get();
    if (default_mount_ == nullptr) default_mount_ = existing;
    co_return existing;
  }
  auto ctx = std::make_unique<MountContext>(net_, host_, masters_, &opts_, &stats_,
                                            &rpc_metrics_, &channel_, volume);
  MountContext* raw = ctx.get();
  Status st = co_await raw->Mount();
  if (!st.ok()) co_return st;
  mounts_.emplace(std::move(volume), std::move(ctx));
  if (default_mount_ == nullptr) default_mount_ = raw;
  co_return raw;
}

Status Client::Unmount(const std::string& volume) {
  auto it = mounts_.find(volume);
  if (it == mounts_.end()) return Status::NotFound("volume not mounted");
  MountContext* ctx = it->second.get();
  ctx->Deactivate();
  // Retire, don't destroy: detached coroutines started under this mount
  // (refresh sleep, async unlink decrements, window packets) may still hold
  // the context pointer and must land on live memory.
  retired_mounts_.push_back(std::move(it->second));
  mounts_.erase(it);
  if (default_mount_ == ctx) {
    default_mount_ = mounts_.empty() ? nullptr : mounts_.begin()->second.get();
  }
  return Status::OK();
}

void Client::UnmountAll() {
  while (!mounts_.empty()) {
    (void)Unmount(mounts_.begin()->first);
  }
}

MountContext* Client::mount(const std::string& volume) {
  auto it = mounts_.find(volume);
  return it == mounts_.end() ? nullptr : it->second.get();
}

const rpc::RouterStats& Client::router_stats() const {
  static const rpc::RouterStats kEmpty{};
  return default_mount_ ? default_mount_->router_stats() : kEmpty;
}

// --- Default-mount delegation ---------------------------------------------------

sim::Task<Result<Inode>> Client::Create(InodeId parent, std::string name, FileType type,
                                        std::string symlink_target) {
  if (!default_mount_) return FailWith<Result<Inode>>(Status::Unavailable("no mounted volume"));
  return default_mount_->Create(parent, std::move(name), type, std::move(symlink_target));
}

sim::Task<Status> Client::Link(InodeId parent, std::string name, InodeId ino) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Link(parent, std::move(name), ino);
}

sim::Task<Status> Client::Unlink(InodeId parent, std::string name) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Unlink(parent, std::move(name));
}

sim::Task<Status> Client::Rename(InodeId old_parent, std::string old_name,
                                 InodeId new_parent, std::string new_name) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Rename(old_parent, std::move(old_name), new_parent,
                                std::move(new_name));
}

sim::Task<Result<Dentry>> Client::Lookup(InodeId parent, std::string name) {
  if (!default_mount_) return FailWith<Result<Dentry>>(Status::Unavailable("no mounted volume"));
  return default_mount_->Lookup(parent, std::move(name));
}

sim::Task<Result<Inode>> Client::GetInode(InodeId ino) {
  if (!default_mount_) return FailWith<Result<Inode>>(Status::Unavailable("no mounted volume"));
  return default_mount_->GetInode(ino);
}

sim::Task<Result<std::vector<Dentry>>> Client::ReadDir(InodeId parent) {
  if (!default_mount_) {
    return FailWith<Result<std::vector<Dentry>>>(Status::Unavailable("no mounted volume"));
  }
  return default_mount_->ReadDir(parent);
}

sim::Task<Result<std::vector<std::pair<Dentry, Inode>>>> Client::ReadDirPlus(InodeId parent) {
  if (!default_mount_) {
    return FailWith<Result<std::vector<std::pair<Dentry, Inode>>>>(
        Status::Unavailable("no mounted volume"));
  }
  return default_mount_->ReadDirPlus(parent);
}

sim::Task<Status> Client::Open(InodeId ino) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Open(ino);
}

sim::Task<Status> Client::Close(InodeId ino) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Close(ino);
}

sim::Task<Status> Client::Write(InodeId ino, uint64_t offset, Buffer data) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Write(ino, offset, std::move(data));
}

sim::Task<Result<Buffer>> Client::Read(InodeId ino, uint64_t offset, uint64_t len) {
  if (!default_mount_) return FailWith<Result<Buffer>>(Status::Unavailable("no mounted volume"));
  return default_mount_->Read(ino, offset, len);
}

sim::Task<Status> Client::Fsync(InodeId ino) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Fsync(ino);
}

sim::Task<Status> Client::Truncate(InodeId ino, uint64_t new_size) {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->Truncate(ino, new_size);
}

sim::Task<void> Client::EvictOrphans() {
  return EvictOrphansImpl();
}

sim::Task<void> Client::EvictOrphansImpl() {
  // Snapshot the context pointers: mounts_ can gain/lose entries while this
  // coroutine is suspended, and retirement keeps every pointer alive for the
  // Client's lifetime, so the frame-local copy stays safe to walk.
  std::vector<MountContext*> targets;
  for (const auto& [name, ctx] : mounts_) targets.push_back(ctx.get());
  for (MountContext* m : targets) {
    co_await m->EvictOrphans();
  }
}

size_t Client::orphan_count() const {
  size_t n = 0;
  for (const auto& [name, ctx] : mounts_) n += ctx->orphan_count();
  return n;
}

sim::Task<Status> Client::RefreshVolume() {
  if (!default_mount_) return FailWith<Status>(Status::Unavailable("no mounted volume"));
  return default_mount_->RefreshVolume();
}

void Client::InjectPreparedFile(InodeId ino, std::vector<ExtentKey> keys, uint64_t size) {
  if (default_mount_) default_mount_->InjectPreparedFile(ino, std::move(keys), size);
}

}  // namespace cfs::client
