// A write-ahead-logged in-memory key-value store with checkpointing: the
// stand-in for RocksDB that the resource manager persists its cluster state
// to ("persisted to a key-value store such as RocksDB for backup and
// recovery", §2).
//
// Structure: ordered memtable + WAL blob + checkpoint blob in the node's
// StableStorage; IO time charged to a Disk. Atomic multi-key updates go
// through WriteBatch. After `checkpoint_threshold` WAL records the store
// writes a full checkpoint and truncates the WAL (bounded recovery time,
// mirroring log compaction).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "sim/disk.h"
#include "sim/network.h"
#include "sim/task.h"

namespace cfs::kv {

/// An atomic group of Put/Delete operations.
class WriteBatch {
 public:
  void Put(std::string key, std::string value) {
    ops_.push_back({OpType::kPut, std::move(key), std::move(value)});
  }
  void Delete(std::string key) {
    ops_.push_back({OpType::kDelete, std::move(key), ""});
  }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class KvStore;
  enum class OpType : uint8_t { kPut = 1, kDelete = 2 };
  struct Op {
    OpType type;
    std::string key;
    std::string value;
  };
  std::vector<Op> ops_;
};

struct KvOptions {
  /// Checkpoint and truncate the WAL after this many logged records.
  uint64_t checkpoint_threshold = 8192;
};

class KvStore {
 public:
  KvStore(sim::StableStorage* storage, sim::Disk* disk, std::string name,
          const KvOptions& opts = {})
      : storage_(storage), disk_(disk), name_(std::move(name)), opts_(opts) {}

  /// Recover from checkpoint + WAL. Must be called before any access.
  sim::Task<Status> Open();

  sim::Task<Status> Put(std::string key, std::string value);
  sim::Task<Status> Delete(std::string key);
  /// Apply a batch atomically: one WAL record, all-or-nothing on recovery.
  sim::Task<Status> Write(WriteBatch batch);

  bool Get(const std::string& key, std::string* value) const;
  bool Has(const std::string& key) const { return mem_.count(key) > 0; }

  /// All pairs whose key starts with `prefix`, in key order.
  std::vector<std::pair<std::string, std::string>> Scan(const std::string& prefix) const;

  /// Force a checkpoint now.
  sim::Task<Status> Checkpoint();

  size_t size() const { return mem_.size(); }
  uint64_t wal_records() const { return wal_records_; }
  uint64_t checkpoints_taken() const { return checkpoints_; }

 private:
  std::string WalKey() const { return "kv/" + name_ + "/wal"; }
  std::string CkptKey() const { return "kv/" + name_ + "/ckpt"; }

  void ApplyBatch(const WriteBatch& batch);
  static void EncodeBatch(Encoder* enc, const WriteBatch& batch);
  static Status DecodeBatch(Decoder* dec, WriteBatch* batch);

  sim::StableStorage* storage_;
  sim::Disk* disk_;
  std::string name_;
  KvOptions opts_;
  std::map<std::string, std::string> mem_;
  uint64_t wal_records_ = 0;
  uint64_t checkpoints_ = 0;
  bool opened_ = false;
  bool checkpointing_ = false;
};

}  // namespace cfs::kv
