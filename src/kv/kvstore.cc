#include "kv/kvstore.h"

namespace cfs::kv {

void KvStore::EncodeBatch(Encoder* enc, const WriteBatch& batch) {
  enc->PutVarint(batch.ops_.size());
  for (const auto& op : batch.ops_) {
    enc->PutU8(static_cast<uint8_t>(op.type));
    enc->PutString(op.key);
    enc->PutString(op.value);
  }
}

Status KvStore::DecodeBatch(Decoder* dec, WriteBatch* batch) {
  uint64_t n;
  CFS_RETURN_IF_ERROR(dec->GetVarint(&n));
  for (uint64_t i = 0; i < n; i++) {
    uint8_t type;
    std::string key, value;
    CFS_RETURN_IF_ERROR(dec->GetU8(&type));
    CFS_RETURN_IF_ERROR(dec->GetString(&key));
    CFS_RETURN_IF_ERROR(dec->GetString(&value));
    if (type == static_cast<uint8_t>(WriteBatch::OpType::kPut)) {
      batch->Put(std::move(key), std::move(value));
    } else if (type == static_cast<uint8_t>(WriteBatch::OpType::kDelete)) {
      batch->Delete(std::move(key));
    } else {
      return Status::Corruption("bad batch op type");
    }
  }
  return Status::OK();
}

void KvStore::ApplyBatch(const WriteBatch& batch) {
  for (const auto& op : batch.ops_) {
    if (op.type == WriteBatch::OpType::kPut) {
      mem_[op.key] = op.value;
    } else {
      mem_.erase(op.key);
    }
  }
}

sim::Task<Status> KvStore::Open() {
  mem_.clear();
  wal_records_ = 0;
  std::string ckpt;
  if (storage_->Get(CkptKey(), &ckpt)) {
    Decoder dec(ckpt);
    uint64_t n;
    CFS_CO_RETURN_IF_ERROR(dec.GetVarint(&n));
    for (uint64_t i = 0; i < n; i++) {
      std::string k, v;
      CFS_CO_RETURN_IF_ERROR(dec.GetString(&k));
      CFS_CO_RETURN_IF_ERROR(dec.GetString(&v));
      mem_.emplace(std::move(k), std::move(v));
    }
  }
  std::string wal;
  if (storage_->Get(WalKey(), &wal)) {
    Decoder dec(wal);
    while (!dec.Done()) {
      WriteBatch batch;
      CFS_CO_RETURN_IF_ERROR(DecodeBatch(&dec, &batch));
      ApplyBatch(batch);
      wal_records_++;
    }
  }
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Read(ckpt.size() + wal.size() + 64));
  opened_ = true;
  co_return Status::OK();
}

sim::Task<Status> KvStore::Put(std::string key, std::string value) {
  WriteBatch b;
  b.Put(std::move(key), std::move(value));
  co_return co_await Write(std::move(b));
}

sim::Task<Status> KvStore::Delete(std::string key) {
  WriteBatch b;
  b.Delete(std::move(key));
  co_return co_await Write(std::move(b));
}

sim::Task<Status> KvStore::Write(WriteBatch batch) {
  if (!opened_) co_return Status::InvalidArgument("kvstore not opened");
  if (batch.empty()) co_return Status::OK();
  // Mutate memtable and WAL synchronously (single-threaded simulation),
  // charge the disk write afterwards.
  Encoder enc;
  EncodeBatch(&enc, batch);
  storage_->Append(WalKey(), enc.data());
  ApplyBatch(batch);
  wal_records_++;
  CFS_CO_RETURN_IF_ERROR(co_await disk_->Write(enc.size()));
  if (wal_records_ >= opts_.checkpoint_threshold && !checkpointing_) {
    CFS_CO_RETURN_IF_ERROR(co_await Checkpoint());
  }
  co_return Status::OK();
}

bool KvStore::Get(const std::string& key, std::string* value) const {
  auto it = mem_.find(key);
  if (it == mem_.end()) return false;
  *value = it->second;
  return true;
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = mem_.lower_bound(prefix); it != mem_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(*it);
  }
  return out;
}

sim::Task<Status> KvStore::Checkpoint() {
  checkpointing_ = true;
  Encoder enc;
  enc.PutVarint(mem_.size());
  for (const auto& [k, v] : mem_) {
    enc.PutString(k);
    enc.PutString(v);
  }
  size_t bytes = enc.size();
  storage_->Put(CkptKey(), enc.Take());
  storage_->Delete(WalKey());
  wal_records_ = 0;
  checkpoints_++;
  Status st = co_await disk_->Write(bytes);
  checkpointing_ = false;
  co_return st;
}

}  // namespace cfs::kv
