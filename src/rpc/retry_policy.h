// RetryPolicy: the one attempt budget and backoff schedule shared by every
// retrying RPC path in the system. This replaces the seed's per-call-site
// bounds (`max_retries + 2`, `max_retries + masters_.size()`, a separate
// timeout-only counter...) with a single documented rule:
//
//   * a logical call gets `max_attempts` RPC legs total (first try included);
//   * any failed leg — network timeout, hintless NotLeader — consumes one
//     attempt and is followed by capped exponential backoff with
//     deterministic seeded jitter;
//   * a NotLeader response that carries a leader hint also consumes an
//     attempt but retries immediately (the redirect is new information, so
//     waiting would only add latency);
//   * when the budget is exhausted the last leg's error is returned.
//
// Two policy classes cover the system: Control() for metadata/resource-
// manager traffic (more attempts, election-scale backoff) and Data() for
// the data path (tighter schedule; failed appends fall back to the §2.2.5
// suffix-resend machinery instead of long retries).
//
// All backoff sleeps run on the sim scheduler's virtual clock and all jitter
// draws come from the scheduler's seeded Rng, so the determinism auditor's
// same-seed trace-hash contract holds with backoff in play.
#pragma once

#include <algorithm>

#include "common/units.h"
#include "sim/scheduler.h"
#include "sim/task.h"

namespace cfs::rpc {

struct RetryPolicy {
  /// Total RPC legs per logical call, first attempt included.
  int max_attempts = 5;
  /// Per-leg RPC timeout (clamped further by an active Deadline).
  SimDuration rpc_timeout = 1 * kSec;
  /// Backoff before retry r (0-based) is drawn from
  /// [d/2, d] where d = min(backoff_cap, backoff_base << r).
  SimDuration backoff_base = 20 * kMsec;
  SimDuration backoff_cap = 400 * kMsec;

  /// Control-plane class: master/meta RPCs and placement loops. The budget
  /// and cap are sized so a full schedule (~50+100+200+400ms nominal) rides
  /// out a raft election (250–500ms timeouts) that a leader crash triggers.
  static RetryPolicy Control() {
    RetryPolicy p;
    p.max_attempts = 6;
    p.backoff_base = 50 * kMsec;
    p.backoff_cap = 500 * kMsec;
    return p;
  }

  /// Data-path class: extent reads/writes against a partition's raft leader.
  static RetryPolicy Data() {
    RetryPolicy p;
    p.max_attempts = 5;
    p.backoff_base = 20 * kMsec;
    p.backoff_cap = 400 * kMsec;
    return p;
  }

  /// Raft replication pump: the pump itself decides when to stop (leadership
  /// or generation change), so the attempt budget is effectively unbounded.
  /// Base matches the old fixed 10 ms failure sleep; the cap stays well
  /// under the election timeout so a recovered follower is re-engaged before
  /// anyone considers the leader dead.
  static RetryPolicy RaftPump() {
    RetryPolicy p;
    p.max_attempts = 1 << 30;
    p.backoff_base = 10 * kMsec;
    p.backoff_cap = 160 * kMsec;
    return p;
  }
};

/// Per-logical-call retry driver: owns the attempt counter and the backoff
/// schedule. Also used directly by higher-level placement loops (pick a
/// partition, try once, pick another) so those route through the same
/// backoff clock as the stubs.
class Backoff {
 public:
  Backoff(sim::Scheduler* sched, const RetryPolicy& policy)
      : sched_(sched), policy_(policy) {}

  /// Consume one attempt; false when the budget is exhausted. Call once per
  /// loop iteration: `while (backoff.NextAttempt()) { ... }`.
  bool NextAttempt() {
    if (next_attempt_ >= policy_.max_attempts) return false;
    next_attempt_++;
    return true;
  }

  /// 0-based index of the attempt NextAttempt() last granted.
  int attempt() const { return next_attempt_ - 1; }
  bool exhausted() const { return next_attempt_ >= policy_.max_attempts; }

  /// Restart the schedule after a success (long-lived drivers like the raft
  /// replication pump treat each failure streak as its own schedule).
  void Reset() { next_attempt_ = 0; }

  /// The jittered delay for the current retry: nominal d doubles from
  /// backoff_base up to backoff_cap, and the sleep is drawn uniformly from
  /// [d/2, d] ("equal jitter") off the scheduler's seeded Rng.
  SimDuration NextDelay() {
    int r = std::max(0, attempt());
    SimDuration d = policy_.backoff_base;
    for (int i = 0; i < r && d < policy_.backoff_cap; i++) d *= 2;
    d = std::min(d, policy_.backoff_cap);
    if (d <= 1) return d;
    return d / 2 + static_cast<SimDuration>(sched_->rng().Uniform(d - d / 2 + 1));
  }

  /// Sleep the current backoff delay on the virtual clock.
  sim::Task<void> Delay() { return DelayImpl(NextDelay()); }

 private:
  sim::Task<void> DelayImpl(SimDuration d) { co_await sim::SleepFor{*sched_, d}; }

  sim::Scheduler* sched_;
  RetryPolicy policy_;
  int next_attempt_ = 0;
};

}  // namespace cfs::rpc
