#include "rpc/router.h"

#include <algorithm>
#include <cstdlib>

namespace cfs::rpc {

void Router::InstallViews(std::vector<master::MetaPartitionView> meta,
                          std::vector<master::DataPartitionView> data) {
  meta_views_ = std::move(meta);
  data_views_ = std::move(data);
  // Re-apply local unwritable marks: a refreshed view reflects the master's
  // (possibly stale) idea of fullness, not what this client just observed.
  const SimTime now = sched_->Now();
  for (auto& v : meta_views_) {
    auto it = unwritable_until_.find(v.pid);
    if (it != unwritable_until_.end() && it->second > now) v.writable = false;
  }
  for (auto& v : data_views_) {
    auto it = unwritable_until_.find(v.pid);
    if (it != unwritable_until_.end() && it->second > now) v.writable = false;
  }
}

void Router::UpsertDataPartition(master::DataPartitionView view) {
  for (auto& v : data_views_) {
    if (v.pid == view.pid) {
      // Keep the cached raft leader only if it is still a replica.
      auto it = data_leaders_.find(view.pid);
      if (it != data_leaders_.end() &&
          std::find(view.replicas.begin(), view.replicas.end(), it->second) ==
              view.replicas.end()) {
        data_leaders_.erase(it);
      }
      v = std::move(view);
      return;
    }
  }
  data_views_.push_back(std::move(view));
}

master::MetaPartitionView* Router::MetaView(PartitionId pid) {
  for (auto& v : meta_views_) {
    if (v.pid == pid) return &v;
  }
  return nullptr;
}

master::MetaPartitionView* Router::MetaViewForInode(InodeId ino) {
  for (auto& v : meta_views_) {
    if (ino >= v.start && ino <= v.end) return &v;
  }
  return nullptr;
}

master::DataPartitionView* Router::DataView(PartitionId pid) {
  for (auto& v : data_views_) {
    if (v.pid == pid) return &v;
  }
  return nullptr;
}

bool Router::HasView(bool is_meta, PartitionId pid) {
  return is_meta ? MetaView(pid) != nullptr : DataView(pid) != nullptr;
}

master::MetaPartitionView* Router::PickWritableMetaView() {
  // "The client simply selects the meta and data partitions in a random
  // fashion from the ones allocated by the resource manager" (§2.3.1).
  std::vector<master::MetaPartitionView*> writable;
  const SimTime now = sched_->Now();
  for (auto& v : meta_views_) {
    auto it = unwritable_until_.find(v.pid);
    if (it != unwritable_until_.end() && it->second > now) continue;
    if (v.writable) writable.push_back(&v);
  }
  if (writable.empty()) return nullptr;
  return writable[sched_->rng().Uniform(writable.size())];
}

master::DataPartitionView* Router::PickWritableDataView(PartitionId avoid) {
  std::vector<master::DataPartitionView*> writable;
  master::DataPartitionView* avoided = nullptr;
  const SimTime now = sched_->Now();
  for (auto& v : data_views_) {
    auto it = unwritable_until_.find(v.pid);
    if (it != unwritable_until_.end() && it->second > now) continue;
    if (!v.writable) continue;
    if (v.pid == avoid) {
      avoided = &v;
      continue;
    }
    writable.push_back(&v);
  }
  if (writable.empty()) return avoided;
  return writable[sched_->rng().Uniform(writable.size())];
}

void Router::MarkUnwritable(PartitionId pid, SimTime until) {
  unwritable_until_[pid] = until;
  if (auto* mv = MetaView(pid)) mv->writable = false;
  if (auto* dv = DataView(pid)) dv->writable = false;
}

sim::NodeId Router::MasterTarget(int attempt) const {
  if (master_leader_ != sim::kInvalidNode) return master_leader_;
  if (masters_.empty()) return sim::kInvalidNode;
  return masters_[static_cast<size_t>(attempt) % masters_.size()];
}

sim::NodeId Router::ParseLeaderHint(const Status& not_leader) {
  // NotLeader responses carry the current leader's node id as a decimal
  // string in the message; "0" (or empty) means "no leader elected yet".
  return static_cast<sim::NodeId>(
      std::strtoull(not_leader.message().c_str(), nullptr, 10));
}

bool Router::ApplyMasterRedirect(const Status& not_leader) {
  sim::NodeId hint = ParseLeaderHint(not_leader);
  if (hint != sim::kInvalidNode) {
    master_leader_ = hint;
    stats_.redirects++;
    return true;
  }
  master_leader_ = sim::kInvalidNode;
  return false;
}

sim::NodeId Router::PartitionTarget(bool is_meta, PartitionId pid, int attempt) {
  if (attempt > 0) {
    stats_.leader_probes++;
    if (ext_probes_) (*ext_probes_)++;
  }
  const auto& cache = is_meta ? meta_leaders_ : data_leaders_;
  auto it = cache.find(pid);
  if (it != cache.end()) {
    if (attempt == 0) {
      stats_.leader_cache_hits++;
      if (ext_cache_hits_) (*ext_cache_hits_)++;
    }
    return it->second;
  }
  if (is_meta) {
    master::MetaPartitionView* v = MetaView(pid);
    if (!v || v->replicas.empty()) return sim::kInvalidNode;
    if (v->leader_hint != sim::kInvalidNode) return v->leader_hint;
    return v->replicas[static_cast<size_t>(attempt) % v->replicas.size()];
  }
  master::DataPartitionView* v = DataView(pid);
  if (!v || v->replicas.empty()) return sim::kInvalidNode;
  if (v->raft_leader_hint != sim::kInvalidNode) return v->raft_leader_hint;
  return v->replicas[static_cast<size_t>(attempt) % v->replicas.size()];
}

void Router::LegFailed(bool is_meta, PartitionId pid, sim::NodeId target) {
  auto& cache = is_meta ? meta_leaders_ : data_leaders_;
  auto it = cache.find(pid);
  if (it != cache.end() && it->second == target) {
    cache.erase(it);
    stats_.invalidations++;
  }
  if (is_meta) {
    if (auto* v = MetaView(pid); v && v->leader_hint == target) {
      v->leader_hint = sim::kInvalidNode;
    }
  } else {
    if (auto* v = DataView(pid); v && v->raft_leader_hint == target) {
      v->raft_leader_hint = sim::kInvalidNode;
    }
  }
}

bool Router::ApplyRedirect(bool is_meta, PartitionId pid, const Status& not_leader) {
  auto& cache = is_meta ? meta_leaders_ : data_leaders_;
  sim::NodeId hint = ParseLeaderHint(not_leader);
  if (hint != sim::kInvalidNode) {
    cache[pid] = hint;
    stats_.redirects++;
    return true;
  }
  // Election in progress: forget the stale leader and let the caller back
  // off before the next probe.
  cache.erase(pid);
  return false;
}

void Router::Confirmed(bool is_meta, PartitionId pid, sim::NodeId target) {
  (is_meta ? meta_leaders_ : data_leaders_)[pid] = target;
}

sim::NodeId Router::CachedLeader(bool is_meta, PartitionId pid) const {
  const auto& cache = is_meta ? meta_leaders_ : data_leaders_;
  auto it = cache.find(pid);
  return it == cache.end() ? sim::kInvalidNode : it->second;
}

}  // namespace cfs::rpc
