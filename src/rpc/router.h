// Router: leader/replica-aware target selection for partitioned services
// and the master group. Owns what the seed duplicated between the CFS
// client, the master admin paths and the harness GC path: the cached
// partition views, the per-partition leader caches (§2.4: "by caching the
// last identified leader, the client can have [a] minimized number of
// retries in most cases"), the not-leader-redirect hint parsing, and the
// partition writability marks used by placement.
//
// Probe policy per logical call: attempt 0 goes to the cached leader if one
// is known, else the view's leader hint, else replica[0]; later attempts
// round-robin the replica list. A failed leg against the cached leader
// invalidates the cache exactly once (stats().invalidations); a NotLeader
// response carrying a hint repoints the cache (stats().redirects) and the
// stub retries the hinted node immediately.
#pragma once

#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "master/messages.h"
#include "sim/network.h"

namespace cfs::rpc {

using meta::InodeId;
using meta::PartitionId;

struct RouterStats {
  uint64_t leader_cache_hits = 0;  // attempt-0 targets served from the cache
  uint64_t leader_probes = 0;      // legs beyond the first of a logical call
  uint64_t invalidations = 0;      // cached leaders dropped after a failed leg
  uint64_t redirects = 0;          // NotLeader hints applied to the cache
};

class Router {
 public:
  Router(sim::Scheduler* sched, std::vector<sim::NodeId> masters)
      : sched_(sched), masters_(std::move(masters)) {}

  // --- Views (installed from GetVolumeResp or upserted piecemeal) ---------

  void InstallViews(std::vector<master::MetaPartitionView> meta,
                    std::vector<master::DataPartitionView> data);
  /// Add or replace a single data partition view (the harness GC path knows
  /// replica sets from the master's replicated state, not from a volume).
  void UpsertDataPartition(master::DataPartitionView view);

  master::MetaPartitionView* MetaView(PartitionId pid);
  master::MetaPartitionView* MetaViewForInode(InodeId ino);
  master::DataPartitionView* DataView(PartitionId pid);
  bool HasView(bool is_meta, PartitionId pid);

  /// Random writable partition for placement (§2.3.1), skipping partitions
  /// marked unwritable. `avoid` (data only) is the partition a windowed
  /// append just failed on; reused only as the last resort (§2.2.5).
  master::MetaPartitionView* PickWritableMetaView();
  master::DataPartitionView* PickWritableDataView(PartitionId avoid = 0);

  /// NoSpace observed: skip this partition until `until` (survives view
  /// refreshes, which would otherwise resurrect it before the master learns
  /// it is full).
  void MarkUnwritable(PartitionId pid, SimTime until);

  // --- Master-group routing ----------------------------------------------

  sim::NodeId MasterTarget(int attempt) const;
  void MasterLegFailed() { master_leader_ = sim::kInvalidNode; }
  /// Apply a master NotLeader redirect; true when the status carried a hint.
  bool ApplyMasterRedirect(const Status& not_leader);
  void MasterConfirmed(sim::NodeId node) { master_leader_ = node; }
  sim::NodeId cached_master_leader() const { return master_leader_; }

  // --- Partition-leader routing (is_meta selects the table) ---------------

  /// Target for the given attempt of a logical call; kInvalidNode when no
  /// view (or an empty replica set) is known.
  sim::NodeId PartitionTarget(bool is_meta, PartitionId pid, int attempt);
  /// A leg against `target` failed at the network level: drop the cached
  /// leader / view hint if they pointed there.
  void LegFailed(bool is_meta, PartitionId pid, sim::NodeId target);
  /// Apply a NotLeader redirect; true when the status carried a hint (the
  /// caller should retry immediately), false when the group has no leader
  /// yet (election in progress — back off).
  bool ApplyRedirect(bool is_meta, PartitionId pid, const Status& not_leader);
  void Confirmed(bool is_meta, PartitionId pid, sim::NodeId target);
  sim::NodeId CachedLeader(bool is_meta, PartitionId pid) const;

  const RouterStats& stats() const { return stats_; }

  /// Mirror cache-hit / probe counts into external counters (the client's
  /// ClientStats keeps its historical fields live this way).
  void BindCounters(uint64_t* cache_hits, uint64_t* probes) {
    ext_cache_hits_ = cache_hits;
    ext_probes_ = probes;
  }

 private:
  static sim::NodeId ParseLeaderHint(const Status& not_leader);

  sim::Scheduler* sched_;
  std::vector<sim::NodeId> masters_;
  sim::NodeId master_leader_ = sim::kInvalidNode;

  std::vector<master::MetaPartitionView> meta_views_;
  std::vector<master::DataPartitionView> data_views_;
  // Flat vectors: consulted on every routed RPC, tens of entries at most.
  FlatMap<PartitionId, sim::NodeId> meta_leaders_;
  FlatMap<PartitionId, sim::NodeId> data_leaders_;
  FlatMap<PartitionId, SimTime> unwritable_until_;

  RouterStats stats_;
  uint64_t* ext_cache_hits_ = nullptr;
  uint64_t* ext_probes_ = nullptr;
};

}  // namespace cfs::rpc
