#include "rpc/metrics.h"

namespace cfs::rpc {

std::string_view OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kOk: return "ok";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kNotLeader: return "not_leader";
    case Outcome::kRetryExhausted: return "retry_exhausted";
    case Outcome::kDeadlineExceeded: return "deadline_exceeded";
    default: return "unknown";
  }
}

void RpcMetrics::MergeFrom(const RpcMetrics& other) {
  for (int i = 0; i < static_cast<int>(Outcome::kNumOutcomes); i++) {
    outcomes[i] += other.outcomes[i];
  }
  retries += other.retries;
  latency.MergeFrom(other.latency);
}

void MetricRegistry::RecordLeg(std::string_view rpc, Outcome o, SimDuration latency_usec) {
  // Transparent find first: the steady-state hit path must not materialize a
  // std::string per leg (this runs once per RPC in the cluster).
  auto it = by_rpc_.find(rpc);
  RpcMetrics& m = it != by_rpc_.end() ? it->second : by_rpc_[std::string(rpc)];
  m.outcomes[static_cast<int>(o)]++;
  m.latency.Add(latency_usec);
}

void MetricRegistry::RecordRetry(std::string_view rpc) {
  auto it = by_rpc_.find(rpc);
  RpcMetrics& m = it != by_rpc_.end() ? it->second : by_rpc_[std::string(rpc)];
  m.retries++;
}

void MetricRegistry::RecordCallOutcome(std::string_view rpc, Outcome o) {
  by_rpc_[std::string(rpc)].outcomes[static_cast<int>(o)]++;
}

const RpcMetrics* MetricRegistry::Find(std::string_view rpc) const {
  auto it = by_rpc_.find(rpc);
  return it == by_rpc_.end() ? nullptr : &it->second;
}

uint64_t MetricRegistry::TotalLegs() const {
  uint64_t n = 0;
  for (const auto& [name, m] : by_rpc_) n += m.latency.count;
  return n;
}

uint64_t MetricRegistry::TotalCount(Outcome o) const {
  uint64_t n = 0;
  for (const auto& [name, m] : by_rpc_) n += m.Count(o);
  return n;
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [name, m] : other.by_rpc_) by_rpc_[name].MergeFrom(m);
}

std::string MetricRegistry::DumpJson() const {
  std::string out = "{";
  bool first_rpc = true;
  for (const auto& [name, m] : by_rpc_) {
    if (!first_rpc) out += ",";
    first_rpc = false;
    out += "\"" + name + "\":{";
    for (int i = 0; i < static_cast<int>(Outcome::kNumOutcomes); i++) {
      out += "\"" + std::string(OutcomeName(static_cast<Outcome>(i))) +
             "\":" + std::to_string(m.outcomes[i]) + ",";
    }
    out += "\"retries\":" + std::to_string(m.retries) + ",";
    out += "\"latency\":{\"count\":" + std::to_string(m.latency.count) +
           ",\"sum_usec\":" + std::to_string(m.latency.sum_usec) +
           ",\"max_usec\":" + std::to_string(m.latency.max_usec) + ",\"buckets\":[";
    for (int i = 0; i <= LatencyHistogram::kNumBounds; i++) {
      if (i) out += ",";
      out += std::to_string(m.latency.buckets[i]);
    }
    out += "]}}";
  }
  out += "}";
  return out;
}

void MetricRegistry::ExportTo(obs::Registry* out, std::string_view prefix) const {
  for (const auto& [name, m] : by_rpc_) {
    const std::string base = std::string(prefix) + name;
    for (int i = 0; i < static_cast<int>(Outcome::kNumOutcomes); i++) {
      if (m.outcomes[i]) {
        out->Add(base + "." + std::string(OutcomeName(static_cast<Outcome>(i))),
                 m.outcomes[i]);
      }
    }
    if (m.retries) out->Add(base + ".retries", m.retries);
    out->MergeHistogram(base + ".latency_usec", m.latency);
  }
}

}  // namespace cfs::rpc
