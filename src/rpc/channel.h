// Channel: the one place in the codebase that issues a raw Network::Call.
// Every leg is metered into a MetricRegistry (outcome + latency, keyed by
// the request's kRpcName). Call sites outside src/rpc/ must go through a
// Channel or a service stub — tools/lint.py rule R4 (raw-rpc) enforces it.
#pragma once

#include <functional>
#include <typeinfo>
#include <utility>

#include "common/status.h"
#include "rpc/metrics.h"
#include "sim/network.h"

namespace cfs::rpc {

/// Request structs name themselves for the metric key; anything without a
/// kRpcName falls back to the (mangled, but stable-within-a-build) RTTI name.
template <typename T>
concept HasRpcName = sim::HasMsgName<T>;

template <typename T>
const char* RpcNameOf() {
  return sim::MsgNameOf<T>();
}

/// Responses carrying an application-level Status get NotLeader legs metered
/// separately; protocol responses without one (the raft wire messages encode
/// rejection in protocol fields like `granted`/`success`) meter as plain Ok.
template <typename T>
concept HasStatusField = requires(const T& t) {
  { t.status.IsNotLeader() } -> std::convertible_to<bool>;
};

/// Requests carrying a tenant label get it stamped from the channel's bound
/// tenant (per-mount channels bind their volume id after Mount resolves it),
/// the same way trace contexts propagate. Explicit labels win; unlabeled
/// requests on an unbound channel stay 0.
template <typename T>
concept HasTenantField = requires(T& t) {
  { t.tenant } -> std::convertible_to<uint64_t>;
};

class Channel {
 public:
  Channel(sim::Network* net, MetricRegistry* metrics) : net_(net), metrics_(metrics) {}

  sim::Network* net() const { return net_; }
  MetricRegistry* metrics() const { return metrics_; }

  /// Bind a tenant label (= VolumeId); every subsequent request whose struct
  /// has a `tenant` field and hasn't set one gets it stamped on send.
  void set_tenant(uint64_t tenant) { tenant_ = tenant; }
  uint64_t tenant() const { return tenant_; }

  /// Passive per-leg hook: (destination, ok, latency, trace id). Invoked
  /// synchronously right after the leg is metered — pure observation, never
  /// a scheduler event. Health telemetry taps this to score peers.
  using PeerObserver = std::function<void(sim::NodeId, bool, SimDuration, uint64_t)>;
  void set_peer_observer(PeerObserver obs) { peer_observer_ = std::move(obs); }

  /// One metered RPC leg; no retries, no routing. Plain function forwarding
  /// by value into the Impl coroutine (the repo-wide gcc 12 braced-init
  /// workaround; see sim/network.h and client/client.h).
  ///
  /// Traced callers pass `parent`: the leg runs under an "rpc:<name>" span
  /// whose context is stamped onto the request (when the request struct has
  /// a `trace` field), so the receiving host's handler span chains to it.
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> Unary(sim::NodeId from, sim::NodeId to, Req req,
                                SimDuration timeout = sim::kDefaultRpcTimeout,
                                obs::TraceContext parent = {}) {
    return UnaryImpl<Req, Resp>(from, to, std::move(req), timeout, parent);
  }

 private:
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> UnaryImpl(sim::NodeId from, sim::NodeId to, Req req,
                                    SimDuration timeout, obs::TraceContext parent) {
    sim::Scheduler* sched = net_->scheduler();
    const char* name = RpcNameOf<Req>();
    obs::Tracer& tracer = sched->tracer();
    obs::SpanRef leg;
    if (tracer.enabled() && parent.valid()) {
      // Interned per-type label (sim/msg_type.h): no per-call concatenation.
      leg = tracer.BeginSpan(sim::MsgSpanRpc<Req>(), parent, from);
    }
    if constexpr (sim::HasTraceContext<Req>) {
      if (leg.valid()) req.trace = leg.ctx;
    }
    if constexpr (HasTenantField<Req>) {
      if (req.tenant == 0 && tenant_ != 0) req.tenant = tenant_;
    }
    const SimTime start = sched->Now();
    auto r = co_await net_->Call<Req, Resp>(from, to, std::move(req), timeout);  // lint:allow(raw-rpc)
    const SimDuration latency = sched->Now() - start;
    if (!r.ok()) {
      metrics_->RecordLeg(name, Outcome::kTimeout, latency);
      tracer.Note(leg, "ok", 0);
    } else if constexpr (HasStatusField<Resp>) {
      if (r->status.IsNotLeader()) {
        metrics_->RecordLeg(name, Outcome::kNotLeader, latency);
        tracer.Note(leg, "not_leader", 1);
      } else {
        metrics_->RecordLeg(name, Outcome::kOk, latency);
      }
    } else {
      metrics_->RecordLeg(name, Outcome::kOk, latency);
    }
    if (peer_observer_) peer_observer_(to, r.ok(), latency, parent.trace_id);
    tracer.End(leg);
    co_return std::move(r);
  }

  sim::Network* net_;
  MetricRegistry* metrics_;
  uint64_t tenant_ = 0;
  PeerObserver peer_observer_;
};

}  // namespace cfs::rpc
