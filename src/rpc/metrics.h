// Per-RPC observability for the service layer: outcome counters and
// fixed-bucket latency histograms keyed by request type. Every leg issued
// through rpc::Channel records (rpc name, outcome, latency); the retrying
// stubs additionally record retries and logical-call terminations
// (retry-exhausted, deadline-exceeded). Registries are plain value state —
// std::map keyed by name so dumps iterate deterministically — and are
// dumpable as JSON from benches and tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/units.h"
#include "obs/metrics.h"

namespace cfs::rpc {

/// Outcome of one RPC leg (first three) or of a whole logical call (last
/// two). kOk means the response was delivered — application errors other
/// than NotLeader ride inside the response status and are the caller's
/// business, not the transport's.
enum class Outcome : int {
  kOk = 0,
  kTimeout,            ///< network-level failure (lost, dead node, timed out)
  kNotLeader,          ///< response said "not leader"; routing retries
  kRetryExhausted,     ///< logical call ran out of its attempt budget
  kDeadlineExceeded,   ///< logical call hit its propagated deadline
  kNumOutcomes,
};

std::string_view OutcomeName(Outcome o);

/// Fixed-bucket latency histogram; now the shared obs::Histogram (which
/// added p50/p95/p99 interpolated quantiles). The alias keeps every
/// existing rpc:: call site and test working unchanged.
using LatencyHistogram = obs::Histogram;

struct RpcMetrics {
  uint64_t outcomes[static_cast<int>(Outcome::kNumOutcomes)] = {};
  uint64_t retries = 0;  // legs beyond the first of a logical call
  LatencyHistogram latency;

  uint64_t Count(Outcome o) const { return outcomes[static_cast<int>(o)]; }
  void MergeFrom(const RpcMetrics& other);
};

class MetricRegistry {
 public:
  /// One RPC leg completed with `o` after `latency_usec` of virtual time.
  void RecordLeg(std::string_view rpc, Outcome o, SimDuration latency_usec);
  /// A retry leg is about to be issued for `rpc`.
  void RecordRetry(std::string_view rpc);
  /// A logical call terminated without a delivered success (kRetryExhausted
  /// or kDeadlineExceeded); counted, no latency sample.
  void RecordCallOutcome(std::string_view rpc, Outcome o);

  const RpcMetrics* Find(std::string_view rpc) const;
  const std::map<std::string, RpcMetrics, std::less<>>& by_rpc() const { return by_rpc_; }

  uint64_t TotalLegs() const;
  uint64_t TotalCount(Outcome o) const;

  void MergeFrom(const MetricRegistry& other);
  void Clear() { by_rpc_.clear(); }

  /// {"<rpc>":{"ok":n,...,"retries":n,"latency":{"count":n,"sum_usec":n,
  /// "max_usec":n,"buckets":[...]}},...} — stable key order (std::map).
  std::string DumpJson() const;

  /// Fold into a unified registry: counters "<prefix><rpc>.<outcome>" and
  /// "<prefix><rpc>.retries", histogram "<prefix><rpc>.latency_usec".
  void ExportTo(obs::Registry* out, std::string_view prefix = "rpc.") const;

 private:
  std::map<std::string, RpcMetrics, std::less<>> by_rpc_;
};

}  // namespace cfs::rpc
