// Typed service stubs: call sites say WHAT they want (partition + request);
// the stub decides WHERE (Router: cached leader, hint, replica probe) and
// HOW OFTEN (RetryPolicy budget + backoff, bounded by a propagated
// Deadline), and meters every leg (MetricRegistry via Channel).
//
//   MasterService — resource-manager RPCs, probing the master replica group.
//   MetaService   — meta-partition RPCs with §2.4 leader caching and the
//                   §2.3.3 timeout-report hook.
//   DataService   — data-partition RPCs against the raft leader, plus
//                   ChainCall for chain-leader (replicas[0]) one-shots.
//
// Retry semantics (the "one uniform budget" of this layer): a logical call
// gets policy.max_attempts legs; network failures and hintless NotLeader
// responses back off before the next leg, hinted redirects retry
// immediately. On termination without success the stub records
// retry-exhausted / deadline-exceeded and, when the failure pattern looks
// like a dead partition (>= kReportAfterRpcFailures network-level failures),
// fires the timeout-report hook so the master can mark the partition
// read-only (§2.3.3).
//
// All public entry points are plain functions forwarding by value into *Impl
// coroutines (the repo-wide gcc 12 braced-init workaround; see client.h).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "obs/trace.h"
#include "rpc/channel.h"
#include "rpc/deadline.h"
#include "rpc/metrics.h"
#include "rpc/retry_policy.h"
#include "rpc/router.h"

namespace cfs::rpc {

struct CallOptions {
  Deadline deadline;                   // default: unbounded
  const RetryPolicy* policy = nullptr; // default: the service's policy
  obs::TraceContext trace;             // parent span for this logical call
};

/// Network-level failures on this many legs of one logical call trigger the
/// timeout-report hook (§2.3.3). One lost message is noise; a repeatedly
/// unreachable partition is reported.
inline constexpr int kReportAfterRpcFailures = 2;

/// A traced logical call runs under one "call:<rpc>" span; each leg chains
/// an "rpc:<rpc>" child under it (Channel) and retries are annotated here.
/// `span_name` is the interned "call:<name>" label (sim::MsgSpanCall<Req>()),
/// so starting a traced call performs no string concatenation.
inline obs::SpanScope BeginCallSpan(sim::Scheduler* sched, std::string_view span_name,
                                    const obs::TraceContext& parent, sim::NodeId self) {
  obs::Tracer& t = sched->tracer();
  if (t.enabled() && parent.valid()) {
    return obs::SpanScope(&t, t.BeginSpan(span_name, parent, self));
  }
  return {};
}

class MasterService {
 public:
  MasterService(sim::Network* net, sim::NodeId self, Router* router,
                MetricRegistry* metrics, RetryPolicy policy = RetryPolicy::Control())
      : channel_(net, metrics), self_(self), router_(router), policy_(policy) {}

  /// Mirror per-leg issue counts into an external counter (ClientStats).
  void set_rpc_counter(uint64_t* c) { rpc_counter_ = c; }
  /// Bind the mount's tenant label onto every outgoing request (Channel).
  void set_tenant(uint64_t tenant) { channel_.set_tenant(tenant); }
  const RetryPolicy& policy() const { return policy_; }

  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> Call(Req req, CallOptions opts = {}) {
    return CallImpl<Req, Resp>(std::move(req), opts);
  }

 private:
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> CallImpl(Req req, CallOptions opts) {
    const RetryPolicy& policy = opts.policy ? *opts.policy : policy_;
    sim::Scheduler* sched = channel_.net()->scheduler();
    obs::SpanScope call = BeginCallSpan(sched, sim::MsgSpanCall<Req>(), opts.trace, self_);
    Backoff backoff(sched, policy);
    // `last` stays OK until a leg actually fails; the timeout message is
    // built lazily at exit so the no-failure path never pays for the string.
    Status last;
    while (backoff.NextAttempt()) {
      if (opts.deadline.Expired(sched->Now())) {
        channel_.metrics()->RecordCallOutcome(RpcNameOf<Req>(), Outcome::kDeadlineExceeded);
        co_return Status::TimedOut("deadline exceeded calling master");
      }
      sim::NodeId target = router_->MasterTarget(backoff.attempt());
      if (target == sim::kInvalidNode) break;
      if (rpc_counter_) (*rpc_counter_)++;
      if (backoff.attempt() > 0) {
        channel_.metrics()->RecordRetry(RpcNameOf<Req>());
        call.Note("retry", backoff.attempt());
      }
      auto r = co_await channel_.Unary<Req, Resp>(
          self_, target, req, opts.deadline.ClampTimeout(sched->Now(), policy.rpc_timeout),
          call.ctx());
      if (!r.ok()) {
        router_->MasterLegFailed();
        last = r.status();
        co_await backoff.Delay();
        continue;
      }
      if (r->status.IsNotLeader()) {
        last = r->status;
        if (!router_->ApplyMasterRedirect(r->status)) co_await backoff.Delay();
        continue;
      }
      router_->MasterConfirmed(target);
      co_return std::move(*r);
    }
    channel_.metrics()->RecordCallOutcome(RpcNameOf<Req>(), Outcome::kRetryExhausted);
    if (last.ok()) last = Status::TimedOut("no master leader reachable");
    co_return last;
  }

  Channel channel_;
  sim::NodeId self_;
  Router* router_;
  RetryPolicy policy_;
  uint64_t* rpc_counter_ = nullptr;
};

/// Common engine of MetaService / DataService: leader-probing partition
/// calls with refresh + timeout-report hooks.
class PartitionService {
 public:
  using RefreshFn = std::function<sim::Task<Status>()>;
  using ReportFn = std::function<sim::Task<Status>(PartitionId)>;

  /// Re-fetch partition views when a pid has no view (non-mounted callers
  /// leave this unset and pre-populate the Router instead).
  void set_refresh(RefreshFn f) { refresh_ = std::move(f); }
  /// §2.3.3 exception handling: invoked when a logical call dies with
  /// repeated network-level failures, so the owner can report the partition
  /// to the master.
  void set_timeout_report(ReportFn f) { report_ = std::move(f); }
  void set_rpc_counter(uint64_t* c) { rpc_counter_ = c; }
  /// Bind the mount's tenant label onto every outgoing request (Channel).
  void set_tenant(uint64_t tenant) { channel_.set_tenant(tenant); }
  const RetryPolicy& policy() const { return policy_; }

 protected:
  PartitionService(bool is_meta, sim::Network* net, sim::NodeId self, Router* router,
                   MetricRegistry* metrics, RetryPolicy policy)
      : channel_(net, metrics),
        self_(self),
        router_(router),
        policy_(policy),
        is_meta_(is_meta) {}

  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> PartitionCallImpl(PartitionId pid, Req req, CallOptions opts) {
    const RetryPolicy& policy = opts.policy ? *opts.policy : policy_;
    sim::Scheduler* sched = channel_.net()->scheduler();
    obs::SpanScope call = BeginCallSpan(sched, sim::MsgSpanCall<Req>(), opts.trace, self_);
    CFS_CO_RETURN_IF_ERROR((co_await EnsureView(pid)));
    Backoff backoff(sched, policy);
    int rpc_failures = 0;
    // Lazily materialized on exit (see MasterService::CallImpl): the
    // PartitionName concatenation only runs when the call actually fails.
    Status last;
    while (backoff.NextAttempt()) {
      if (opts.deadline.Expired(sched->Now())) {
        channel_.metrics()->RecordCallOutcome(RpcNameOf<Req>(), Outcome::kDeadlineExceeded);
        MaybeReport(pid, rpc_failures);
        co_return Status::TimedOut("deadline exceeded on " + PartitionName(pid));
      }
      sim::NodeId target = router_->PartitionTarget(is_meta_, pid, backoff.attempt());
      if (target == sim::kInvalidNode) break;
      if (rpc_counter_) (*rpc_counter_)++;
      if (backoff.attempt() > 0) {
        channel_.metrics()->RecordRetry(RpcNameOf<Req>());
        call.Note("retry", backoff.attempt());
      }
      auto r = co_await channel_.Unary<Req, Resp>(
          self_, target, req, opts.deadline.ClampTimeout(sched->Now(), policy.rpc_timeout),
          call.ctx());
      if (!r.ok()) {
        rpc_failures++;
        router_->LegFailed(is_meta_, pid, target);
        last = r.status();
        co_await backoff.Delay();
        continue;
      }
      if (r->status.IsNotLeader()) {
        last = r->status;
        if (!router_->ApplyRedirect(is_meta_, pid, r->status)) co_await backoff.Delay();
        continue;
      }
      router_->Confirmed(is_meta_, pid, target);
      co_return std::move(*r);
    }
    channel_.metrics()->RecordCallOutcome(RpcNameOf<Req>(), Outcome::kRetryExhausted);
    MaybeReport(pid, rpc_failures);
    if (last.ok()) last = Status::TimedOut(PartitionName(pid) + " unreachable");
    co_return last;
  }

  sim::Task<Status> EnsureView(PartitionId pid) {
    return EnsureViewImpl(pid);
  }

  std::string PartitionName(PartitionId pid) const {
    return std::string(is_meta_ ? "meta" : "data") + " partition " + std::to_string(pid);
  }

  Channel channel_;
  sim::NodeId self_;
  Router* router_;
  RetryPolicy policy_;
  bool is_meta_;
  RefreshFn refresh_;
  ReportFn report_;
  uint64_t* rpc_counter_ = nullptr;

 private:
  sim::Task<Status> EnsureViewImpl(PartitionId pid) {
    if (router_->HasView(is_meta_, pid)) co_return Status::OK();
    if (refresh_) (void)co_await refresh_();
    if (router_->HasView(is_meta_, pid)) co_return Status::OK();
    co_return Status::NotFound(PartitionName(pid));
  }

  /// Fire-and-forget: the report is an asynchronous exception signal to the
  /// master, and must not hold the failing call past its deadline.
  void MaybeReport(PartitionId pid, int rpc_failures) {
    if (report_ && rpc_failures >= kReportAfterRpcFailures) {
      sim::Spawn(DiscardStatus(report_(pid)));
    }
  }

  static sim::Task<void> DiscardStatus(sim::Task<Status> t) {
    (void)co_await std::move(t);
  }
};

class MetaService : public PartitionService {
 public:
  MetaService(sim::Network* net, sim::NodeId self, Router* router, MetricRegistry* metrics,
              RetryPolicy policy = RetryPolicy::Control())
      : PartitionService(true, net, self, router, metrics, policy) {}

  /// Meta RPC to the partition's raft leader with NotLeader redirect +
  /// retry; keeps the leader cache current (§2.4).
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> Call(PartitionId pid, Req req, CallOptions opts = {}) {
    return PartitionCallImpl<Req, Resp>(pid, std::move(req), opts);
  }
};

class DataService : public PartitionService {
 public:
  DataService(sim::Network* net, sim::NodeId self, Router* router, MetricRegistry* metrics,
              RetryPolicy policy = RetryPolicy::Data())
      : PartitionService(false, net, self, router, metrics, policy) {}

  /// Data RPC to the partition's raft leader, probing replicas one by one
  /// and caching the last identified leader (§2.4).
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> Call(PartitionId pid, Req req, CallOptions opts = {}) {
    return PartitionCallImpl<Req, Resp>(pid, std::move(req), opts);
  }

  /// One-shot RPC to the partition's chain leader (replicas[0], §2.7.1). No
  /// retries: append placement reacts to a failed chain call by resending to
  /// a DIFFERENT partition (§2.2.5), which is the caller's loop to drive.
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> ChainCall(PartitionId pid, Req req, CallOptions opts = {}) {
    return ChainCallImpl<Req, Resp>(pid, std::move(req), opts);
  }

 private:
  template <typename Req, typename Resp>
  sim::Task<Result<Resp>> ChainCallImpl(PartitionId pid, Req req, CallOptions opts) {
    const RetryPolicy& policy = opts.policy ? *opts.policy : policy_;
    sim::Scheduler* sched = channel_.net()->scheduler();
    CFS_CO_RETURN_IF_ERROR((co_await EnsureView(pid)));
    master::DataPartitionView* view = router_->DataView(pid);
    if (!view || view->replicas.empty()) co_return Status::NotFound(PartitionName(pid));
    if (opts.deadline.Expired(sched->Now())) {
      channel_.metrics()->RecordCallOutcome(RpcNameOf<Req>(), Outcome::kDeadlineExceeded);
      co_return Status::TimedOut("deadline exceeded on " + PartitionName(pid));
    }
    if (rpc_counter_) (*rpc_counter_)++;
    auto r = co_await channel_.Unary<Req, Resp>(
        self_, view->replicas[0], std::move(req),
        opts.deadline.ClampTimeout(sched->Now(), policy.rpc_timeout), opts.trace);
    co_return std::move(r);
  }
};

}  // namespace cfs::rpc
