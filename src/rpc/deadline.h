// Deadline: an absolute virtual-time bound that propagates through nested
// RPC workflows. A client-level deadline set at the top of an operation
// bounds every leg underneath it — each retry loop clamps its per-leg RPC
// timeout to the time remaining, and bails out (instead of burning the rest
// of its attempt budget) once the deadline has passed. Legs that were
// already in flight when the deadline expired still run to their (clamped)
// timeout; the overshoot is therefore at most one leg.
//
// A default-constructed Deadline is unbounded and costs nothing to pass
// around, so plumbing a Deadline parameter through call chains is free for
// callers that do not set one.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.h"
#include "sim/scheduler.h"

namespace cfs::rpc {

class Deadline {
 public:
  /// Unbounded (the default): never expires, never clamps.
  Deadline() = default;

  static Deadline None() { return Deadline(); }
  static Deadline At(SimTime t) { return Deadline(t); }
  static Deadline In(const sim::Scheduler& sched, SimDuration d) {
    return Deadline(sched.Now() + d);
  }

  bool unbounded() const { return at_ == kUnbounded; }
  SimTime at() const { return at_; }

  bool Expired(SimTime now) const { return !unbounded() && now >= at_; }

  SimDuration Remaining(SimTime now) const {
    if (unbounded()) return kUnbounded - now;
    return at_ > now ? at_ - now : 0;
  }

  /// Per-leg timeout for an RPC issued now: the policy's leg timeout, capped
  /// by the time remaining (never below 1us so an in-flight leg still gets a
  /// well-formed timer).
  SimDuration ClampTimeout(SimTime now, SimDuration leg_timeout) const {
    if (unbounded()) return leg_timeout;
    return std::max<SimDuration>(1, std::min(leg_timeout, Remaining(now)));
  }

  /// The tighter of two deadlines (nesting: a callee combines its own bound
  /// with the caller's).
  Deadline Min(const Deadline& other) const {
    return Deadline(std::min(at_, other.at_));
  }

 private:
  static constexpr SimTime kUnbounded = INT64_MAX;
  explicit Deadline(SimTime at) : at_(at) {}
  SimTime at_ = kUnbounded;
};

}  // namespace cfs::rpc
