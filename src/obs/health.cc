#include "obs/health.h"

#include <algorithm>

namespace cfs::obs {

std::string_view HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kDead:
      return "dead";
  }
  return "unknown";
}

std::string HealthEvent::DumpJson() const {
  std::string out = "{\"time\":" + std::to_string(time) +
                    ",\"window\":" + std::to_string(window) + ",\"target\":\"" +
                    target + "\",\"cohort\":\"" + cohort + "\",\"from\":\"" +
                    std::string(HealthStateName(from)) + "\",\"to\":\"" +
                    std::string(HealthStateName(to)) +
                    "\",\"p99_usec\":" + std::to_string(p99_usec) +
                    ",\"cohort_median_usec\":" + std::to_string(cohort_median_usec) +
                    ",\"errors\":" + std::to_string(errors) +
                    ",\"streak\":" + std::to_string(streak) + "}";
  return out;
}

std::string NodeHealthSummary::DumpJson() const {
  std::string out = "{\"scored_window\":" + std::to_string(scored_window) +
                    ",\"worst\":\"" +
                    std::string(HealthStateName(static_cast<HealthState>(worst))) +
                    "\",\"tracked\":" + std::to_string(tracked) + ",\"unhealthy\":[";
  bool first = true;
  for (const TargetHealth& t : unhealthy) {
    if (!first) out += ",";
    first = false;
    out += "{\"target\":\"" + t.target + "\",\"state\":\"" +
           std::string(HealthStateName(static_cast<HealthState>(t.state))) +
           "\",\"streak\":" + std::to_string(t.streak) +
           ",\"p99_usec\":" + std::to_string(t.p99_usec) + "}";
  }
  out += "]}";
  return out;
}

HealthScorer::Target& HealthScorer::GetTarget(std::string_view cohort,
                                              std::string_view target) {
  auto it = targets_.find(target);
  if (it == targets_.end()) {
    it = targets_
             .emplace(std::string(target),
                      Target{std::string(cohort),
                             WindowedHistogram(opts_.window_usec, opts_.num_windows)})
             .first;
  }
  return it->second;
}

void HealthScorer::Observe(std::string_view cohort, std::string_view target,
                           SimTime now, SimDuration latency_usec,
                           uint64_t trace_id) {
  GetTarget(cohort, target).series.Observe(now, latency_usec, trace_id);
}

void HealthScorer::ObserveError(std::string_view cohort, std::string_view target,
                                SimTime now) {
  GetTarget(cohort, target).series.CountError(now);
}

void HealthScorer::Advance(SimTime now) {
  const uint64_t cur =
      static_cast<uint64_t>(now) / static_cast<uint64_t>(opts_.window_usec);
  if (cur == 0) return;
  // Only windows fully closed before `now` are scorable; clamp the backlog to
  // the ring depth — anything older has been evicted anyway.
  const uint64_t depth = static_cast<uint64_t>(opts_.num_windows);
  uint64_t from = scored_upto_;
  if (cur > depth && from < cur - depth) from = cur - depth;
  for (uint64_t w = from; w < cur; w++) ScoreWindow(w);
  if (cur > scored_upto_) scored_upto_ = cur;
}

void HealthScorer::ScoreWindow(uint64_t w) {
  // Pass 1: collect the per-cohort p99 population of latency-scorable
  // members (enough samples in this window).
  std::map<std::string, std::vector<uint64_t>, std::less<>> cohort_p99s;
  for (const auto& [name, t] : targets_) {
    const HistWindow* hw = t.series.Find(w);
    if (hw == nullptr || hw->hist.count < opts_.min_samples) continue;
    cohort_p99s[t.cohort].push_back(hw->hist.QuantileUpperBound(99, 100));
  }
  std::map<std::string, uint64_t, std::less<>> cohort_median;
  for (auto& [cohort, p99s] : cohort_p99s) {
    if (p99s.size() < opts_.min_cohort) continue;
    std::sort(p99s.begin(), p99s.end());
    cohort_median[cohort] = p99s[(p99s.size() - 1) / 2];  // lower median
  }

  // Pass 2: classify each target's window and advance its state machine.
  const SimTime end = static_cast<SimTime>((w + 1) * static_cast<uint64_t>(opts_.window_usec));
  for (auto& [name, t] : targets_) {
    if (t.state == HealthState::kDead) continue;  // sticky until MarkAlive
    const HistWindow* hw = t.series.Find(w);
    const uint64_t samples = hw ? hw->hist.count : 0;
    const uint64_t errors = hw ? hw->errors : 0;
    if (samples == 0 && errors == 0) continue;  // idle window: streaks freeze

    const uint64_t p99 = samples ? hw->hist.QuantileUpperBound(99, 100) : 0;
    if (samples) t.last_p99 = p99;

    uint64_t median = 0;
    bool outlier = false;
    if (samples >= opts_.min_samples) {
      auto mit = cohort_median.find(t.cohort);
      if (mit != cohort_median.end()) {
        median = mit->second;
        if (p99 * opts_.outlier_den > median * opts_.outlier_num) outlier = true;
      }
    }
    const uint64_t total_ops = samples + errors;
    if (total_ops >= opts_.min_error_ops &&
        errors * 100 >= static_cast<uint64_t>(opts_.error_pct) * total_ops) {
      outlier = true;
    }

    if (outlier) {
      t.outlier_streak++;
      t.clean_streak = 0;
      if (t.state == HealthState::kHealthy &&
          t.outlier_streak >= opts_.suspect_after) {
        Transition(name, t, HealthState::kSuspect, end, w, p99, median, errors,
                   t.outlier_streak);
      } else if (t.state == HealthState::kSuspect &&
                 t.outlier_streak >= opts_.degraded_after) {
        Transition(name, t, HealthState::kDegraded, end, w, p99, median, errors,
                   t.outlier_streak);
      }
    } else {
      t.clean_streak++;
      t.outlier_streak = 0;
      if (t.state != HealthState::kHealthy &&
          t.clean_streak >= opts_.recover_after) {
        const HealthState down = t.state == HealthState::kDegraded
                                     ? HealthState::kSuspect
                                     : HealthState::kHealthy;
        Transition(name, t, down, end, w, p99, median, errors, t.clean_streak);
        t.clean_streak = 0;  // each step-down needs a fresh clean streak
      }
    }
  }
}

void HealthScorer::Transition(const std::string& name, Target& t, HealthState to,
                              SimTime time, uint64_t window, uint64_t p99,
                              uint64_t median, uint64_t errors, uint32_t streak) {
  HealthEvent ev;
  ev.time = time;
  ev.window = window;
  ev.target = name;
  ev.cohort = t.cohort;
  ev.from = t.state;
  ev.to = to;
  ev.p99_usec = p99;
  ev.cohort_median_usec = median;
  ev.errors = errors;
  ev.streak = streak;
  events_.push_back(std::move(ev));
  t.state = to;
}

void HealthScorer::MarkDead(std::string_view cohort, std::string_view target,
                            SimTime now) {
  Target& t = GetTarget(cohort, target);
  if (t.state == HealthState::kDead) return;
  const uint64_t w =
      static_cast<uint64_t>(now) / static_cast<uint64_t>(opts_.window_usec);
  Transition(std::string(target), t, HealthState::kDead, now, w, t.last_p99, 0,
             0, 0);
  t.outlier_streak = 0;
  t.clean_streak = 0;
}

void HealthScorer::MarkAlive(std::string_view cohort, std::string_view target,
                             SimTime now) {
  Target& t = GetTarget(cohort, target);
  if (t.state != HealthState::kDead) return;
  const uint64_t w =
      static_cast<uint64_t>(now) / static_cast<uint64_t>(opts_.window_usec);
  Transition(std::string(target), t, HealthState::kHealthy, now, w, t.last_p99,
             0, 0, 0);
  t.outlier_streak = 0;
  t.clean_streak = 0;
}

HealthState HealthScorer::state(std::string_view target) const {
  auto it = targets_.find(target);
  return it == targets_.end() ? HealthState::kHealthy : it->second.state;
}

const WindowedHistogram* HealthScorer::Series(std::string_view target) const {
  auto it = targets_.find(target);
  return it == targets_.end() ? nullptr : &it->second.series;
}

NodeHealthSummary HealthScorer::SummaryFor(std::string_view prefix) const {
  NodeHealthSummary s;
  s.scored_window = last_scored_window();
  for (const auto& [name, t] : targets_) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    s.tracked++;
    if (static_cast<uint8_t>(t.state) > s.worst) s.worst = static_cast<uint8_t>(t.state);
    if (t.state == HealthState::kHealthy) continue;
    TargetHealth th;
    th.target = name;
    th.state = static_cast<uint8_t>(t.state);
    th.streak = t.outlier_streak;
    th.p99_usec = t.last_p99;
    s.unhealthy.push_back(std::move(th));
  }
  return s;
}

const HealthEvent* HealthScorer::FirstSuspectEvent(std::string_view target,
                                                   SimTime t) const {
  for (const HealthEvent& ev : events_) {
    if (ev.time < t || ev.target != target) continue;
    if (ev.to >= HealthState::kSuspect && ev.to > ev.from) return &ev;
  }
  return nullptr;
}

std::string HealthScorer::DumpJson() const {
  std::string out = "{\"targets\":{";
  bool first = true;
  for (const auto& [name, t] : targets_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"cohort\":\"" + t.cohort + "\",\"state\":\"" +
           std::string(HealthStateName(t.state)) +
           "\",\"outlier_streak\":" + std::to_string(t.outlier_streak) +
           ",\"clean_streak\":" + std::to_string(t.clean_streak) +
           ",\"last_p99_usec\":" + std::to_string(t.last_p99) +
           ",\"series\":" + t.series.DumpJson() + "}";
  }
  out += "},\"events\":" + std::to_string(events_.size()) + "}";
  return out;
}

std::string HealthScorer::DumpEventsJsonl() const {
  std::string out;
  for (const HealthEvent& ev : events_) {
    out += ev.DumpJson();
    out += "\n";
  }
  return out;
}

}  // namespace cfs::obs
