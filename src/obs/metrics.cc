#include "obs/metrics.h"

#include <algorithm>

namespace cfs::obs {

constexpr uint64_t Histogram::kBounds[];

void Histogram::Add(SimDuration latency_usec) {
  uint64_t v = latency_usec < 0 ? 0 : static_cast<uint64_t>(latency_usec);
  int b = 0;
  while (b < kNumBounds && v > kBounds[b]) b++;
  buckets[b]++;
  count++;
  sum_usec += v;
  if (v > max_usec) max_usec = v;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (int i = 0; i <= kNumBounds; i++) buckets[i] += other.buckets[i];
  count += other.count;
  sum_usec += other.sum_usec;
  if (other.max_usec > max_usec) max_usec = other.max_usec;
}

double Histogram::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  uint64_t cum = 0;
  for (int i = 0; i <= kNumBounds; i++) {
    if (buckets[i] == 0) continue;
    const uint64_t next = cum + buckets[i];
    if (rank <= static_cast<double>(next)) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(kBounds[i - 1]);
      // Overflow bucket: we know no sample exceeded max_usec, so use it as
      // the upper edge instead of pretending the bucket is unbounded.
      const double hi = i < kNumBounds
                            ? static_cast<double>(kBounds[i])
                            : std::max(lo, static_cast<double>(max_usec));
      const double frac = (rank - static_cast<double>(cum)) / static_cast<double>(buckets[i]);
      const double v = lo + frac * (hi - lo);
      return std::min(v, static_cast<double>(max_usec));
    }
    cum = next;
  }
  return static_cast<double>(max_usec);
}

uint64_t Histogram::QuantileUpperBound(uint32_t q_num, uint32_t q_den) const {
  if (count == 0 || q_den == 0) return 0;
  // ceil(count * q_num / q_den), clamped to [1, count]: the rank of the
  // sample whose bucket's upper edge we report.
  uint64_t rank = (count * q_num + q_den - 1) / q_den;
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cum = 0;
  for (int i = 0; i < kNumBounds; i++) {
    cum += buckets[i];
    if (rank <= cum) return kBounds[i];
  }
  return max_usec;  // overflow bucket: no sample exceeded the observed max
}

std::string Histogram::DumpJson() const {
  std::string out = "{\"count\":" + std::to_string(count) +
                    ",\"sum_usec\":" + std::to_string(sum_usec) +
                    ",\"max_usec\":" + std::to_string(max_usec) + ",\"buckets\":[";
  for (int i = 0; i <= kNumBounds; i++) {
    if (i) out += ",";
    out += std::to_string(buckets[i]);
  }
  out += "]}";
  return out;
}

void Registry::Add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::Set(std::string_view name, int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::SetMax(std::string_view name, int64_t value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else if (value > it->second) {
    it->second = value;
  }
}

void Registry::Observe(std::string_view name, SimDuration value) {
  auto it = hists_.find(name);
  if (it == hists_.end()) it = hists_.emplace(std::string(name), Histogram{}).first;
  it->second.Add(value);
}

void Registry::MergeHistogram(std::string_view name, const Histogram& h) {
  auto it = hists_.find(name);
  if (it == hists_.end()) it = hists_.emplace(std::string(name), Histogram{}).first;
  it->second.MergeFrom(h);
}

uint64_t Registry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t Registry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [k, v] : other.counters_) Add(k, v);
  for (const auto& [k, v] : other.gauges_) SetMax(k, v);
  for (const auto& [k, h] : other.hists_) MergeHistogram(k, h);
}

void Registry::Clear() {
  counters_.clear();
  gauges_.clear();
  hists_.clear();
}

std::string Registry::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [k, v] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":" + std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [k, h] : hists_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":" + h.DumpJson();
  }
  out += "}}";
  return out;
}

}  // namespace cfs::obs
