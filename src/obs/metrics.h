// Unified metric primitives: counters, gauges, and fixed-bucket histograms
// in one Registry with deterministic (std::map) iteration, dumpable as JSON.
//
// The Histogram here is the generalization of the former
// rpc::LatencyHistogram (which is now an alias); rpc::MetricRegistry keeps
// its per-RPC outcome semantics but exports into an obs::Registry so
// harness::Cluster can merge every per-node source — RPC registries, raft
// group-commit counters, client stats, disk and network accounting — behind
// one DumpJson().
//
// Naming convention (DESIGN.md "Observability"): dot-separated
// "<subsystem>.<metric>", e.g. "raft.gc.batches", "client.cache_hits",
// "disk.write_bytes", "rpc.WritePacket.ok". Counters are monotonic sums,
// gauges merge by taking the max (cluster-wide high-watermark semantics).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/units.h"

namespace cfs::obs {

/// Fixed-bucket histogram (bucket upper bounds in virtual microseconds,
/// geometric-ish ladder from 100us to 5s, plus overflow).
struct Histogram {
  static constexpr uint64_t kBounds[] = {100,    200,     500,     1000,   2000,
                                         5000,   10000,   20000,   50000,  100000,
                                         200000, 500000,  1000000, 2000000, 5000000};
  static constexpr int kNumBounds = static_cast<int>(sizeof(kBounds) / sizeof(kBounds[0]));

  uint64_t buckets[kNumBounds + 1] = {};  // last = overflow
  uint64_t count = 0;
  uint64_t sum_usec = 0;
  uint64_t max_usec = 0;

  void Add(SimDuration v);
  void MergeFrom(const Histogram& other);

  /// Interpolated quantile estimate, q in [0, 1]. Linear interpolation
  /// within the bucket containing the q-th sample. Edge behavior (pinned by
  /// tests/obs_test.cc "QuantileEdges"):
  ///   * empty histogram -> 0;
  ///   * q == 0 -> the lower edge of the first non-empty bucket;
  ///   * count == 1 -> a value inside the sample's bucket, never above the
  ///     sample itself (the final min() clamps to max_usec);
  ///   * the q-th sample lands in the overflow bucket -> interpolation uses
  ///     max_usec as the bucket's upper edge (no sample exceeded it; the
  ///     max(lo, ...) guard keeps the edge sane even though any overflow
  ///     sample must already exceed the last bound), so the estimate stays
  ///     within (last bound, max_usec].
  double Quantile(double q) const;
  /// Integer bucket-resolution quantile: the upper edge of the bucket
  /// containing the ceil(count*q_num/q_den)-th sample (max_usec for the
  /// overflow bucket, 0 when empty). No floating point — byte-stable across
  /// platforms, so health scoring and its event log are built on this.
  uint64_t QuantileUpperBound(uint32_t q_num, uint32_t q_den) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// {"count":n,"sum_usec":n,"max_usec":n,"buckets":[...]}
  std::string DumpJson() const;
};

/// Counters + gauges + histograms keyed by name. All maps are ordered so
/// DumpJson() is byte-stable across same-seed runs.
class Registry {
 public:
  /// Increment counter `name` by `delta`.
  void Add(std::string_view name, uint64_t delta = 1);
  /// Set gauge `name` (last-write-wins locally; merges take the max).
  void Set(std::string_view name, int64_t value);
  /// Raise gauge `name` to at least `value` (high-watermark).
  void SetMax(std::string_view name, int64_t value);
  /// Add one sample to histogram `name`.
  void Observe(std::string_view name, SimDuration value);
  /// Fold a pre-aggregated histogram into histogram `name`.
  void MergeHistogram(std::string_view name, const Histogram& h);

  uint64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  const std::map<std::string, uint64_t, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, int64_t, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const { return hists_; }

  /// Counters sum, gauges max, histograms bucket-wise sum.
  void MergeFrom(const Registry& other);
  void Clear();

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — stable key order.
  std::string DumpJson() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> hists_;
};

}  // namespace cfs::obs
