// Deterministic distributed tracing for the simulated cluster (Dapper-style
// spans over virtual time).
//
// Every traced request carries a TraceContext (trace id, span id, parent)
// through RPC request structs; each layer the request crosses — client
// workflow, service handler, raft propose/batch/apply, disk queue, chain
// hop — opens a child span stamped with virtual-time start/end and typed
// numeric annotations (batch size, queue depth, retry number, ...).
//
// The zero-schedule-cost invariant (DESIGN.md "Observability"): tracing must
// never perturb the simulation schedule. The Tracer therefore
//   - owns a PRIVATE Rng (derived from the simulation seed, so ids are
//     reproducible) and never draws from the scheduler's RNG,
//   - never schedules events, charges resources, or changes message sizes,
//   - is disabled by default; a disabled tracer mints no ids and records
//     nothing, and an enabled one only appends to a side log.
// A traced and an untraced run of the same seed must produce identical
// Network::MixTrace hashes; tests/determinism_test.cc audits exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace cfs::obs {

/// Wire-propagated identity of one request: which trace it belongs to and
/// which span is the parent of work done on its behalf. A zero trace id
/// means "not traced"; every propagation site treats that as a no-op, so
/// untraced runs carry only zero bytes of inert struct fields.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the span that is the parent of downstream work

  bool valid() const { return trace_id != 0; }
};

/// Handle to an open span. Invalid (idx < 0) when the tracer is disabled or
/// the parent context is untraced; all operations on an invalid ref no-op.
struct SpanRef {
  TraceContext ctx;   // context downstream work should adopt as parent
  int64_t idx = -1;

  bool valid() const { return idx >= 0; }
};

/// One completed (or still-open) span in the log.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 for a root span
  std::string name;        // "<subsystem>:<op>", e.g. "rpc:WritePacket"
  uint32_t node = 0;       // NodeId the work ran on (0 = client/none)
  SimTime start = 0;
  SimTime end = 0;         // == start while still open
  /// Typed numeric annotations in insertion order (deterministic).
  std::vector<std::pair<std::string, int64_t>> notes;
};

class Tracer {
 public:
  /// `now` must outlive the tracer (the owning scheduler's clock). The id
  /// stream is derived from `seed` but decorrelated from the scheduler RNG.
  Tracer(uint64_t seed, const SimTime* now)
      : rng_(seed ^ 0x0b5efacade5eedull), now_(now) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Open a root span (a new trace). Returns an invalid ref when disabled.
  SpanRef BeginTrace(std::string_view name, uint32_t node) {
    if (!enabled_) return {};
    return Open(name, NewId(), 0, node);
  }

  /// Open a child span of `parent`. No-op when disabled or parent untraced.
  SpanRef BeginSpan(std::string_view name, const TraceContext& parent, uint32_t node) {
    if (!enabled_ || !parent.valid()) return {};
    return Open(name, parent.trace_id, parent.span_id, node);
  }

  /// Attach a typed numeric annotation to an open span.
  void Note(const SpanRef& ref, std::string_view key, int64_t value) {
    if (!ref.valid()) return;
    spans_[static_cast<size_t>(ref.idx)].notes.emplace_back(std::string(key), value);
  }

  /// Close a span at the current virtual time.
  void End(const SpanRef& ref) {
    if (!ref.valid()) return;
    spans_[static_cast<size_t>(ref.idx)].end = *now_;
  }

  const std::vector<Span>& spans() const { return spans_; }
  size_t num_spans() const { return spans_.size(); }
  void Clear() { spans_.clear(); }

  /// Serialize the span log as JSON lines (one span per line, creation
  /// order). Two same-seed runs must produce byte-identical dumps.
  std::string DumpLog() const;

 private:
  SpanRef Open(std::string_view name, uint64_t trace_id, uint64_t parent, uint32_t node) {
    Span s;
    s.trace_id = trace_id;
    s.span_id = NewId();
    s.parent_id = parent;
    s.name = std::string(name);
    s.node = node;
    s.start = s.end = *now_;
    spans_.push_back(std::move(s));
    SpanRef ref;
    ref.ctx = TraceContext{trace_id, spans_.back().span_id};
    ref.idx = static_cast<int64_t>(spans_.size() - 1);
    return ref;
  }

  uint64_t NewId() {
    uint64_t id = rng_.Next();
    return id ? id : 1;  // 0 is the "untraced" sentinel
  }

  bool enabled_ = false;
  Rng rng_;              // private id stream: never the scheduler's RNG
  const SimTime* now_;
  std::vector<Span> spans_;
};

/// RAII helper for spans that should close when a coroutine (or scope)
/// finishes: locals are destroyed at co_return, stamping the end time there.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(Tracer* tracer, SpanRef ref) : tracer_(tracer), ref_(ref) {}
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  SpanScope(SpanScope&& o) noexcept
      : tracer_(std::exchange(o.tracer_, nullptr)), ref_(std::exchange(o.ref_, {})) {}
  SpanScope& operator=(SpanScope&& o) noexcept {
    if (this != &o) {
      Close();
      tracer_ = std::exchange(o.tracer_, nullptr);
      ref_ = std::exchange(o.ref_, {});
    }
    return *this;
  }
  ~SpanScope() { Close(); }

  const TraceContext& ctx() const { return ref_.ctx; }
  void Note(std::string_view key, int64_t value) {
    if (tracer_) tracer_->Note(ref_, key, value);
  }

 private:
  void Close() {
    if (tracer_) tracer_->End(ref_);
    tracer_ = nullptr;
  }

  Tracer* tracer_ = nullptr;
  SpanRef ref_;
};

}  // namespace cfs::obs
