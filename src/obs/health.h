// Gray-failure scoring over windowed health telemetry (DESIGN.md "Health
// telemetry").
//
// The paper's failure handling (§2.3.3) is binary — heartbeat loss and
// client-reported timeouts mark things dead/read-only — so a *degrading*
// component (slow disk, lossy link) is invisible until it hard-fails. The
// HealthScorer closes that gap with peer-comparison outlier scoring: every
// tracked target (a disk, an RPC peer) belongs to a cohort, and a target is
// an outlier in a window when its windowed p99 exceeds k x the cohort median
// (or its error share crosses a floor). N consecutive outlier windows drive
// a healthy -> suspect -> degraded state machine; recovery steps back down
// one state per M consecutive clean windows. `dead` only enters externally
// (the master's heartbeat-loss view) and is sticky.
//
// Determinism: scoring is a pure function of (observations, virtual time) —
// integer arithmetic only (bucket-resolution p99s via
// Histogram::QuantileUpperBound, integer k as a num/den ratio, lower-median
// of a sorted vector), ordered containers, no RNG, no scheduler events.
// Same-seed runs therefore produce byte-identical health-event logs, which
// the gray-failure bench and tests/health_test.cc pin.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/timeseries.h"

namespace cfs::obs {

enum class HealthState : uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDegraded = 2,
  kDead = 3,
};

std::string_view HealthStateName(HealthState s);

struct HealthOptions {
  /// Windowing shared by every tracked target (matches the collector
  /// cadence: the harness samples at heartbeat time, default 1 s).
  SimDuration window_usec = 1 * kSec;
  int num_windows = 32;
  /// Latency outlier: windowed p99 > (outlier_num / outlier_den) x the
  /// cohort median p99 of the window.
  uint32_t outlier_num = 3;
  uint32_t outlier_den = 1;
  /// Windows with fewer latency samples than this are not latency-scored.
  uint64_t min_samples = 8;
  /// Peer comparison needs at least this many scored cohort members.
  size_t min_cohort = 3;
  /// Error outlier: errors * 100 >= error_pct * (samples + errors), with at
  /// least min_error_ops total ops in the window. Independent of the cohort
  /// (a whole cohort erroring together is still sick).
  uint32_t error_pct = 25;
  uint64_t min_error_ops = 4;
  /// Consecutive outlier windows before healthy -> suspect, and before
  /// suspect -> degraded (counted from the start of the streak).
  uint32_t suspect_after = 3;
  uint32_t degraded_after = 8;
  /// Consecutive clean (traffic-bearing, non-outlier) windows per one-state
  /// step-down. Idle windows freeze both streaks.
  uint32_t recover_after = 4;
};

/// One byte-stable line of the health-event log: a state transition with the
/// evidence that drove it.
struct HealthEvent {
  SimTime time = 0;      // end of the scored window
  uint64_t window = 0;   // absolute window index
  std::string target;
  std::string cohort;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  uint64_t p99_usec = 0;            // target's windowed p99 (integer)
  uint64_t cohort_median_usec = 0;  // cohort median p99 (0 = not scored)
  uint64_t errors = 0;              // target's window error count
  uint32_t streak = 0;              // outlier (or clean) streak length

  std::string DumpJson() const;
};

/// Compact per-target health for the heartbeat piggyback.
struct TargetHealth {
  std::string target;
  uint8_t state = 0;  // HealthState
  uint32_t streak = 0;
  uint64_t p99_usec = 0;  // last scored window's p99
};

/// Compact per-node summary riding NodeHeartbeatReq (wire size frozen — see
/// master/messages.h) so the master can build a cluster-wide health view.
struct NodeHealthSummary {
  uint64_t scored_window = 0;  // last window the scorer evaluated
  uint8_t worst = 0;           // worst HealthState across targets
  uint32_t tracked = 0;        // total tracked targets
  std::vector<TargetHealth> unhealthy;  // only targets not kHealthy

  std::string DumpJson() const;
};

class HealthScorer {
 public:
  explicit HealthScorer(const HealthOptions& opts = {}) : opts_(opts) {}

  HealthScorer(const HealthScorer&) = delete;
  HealthScorer& operator=(const HealthScorer&) = delete;

  const HealthOptions& options() const { return opts_; }

  /// Record one successful op against `target` (registered into `cohort` on
  /// first touch). Passive: ring-buffer update only.
  void Observe(std::string_view cohort, std::string_view target, SimTime now,
               SimDuration latency_usec, uint64_t trace_id = 0);

  /// Record one failed op (no latency sample; feeds the error-rate outlier).
  void ObserveError(std::string_view cohort, std::string_view target, SimTime now);

  /// Score every window that closed strictly before `now`'s window, in
  /// order. Idempotent per window; called by the collector at its cadence.
  void Advance(SimTime now);

  /// External hard-failure input (heartbeat loss). Sticky: scoring never
  /// leaves kDead; only MarkAlive (explicit recovery) does.
  void MarkDead(std::string_view cohort, std::string_view target, SimTime now);
  void MarkAlive(std::string_view cohort, std::string_view target, SimTime now);

  HealthState state(std::string_view target) const;
  const std::vector<HealthEvent>& events() const { return events_; }
  const WindowedHistogram* Series(std::string_view target) const;
  uint64_t last_scored_window() const {
    return scored_upto_ == 0 ? 0 : scored_upto_ - 1;
  }

  /// Summary over every tracked target.
  NodeHealthSummary Summary() const { return SummaryFor(""); }

  /// Summary restricted to targets whose name starts with `prefix` — the
  /// harness scores one cluster-wide scorer (cohorts must span nodes to be
  /// comparable) but piggybacks each node's slice ("n<i>.") on its own
  /// heartbeat.
  NodeHealthSummary SummaryFor(std::string_view prefix) const;

  /// First event at/after `t` that moved `target` up to at least kSuspect;
  /// nullptr when it never happened. (The gray-failure bench's detection-
  /// latency probe.)
  const HealthEvent* FirstSuspectEvent(std::string_view target, SimTime t) const;

  /// {"targets":{name:{...series + state...}},"events":n} — byte-stable.
  std::string DumpJson() const;
  /// One JSON object per line, log order — byte-stable across same-seed runs
  /// and across platforms (integers and fixed strings only).
  std::string DumpEventsJsonl() const;

 private:
  struct Target {
    std::string cohort;
    WindowedHistogram series;
    HealthState state = HealthState::kHealthy;
    uint32_t outlier_streak = 0;
    uint32_t clean_streak = 0;
    uint64_t last_p99 = 0;  // last scored window with samples
  };

  Target& GetTarget(std::string_view cohort, std::string_view target);
  void ScoreWindow(uint64_t w);
  void Transition(const std::string& name, Target& t, HealthState to,
                  SimTime time, uint64_t window, uint64_t p99, uint64_t median,
                  uint64_t errors, uint32_t streak);

  HealthOptions opts_;
  std::map<std::string, Target, std::less<>> targets_;
  std::vector<HealthEvent> events_;
  uint64_t scored_upto_ = 0;  // first window index not yet scored
};

}  // namespace cfs::obs
