#include "obs/trace.h"

namespace cfs::obs {

std::string Tracer::DumpLog() const {
  std::string out;
  for (const Span& s : spans_) {
    out += "{\"trace_id\":" + std::to_string(s.trace_id) +
           ",\"span_id\":" + std::to_string(s.span_id) +
           ",\"parent_id\":" + std::to_string(s.parent_id) + ",\"name\":\"" + s.name +
           "\",\"node\":" + std::to_string(s.node) +
           ",\"start\":" + std::to_string(s.start) + ",\"end\":" + std::to_string(s.end);
    if (!s.notes.empty()) {
      out += ",\"notes\":{";
      bool first = true;
      for (const auto& [k, v] : s.notes) {
        if (!first) out += ",";
        first = false;
        out += "\"" + k + "\":" + std::to_string(v);
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cfs::obs
