#include "obs/analysis.h"

#include <algorithm>
#include <vector>

namespace cfs::obs {

double TraceBreakdown::Coverage() const {
  if (total_usec <= 0) return 0.0;
  SimDuration sum = 0;
  for (const auto& [name, st] : stages) sum += st.sum_usec;
  return static_cast<double>(sum) / static_cast<double>(total_usec);
}

std::string TraceBreakdown::DumpJson() const {
  char cov[32];
  std::snprintf(cov, sizeof(cov), "%.3f", Coverage());
  std::string out = "{\"trace_id\":" + std::to_string(trace_id) + ",\"root\":\"" + root_name +
                    "\",\"total_usec\":" + std::to_string(total_usec) +
                    ",\"coverage\":" + cov + ",\"stages\":{";
  bool first = true;
  for (const auto& [name, st] : stages) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(st.count) +
           ",\"sum_usec\":" + std::to_string(st.sum_usec) +
           ",\"max_usec\":" + std::to_string(st.max_usec) + "}";
  }
  out += "}}";
  return out;
}

TraceBreakdown StageBreakdown(const Tracer& tracer, uint64_t trace_id) {
  TraceBreakdown b;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id != trace_id) continue;
    b.trace_id = trace_id;
    const SimDuration d = s.end - s.start;
    if (s.parent_id == 0) {
      b.root_name = s.name;
      b.total_usec = d;
      continue;
    }
    StageTotal& st = b.stages[s.name];
    st.count++;
    st.sum_usec += d;
    st.max_usec = std::max(st.max_usec, d);
  }
  return b;
}

uint64_t FindLastTrace(const Tracer& tracer, std::string_view name_prefix) {
  uint64_t found = 0;
  for (const Span& s : tracer.spans()) {
    if (s.parent_id == 0 && s.name.rfind(name_prefix, 0) == 0) found = s.trace_id;
  }
  return found;
}

namespace {

void PrintTree(const std::vector<const Span*>& spans, const Span* parent, int depth,
               SimTime t0, std::string* out) {
  for (const Span* s : spans) {
    const bool child = parent ? s->parent_id == parent->span_id : s->parent_id == 0;
    if (!child) continue;
    char line[160];
    std::snprintf(line, sizeof(line), "%8lld %8lld us  %*s%s (node %u",
                  static_cast<long long>(s->start - t0),
                  static_cast<long long>(s->end - s->start), depth * 2, "",
                  s->name.c_str(), s->node);
    *out += line;
    for (const auto& [k, v] : s->notes) {
      *out += ", " + k + "=" + std::to_string(v);
    }
    *out += ")\n";
    PrintTree(spans, s, depth + 1, t0, out);
  }
}

}  // namespace

std::string CriticalPath(const Tracer& tracer, uint64_t trace_id) {
  std::vector<const Span*> spans;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id == trace_id) spans.push_back(&s);
  }
  if (spans.empty()) return "trace " + std::to_string(trace_id) + ": no spans\n";
  std::stable_sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
    return a->start < b->start;
  });
  SimTime t0 = spans.front()->start;
  std::string out = "trace " + std::to_string(trace_id) + " (start+offset, duration):\n";
  PrintTree(spans, nullptr, 0, t0, &out);
  return out;
}

}  // namespace cfs::obs
