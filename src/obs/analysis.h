// Trace analysis: per-stage latency breakdown of one trace, and a printable
// critical-path report. Used by bench_fig7/bench_fig8 ("stage_breakdown"
// JSON lines) and by EXPERIMENTS.md A6; tools/trace2chrome.py does the
// heavier Perfetto visualization offline.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/trace.h"

namespace cfs::obs {

/// Aggregated time of all spans sharing one name inside one trace.
struct StageTotal {
  uint64_t count = 0;
  SimDuration sum_usec = 0;
  SimDuration max_usec = 0;
};

struct TraceBreakdown {
  uint64_t trace_id = 0;
  /// Duration of the root span (parent_id == 0); the end-to-end latency.
  SimDuration total_usec = 0;
  std::string root_name;
  /// Per-stage sums keyed by span name, root excluded. Stages overlap
  /// (pipelining), so the sums may legitimately exceed total_usec.
  std::map<std::string, StageTotal> stages;

  /// Sum over stages / total; >= 1 means the spans fully tile (or overlap)
  /// the end-to-end window. 0 when the trace has no root span.
  double Coverage() const;
  /// {"trace_id":...,"root":"...","total_usec":...,"coverage":...,
  ///  "stages":{"<name>":{"count":n,"sum_usec":n,"max_usec":n},...}}
  std::string DumpJson() const;
};

/// Group the spans of `trace_id` by name. Returns an empty breakdown (id 0)
/// if the trace does not exist.
TraceBreakdown StageBreakdown(const Tracer& tracer, uint64_t trace_id);

/// Id of the most recent root span whose name starts with `name_prefix`, or
/// 0 if none. Benches use this to pick the op they just issued.
uint64_t FindLastTrace(const Tracer& tracer, std::string_view name_prefix);

/// Human-readable per-stage report of one trace: an indented span tree in
/// start-time order with durations and annotations. The CriticalPath(...)
/// helper of the observability layer — reads like a flame graph in text.
std::string CriticalPath(const Tracer& tracer, uint64_t trace_id);

}  // namespace cfs::obs
