#include "obs/timeseries.h"

namespace cfs::obs {

std::string HistWindow::DumpJson() const {
  std::string out = "{\"window\":" + std::to_string(window) +
                    ",\"count\":" + std::to_string(hist.count) +
                    ",\"errors\":" + std::to_string(errors) +
                    ",\"p50_usec\":" + std::to_string(hist.QuantileUpperBound(50, 100)) +
                    ",\"p99_usec\":" + std::to_string(hist.QuantileUpperBound(99, 100)) +
                    ",\"max_usec\":" + std::to_string(worst_usec) +
                    ",\"exemplar\":" + std::to_string(exemplar_trace) + "}";
  return out;
}

HistWindow& WindowedHistogram::Roll(SimTime now) {
  const uint64_t w = WindowOf(now);
  HistWindow& slot = ring_[w % ring_.size()];
  if (!slot.used || slot.window != w) slot.Reset(w);
  if (w > newest_) newest_ = w;
  return slot;
}

void WindowedHistogram::Observe(SimTime now, SimDuration latency_usec,
                                uint64_t trace_id) {
  HistWindow& slot = Roll(now);
  const uint64_t v = latency_usec < 0 ? 0 : static_cast<uint64_t>(latency_usec);
  slot.hist.Add(latency_usec);
  if (v >= slot.worst_usec) {
    slot.worst_usec = v;
    if (trace_id != 0) slot.exemplar_trace = trace_id;
  }
  total_samples_++;
}

void WindowedHistogram::CountError(SimTime now) {
  Roll(now).errors++;
  total_errors_++;
}

const HistWindow* WindowedHistogram::Find(uint64_t w) const {
  const uint64_t n = ring_.size();
  // A window more than `n` behind the newest is evicted even if its slot was
  // never physically reused (a sparse stream can skip the slots in between).
  if (w + n <= newest_) return nullptr;
  const HistWindow& slot = ring_[w % n];
  if (!slot.used || slot.window != w) return nullptr;
  return &slot;
}

std::vector<const HistWindow*> WindowedHistogram::Windows() const {
  std::vector<const HistWindow*> out;
  // Ascending absolute index: the resident range is (newest - ring, newest].
  const uint64_t n = ring_.size();
  const uint64_t lo = newest_ >= n ? newest_ - n + 1 : 0;
  for (uint64_t w = lo; w <= newest_; w++) {
    if (const HistWindow* hw = Find(w)) out.push_back(hw);
  }
  return out;
}

std::string WindowedHistogram::DumpJson() const {
  std::string out = "{\"windows\":[";
  bool first = true;
  for (const HistWindow* hw : Windows()) {
    if (!first) out += ",";
    first = false;
    out += hw->DumpJson();
  }
  out += "]}";
  return out;
}

void RateSeries::Sample(SimTime now, uint64_t cumulative) {
  const uint64_t w = static_cast<uint64_t>(now) / static_cast<uint64_t>(width_);
  const uint64_t delta = seeded_ && cumulative >= last_value_
                             ? cumulative - last_value_
                             : 0;  // first sample (or counter reset) seeds
  seeded_ = true;
  last_value_ = cumulative;
  Slot& slot = ring_[w % ring_.size()];
  if (!slot.used || slot.window != w) {
    slot.window = w;
    slot.delta = 0;
    slot.used = true;
  }
  slot.delta += delta;
  if (w > newest_) newest_ = w;
}

uint64_t RateSeries::Delta(uint64_t w) const {
  const uint64_t n = ring_.size();
  if (w + n <= newest_) return 0;  // evicted even if the slot was never reused
  const Slot& slot = ring_[w % n];
  if (!slot.used || slot.window != w) return 0;
  return slot.delta;
}

std::string RateSeries::DumpJson() const {
  std::string out = "{\"windows\":[";
  const uint64_t n = ring_.size();
  const uint64_t lo = newest_ >= n ? newest_ - n + 1 : 0;
  bool first = true;
  for (uint64_t w = lo; w <= newest_; w++) {
    const Slot& slot = ring_[w % n];
    if (!slot.used || slot.window != w) continue;
    if (!first) out += ",";
    first = false;
    out += "[";
    out += std::to_string(w);
    out += ",";
    out += std::to_string(slot.delta);
    out += "]";
  }
  out += "]}";
  return out;
}

WindowedHistogram& TimeSeries::Hist(std::string_view name) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_
             .emplace(std::string(name),
                      WindowedHistogram(opts_.window_usec, opts_.num_windows))
             .first;
  }
  return it->second;
}

RateSeries& TimeSeries::Rate(std::string_view name) {
  auto it = rates_.find(name);
  if (it == rates_.end()) {
    it = rates_
             .emplace(std::string(name),
                      RateSeries(opts_.window_usec, opts_.num_windows))
             .first;
  }
  return it->second;
}

const WindowedHistogram* TimeSeries::FindHist(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

const RateSeries* TimeSeries::FindRate(std::string_view name) const {
  auto it = rates_.find(name);
  return it == rates_.end() ? nullptr : &it->second;
}

std::string TimeSeries::DumpJson() const {
  std::string out =
      "{\"window_usec\":" + std::to_string(opts_.window_usec) + ",\"hists\":{";
  bool first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + h.DumpJson();
  }
  out += "},\"rates\":{";
  first = true;
  for (const auto& [name, r] : rates_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + r.DumpJson();
  }
  out += "}}";
  return out;
}

}  // namespace cfs::obs
