// Windowed time-series metrics over virtual time, layered on the snapshot
// primitives of obs/metrics.h (DESIGN.md "Health telemetry").
//
// The Registry answers "what happened over the whole run"; these types answer
// "what happened in the last N seconds" — the signal a gray-failure detector
// needs. Two series kinds share one ring-buffer windowing model:
//
//   WindowedHistogram — per-window fixed-bucket histograms of a latency
//     stream, each window additionally retaining an *exemplar*: the trace id
//     of the worst sample observed in that window, so a p99 spike in any
//     window links directly to its obs::Tracer span tree.
//
//   RateSeries — per-window deltas of a monotonic counter, sampled by a
//     collector at whatever cadence it runs (the harness samples at heartbeat
//     time); the window delta is the counter's rate for that window.
//
// Windows are addressed by absolute index (virtual time / window width), so
// rolling is a pure function of the observation timestamp: no timers, no
// scheduler events, no RNG. Everything here is passive data-structure
// update — recording into a series can never perturb the simulation
// schedule, and all iteration is over ordered containers, so dumps are
// byte-identical across same-seed runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace cfs::obs {

struct TimeSeriesOptions {
  /// Window width in virtual microseconds. The harness collector samples at
  /// heartbeat cadence (1 s), so the default matches it.
  SimDuration window_usec = 1 * kSec;
  /// Ring length: windows older than `num_windows` behind the newest
  /// observation are evicted (their slot is reused).
  int num_windows = 32;
};

/// One window of a WindowedHistogram: the histogram plus the worst sample
/// and its exemplar trace id, and an error count (ops that failed and
/// therefore contributed no latency sample).
struct HistWindow {
  uint64_t window = 0;  // absolute index = timestamp / window width
  bool used = false;
  Histogram hist;
  uint64_t errors = 0;
  uint64_t worst_usec = 0;
  uint64_t exemplar_trace = 0;  // trace id of the worst sample (0 = untraced)

  void Reset(uint64_t w) {
    window = w;
    used = true;
    hist = Histogram{};
    errors = 0;
    worst_usec = 0;
    exemplar_trace = 0;
  }

  /// {"window":w,"count":n,"errors":n,"p50_usec":n,"p99_usec":n,
  ///  "max_usec":n,"exemplar":id} — integer quantiles (bucket upper bounds)
  /// so the line is byte-stable across platforms.
  std::string DumpJson() const;
};

/// Ring of per-window histograms addressed by absolute window index.
class WindowedHistogram {
 public:
  WindowedHistogram(SimDuration window_usec, int num_windows)
      : width_(window_usec > 0 ? window_usec : 1),
        ring_(num_windows > 0 ? static_cast<size_t>(num_windows) : 1) {}

  uint64_t WindowOf(SimTime now) const {
    return static_cast<uint64_t>(now) / static_cast<uint64_t>(width_);
  }
  SimDuration width() const { return width_; }
  size_t num_windows() const { return ring_.size(); }

  /// Record one latency sample at virtual time `now`. `trace_id` (0 =
  /// untraced) is retained as the window's exemplar iff this is the worst
  /// sample seen in the window so far.
  void Observe(SimTime now, SimDuration latency_usec, uint64_t trace_id = 0);

  /// Record one failed op at `now` (no latency sample; feeds error rates).
  void CountError(SimTime now);

  /// The resident window with absolute index `w`, or nullptr if it was
  /// never written or has been evicted by newer observations.
  const HistWindow* Find(uint64_t w) const;

  /// Resident windows in ascending index order.
  std::vector<const HistWindow*> Windows() const;

  /// Newest window index ever observed (0 when empty).
  uint64_t newest_window() const { return newest_; }
  uint64_t total_samples() const { return total_samples_; }
  uint64_t total_errors() const { return total_errors_; }

  /// {"windows":[{...},...]} ascending by window index.
  std::string DumpJson() const;

 private:
  HistWindow& Roll(SimTime now);

  SimDuration width_;
  std::vector<HistWindow> ring_;
  uint64_t newest_ = 0;
  uint64_t total_samples_ = 0;
  uint64_t total_errors_ = 0;
};

/// Per-window deltas of a monotonic counter. The collector calls
/// Sample(now, cumulative) at its cadence; each window accumulates the
/// increase observed while it was current.
class RateSeries {
 public:
  RateSeries(SimDuration window_usec, int num_windows)
      : width_(window_usec > 0 ? window_usec : 1),
        ring_(num_windows > 0 ? static_cast<size_t>(num_windows) : 1) {}

  void Sample(SimTime now, uint64_t cumulative);

  /// Delta recorded for window `w` (0 if absent/evicted).
  uint64_t Delta(uint64_t w) const;
  uint64_t newest_window() const { return newest_; }

  /// {"windows":[[w,delta],...]} ascending by window index.
  std::string DumpJson() const;

 private:
  struct Slot {
    uint64_t window = 0;
    uint64_t delta = 0;
    bool used = false;
  };

  SimDuration width_;
  std::vector<Slot> ring_;
  uint64_t newest_ = 0;
  uint64_t last_value_ = 0;
  bool seeded_ = false;  // first Sample() seeds the baseline, delta 0
};

/// Named collection of both series kinds with shared windowing options —
/// the per-node (and cluster-wide) time-series store the harness collector
/// writes into. Ordered maps keep DumpJson byte-stable.
class TimeSeries {
 public:
  explicit TimeSeries(const TimeSeriesOptions& opts = {}) : opts_(opts) {}

  const TimeSeriesOptions& options() const { return opts_; }

  WindowedHistogram& Hist(std::string_view name);
  RateSeries& Rate(std::string_view name);
  const WindowedHistogram* FindHist(std::string_view name) const;
  const RateSeries* FindRate(std::string_view name) const;

  /// Sample a monotonic counter (e.g. a Registry counter) into the rate
  /// series `name`: the window's delta is the counter's rate over it.
  void SampleCounter(std::string_view name, SimTime now, uint64_t value) {
    Rate(name).Sample(now, value);
  }

  /// {"window_usec":n,"hists":{...},"rates":{...}} — stable key order.
  std::string DumpJson() const;

 private:
  TimeSeriesOptions opts_;
  std::map<std::string, WindowedHistogram, std::less<>> hists_;
  std::map<std::string, RateSeries, std::less<>> rates_;
};

}  // namespace cfs::obs
