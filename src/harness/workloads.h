// Benchmark workload generators: mdtest-style metadata tests (Table 2) and
// fio-style data-path tests, runnable against both CFS and the Ceph baseline
// through a common operation interface. Closed-loop clients, fixed op count
// per process; IOPS = total ops / elapsed simulated time.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ceph/ceph.h"
#include "client/client.h"
#include "common/buffer.h"
#include "harness/cluster.h"
#include "sim/task.h"

namespace cfs::bench {

/// Uniform metadata interface for the 7 mdtest operations.
class MetaOps {
 public:
  virtual ~MetaOps() = default;
  virtual sim::Task<Result<uint64_t>> Mkdir(uint64_t parent, std::string name) = 0;
  virtual sim::Task<Result<uint64_t>> Create(uint64_t parent, std::string name) = 0;
  /// DirStat: list the directory and stat every entry.
  virtual sim::Task<Result<size_t>> StatDir(uint64_t dir) = 0;
  virtual sim::Task<Status> Remove(uint64_t parent, std::string name) = 0;
  virtual sim::Task<Status> Rmdir(uint64_t parent, std::string name) = 0;
  virtual uint64_t Root() const = 0;
};

/// Uniform data-path interface for the fio tests.
class DataOps {
 public:
  virtual ~DataOps() = default;
  /// Make `bytes` of file content addressable without simulating the fio
  /// laydown phase (excluded from measurement, as in the paper).
  virtual sim::Task<Result<uint64_t>> PrepareFile(uint64_t bytes) = 0;
  virtual sim::Task<Status> Write(uint64_t file, uint64_t offset, uint64_t len,
                                  bool overwrite) = 0;
  virtual sim::Task<Status> Read(uint64_t file, uint64_t offset, uint64_t len) = 0;
  /// Associate a file (created through MetaOps) with its parent directory —
  /// needed by backends whose size updates route by directory authority.
  virtual void BindParent(uint64_t file, uint64_t dir) {
    (void)file;
    (void)dir;
  }
};

// --- CFS adapters ------------------------------------------------------------

class CfsMetaOps : public MetaOps {
 public:
  /// Operates on ONE mount: construct from a Client (its default mount) or
  /// from a specific MountContext in multi-tenant rigs.
  explicit CfsMetaOps(client::Client* c) : m_(c->default_mount()) {}
  explicit CfsMetaOps(client::MountContext* m) : m_(m) {}
  sim::Task<Result<uint64_t>> Mkdir(uint64_t parent, std::string name) override;
  sim::Task<Result<uint64_t>> Create(uint64_t parent, std::string name) override;
  sim::Task<Result<size_t>> StatDir(uint64_t dir) override;
  sim::Task<Status> Remove(uint64_t parent, std::string name) override;
  sim::Task<Status> Rmdir(uint64_t parent, std::string name) override;
  uint64_t Root() const override { return meta::kRootInode; }

 private:
  client::MountContext* m_;
};

class CfsDataOps : public DataOps {
 public:
  CfsDataOps(harness::Cluster* cluster, client::Client* c, uint64_t small_threshold)
      : cluster_(cluster), m_(c->default_mount()), small_threshold_(small_threshold) {}
  CfsDataOps(harness::Cluster* cluster, client::MountContext* m, uint64_t small_threshold)
      : cluster_(cluster), m_(m), small_threshold_(small_threshold) {}
  sim::Task<Result<uint64_t>> PrepareFile(uint64_t bytes) override;
  sim::Task<Status> Write(uint64_t file, uint64_t offset, uint64_t len,
                          bool overwrite) override;
  sim::Task<Status> Read(uint64_t file, uint64_t offset, uint64_t len) override;

 private:
  /// Fill-pattern payload of at least `len` bytes, shared across every write
  /// this adapter issues: the client's zero-copy path slices it per packet,
  /// so no per-op payload is materialized (and the Buffer CRC memo hits on
  /// every repeated (offset, len) slice).
  Buffer FillPayload(uint64_t len);

  harness::Cluster* cluster_;
  client::MountContext* m_;
  uint64_t small_threshold_;
  uint64_t prepared_ = 0;
  Buffer fill_;
};

// --- Ceph adapters -------------------------------------------------------------

class CephMetaOps : public MetaOps {
 public:
  explicit CephMetaOps(ceph::CephClient* c) : c_(c) {}
  sim::Task<Result<uint64_t>> Mkdir(uint64_t parent, std::string name) override;
  sim::Task<Result<uint64_t>> Create(uint64_t parent, std::string name) override;
  sim::Task<Result<size_t>> StatDir(uint64_t dir) override;
  sim::Task<Status> Remove(uint64_t parent, std::string name) override;
  sim::Task<Status> Rmdir(uint64_t parent, std::string name) override;
  uint64_t Root() const override { return ceph::kCephRoot; }

 private:
  ceph::CephClient* c_;
};

class CephDataOps : public DataOps {
 public:
  explicit CephDataOps(ceph::CephClient* c) : c_(c) {}
  sim::Task<Result<uint64_t>> PrepareFile(uint64_t bytes) override;
  sim::Task<Status> Write(uint64_t file, uint64_t offset, uint64_t len,
                          bool overwrite) override;
  sim::Task<Status> Read(uint64_t file, uint64_t offset, uint64_t len) override;

 private:
  ceph::CephClient* c_;
  /// Per-client working directory ("each client in Ceph operates different
  /// file directories and each directory is bonded to a specific MDS",
  /// §4.3) — size updates then spread across MDSs instead of hammering the
  /// root's authority.
  uint64_t dir_ = 0;
  bool creating_dir_ = false;
  /// file -> parent dir (SetSize must target the file's own authority).
  std::map<uint64_t, uint64_t> file_dir_;

 public:
  void BindParent(uint64_t file, uint64_t dir) override { file_dir_[file] = dir; }
};

// --- mdtest runner ---------------------------------------------------------------

enum class MdTest {
  kDirCreation,
  kDirStat,
  kDirRemoval,
  kFileCreation,
  kFileRemoval,
  kTreeCreation,
  kTreeRemoval,
};

const char* MdTestName(MdTest t);

struct MdtestParams {
  /// Namespaces the working directories so sequential phases on one cluster
  /// do not collide (mdtest runs its phases back to back on shared state).
  std::string phase_tag;
  /// Items per process for the flat tests.
  int items_per_proc = 64;
  /// Files visible to each DirStat scan.
  int stat_dir_files = 16;
  int stat_repetitions = 8;  // scans per process
  /// mdtest -N rank shift: process i stats the directory of process
  /// (i + stat_shift) %% procs, so stats cross client caches when the shift
  /// crosses a client boundary.
  int stat_shift = 0;
  /// Tree shape for TreeCreation/TreeRemoval (non-leaf directories).
  int tree_depth = 3;
  int tree_branch = 8;
};

struct BenchResult {
  uint64_t ops = 0;
  SimDuration elapsed = 0;
  /// Per-op completion latency of the measured phase (virtual time). One
  /// sample per counted op; cells of one sweep merge via MergeFrom so a
  /// bench can print one latency_quantiles line per pattern.
  obs::Histogram latency;
  double Iops() const {
    return elapsed > 0 ? static_cast<double>(ops) * kSec / static_cast<double>(elapsed) : 0;
  }
};

/// Run one mdtest phase: `procs[i]` is the per-process MetaOps handle
/// (processes of one client share a handle; distinct clients get their own).
/// `proc_tags` must be unique per process (used to namespace paths).
BenchResult RunMdtest(sim::Scheduler* sched, MdTest test,
                      const std::vector<MetaOps*>& procs, const MdtestParams& params);

// --- fio runner -------------------------------------------------------------------

enum class FioPattern { kSeqWrite, kSeqRead, kRandWrite, kRandRead };

const char* FioPatternName(FioPattern p);

struct FioParams {
  uint64_t file_bytes = 1 * kGiB;  // per-process file (paper: 40 GB, scaled)
  uint64_t seq_block = 128 * kKiB;
  uint64_t rand_block = 4 * kKiB;
  int ops_per_proc = 200;
};

BenchResult RunFio(sim::Scheduler* sched, FioPattern pattern,
                   const std::vector<DataOps*>& procs, const FioParams& params);

/// Small-file test (Fig. 10): write/read/remove files of a given size.
enum class SmallFileTest { kWrite, kRead, kRemoval };
BenchResult RunSmallFiles(sim::Scheduler* sched, SmallFileTest test, uint64_t file_size,
                          const std::vector<MetaOps*>& meta,
                          const std::vector<DataOps*>& data, int files_per_proc);

}  // namespace cfs::bench
