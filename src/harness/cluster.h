// Full-cluster harness: brings up the resource manager (3 replicas), N
// storage nodes each running a meta node and a data node (the paper deploys
// both on the same 10 machines, §4.1), wires heartbeats and the deleted-
// inode content purger, and hands out mounted clients.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/check.h"
#include "datanode/data_node.h"
#include "master/master.h"
#include "meta/meta_node.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "raft/multiraft.h"
#include "rpc/metrics.h"
#include "rpc/router.h"
#include "rpc/service.h"
#include "sim/network.h"

namespace cfs::harness {

struct ClusterOptions {
  int num_nodes = 10;   // storage machines (meta + data on each, §4.1)
  int num_masters = 3;  // resource manager replicas
  uint64_t seed = 1;
  sim::NetworkOptions network;
  sim::HostOptions host;
  raft::RaftOptions raft;
  meta::MetaNodeOptions meta;
  data::DataNodeOptions data;
  master::MasterOptions master;
  client::ClientOptions client;
  SimDuration heartbeat_interval = 1 * kSec;
  /// Extent stores keep real bytes (tests) or account only (benches).
  bool track_contents = true;
  /// Enable the deterministic span tracer (obs::Tracer). Off by default:
  /// tracing never perturbs the schedule either way, but the span log costs
  /// memory proportional to traffic.
  bool trace = false;
  /// Enable windowed health telemetry (DESIGN.md "Health telemetry"): a
  /// per-node obs::TimeSeries plus one cluster-wide obs::HealthScorer, both
  /// filled by passive observers on disks, chain channels and meta execs,
  /// sampled and scored from each node's HeartbeatLoop, with each node's
  /// slice of the scorer piggybacked on its heartbeat. The scorer is
  /// cluster-wide because its cohorts must span nodes: in this simulation
  /// (as in a raft-heavy deployment) one disk per node carries most of the
  /// traffic, so a disk's only comparable peers are the *other nodes'*
  /// equivalently-loaded disks, not its mostly-idle siblings.
  /// Schedule-neutral by construction — no events are added either way
  /// (tests/determinism_test.cc pins it).
  bool health = false;
  obs::HealthOptions health_opts;
};

/// Per-node health telemetry: the windowed time-series store, fed by passive
/// observers and sampled at the node's heartbeat cadence. (Scoring state
/// lives in the cluster-wide HealthScorer owned by the Cluster.)
struct NodeHealth {
  obs::TimeSeries series;
  explicit NodeHealth(const obs::TimeSeriesOptions& ts) : series(ts) {}
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& opts = {});

  sim::Scheduler& sched() { return sched_; }
  sim::Network& net() { return net_; }
  const ClusterOptions& options() const { return opts_; }

  /// Bring the cluster up: elect the master leader, register every node,
  /// start heartbeats.
  sim::Task<Status> Start();

  /// Create a volume and wait until every partition has a raft leader.
  /// `qos` carries the per-volume limits and fair-share weight (defaults =
  /// unlimited, weight 1 — schedule-identical to the pre-QoS encoding).
  sim::Task<Status> CreateVolume(std::string name, uint32_t meta_partitions,
                                 uint32_t data_partitions,
                                 master::VolumeQos qos = {});

  /// Allocate a new client machine mounted on `volume`.
  sim::Task<Result<client::Client*>> MountClient(std::string volume);

  /// Multi-tenant client machine: one client host with one MountContext per
  /// named volume (the first becomes the default mount).
  sim::Task<Result<client::Client*>> MountClient(std::vector<std::string> volumes);

  /// Unmount every volume of `c`: its refresh loops stop at their next
  /// wakeup and further ops fail Unavailable. The client object stays owned
  /// by the cluster (detached coroutines may still land on the retired
  /// contexts) and keeps contributing its accumulated metrics.
  void UnmountClient(client::Client* c) { c->UnmountAll(); }

  // Accessors.
  master::MasterNode* master(int i) { return masters_[i].get(); }
  master::MasterNode* master_leader();
  meta::MetaNode* meta_node(int i) { return meta_nodes_[i].get(); }
  data::DataNode* data_node(int i) { return data_nodes_[i].get(); }
  sim::Host* node_host(int i) { return node_hosts_[i]; }
  sim::Host* master_host(int i) { return master_hosts_[i]; }
  raft::RaftHost* raft_host_of(int i) { return raft_hosts_[i].get(); }
  int num_nodes() const { return static_cast<int>(node_hosts_.size()); }
  std::vector<sim::NodeId> master_ids() const { return master_ids_; }

  /// Crash/restart storage node i (with full recovery: raft groups, extent
  /// alignment, CRC cache rebuild).
  void CrashNode(int i);
  sim::Task<void> RestartNode(int i);

  /// Direct (harness-level) lookup used by the purge wiring and tests.
  std::vector<sim::NodeId> DataPartitionReplicas(data::PartitionId pid);
  bool AllPartitionsHaveLeaders();
  /// Leader check scoped to one volume's partitions (CreateVolume's wait).
  bool VolumePartitionsHaveLeaders(master::VolumeId volume);

  /// Per-RPC metrics of every harness-issued leg (registration, heartbeats,
  /// volume admin, the GC purge path) and — since the consensus transport
  /// routes through rpc::Channel — every raft leg of every RaftHost. Client
  /// legs live in each client's own registry (client->rpc_metrics()).
  const rpc::MetricRegistry& rpc_metrics() const { return rpc_metrics_; }

  /// The scheduler-owned span tracer (enabled iff ClusterOptions.trace).
  obs::Tracer& tracer() { return sched_.tracer(); }

  // Health telemetry (enabled iff ClusterOptions.health).
  bool health_enabled() const { return health_scorer_ != nullptr; }
  obs::TimeSeries* node_series(int i) {
    return health_enabled() ? &node_health_[i]->series : nullptr;
  }
  /// The cluster-wide gray-failure scorer (targets "n<i>.disk<d>" in cohort
  /// "disk", "n<i>.peer<id>" in cohort "peer").
  obs::HealthScorer* health_scorer() { return health_scorer_.get(); }
  /// Force a collection + scoring pass on every node at the current virtual
  /// time (tests/benches flush pending windows before dumping).
  void CollectAllNow();
  /// Cluster-wide health dump: {"nodes":{"<i>":{"series":…}},"scorer":…,
  /// "master":<leader HealthViewJson or null>} — byte-stable.
  std::string HealthJson();
  /// The scorer's health-event log, one JSON object per line (log order;
  /// targets carry the node prefix, so lines are self-describing).
  std::string HealthEventsJsonl() const;

  /// Unified cluster-wide metric registry (DESIGN.md "Observability"): every
  /// per-node RPC registry (harness/raft, masters, data nodes, clients)
  /// exported into the shared "rpc." namespace, raft group-commit and WAL
  /// accounting under "raft.", summed client workflow stats under "client.",
  /// disk and network accounting under "disk." / "net.". Counters sum,
  /// gauges merge as high-watermarks, histograms merge bucket-wise.
  obs::Registry Metrics();
  std::string MetricsJson() { return Metrics().DumpJson(); }

  /// Group-commit counters summed across every RaftHost (masters + nodes).
  raft::GroupCommitStats group_commit_stats() const {
    raft::GroupCommitStats s;
    for (const auto& rh : raft_hosts_) s.MergeFrom(rh->group_commit_stats());
    return s;
  }

  /// Raft log Append() write accounting summed across every RaftHost.
  raft::RaftHost::LogWriteStats log_write_stats() const {
    raft::RaftHost::LogWriteStats s;
    for (const auto& rh : raft_hosts_) {
      raft::RaftHost::LogWriteStats h = rh->log_write_stats();
      s.append_writes += h.append_writes;
      s.appended_entries += h.appended_entries;
      s.persisted_bytes += h.persisted_bytes;
    }
    return s;
  }

  /// Deep check of every machine-checkable invariant in the cluster (see
  /// common/check.h and DESIGN.md "Invariant catalog"): per-group raft
  /// invariants across replicas, per-partition local checks (extent store,
  /// chain bookkeeping, meta trees), cross-replica data agreement (every
  /// replica holds at least the chain leader's committed prefix; byte-level
  /// CRC agreement when two replicas are equally applied), and volume-wide
  /// dentry->inode referential integrity with nlink accounting. Replicas on
  /// crashed hosts are skipped — their in-memory state is stale by design
  /// and is rebuilt on restart. Call between scheduler events at scenario
  /// checkpoints and at the end of every integration/fault test.
  InvariantReport CheckInvariants();

  // Convenience for tests: run the scheduler until `pred` is true or the
  // step budget runs out. Returns pred().
  template <typename Pred>
  bool RunUntil(Pred pred, SimDuration step = 10 * kMsec, int max_steps = 3000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      sched_.RunFor(step);
    }
    return pred();
  }

 private:
  sim::Task<void> HeartbeatLoop(int node_index);
  meta::MetaNode::ExtentPurger MakePurger(int node_index);
  sim::Task<Status> PurgeInodeContent(int node_index, meta::Inode inode);
  void WireHealth();
  void CollectNode(int node_index);

  ClusterOptions opts_;
  sim::Scheduler sched_;
  sim::Network net_;
  // Harness-side rpc service layer: one Router shared by the admin/GC paths
  // (master leader cache + purge-path partition views) and one DataService
  // per storage node (the purger sends from that node's host).
  rpc::MetricRegistry rpc_metrics_;
  std::unique_ptr<rpc::Router> router_;
  std::unique_ptr<rpc::Channel> channel_;
  std::vector<std::unique_ptr<rpc::DataService>> purge_svcs_;
  std::vector<sim::Host*> master_hosts_;
  std::vector<sim::Host*> node_hosts_;
  std::vector<sim::NodeId> master_ids_;
  std::vector<std::unique_ptr<raft::RaftHost>> raft_hosts_;        // one per host
  std::vector<std::unique_ptr<master::MasterNode>> masters_;
  std::vector<std::unique_ptr<meta::MetaNode>> meta_nodes_;
  std::vector<std::unique_ptr<data::DataNode>> data_nodes_;
  std::vector<std::unique_ptr<client::Client>> clients_;
  std::vector<std::string> volumes_;
  std::vector<std::unique_ptr<NodeHealth>> node_health_;  // empty unless opts.health
  std::unique_ptr<obs::HealthScorer> health_scorer_;      // null unless opts.health
};

/// Determinism-auditor harness mode: run `scenario` twice against freshly
/// constructed clusters with identical options (hence identical seeds) and
/// return both trace hashes. The scenario owns the whole run — boot, client
/// traffic, crashes — and the caller fails the test when the hashes diverge,
/// which pins down iteration-order or wall-clock nondeterminism the moment a
/// change introduces it. Hashes are only comparable within one process (see
/// sim/scheduler.h), which holds here because both runs share it.
template <typename Scenario>
std::pair<uint64_t, uint64_t> AuditDeterminism(const ClusterOptions& opts,
                                               Scenario scenario) {
  auto once = [&]() {
    Cluster cluster(opts);
    scenario(cluster);
    return cluster.sched().trace_hash();
  };
  uint64_t first = once();
  uint64_t second = once();
  return {first, second};
}

/// Run a coroutine to completion on the scheduler (test helper). The
/// scheduler may have periodic background events; we bound the event count.
template <typename T>
std::optional<T> RunTask(sim::Scheduler& sched, sim::Task<T> task,
                         uint64_t max_events = 50'000'000) {
  std::optional<T> out;
  sim::Spawn([](sim::Task<T> t, std::optional<T>& out) -> sim::Task<void> {
    out = co_await std::move(t);
  }(std::move(task), out));
  for (uint64_t i = 0; i < max_events && !out.has_value(); i++) {
    if (!sched.RunOne()) break;
  }
  return out;
}

/// Void-task variant of RunTask; returns true if the task completed.
inline bool RunTaskVoid(sim::Scheduler& sched, sim::Task<void> task,
                        uint64_t max_events = 50'000'000) {
  bool done = false;
  sim::Spawn([](sim::Task<void> t, bool& done) -> sim::Task<void> {
    co_await std::move(t);
    done = true;
  }(std::move(task), done));
  for (uint64_t i = 0; i < max_events && !done; i++) {
    if (!sched.RunOne()) break;
  }
  return done;
}

}  // namespace cfs::harness
