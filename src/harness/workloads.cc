#include "harness/workloads.h"

#include "common/rng.h"

namespace cfs::bench {

using harness::RunTask;
using sim::Spawn;
using sim::Task;

// --- CFS adapters ---------------------------------------------------------------

Task<Result<uint64_t>> CfsMetaOps::Mkdir(uint64_t parent, std::string name) {
  auto r = co_await m_->Create(parent, std::move(name), meta::FileType::kDir);
  if (!r.ok()) co_return r.status();
  co_return r->id;
}

Task<Result<uint64_t>> CfsMetaOps::Create(uint64_t parent, std::string name) {
  auto r = co_await m_->Create(parent, std::move(name), meta::FileType::kFile);
  if (!r.ok()) co_return r.status();
  co_return r->id;
}

Task<Result<size_t>> CfsMetaOps::StatDir(uint64_t dir) {
  // readdir + batchInodeGet, with client-side caching (§4.2).
  auto r = co_await m_->ReadDirPlus(dir);
  if (!r.ok()) co_return r.status();
  co_return r->size();
}

Task<Status> CfsMetaOps::Remove(uint64_t parent, std::string name) {
  co_return co_await m_->Unlink(parent, std::move(name));
}

Task<Status> CfsMetaOps::Rmdir(uint64_t parent, std::string name) {
  co_return co_await m_->Unlink(parent, std::move(name));
}

Task<Result<uint64_t>> CfsDataOps::PrepareFile(uint64_t bytes) {
  // Create the inode, then materialize extents directly on every replica
  // (the laydown phase the paper's fio runs exclude from measurement).
  static uint64_t file_seq = 0;
  std::string name = "fio-" + std::to_string(m_->node()) + "-" + std::to_string(file_seq++);
  auto created = co_await m_->Create(meta::kRootInode, name, meta::FileType::kFile);
  if (!created.ok()) co_return created.status();
  meta::InodeId ino = created->id;

  master::MasterNode* leader = cluster_->master_leader();
  if (!leader) co_return Status::Unavailable("no master leader");
  std::vector<data::PartitionId> pids;
  for (const auto& [pid, rec] : leader->state().data_partitions()) pids.push_back(pid);
  if (pids.empty()) co_return Status::Unavailable("no data partitions");

  const uint64_t extent_size = 128 * kMiB;
  std::vector<meta::ExtentKey> keys;
  uint64_t offset = 0;
  while (offset < bytes) {
    uint64_t len = std::min(extent_size, bytes - offset);
    data::PartitionId pid = pids[(prepared_ + offset / extent_size) % pids.size()];
    storage::ExtentId eid = 1'000'000 + ino * 1024 + offset / extent_size;
    for (sim::NodeId node : cluster_->DataPartitionReplicas(pid)) {
      for (int i = 0; i < cluster_->num_nodes(); i++) {
        if (cluster_->node_host(i)->id() != node) continue;
        data::DataPartition* dp = cluster_->data_node(i)->GetPartition(pid);
        if (dp) {
          (void)dp->store().ImportExtent(eid, len, false);
          dp->set_committed(eid, len);
        }
      }
    }
    meta::ExtentKey key;
    key.file_offset = offset;
    key.partition_id = pid;
    key.extent_id = eid;
    key.extent_offset = 0;
    key.size = len;
    keys.push_back(key);
    offset += len;
  }
  prepared_++;
  m_->InjectPreparedFile(ino, std::move(keys), bytes);
  co_return ino;
}

Buffer CfsDataOps::FillPayload(uint64_t len) {
  if (fill_.size() < len) {
    fill_ = Buffer::Filled(std::max<uint64_t>(len, 4 * 1024 * 1024), 'w');
  }
  return fill_.Slice(0, len);
}

Task<Status> CfsDataOps::Write(uint64_t file, uint64_t offset, uint64_t len, bool overwrite) {
  (void)overwrite;  // the client splits overwrite/append itself (§2.7.2)
  CFS_CO_RETURN_IF_ERROR(co_await m_->Write(file, offset, FillPayload(len)));
  if (!overwrite) {
    // Appends sync size/extent metadata (fsync-per-op keeps parity with the
    // Ceph model's per-op size persist).
    co_return co_await m_->Fsync(file);
  }
  co_return Status::OK();
}

Task<Status> CfsDataOps::Read(uint64_t file, uint64_t offset, uint64_t len) {
  auto r = co_await m_->Read(file, offset, len);
  co_return r.status();
}

// --- Ceph adapters ----------------------------------------------------------------

Task<Result<uint64_t>> CephMetaOps::Mkdir(uint64_t parent, std::string name) {
  auto r = co_await c_->Mkdir(parent, std::move(name));
  if (!r.ok()) co_return r.status();
  co_return *r;
}

Task<Result<uint64_t>> CephMetaOps::Create(uint64_t parent, std::string name) {
  auto r = co_await c_->Create(parent, std::move(name));
  if (!r.ok()) co_return r.status();
  co_return *r;
}

Task<Result<size_t>> CephMetaOps::StatDir(uint64_t dir) {
  auto r = co_await c_->ReaddirPlus(dir);
  if (!r.ok()) co_return r.status();
  co_return r->size();
}

Task<Status> CephMetaOps::Remove(uint64_t parent, std::string name) {
  co_return co_await c_->Remove(parent, std::move(name));
}

Task<Status> CephMetaOps::Rmdir(uint64_t parent, std::string name) {
  co_return co_await c_->Rmdir(parent, std::move(name));
}

Task<Result<uint64_t>> CephDataOps::PrepareFile(uint64_t bytes) {
  (void)bytes;  // objects materialize lazily in the model
  // One directory per fio file: "each client in Ceph operates different
  // file directories and each directory is bonded to a specific MDS in
  // order to maximize the concurrency" (§4.3).
  static uint64_t file_seq = 0;
  auto d = co_await c_->Mkdir(ceph::kCephRoot, "fio-dir-" + std::to_string(file_seq++));
  if (!d.ok()) co_return d.status();
  auto r = co_await c_->Create(*d, "fio-" + std::to_string(file_seq++));
  if (!r.ok()) co_return r.status();
  file_dir_[*r] = *d;
  co_return *r;
}

Task<Status> CephDataOps::Write(uint64_t file, uint64_t offset, uint64_t len,
                                bool overwrite) {
  uint64_t parent = 0;
  if (!overwrite) {
    auto it = file_dir_.find(file);
    parent = it == file_dir_.end() ? ceph::kCephRoot : it->second;
  }
  co_return co_await c_->Write(file, parent, offset, len, overwrite);
}

Task<Status> CephDataOps::Read(uint64_t file, uint64_t offset, uint64_t len) {
  co_return co_await c_->Read(file, offset, len);
}

// --- mdtest ------------------------------------------------------------------------

const char* MdTestName(MdTest t) {
  switch (t) {
    case MdTest::kDirCreation: return "DirCreation";
    case MdTest::kDirStat: return "DirStat";
    case MdTest::kDirRemoval: return "DirRemoval";
    case MdTest::kFileCreation: return "FileCreation";
    case MdTest::kFileRemoval: return "FileRemoval";
    case MdTest::kTreeCreation: return "TreeCreation";
    case MdTest::kTreeRemoval: return "TreeRemoval";
  }
  return "?";
}

namespace {

struct ProcState {
  uint64_t parent = 0;              // per-process working directory
  std::vector<uint64_t> dirs;       // created directories (DirRemoval)
  std::vector<std::string> names;   // created entries
  std::vector<std::pair<uint64_t, std::string>> tree_dirs;  // (parent, name)
  std::vector<uint64_t> tree_order;                         // creation order
};

/// Build a tree of non-leaf directories; returns directories in creation
/// order (parents before children).
Task<Status> BuildTree(MetaOps* ops, uint64_t root, int depth, int branch,
                       const std::string& tag,
                       std::vector<std::pair<uint64_t, std::string>>* dirs_by_parent,
                       std::vector<uint64_t>* order) {
  struct Frame {
    uint64_t dir;
    int depth;
  };
  std::vector<Frame> stack{{root, 0}};
  int seq = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.depth >= depth) continue;
    for (int b = 0; b < branch; b++) {
      std::string name = tag + "-t" + std::to_string(seq++);
      auto d = co_await ops->Mkdir(f.dir, name);
      if (!d.ok()) co_return d.status();
      if (dirs_by_parent) dirs_by_parent->emplace_back(f.dir, name);
      if (order) order->push_back(*d);
      stack.push_back({*d, f.depth + 1});
    }
  }
  co_return Status::OK();
}

/// Shared context for the per-process mdtest coroutines.  The coroutines
/// take this as an explicit pointer parameter instead of capturing the
/// enclosing frame by reference: by-ref captures live in the lambda OBJECT,
/// not the coroutine frame, and dangle if the task outlives the scope (A2).
/// RunMdtest pumps the scheduler until every proc joins, so the context
/// strictly outlives the coroutines.
struct MdCtx {
  sim::Scheduler* sched;
  MdTest test;
  const std::vector<MetaOps*>* procs;
  const MdtestParams* params;
  std::vector<ProcState>* state;
  int n;
  uint64_t total_ops = 0;
  obs::Histogram latency;
};

Task<void> MdtestSetupProc(MdCtx* c, int i) {
  MetaOps* ops = (*c->procs)[i];
  const MdtestParams& params = *c->params;
  std::string tag = params.phase_tag + "p" + std::to_string(i);
  auto dir = co_await ops->Mkdir(ops->Root(), tag);
  if (!dir.ok()) co_return;
  (*c->state)[i].parent = *dir;
  const uint64_t parent = *dir;
  switch (c->test) {
    case MdTest::kDirStat: {
      for (int k = 0; k < params.stat_dir_files; k++) {
        std::string name = tag + "-s" + std::to_string(k);
        (void)co_await ops->Create(parent, name);
      }
      break;
    }
    case MdTest::kDirRemoval: {
      for (int k = 0; k < params.items_per_proc; k++) {
        std::string name = tag + "-d" + std::to_string(k);
        auto d = co_await ops->Mkdir(parent, name);
        if (d.ok()) (*c->state)[i].names.push_back(name);
      }
      break;
    }
    case MdTest::kFileRemoval: {
      for (int k = 0; k < params.items_per_proc; k++) {
        std::string name = tag + "-f" + std::to_string(k);
        auto f = co_await ops->Create(parent, name);
        if (f.ok()) (*c->state)[i].names.push_back(name);
      }
      break;
    }
    case MdTest::kTreeRemoval: {
      (void)co_await BuildTree(ops, parent, params.tree_depth, params.tree_branch,
                               tag, &(*c->state)[i].tree_dirs,
                               &(*c->state)[i].tree_order);
      break;
    }
    default:
      break;
  }
}

Task<void> MdtestMeasuredProc(MdCtx* c, int i) {
  MetaOps* ops = (*c->procs)[i];
  const MdtestParams& params = *c->params;
  sim::Scheduler* sched = c->sched;
  std::string tag = params.phase_tag + "p" + std::to_string(i);
  const uint64_t parent = (*c->state)[i].parent;
  switch (c->test) {
    case MdTest::kDirCreation: {
      for (int k = 0; k < params.items_per_proc; k++) {
        SimTime s = sched->Now();
        auto d = co_await ops->Mkdir(parent, tag + "-d" + std::to_string(k));
        if (d.ok()) {
          c->total_ops++;
          c->latency.Add(sched->Now() - s);
        }
      }
      break;
    }
    case MdTest::kFileCreation: {
      for (int k = 0; k < params.items_per_proc; k++) {
        SimTime s = sched->Now();
        auto f = co_await ops->Create(parent, tag + "-f" + std::to_string(k));
        if (f.ok()) {
          c->total_ops++;
          c->latency.Add(sched->Now() - s);
        }
      }
      break;
    }
    case MdTest::kDirStat: {
      // mdtest counts one op per stat'ed entry; the -N rank shift makes
      // process i stat another process's directory. Latency samples are
      // per scan (one readdirplus round), not per entry.
      uint64_t target = (*c->state)[(i + params.stat_shift) % c->n].parent;
      for (int rep = 0; rep < params.stat_repetitions; rep++) {
        SimTime s = sched->Now();
        auto r = co_await ops->StatDir(target);
        if (r.ok()) {
          c->total_ops += *r;
          c->latency.Add(sched->Now() - s);
        }
      }
      break;
    }
    case MdTest::kDirRemoval: {
      // Snapshot the names: the loop suspends on every Rmdir, and iterating
      // state owned outside this frame across suspensions is an A1 hazard.
      const std::vector<std::string> names = (*c->state)[i].names;
      for (const auto& name : names) {
        SimTime s = sched->Now();
        Status st = co_await ops->Rmdir(parent, name);
        if (st.ok()) {
          c->total_ops++;
          c->latency.Add(sched->Now() - s);
        }
      }
      break;
    }
    case MdTest::kFileRemoval: {
      const std::vector<std::string> names = (*c->state)[i].names;
      for (const auto& name : names) {
        SimTime s = sched->Now();
        Status st = co_await ops->Remove(parent, name);
        if (st.ok()) {
          c->total_ops++;
          c->latency.Add(sched->Now() - s);
        }
      }
      break;
    }
    case MdTest::kTreeCreation: {
      // mdtest builds the directory tree once (rank 0); an "op" here is
      // one full tree, which is why the paper's numbers are ~10 IOPS.
      SimTime s = sched->Now();
      Status st = co_await BuildTree(ops, parent, params.tree_depth,
                                     params.tree_branch, tag, nullptr, nullptr);
      if (st.ok()) {
        c->total_ops++;
        c->latency.Add(sched->Now() - s);
      }
      break;
    }
    case MdTest::kTreeRemoval: {
      // mdtest's removal walks the tree via readdir before unlinking:
      // leaves-first, scanning each directory to discover its entries.
      // Snapshots, for the same reason as the removal cases above.
      const std::vector<uint64_t> order = (*c->state)[i].tree_order;
      const std::vector<std::pair<uint64_t, std::string>> dirs =
          (*c->state)[i].tree_dirs;
      SimTime s = sched->Now();
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        (void)co_await ops->StatDir(*it);
      }
      for (auto it = dirs.rbegin(); it != dirs.rend(); ++it) {
        (void)co_await ops->Rmdir(it->first, it->second);
      }
      c->total_ops++;
      c->latency.Add(sched->Now() - s);
      break;
    }
  }
}

}  // namespace

BenchResult RunMdtest(sim::Scheduler* sched, MdTest test,
                      const std::vector<MetaOps*>& procs, const MdtestParams& params) {
  const int n = static_cast<int>(procs.size());
  std::vector<ProcState> state(n);
  MdCtx ctx{sched, test, &procs, &params, &state, n};

  // ---- Setup phase (unmeasured) ----
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      Spawn([](Task<void> t, std::function<void()> done) -> Task<void> {
        co_await std::move(t);
        done();
      }(MdtestSetupProc(&ctx, i), done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }

  // ---- Measured phase ----
  SimTime t0 = sched->Now();
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      Spawn([](Task<void> t, std::function<void()> done) -> Task<void> {
        co_await std::move(t);
        done();
      }(MdtestMeasuredProc(&ctx, i), done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }
  BenchResult res;
  res.ops = ctx.total_ops;
  res.elapsed = sched->Now() - t0;
  res.latency = ctx.latency;
  return res;
}

// --- fio ---------------------------------------------------------------------------

const char* FioPatternName(FioPattern p) {
  switch (p) {
    case FioPattern::kSeqWrite: return "SeqWrite";
    case FioPattern::kSeqRead: return "SeqRead";
    case FioPattern::kRandWrite: return "RandWrite";
    case FioPattern::kRandRead: return "RandRead";
  }
  return "?";
}

BenchResult RunFio(sim::Scheduler* sched, FioPattern pattern,
                   const std::vector<DataOps*>& procs, const FioParams& params) {
  const int n = static_cast<int>(procs.size());
  std::vector<uint64_t> files(n, 0);

  // Laydown (unmeasured).
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      Spawn([](DataOps* ops, uint64_t bytes, uint64_t& file,
               std::function<void()> done) -> Task<void> {
        auto f = co_await ops->PrepareFile(bytes);
        if (f.ok()) file = *f;
        done();
      }(procs[i], params.file_bytes, files[i], done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }

  uint64_t total_ops = 0;
  obs::Histogram latency;
  SimTime t0 = sched->Now();
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      Spawn([](sim::Scheduler* sched, FioPattern pattern, DataOps* ops, uint64_t file,
               FioParams params, int seed, uint64_t& total, obs::Histogram& lat,
               std::function<void()> done) -> Task<void> {
        if (file == 0) {
          done();
          co_return;
        }
        Rng rng(0xf10f10 + seed);
        uint64_t seq_pos = 0;
        for (int k = 0; k < params.ops_per_proc; k++) {
          SimTime op_start = sched->Now();
          Status st;
          switch (pattern) {
            case FioPattern::kSeqWrite: {
              // Appends at EOF: overwrite=false (primary-backup path).
              st = co_await ops->Write(file, params.file_bytes + seq_pos,
                                       params.seq_block, false);
              seq_pos += params.seq_block;
              break;
            }
            case FioPattern::kSeqRead: {
              uint64_t off = seq_pos % (params.file_bytes - params.seq_block);
              st = co_await ops->Read(file, off, params.seq_block);
              seq_pos += params.seq_block;
              break;
            }
            case FioPattern::kRandWrite: {
              uint64_t off = rng.Uniform(params.file_bytes - params.rand_block);
              st = co_await ops->Write(file, off, params.rand_block, true);
              break;
            }
            case FioPattern::kRandRead: {
              uint64_t off = rng.Uniform(params.file_bytes - params.rand_block);
              st = co_await ops->Read(file, off, params.rand_block);
              break;
            }
          }
          if (st.ok()) {
            total++;
            lat.Add(sched->Now() - op_start);
          }
        }
        done();
      }(sched, pattern, procs[i], files[i], params, i, total_ops, latency, done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }
  BenchResult res;
  res.ops = total_ops;
  res.elapsed = sched->Now() - t0;
  res.latency = latency;
  return res;
}

// --- Small files (Fig. 10) -----------------------------------------------------------

BenchResult RunSmallFiles(sim::Scheduler* sched, SmallFileTest test, uint64_t file_size,
                          const std::vector<MetaOps*>& meta,
                          const std::vector<DataOps*>& data, int files_per_proc) {
  const int n = static_cast<int>(meta.size());
  std::vector<std::vector<std::pair<uint64_t, std::string>>> files(n);
  std::vector<uint64_t> parents(n, 0);

  // Setup: per-proc dir; for read/removal also pre-create the files.
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      Spawn([](MetaOps* m, DataOps* d, SmallFileTest test, uint64_t file_size, int count,
               int i, uint64_t& parent, std::vector<std::pair<uint64_t, std::string>>& out,
               std::function<void()> done) -> Task<void> {
        std::string tag = "sf" + std::to_string(i);
        auto dir = co_await m->Mkdir(m->Root(), tag);
        if (dir.ok()) {
          parent = *dir;
          if (test != SmallFileTest::kWrite) {
            for (int k = 0; k < count; k++) {
              std::string name = tag + "-" + std::to_string(k);
              auto f = co_await m->Create(parent, name);
              if (!f.ok()) continue;
              d->BindParent(*f, parent);
              (void)co_await d->Write(*f, 0, file_size, false);
              out.emplace_back(*f, name);
            }
          }
        }
        done();
      }(meta[i], data[i], test, file_size, files_per_proc, i, parents[i], files[i], done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }

  uint64_t total_ops = 0;
  obs::Histogram latency;
  SimTime t0 = sched->Now();
  {
    sim::Join join(sched, n);
    for (int i = 0; i < n; i++) {
      auto done = join.Arrive();
      // `mine` comes in BY VALUE: the read/removal cases iterate it across
      // suspensions, so the coroutine frame must own its copy (A1).
      Spawn([](sim::Scheduler* sched, MetaOps* m, DataOps* d, SmallFileTest test,
               uint64_t file_size, int count, int i, uint64_t parent,
               std::vector<std::pair<uint64_t, std::string>> mine, uint64_t& total,
               obs::Histogram& lat, std::function<void()> done) -> Task<void> {
        std::string tag = "sf" + std::to_string(i);
        switch (test) {
          case SmallFileTest::kWrite: {
            // One "op" is create + write (the paper's small-file write is a
            // whole-file laydown), so the sample spans both.
            for (int k = 0; k < count; k++) {
              SimTime s = sched->Now();
              std::string name = tag + "-w" + std::to_string(k);
              auto f = co_await m->Create(parent, name);
              if (!f.ok()) continue;
              d->BindParent(*f, parent);
              Status st = co_await d->Write(*f, 0, file_size, false);
              if (st.ok()) {
                total++;
                lat.Add(sched->Now() - s);
              }
            }
            break;
          }
          case SmallFileTest::kRead: {
            for (auto& [ino, name] : mine) {
              SimTime s = sched->Now();
              Status st = co_await d->Read(ino, 0, file_size);
              if (st.ok()) {
                total++;
                lat.Add(sched->Now() - s);
              }
            }
            break;
          }
          case SmallFileTest::kRemoval: {
            for (auto& [ino, name] : mine) {
              SimTime s = sched->Now();
              Status st = co_await m->Remove(parent, name);
              if (st.ok()) {
                total++;
                lat.Add(sched->Now() - s);
              }
            }
            break;
          }
        }
        done();
      }(sched, meta[i], data[i], test, file_size, files_per_proc, i, parents[i], files[i],
        total_ops, latency, done));
    }
    (void)harness::RunTaskVoid(*sched, join.Wait());
  }
  BenchResult res;
  res.ops = total_ops;
  res.elapsed = sched->Now() - t0;
  res.latency = latency;
  return res;
}

}  // namespace cfs::bench
