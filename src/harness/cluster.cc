#include "harness/cluster.h"

#include "common/logging.h"

namespace cfs::harness {

using sim::Spawn;
using sim::Task;

Cluster::Cluster(const ClusterOptions& opts) : opts_(opts), sched_(opts.seed), net_(&sched_, opts.network) {
  // Master hosts first, then storage nodes (ids are assigned in order).
  for (int i = 0; i < opts_.num_masters; i++) {
    sim::Host* h = net_.AddHost(opts_.host);
    master_hosts_.push_back(h);
    master_ids_.push_back(h->id());
    raft_hosts_.push_back(std::make_unique<raft::RaftHost>(&net_, h, opts_.raft));
  }
  for (int i = 0; i < opts_.num_nodes; i++) {
    sim::HostOptions ho = opts_.host;
    ho.disk.capacity_bytes = opts_.host.disk.capacity_bytes;
    sim::Host* h = net_.AddHost(ho);
    node_hosts_.push_back(h);
    raft_hosts_.push_back(std::make_unique<raft::RaftHost>(&net_, h, opts_.raft));
  }
  for (int i = 0; i < opts_.num_masters; i++) {
    masters_.push_back(std::make_unique<master::MasterNode>(
        &net_, master_hosts_[i], raft_hosts_[i].get(), master_ids_, opts_.master));
  }
  for (int i = 0; i < opts_.num_nodes; i++) {
    raft::RaftHost* rh = raft_hosts_[opts_.num_masters + i].get();
    meta_nodes_.push_back(
        std::make_unique<meta::MetaNode>(&net_, node_hosts_[i], rh, opts_.meta));
    data::DataNodeOptions dopts = opts_.data;
    dopts.track_contents = opts_.track_contents;
    data_nodes_.push_back(
        std::make_unique<data::DataNode>(&net_, node_hosts_[i], rh, dopts));
    meta_nodes_.back()->set_extent_purger(MakePurger(i));
  }
}

master::MasterNode* Cluster::master_leader() {
  for (auto& m : masters_) {
    if (m->IsLeader()) return m.get();
  }
  return nullptr;
}

Task<Status> Cluster::Start() {
  // Wait for the resource-manager raft group to elect a leader.
  for (int i = 0; i < 1000 && !master_leader(); i++) {
    co_await sim::SleepFor{sched_, 10 * kMsec};
  }
  master::MasterNode* leader = master_leader();
  if (!leader) co_return Status::Unavailable("no master leader");

  // Register every storage node (meta + data roles on the same machine).
  for (int i = 0; i < opts_.num_nodes; i++) {
    Status st = Status::Retry("");
    for (int attempt = 0; attempt < 10 && !st.ok(); attempt++) {
      leader = master_leader();
      if (!leader) {
        co_await sim::SleepFor{sched_, 50 * kMsec};
        continue;
      }
      auto r = co_await net_.Call<master::RegisterNodeReq, master::RegisterNodeResp>(
          node_hosts_[i]->id(), leader->host()->id(),
          master::RegisterNodeReq{node_hosts_[i]->id(), true, true}, 1 * kSec);
      st = r.ok() ? r->status : r.status();
    }
    CFS_CO_RETURN_IF_ERROR(st);
    Spawn(HeartbeatLoop(i));
  }
  co_return Status::OK();
}

Task<void> Cluster::HeartbeatLoop(int node_index) {
  while (true) {
    co_await sim::SleepFor{sched_, opts_.heartbeat_interval};
    sim::Host* host = node_hosts_[node_index];
    if (!host->up()) continue;
    master::MasterNode* leader = master_leader();
    if (!leader) continue;
    master::NodeHeartbeatReq req;
    req.node = host->id();
    req.memory_utilization = host->MemoryUtilization();
    req.disk_utilization = host->DiskUtilization();
    req.meta_reports = meta_nodes_[node_index]->Reports();
    req.data_reports = data_nodes_[node_index]->Reports();
    (void)co_await net_.Call<master::NodeHeartbeatReq, master::NodeHeartbeatResp>(
        host->id(), leader->host()->id(), std::move(req), 1 * kSec);
  }
}

Task<Status> Cluster::CreateVolume(std::string name, uint32_t meta_partitions,
                                   uint32_t data_partitions) {
  master::MasterNode* leader = master_leader();
  if (!leader) co_return Status::Unavailable("no master leader");
  master::CreateVolumeReq req;
  req.name = name;
  req.meta_partitions = meta_partitions;
  req.data_partitions = data_partitions;
  req.replica_factor = 3;
  // Issued from the first master host on behalf of an administrator.
  auto r = co_await net_.Call<master::CreateVolumeReq, master::CreateVolumeResp>(
      master_hosts_[0]->id(), leader->host()->id(), std::move(req), 10 * kSec);
  if (!r.ok()) co_return r.status();
  CFS_CO_RETURN_IF_ERROR(r->status);
  volumes_.push_back(name);
  // Wait until every partition's raft group has a leader so the first
  // client operations don't eat election latency.
  for (int i = 0; i < 2000 && !AllPartitionsHaveLeaders(); i++) {
    co_await sim::SleepFor{sched_, 10 * kMsec};
  }
  co_return Status::OK();
}

bool Cluster::AllPartitionsHaveLeaders() {
  master::MasterNode* leader = master_leader();
  if (!leader) return false;
  for (const auto& [pid, rec] : leader->state().meta_partitions()) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      raft::RaftNode* rn = meta_nodes_[i]->GetRaft(pid);
      if (rn && rn->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  for (const auto& [pid, rec] : leader->state().data_partitions()) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      data::DataPartition* dp = data_nodes_[i]->GetPartition(pid);
      if (dp && dp->raft_node()->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  return true;
}

Task<Result<client::Client*>> Cluster::MountClient(std::string volume) {
  sim::HostOptions ho;
  ho.cpu_cores = 16;
  ho.num_disks = 1;
  sim::Host* ch = net_.AddHost(ho);
  auto c = std::make_unique<client::Client>(&net_, ch, master_ids_, opts_.client);
  client::Client* ptr = c.get();
  clients_.push_back(std::move(c));
  CFS_CO_RETURN_IF_ERROR(co_await ptr->Mount(volume));
  co_return ptr;
}

void Cluster::CrashNode(int i) { node_hosts_[i]->Crash(); }

Task<void> Cluster::RestartNode(int i) {
  node_hosts_[i]->Restart();
  // §2.2.5 ordering: extent alignment first, then raft recovery; meta
  // partitions recover from raft snapshots + logs.
  co_await data_nodes_[i]->RecoverAll();
  co_await meta_nodes_[i]->RecoverAll();
}

std::vector<sim::NodeId> Cluster::DataPartitionReplicas(data::PartitionId pid) {
  // Harness-level route lookup (in production the purge path queries the
  // resource manager; here we read the replicated state directly to avoid
  // hand-rolling one more admin RPC).
  for (auto& m : masters_) {
    auto it = m->state().data_partitions().find(pid);
    if (it != m->state().data_partitions().end()) return it->second.replicas;
  }
  return {};
}

meta::MetaNode::ExtentPurger Cluster::MakePurger(int node_index) {
  return [this, node_index](meta::Inode inode) -> Task<Status> {
    return PurgeInodeContent(node_index, std::move(inode));
  };
}

Task<Status> Cluster::PurgeInodeContent(int node_index, meta::Inode inode) {
  // "A separate process to clear up this inode and communicate with the
  // data node to delete the file content" (§2.7.3): whole extents of large
  // files are deleted directly; small-file ranges are punch-holed (§2.2.3).
  sim::Host* host = node_hosts_[node_index];
  Status last = Status::OK();
  for (const auto& key : inode.extents) {
    std::vector<sim::NodeId> replicas = DataPartitionReplicas(key.partition_id);
    bool small = key.extent_offset != 0 ||
                 key.size <= opts_.client.small_file_threshold;
    Status st = Status::Unavailable("no replica reachable");
    for (sim::NodeId target : replicas) {
      if (small) {
        auto r = co_await net_.Call<data::PunchHoleReq, data::PunchHoleResp>(
            host->id(), target,
            data::PunchHoleReq{key.partition_id, key.extent_id, key.extent_offset, key.size},
            1 * kSec);
        if (r.ok() && !r->status.IsNotLeader()) {
          st = r->status;
          break;
        }
      } else {
        auto r = co_await net_.Call<data::DeleteExtentReq, data::DeleteExtentResp>(
            host->id(), target, data::DeleteExtentReq{key.partition_id, key.extent_id},
            1 * kSec);
        if (r.ok() && !r->status.IsNotLeader()) {
          st = r->status;
          break;
        }
      }
    }
    if (!st.ok()) last = st;
  }
  co_return last;
}

}  // namespace cfs::harness
