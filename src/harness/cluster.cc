#include "harness/cluster.h"

#include <sstream>

#include "common/logging.h"
#include "raft/invariants.h"

namespace cfs::harness {

using sim::Spawn;
using sim::Task;

Cluster::Cluster(const ClusterOptions& opts) : opts_(opts), sched_(opts.seed), net_(&sched_, opts.network) {
  sched_.tracer().set_enabled(opts.trace);
  // Master hosts first, then storage nodes (ids are assigned in order).
  for (int i = 0; i < opts_.num_masters; i++) {
    sim::Host* h = net_.AddHost(opts_.host);
    master_hosts_.push_back(h);
    master_ids_.push_back(h->id());
    raft_hosts_.push_back(std::make_unique<raft::RaftHost>(&net_, h, opts_.raft, &rpc_metrics_));
  }
  for (int i = 0; i < opts_.num_nodes; i++) {
    sim::HostOptions ho = opts_.host;
    ho.disk.capacity_bytes = opts_.host.disk.capacity_bytes;
    sim::Host* h = net_.AddHost(ho);
    node_hosts_.push_back(h);
    raft_hosts_.push_back(std::make_unique<raft::RaftHost>(&net_, h, opts_.raft, &rpc_metrics_));
  }
  for (int i = 0; i < opts_.num_masters; i++) {
    masters_.push_back(std::make_unique<master::MasterNode>(
        &net_, master_hosts_[i], raft_hosts_[i].get(), master_ids_, opts_.master));
  }
  for (int i = 0; i < opts_.num_nodes; i++) {
    raft::RaftHost* rh = raft_hosts_[opts_.num_masters + i].get();
    meta_nodes_.push_back(
        std::make_unique<meta::MetaNode>(&net_, node_hosts_[i], rh, opts_.meta));
    data::DataNodeOptions dopts = opts_.data;
    dopts.track_contents = opts_.track_contents;
    data_nodes_.push_back(
        std::make_unique<data::DataNode>(&net_, node_hosts_[i], rh, dopts));
    meta_nodes_.back()->set_extent_purger(MakePurger(i));
  }
  router_ = std::make_unique<rpc::Router>(&sched_, master_ids_);
  channel_ = std::make_unique<rpc::Channel>(&net_, &rpc_metrics_);
  for (int i = 0; i < opts_.num_nodes; i++) {
    purge_svcs_.push_back(std::make_unique<rpc::DataService>(
        &net_, node_hosts_[i]->id(), router_.get(), &rpc_metrics_));
  }
  if (opts_.health) WireHealth();
}

void Cluster::WireHealth() {
  // All hooks below are plain std::function observers invoked synchronously
  // from the instrumented code — they never create scheduler events, so the
  // schedule with health on is byte-identical to health off.
  obs::TimeSeriesOptions ts;
  ts.window_usec = opts_.health_opts.window_usec;
  ts.num_windows = opts_.health_opts.num_windows;
  health_scorer_ = std::make_unique<obs::HealthScorer>(opts_.health_opts);
  obs::HealthScorer* scorer = health_scorer_.get();
  for (int i = 0; i < opts_.num_nodes; i++) {
    node_health_.push_back(std::make_unique<NodeHealth>(ts));
    NodeHealth* nh = node_health_.back().get();
    sim::Host* h = node_hosts_[i];
    // Disks: one scorer target per device, cohort "disk". The cohort spans
    // the whole cluster on purpose: raft pins its WAL to disk 0 of every
    // host, so within one node only a single disk carries steady traffic
    // and a node-local cohort would never reach min_cohort scorable
    // members. Across nodes the equivalently-loaded disks form a real
    // population, and a gray disk detaches from their median.
    for (int d = 0; d < h->num_disks(); d++) {
      std::string target = "n" + std::to_string(i) + ".disk" + std::to_string(d);
      h->disk(d)->set_op_observer(
          [this, nh, scorer, target = std::move(target)](
              bool is_read, SimDuration lat, uint64_t trace) {
            const SimTime now = sched_.Now();
            nh->series.Hist(is_read ? "disk.read_usec" : "disk.write_usec")
                .Observe(now, lat, trace);
            scorer->Observe("disk", target, now, lat, trace);
          });
    }
    // Chain-forward RPC legs: one target per destination peer, cohort
    // "peer". Timeouts feed the error-rate outlier.
    std::string peer_prefix = "n" + std::to_string(i) + ".peer";
    data_nodes_[i]->chain_channel().set_peer_observer(
        [this, nh, scorer, peer_prefix = std::move(peer_prefix)](
            sim::NodeId to, bool ok, SimDuration lat, uint64_t trace) {
          const SimTime now = sched_.Now();
          const std::string target = peer_prefix + std::to_string(to);
          if (ok) {
            nh->series.Hist("peer.rpc_usec").Observe(now, lat, trace);
            scorer->Observe("peer", target, now, lat, trace);
          } else {
            nh->series.Hist("peer.rpc_usec").CountError(now);
            scorer->ObserveError("peer", target, now);
          }
        });
    // Meta raft-backed writes: per-node latency series (singleton — no
    // cohort to compare against locally, so time-series only).
    meta_nodes_[i]->set_exec_observer([this, nh](SimDuration lat, uint64_t trace) {
      nh->series.Hist("meta.exec_usec").Observe(sched_.Now(), lat, trace);
    });
  }
}

void Cluster::CollectNode(int node_index) {
  NodeHealth* nh = node_health_[node_index].get();
  const SimTime now = sched_.Now();
  sim::Host* h = node_hosts_[node_index];
  uint64_t reads = 0, writes = 0;
  for (int d = 0; d < h->num_disks(); d++) {
    reads += h->disk(d)->reads();
    writes += h->disk(d)->writes();
  }
  nh->series.SampleCounter("disk.reads", now, reads);
  nh->series.SampleCounter("disk.writes", now, writes);
  nh->series.SampleCounter("meta.ops", now, meta_nodes_[node_index]->ops_served());
  nh->series.SampleCounter("data.ops", now, data_nodes_[node_index]->ops_served());
  // The shared scorer advances at most once per window: the first node to
  // collect in a given second scores it, the rest no-op (idempotent).
  health_scorer_->Advance(now);
}

void Cluster::CollectAllNow() {
  for (size_t i = 0; i < node_health_.size(); i++) CollectNode(static_cast<int>(i));
}

std::string Cluster::HealthJson() {
  std::string out = "{\"nodes\":{";
  for (size_t i = 0; i < node_health_.size(); i++) {
    if (i) out += ",";
    out += "\"" + std::to_string(i) + "\":{\"series\":" +
           node_health_[i]->series.DumpJson() + "}";
  }
  out += "},\"scorer\":";
  out += health_scorer_ ? health_scorer_->DumpJson() : "null";
  out += ",\"master\":";
  master::MasterNode* leader = master_leader();
  out += leader ? leader->HealthViewJson() : "null";
  out += "}";
  return out;
}

std::string Cluster::HealthEventsJsonl() const {
  return health_scorer_ ? health_scorer_->DumpEventsJsonl() : std::string();
}

master::MasterNode* Cluster::master_leader() {
  for (auto& m : masters_) {
    if (m->IsLeader()) return m.get();
  }
  return nullptr;
}

Task<Status> Cluster::Start() {
  // Wait for the resource-manager raft group to elect a leader.
  for (int i = 0; i < 1000 && !master_leader(); i++) {
    co_await sim::SleepFor{sched_, 10 * kMsec};
  }
  master::MasterNode* leader = master_leader();
  if (!leader) co_return Status::Unavailable("no master leader");

  // Register every storage node (meta + data roles on the same machine).
  // The MasterService handles leader probing, NotLeader redirects and
  // backoff; each node registers from its own host id.
  for (int i = 0; i < opts_.num_nodes; i++) {
    rpc::MasterService svc(&net_, node_hosts_[i]->id(), router_.get(), &rpc_metrics_);
    auto r = co_await svc.Call<master::RegisterNodeReq, master::RegisterNodeResp>(
        master::RegisterNodeReq{node_hosts_[i]->id(), true, true});
    CFS_CO_RETURN_IF_ERROR(r.ok() ? r->status : r.status());
    Spawn(HeartbeatLoop(i));
  }
  co_return Status::OK();
}

Task<void> Cluster::HeartbeatLoop(int node_index) {
  while (true) {
    co_await sim::SleepFor{sched_, opts_.heartbeat_interval};
    sim::Host* host = node_hosts_[node_index];
    if (!host->up()) continue;
    // This loop doubles as the node's telemetry collector: sampling and
    // window scoring ride the heartbeat wakeups that exist anyway, so
    // health telemetry adds zero scheduler events (schedule-neutrality is
    // pinned by tests/determinism_test.cc).
    if (!node_health_.empty()) CollectNode(node_index);
    master::MasterNode* leader = master_leader();
    if (!leader) continue;
    master::NodeHeartbeatReq req;
    req.node = host->id();
    req.memory_utilization = host->MemoryUtilization();
    req.disk_utilization = host->DiskUtilization();
    req.meta_reports = meta_nodes_[node_index]->Reports();
    req.data_reports = data_nodes_[node_index]->Reports();
    if (health_scorer_) {
      // Each node piggybacks its own slice of the cluster-wide scorer
      // (targets are "n<i>.…"), the compact summary the master folds into
      // its health view.
      req.health =
          health_scorer_->SummaryFor("n" + std::to_string(node_index) + ".");
    }
    (void)co_await channel_->Unary<master::NodeHeartbeatReq, master::NodeHeartbeatResp>(
        host->id(), leader->host()->id(), std::move(req), 1 * kSec);
  }
}

Task<Status> Cluster::CreateVolume(std::string name, uint32_t meta_partitions,
                                   uint32_t data_partitions, master::VolumeQos qos) {
  master::CreateVolumeReq req;
  req.name = name;
  req.meta_partitions = meta_partitions;
  req.data_partitions = data_partitions;
  req.replica_factor = 3;
  req.qos = qos;
  // Issued from the first master host on behalf of an administrator. Volume
  // creation proposes through raft and installs every partition, so the
  // admin call rides a long per-leg timeout.
  rpc::RetryPolicy admin_policy = rpc::RetryPolicy::Control();
  admin_policy.rpc_timeout = 10 * kSec;
  rpc::MasterService svc(&net_, master_hosts_[0]->id(), router_.get(), &rpc_metrics_);
  auto r = co_await svc.Call<master::CreateVolumeReq, master::CreateVolumeResp>(
      std::move(req), rpc::CallOptions{{}, &admin_policy});
  if (!r.ok()) co_return r.status();
  CFS_CO_RETURN_IF_ERROR(r->status);
  volumes_.push_back(name);
  // Wait until every partition of THIS volume has a raft leader so the
  // first client operations don't eat election latency. Scoping the wait to
  // the new volume keeps volume creation O(own partitions) — a bench that
  // boots thousands of volumes would otherwise rescan the whole cluster map
  // once per 10 msec per volume.
  for (int i = 0; i < 2000 && !VolumePartitionsHaveLeaders(r->volume); i++) {
    co_await sim::SleepFor{sched_, 10 * kMsec};
  }
  co_return Status::OK();
}

bool Cluster::VolumePartitionsHaveLeaders(master::VolumeId volume) {
  master::MasterNode* leader = master_leader();
  if (!leader) return false;
  auto it = leader->state().volumes().find(volume);
  if (it == leader->state().volumes().end()) return false;
  for (master::PartitionId pid : it->second.meta_partitions) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      raft::RaftNode* rn = meta_nodes_[i]->GetRaft(pid);
      if (rn && rn->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  for (master::PartitionId pid : it->second.data_partitions) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      data::DataPartition* dp = data_nodes_[i]->GetPartition(pid);
      if (dp && dp->raft_node()->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  return true;
}

bool Cluster::AllPartitionsHaveLeaders() {
  master::MasterNode* leader = master_leader();
  if (!leader) return false;
  for (const auto& [pid, rec] : leader->state().meta_partitions()) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      raft::RaftNode* rn = meta_nodes_[i]->GetRaft(pid);
      if (rn && rn->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  for (const auto& [pid, rec] : leader->state().data_partitions()) {
    bool has = false;
    for (int i = 0; i < num_nodes(); i++) {
      data::DataPartition* dp = data_nodes_[i]->GetPartition(pid);
      if (dp && dp->raft_node()->IsLeader()) has = true;
    }
    if (!has) return false;
  }
  return true;
}

Task<Result<client::Client*>> Cluster::MountClient(std::string volume) {
  return MountClient(std::vector<std::string>{std::move(volume)});
}

Task<Result<client::Client*>> Cluster::MountClient(std::vector<std::string> volumes) {
  sim::HostOptions ho;
  ho.cpu_cores = 16;
  ho.num_disks = 1;
  sim::Host* ch = net_.AddHost(ho);
  auto c = std::make_unique<client::Client>(&net_, ch, master_ids_, opts_.client);
  client::Client* ptr = c.get();
  clients_.push_back(std::move(c));
  // Index loop over the frame-local list: the mounts suspend on master RPCs.
  for (size_t i = 0; i < volumes.size(); i++) {
    CFS_CO_RETURN_IF_ERROR(co_await ptr->Mount(volumes[i]));
  }
  co_return ptr;
}

void Cluster::CrashNode(int i) { node_hosts_[i]->Crash(); }

Task<void> Cluster::RestartNode(int i) {
  node_hosts_[i]->Restart();
  // §2.2.5 ordering: extent alignment first, then raft recovery; meta
  // partitions recover from raft snapshots + logs.
  co_await data_nodes_[i]->RecoverAll();
  co_await meta_nodes_[i]->RecoverAll();
}

std::vector<sim::NodeId> Cluster::DataPartitionReplicas(data::PartitionId pid) {
  // Harness-level route lookup (in production the purge path queries the
  // resource manager; here we read the replicated state directly to avoid
  // hand-rolling one more admin RPC).
  for (auto& m : masters_) {
    auto it = m->state().data_partitions().find(pid);
    if (it != m->state().data_partitions().end()) return it->second.replicas;
  }
  return {};
}

InvariantReport Cluster::CheckInvariants() {
  InvariantReport report;

  // 1. Raft protocol invariants, per group, across all up replicas (master
  // group included). Down hosts are skipped: their in-memory raft state is
  // stale by design and is rebuilt from stable storage on restart.
  std::map<raft::GroupId, std::vector<raft::ReplicaSnapshot>> groups;
  for (auto& rh : raft_hosts_) {
    if (!rh->host()->up()) continue;
    for (raft::GroupId gid : rh->GroupIds()) {
      groups[gid].push_back(raft::SnapshotReplica(*rh->Get(gid)));
    }
  }
  for (const auto& [gid, replicas] : groups) {
    std::ostringstream os;
    os << "group 0x" << std::hex << gid;
    raft::CheckRaftGroup(replicas, &report, os.str());
  }

  // 2. Per-partition local checks, collecting replicas by partition id.
  std::map<data::PartitionId, std::vector<data::DataPartition*>> dparts;
  std::map<meta::PartitionId, std::vector<std::pair<int, meta::MetaPartition*>>> mparts;
  for (int i = 0; i < num_nodes(); i++) {
    if (!node_hosts_[i]->up()) continue;
    for (data::PartitionId pid : data_nodes_[i]->PartitionIds()) {
      data::DataPartition* p = data_nodes_[i]->GetPartition(pid);
      p->CheckInvariants(&report, "node " + std::to_string(i) + " data partition " +
                                      std::to_string(pid));
      dparts[pid].push_back(p);
    }
    for (meta::PartitionId pid : meta_nodes_[i]->PartitionIds()) {
      meta::MetaPartition* p = meta_nodes_[i]->GetPartition(pid);
      p->CheckInvariants(&report, "node " + std::to_string(i) + " meta partition " +
                                      std::to_string(pid));
      mparts[pid].emplace_back(i, p);
    }
  }

  // 3. Cross-replica data-partition agreement: "the leader returns the
  // largest offset that has been committed by all the replicas" (§2.2.5), so
  // every up replica must hold at least the chain leader's committed prefix
  // of every extent; and two replicas whose raft state machines are equally
  // applied must agree byte-for-byte (CRC) on equally-sized extents.
  for (const auto& [pid, replicas] : dparts) {
    const std::string where = "data partition " + std::to_string(pid);
    data::DataPartition* leader = nullptr;
    for (data::DataPartition* p : replicas) {
      if (p->IsChainLeader()) leader = p;
    }
    if (leader) {
      leader->store().ForEach([&](const storage::Extent& e) {
        uint64_t c = leader->committed(e.id);
        if (c == 0) return;
        for (data::DataPartition* p : replicas) {
          if (p == leader) continue;
          // Deletes and punches flow through raft and the chain leader need
          // not be the raft leader, so a replica ahead in raft apply may
          // already have dropped an extent the chain leader still holds.
          // The committed-prefix guarantee is only checkable when both
          // replicas have applied the same raft prefix.
          if (p->raft_node()->applied_index() !=
              leader->raft_node()->applied_index()) {
            continue;
          }
          if (!p->store().Has(e.id)) {
            report.Violation("cluster", where + " extent " + std::to_string(e.id) +
                                            ": replica missing an extent with " +
                                            std::to_string(c) + " committed bytes");
          } else if (p->store().ExtentSize(e.id) < c) {
            report.Violation("cluster", where + " extent " + std::to_string(e.id) +
                                            ": replica holds " +
                                            std::to_string(p->store().ExtentSize(e.id)) +
                                            " bytes, below the committed offset " +
                                            std::to_string(c));
          }
        }
      });
    }
    if (opts_.track_contents) {
      for (size_t a = 0; a < replicas.size(); a++) {
        for (size_t b = a + 1; b < replicas.size(); b++) {
          data::DataPartition* x = replicas[a];
          data::DataPartition* y = replicas[b];
          // Chain placements are deterministic and overwrites/punches flow
          // through raft, so equal applied indices + equal sizes => equal
          // bytes. Unequal sizes just mean in-flight chain traffic.
          if (x->raft_node()->applied_index() != y->raft_node()->applied_index()) {
            continue;
          }
          x->store().ForEach([&](const storage::Extent& ex) {
            const storage::Extent* ey = y->store().Find(ex.id);
            if (!ey || ey->size != ex.size || ey->punched_bytes != ex.punched_bytes) {
              return;
            }
            if (ex.crc != ey->crc) {
              report.Violation("cluster", where + " extent " + std::to_string(ex.id) +
                                              ": equally-applied replicas disagree on CRC");
            }
          });
        }
      }
    }
  }

  // 4. Volume-wide metadata referential integrity. A file's dentry and inode
  // may live on different partitions (§2.6), so dentries are resolved
  // through the raft-leader replica of the inode's owning id range. Client
  // workflows order mutations so a dentry always points at a live inode
  // (Fig. 3: inode before dentry on create, dentry removal before unlink),
  // and nlink is incremented before a link's dentry exists — hence
  // refs <= nlink for files, with refs == 0 marking an orphan that fsck
  // evicts later. A volume is only checked when every one of its partitions
  // has an up leader replica (otherwise the authoritative view is offline).
  std::map<meta::VolumeId, std::vector<meta::MetaPartition*>> volumes;
  std::map<meta::VolumeId, bool> volume_complete;
  for (const auto& [pid, replicas] : mparts) {
    meta::MetaPartition* leader = nullptr;
    for (const auto& [node_index, p] : replicas) {
      raft::RaftNode* rn = meta_nodes_[node_index]->GetRaft(pid);
      if (rn && rn->IsLeader()) leader = p;
    }
    meta::VolumeId vol = replicas.front().second->config().volume;
    if (leader) {
      volumes[vol].push_back(leader);
      volume_complete.try_emplace(vol, true);
    } else {
      volume_complete[vol] = false;
    }
  }
  for (const auto& [vol, parts] : volumes) {
    if (!volume_complete[vol]) continue;
    const std::string where = "volume " + std::to_string(vol);
    auto owner_of = [&](meta::InodeId id) -> meta::MetaPartition* {
      for (meta::MetaPartition* p : parts) {
        if (id >= p->config().start && id <= p->config().end) return p;
      }
      return nullptr;
    };
    std::map<meta::InodeId, uint32_t> refs;
    for (meta::MetaPartition* p : parts) {
      p->ForEachDentry([&](const meta::DentryKey& key, const meta::Dentry& d) {
        refs[d.inode]++;
        meta::MetaPartition* owner = owner_of(d.inode);
        if (!owner) return true;  // id range split mid-migration; unresolvable
        const meta::Inode* ino = owner->GetInode(d.inode);
        if (!ino) {
          report.Violation("cluster", where + ": dentry (" + std::to_string(key.parent) +
                                          ", " + key.name + ") dangles: inode " +
                                          std::to_string(d.inode) + " does not exist");
        } else if (ino->IsDeleted()) {
          report.Violation("cluster", where + ": dentry (" + std::to_string(key.parent) +
                                          ", " + key.name +
                                          ") references delete-marked inode " +
                                          std::to_string(d.inode));
        }
        return true;
      });
    }
    for (meta::MetaPartition* p : parts) {
      p->ForEachInode([&](const meta::InodeId& id, const meta::Inode& ino) {
        if (ino.IsDeleted()) return true;
        auto it = refs.find(id);
        uint32_t r = it == refs.end() ? 0 : it->second;
        if (ino.IsDir()) {
          if (r > 1) {
            report.Violation("cluster", where + ": directory inode " + std::to_string(id) +
                                            " referenced by " + std::to_string(r) +
                                            " dentries");
          }
        } else if (r > ino.nlink) {
          report.Violation("cluster", where + ": inode " + std::to_string(id) +
                                          " has nlink " + std::to_string(ino.nlink) +
                                          " but " + std::to_string(r) +
                                          " referencing dentries");
        }
        return true;
      });
    }
  }

  return report;
}

meta::MetaNode::ExtentPurger Cluster::MakePurger(int node_index) {
  return [this, node_index](meta::Inode inode) -> Task<Status> {
    return PurgeInodeContent(node_index, std::move(inode));
  };
}

Task<Status> Cluster::PurgeInodeContent(int node_index, meta::Inode inode) {
  // "A separate process to clear up this inode and communicate with the
  // data node to delete the file content" (§2.7.3): whole extents of large
  // files are deleted directly; small-file ranges are punch-holed (§2.2.3).
  // The per-node DataService does the leader probing; the shared Router is
  // primed with the replica set from the master's replicated state.
  rpc::DataService& svc = *purge_svcs_[node_index];
  Status last = Status::OK();
  for (const auto& key : inode.extents) {
    master::DataPartitionView view;
    view.pid = key.partition_id;
    view.replicas = DataPartitionReplicas(key.partition_id);
    router_->UpsertDataPartition(std::move(view));
    bool small = key.extent_offset != 0 ||
                 key.size <= opts_.client.small_file_threshold;
    Status st;
    if (small) {
      auto r = co_await svc.Call<data::PunchHoleReq, data::PunchHoleResp>(
          key.partition_id,
          data::PunchHoleReq{key.partition_id, key.extent_id, key.extent_offset, key.size});
      st = r.ok() ? r->status : r.status();
    } else {
      auto r = co_await svc.Call<data::DeleteExtentReq, data::DeleteExtentResp>(
          key.partition_id, data::DeleteExtentReq{key.partition_id, key.extent_id});
      st = r.ok() ? r->status : r.status();
    }
    if (!st.ok()) last = st;
  }
  co_return last;
}

obs::Registry Cluster::Metrics() {
  obs::Registry reg;

  // Per-RPC outcome counters and latency histograms from every registry in
  // the cluster, merged into the shared "rpc." namespace: the harness/raft
  // registry, each master's admin channel, each data node's chain channel,
  // and each client's service stubs.
  rpc_metrics_.ExportTo(&reg);
  for (const auto& m : masters_) m->rpc_metrics().ExportTo(&reg);
  for (const auto& d : data_nodes_) d->rpc_metrics().ExportTo(&reg);
  for (const auto& c : clients_) c->rpc_metrics().ExportTo(&reg);

  const raft::GroupCommitStats gc = group_commit_stats();
  reg.Add("raft.gc.batches", gc.batches);
  reg.Add("raft.gc.proposals", gc.proposals);
  reg.Add("raft.gc.batched_bytes", gc.batched_bytes);
  reg.SetMax("raft.gc.max_batch", static_cast<int64_t>(gc.max_batch));
  reg.SetMax("raft.gc.queue_high_watermark",
             static_cast<int64_t>(gc.queue_high_watermark));

  const raft::RaftHost::LogWriteStats lw = log_write_stats();
  reg.Add("raft.log.append_writes", lw.append_writes);
  reg.Add("raft.log.appended_entries", lw.appended_entries);
  reg.Add("raft.log.persisted_bytes", lw.persisted_bytes);

  for (const auto& c : clients_) {
    const client::ClientStats& s = c->stats();
    reg.Add("client.meta_rpcs", s.meta_rpcs);
    reg.Add("client.data_rpcs", s.data_rpcs);
    reg.Add("client.master_rpcs", s.master_rpcs);
    reg.Add("client.cache_hits", s.cache_hits);
    reg.Add("client.cache_misses", s.cache_misses);
    reg.Add("client.inode_cache_evictions", s.inode_cache_evictions);
    reg.Add("client.readdir_cache_evictions", s.readdir_cache_evictions);
    reg.Add("client.leader_cache_hits", s.leader_cache_hits);
    reg.Add("client.leader_probes", s.leader_probes);
    reg.Add("client.resends", s.resends);
    reg.Add("client.orphans_created", s.orphans_created);
    reg.Add("client.window_stalls", s.window_stalls);
    reg.SetMax("client.max_inflight_packets",
               static_cast<int64_t>(s.max_inflight_packets));
    reg.Add("client.suffix_resend_bytes", s.suffix_resend_bytes);
    reg.Add("client.parallel_read_fanouts", s.parallel_read_fanouts);
  }

  auto fold_disks = [&reg](sim::Host* h) {
    for (int i = 0; i < h->num_disks(); i++) {
      sim::Disk* d = h->disk(i);
      reg.Add("disk.reads", d->reads());
      reg.Add("disk.writes", d->writes());
      reg.Add("disk.read_bytes", d->read_bytes());
      reg.Add("disk.write_bytes", d->write_bytes());
      reg.Add("disk.punched_bytes", d->punched_bytes());
      reg.Add("disk.used_bytes", d->used_bytes());
    }
  };
  for (sim::Host* h : master_hosts_) fold_disks(h);
  for (sim::Host* h : node_hosts_) fold_disks(h);

  // Per-tenant slices (tenant = VolumeId): client-side mount counters and
  // the node-side weighted-fair admission queues.
  for (const auto& c : clients_) {
    for (const auto& [name, m] : c->mounts()) {
      if (m->tenant() == 0) continue;
      const client::MountStats& ms = m->mount_stats();
      const std::string p = "tenant." + std::to_string(m->tenant()) + ".";
      reg.Add(p + "ops", ms.ops);
      reg.Add(p + "throttle_waits", ms.throttle_waits);
      reg.Add(p + "throttle_wait_usec", ms.throttle_wait_usec);
      reg.Add(p + "refresh_failures", ms.refresh_failures);
    }
  }
  for (const auto& m : meta_nodes_) m->admission().ExportTo(&reg, "qos.meta");
  for (const auto& d : data_nodes_) d->admission().ExportTo(&reg, "qos.data");

  reg.Add("net.messages_sent", net_.messages_sent());
  reg.Add("net.bytes_sent", net_.bytes_sent());
  // Watchdog accounting: cancelled = replies beat their timeout (the healthy
  // case), fired = calls that actually timed out.
  reg.Add("net.rpc_timeout.cancelled", net_.rpc_timeouts_cancelled());
  reg.Add("net.rpc_timeout.fired", net_.rpc_timeouts_fired());
  reg.Set("obs.spans", static_cast<int64_t>(sched_.tracer().num_spans()));
  return reg;
}

}  // namespace cfs::harness
