// Gray-failure detection bench: inject a slow (not dead) disk mid-run and
// measure how long the windowed health telemetry takes to flag it.
//
// The scenario: a CFS cluster with health telemetry enabled runs a steady
// overwrite workload; after a warmup we pick the busiest disk on node 0 and
// multiply its service time by --slow-factor (default 8). The disk keeps
// succeeding — binary liveness (heartbeats, timeouts) never notices — but
// its windowed p99 detaches from the cohort median of the equivalently
// loaded disks on the other nodes and the scorer walks it healthy ->
// suspect. The bench reports the detection latency in microseconds and in
// scorer windows.
//
// The whole scenario runs TWICE with the same seed and asserts the two
// health-event logs are byte-identical (the telemetry pipeline is as
// deterministic as the simulation it observes).
//
// Machine lines (parsed by tools/collect_bench.py):
//   health_detection gray_disk {json}   schema in EXPERIMENTS.md
//   bench_wallclock ...
//
// Flags:
//   --smoke            5 nodes, shorter phases (CI).
//   --slow-factor N    service-time multiplier for the gray disk (default 8).
//   --events-out PATH  write the first run's health-event log (JSONL) to
//                      PATH (CI validates it with tools/health_report.py).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

// Steady stride-overwrite load: deterministic offsets, no RNG, runs until
// *stop. One counted op per completed write.
sim::Task<void> WriterLoop(CfsDataOps* ops, uint64_t file, uint64_t file_bytes,
                           uint64_t block, const bool* stop, uint64_t* done) {
  uint64_t i = 0;
  while (!*stop) {
    const uint64_t off = (i++ * block) % file_bytes;
    (void)co_await ops->Write(file, off, block, /*overwrite=*/true);
    (*done)++;
  }
}

struct GrayRunResult {
  std::string events;       // byte-stable health-event log (JSONL)
  std::string health;       // full HealthJson dump
  std::string target;       // the injected disk's scorer target
  SimTime injected_at = 0;  // virtual time of the slow_factor flip
  SimTime suspect_at = 0;   // virtual time of the healthy->suspect event
  bool detected = false;
  uint64_t ops = 0;
};

GrayRunResult RunOnce(bool smoke, uint32_t slow_factor, uint64_t seed) {
  GrayRunResult out;
  harness::ClusterOptions opts;
  opts.num_nodes = smoke ? 5 : 10;
  opts.seed = seed;
  opts.track_contents = false;
  opts.health = true;
  opts.network.bandwidth_mib = 1170;
  opts.raft.max_batch_entries = 16;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::abort();
  }
  const uint32_t data_parts = smoke ? 20 : 40;
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("gray", 10, data_parts));
  if (!st || !st->ok()) {
    std::fprintf(stderr, "volume create failed\n");
    std::abort();
  }

  const int kClients = 2;
  const int kProcs = smoke ? 4 : 8;
  std::vector<std::unique_ptr<CfsDataOps>> adapters;
  std::vector<uint64_t> files;
  for (int c = 0; c < kClients; c++) {
    auto mounted = harness::RunTask(cluster.sched(), cluster.MountClient("gray"));
    if (!mounted || !mounted->ok()) {
      std::fprintf(stderr, "mount failed\n");
      std::abort();
    }
    for (int p = 0; p < kProcs; p++) {
      adapters.push_back(std::make_unique<CfsDataOps>(&cluster, **mounted, 128 * kKiB));
      auto file = harness::RunTask(cluster.sched(), adapters.back()->PrepareFile(64 * kMiB));
      if (!file || !file->ok()) {
        std::fprintf(stderr, "prepare failed\n");
        std::abort();
      }
      files.push_back(**file);
    }
  }

  bool stop = false;
  uint64_t done = 0;
  for (size_t i = 0; i < adapters.size(); i++) {
    sim::Spawn(WriterLoop(adapters[i].get(), files[i], 64 * kMiB, 128 * kKiB, &stop, &done));
  }

  // Phase A: warm-up under nominal hardware, long enough for several scored
  // windows of traffic everywhere.
  cluster.sched().RunFor((smoke ? 8 : 12) * kSec);

  // Pick the busiest disk on node 0 (deterministic: counters, lowest index
  // wins ties) so the injected device is guaranteed to be serving traffic.
  sim::Host* h = cluster.node_host(0);
  int gray = 0;
  uint64_t best = 0;
  for (int d = 0; d < h->num_disks(); d++) {
    const uint64_t ops = h->disk(d)->reads() + h->disk(d)->writes();
    if (ops > best) {
      best = ops;
      gray = d;
    }
  }
  out.target = "n0.disk" + std::to_string(gray);
  out.injected_at = cluster.sched().Now();
  h->disk(gray)->set_slow_factor(slow_factor);

  // Phase B: run until the scorer flags the disk (or give up). Scoring rides
  // the 1 s heartbeat cadence, so poll once per virtual second.
  const int max_seconds = smoke ? 20 : 30;
  for (int s = 0; s < max_seconds && !out.detected; s++) {
    cluster.sched().RunFor(1 * kSec);
    const obs::HealthEvent* ev =
        cluster.health_scorer()->FirstSuspectEvent(out.target, out.injected_at);
    if (ev) {
      out.suspect_at = ev->time;
      out.detected = true;
    }
  }

  // Drain the writers, flush pending windows, dump.
  stop = true;
  cluster.sched().RunFor(2 * kSec);
  cluster.CollectAllNow();
  out.events = cluster.HealthEventsJsonl();
  out.health = cluster.HealthJson();
  out.ops = done;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_health_gray_disk");
  const bool smoke = SmokeMode(argc, argv);
  const char* sf = FlagValue(argc, argv, "--slow-factor");
  const uint32_t slow_factor = sf ? static_cast<uint32_t>(std::atoi(sf)) : 8;
  const char* events_out = FlagValue(argc, argv, "--events-out");

  std::printf("Gray-failure detection: slow disk x%u injected mid-run (%s)\n", slow_factor,
              smoke ? "smoke" : "full");

  GrayRunResult r1 = RunOnce(smoke, slow_factor, /*seed=*/1);
  GrayRunResult r2 = RunOnce(smoke, slow_factor, /*seed=*/1);
  const bool identical = r1.events == r2.events;

  const SimDuration window = obs::HealthOptions{}.window_usec;
  const SimDuration detect = r1.detected ? r1.suspect_at - r1.injected_at : -1;
  const int64_t detect_windows =
      r1.detected ? static_cast<int64_t>((detect + window - 1) / window) : -1;

  std::printf("target %s: injected at %llu, %s\n", r1.target.c_str(),
              static_cast<unsigned long long>(r1.injected_at),
              r1.detected ? "detected" : "NOT detected");
  if (r1.detected) {
    std::printf("  suspect at %llu (+%lld usec, %lld windows)\n",
                static_cast<unsigned long long>(r1.suspect_at),
                static_cast<long long>(detect), static_cast<long long>(detect_windows));
  }
  std::printf("  same-seed event logs byte-identical: %s\n", identical ? "yes" : "NO");

  std::printf(
      "health_detection gray_disk {\"slow_factor\":%u,\"target\":\"%s\","
      "\"injected_usec\":%llu,\"suspect_usec\":%lld,\"detect_usec\":%lld,"
      "\"detect_windows\":%lld,\"events\":%llu,\"ops\":%llu,\"runs_identical\":%s}\n",
      slow_factor, r1.target.c_str(), static_cast<unsigned long long>(r1.injected_at),
      r1.detected ? static_cast<long long>(r1.suspect_at) : -1,
      static_cast<long long>(detect), static_cast<long long>(detect_windows),
      static_cast<unsigned long long>(
          static_cast<uint64_t>(std::count(r1.events.begin(), r1.events.end(), '\n'))),
      static_cast<unsigned long long>(r1.ops), identical ? "true" : "false");

  if (events_out) {
    std::ofstream f(events_out);
    f << r1.events;
  }
  if (const char* health_out = FlagValue(argc, argv, "--health-out")) {
    std::ofstream f(health_out);
    f << r1.health << "\n";
  }

  wallclock.Print();
  // CI gates on these: the injected gray disk must be detected, and the
  // telemetry must be deterministic.
  return (r1.detected && identical) ? 0 : 1;
}
