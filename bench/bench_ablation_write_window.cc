// Ablation: sliding-window depth of the sequential-write pipeline.
//
// Fig-8-shaped cluster (single client, 1170 MiB/s wire so storage, not the
// NIC, is the binding resource), sequential appends of 1 MiB per op — eight
// 128 KiB packets — with fsync-per-op, sweeping write_window_packets.
// window=1 is the stop-and-wait baseline (one client→primary→backups→ack
// round trip per packet); deeper windows overlap packet round trips, so
// throughput should rise until the chain (disk/CPU) saturates.
//
// Emits one JSON line per (window, procs) point for machine consumption,
// then a summary table.
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_write_window");
  const bool smoke = SmokeMode(argc, argv);
  const std::vector<int> kWindows = smoke ? std::vector<int>{1, 4}
                                          : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> kProcs = smoke ? std::vector<int>{1} : std::vector<int>{1, 4};
  const uint64_t kOpBytes = 1 * kMiB;  // 8 packets per op
  const int kOpsPerProc = smoke ? 6 : 40;

  std::printf("Ablation: write window depth (seq 1 MiB appends, fig8-shaped cluster)%s\n",
              smoke ? " [smoke]" : "");

  std::vector<std::string> cols;
  for (int w : kWindows) cols.push_back("w=" + std::to_string(w));

  for (int procs : kProcs) {
    std::vector<double> mibps_row, stall_row;
    for (int w : kWindows) {
      client::ClientOptions copts;
      copts.write_window_packets = w;
      CfsBench b = MakeCfsBench(1, /*seed=*/41 + procs, 30, 40, /*nic_mib=*/1170, copts);
      FioParams params;
      params.file_bytes = 1 * kGiB;
      params.seq_block = kOpBytes;
      params.ops_per_proc = kOpsPerProc;
      auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
      BenchResult r = RunFio(&b.sched(), FioPattern::kSeqWrite, ops, params);
      double mibps = r.Iops() * kOpBytes / kMiB;
      const client::ClientStats& st = b.clients[0]->stats();
      std::printf(
          "{\"bench\":\"write_window\",\"window\":%d,\"procs\":%d,"
          "\"op_bytes\":%llu,\"ops\":%llu,\"iops\":%.1f,\"mib_per_s\":%.1f,"
          "\"max_inflight\":%llu,\"window_stalls\":%llu,\"resends\":%llu,"
          "\"suffix_resend_bytes\":%llu}\n",
          w, procs, static_cast<unsigned long long>(kOpBytes),
          static_cast<unsigned long long>(r.ops), r.Iops(), mibps,
          static_cast<unsigned long long>(st.max_inflight_packets),
          static_cast<unsigned long long>(st.window_stalls),
          static_cast<unsigned long long>(st.resends),
          static_cast<unsigned long long>(st.suffix_resend_bytes));
      mibps_row.push_back(mibps);
      stall_row.push_back(static_cast<double>(st.window_stalls));
    }
    PrintHeader("seq write MiB/s (procs=" + std::to_string(procs) + ")", cols);
    PrintRow("CFS", mibps_row);
    std::vector<double> speedup;
    for (double v : mibps_row) speedup.push_back(mibps_row[0] > 0 ? v / mibps_row[0] : 0);
    PrintRow("vs w=1", speedup);
  }
  wallclock.Print();
  return 0;
}
