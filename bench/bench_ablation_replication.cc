// Ablation A1 (§2.2.4, scenario-aware replication): compare CFS's design —
// primary-backup for appends + raft for overwrites — against the two
// one-size-fits-all alternatives the paper argues against:
//   * raft-for-everything: appends pay raft's log write amplification,
//   * primary-backup-for-everything is unsafe for overwrites (§2.2.4's
//     fragmentation argument); we quantify the write-amplification side.
//
// Reported: append and overwrite IOPS plus the measured disk write
// amplification (physical bytes written / logical bytes).
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

uint64_t TotalDiskWrites(harness::Cluster* c) {
  uint64_t bytes = 0;
  for (int i = 0; i < c->num_nodes(); i++) {
    sim::Host* h = c->node_host(i);
    for (int d = 0; d < h->num_disks(); d++) bytes += h->disk(d)->write_bytes();
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_replication");
  const bool smoke = SmokeMode(argc, argv);
  const int kClients = smoke ? 1 : 4;
  const int kProcs = smoke ? 4 : 32;
  const uint64_t kFileBytes = (smoke ? 32 : 256) * kMiB;
  std::printf("Ablation A1: scenario-aware replication (append via primary-backup,\n");
  std::printf("overwrite via raft) vs raft-for-appends.%s\n\n", smoke ? " [smoke]" : "");

  // --- Appends: chain (CFS design) vs raft (ablation). The "raft" variant
  // is emulated by writing each packet through the overwrite path of a
  // prepared file (same payload through the raft group).
  {
    // CFS design: appends through the primary-backup chain.
    CfsBench b = MakeCfsBench(kClients, 61, 30, 40, 1170);
    auto data = FanOutAs<DataOps>(b.data_adapters, kProcs);
    FioParams params;
    params.file_bytes = kFileBytes;
    params.ops_per_proc = smoke ? 4 : 30;
    uint64_t before = TotalDiskWrites(b.cluster.get());
    auto chain = RunFio(&b.sched(), FioPattern::kSeqWrite, data, params);
    uint64_t chain_bytes = TotalDiskWrites(b.cluster.get()) - before;
    double chain_logical = static_cast<double>(chain.ops) * params.seq_block;

    // Ablation: the same packets as raft proposals (overwrite path carries
    // the payload through the raft log).
    CfsBench b2 = MakeCfsBench(kClients, 61, 30, 40, 1170);
    auto data2 = FanOutAs<DataOps>(b2.data_adapters, kProcs);
    before = TotalDiskWrites(b2.cluster.get());
    auto raft = RunFio(&b2.sched(), FioPattern::kRandWrite, data2,
                       [&] {
                         FioParams p = params;
                         p.rand_block = params.seq_block;  // 128 KiB via raft
                         return p;
                       }());
    uint64_t raft_bytes = TotalDiskWrites(b2.cluster.get()) - before;
    double raft_logical = static_cast<double>(raft.ops) * params.seq_block;

    PrintHeader("128 KiB appends", {"IOPS", "write-amp"});
    PrintRow("primary-backup (CFS)",
             {chain.Iops(), chain_logical > 0 ? chain_bytes / chain_logical : 0});
    PrintRow("raft-everything",
             {raft.Iops(), raft_logical > 0 ? raft_bytes / raft_logical : 0});
    std::printf(
        "\nThe chain writes each byte once per replica; raft additionally writes\n"
        "every byte to the log (%0.1fx vs %0.1fx), the §2.2.4 amplification.\n",
        chain_logical > 0 ? chain_bytes / chain_logical : 0,
        raft_logical > 0 ? raft_bytes / raft_logical : 0);
  }

  // --- Overwrites through raft (the CFS design point for random writes).
  {
    CfsBench b = MakeCfsBench(kClients, 62, 30, 40, 1170);
    auto data = FanOutAs<DataOps>(b.data_adapters, kProcs);
    FioParams params;
    params.file_bytes = kFileBytes;
    params.ops_per_proc = smoke ? 8 : 60;
    auto ow = RunFio(&b.sched(), FioPattern::kRandWrite, data, params);
    PrintHeader("4 KiB overwrites (raft path)", {"IOPS"});
    PrintRow("scenario-aware (CFS)", {ow.Iops()});
    std::printf(
        "\nPrimary-backup overwrites would fragment extents into linked lists and\n"
        "eventually require defragmentation (§2.2.4); CFS avoids implementing that\n"
        "path entirely by reusing the meta-subsystem raft for in-place writes.\n");
  }
  wallclock.Print();
  return 0;
}
