// Ablation A4 (§4.2, DirStat discussion): how CFS serves readdir+stat —
//   * per-inode gets (the Ceph-style pattern),
//   * batchInodeGet (one RPC per meta partition),
//   * batchInodeGet + client cache (the shipped design; repeated scans).
// Reported: stat throughput and meta RPCs per scanned entry.
#include <cstdio>

#include "bench_common.h"
#include "harness/cluster.h"
#include "harness/workloads.h"

using namespace cfs;
using namespace cfs::bench;
using namespace cfs::harness;
using namespace cfs::sim;

namespace {

struct Sample {
  double iops = 0;
  double rpcs_per_entry = 0;
};

enum class Mode { kPerInode, kBatch, kBatchCached };

Sample Measure(Mode mode, int files, int scans) {
  ClusterOptions opts;
  opts.num_nodes = 10;
  opts.track_contents = false;
  opts.client.enable_metadata_cache = mode == Mode::kBatchCached;
  Cluster cluster(opts);
  if (!RunTask(cluster.sched(), cluster.Start())->ok()) std::abort();
  if (!RunTask(cluster.sched(), cluster.CreateVolume("v", 8, 8))->ok()) std::abort();
  auto mounted = RunTask(cluster.sched(), cluster.MountClient("v"));
  if (!mounted || !mounted->ok()) std::abort();
  client::Client* c = **mounted;
  auto& sched = cluster.sched();

  const int kFiles = files;
  const int kScans = scans;
  auto dir = RunTask(sched, c->Create(meta::kRootInode, "dir", meta::FileType::kDir));
  if (!dir || !dir->ok()) std::abort();
  uint64_t dir_ino = (*dir)->id;
  for (int i = 0; i < kFiles; i++) {
    auto f = RunTask(sched, c->Create(dir_ino, "f" + std::to_string(i), meta::FileType::kFile));
    if (!f || !f->ok()) std::abort();
  }
  sched.RunFor(3 * kSec);  // cold caches at scan start

  uint64_t rpcs0 = c->stats().meta_rpcs;
  SimTime t0 = sched.Now();
  uint64_t entries = 0;
  bool done = RunTaskVoid(sched, [](client::Client* c, uint64_t dir_ino, Mode mode,
                                    int scans, uint64_t& entries) -> Task<void> {
    for (int s = 0; s < scans; s++) {
      if (mode == Mode::kPerInode) {
        auto names = co_await c->ReadDir(dir_ino);
        if (!names.ok()) continue;
        for (const auto& d : *names) {
          auto ino = co_await c->GetInode(d.inode);
          if (ino.ok()) entries++;
        }
      } else {
        auto r = co_await c->ReadDirPlus(dir_ino);
        if (r.ok()) entries += r->size();
      }
    }
  }(c, dir_ino, mode, kScans, entries));
  if (!done) std::abort();

  Sample s;
  SimDuration elapsed = sched.Now() - t0;
  s.iops = elapsed > 0 ? entries * 1.0e6 / static_cast<double>(elapsed) : 0;
  s.rpcs_per_entry = entries ? static_cast<double>(c->stats().meta_rpcs - rpcs0) / entries : 0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_batchget");
  const bool smoke = SmokeMode(argc, argv);
  const int kFiles = smoke ? 12 : 64;
  const int kScans = smoke ? 3 : 20;
  std::printf("Ablation A4: readdir+stat strategies, %d-entry directory, %d scans%s\n",
              kFiles, kScans, smoke ? " [smoke]" : "");
  PrintHeader("DirStat strategy", {"stats/sec", "RPCs/entry"});
  Sample per_inode = Measure(Mode::kPerInode, kFiles, kScans);
  PrintRow("per-inode gets (no cache)", {per_inode.iops, per_inode.rpcs_per_entry});
  Sample batch = Measure(Mode::kBatch, kFiles, kScans);
  PrintRow("batchInodeGet (no cache)", {batch.iops, batch.rpcs_per_entry});
  Sample cached = Measure(Mode::kBatchCached, kFiles, kScans);
  PrintRow("batchInodeGet + cache", {cached.iops, cached.rpcs_per_entry});
  std::printf(
      "\nbatchInodeGet collapses N inode fetches into one RPC per meta partition\n"
      "(§4.2); the client-side cache then serves repeated scans locally, which is\n"
      "what separates CFS from Ceph in the DirStat test by ~an order of magnitude.\n");
  wallclock.Print();
  return 0;
}
