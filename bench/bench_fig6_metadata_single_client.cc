// Figure 6: IOPS of the 7 mdtest metadata operations with a single client
// and {1, 4, 16, 64} processes, CFS vs Ceph.
//
// Expected shape (paper): with 1 process Ceph wins most tests (directory
// locality + journal beats CFS's consensus round trip); as processes grow,
// CFS catches up and passes Ceph (uniform partition spread vs MDS hotspots
// and cache pressure). DirStat is CFS-dominated at every point
// (batchInodeGet + client cache); TreeCreation favours Ceph throughout.
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  WallclockReporter wallclock("bench_fig6_metadata_single_client");
  const std::vector<int> kProcs = {1, 4, 16, 64};
  const std::vector<MdTest> kTests = {
      MdTest::kDirCreation, MdTest::kDirStat,      MdTest::kDirRemoval,
      MdTest::kFileCreation, MdTest::kFileRemoval, MdTest::kTreeCreation,
      MdTest::kTreeRemoval};

  std::printf("Figure 6: metadata operations, single client, varying processes\n");
  std::printf("(IOPS in simulated time; paper shape: Ceph ahead at 1 proc in most tests,\n");
  std::printf(" CFS catches up and passes as processes increase)\n");

  rpc::MetricRegistry cfs_rpc_metrics, ceph_rpc_metrics;
  obs::Registry cfs_cluster_metrics;
  for (MdTest test : kTests) {
    PrintHeader(std::string(MdTestName(test)) + " (1 client)",
                {"procs=1", "procs=4", "procs=16", "procs=64"});
    std::vector<double> cfs_row, ceph_row;
    obs::Histogram cfs_lat, ceph_lat;
    for (int procs : kProcs) {
      MdtestParams params;
      params.items_per_proc = 48;
      bool tree = test == MdTest::kTreeCreation || test == MdTest::kTreeRemoval;
      {
        CfsBench b = MakeCfsBench(1, /*seed=*/7 + procs);
        auto ops = FanOutAs<MetaOps>(b.meta_adapters, tree ? 1 : procs);
        BenchResult r = RunMdtest(&b.sched(), test, ops, params);
        cfs_row.push_back(r.Iops());
        cfs_lat.MergeFrom(r.latency);
        AccumulateRpcMetrics(b, &cfs_rpc_metrics);
        AccumulateClusterMetrics(b, &cfs_cluster_metrics);
      }
      {
        CephBench b = MakeCephBench(1, /*seed=*/7 + procs);
        auto ops = FanOutAs<MetaOps>(b.meta_adapters, tree ? 1 : procs);
        BenchResult r = RunMdtest(&b.sched(), test, ops, params);
        ceph_row.push_back(r.Iops());
        ceph_lat.MergeFrom(r.latency);
        AccumulateRpcMetrics(b, &ceph_rpc_metrics);
      }
    }
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
    PrintLatencyQuantiles(std::string("cfs:") + MdTestName(test), cfs_lat);
    PrintLatencyQuantiles(std::string("ceph:") + MdTestName(test), ceph_lat);
  }
  PrintRpcMetrics("cfs", cfs_rpc_metrics);
  PrintRpcMetrics("ceph", ceph_rpc_metrics);
  PrintClusterMetrics("cfs", cfs_cluster_metrics);
  wallclock.Print();
  return 0;
}
