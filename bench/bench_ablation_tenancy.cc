// Ablation: multi-tenant QoS (ROADMAP item 3).
//
// Many volumes on one paper-shaped cluster (10 machines, meta+data
// colocated): one noisy neighbor streaming large appends from several client
// machines, one latency-sensitive tenant serving paced small reads over a
// pre-created working set, and a pool of background volumes taking
// Zipfian-distributed create+write traffic through one multi-mount client. Two phases on identically-seeded fresh clusters:
//
//   qos=0  everything at defaults — no token buckets, admission disabled
//          (the pre-QoS behavior, byte-identical schedules to the seed).
//   qos=1  per-volume VolumeQos records (weights + background iops caps) and
//          weighted-fair admission slots at every meta/data node.
//
// Reported per phase: the latency-sensitive tenant's p50/p99, the noisy
// tenant's MiB/s, aggregate ops and bytes, client-side throttle counters and
// node-side admission queue depths. The summary line gives the p99 isolation
// factor (off/on) and the aggregate-throughput delta — the acceptance
// criteria of ISSUE 8 (p99 isolation >= 3x at <= 10% aggregate delta).
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct TenancyParams {
  int bg_volumes = 30;
  int noisy_clients = 3;   // separate hosts, so demand is not client-NIC bound
  int noisy_workers = 32;  // per noisy client
  int lat_workers = 2;
  int bg_workers = 4;
  uint64_t noisy_chunk = 512 * kKiB;  // per-op append (four pipeline packets)
  uint64_t lat_bytes = 64 * kKiB;     // small-file path
  uint64_t bg_bytes = 16 * kKiB;
  SimDuration lat_pace = 10 * kMsec;
  SimDuration bg_pace = 25 * kMsec;
  SimDuration warmup = 1 * kSec;
  SimDuration window = 4 * kSec;
  double zipf_s = 1.2;
};

struct PhaseStats {
  bool stop = false;
  SimTime measure_start = 0;
  obs::Histogram lat_hist;
  uint64_t lat_ops = 0;
  uint64_t agg_ops = 0;     // every tenant, measured window only
  uint64_t agg_bytes = 0;   // payload bytes written, measured window only
  uint64_t noisy_bytes = 0;
};

/// Cumulative Zipf(s) distribution over `n` ranks.
std::vector<double> ZipfCdf(int n, double s) {
  std::vector<double> cdf(n);
  double sum = 0;
  for (int r = 0; r < n; r++) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf[r] = sum;
  }
  for (double& v : cdf) v /= sum;
  return cdf;
}

size_t ZipfPick(Rng* rng, const std::vector<double>& cdf) {
  const double u = static_cast<double>(rng->Next() >> 11) * 0x1.0p-53;
  for (size_t i = 0; i < cdf.size(); i++) {
    if (u <= cdf[i]) return i;
  }
  return cdf.size() - 1;
}

sim::Task<void> NoisyWorker(sim::Scheduler* sched, client::MountContext* m, int id,
                            const TenancyParams* p, PhaseStats* st,
                            std::function<void()> done) {
  auto created = co_await m->Create(meta::kRootInode, "noisy-" + std::to_string(id),
                                    meta::FileType::kFile);
  if (created.ok()) {
    const Buffer chunk = Buffer::Filled(p->noisy_chunk, 'n');
    uint64_t off = 0;
    int since_fsync = 0;
    while (!st->stop) {
      Status ws = co_await m->Write(created->id, off, chunk);
      if (!ws.ok()) {
        co_await sim::SleepFor{*sched, 10 * kMsec};
        continue;
      }
      off += chunk.size();
      if (++since_fsync >= 8) {  // periodic metadata sync => meta-path load
        since_fsync = 0;
        (void)co_await m->Fsync(created->id);
      }
      if (sched->Now() >= st->measure_start && !st->stop) {
        st->noisy_bytes += chunk.size();
        st->agg_bytes += chunk.size();
        st->agg_ops++;
      }
    }
  }
  done();
}

/// Latency-sensitive tenant: a read-serving workload — paced small reads
/// over a pre-created working set, the classic victim of a bulk-writing
/// noisy neighbor (every read eats one shared-disk queue wait). The working
/// set is created during warmup and is unmeasured.
sim::Task<void> LatencyWorker(sim::Scheduler* sched, client::MountContext* m, int id,
                              const TenancyParams* p, PhaseStats* st,
                              std::function<void()> done) {
  const Buffer payload = Buffer::Filled(p->lat_bytes, 'l');
  std::vector<uint64_t> files;
  for (int k = 0; k < 8 && !st->stop; k++) {
    auto f = co_await m->Create(meta::kRootInode,
                                "lat-" + std::to_string(id) + "-" + std::to_string(k),
                                meta::FileType::kFile);
    if (!f.ok()) continue;
    // Plain if, not a ?:-expression: gcc 12 mis-handles the lifetime of
    // temporaries when co_await appears inside a conditional operator.
    Status ws = co_await m->Write(f->id, 0, payload);
    if (ws.ok()) files.push_back(f->id);
  }
  size_t n = 0;
  while (!st->stop && !files.empty()) {
    const SimTime t0 = sched->Now();
    auto r = co_await m->Read(files[n++ % files.size()], 0, p->lat_bytes);
    const SimTime t1 = sched->Now();
    if (t0 >= st->measure_start && !st->stop) {
      st->lat_hist.Add(t1 - t0);
      st->lat_ops++;
      st->agg_ops++;
      if (r.ok()) st->agg_bytes += r->size();
    }
    co_await sim::SleepFor{*sched, p->lat_pace};
  }
  done();
}

sim::Task<void> BackgroundWorker(sim::Scheduler* sched,
                                 std::vector<client::MountContext*> mounts,
                                 std::vector<double> cdf, uint64_t seed, int id,
                                 const TenancyParams* p, PhaseStats* st,
                                 std::function<void()> done) {
  Rng rng(seed * 7919 + static_cast<uint64_t>(id));
  const Buffer payload = Buffer::Filled(p->bg_bytes, 'b');
  int n = 0;
  while (!st->stop) {
    client::MountContext* m = mounts[ZipfPick(&rng, cdf)];
    auto f = co_await m->Create(meta::kRootInode,
                                "bg-" + std::to_string(id) + "-" + std::to_string(n++),
                                meta::FileType::kFile);
    Status ws = f.status();
    if (f.ok()) ws = co_await m->Write(f->id, 0, payload);
    if (sched->Now() >= st->measure_start && !st->stop) {
      st->agg_ops++;
      if (ws.ok()) st->agg_bytes += payload.size();
    }
    co_await sim::SleepFor{*sched, p->bg_pace};
  }
  done();
}

struct PhaseResult {
  obs::Histogram lat_hist;
  uint64_t lat_ops = 0;
  double noisy_mib = 0;
  double agg_mib = 0;
  uint64_t agg_ops = 0;
};

/// `noisy_cap_mib`: per-mount client-side byte cap applied to each noisy
/// mount in the QoS-on phase (0 = uncapped). The caller derives it from the
/// off phase's measured throughput, the classic "cap the bully just under
/// its unconstrained share" isolation policy.
PhaseResult RunPhase(bool qos_on, uint64_t noisy_cap_mib, uint64_t seed,
                     const TenancyParams& P) {
  harness::ClusterOptions opts;
  opts.num_nodes = 10;
  opts.seed = seed;
  opts.track_contents = false;
  // One modest disk per storage node: the shared resource the noisy tenant
  // saturates (fig benches model the paper testbed; this ablation wants a
  // contended box instead).
  opts.host.num_disks = 1;
  opts.host.disk.bandwidth_mib = 150;
  opts.host.disk.queue_depth = 2;
  opts.host.disk.capacity_bytes = 960ull * kGiB;
  opts.network.bandwidth_mib = 1170;
  opts.raft.max_batch_entries = 16;
  if (qos_on) {
    opts.meta.admission_slots = 8;
    opts.data.admission_slots = 8;
  }
  harness::Cluster cluster(opts);
  sim::Scheduler& sched = cluster.sched();
  auto st = harness::RunTask(sched, cluster.Start());
  if (!st || !st->ok()) {
    std::fprintf(stderr, "tenancy: cluster start failed\n");
    std::abort();
  }

  // Volumes. In the off phase every VolumeQos stays default — the encoding,
  // the buckets and the admission queues are all byte-identical to pre-QoS.
  master::VolumeQos noisy_q, lat_q, bg_q;
  if (qos_on) {
    noisy_q.weight = 1;
    noisy_q.bytes_per_sec = noisy_cap_mib * kMiB;  // per mount (per client)
    lat_q.weight = 32;
    bg_q.weight = 4;
    bg_q.iops_limit = 200;  // client-side pacing of the background pool
  }
  auto create = [&](const std::string& name, uint32_t mp, uint32_t dp,
                    master::VolumeQos q) {
    auto r = harness::RunTask(sched, cluster.CreateVolume(name, mp, dp, q));
    if (!r || !r->ok()) {
      std::fprintf(stderr, "tenancy: create %s failed\n", name.c_str());
      std::abort();
    }
  };
  create("noisy", 2, 8, noisy_q);
  create("lat", 2, 4, lat_q);
  // The background pool boots concurrently: serial creation would pay one
  // election wait per volume while every prior volume's raft groups keep
  // ticking — quadratic in volumes, and the full mode boots 2,048 of them.
  std::vector<std::string> bg_names;
  for (int i = 0; i < P.bg_volumes; i++) bg_names.push_back("bg" + std::to_string(i));
  sim::Join cjoin(&sched, P.bg_volumes);
  for (int i = 0; i < P.bg_volumes; i++) {
    sim::Spawn([](harness::Cluster* cl, std::string name, master::VolumeQos q,
                  std::function<void()> done) -> sim::Task<void> {
      Status st = co_await cl->CreateVolume(name, 1, 2, q);
      if (!st.ok()) {
        std::fprintf(stderr, "tenancy: create %s failed\n", name.c_str());
        std::abort();
      }
      done();
    }(&cluster, bg_names[i], bg_q, cjoin.Arrive()));
  }
  (void)harness::RunTaskVoid(sched, cjoin.Wait());

  // One client host per tenant class; the background pool shares one
  // multi-mount client (the multi-volume seam this PR adds).
  auto mount_one = [&](std::vector<std::string> vols) -> client::Client* {
    auto c = harness::RunTask(sched, cluster.MountClient(std::move(vols)));
    if (!c || !c->ok()) {
      std::fprintf(stderr, "tenancy: mount failed\n");
      std::abort();
    }
    return **c;
  };
  std::vector<client::Client*> noisy_cs;
  for (int i = 0; i < P.noisy_clients; i++) noisy_cs.push_back(mount_one({"noisy"}));
  client::Client* lat_c = mount_one({"lat"});
  client::Client* bg_c = mount_one(bg_names);
  std::vector<client::MountContext*> bg_mounts;
  for (const std::string& n : bg_names) bg_mounts.push_back(bg_c->mount(n));

  PhaseStats stats;
  stats.measure_start = sched.Now() + P.warmup;
  const int workers = P.noisy_clients * P.noisy_workers + P.lat_workers + P.bg_workers;
  sim::Join join(&sched, workers);
  for (int c = 0; c < P.noisy_clients; c++) {
    for (int i = 0; i < P.noisy_workers; i++) {
      sim::Spawn(NoisyWorker(&sched, noisy_cs[c]->default_mount(), c * 100 + i, &P,
                             &stats, join.Arrive()));
    }
  }
  for (int i = 0; i < P.lat_workers; i++) {
    sim::Spawn(LatencyWorker(&sched, lat_c->default_mount(), i, &P, &stats, join.Arrive()));
  }
  const std::vector<double> cdf = ZipfCdf(P.bg_volumes, P.zipf_s);
  for (int i = 0; i < P.bg_workers; i++) {
    sim::Spawn(BackgroundWorker(&sched, bg_mounts, cdf, seed, i, &P, &stats, join.Arrive()));
  }

  sched.RunFor(P.warmup + P.window);
  stats.stop = true;
  (void)harness::RunTaskVoid(sched, join.Wait());

  const double secs = static_cast<double>(P.window) / kSec;
  PhaseResult r;
  r.lat_hist = stats.lat_hist;
  r.lat_ops = stats.lat_ops;
  r.noisy_mib = static_cast<double>(stats.noisy_bytes) / kMiB / secs;
  r.agg_mib = static_cast<double>(stats.agg_bytes) / kMiB / secs;
  r.agg_ops = stats.agg_ops;

  // Per-tenant observability: client-side throttle counters (token buckets)
  // and node-side weighted-fair admission queue totals.
  uint64_t throttle_waits = 0, throttle_usec = 0;
  std::vector<client::Client*> all_clients = noisy_cs;
  all_clients.push_back(lat_c);
  all_clients.push_back(bg_c);
  for (client::Client* c : all_clients) {
    for (const auto& [name, m] : c->mounts()) {
      throttle_waits += m->mount_stats().throttle_waits;
      throttle_usec += m->mount_stats().throttle_wait_usec;
    }
  }
  uint64_t meta_queued = 0, data_queued = 0;
  for (int i = 0; i < cluster.num_nodes(); i++) {
    for (const auto& [t, s] : cluster.meta_node(i)->admission().tenant_stats()) {
      meta_queued += s.queued;
    }
    for (const auto& [t, s] : cluster.data_node(i)->admission().tenant_stats()) {
      data_queued += s.queued;
    }
  }
  std::printf(
      "{\"bench\":\"tenancy\",\"qos\":%d,\"bg_volumes\":%d,\"lat_ops\":%llu,"
      "\"lat_p50_usec\":%.1f,\"lat_p99_usec\":%.1f,\"noisy_mib_per_s\":%.1f,"
      "\"agg_mib_per_s\":%.1f,\"agg_ops\":%llu,\"throttle_waits\":%llu,"
      "\"throttle_wait_usec\":%llu,\"meta_queued\":%llu,\"data_queued\":%llu}\n",
      qos_on ? 1 : 0, P.bg_volumes, static_cast<unsigned long long>(r.lat_ops),
      r.lat_hist.P50(), r.lat_hist.P99(), r.noisy_mib, r.agg_mib,
      static_cast<unsigned long long>(r.agg_ops),
      static_cast<unsigned long long>(throttle_waits),
      static_cast<unsigned long long>(throttle_usec),
      static_cast<unsigned long long>(meta_queued),
      static_cast<unsigned long long>(data_queued));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_tenancy");
  const bool smoke = SmokeMode(argc, argv);
  TenancyParams P;
  if (!smoke) {
    P.bg_volumes = 2048;  // "thousands of volumes" (ROADMAP item 3)
    P.window = 20 * kSec;
    P.bg_workers = 16;
  }
  std::printf("Ablation: multi-tenant QoS (noisy neighbor vs latency-sensitive, "
              "%d volumes)%s\n",
              P.bg_volumes + 2, smoke ? " [smoke]" : "");

  PhaseResult off = RunPhase(false, 0, /*seed=*/91, P);
  // Cap each noisy mount just under its unconstrained per-client share; the
  // admission weights handle whatever burstiness the cap lets through.
  const uint64_t cap_mib = static_cast<uint64_t>(
      off.noisy_mib * 0.93 / static_cast<double>(P.noisy_clients));
  PhaseResult on = RunPhase(true, cap_mib, /*seed=*/91, P);

  PrintLatencyQuantiles("tenancy:lat:qos_off", off.lat_hist);
  PrintLatencyQuantiles("tenancy:lat:qos_on", on.lat_hist);

  const double isolation = on.lat_hist.P99() > 0 ? off.lat_hist.P99() / on.lat_hist.P99() : 0;
  const double agg_delta =
      off.agg_mib > 0 ? (on.agg_mib - off.agg_mib) / off.agg_mib * 100.0 : 0;
  std::printf(
      "{\"bench\":\"tenancy\",\"summary\":1,\"p99_off_usec\":%.1f,\"p99_on_usec\":%.1f,"
      "\"p99_isolation_x\":%.2f,\"agg_off_mib\":%.1f,\"agg_on_mib\":%.1f,"
      "\"agg_delta_pct\":%.2f}\n",
      off.lat_hist.P99(), on.lat_hist.P99(), isolation, off.agg_mib, on.agg_mib,
      agg_delta);

  PrintHeader("latency-sensitive tenant p99 (usec)", {"qos off", "qos on", "isolation x"});
  PrintRow("p99", {off.lat_hist.P99(), on.lat_hist.P99(), isolation});
  PrintHeader("aggregate MiB/s", {"qos off", "qos on", "delta %"});
  PrintRow("all tenants", {off.agg_mib, on.agg_mib, agg_delta});

  wallclock.Print();
  return 0;
}
