// Figure 10: small-file write / read / removal IOPS for file sizes 1..128 KB
// with 8 clients x 64 processes (the paper's product-image workload:
// write-once, never modified).
//
// Paper shape: CFS ahead of Ceph in both write and read at every size —
// (1) CFS keeps all file metadata in memory (no disk IO on read), and
// (2) the CFS client writes small files straight into an aggregated extent
// on the data node without asking the resource manager for new extents
// (§4.4); deletes use the punch-hole path.
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  WallclockReporter wallclock("bench_fig10_small_files");
  const std::vector<uint64_t> kSizesKb = {1, 2, 4, 8, 16, 32, 64, 128};
  const int kClients = 8;
  const int kProcs = 64;
  const int kFilesPerProc = 4;

  std::printf("Figure 10: small files, 8 clients x 64 procs, sizes 1..128 KB\n");

  std::vector<std::string> cols;
  for (auto s : kSizesKb) cols.push_back(std::to_string(s) + "KB");

  const std::vector<std::pair<SmallFileTest, const char*>> kTests = {
      {SmallFileTest::kWrite, "File Write"},
      {SmallFileTest::kRead, "File Read"},
      {SmallFileTest::kRemoval, "File Removal"},
  };

  obs::Registry cfs_cluster_metrics;
  for (auto [test, name] : kTests) {
    PrintHeader(name, cols);
    std::vector<double> cfs_row, ceph_row;
    obs::Histogram cfs_lat, ceph_lat;
    for (uint64_t kb : kSizesKb) {
      {
        CfsBench b = MakeCfsBench(kClients, /*seed=*/41 + kb, 30, 120, /*nic_mib=*/1170);
        auto meta = FanOutAs<MetaOps>(b.meta_adapters, kProcs);
        auto data = FanOutAs<DataOps>(b.data_adapters, kProcs);
        BenchResult r = RunSmallFiles(&b.sched(), test, kb * kKiB, meta, data, kFilesPerProc);
        cfs_row.push_back(r.Iops());
        cfs_lat.MergeFrom(r.latency);
        AccumulateClusterMetrics(b, &cfs_cluster_metrics);
      }
      {
        CephBench b = MakeCephBench(kClients, /*seed=*/41 + kb, {}, /*nic_mib=*/1170);
        auto meta = FanOutAs<MetaOps>(b.meta_adapters, kProcs);
        auto data = FanOutAs<DataOps>(b.data_adapters, kProcs);
        BenchResult r = RunSmallFiles(&b.sched(), test, kb * kKiB, meta, data, kFilesPerProc);
        ceph_row.push_back(r.Iops());
        ceph_lat.MergeFrom(r.latency);
      }
    }
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
    PrintLatencyQuantiles(std::string("cfs:") + name, cfs_lat);
    PrintLatencyQuantiles(std::string("ceph:") + name, ceph_lat);
  }
  PrintClusterMetrics("cfs", cfs_cluster_metrics);
  wallclock.Print();
  return 0;
}
