// Figure 9: fio-style large-file IOPS with {1..8} clients — 64 processes per
// client for the random tests, 16 for the sequential tests, each process on
// its own private file (paper setup).
//
// Paper shape: CFS far ahead of Ceph in random read and random write at
// every client count (in-memory metadata + in-place overwrite vs bounded
// caches + queue-walking overwrites); sequential read/write similar.
//
// Flags:
//   --smoke      shrink the sweep (2 client counts, random patterns, fewer
//                ops, CFS only) so CI can run the binary in seconds.
//   --nodes N    cluster size (default 10, the paper testbed). The CI
//                bench-smoke budget step runs `--smoke --nodes 100` — a
//                100-node fig9-class run — and gates on wall-clock; see
//                .github/workflows/ci.yml and EXPERIMENTS.md.
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_fig9_largefile_multi_client");
  const bool smoke = SmokeMode(argc, argv);
  const char* nodes_flag = FlagValue(argc, argv, "--nodes");
  const int nodes = nodes_flag ? std::atoi(nodes_flag) : 10;
  // More machines get proportionally more partitions to spread over (the
  // default 30/40 split is the 10-node paper shape).
  const uint32_t meta_parts = nodes > 10 ? 3u * static_cast<uint32_t>(nodes) / 5u : 30u;
  const uint32_t data_parts = nodes > 10 ? 4u * static_cast<uint32_t>(nodes) / 5u : 40u;

  const std::vector<int> kClients = smoke ? std::vector<int>{4, 8} : std::vector<int>{1, 2, 4, 8};
  const std::vector<FioPattern> kPatterns = {FioPattern::kRandWrite, FioPattern::kRandRead,
                                             FioPattern::kSeqWrite, FioPattern::kSeqRead};

  std::printf("Figure 9: large-file IOPS, multiple clients (%d nodes%s)\n", nodes,
              smoke ? ", smoke" : "");
  std::printf("(64 procs/client random, 16 procs/client sequential; 1 GiB files)\n");

  std::vector<std::string> cols;
  for (int c : kClients) cols.push_back("clients=" + std::to_string(c));

  obs::Registry cfs_cluster_metrics;
  for (FioPattern pattern : kPatterns) {
    bool rand = pattern == FioPattern::kRandWrite || pattern == FioPattern::kRandRead;
    int procs = rand ? 64 : 16;
    PrintHeader(std::string(FioPatternName(pattern)) + " (" + std::to_string(procs) +
                    " procs/client)",
                cols);
    std::vector<double> cfs_row, ceph_row;
    obs::Histogram cfs_lat, ceph_lat;
    for (int clients : kClients) {
      FioParams params;
      params.file_bytes = smoke ? 256 * kMiB : 1 * kGiB;
      params.ops_per_proc = smoke ? (rand ? 40 : 15) : (rand ? 60 : 25);
      {
        CfsBench b = MakeCfsBench(clients, /*seed=*/31 + clients, meta_parts, data_parts,
                                  /*nic_mib=*/1170, std::nullopt, /*trace=*/false, nodes);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        cfs_row.push_back(r.Iops());
        cfs_lat.MergeFrom(r.latency);
        AccumulateClusterMetrics(b, &cfs_cluster_metrics);
      }
      if (!smoke) {
        CephBench b = MakeCephBench(clients, /*seed=*/31 + clients, {}, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        ceph_row.push_back(r.Iops());
        ceph_lat.MergeFrom(r.latency);
      }
    }
    PrintRow("CFS", cfs_row);
    if (!smoke) {
      PrintRow("Ceph", ceph_row);
      std::vector<double> ratio;
      for (size_t i = 0; i < cfs_row.size(); i++) {
        ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
      }
      PrintRow("CFS/Ceph", ratio);
    }
    PrintLatencyQuantiles(std::string("cfs:") + FioPatternName(pattern), cfs_lat);
    if (!smoke) {
      PrintLatencyQuantiles(std::string("ceph:") + FioPatternName(pattern), ceph_lat);
    }
  }
  PrintClusterMetrics("cfs", cfs_cluster_metrics);
  wallclock.Print();
  return 0;
}
