// Figure 9: fio-style large-file IOPS with {1..8} clients — 64 processes per
// client for the random tests, 16 for the sequential tests, each process on
// its own private file (paper setup).
//
// Paper shape: CFS far ahead of Ceph in random read and random write at
// every client count (in-memory metadata + in-place overwrite vs bounded
// caches + queue-walking overwrites); sequential read/write similar.
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  const std::vector<int> kClients = {1, 2, 4, 8};
  const std::vector<FioPattern> kPatterns = {FioPattern::kRandWrite, FioPattern::kRandRead,
                                             FioPattern::kSeqWrite, FioPattern::kSeqRead};

  std::printf("Figure 9: large-file IOPS, multiple clients\n");
  std::printf("(64 procs/client random, 16 procs/client sequential; 1 GiB files)\n");

  std::vector<std::string> cols;
  for (int c : kClients) cols.push_back("clients=" + std::to_string(c));

  for (FioPattern pattern : kPatterns) {
    bool rand = pattern == FioPattern::kRandWrite || pattern == FioPattern::kRandRead;
    int procs = rand ? 64 : 16;
    PrintHeader(std::string(FioPatternName(pattern)) + " (" + std::to_string(procs) +
                    " procs/client)",
                cols);
    std::vector<double> cfs_row, ceph_row;
    obs::Histogram cfs_lat, ceph_lat;
    for (int clients : kClients) {
      FioParams params;
      params.file_bytes = 1 * kGiB;
      params.ops_per_proc = rand ? 60 : 25;
      {
        CfsBench b = MakeCfsBench(clients, /*seed=*/31 + clients, 30, 40, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        cfs_row.push_back(r.Iops());
        cfs_lat.MergeFrom(r.latency);
      }
      {
        CephBench b = MakeCephBench(clients, /*seed=*/31 + clients, {}, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        ceph_row.push_back(r.Iops());
        ceph_lat.MergeFrom(r.latency);
      }
    }
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
    PrintLatencyQuantiles(std::string("cfs:") + FioPatternName(pattern), cfs_lat);
    PrintLatencyQuantiles(std::string("ceph:") + FioPatternName(pattern), ceph_lat);
  }
  return 0;
}
