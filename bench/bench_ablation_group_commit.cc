// Ablation: group commit on the consensus path (raft proposal batching).
//
// The paper pins metadata mutations on raft (§2.1.2), so every create pays
// leader log writes before it is acknowledged. With many concurrent clients
// those writes are the choke point; group commit folds concurrent proposals
// into one LogStore::Append per batch. This bench isolates that lever:
//
//  * single meta partition, so every mutation funnels through ONE leader;
//  * disk queue_depth=1, so leader log flushes serialize (the regime where
//    coalescing pays — with deep NVMe queues the disk hides it);
//  * sweep batching {off: max_batch_proposals=1, on: 64} x concurrency
//    {1, 8, 32} closed-loop creator clients.
//
// Expectations: >=2x create throughput at 32 clients with batching on,
// leader log writes per committed proposal well below 1, and single-client
// p50 unchanged (natural batching adds no wait: the first proposal of a
// batch reaches the disk with nothing in front of it).
//
// Emits one JSON line per cell, then summary tables with an on/off speedup
// row. --smoke shrinks the sweep for CI.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct CellResult {
  double creates_per_sec = 0;
  double p50_usec = 0;
  double avg_batch = 0;        // proposals per leader log write (workload only)
  double writes_per_proposal = 0;
  uint64_t queue_hwm = 0;
};

CellResult RunCell(bool batching_on, int clients, int ops_per_client, uint64_t seed) {
  harness::ClusterOptions opts;
  opts.num_nodes = 5;
  opts.seed = seed;
  opts.track_contents = false;
  // Serialize log flushes: one disk lane makes the leader's WAL the binding
  // resource, which is what group commit optimizes.
  opts.host.disk.queue_depth = 1;
  opts.raft.max_batch_entries = 64;
  opts.raft.max_batch_proposals = batching_on ? 64 : 1;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) {
    std::fprintf(stderr, "cluster start failed\n");
    std::abort();
  }
  st = harness::RunTask(cluster.sched(), cluster.CreateVolume("bench", 1, 4));
  if (!st || !st->ok()) {
    std::fprintf(stderr, "volume create failed\n");
    std::abort();
  }
  std::vector<client::Client*> cs;
  for (int i = 0; i < clients; i++) {
    auto c = harness::RunTask(cluster.sched(), cluster.MountClient("bench"));
    if (!c || !c->ok()) {
      std::fprintf(stderr, "mount failed\n");
      std::abort();
    }
    cs.push_back(**c);
  }

  // Workload-only deltas: boot and volume admin also propose through raft.
  raft::GroupCommitStats gc0 = cluster.group_commit_stats();
  raft::RaftHost::LogWriteStats lw0 = cluster.log_write_stats();

  std::vector<SimDuration> latencies;
  latencies.reserve(static_cast<size_t>(clients) * ops_per_client);
  int done = 0;
  SimTime start = cluster.sched().Now();
  for (int i = 0; i < clients; i++) {
    sim::Spawn([](harness::Cluster* cl, client::Client* c, int id, int ops,
                  std::vector<SimDuration>& lats, int& done) -> sim::Task<void> {
      for (int j = 0; j < ops; j++) {
        SimTime t0 = cl->sched().Now();
        auto r = co_await c->Create(meta::kRootInode,
                                    "gc" + std::to_string(id) + "-" + std::to_string(j),
                                    meta::FileType::kFile);
        if (r.ok()) lats.push_back(cl->sched().Now() - t0);
      }
      done++;
    }(&cluster, cs[i], i, ops_per_client, latencies, done));
  }
  bool finished = cluster.RunUntil([&] { return done == clients; }, 10 * kMsec, 30000);
  if (!finished) {
    std::fprintf(stderr, "workload did not finish\n");
    std::abort();
  }
  double elapsed_sec = static_cast<double>(cluster.sched().Now() - start) / kSec;

  raft::GroupCommitStats gc1 = cluster.group_commit_stats();
  raft::RaftHost::LogWriteStats lw1 = cluster.log_write_stats();
  uint64_t batches = gc1.batches - gc0.batches;
  uint64_t proposals = gc1.proposals - gc0.proposals;
  uint64_t writes = lw1.append_writes - lw0.append_writes;

  CellResult r;
  r.creates_per_sec = elapsed_sec > 0 ? latencies.size() / elapsed_sec : 0;
  std::sort(latencies.begin(), latencies.end());
  r.p50_usec = latencies.empty()
                   ? 0
                   : static_cast<double>(latencies[latencies.size() / 2]) / kUsec;
  r.avg_batch = batches ? static_cast<double>(proposals) / batches : 0;
  r.writes_per_proposal = proposals ? static_cast<double>(writes) / proposals : 0;
  r.queue_hwm = gc1.queue_high_watermark;
  std::printf(
      "{\"bench\":\"group_commit\",\"batching\":%d,\"clients\":%d,"
      "\"ops\":%zu,\"creates_per_s\":%.1f,\"p50_usec\":%.1f,"
      "\"avg_batch\":%.2f,\"log_writes_per_proposal\":%.3f,"
      "\"queue_high_watermark\":%llu}\n",
      batching_on ? 1 : 0, clients, latencies.size(), r.creates_per_sec, r.p50_usec,
      r.avg_batch, r.writes_per_proposal,
      static_cast<unsigned long long>(r.queue_hwm));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_group_commit");
  const bool smoke = SmokeMode(argc, argv);
  const std::vector<int> kClients = smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 8, 32};
  const int kOpsPerClient = smoke ? 4 : 25;

  std::printf(
      "Ablation: group commit (raft proposal batching), single meta partition, "
      "queue_depth=1%s\n",
      smoke ? " [smoke]" : "");

  std::vector<double> off_tput, on_tput, off_p50, on_p50, on_batch, off_wpp, on_wpp;
  for (int clients : kClients) {
    CellResult off = RunCell(false, clients, kOpsPerClient, /*seed=*/71 + clients);
    CellResult on = RunCell(true, clients, kOpsPerClient, /*seed=*/71 + clients);
    off_tput.push_back(off.creates_per_sec);
    on_tput.push_back(on.creates_per_sec);
    off_p50.push_back(off.p50_usec);
    on_p50.push_back(on.p50_usec);
    on_batch.push_back(on.avg_batch);
    off_wpp.push_back(off.writes_per_proposal);
    on_wpp.push_back(on.writes_per_proposal);
  }

  std::vector<std::string> cols;
  for (int c : kClients) cols.push_back("clients=" + std::to_string(c));
  PrintHeader("create throughput (creates/s)", cols);
  PrintRow("batch off", off_tput);
  PrintRow("batch on", on_tput);
  std::vector<double> speedup;
  for (size_t i = 0; i < on_tput.size(); i++) {
    speedup.push_back(off_tput[i] > 0 ? on_tput[i] / off_tput[i] : 0);
  }
  PrintRow("on/off", speedup);

  PrintHeader("create p50 latency (usec)", cols);
  PrintRow("batch off", off_p50);
  PrintRow("batch on", on_p50);

  PrintHeader("leader log writes per proposal", cols);
  PrintRow("batch off", off_wpp);
  PrintRow("batch on", on_wpp);
  PrintRow("avg batch(on)", on_batch);
  wallclock.Print();
  return 0;
}
