// Shared setup for the reproduction benches: builds a paper-shaped CFS
// cluster (10 machines, meta+data colocated, 3 masters) and a Ceph cluster
// (10 machines, 1 MDS + 16 OSDs each) on separate simulations, and wires
// mdtest/fio process vectors.
//
// Scale substitutions vs the paper testbed are documented in DESIGN.md:
// extent stores run in accounting mode, file sizes and item counts are
// scaled down (IOPS is rate-based; shapes are preserved), and each bench
// prints the simulated-time IOPS for CFS and Ceph side by side.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/workloads.h"

namespace cfs::bench {

struct CfsBench {
  std::unique_ptr<harness::Cluster> cluster;
  std::vector<client::Client*> clients;
  std::vector<std::unique_ptr<CfsMetaOps>> meta_adapters;
  std::vector<std::unique_ptr<CfsDataOps>> data_adapters;

  sim::Scheduler& sched() { return cluster->sched(); }
};

inline CfsBench MakeCfsBench(int num_clients, uint64_t seed = 1,
                             uint32_t meta_partitions = 30, uint32_t data_partitions = 40,
                             uint64_t nic_mib = 0,
                             std::optional<client::ClientOptions> client_opts = std::nullopt) {
  CfsBench b;
  harness::ClusterOptions opts;
  opts.num_nodes = 10;  // paper testbed
  opts.seed = seed;
  opts.track_contents = false;
  if (client_opts) opts.client = *client_opts;
  opts.host.disk.capacity_bytes = 960ull * kGiB;
  // Data-path benches scale the wire rate up so the storage stack (not the
  // NIC) is the binding resource, matching the regime the paper's absolute
  // random-IO numbers imply (see EXPERIMENTS.md).
  if (nic_mib) opts.network.bandwidth_mib = nic_mib;
  // Bound append batches so a single follower round never serializes
  // hundreds of KB of log payload (keeps overwrite latency flat under load).
  opts.raft.max_batch_entries = 16;
  b.cluster = std::make_unique<harness::Cluster>(opts);
  auto st = harness::RunTask(b.cluster->sched(), b.cluster->Start());
  if (!st || !st->ok()) {
    std::fprintf(stderr, "CFS cluster start failed\n");
    std::abort();
  }
  st = harness::RunTask(b.cluster->sched(),
                        b.cluster->CreateVolume("bench", meta_partitions, data_partitions));
  if (!st || !st->ok()) {
    std::fprintf(stderr, "CFS volume create failed: %s\n", st ? st->ToString().c_str() : "hang");
    std::abort();
  }
  for (int i = 0; i < num_clients; i++) {
    auto c = harness::RunTask(b.cluster->sched(), b.cluster->MountClient("bench"));
    if (!c || !c->ok()) {
      std::fprintf(stderr, "CFS mount failed\n");
      std::abort();
    }
    b.clients.push_back(**c);
    b.meta_adapters.push_back(std::make_unique<CfsMetaOps>(**c));
    b.data_adapters.push_back(std::make_unique<CfsDataOps>(
        b.cluster.get(), **c, 128 * kKiB));
  }
  return b;
}

struct CephBench {
  std::unique_ptr<sim::Scheduler> sched_holder;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<ceph::CephCluster> cluster;
  std::vector<std::unique_ptr<ceph::CephClient>> clients;
  std::vector<std::unique_ptr<CephMetaOps>> meta_adapters;
  std::vector<std::unique_ptr<CephDataOps>> data_adapters;

  sim::Scheduler& sched() { return *sched_holder; }
};

inline CephBench MakeCephBench(int num_clients, uint64_t seed = 1,
                               ceph::CephOptions opts = {}, uint64_t nic_mib = 0) {
  CephBench b;
  b.sched_holder = std::make_unique<sim::Scheduler>(seed);
  sim::NetworkOptions nopts;
  if (nic_mib) nopts.bandwidth_mib = nic_mib;
  b.net = std::make_unique<sim::Network>(b.sched_holder.get(), nopts);
  b.cluster = std::make_unique<ceph::CephCluster>(b.sched_holder.get(), b.net.get(), opts);
  for (int i = 0; i < num_clients; i++) {
    sim::HostOptions ho;
    ho.num_disks = 1;
    sim::Host* h = b.net->AddHost(ho);
    b.clients.push_back(std::make_unique<ceph::CephClient>(b.cluster.get(), h));
    b.meta_adapters.push_back(std::make_unique<CephMetaOps>(b.clients.back().get()));
    b.data_adapters.push_back(std::make_unique<CephDataOps>(b.clients.back().get()));
  }
  return b;
}

/// Per-RPC metric accumulation across bench cells. Every cell constructs a
/// fresh cluster, so its registries die with the cell: fold them into a
/// main()-scoped registry before teardown, then dump once at the end.
inline void AccumulateRpcMetrics(const CfsBench& b, rpc::MetricRegistry* into) {
  into->MergeFrom(b.cluster->rpc_metrics());
  for (client::Client* c : b.clients) into->MergeFrom(c->rpc_metrics());
}

inline void AccumulateRpcMetrics(const CephBench& b, rpc::MetricRegistry* into) {
  into->MergeFrom(b.cluster->rpc_metrics());
}

/// One machine-readable line per system: `rpc_metrics <label> {json}`.
inline void PrintRpcMetrics(const char* label, const rpc::MetricRegistry& reg) {
  std::printf("rpc_metrics %s %s\n", label, reg.DumpJson().c_str());
}

/// One machine-readable line with the cluster-wide group-commit counters
/// (raft proposal batching) and leader log-write accounting: how many
/// proposals shared each log flush, and what that did to WAL write counts.
inline void PrintGroupCommitStats(const char* label, const harness::Cluster& cluster) {
  raft::GroupCommitStats gc = cluster.group_commit_stats();
  raft::RaftHost::LogWriteStats lw = cluster.log_write_stats();
  double avg_batch = gc.batches ? static_cast<double>(gc.proposals) / gc.batches : 0.0;
  std::printf(
      "group_commit %s {\"batches\":%llu,\"proposals\":%llu,\"avg_batch\":%.2f,"
      "\"max_batch\":%llu,\"queue_high_watermark\":%llu,\"batched_bytes\":%llu,"
      "\"log_append_writes\":%llu,\"log_appended_entries\":%llu,"
      "\"log_persisted_bytes\":%llu}\n",
      label, static_cast<unsigned long long>(gc.batches),
      static_cast<unsigned long long>(gc.proposals), avg_batch,
      static_cast<unsigned long long>(gc.max_batch),
      static_cast<unsigned long long>(gc.queue_high_watermark),
      static_cast<unsigned long long>(gc.batched_bytes),
      static_cast<unsigned long long>(lw.append_writes),
      static_cast<unsigned long long>(lw.appended_entries),
      static_cast<unsigned long long>(lw.persisted_bytes));
}

/// Shared tiny-parameter switch for the ablation benches: `--smoke` shrinks
/// every sweep so CI can execute each binary end to end in seconds.
inline bool SmokeMode(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// procs_per_client copies of each client's adapter (mdtest processes on one
/// client share the mount and its caches, §4.1).
template <typename T>
std::vector<T*> FanOut(const std::vector<std::unique_ptr<T>>& adapters, int procs_per_client) {
  std::vector<T*> out;
  for (const auto& a : adapters) {
    for (int p = 0; p < procs_per_client; p++) out.push_back(a.get());
  }
  return out;
}

template <typename Base, typename T>
std::vector<Base*> FanOutAs(const std::vector<std::unique_ptr<T>>& adapters,
                            int procs_per_client) {
  std::vector<Base*> out;
  for (const auto& a : adapters) {
    for (int p = 0; p < procs_per_client; p++) out.push_back(a.get());
  }
  return out;
}

}  // namespace cfs::bench
