// Shared setup for the reproduction benches: builds a paper-shaped CFS
// cluster (10 machines, meta+data colocated, 3 masters) and a Ceph cluster
// (10 machines, 1 MDS + 16 OSDs each) on separate simulations, and wires
// mdtest/fio process vectors.
//
// Scale substitutions vs the paper testbed are documented in DESIGN.md:
// extent stores run in accounting mode, file sizes and item counts are
// scaled down (IOPS is rate-based; shapes are preserved), and each bench
// prints the simulated-time IOPS for CFS and Ceph side by side.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/workloads.h"
#include "obs/analysis.h"

namespace cfs::bench {

struct CfsBench {
  std::unique_ptr<harness::Cluster> cluster;
  std::vector<client::Client*> clients;
  std::vector<std::unique_ptr<CfsMetaOps>> meta_adapters;
  std::vector<std::unique_ptr<CfsDataOps>> data_adapters;

  sim::Scheduler& sched() { return cluster->sched(); }
};

inline CfsBench MakeCfsBench(int num_clients, uint64_t seed = 1,
                             uint32_t meta_partitions = 30, uint32_t data_partitions = 40,
                             uint64_t nic_mib = 0,
                             std::optional<client::ClientOptions> client_opts = std::nullopt,
                             bool trace = false, int num_nodes = 10) {
  CfsBench b;
  harness::ClusterOptions opts;
  opts.num_nodes = num_nodes;  // paper testbed default: 10 machines
  opts.seed = seed;
  opts.track_contents = false;
  opts.trace = trace;  // span tracing never perturbs the schedule (obs/trace.h)
  if (client_opts) opts.client = *client_opts;
  opts.host.disk.capacity_bytes = 960ull * kGiB;
  // Data-path benches scale the wire rate up so the storage stack (not the
  // NIC) is the binding resource, matching the regime the paper's absolute
  // random-IO numbers imply (see EXPERIMENTS.md).
  if (nic_mib) opts.network.bandwidth_mib = nic_mib;
  // Bound append batches so a single follower round never serializes
  // hundreds of KB of log payload (keeps overwrite latency flat under load).
  opts.raft.max_batch_entries = 16;
  b.cluster = std::make_unique<harness::Cluster>(opts);
  auto st = harness::RunTask(b.cluster->sched(), b.cluster->Start());
  if (!st || !st->ok()) {
    std::fprintf(stderr, "CFS cluster start failed\n");
    std::abort();
  }
  st = harness::RunTask(b.cluster->sched(),
                        b.cluster->CreateVolume("bench", meta_partitions, data_partitions));
  if (!st || !st->ok()) {
    std::fprintf(stderr, "CFS volume create failed: %s\n", st ? st->ToString().c_str() : "hang");
    std::abort();
  }
  for (int i = 0; i < num_clients; i++) {
    auto c = harness::RunTask(b.cluster->sched(), b.cluster->MountClient("bench"));
    if (!c || !c->ok()) {
      std::fprintf(stderr, "CFS mount failed\n");
      std::abort();
    }
    b.clients.push_back(**c);
    b.meta_adapters.push_back(std::make_unique<CfsMetaOps>(**c));
    b.data_adapters.push_back(std::make_unique<CfsDataOps>(
        b.cluster.get(), **c, 128 * kKiB));
  }
  return b;
}

struct CephBench {
  std::unique_ptr<sim::Scheduler> sched_holder;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<ceph::CephCluster> cluster;
  std::vector<std::unique_ptr<ceph::CephClient>> clients;
  std::vector<std::unique_ptr<CephMetaOps>> meta_adapters;
  std::vector<std::unique_ptr<CephDataOps>> data_adapters;

  sim::Scheduler& sched() { return *sched_holder; }
};

inline CephBench MakeCephBench(int num_clients, uint64_t seed = 1,
                               ceph::CephOptions opts = {}, uint64_t nic_mib = 0) {
  CephBench b;
  b.sched_holder = std::make_unique<sim::Scheduler>(seed);
  sim::NetworkOptions nopts;
  if (nic_mib) nopts.bandwidth_mib = nic_mib;
  b.net = std::make_unique<sim::Network>(b.sched_holder.get(), nopts);
  b.cluster = std::make_unique<ceph::CephCluster>(b.sched_holder.get(), b.net.get(), opts);
  for (int i = 0; i < num_clients; i++) {
    sim::HostOptions ho;
    ho.num_disks = 1;
    sim::Host* h = b.net->AddHost(ho);
    b.clients.push_back(std::make_unique<ceph::CephClient>(b.cluster.get(), h));
    b.meta_adapters.push_back(std::make_unique<CephMetaOps>(b.clients.back().get()));
    b.data_adapters.push_back(std::make_unique<CephDataOps>(b.clients.back().get()));
  }
  return b;
}

/// Per-RPC metric accumulation across bench cells. Every cell constructs a
/// fresh cluster, so its registries die with the cell: fold them into a
/// main()-scoped registry before teardown, then dump once at the end.
inline void AccumulateRpcMetrics(const CfsBench& b, rpc::MetricRegistry* into) {
  into->MergeFrom(b.cluster->rpc_metrics());
  for (client::Client* c : b.clients) into->MergeFrom(c->rpc_metrics());
}

inline void AccumulateRpcMetrics(const CephBench& b, rpc::MetricRegistry* into) {
  into->MergeFrom(b.cluster->rpc_metrics());
}

/// One machine-readable line per system: `rpc_metrics <label> {json}`.
inline void PrintRpcMetrics(const char* label, const rpc::MetricRegistry& reg) {
  std::printf("rpc_metrics %s %s\n", label, reg.DumpJson().c_str());
}

/// Cluster-wide counters/gauges filtered to the "net." and "qos."
/// namespaces, folded across bench cells (each cell tears down its own
/// cluster, so fold before teardown). Surfaces the rpc-timeout watchdog
/// accounting (net.rpc_timeout.{cancelled,fired}) and the per-tenant
/// admission-queue counters/depths next to the latency_quantiles lines.
inline void AccumulateClusterMetrics(CfsBench& b, obs::Registry* into) {
  obs::Registry reg = b.cluster->Metrics();
  for (const auto& [k, v] : reg.counters()) {
    if (k.rfind("net.", 0) == 0 || k.rfind("qos.", 0) == 0) into->Add(k, v);
  }
  for (const auto& [k, v] : reg.gauges()) {
    if (k.rfind("net.", 0) == 0 || k.rfind("qos.", 0) == 0) into->SetMax(k, v);
  }
}

/// One machine-readable line per bench: `cluster_metrics <label> {json}`.
inline void PrintClusterMetrics(const char* label, const obs::Registry& reg) {
  std::printf("cluster_metrics %s %s\n", label, reg.DumpJson().c_str());
}

/// One machine-readable line with the cluster-wide group-commit counters
/// (raft proposal batching) and leader log-write accounting: how many
/// proposals shared each log flush, and what that did to WAL write counts.
inline void PrintGroupCommitStats(const char* label, const harness::Cluster& cluster) {
  raft::GroupCommitStats gc = cluster.group_commit_stats();
  raft::RaftHost::LogWriteStats lw = cluster.log_write_stats();
  double avg_batch = gc.batches ? static_cast<double>(gc.proposals) / gc.batches : 0.0;
  std::printf(
      "group_commit %s {\"batches\":%llu,\"proposals\":%llu,\"avg_batch\":%.2f,"
      "\"max_batch\":%llu,\"queue_high_watermark\":%llu,\"batched_bytes\":%llu,"
      "\"log_append_writes\":%llu,\"log_appended_entries\":%llu,"
      "\"log_persisted_bytes\":%llu}\n",
      label, static_cast<unsigned long long>(gc.batches),
      static_cast<unsigned long long>(gc.proposals), avg_batch,
      static_cast<unsigned long long>(gc.max_batch),
      static_cast<unsigned long long>(gc.queue_high_watermark),
      static_cast<unsigned long long>(gc.batched_bytes),
      static_cast<unsigned long long>(lw.append_writes),
      static_cast<unsigned long long>(lw.appended_entries),
      static_cast<unsigned long long>(lw.persisted_bytes));
}

/// Simulator-throughput reporter: constructed at the top of a bench main, it
/// snapshots wall-clock time and the process-wide executed-event counter
/// (sim::Scheduler::process_executed_events), and Print() emits one machine
/// line `bench_wallclock <bench> {json}` with wall seconds, events retired
/// and events/sec. tools/collect_bench.py folds these into
/// BENCH_wallclock.json (schema in EXPERIMENTS.md) so simulator-throughput
/// regressions are caught like any other perf bug. Wall-clock use is fine
/// here: bench/ is outside the determinism lint's src/ scope and the value
/// never feeds the schedule.
class WallclockReporter {
 public:
  explicit WallclockReporter(const char* bench)
      : bench_(bench),
        start_(std::chrono::steady_clock::now()),
        events0_(sim::Scheduler::process_executed_events()) {}

  void Print() const {
    std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start_;
    uint64_t events = sim::Scheduler::process_executed_events() - events0_;
    double sec = wall.count();
    std::printf(
        "bench_wallclock %s {\"wall_sec\":%.3f,\"events\":%llu,\"events_per_sec\":%.0f}\n",
        bench_, sec, static_cast<unsigned long long>(events),
        sec > 0 ? static_cast<double>(events) / sec : 0.0);
  }

 private:
  const char* bench_;
  std::chrono::steady_clock::time_point start_;
  uint64_t events0_;
};

/// Shared tiny-parameter switch for the ablation benches: `--smoke` shrinks
/// every sweep so CI can execute each binary end to end in seconds.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == name) return true;
  }
  return false;
}

inline bool SmokeMode(int argc, char** argv) { return HasFlag(argc, argv, "--smoke"); }

/// Value of `--name <value>` (or nullptr if absent). Used by bench_fig8 for
/// `--trace-out <path>`.
inline const char* FlagValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::string(argv[i]) == name) return argv[i + 1];
  }
  return nullptr;
}

// --- Table printing ---------------------------------------------------------

inline void PrintHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-24s", "");
  for (const auto& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
}

inline void PrintRow(const std::string& label, const std::vector<double>& values) {
  std::printf("%-24s", label.c_str());
  for (double v : values) {
    if (v >= 1000) {
      std::printf("%14.0f", v);
    } else {
      std::printf("%14.1f", v);
    }
  }
  std::printf("\n");
}

/// One machine-readable quantile line per (system, test) pair:
/// `latency_quantiles <label> {json}`. Quantiles are interpolated from the
/// fixed-bucket obs::Histogram (see DESIGN.md "Observability"), so treat
/// them as bucket-resolution estimates, not exact order statistics.
inline void PrintLatencyQuantiles(const std::string& label, const obs::Histogram& h) {
  std::printf(
      "latency_quantiles %s {\"count\":%llu,\"p50_usec\":%.1f,\"p95_usec\":%.1f,"
      "\"p99_usec\":%.1f,\"max_usec\":%llu,\"mean_usec\":%.1f}\n",
      label.c_str(), static_cast<unsigned long long>(h.count), h.P50(), h.P95(), h.P99(),
      static_cast<unsigned long long>(h.max_usec),
      h.count ? static_cast<double>(h.sum_usec) / static_cast<double>(h.count) : 0.0);
}

/// Per-stage breakdown of the most recent trace whose root matches
/// `root_prefix` (e.g. "op:write"): `stage_breakdown <label> {json}`.
/// Requires the bench cell to have been built with trace=true.
inline void PrintStageBreakdown(const std::string& label, harness::Cluster& cluster,
                                std::string_view root_prefix) {
  uint64_t id = obs::FindLastTrace(cluster.tracer(), root_prefix);
  obs::TraceBreakdown bd = obs::StageBreakdown(cluster.tracer(), id);
  std::printf("stage_breakdown %s %s\n", label.c_str(), bd.DumpJson().c_str());
}

/// procs_per_client copies of each client's adapter (mdtest processes on one
/// client share the mount and its caches, §4.1).
template <typename T>
std::vector<T*> FanOut(const std::vector<std::unique_ptr<T>>& adapters, int procs_per_client) {
  std::vector<T*> out;
  for (const auto& a : adapters) {
    for (int p = 0; p < procs_per_client; p++) out.push_back(a.get());
  }
  return out;
}

template <typename Base, typename T>
std::vector<Base*> FanOutAs(const std::vector<std::unique_ptr<T>>& adapters,
                            int procs_per_client) {
  std::vector<Base*> out;
  for (const auto& a : adapters) {
    for (int p = 0; p < procs_per_client; p++) out.push_back(a.get());
  }
  return out;
}

}  // namespace cfs::bench
