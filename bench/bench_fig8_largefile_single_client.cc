// Figure 8: fio-style large-file IOPS with a single client and {1..64}
// processes, each on its own (scaled-down) private file. Sequential ops use
// 128 KiB blocks, random ops 4 KiB (direct IO — no client page cache).
//
// Paper shape: sequential read/write nearly identical between CFS and Ceph
// across process counts (both NIC/packet bound); random read/write similar
// at low process counts, CFS pulls ahead once the per-node object-metadata
// working set exceeds Ceph's bounded caches (> ~16 processes).
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  const std::vector<int> kProcs = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<FioPattern> kPatterns = {FioPattern::kSeqWrite, FioPattern::kSeqRead,
                                             FioPattern::kRandWrite, FioPattern::kRandRead};

  std::printf("Figure 8: large-file IOPS, single client, varying processes\n");
  std::printf("(per-process file: 1 GiB scaled stand-in for the paper's 40 GB)\n");

  std::vector<std::string> cols;
  for (int p : kProcs) cols.push_back("p=" + std::to_string(p));

  rpc::MetricRegistry cfs_rpc_metrics, ceph_rpc_metrics;
  for (FioPattern pattern : kPatterns) {
    PrintHeader(std::string(FioPatternName(pattern)) + " (1 client)", cols);
    bool rand = pattern == FioPattern::kRandWrite || pattern == FioPattern::kRandRead;
    std::vector<double> cfs_row, ceph_row;
    for (int procs : kProcs) {
      FioParams params;
      params.file_bytes = 1 * kGiB;
      params.ops_per_proc = rand ? 120 : 40;
      {
        CfsBench b = MakeCfsBench(1, /*seed=*/23 + procs, 30, 40, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        cfs_row.push_back(RunFio(&b.sched(), pattern, ops, params).Iops());
        AccumulateRpcMetrics(b, &cfs_rpc_metrics);
      }
      {
        CephBench b = MakeCephBench(1, /*seed=*/23 + procs, {}, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        ceph_row.push_back(RunFio(&b.sched(), pattern, ops, params).Iops());
        AccumulateRpcMetrics(b, &ceph_rpc_metrics);
      }
    }
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
  }
  PrintRpcMetrics("cfs", cfs_rpc_metrics);
  PrintRpcMetrics("ceph", ceph_rpc_metrics);
  return 0;
}
