// Figure 8: fio-style large-file IOPS with a single client and {1..64}
// processes, each on its own (scaled-down) private file. Sequential ops use
// 128 KiB blocks, random ops 4 KiB (direct IO — no client page cache).
//
// Paper shape: sequential read/write nearly identical between CFS and Ceph
// across process counts (both NIC/packet bound); random read/write similar
// at low process counts, CFS pulls ahead once the per-node object-metadata
// working set exceeds Ceph's bounded caches (> ~16 processes).
//
// Observability hooks (EXPERIMENTS.md A6):
//   * one `latency_quantiles <system>:<pattern>` line per pattern (merged
//     across the process sweep),
//   * a traced 1 MiB append on a fresh cluster, printed as a
//     `stage_breakdown cfs:write-1mb {...}` line,
//   * `--trace-out <path>` dumps that run's full span log (JSONL; feed to
//     tools/trace2chrome.py), `--critical-path` prints the span tree.
//   * `--smoke` shrinks the sweep for CI.
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_fig8_largefile_single_client");
  const bool smoke = SmokeMode(argc, argv);
  const char* trace_out = FlagValue(argc, argv, "--trace-out");
  const bool critical_path = HasFlag(argc, argv, "--critical-path");

  const std::vector<int> kProcs =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
  const std::vector<FioPattern> kPatterns = {FioPattern::kSeqWrite, FioPattern::kSeqRead,
                                             FioPattern::kRandWrite, FioPattern::kRandRead};

  std::printf("Figure 8: large-file IOPS, single client, varying processes\n");
  std::printf("(per-process file: 1 GiB scaled stand-in for the paper's 40 GB)\n");

  std::vector<std::string> cols;
  for (int p : kProcs) cols.push_back("p=" + std::to_string(p));

  rpc::MetricRegistry cfs_rpc_metrics, ceph_rpc_metrics;
  obs::Registry cfs_cluster_metrics;
  for (FioPattern pattern : kPatterns) {
    PrintHeader(std::string(FioPatternName(pattern)) + " (1 client)", cols);
    bool rand = pattern == FioPattern::kRandWrite || pattern == FioPattern::kRandRead;
    std::vector<double> cfs_row, ceph_row;
    obs::Histogram cfs_lat, ceph_lat;
    for (int procs : kProcs) {
      FioParams params;
      params.file_bytes = 1 * kGiB;
      params.ops_per_proc = smoke ? (rand ? 20 : 8) : (rand ? 120 : 40);
      {
        CfsBench b = MakeCfsBench(1, /*seed=*/23 + procs, 30, 40, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        cfs_row.push_back(r.Iops());
        cfs_lat.MergeFrom(r.latency);
        AccumulateRpcMetrics(b, &cfs_rpc_metrics);
        AccumulateClusterMetrics(b, &cfs_cluster_metrics);
      }
      {
        CephBench b = MakeCephBench(1, /*seed=*/23 + procs, {}, /*nic_mib=*/1170);
        auto ops = FanOutAs<DataOps>(b.data_adapters, procs);
        BenchResult r = RunFio(&b.sched(), pattern, ops, params);
        ceph_row.push_back(r.Iops());
        ceph_lat.MergeFrom(r.latency);
        AccumulateRpcMetrics(b, &ceph_rpc_metrics);
      }
    }
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
    PrintLatencyQuantiles(std::string("cfs:") + FioPatternName(pattern), cfs_lat);
    PrintLatencyQuantiles(std::string("ceph:") + FioPatternName(pattern), ceph_lat);
  }
  PrintRpcMetrics("cfs", cfs_rpc_metrics);
  PrintRpcMetrics("ceph", ceph_rpc_metrics);
  PrintClusterMetrics("cfs", cfs_cluster_metrics);

  // Traced 1 MiB append on a fresh (idle) cluster: the per-stage breakdown
  // of one end-to-end write through the sliding-window pipeline. Tracing is
  // schedule-neutral, so this run is bit-identical to an untraced one.
  {
    CfsBench b = MakeCfsBench(1, /*seed=*/97, 30, 40, /*nic_mib=*/1170, std::nullopt,
                              /*trace=*/true);
    client::Client* c = b.clients[0];
    auto traced = [&]() -> sim::Task<Status> {
      auto created = co_await c->Create(meta::kRootInode, "trace-1mb", meta::FileType::kFile);
      if (!created.ok()) co_return created.status();
      std::string payload(1 * kMiB, 'w');
      co_return co_await c->Write(created->id, 0, std::move(payload));
    };
    auto st = harness::RunTask(b.sched(), traced());
    if (!st || !st->ok()) {
      std::fprintf(stderr, "traced 1 MiB write failed: %s\n",
                   st ? st->ToString().c_str() : "hang");
      return 1;
    }
    PrintStageBreakdown("cfs:write-1mb", *b.cluster, "op:write");
    uint64_t id = obs::FindLastTrace(b.cluster->tracer(), "op:write");
    if (critical_path) {
      std::printf("%s", obs::CriticalPath(b.cluster->tracer(), id).c_str());
    }
    if (trace_out) {
      std::FILE* f = std::fopen(trace_out, "w");
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", trace_out);
        return 1;
      }
      std::string log = b.cluster->tracer().DumpLog();
      std::fwrite(log.data(), 1, log.size(), f);
      std::fclose(f);
      std::printf("trace_log %s (%zu bytes, %zu spans)\n", trace_out, log.size(),
                  b.cluster->tracer().num_spans());
    }
  }
  wallclock.Print();
  return 0;
}
