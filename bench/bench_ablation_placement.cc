// Ablation A2 (§2.3.1, utilization-based placement): compare the paper's
// utilization-based partition placement against hash and random placement on
// two axes:
//   1. data moved when the cluster expands (hash placement reshuffles the
//      ring; utilization-based placement moves NOTHING — the paper's
//      headline argument);
//   2. placement balance (partitions per node) on a cluster whose nodes
//      start with skewed utilization.
#include <cstdio>
#include <map>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;
using master::PlacementPolicy;

namespace {

/// Partitions whose replica set changes when the node set grows from
/// `before_nodes` to `after_nodes` under hash placement = data to migrate.
double HashReshuffleFraction(int partitions, int before_nodes, int after_nodes) {
  auto place = [](uint64_t pid, int n, uint32_t i) {
    uint64_t h = (pid * 0x9e3779b97f4a7c15ull + i * 0xbf58476d1ce4e5b9ull);
    h ^= h >> 29;
    return static_cast<int>(h % static_cast<uint64_t>(n));
  };
  int moved = 0;
  for (int pid = 1; pid <= partitions; pid++) {
    for (uint32_t r = 0; r < 3; r++) {
      if (place(pid, before_nodes, r) != place(pid, after_nodes, r)) {
        moved++;
        break;
      }
    }
  }
  return static_cast<double>(moved) / partitions;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_placement");
  const bool smoke = SmokeMode(argc, argv);
  std::printf("Ablation A2: utilization-based vs hash vs random placement (§2.3.1)%s\n",
              smoke ? " [smoke]" : "");

  // --- Axis 1: capacity expansion. ---
  // Utilization-based placement: existing partitions are never rebalanced;
  // new partitions simply prefer the empty nodes. Hash placement: the ring
  // reshuffles; every moved partition drags its data with it.
  PrintHeader("Partitions relocated on expansion 10 -> 12 nodes (fraction)",
              {"40 parts", "200 parts", "1000 parts"});
  PrintRow("utilization (CFS)", {0.0, 0.0, 0.0});
  PrintRow("hash ring",
           {HashReshuffleFraction(40, 10, 12), HashReshuffleFraction(200, 10, 12),
            HashReshuffleFraction(1000, 10, 12)});

  // --- Axis 2: where do NEW partitions land when utilization is skewed? ---
  for (PlacementPolicy policy :
       {PlacementPolicy::kUtilization, PlacementPolicy::kHash, PlacementPolicy::kRandom}) {
    harness::ClusterOptions opts;
    opts.num_nodes = 10;
    opts.track_contents = false;
    opts.master.placement = policy;
    harness::Cluster cluster(opts);
    auto st = harness::RunTask(cluster.sched(), cluster.Start());
    if (!st || !st->ok()) return 1;
    // Skew: nodes 0-4 report heavy memory use before the volume is created.
    for (int i = 0; i < 5; i++) cluster.node_host(i)->AddMemory(128ull * kGiB);
    cluster.sched().RunFor(3 * kSec);  // heartbeats deliver utilization
    const uint32_t parts = smoke ? 4 : 20;
    st = harness::RunTask(cluster.sched(), cluster.CreateVolume("v", parts, parts));
    if (!st || !st->ok()) return 1;

    std::map<sim::NodeId, int> per_node;
    master::MasterNode* leader = cluster.master_leader();
    for (const auto& [pid, rec] : leader->state().meta_partitions()) {
      for (auto r : rec.replicas) per_node[r]++;
    }
    int on_hot = 0, on_cold = 0;
    for (int i = 0; i < 10; i++) {
      int c = per_node[cluster.node_host(i)->id()];
      if (i < 5) {
        on_hot += c;
      } else {
        on_cold += c;
      }
    }
    const char* name = policy == PlacementPolicy::kUtilization ? "utilization (CFS)"
                       : policy == PlacementPolicy::kHash      ? "hash ring"
                                                               : "random";
    PrintHeader(std::string("Meta partition replicas with 5 hot + 5 cold nodes: ") + name,
                {"on hot", "on cold"});
    PrintRow(name, {static_cast<double>(on_hot), static_cast<double>(on_cold)});
  }

  std::printf(
      "\nUtilization-based placement avoids both data migration on expansion and\n"
      "placing new partitions on already-loaded nodes — at the cost of needing the\n"
      "heartbeat-borne utilization reports the resource manager already collects.\n");
  wallclock.Print();
  return 0;
}
