// Wall-clock micro-benchmarks (google-benchmark) for the hot data
// structures: the meta-partition B-tree, the extent store, CRC32C, the
// codec, and the KV store. These complement the simulated-time benches —
// they measure the real CPU cost of the in-memory structures the paper puts
// on the metadata hot path.
//
// `bench_micro --rpc-churn` bypasses google-benchmark and runs the
// allocation-gated RPC transport bench instead: a steady-state unary echo
// loop under an instrumented global allocator, printing one machine-readable
// `bench_wallclock bench_micro {...}` line whose `allocs_per_rpc` field CI
// gates at ~zero (tools/check_bench_wallclock.py; DESIGN.md "RPC
// transport").
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <new>
#include <string_view>

#include "common/buffer.h"
#include "common/codec.h"
#include "common/crc32.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "kv/kvstore.h"
#include "meta/btree.h"
#include "meta/meta_partition.h"
#include "sim/network.h"
#include "storage/extent_store.h"

namespace cfs {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    meta::BTree<uint64_t, uint64_t> tree;
    Rng rng(42);
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); i++) {
      tree.Insert(rng.Next(), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1024)->Arg(16384);

void BM_BTreeLookup(benchmark::State& state) {
  meta::BTree<uint64_t, uint64_t> tree;
  Rng rng(42);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < state.range(0); i++) {
    uint64_t k = rng.Next();
    keys.push_back(k);
    tree.Insert(k, i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(16384)->Arg(262144);

void BM_BTreeVsStdMapLookup(benchmark::State& state) {
  std::map<uint64_t, uint64_t> tree;
  Rng rng(42);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < state.range(0); i++) {
    uint64_t k = rng.Next();
    keys.push_back(k);
    tree.emplace(k, i);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeVsStdMapLookup)->Arg(262144);

void BM_BTreeRangeScan(benchmark::State& state) {
  meta::BTree<meta::DentryKey, meta::Dentry> tree;
  for (int dir = 0; dir < 64; dir++) {
    for (int f = 0; f < 256; f++) {
      meta::Dentry d{static_cast<uint64_t>(dir), "file-" + std::to_string(f),
                     static_cast<uint64_t>(dir * 1000 + f), meta::FileType::kFile};
      tree.Insert(meta::DentryKey{d.parent, d.name}, d);
    }
  }
  uint64_t dir = 0;
  for (auto _ : state) {
    size_t n = 0;
    tree.AscendFrom(meta::DentryKey{dir % 64, ""}, [&](const meta::DentryKey& k,
                                                       const meta::Dentry&) {
      if (k.parent != dir % 64) return false;
      n++;
      return true;
    });
    benchmark::DoNotOptimize(n);
    dir++;
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_BTreeRangeScan);

void BM_Crc32c(benchmark::State& state) {
  std::string data(state.range(0), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(131072);

void BM_CodecEncodeInode(benchmark::State& state) {
  meta::Inode ino;
  ino.id = 123456;
  ino.type = meta::FileType::kFile;
  ino.nlink = 1;
  ino.size = 40ull * kGiB;
  for (int i = 0; i < 8; i++) {
    ino.extents.push_back(meta::ExtentKey{static_cast<uint64_t>(i) * 128 * kMiB,
                                          static_cast<uint64_t>(i % 4 + 1),
                                          static_cast<uint64_t>(i + 100), 0, 128 * kMiB});
  }
  for (auto _ : state) {
    Encoder enc;
    ino.Encode(&enc);
    benchmark::DoNotOptimize(enc.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncodeInode);

void BM_MetaPartitionApplyCreate(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Network net(&sched);
  sim::Host* host = net.AddHost();
  meta::MetaPartitionConfig cfg;
  cfg.id = 1;
  meta::MetaPartition mp(cfg, host);
  std::string cmd = meta::MetaPartition::EncodeCreateInode(meta::FileType::kFile, "", 0);
  raft::Index idx = 0;
  for (auto _ : state) {
    mp.Apply(++idx, cmd);
    benchmark::DoNotOptimize(mp.TakeResult(idx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetaPartitionApplyCreate);

void BM_ExtentStoreSmallWrite(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Network net(&sched);
  sim::Host* host = net.AddHost();
  storage::ExtentStoreOptions opts;
  opts.track_contents = false;
  storage::ExtentStore store(host->disk(0), opts);
  std::string data(4096, 's');
  for (auto _ : state) {
    sim::Spawn([](storage::ExtentStore& store, const std::string& data) -> sim::Task<void> {
      (void)co_await store.WriteSmall(data);
    }(store, data));
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtentStoreSmallWrite);

// --- Simulator hot-path microbenches (DESIGN.md "Simulator performance") --
// One per rebuilt component, so a regression in the timer wheel, event pool,
// payload sharing, or flat-map routing shows up here before it shows up as
// fig9 wall-clock.

void BM_SchedulerChurn(benchmark::State& state) {
  // Steady-state schedule/dispatch cycle: `width` events in flight, each
  // firing re-arms the next. Exercises wheel insert, level-0 collection,
  // seq-sort, and node recycling with zero allocations after warmup.
  const int64_t width = state.range(0);
  sim::Scheduler sched;
  uint64_t fired = 0;
  std::function<void()> rearm;  // self-referential: must outlive the loop
  rearm = [&] {
    fired++;
    sched.After(1 + fired % 7, [&] { rearm(); });
  };
  for (int64_t i = 0; i < width; i++) sched.After(1 + i % 7, [&] { rearm(); });
  for (auto _ : state) {
    uint64_t target = fired + width;
    while (fired < target) sched.RunOne();
  }
  state.SetItemsProcessed(static_cast<int64_t>(fired));
}
BENCHMARK(BM_SchedulerChurn)->Arg(64)->Arg(4096)->Arg(65536);

void BM_TimerCancel(benchmark::State& state) {
  // The RPC-timeout pattern: arm a far watchdog, cancel it almost always.
  // Measures Insert + lazy Cancel + the wheel's debris reclamation.
  sim::Scheduler sched;
  uint64_t armed = 0;
  for (auto _ : state) {
    sim::Scheduler::TimerId id = sched.ScheduleAfter(1'000'000, [] {});
    armed++;
    if (armed % 64 != 0) {
      benchmark::DoNotOptimize(sched.Cancel(id));
    }
    if (armed % 4096 == 0) sched.RunFor(2'000'000);  // drain survivors + debris
  }
  sched.Run();
  state.SetItemsProcessed(static_cast<int64_t>(armed));
}
BENCHMARK(BM_TimerCancel);

void BM_PayloadFanout(benchmark::State& state) {
  // A 1 MiB client write fanned out as 128 KiB packet slices to 3 replicas,
  // each verifying the payload CRC: with shared Buffers and the CRC memo the
  // bytes are touched once per packet, not once per replica.
  Buffer payload = Buffer::Filled(1 * kMiB, 'w');
  const size_t kPacket = 128 * kKiB;
  for (auto _ : state) {
    uint32_t crc = 0;
    for (size_t off = 0; off < payload.size(); off += kPacket) {
      Buffer packet = payload.Slice(off, kPacket);
      for (int replica = 0; replica < 3; replica++) {
        Buffer hop = packet;  // refcount bump, no copy
        crc ^= hop.Crc0();
      }
    }
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(state.iterations() * 3 * static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_PayloadFanout);

void BM_FlatMapVsStdMapLookup(benchmark::State& state) {
  // The rpc-router / handler-registry shape: a small, rarely-mutated map
  // probed on every delivered message. FlatMap (sorted vector) vs std::map.
  const int64_t n = state.range(0);
  FlatMap<uint64_t, uint64_t> flat;
  std::map<uint64_t, uint64_t> tree;
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int64_t i = 0; i < n; i++) {
    uint64_t k = rng.Next();
    keys.push_back(k);
    flat[k] = i;
    tree[k] = i;
  }
  size_t i = 0;
  if (state.range(1) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(flat.find(keys[i++ % keys.size()]));
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(tree.find(keys[i++ % keys.size()]));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapVsStdMapLookup)
    ->ArgsProduct({{16, 256}, {0 /* flat */, 1 /* std::map */}});

void BM_KvStorePut(benchmark::State& state) {
  sim::Scheduler sched;
  sim::Network net(&sched);
  sim::Host* host = net.AddHost();
  kv::KvStore store(&host->storage(), host->disk(0), "bench");
  sim::Spawn([](kv::KvStore& s) -> sim::Task<void> { (void)co_await s.Open(); }(store));
  sched.Run();
  uint64_t i = 0;
  for (auto _ : state) {
    sim::Spawn([](kv::KvStore& s, uint64_t i) -> sim::Task<void> {
      (void)co_await s.Put("key" + std::to_string(i % 4096), "value");
    }(store, i++));
    sched.Run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvStorePut);

// --- RPC transport allocation gate (--rpc-churn) ----------------------------
// Proves the zero-allocation-per-RPC claim end to end: after a warmup that
// populates every slab (envelope pool, rpc slots, frame pool, event pool),
// a measured run of unary echo RPCs must perform ~zero heap allocations.

struct RpcChurnReq {
  uint64_t x = 0;
};
struct RpcChurnResp {
  uint64_t x = 0;
};

sim::Task<void> RpcChurnClient(sim::Network& net, uint64_t n, uint64_t* ok) {
  for (uint64_t i = 0; i < n; i++) {
    auto r = co_await net.Call<RpcChurnReq, RpcChurnResp>(1, 2, RpcChurnReq{i});
    if (r.ok() && r->x == i + 1) (*ok)++;
  }
}

int RunRpcChurn();

}  // namespace
}  // namespace cfs

// Instrumented global allocator: counts every operator-new-family call so
// the churn bench can report allocations per RPC. Counting is process-wide
// and always on; the overhead (one relaxed increment) is negligible for the
// google-benchmark mode that shares this binary.
namespace {
uint64_t g_heap_allocs = 0;

void* CountedAlloc(std::size_t n) {
  g_heap_allocs++;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* CountedAllocAligned(std::size_t n, std::size_t align) {
  g_heap_allocs++;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAllocAligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs++;
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs++;
  return std::malloc(n ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace cfs {
namespace {

int RunRpcChurn() {
  constexpr uint64_t kWarmup = 4096;
  constexpr uint64_t kMeasured = 262144;
  sim::Scheduler sched(1);
  sim::Network net(&sched);
  net.AddHost();
  net.AddHost();
  net.host(2)->Register<RpcChurnReq, RpcChurnResp>(
      [](RpcChurnReq r, sim::NodeId) -> sim::Task<RpcChurnResp> {
        co_return RpcChurnResp{r.x + 1};
      });
  uint64_t ok = 0;
  // Warmup: grow every slab to steady-state footprint.
  sim::Spawn(RpcChurnClient(net, kWarmup, &ok));
  sched.Run();
  // Measured run under the counting allocator.
  const uint64_t allocs0 = g_heap_allocs;
  const uint64_t events0 = sim::Scheduler::process_executed_events();
  const auto start = std::chrono::steady_clock::now();
  sim::Spawn(RpcChurnClient(net, kMeasured, &ok));
  sched.Run();
  const std::chrono::duration<double> wall = std::chrono::steady_clock::now() - start;
  const uint64_t allocs = g_heap_allocs - allocs0;
  const uint64_t events = sim::Scheduler::process_executed_events() - events0;
  if (ok != kWarmup + kMeasured) {
    std::fprintf(stderr, "rpc-churn: %llu/%llu calls succeeded\n",
                 static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(kWarmup + kMeasured));
    return 1;
  }
  const double sec = wall.count();
  std::printf(
      "bench_wallclock bench_micro {\"wall_sec\":%.3f,\"events\":%llu,"
      "\"events_per_sec\":%.0f,\"rpcs\":%llu,\"heap_allocs\":%llu,"
      "\"allocs_per_rpc\":%.4f}\n",
      sec, static_cast<unsigned long long>(events),
      sec > 0 ? static_cast<double>(events) / sec : 0.0,
      static_cast<unsigned long long>(kMeasured),
      static_cast<unsigned long long>(allocs),
      static_cast<double>(allocs) / static_cast<double>(kMeasured));
  return 0;
}

}  // namespace
}  // namespace cfs

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::string_view(argv[i]) == "--rpc-churn") return cfs::RunRpcChurn();
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
