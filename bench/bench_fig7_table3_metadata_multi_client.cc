// Figure 7 + Table 3: IOPS of the 7 mdtest metadata operations with
// {1, 2, 4, 8} clients, 64 processes each (tree tests: one process per
// client, as mdtest runs its tree phases once per job).
//
// Table 3 is the 8-client column. Paper shape: CFS wins 6 of 7 tests at 8
// clients (DirCreation ~4x, DirStat ~9.6x, DirRemoval ~4x, FileCreation
// ~3.9x, FileRemoval ~2.2x, TreeRemoval ~4x), Ceph stays slightly ahead on
// TreeCreation.
#include <cstdio>

#include <map>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

int main() {
  WallclockReporter wallclock("bench_fig7_table3_metadata_multi_client");
  const std::vector<int> kClients = {1, 2, 4, 8};
  const int kProcsPerClient = 64;
  const std::vector<MdTest> kTests = {
      MdTest::kDirCreation, MdTest::kDirStat,      MdTest::kDirRemoval,
      MdTest::kFileCreation, MdTest::kFileRemoval, MdTest::kTreeCreation,
      MdTest::kTreeRemoval};

  std::printf("Figure 7 + Table 3: metadata operations, multiple clients x 64 procs\n");

  // mdtest runs its phases back to back against shared file-system state;
  // we do the same (one cluster pair per client count, all 7 phases in
  // order) so later phases see the cache pressure and rebalancing that the
  // earlier ones induced (§4.2's explanation of the tree results).
  std::map<MdTest, std::vector<double>> cfs_results, ceph_results;
  std::map<MdTest, obs::Histogram> cfs_lat, ceph_lat;
  obs::Registry cfs_cluster_metrics;
  for (int clients : kClients) {
    CfsBench cfs = MakeCfsBench(clients, /*seed=*/11 + clients);
    CephBench ceph = MakeCephBench(clients, /*seed=*/11 + clients);
    int phase = 0;
    for (MdTest test : kTests) {
      bool tree = test == MdTest::kTreeCreation || test == MdTest::kTreeRemoval;
      int procs = tree ? 1 : kProcsPerClient;
      MdtestParams params;
      params.phase_tag = "ph" + std::to_string(phase++) + "-";
      params.items_per_proc = 24;
      params.stat_dir_files = 24;
      params.stat_repetitions = 2;
      params.stat_shift = procs;  // mdtest -N: stat the next client's files
      {
        auto ops = FanOutAs<MetaOps>(cfs.meta_adapters, procs);
        BenchResult r = RunMdtest(&cfs.sched(), test, ops, params);
        cfs_results[test].push_back(r.Iops());
        cfs_lat[test].MergeFrom(r.latency);
      }
      {
        auto ops = FanOutAs<MetaOps>(ceph.meta_adapters, procs);
        BenchResult r = RunMdtest(&ceph.sched(), test, ops, params);
        ceph_results[test].push_back(r.Iops());
        ceph_lat[test].MergeFrom(r.latency);
      }
    }
    // How much the meta-partition leaders batched under this client count
    // (proposal batching is the consensus-path lever behind the multi-client
    // mutation numbers; see bench_ablation_group_commit for the ablation).
    PrintGroupCommitStats(("clients=" + std::to_string(clients)).c_str(), *cfs.cluster);
    AccumulateClusterMetrics(cfs, &cfs_cluster_metrics);
  }
  PrintClusterMetrics("cfs", cfs_cluster_metrics);

  std::vector<double> table3_cfs, table3_ceph;
  for (MdTest test : kTests) {
    PrintHeader(std::string(MdTestName(test)) + " (64 procs/client)",
                {"clients=1", "clients=2", "clients=4", "clients=8"});
    const auto& cfs_row = cfs_results[test];
    const auto& ceph_row = ceph_results[test];
    PrintRow("CFS", cfs_row);
    PrintRow("Ceph", ceph_row);
    std::vector<double> ratio;
    for (size_t i = 0; i < cfs_row.size(); i++) {
      ratio.push_back(ceph_row[i] > 0 ? cfs_row[i] / ceph_row[i] : 0);
    }
    PrintRow("CFS/Ceph", ratio);
    PrintLatencyQuantiles(std::string("cfs:") + MdTestName(test), cfs_lat[test]);
    PrintLatencyQuantiles(std::string("ceph:") + MdTestName(test), ceph_lat[test]);
    table3_cfs.push_back(cfs_row.back());
    table3_ceph.push_back(ceph_row.back());
  }

  std::printf("\n=== Table 3: IOPS at 8 clients x 64 procs ===\n");
  std::printf("%-16s%14s%14s%14s   (paper %% improv.)\n", "Test", "CFS", "Ceph", "% improv");
  const char* paper[] = {"404", "862", "296", "290", "122", "-9", "300"};
  for (size_t i = 0; i < kTests.size(); i++) {
    double improv = table3_ceph[i] > 0
                        ? (table3_cfs[i] - table3_ceph[i]) / table3_ceph[i] * 100.0
                        : 0;
    std::printf("%-16s%14.0f%14.0f%13.0f%%   (%s%%)\n", MdTestName(kTests[i]), table3_cfs[i],
                table3_ceph[i], improv, paper[i]);
  }

  // Traced single create on a fresh cluster: the per-stage breakdown of one
  // metadata mutation (meta RPC -> raft propose/batch/apply -> WAL write).
  {
    CfsBench b = MakeCfsBench(1, /*seed=*/99, 30, 40, 0, std::nullopt, /*trace=*/true);
    client::Client* c = b.clients[0];
    auto st = harness::RunTask(
        b.sched(), [](client::Client* c) -> sim::Task<Status> {
          auto created = co_await c->Create(meta::kRootInode, "traced", meta::FileType::kFile);
          co_return created.status();
        }(c));
    if (st && st->ok()) {
      PrintStageBreakdown("cfs:create", *b.cluster, "op:create");
    } else {
      std::fprintf(stderr, "traced create failed\n");
    }
  }
  wallclock.Print();
  return 0;
}
