// Ablation A3 (§2.5.1, Raft sets + MultiRaft heartbeats): heartbeat message
// rate as the number of partitions grows, under three transports:
//   * plain raft (one heartbeat per group per peer),
//   * MultiRaft (coalesced per node pair),
//   * MultiRaft + Raft sets (replicas placed within one set, bounding each
//     node's peer fan-out).
#include <cstdio>

#include "bench_common.h"

using namespace cfs;
using namespace cfs::bench;

namespace {

struct HeartbeatSample {
  double msgs_per_sec = 0;
  double net_msgs_per_sec = 0;
};

HeartbeatSample Measure(int partitions, bool coalesce, bool raft_sets,
                        SimDuration window) {
  harness::ClusterOptions opts;
  opts.num_nodes = 10;
  opts.track_contents = false;
  opts.master.use_raft_sets = raft_sets;
  opts.master.raft_set_size = 5;
  // Without raft sets, replicas spread freely over the whole cluster (the
  // unconstrained baseline a random/CRUSH-style placement produces), which
  // maximizes each node's heartbeat peer fan-out.
  if (!raft_sets) opts.master.placement = master::PlacementPolicy::kRandom;
  harness::Cluster cluster(opts);
  auto st = harness::RunTask(cluster.sched(), cluster.Start());
  if (!st || !st->ok()) std::abort();
  for (int i = 0; i < cluster.num_nodes(); i++) {
    cluster.raft_host_of(3 + i)->set_coalesce_heartbeats(coalesce);  // hosts 4.. are nodes
  }
  st = harness::RunTask(cluster.sched(),
                        cluster.CreateVolume("v", 4, static_cast<uint32_t>(partitions)));
  if (!st || !st->ok()) std::abort();

  uint64_t hb0 = 0, net0 = cluster.net().messages_sent();
  for (int i = 0; i < cluster.num_nodes(); i++) {
    hb0 += cluster.raft_host_of(3 + i)->heartbeat_msgs_sent();
  }
  cluster.sched().RunFor(window);
  uint64_t hb1 = 0, net1 = cluster.net().messages_sent();
  for (int i = 0; i < cluster.num_nodes(); i++) {
    hb1 += cluster.raft_host_of(3 + i)->heartbeat_msgs_sent();
  }
  HeartbeatSample s;
  s.msgs_per_sec = static_cast<double>(hb1 - hb0) * kSec / window;
  s.net_msgs_per_sec = static_cast<double>(net1 - net0) * kSec / window;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  WallclockReporter wallclock("bench_ablation_raftset");
  const bool smoke = SmokeMode(argc, argv);
  std::printf("Ablation A3: heartbeat traffic vs partition count (50 ms interval)%s\n",
              smoke ? " [smoke]" : "");
  const std::vector<int> kPartitions = smoke ? std::vector<int>{8, 16}
                                             : std::vector<int>{20, 60, 120};
  const SimDuration kWindow = (smoke ? 4 : 20) * kSec;

  std::vector<std::string> cols;
  for (int p : kPartitions) cols.push_back(std::to_string(p) + " parts");

  PrintHeader("Heartbeat messages/second (10 storage nodes)", cols);
  std::vector<double> plain, multi, sets;
  for (int p : kPartitions) plain.push_back(Measure(p, false, false, kWindow).msgs_per_sec);
  for (int p : kPartitions) multi.push_back(Measure(p, true, false, kWindow).msgs_per_sec);
  for (int p : kPartitions) sets.push_back(Measure(p, true, true, kWindow).msgs_per_sec);
  PrintRow("plain raft", plain);
  PrintRow("MultiRaft", multi);
  PrintRow("MultiRaft+RaftSets", sets);

  std::printf(
      "\nPlain raft heartbeats grow with the partition count; MultiRaft coalesces\n"
      "them per node pair; Raft sets additionally bound each node's peer fan-out\n"
      "to the set size (§2.5.1).\n");
  wallclock.Print();
  return 0;
}
