// Container-platform scenario (the paper's motivating workload, §1): one
// volume shared by many containers across machines —
//   * a deployment writes a config file once,
//   * every container reads it (shared read access),
//   * each container appends to its own log (persist-beyond-container),
//   * one container is "rescheduled" (new client) and picks up the data the
//     old one persisted.
#include <cstdio>
#include <vector>

#include "harness/cluster.h"
#include "vfs/vfs.h"

using namespace cfs;
using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;
using harness::RunTaskVoid;

int main() {
  ClusterOptions options;
  options.num_nodes = 6;
  Cluster cluster(options);
  auto run = [&](auto task) { return *RunTask(cluster.sched(), std::move(task)); };

  if (!run(cluster.Start()).ok() || !run(cluster.CreateVolume("shared", 3, 10)).ok()) {
    return 1;
  }

  // Four "containers" on different machines mount the same volume.
  const int kContainers = 4;
  std::vector<vfs::FileSystem*> containers;
  std::vector<std::unique_ptr<vfs::FileSystem>> owned;
  for (int i = 0; i < kContainers; i++) {
    client::Client* c = *run(cluster.MountClient("shared"));
    owned.push_back(std::make_unique<vfs::FileSystem>(c));
    containers.push_back(owned.back().get());
  }

  // Deployment writes the shared config once.
  vfs::FileSystem* deployer = containers[0];
  (void)run(deployer->Mkdir("/cfg"));
  (void)run(deployer->Mkdir("/logs"));
  vfs::Fd cfg = *run(deployer->Open("/cfg/service.toml", vfs::kCreate | vfs::kWrite));
  (void)run(deployer->Write(cfg, "workers = 8\nregion = \"eu\"\n"));
  (void)run(deployer->Close(cfg));
  std::printf("deployer wrote /cfg/service.toml\n");

  // Every container reads the config and appends to its own log,
  // concurrently (each runs as its own simulated process).
  bool done = RunTaskVoid(cluster.sched(), [](std::vector<vfs::FileSystem*> cs) -> sim::Task<void> {
    sim::Scheduler* sched = nullptr;
    (void)sched;
    for (size_t i = 0; i < cs.size(); i++) {
      vfs::FileSystem* fs = cs[i];
      auto config = co_await fs->Open("/cfg/service.toml", vfs::kRead);
      if (!config.ok()) continue;
      auto text = co_await fs->Read(*config, 4096);
      (void)co_await fs->Close(*config);
      std::printf("container %zu read config (%zu bytes)\n", i, text.ok() ? text->size() : 0);

      std::string log_path = "/logs/container-" + std::to_string(i) + ".log";
      auto fd = co_await fs->Open(log_path, vfs::kCreate | vfs::kWrite | vfs::kAppend);
      if (!fd.ok()) continue;
      for (int line = 0; line < 50; line++) {
        (void)co_await fs->Write(*fd, "request handled rc=200\n");
      }
      (void)co_await fs->Close(*fd);
    }
  }(containers));
  if (!done) return 1;

  // "Reschedule": a brand-new container (fresh client) takes over container
  // 2's log — the data survived the container.
  client::Client* fresh = *run(cluster.MountClient("shared"));
  vfs::FileSystem fs_new(fresh);
  auto attr = *run(fs_new.Stat("/logs/container-2.log"));
  std::printf("rescheduled container sees container-2.log: %llu bytes (nlink=%u)\n",
              static_cast<unsigned long long>(attr.size), attr.nlink);

  auto entries = *run(fs_new.ListDir("/logs"));
  std::printf("/logs has %zu files:\n", entries.size());
  for (const auto& e : entries) {
    std::printf("  %-24s %8llu bytes\n", e.name.c_str(),
                static_cast<unsigned long long>(e.attr.size));
  }
  std::printf("container platform scenario OK\n");
  return 0;
}
