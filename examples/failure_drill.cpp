// Failure drill: exercises the failure-handling paths of §2.2.5 and §2.3.3 —
//   1. write a file, crash a storage node holding replicas,
//   2. reads keep working (the client probes replicas and re-identifies the
//      raft leader, §2.4),
//   3. the master detects the dead node via missed heartbeats and marks
//      affected partitions read-only,
//   4. the node restarts: extent alignment first, then raft recovery
//      (§2.2.5's two-phase order),
//   5. the resource-manager leader is crashed and a replica takes over with
//      the cluster map intact.
#include <cstdio>

#include "harness/cluster.h"
#include "vfs/vfs.h"

using namespace cfs;
using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;

int main() {
  ClusterOptions options;
  options.num_nodes = 5;
  options.track_contents = true;  // verify bytes end to end
  Cluster cluster(options);
  auto run = [&](auto task) { return *RunTask(cluster.sched(), std::move(task)); };

  if (!run(cluster.Start()).ok() || !run(cluster.CreateVolume("drill", 3, 8)).ok()) {
    return 1;
  }
  client::Client* client = *run(cluster.MountClient("drill"));
  vfs::FileSystem fs(client);

  // 1. Write a 512 KiB file (several 128 KiB packets through the chain).
  std::string payload;
  for (int i = 0; i < 512; i++) payload += std::string(1024, static_cast<char>('a' + i % 26));
  vfs::Fd fd = *run(fs.Open("/victim.bin", vfs::kCreate | vfs::kWrite));
  (void)run(fs.Write(fd, payload));
  (void)run(fs.Close(fd));
  std::printf("wrote /victim.bin (%zu KiB)\n", payload.size() / kKiB);

  // 2. Crash a storage node that hosts data partitions.
  master::MasterNode* leader = cluster.master_leader();
  sim::NodeId victim_id = leader->state().data_partitions().begin()->second.replicas[0];
  int victim = -1;
  for (int i = 0; i < cluster.num_nodes(); i++) {
    if (cluster.node_host(i)->id() == victim_id) victim = i;
  }
  cluster.CrashNode(victim);
  std::printf("crashed storage node %u\n", victim_id);

  cluster.sched().RunFor(2 * kSec);  // raft failovers on affected partitions
  vfs::Fd rd = *run(fs.Open("/victim.bin", vfs::kRead));
  auto got = *run(fs.Read(rd, payload.size()));
  (void)run(fs.Close(rd));
  std::printf("read with node down: %zu bytes, %s\n", got.size(),
              got == payload ? "content INTACT" : "CONTENT MISMATCH");

  // 3. The master marks partitions on the dead node read-only (§2.3.3).
  bool marked = cluster.RunUntil([&] {
    master::MasterNode* l = cluster.master_leader();
    if (!l) return false;
    for (const auto& [pid, rec] : l->state().data_partitions()) {
      if (rec.read_only) return true;
    }
    return false;
  });
  std::printf("master marked affected partitions read-only: %s\n", marked ? "yes" : "no");

  // 4. Restart + two-phase recovery.
  bool recovered = harness::RunTaskVoid(cluster.sched(), cluster.RestartNode(victim));
  cluster.sched().RunFor(3 * kSec);
  std::printf("node %u restarted and recovered (alignment, then raft): %s\n", victim_id,
              recovered ? "ok" : "FAILED");

  vfs::Fd rd2 = *run(fs.Open("/victim.bin", vfs::kRead));
  auto got2 = *run(fs.Read(rd2, payload.size()));
  (void)run(fs.Close(rd2));
  std::printf("read after recovery: %s\n",
              got2 == payload ? "content INTACT" : "CONTENT MISMATCH");

  // 5. Master failover.
  leader = cluster.master_leader();
  size_t partitions_before = leader->state().data_partitions().size();
  leader->host()->Crash();
  bool new_leader = cluster.RunUntil([&] {
    master::MasterNode* l = cluster.master_leader();
    return l != nullptr && l->host()->up();
  });
  master::MasterNode* l2 = cluster.master_leader();
  std::printf("master failover: %s; cluster map intact: %s\n", new_leader ? "ok" : "FAILED",
              l2 && l2->state().data_partitions().size() == partitions_before ? "yes" : "no");

  // The file system still works end to end.
  vfs::Fd fd3 = *run(fs.Open("/after-failover.txt", vfs::kCreate | vfs::kWrite));
  (void)run(fs.Write(fd3, "business as usual\n"));
  (void)run(fs.Close(fd3));
  std::printf("post-failover create+write OK\nfailure drill complete\n");
  return 0;
}
