// Small-file (product-image) store — the §4.4 workload: images are written
// once, read many times, never modified, occasionally deleted.
//
// Demonstrates the small-file machinery end to end:
//   * files <= 128 KB aggregate into shared tiny extents (§2.2.3),
//   * the meta node records each file's (extent, physical offset),
//   * deletion punches holes instead of running a garbage collector, and
//     fully-punched extents disappear;
// and prints the extent/disk accounting that proves it.
#include <cstdio>
#include <vector>

#include "harness/cluster.h"
#include "vfs/vfs.h"

using namespace cfs;
using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;

namespace {

struct StoreStats {
  uint64_t extents = 0;
  uint64_t physical = 0;
  uint64_t punched = 0;
};

StoreStats Collect(Cluster& cluster) {
  StoreStats s;
  for (int i = 0; i < cluster.num_nodes(); i++) {
    for (const auto& rep : cluster.data_node(i)->Reports()) {
      s.extents += rep.extents;
      s.physical += rep.used_bytes;
    }
    sim::Host* h = cluster.node_host(i);
    for (int d = 0; d < h->num_disks(); d++) s.punched += h->disk(d)->punched_bytes();
  }
  return s;
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_nodes = 5;
  Cluster cluster(options);
  auto run = [&](auto task) { return *RunTask(cluster.sched(), std::move(task)); };

  if (!run(cluster.Start()).ok() || !run(cluster.CreateVolume("images", 3, 8)).ok()) {
    return 1;
  }
  client::Client* client = *run(cluster.MountClient("images"));
  vfs::FileSystem fs(client);
  (void)run(fs.Mkdir("/products"));

  // Upload a catalog of small images (4-96 KB).
  const int kImages = 60;
  Rng rng(2026);
  std::vector<std::string> paths;
  uint64_t uploaded_bytes = 0;
  for (int i = 0; i < kImages; i++) {
    std::string path = "/products/sku-" + std::to_string(1000 + i) + ".jpg";
    uint64_t size = (4 + rng.Uniform(93)) * kKiB;
    std::string payload(size, static_cast<char>('A' + i % 26));
    vfs::Fd fd = *run(fs.Open(path, vfs::kCreate | vfs::kWrite));
    (void)run(fs.Write(fd, payload));
    (void)run(fs.Close(fd));
    paths.push_back(path);
    uploaded_bytes += size;
  }
  StoreStats after_upload = Collect(cluster);
  std::printf("uploaded %d images (%llu KiB logical)\n", kImages,
              static_cast<unsigned long long>(uploaded_bytes / kKiB));
  std::printf("  extents holding them: %llu (aggregation: ~%.1f files/extent)\n",
              static_cast<unsigned long long>(after_upload.extents),
              after_upload.extents ? 3.0 * kImages / after_upload.extents : 0);

  // Serve a read burst (the long-tail read path: all metadata in memory).
  uint64_t served = 0;
  for (int round = 0; round < 3; round++) {
    for (const auto& path : paths) {
      vfs::Fd fd = *run(fs.Open(path, vfs::kRead));
      auto bytes = *run(fs.Read(fd, 128 * kKiB));
      served += bytes.size();
      (void)run(fs.Close(fd));
    }
  }
  std::printf("served %llu KiB across %d reads\n",
              static_cast<unsigned long long>(served / kKiB), 3 * kImages);

  // Retire a third of the catalog: asynchronous delete -> punch hole.
  int removed = 0;
  for (size_t i = 0; i < paths.size(); i += 3) {
    (void)run(fs.Unlink(paths[i]));
    removed++;
  }
  std::printf("deleted %d images; waiting for the async purge (§2.7.3)...\n", removed);
  cluster.sched().RunFor(5 * kSec);

  StoreStats after_delete = Collect(cluster);
  std::printf("  physical bytes: %llu KiB -> %llu KiB\n",
              static_cast<unsigned long long>(after_upload.physical / kKiB),
              static_cast<unsigned long long>(after_delete.physical / kKiB));
  std::printf("  punched (hole) bytes on disk: %llu KiB — no GC pass needed (§2.2.3)\n",
              static_cast<unsigned long long>(after_delete.punched / kKiB));

  // The survivors still read back fine around the holes.
  vfs::Fd fd = *run(fs.Open(paths[1], vfs::kRead));
  auto bytes = *run(fs.Read(fd, 128 * kKiB));
  std::printf("post-delete read of %s: %zu bytes OK\n", paths[1].c_str(), bytes.size());
  (void)run(fs.Close(fd));
  std::printf("small-file store scenario OK\n");
  return 0;
}
