// Quickstart: bring up a CFS cluster, mount a volume, and use the
// POSIX-like API — the 60-second tour of the public surface.
//
//   cluster -> volume -> client -> FileSystem (mkdir/open/write/read/list)
//
// Everything runs inside the deterministic simulation substrate; `Run(...)`
// drives the virtual clock until the operation completes.
#include <cstdio>

#include "harness/cluster.h"
#include "vfs/vfs.h"

using namespace cfs;
using harness::Cluster;
using harness::ClusterOptions;
using harness::RunTask;

int main() {
  // 1. A cluster: 3 resource-manager replicas + 5 storage machines, each
  //    running a meta node (metadata in memory) and a data node (extent
  //    stores on 16 simulated SSDs).
  ClusterOptions options;
  options.num_nodes = 5;
  Cluster cluster(options);
  auto run = [&](auto task) { return *RunTask(cluster.sched(), std::move(task)); };

  if (!run(cluster.Start()).ok()) {
    std::printf("cluster failed to start\n");
    return 1;
  }
  std::printf("cluster up: %d storage nodes, %d masters\n", cluster.num_nodes(), 3);

  // 2. A volume: the file-system instance containers mount (§2). 3 meta
  //    partitions shard the namespace; 8 data partitions hold extents.
  if (!run(cluster.CreateVolume("quickstart", 3, 8)).ok()) {
    std::printf("volume creation failed\n");
    return 1;
  }
  std::printf("volume 'quickstart' created\n");

  // 3. A client with a FUSE-like POSIX facade.
  client::Client* client = *run(cluster.MountClient("quickstart"));
  vfs::FileSystem fs(client);

  // 4. Files and directories.
  (void)run(fs.Mkdir("/app"));
  (void)run(fs.Mkdir("/app/logs"));

  vfs::Fd fd = *run(fs.Open("/app/logs/boot.log", vfs::kCreate | vfs::kWrite));
  std::string line = "service started; cfs mounted rw\n";
  (void)run(fs.Write(fd, line));
  (void)run(fs.Write(fd, line));
  (void)run(fs.Close(fd));

  vfs::Fd rd = *run(fs.Open("/app/logs/boot.log", vfs::kRead));
  std::string content = *run(fs.Read(rd, 4096));
  (void)run(fs.Close(rd));
  std::printf("read back %zu bytes:\n%s", content.size(), content.c_str());

  auto entries = *run(fs.ListDir("/app/logs"));
  for (const auto& e : entries) {
    std::printf("  /app/logs/%-12s %6llu bytes  inode %llu\n", e.name.c_str(),
                static_cast<unsigned long long>(e.attr.size),
                static_cast<unsigned long long>(e.attr.ino));
  }

  auto attr = *run(fs.Stat("/app/logs/boot.log"));
  std::printf("stat: size=%llu nlink=%u\n", static_cast<unsigned long long>(attr.size),
              attr.nlink);

  std::printf("quickstart OK (simulated time: %lld ms)\n",
              static_cast<long long>(cluster.sched().Now() / 1000));
  return 0;
}
