#!/usr/bin/env python3
"""Convert an obs::Tracer span log into Chrome trace-event JSON.

Input: the JSON-lines span log written by Tracer::DumpLog() (one span per
line, e.g. via `bench_fig8_largefile_single_client --trace-out spans.jsonl`).
Output: a trace-event file loadable in chrome://tracing or ui.perfetto.dev.

Mapping: each span becomes a complete ("ph":"X") event; the pid is the
simulated NodeId the work ran on (0 = client/none), the tid is the span's
subsystem (the part of the name before ':'), so each node row splits into
client/call/rpc/handler/raft/disk tracks. Timestamps are virtual-time
microseconds, which is exactly the unit the trace-event format expects.
Span/trace ids are emitted as strings inside "args" — they are full 64-bit
values and would lose precision as JSON numbers.

Usage: tools/trace2chrome.py spans.jsonl [-o out.json] [--trace-id ID]
"""

import argparse
import json
import sys


def subsystem(name: str) -> str:
    return name.split(":", 1)[0] if ":" in name else name


def convert(lines, only_trace_id=0):
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"line {lineno}: not valid JSON: {e}")
        for key in ("trace_id", "span_id", "parent_id", "name", "node", "start", "end"):
            if key not in span:
                raise SystemExit(f"line {lineno}: span missing field {key!r}")
        if only_trace_id and span["trace_id"] != only_trace_id:
            continue
        args = {
            "trace_id": str(span["trace_id"]),
            "span_id": str(span["span_id"]),
            "parent_id": str(span["parent_id"]),
        }
        for key, value in span.get("notes", {}).items():
            args[key] = value
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": subsystem(span["name"]),
            "pid": span["node"],
            "tid": subsystem(span["name"]),
            "ts": span["start"],
            "dur": max(0, span["end"] - span["start"]),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="span log (JSON lines) from Tracer::DumpLog()")
    ap.add_argument("-o", "--output", default="-", help="output path (default: stdout)")
    ap.add_argument("--trace-id", type=int, default=0,
                    help="emit only the spans of this trace id (default: all)")
    args = ap.parse_args()

    with open(args.input, encoding="utf-8") as f:
        doc = convert(f, args.trace_id)

    out = sys.stdout if args.output == "-" else open(args.output, "w", encoding="utf-8")
    json.dump(doc, out, separators=(",", ":"))
    out.write("\n")
    if out is not sys.stdout:
        out.close()
        print(f"{args.output}: {len(doc['traceEvents'])} events", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
