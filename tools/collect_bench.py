#!/usr/bin/env python3
"""Run the seven ablation benches with --smoke and collect the results.

Each bench prints human-readable tables plus machine-readable lines of the
form `<kind> <label> {json}` (kinds: rpc_metrics, group_commit,
latency_quantiles, stage_breakdown, ablation rows). This script executes all
seven binaries, parses every machine line, and writes one JSON document —
BENCH_smoke.json by default — with the schema documented in EXPERIMENTS.md
("BENCH_smoke.json schema"):

  {
    "benches": {
      "<bench name>": {
        "returncode": 0,
        "machine_lines": [{"kind": "...", "label": "...", "data": {...}}, ...],
        "stdout": "full captured stdout"
      }, ...
    }
  }

Usage: tools/collect_bench.py [--build-dir build] [-o BENCH_smoke.json]
Exit status is non-zero if any bench fails to run or exits non-zero.

--wallclock switches to the simulator-throughput suite: the benches and
arguments listed in tools/bench_wallclock_baseline.json are run and each
binary's `bench_wallclock <name> {json}` line (wall seconds, events retired,
events/sec — printed by bench::WallclockReporter) is folded into
BENCH_wallclock.json (schema: EXPERIMENTS.md "BENCH_wallclock.json schema")
together with the committed pre-PR baseline, so simulator-throughput
regressions are caught like any other perf bug
(tools/check_bench_wallclock.py enforces the budgets).
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

BENCHES = [
    "bench_ablation_replication",
    "bench_ablation_placement",
    "bench_ablation_raftset",
    "bench_ablation_batchget",
    "bench_ablation_write_window",
    "bench_ablation_group_commit",
    "bench_ablation_tenancy",
    "bench_health_gray_disk",
]

# `<kind> <label> {json}` — kind and label are whitespace-free tokens. The
# ablation benches also print bare `{json}` result rows (one per sweep cell);
# those are collected with kind "row" and the row's own "bench" field as the
# label.
MACHINE_LINE = re.compile(r"^(\w+) (\S+) (\{.*\})$")
BARE_ROW = re.compile(r"^\{.*\}$")


def parse_machine_lines(stdout: str):
    lines = []
    for line in stdout.splitlines():
        m = MACHINE_LINE.match(line)
        if m:
            kind, label, payload = m.group(1), m.group(2), m.group(3)
        elif BARE_ROW.match(line):
            kind, label, payload = "row", "", line
        else:
            continue
        try:
            data = json.loads(payload)
        except json.JSONDecodeError:
            continue  # a table row that happens to look like a machine line
        if kind == "row":
            label = str(data.get("bench", ""))
        lines.append({"kind": kind, "label": label, "data": data})
    return lines


def collect_wallclock(bench_dir: pathlib.Path, baseline_path: pathlib.Path,
                      output: str, timeout: int) -> int:
    """Run the wallclock suite from the baseline file; write BENCH_wallclock.json."""
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)
    result = {"benches": {}}
    failures = 0
    for name, base in baseline["benches"].items():
        binary = bench_dir / name
        argv = [str(binary)] + list(base.get("args", []))
        if not binary.is_file():
            print(f"{name}: missing (build it first)", file=sys.stderr)
            failures += 1
            continue
        print(f"running {' '.join(argv[1:])} ...", file=sys.stderr)
        try:
            proc = subprocess.run(argv, capture_output=True, text=True, timeout=timeout)
        except subprocess.TimeoutExpired:
            print(f"{name}: timed out after {timeout}s", file=sys.stderr)
            failures += 1
            continue
        entry = {"args": base.get("args", []), "returncode": proc.returncode}
        for line in parse_machine_lines(proc.stdout):
            if line["kind"] == "bench_wallclock":
                entry.update(line["data"])
        if "events_per_sec" not in entry:
            print(f"{name}: no bench_wallclock line in output", file=sys.stderr)
            failures += 1
        if proc.returncode != 0:
            print(f"{name}: exit {proc.returncode}\n{proc.stderr}", file=sys.stderr)
            failures += 1
        if "pre_pr" in base:
            entry["pre_pr"] = base["pre_pr"]
            if entry.get("events_per_sec") and base["pre_pr"].get("events_per_sec"):
                entry["speedup_vs_pre_pr"] = round(
                    entry["events_per_sec"] / base["pre_pr"]["events_per_sec"], 2)
        result["benches"][name] = entry
    with open(output, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=1)
        f.write("\n")
    print(f"{output}: {len(result['benches'])} benches, {failures} failure(s)",
          file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build", help="cmake build dir (default: build)")
    ap.add_argument("-o", "--output", default=None)
    ap.add_argument("--timeout", type=int, default=600, help="per-bench seconds")
    ap.add_argument("--wallclock", action="store_true",
                    help="run the simulator-throughput suite from "
                         "tools/bench_wallclock_baseline.json instead of the "
                         "ablation set; write BENCH_wallclock.json")
    ap.add_argument("--baseline",
                    default=str(pathlib.Path(__file__).resolve().parent /
                                "bench_wallclock_baseline.json"),
                    help="wallclock suite definition + pre-PR baseline")
    args = ap.parse_args()

    bench_dir = pathlib.Path(args.build_dir) / "bench"
    if args.wallclock:
        return collect_wallclock(bench_dir, pathlib.Path(args.baseline),
                                 args.output or "BENCH_wallclock.json", args.timeout)
    args.output = args.output or "BENCH_smoke.json"
    result = {"benches": {}}
    failures = 0
    for name in BENCHES:
        binary = bench_dir / name
        if not binary.is_file():
            print(f"{name}: missing (build it first: cmake --build {args.build_dir} "
                  f"--target {name})", file=sys.stderr)
            failures += 1
            continue
        print(f"running {name} --smoke ...", file=sys.stderr)
        try:
            proc = subprocess.run([str(binary), "--smoke"], capture_output=True,
                                  text=True, timeout=args.timeout)
        except subprocess.TimeoutExpired:
            print(f"{name}: timed out after {args.timeout}s", file=sys.stderr)
            failures += 1
            continue
        if proc.returncode != 0:
            print(f"{name}: exit {proc.returncode}\n{proc.stderr}", file=sys.stderr)
            failures += 1
        result["benches"][name] = {
            "returncode": proc.returncode,
            "machine_lines": parse_machine_lines(proc.stdout),
            "stdout": proc.stdout,
        }

    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=1)
        f.write("\n")
    print(f"{args.output}: {len(result['benches'])} benches, {failures} failure(s)",
          file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
