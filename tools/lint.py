#!/usr/bin/env python3
"""Project-specific lint for the CFS reproduction.

The simulator promises bit-identical replay from a seed (see
src/sim/scheduler.h and DESIGN.md "Determinism contract"), and the error
model routes every failure through cfs::Status. This script enforces the
source-level rules that keep those promises true:

  R1  no wall-clock or OS randomness inside src/: every time source must be
      the scheduler's virtual clock and every random draw the seeded
      cfs::Rng. Forbidden: rand()/srand(), std::random_device, <random>,
      <chrono> clocks (system_clock/steady_clock/high_resolution_clock),
      gettimeofday/clock_gettime/time(NULL).
  R2  no unordered containers inside src/: hash-map iteration order varies
      across libstdc++ versions and ASLR-seeded hashes, and has already
      bitten deterministic paths (see PR history for src/ceph/ceph.h and
      src/sim/network.h). Ordered std::map/std::set cost O(log n) and keep
      replay stable.
  R3  ignored-Status safety net: cfs::Status and cfs::Result must carry the
      class-level [[nodiscard]] and the build must promote unused-result to
      an error, so the compiler flags every ignored fallible call.
  R4  no raw Network::Call outside src/rpc/: every RPC leg must go through
      the rpc service layer (rpc::Channel / typed stubs) so retries,
      deadlines and per-RPC metrics stay uniform (DESIGN.md "RPC service
      layer"). The raft transport routes through rpc::Channel too (see
      raft/multiraft.h), so the only remaining raw call is Channel itself.
  R5  no raw stdout/stderr printing inside src/: library code must report
      through CFS_LOG (common/logging.h, virtual-clock timestamps) or
      return a Status — raw printf/std::cout bypasses the log level gate
      and interleaves wall text into machine-readable bench output. The
      sanctioned sinks (src/common/logging.*, src/common/check.*) are
      exempt; bench/, tools/, tests/ and examples/ are not scanned.
  R6  no by-value payload-vector parameters inside src/: a
      `std::vector<uint8_t>` / `std::vector<char>` / `std::vector<std::byte>`
      parameter taken by value copies the whole payload at every call —
      exactly the per-hop copying the zero-copy Buffer work removed
      (DESIGN.md "Simulator performance"). Take `const&`, a
      std::string_view, or a cfs::Buffer instead; sink functions that
      genuinely consume the bytes take a Buffer by value (refcount bump,
      not a copy).

A line may opt out of R1/R2/R4/R5/R6 with a trailing `// lint:allow(<rule>)` comment
naming the rule, e.g. `// lint:allow(unordered)` — the escape hatch exists
for future code that can prove order-independence, and every use is visible
in review.

Usage: tools/lint.py [--root DIR]    (exit 0 = clean, 1 = findings)
"""

import argparse
import pathlib
import re
import sys

SRC_SUFFIXES = {".h", ".cc", ".cpp"}

# R1: each entry is (human name, compiled pattern, allow token).
WALL_CLOCK_RULES = [
    ("libc rand()/srand()", re.compile(r"\b(?:s?rand)\s*\("), "wall-clock"),
    ("std::random_device", re.compile(r"\brandom_device\b"), "wall-clock"),
    ("#include <random>", re.compile(r'#\s*include\s*[<"]random[>"]'), "wall-clock"),
    ("chrono clock", re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock"),
    ("gettimeofday/clock_gettime", re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("),
     "wall-clock"),
    ("time(NULL)/time(nullptr)", re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "wall-clock"),
]

# R2: any unordered associative container.
UNORDERED_RULE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# R4: a templated Call< on something named like a Network (net_, net(),
# self->net_, cluster->net(), ...). Typed-stub calls (svc.Call<...>) and
# rpc::Channel::Unary do not match. src/rpc/ itself is exempt — it is the
# one place allowed to touch the transport.
RAW_RPC_RULE = re.compile(r"\bnet\w*(?:\(\))?\s*(?:->|\.)\s*Call<")

# R5: raw console output from library code. printf-family on stdout/stderr
# and iostream writes; CFS_LOG and the logging/check sinks are the sanctioned
# paths. (bench/, tools/, tests/, examples/ are outside src/ and unscanned.)
RAW_PRINT_RULE = re.compile(
    r"\b(?:std::)?(?:printf|fprintf|vfprintf|puts|putchar)\s*\(|std::c(?:out|err)\b")

# R6: a byte-vector parameter passed by value. Matches the vector type
# followed directly by a parameter name and a `,` or `)` — a reference
# (`>&`), pointer (`>*`), or local declaration (`name;` / `name =` /
# `name(...)`/`name{...}`) does not match. Payload element types only;
# vectors of structs are not payload buffers.
BYVALUE_PAYLOAD_RULE = re.compile(
    r"std::vector<\s*(?:std::)?(?:uint8_t|int8_t|char|unsigned char|byte)\s*>"
    r"\s+\w+\s*[,)]")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


def allowed(line: str, token: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m) and m.group(1) == token


def lint_file(path: pathlib.Path, findings: list, in_rpc_layer: bool,
              is_print_sink: bool) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        findings.append((path, 0, "file is not valid UTF-8"))
        return
    for lineno, line in enumerate(text.splitlines(), start=1):
        for name, pattern, token in WALL_CLOCK_RULES:
            if pattern.search(line) and not allowed(line, token):
                findings.append((path, lineno, f"R1 nondeterministic source: {name}"))
        if UNORDERED_RULE.search(line) and not allowed(line, "unordered"):
            findings.append(
                (path, lineno,
                 "R2 unordered container (iteration order breaks replay); "
                 "use std::map/std::set or add // lint:allow(unordered)"))
        if (not in_rpc_layer and RAW_RPC_RULE.search(line)
                and not allowed(line, "raw-rpc")):
            findings.append(
                (path, lineno,
                 "R4 raw Network::Call outside src/rpc/; go through the rpc "
                 "service layer (rpc::Channel / typed stubs) or add "
                 "// lint:allow(raw-rpc)"))
        if (not is_print_sink and RAW_PRINT_RULE.search(line)
                and not allowed(line, "raw-print")):
            findings.append(
                (path, lineno,
                 "R5 raw stdout/stderr print in src/; use CFS_LOG "
                 "(common/logging.h) or add // lint:allow(raw-print)"))
        if BYVALUE_PAYLOAD_RULE.search(line) and not allowed(line, "byvalue-payload"):
            findings.append(
                (path, lineno,
                 "R6 byte-vector parameter passed by value copies the payload; "
                 "take const&/string_view/cfs::Buffer or add "
                 "// lint:allow(byvalue-payload)"))


def lint_nodiscard(root: pathlib.Path, findings: list) -> None:
    status_h = root / "src" / "common" / "status.h"
    if not status_h.is_file():
        findings.append((status_h, 0, "R3 missing: src/common/status.h not found"))
        return
    text = status_h.read_text(encoding="utf-8")
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", text):
            findings.append(
                (status_h, 0,
                 f"R3 cfs::{cls} must be declared `class [[nodiscard]] {cls}`"))
    cml = root / "CMakeLists.txt"
    if cml.is_file() and "-Werror=unused-result" not in cml.read_text(encoding="utf-8"):
        findings.append(
            (cml, 0,
             "R3 top-level CMakeLists.txt must pass -Werror=unused-result so "
             "ignored Status/Result calls fail the build"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's directory)")
    args = ap.parse_args()
    root = pathlib.Path(args.root) if args.root else pathlib.Path(__file__).resolve().parent.parent

    findings: list = []
    src = root / "src"
    rpc_dir = src / "rpc"
    print_sinks = {src / "common" / "logging.h", src / "common" / "logging.cc",
                   src / "common" / "check.h", src / "common" / "check.cc"}
    for path in sorted(src.rglob("*")):
        if path.suffix in SRC_SUFFIXES and path.is_file():
            lint_file(path, findings, in_rpc_layer=rpc_dir in path.parents,
                      is_print_sink=path in print_sinks)
    lint_nodiscard(root, findings)

    for path, lineno, msg in findings:
        where = f"{path.relative_to(root)}:{lineno}" if lineno else str(path.relative_to(root))
        print(f"{where}: {msg}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)")
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
