#!/usr/bin/env python3
"""Determinism lint for the CFS reproduction — compatibility shim.

The regex lint this file used to hold was superseded by the token-stream
analyzer in tools/analyze (R1-R6 live in tools/analyze/rules.py, the
suspension-point hazard checks A1-A4 in tools/analyze/checks.py).  The
entry point and exit-code contract are unchanged: `python3 tools/lint.py`
still exits 0 on a clean tree and 1 on findings, and `// lint:allow(<rule>)`
comments are honored exactly as before.

Run `python3 -m tools.analyze --help` for the full CLI (baseline control,
per-file runs, fixture mode).
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from tools.analyze.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
