#!/usr/bin/env python3
"""Validate and render health-event logs from the windowed health telemetry.

Input: the JSON-lines event log written by HealthScorer::DumpEventsJsonl()
(e.g. via `bench_health_gray_disk --events-out events.jsonl`). Every line is
one state transition with the evidence that drove it; the full schema is
documented in EXPERIMENTS.md ("Gray-failure detection").

Modes (combinable):
  default          validate the schema, then print a per-target timeline —
                   one row per transition, grouped by target, with the
                   outlier evidence (p99 vs cohort median) inline.
  --check          validate only (exit non-zero on any malformed line);
                   prints a one-line summary. CI runs this on the log the
                   gray-disk bench just produced.
  --golden PATH    additionally require the input to be byte-identical to
                   the committed golden log — the cross-platform
                   determinism pin for the whole scoring pipeline.

Usage: tools/health_report.py events.jsonl [--check] [--golden PATH]
"""

import argparse
import json
import sys

STATES = ("healthy", "suspect", "degraded", "dead")

# Required fields and their types. Integers are virtual-time microseconds or
# plain counts; states are fixed strings.
SCHEMA = {
    "time": int,
    "window": int,
    "target": str,
    "cohort": str,
    "from": str,
    "to": str,
    "p99_usec": int,
    "cohort_median_usec": int,
    "errors": int,
    "streak": int,
}


def validate(lines):
    """Parse + schema-check every line; returns the event list or raises
    SystemExit with the first offending line number."""
    events = []
    last_time = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"line {lineno}: not valid JSON: {e}")
        for key, typ in SCHEMA.items():
            if key not in ev:
                raise SystemExit(f"line {lineno}: missing field {key!r}")
            if not isinstance(ev[key], typ) or isinstance(ev[key], bool):
                raise SystemExit(
                    f"line {lineno}: field {key!r} should be {typ.__name__}, "
                    f"got {type(ev[key]).__name__}")
        for key in ("from", "to"):
            if ev[key] not in STATES:
                raise SystemExit(f"line {lineno}: {key}={ev[key]!r} is not one "
                                 f"of {STATES}")
        if ev["from"] == ev["to"]:
            raise SystemExit(f"line {lineno}: no-op transition "
                             f"{ev['from']} -> {ev['to']}")
        if ev["time"] < last_time:
            raise SystemExit(f"line {lineno}: time {ev['time']} goes backwards "
                             f"(previous {last_time}) — log order broken")
        last_time = ev["time"]
        events.append(ev)
    return events


def render(events, out=sys.stdout):
    """Per-target timeline: transitions in log order with their evidence."""
    by_target = {}
    for ev in events:
        by_target.setdefault(ev["target"], []).append(ev)
    for target in sorted(by_target):
        evs = by_target[target]
        print(f"{target} (cohort {evs[0]['cohort']}):", file=out)
        for ev in evs:
            up = STATES.index(ev["to"]) > STATES.index(ev["from"])
            arrow = "^" if up else "v"
            evidence = f"p99 {ev['p99_usec']}us"
            if ev["cohort_median_usec"]:
                evidence += f" vs cohort median {ev['cohort_median_usec']}us"
            if ev["errors"]:
                evidence += f", {ev['errors']} errors"
            print(f"  w{ev['window']:<5} t={ev['time']:<12} "
                  f"{ev['from']} -> {ev['to']} {arrow}  "
                  f"[{evidence}; streak {ev['streak']}]", file=out)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("log", help="health-event JSONL (DumpEventsJsonl output)")
    ap.add_argument("--check", action="store_true",
                    help="validate only, no timeline output")
    ap.add_argument("--golden", metavar="PATH",
                    help="require the log to be byte-identical to PATH")
    args = ap.parse_args()

    with open(args.log, "rb") as f:
        raw = f.read()
    events = validate(raw.decode("utf-8").splitlines())

    if args.golden:
        with open(args.golden, "rb") as f:
            golden = f.read()
        if raw != golden:
            raise SystemExit(
                f"{args.log} differs from golden {args.golden} "
                f"({len(raw)} vs {len(golden)} bytes) — the scoring pipeline "
                f"is no longer byte-deterministic, or the golden needs a "
                f"deliberate refresh")

    targets = {ev["target"] for ev in events}
    print(f"health_report: {len(events)} event(s), {len(targets)} target(s) OK"
          + (", matches golden" if args.golden else ""))
    if not args.check:
        render(events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
