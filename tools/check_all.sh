#!/usr/bin/env bash
# One-stop local verification gate, mirroring the CI `analysis` job:
#
#   1. tools/analyze — suspension-point hazards A1-A4 + determinism lint
#      R1-R6 against tools/analyze/baseline.json (new findings AND stale
#      baseline entries both fail),
#   2. the fixture corpus that locks each check's behavior,
#   3. full-tree clang-tidy (skipped with a notice when not installed —
#      the container image doesn't bake it in; CI always runs it),
#   4. the simulator wall-clock gate (pinned executed-event counts +
#      throughput budget), when the benches are built.
#
# Usage: tools/check_all.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== analyzer: A1-A4 + R1-R6 vs tools/analyze/baseline.json =="
python3 -m tools.analyze

echo "== analyzer fixture corpus =="
python3 tests/analyze/run_fixtures.py "$PWD"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (full tree) =="
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' |
    xargs -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "== clang-tidy not installed: skipped (the CI analysis job runs it) =="
fi

if [ -x "$BUILD_DIR/bench/bench_fig9_largefile_multi_client" ]; then
  echo "== wallclock gate (pinned event counts + throughput budget) =="
  python3 tools/collect_bench.py --wallclock --build-dir "$BUILD_DIR" \
    -o "$BUILD_DIR/BENCH_wallclock.json"
  python3 tools/check_bench_wallclock.py "$BUILD_DIR/BENCH_wallclock.json"
else
  echo "== wallclock gate skipped: benches not built in $BUILD_DIR =="
fi

echo "check_all: OK"
