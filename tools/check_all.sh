#!/usr/bin/env bash
# One-stop local verification gate, mirroring the CI `analysis` job:
#
#   1. tools/analyze — suspension-point hazards A1-A4 + determinism lint
#      R1-R6 against tools/analyze/baseline.json (new findings AND stale
#      baseline entries both fail),
#   2. the fixture corpus that locks each check's behavior,
#   3. full-tree clang-tidy (skipped with a notice when not installed —
#      the container image doesn't bake it in; CI always runs it),
#   4. the health-telemetry gate: the gray-disk bench must detect its
#      injected slow disk and emit an event log byte-identical to the
#      committed golden (tests/golden/health_events_smoke.jsonl),
#   5. the simulator wall-clock gate (pinned executed-event counts +
#      throughput budget), when the benches are built.
#
# Usage: tools/check_all.sh [build-dir]     (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== analyzer: A1-A4 + R1-R6 vs tools/analyze/baseline.json =="
python3 -m tools.analyze

echo "== analyzer fixture corpus =="
python3 tests/analyze/run_fixtures.py "$PWD"

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (full tree) =="
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  git ls-files 'src/*.cc' 'tests/*.cc' 'bench/*.cc' |
    xargs -P "$(nproc)" -n 4 clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "== clang-tidy not installed: skipped (the CI analysis job runs it) =="
fi

if [ -x "$BUILD_DIR/bench/bench_health_gray_disk" ]; then
  echo "== health telemetry gate (gray-disk detection + golden event log) =="
  # The binary itself exits non-zero when the injected slow disk goes
  # undetected or the two same-seed runs' event logs diverge; the report
  # tool then schema-checks the log and pins it byte-for-byte to the
  # committed golden.
  "$BUILD_DIR/bench/bench_health_gray_disk" --smoke \
    --events-out "$BUILD_DIR/health_events.jsonl" >/dev/null
  python3 tools/health_report.py "$BUILD_DIR/health_events.jsonl" --check \
    --golden tests/golden/health_events_smoke.jsonl
else
  echo "== health telemetry gate skipped: bench not built in $BUILD_DIR =="
fi

if [ -x "$BUILD_DIR/bench/bench_fig9_largefile_multi_client" ]; then
  echo "== wallclock gate (pinned event counts + throughput budget) =="
  python3 tools/collect_bench.py --wallclock --build-dir "$BUILD_DIR" \
    -o "$BUILD_DIR/BENCH_wallclock.json"
  python3 tools/check_bench_wallclock.py "$BUILD_DIR/BENCH_wallclock.json"
else
  echo "== wallclock gate skipped: benches not built in $BUILD_DIR =="
fi

echo "check_all: OK"
