#!/usr/bin/env python3
"""CI gate for simulator throughput: check BENCH_wallclock.json against the
committed baseline (tools/bench_wallclock_baseline.json).

For every bench in the baseline the run must:

  - be present in BENCH_wallclock.json with a bench_wallclock result;
  - finish within its absolute wall-clock budget (`budget_sec`);
  - retire exactly the baseline's `events` count, when one is pinned — the
    event count is a schedule-preservation invariant (same seed, same
    workload => same executed-event stream), so a drift means the simulated
    behavior changed, not just its speed;
  - reach at least 80% of the baseline `events_per_sec`, when one is
    recorded (a >20% throughput regression fails CI);
  - stay at or below `max_allocs_per_rpc`, when the baseline sets one (the
    RPC transport's zero-heap-allocation contract: bench_micro --rpc-churn
    reports measured allocations per steady-state unary RPC).

Usage: tools/check_bench_wallclock.py BENCH_wallclock.json
       [--baseline tools/bench_wallclock_baseline.json]
Exit 0 = within budget, 1 = regression or malformed input.
"""

import argparse
import json
import pathlib
import sys

REGRESSION_TOLERANCE = 0.8  # fail below 80% of baseline events/sec


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("results", help="BENCH_wallclock.json from collect_bench.py --wallclock")
    ap.add_argument("--baseline",
                    default=str(pathlib.Path(__file__).resolve().parent /
                                "bench_wallclock_baseline.json"))
    args = ap.parse_args()

    with open(args.results, encoding="utf-8") as f:
        results = json.load(f)["benches"]
    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)["benches"]

    failures = []
    for name, base in baseline.items():
        got = results.get(name)
        if not got or "wall_sec" not in got:
            failures.append(f"{name}: no wallclock result in {args.results}")
            continue
        wall, events, eps = got["wall_sec"], got.get("events"), got.get("events_per_sec")
        line = f"{name}: {wall:.3f}s, {events} events, {eps:.0f} events/sec"
        if "speedup_vs_pre_pr" in got:
            line += f" ({got['speedup_vs_pre_pr']}x vs pre-PR engine)"
        print(line)
        if got.get("returncode", 0) != 0:
            failures.append(f"{name}: exited {got['returncode']}")
        budget = base.get("budget_sec")
        if budget is not None and wall > budget:
            failures.append(f"{name}: wall {wall:.3f}s exceeds budget {budget}s")
        if "events" in base and events != base["events"]:
            failures.append(
                f"{name}: executed {events} events, baseline pins {base['events']} "
                "(schedule drift, not a perf regression — investigate before "
                "re-baselining)")
        floor = base.get("events_per_sec")
        if floor is not None and eps is not None and eps < REGRESSION_TOLERANCE * floor:
            failures.append(
                f"{name}: {eps:.0f} events/sec is >20% below baseline {floor} "
                f"(floor {REGRESSION_TOLERANCE * floor:.0f})")
        alloc_cap = base.get("max_allocs_per_rpc")
        if alloc_cap is not None:
            allocs = got.get("allocs_per_rpc")
            if allocs is None:
                failures.append(f"{name}: baseline caps allocs_per_rpc but the "
                                "run did not report it")
            elif allocs > alloc_cap:
                failures.append(
                    f"{name}: {allocs} heap allocations per RPC exceeds the cap "
                    f"{alloc_cap} (the transport's zero-allocation contract)")

    for f_ in failures:
        print(f"FAIL {f_}", file=sys.stderr)
    if failures:
        print(f"check_bench_wallclock: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("check_bench_wallclock: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
