"""A small, honest C++ lexer.

Produces a flat list of Tokens (kind, text, line) with comments and
string/character literals resolved properly — the whole point over the
old line-regex lint: `// no rand() here` and `"co_await"` never reach
the checks.  Preprocessor directives are kept as single PREPROC tokens
(the R1 include rules need them); comments are dropped from the stream
but their text is recorded per line so allow-directives
(`lint:allow(...)`, `analyze:allow(...)`) survive.

Handled: line/block comments, string and char literals with escapes,
raw strings (R"delim(...)delim"), numeric literals (incl. hex/float/
separators), identifiers, and multi-character operators longest-first.
Not handled (and not needed): trigraphs, UCNs in identifiers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PREPROC = "preproc"

_PUNCTS = [
    # Longest first so maximal munch works with simple startswith checks.
    "...", "->*", "<<=", ">>=", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "<", ">", "+", "-", "*",
    "/", "%", "&", "|", "^", "!", "~", "=", "?", ":", "#",
]

_IDENT_START = re.compile(r"[A-Za-z_]")
_IDENT_BODY = re.compile(r"[A-Za-z0-9_]")
_NUM_BODY = re.compile(r"[A-Za-z0-9_.']")
_RAW_STRING = re.compile(r'R"([^()\s\\]{0,16})\(')


@dataclass
class Token:
    kind: str
    text: str
    line: int

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.text!r}@{self.line}"


class LexedFile:
    """Token stream plus per-line comment text (for allow-directives)."""

    def __init__(self, tokens: List[Token], line_comments: dict):
        self.tokens = tokens
        self.line_comments = line_comments  # line -> concatenated comment text

    def comment_on(self, line: int) -> str:
        return self.line_comments.get(line, "")


def lex(text: str) -> LexedFile:
    tokens: List[Token] = []
    line_comments: dict = {}
    i, n, line = 0, len(text), 1

    def note_comment(ln: int, body: str) -> None:
        if ln in line_comments:
            line_comments[ln] += " " + body
        else:
            line_comments[ln] = body

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Comments.
        if text.startswith("//", i):
            j = text.find("\n", i)
            if j == -1:
                j = n
            note_comment(line, text[i:j])
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j == -1:
                j = n - 2
            body = text[i : j + 2]
            # A block comment annotates every line it touches.
            ln = line
            for part in body.split("\n"):
                note_comment(ln, part)
                ln += 1
            line += body.count("\n")
            i = j + 2
            continue
        # Preprocessor directive: one token to the (continued) end of line.
        if c == "#" and (not tokens or tokens[-1].line != line):
            start, ln = i, line
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                # Line continuation.
                k = j - 1
                while k >= start and text[k] in " \t\r":
                    k -= 1
                if k >= start and text[k] == "\\":
                    line += 1
                    i = j + 1
                    continue
                i = j
                break
            directive = text[start:i]
            # A trailing // comment belongs to the comment map (so
            # lint:allow on an #include line works), not the directive.
            cut = directive.find("//")
            if cut != -1:
                for off, piece in enumerate(directive.split("\n")):
                    pcut = piece.find("//")
                    if pcut != -1:
                        line_comments[ln + off] = (
                            line_comments.get(ln + off, "") + " " +
                            piece[pcut + 2:]).strip()
                directive = directive[:cut]
            tokens.append(Token(PREPROC, directive, ln))
            continue
        # Raw string literal.
        m = _RAW_STRING.match(text, i)
        if m:
            delim = m.group(1)
            end = text.find(")" + delim + '"', m.end())
            if end == -1:
                end = n
            body = text[i : end + len(delim) + 2]
            tokens.append(Token(STRING, body, line))
            line += body.count("\n")
            i += len(body)
            continue
        # String/char literal (with optional encoding prefix).
        if c in "\"'" or (
            c in "uUL"
            and i + 1 < n
            and text[i + 1] in "\"'"
            and not (tokens and tokens[-1].kind == IDENT and tokens[-1].line == line
                     and text[i - 1].isalnum() if i > 0 else False)
        ):
            start = i
            if c in "uUL":
                i += 1
                if text[i] == "8":  # u8"..."
                    i += 1
            quote = text[i]
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                if text[i] == "\n":  # unterminated; bail at line end
                    break
                i += 1
            tokens.append(
                Token(STRING if quote == '"' else CHAR, text[start:i], line))
            continue
        # Number.
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and _NUM_BODY.match(text[i]):
                # Exponent signs: 1e+5, 0x1p-3.
                if text[i] in "eEpP" and i + 1 < n and text[i + 1] in "+-":
                    i += 2
                else:
                    i += 1
            tokens.append(Token(NUMBER, text[start:i], line))
            continue
        # Identifier / keyword.
        if _IDENT_START.match(c):
            start = i
            i += 1
            while i < n and _IDENT_BODY.match(text[i]):
                i += 1
            tokens.append(Token(IDENT, text[start:i], line))
            continue
        # Punctuation, longest first.
        for p in _PUNCTS:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            # Unknown byte: skip it rather than crash (e.g. stray backslash).
            i += 1
    return LexedFile(tokens, line_comments)
