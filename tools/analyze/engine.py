"""Analyzer driver: two passes over src/, allow-directives, baseline.

Pass 1 lexes every file and collects the global table of Status/Result-
returning function names (A4 needs it across translation units).
Pass 2 runs the rule pass (R1-R6) and the hazard checks (A1-A4) per
file, drops findings carrying an `analyze:allow(<check>)` /
`lint:allow(<token>)` comment on the finding line, and finally compares
what is left against the committed baseline.

Baseline semantics (tools/analyze/baseline.json):
  * a finding whose fingerprint (file::check::function::symbol — no line
    number, so unrelated edits don't churn it) appears in the baseline is
    reported as "baselined" and does not fail the run;
  * a finding NOT in the baseline fails the run (new debt);
  * a baseline entry that no longer fires also fails the run (stale —
    the debt was paid, delete the entry so it cannot mask a regression).
Policy: A1/A2 entries are not accepted into the baseline — lifetime
bugs get fixed or carry an in-code allow with a justification.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Set, Tuple

from . import checks, lexer, rules, scopes
from .findings import Finding

SRC_SUFFIXES = {".h", ".cc", ".cpp"}


def collect_files(src: pathlib.Path) -> List[pathlib.Path]:
    return [p for p in sorted(src.rglob("*"))
            if p.suffix in SRC_SUFFIXES and p.is_file()]


def analyze_tree(root: pathlib.Path,
                 paths: List[pathlib.Path] = None) -> List[Finding]:
    src = root / "src"
    files = paths if paths is not None else collect_files(src)
    rpc_dir = src / "rpc"
    print_sinks = {src / "common" / "logging.h", src / "common" / "logging.cc",
                   src / "common" / "check.h", src / "common" / "check.cc"}

    lexed: List[Tuple[pathlib.Path, lexer.LexedFile]] = []
    status_fns: Set[str] = set()
    findings: List[Finding] = []
    for p in files:
        try:
            text = p.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            findings.append(Finding(str(p.relative_to(root)), 0, "R0",
                                    "R0.encoding", "file is not valid UTF-8",
                                    symbol=p.name))
            continue
        lf = lexer.lex(text)
        lexed.append((p, lf))
        status_fns |= checks.collect_status_functions(lf)

    for p, lf in lexed:
        rel = str(p.relative_to(root))
        fns = scopes.extract_functions(lf)
        per_file: List[Finding] = []
        per_file += rules.check_rules(
            lf, rel, in_rpc_layer=rpc_dir in p.parents,
            is_print_sink=p in print_sinks)
        per_file += checks.check_a1(lf, fns, rel)
        per_file += checks.check_a2(lf, fns, rel)
        per_file += checks.check_a3(lf, fns, rel)
        per_file += checks.check_a4(lf, fns, rel, status_fns)
        # Lambda bodies are walked both standalone and as part of their
        # enclosing function; report each site once.
        seen: Set[Tuple[str, int, str, str]] = set()
        for f in per_file:
            key = (f.path, f.line, f.rule, f.symbol)
            if key in seen:
                continue
            seen.add(key)
            if f.check.startswith("A") and rules.analyze_allowed(
                    lf, f.line, f.check):
                continue
            findings.append(f)

    findings += rules.check_r3(root)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def load_baseline(path: pathlib.Path) -> Dict[str, str]:
    """fingerprint -> note.  Missing file means an empty baseline."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    out: Dict[str, str] = {}
    for entry in data.get("findings", []):
        out[entry["fingerprint"]] = entry.get("note", "")
    return out


def save_baseline(path: pathlib.Path, findings: List[Finding]) -> None:
    entries = [{"fingerprint": f.fingerprint(), "rule": f.rule,
                "note": "accepted pre-existing finding"}
               for f in findings]
    # A1/A2 are never baselined: lifetime bugs get fixed, not suppressed.
    entries = [e for e in entries
               if not e["fingerprint"].split("::")[1] in ("A1", "A2")]
    path.write_text(json.dumps({"findings": entries}, indent=2) + "\n",
                    encoding="utf-8")


def compare(findings: List[Finding],
            baseline: Dict[str, str]) -> Tuple[List[Finding], List[Finding], List[str]]:
    """(new, baselined, stale fingerprints)."""
    new: List[Finding] = []
    matched: List[Finding] = []
    fired: Set[str] = set()
    for f in findings:
        fp = f.fingerprint()
        if fp in baseline:
            matched.append(f)
            fired.add(fp)
        else:
            new.append(f)
    stale = sorted(fp for fp in baseline if fp not in fired)
    return new, matched, stale
