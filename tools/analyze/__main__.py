"""CLI for the analyzer.

    python3 -m tools.analyze [--root DIR] [--baseline FILE]
                             [--update-baseline] [--no-baseline] [PATH ...]

Exit 0: no findings beyond the baseline and no stale baseline entries.
Exit 1: new findings and/or stale entries (each printed with its
fingerprint so the fix — or the baseline edit — is mechanical).

With explicit PATH arguments only those files are analyzed and the
baseline is skipped (fixture/test mode); `--no-baseline` does the same
for a tree run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import engine


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="tools.analyze",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this package)")
    ap.add_argument("--baseline", default=None,
                    help="baseline json (default: tools/analyze/baseline.json)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current findings "
                         "(A1/A2 findings are never baselined)")
    ap.add_argument("--no-baseline", action="store_true",
                    help="report every finding, ignore the baseline")
    ap.add_argument("paths", nargs="*",
                    help="specific files to analyze (skips the baseline)")
    args = ap.parse_args(argv)

    root = pathlib.Path(args.root).resolve() if args.root else \
        pathlib.Path(__file__).resolve().parent.parent.parent
    baseline_path = pathlib.Path(args.baseline) if args.baseline else \
        root / "tools" / "analyze" / "baseline.json"

    paths = [pathlib.Path(p).resolve() for p in args.paths] or None
    findings = engine.analyze_tree(root, paths)

    if args.update_baseline:
        engine.save_baseline(baseline_path, findings)
        print(f"analyze: baseline rewritten with "
              f"{len([f for f in findings if f.check not in ('A1', 'A2')])} "
              f"entr(ies) at {baseline_path}")
        return 0

    use_baseline = not (args.no_baseline or paths)
    baseline = engine.load_baseline(baseline_path) if use_baseline else {}
    new, matched, stale = engine.compare(findings, baseline)

    for f in new:
        print(f.render())
    if matched:
        print(f"analyze: {len(matched)} baselined finding(s) suppressed")
    for fp in stale:
        print(f"analyze: stale baseline entry (no longer fires — delete it): "
              f"{fp}")
    if new or stale:
        print(f"analyze: {len(new)} new finding(s), {len(stale)} stale "
              f"baseline entr(ies)")
        return 1
    print("analyze: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
