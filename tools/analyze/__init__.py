"""Scope-aware static analysis for the CFS coroutine DES.

A multi-pass analyzer over a real C++ token stream (lexer.py), a
brace/scope tracker and function-body walker (scopes.py) — no libclang.
It supersedes the regex lint (tools/lint.py is now a shim over rules.py)
and adds the suspension-point hazard checks a cooperative-coroutine
codebase needs (checks.py):

  A1  reference/iterator/pointer into a mutable container held live
      across a suspension point (co_await, or capture into a deferred
      Schedule/After callback);
  A2  deferred-event or coroutine lambdas capturing `this` / stack
      locals by reference without a lifetime guard;
  A3  nondeterminism the regexes cannot see: pointer-keyed ordered
      containers, pointer values laundered into integers, float
      accumulation across container iteration;
  A4  Status/Result discards laundered past [[nodiscard]]: dead Status
      locals and statement-level ternary/comma discards.

Plus the ported line rules R1-R6 (rules.py), now token-based so comments
and string literals no longer false-positive, with the same
`lint:allow(<rule>)` escape hatch.  A-checks use `analyze:allow(<check>)`.

Baseline workflow (engine.py): findings are fingerprinted by
(file, check, function, symbol) — stable across unrelated edits — and
compared against tools/analyze/baseline.json.  CI fails on any finding
not in the baseline AND on any baseline entry that no longer fires
(stale).  The A1/A2 baseline is empty by policy: real lifetime findings
get fixed, provably-safe patterns get an in-code allow with a
justification comment, visible in review.

See DESIGN.md "Static analysis" for the full catalog and policy.
"""

__all__ = ["lexer", "scopes", "checks", "rules", "engine"]
