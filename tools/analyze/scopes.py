"""Brace/scope tracking and function-body extraction over the token stream.

The unit the checks operate on is a FunctionBody: the token range of one
function (or lambda) body together with what the checks need to reason
about lifetimes without a real type system:

  * params: name -> ParamInfo(by_ref) — a reference/pointer parameter
    aliases state owned elsewhere; a by-value param is frame-local.
  * locals_: names declared inside the body (frame-local by default).
  * is_coroutine: body contains co_await / co_return / co_yield.
  * lambdas: nested LambdaInfo (capture list, body range, coroutine-ness,
    whether it is immediately invoked, and the call it is an argument of).

Function detection is the classic lightweight heuristic: a `{` whose
backward context is `) [const|noexcept|override|final|mutable|-> type|
: init-list]*` is a function body; the name is the identifier before the
matching `(`.  Lambdas are `] (params) ... {` or `] {`.  Class/namespace
braces never match because they are not preceded by a parameter list.
Control-flow parens (`if (...) {`) are excluded by keyword check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import lexer
from .lexer import IDENT, PUNCT, Token

_CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return",
                     "co_return", "co_await", "co_yield", "sizeof", "alignof",
                     "decltype", "static_assert", "new", "delete", "throw",
                     "else", "do", "case", "default"}

_TRAILING_OK = {"const", "noexcept", "override", "final", "mutable", "try",
                "constexpr", "requires"}


@dataclass
class ParamInfo:
    name: str
    by_ref: bool  # reference or pointer: aliases non-frame state


@dataclass
class LambdaInfo:
    captures: List[str]          # raw capture tokens: "&", "=", "this", names
    has_ref_capture: bool
    has_this_capture: bool
    body_start: int              # token index of `{`
    body_end: int                # token index one past matching `}`
    is_coroutine: bool
    immediately_invoked: bool    # `}( ... )` right after the body
    enclosing_call: str          # nearest call the lambda is an argument of
    line: int


@dataclass
class FunctionBody:
    name: str
    line: int
    body_start: int              # token index of `{`
    body_end: int                # one past matching `}`
    params: Dict[str, ParamInfo] = field(default_factory=dict)
    is_coroutine: bool = False
    is_lambda: bool = False
    lambdas: List[LambdaInfo] = field(default_factory=list)


def match_brace(tokens: List[Token], open_idx: int) -> int:
    """Index one past the `}` matching the `{` at open_idx."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
    return len(tokens)


def match_paren_back(tokens: List[Token], close_idx: int) -> int:
    """Index of the `(` matching the `)` at close_idx (searching backward)."""
    depth = 0
    for i in range(close_idx, -1, -1):
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                depth -= 1
                if depth == 0:
                    return i
    return -1


def match_paren(tokens: List[Token], open_idx: int) -> int:
    """Index of the `)` matching the `(` at open_idx."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return i
    return len(tokens) - 1


def _parse_params(tokens: List[Token], open_paren: int,
                  close_paren: int) -> Dict[str, ParamInfo]:
    """Best-effort parameter extraction: the last identifier of each
    comma-separated chunk is the name; `&`/`*` anywhere in the chunk's type
    marks it aliasing."""
    params: Dict[str, ParamInfo] = {}
    depth = 0
    chunk: List[Token] = []

    def flush(chunk: List[Token]) -> None:
        if not chunk:
            return
        # Drop default argument.
        for k, t in enumerate(chunk):
            if t.kind == PUNCT and t.text == "=":
                chunk = chunk[:k]
                break
        name = None
        for t in reversed(chunk):
            if t.kind == IDENT and t.text not in ("const", "override"):
                name = t.text
                break
        if name is None:
            return
        by_ref = any(t.kind == PUNCT and t.text in ("&", "*", "&&")
                     for t in chunk)
        params[name] = ParamInfo(name, by_ref)

    for i in range(open_paren + 1, close_paren):
        t = tokens[i]
        if t.kind == PUNCT and t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.kind == PUNCT and t.text in (")", ">", "]", "}"):
            depth -= 1
        elif t.kind == PUNCT and t.text == ">>":
            depth -= 2  # the lexer folds two template closers into one token
        if t.kind == PUNCT and t.text == "," and depth <= 0:
            flush(chunk)
            chunk = []
        else:
            chunk.append(t)
    flush(chunk)
    return params


def _find_lambda_intro(tokens: List[Token], brace_idx: int):
    """If the `{` at brace_idx is a lambda body, return (capture_tokens,
    open_paren, close_paren|None). The backward shape is
    `] (params) specifiers* [-> type] {` or `] {`."""
    i = brace_idx - 1
    # Skip trailing return type / specifiers backwards until `)` or `]`.
    guard = 0
    while i >= 0 and guard < 64:
        t = tokens[i]
        if t.kind == PUNCT and t.text == ")":
            open_paren = match_paren_back(tokens, i)
            if open_paren <= 0:
                return None
            j = open_paren - 1
            if j >= 0 and tokens[j].kind == PUNCT and tokens[j].text == "]":
                caps = _captures_back(tokens, j)
                if caps is not None:
                    return caps, open_paren, i
            return None
        if t.kind == PUNCT and t.text == "]":
            caps = _captures_back(tokens, i)
            if caps is not None:
                return caps, None, None
            return None
        if (t.kind == IDENT and t.text in _TRAILING_OK) or \
           (t.kind == IDENT) or \
           (t.kind == PUNCT and t.text in ("->", "::", "<", ">", "*", "&", ",")):
            i -= 1
            guard += 1
            continue
        return None
    return None


def _captures_back(tokens: List[Token], close_idx: int) -> Optional[List[Token]]:
    """Capture tokens inside a `[...]` ending at close_idx, or None if the
    bracket is a subscript (preceded by ident/`)`/`]`)."""
    depth = 0
    open_idx = -1
    for i in range(close_idx, -1, -1):
        t = tokens[i]
        if t.kind == PUNCT:
            if t.text == "]":
                depth += 1
            elif t.text == "[":
                depth -= 1
                if depth == 0:
                    open_idx = i
                    break
    if open_idx < 0:
        return None
    if open_idx > 0:
        prev = tokens[open_idx - 1]
        if prev.kind in (IDENT, lexer.NUMBER) and prev.text not in (
                "return", "co_return", "co_await", "case", "delete", "new"):
            return None  # subscript, not a capture list
        if prev.kind == PUNCT and prev.text in (")", "]"):
            return None
    return tokens[open_idx + 1 : close_idx]


def nested_lambda_ranges(tokens: List[Token], start: int, end: int):
    """Body ranges [s, e) of lambdas nested inside (start, end)."""
    out = []
    k = start + 1
    while k < end:
        t = tokens[k]
        if t.kind == PUNCT and t.text == "{" \
                and _find_lambda_intro(tokens, k) is not None:
            close = match_brace(tokens, k)
            out.append((k, close))
            k = close
            continue
        k += 1
    return out


def _coroutine_in(tokens: List[Token], start: int, end: int) -> bool:
    """True when THIS body has coroutine keywords of its own — co_* tokens
    inside nested lambda bodies belong to other coroutine frames."""
    nested = nested_lambda_ranges(tokens, start, end)
    for k in range(start, end):
        t = tokens[k]
        if t.kind == IDENT and t.text in ("co_await", "co_return", "co_yield") \
                and not any(s <= k < e for s, e in nested):
            return True
    return False


def extract_functions(lf: lexer.LexedFile) -> List[FunctionBody]:
    """All function and lambda bodies in the file (top-level functions carry
    their nested lambdas in .lambdas; lambdas are also returned as
    FunctionBody entries so checks can analyze their bodies uniformly)."""
    tokens = lf.tokens
    out: List[FunctionBody] = []
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i]
        if not (t.kind == PUNCT and t.text == "{"):
            i += 1
            continue
        info = _classify_brace(tokens, i)
        if info is None:
            i += 1
            continue
        name, open_paren, close_paren, is_lambda, caps = info
        body_end = match_brace(tokens, i)
        fb = FunctionBody(name=name, line=t.line, body_start=i,
                          body_end=body_end, is_lambda=is_lambda)
        if open_paren is not None and close_paren is not None:
            fb.params = _parse_params(tokens, open_paren, close_paren)
        fb.is_coroutine = _coroutine_in(tokens, i, body_end)
        if is_lambda:
            fb.name = name or "<lambda>"
        out.append(fb)
        if not is_lambda:
            fb.lambdas = _collect_lambdas(tokens, i + 1, body_end)
        i += 1  # descend: nested lambdas are found by the same loop
    return out


def _classify_brace(tokens: List[Token], brace_idx: int):
    """Decide whether the `{` at brace_idx opens a function or lambda body.
    Returns (name, open_paren, close_paren, is_lambda, captures) or None."""
    lam = _find_lambda_intro(tokens, brace_idx)
    if lam is not None:
        caps, open_paren, close_paren = lam
        return "<lambda>", open_paren, close_paren, True, caps
    # Walk back over trailing bits to the closing `)` of a parameter list.
    i = brace_idx - 1
    seen_colon_init = False
    guard = 0
    while i >= 0 and guard < 256:
        guard += 1
        t = tokens[i]
        if t.kind == PUNCT and t.text == ")":
            open_paren = match_paren_back(tokens, i)
            if open_paren <= 0:
                return None
            # The identifier before `(` is the candidate function name.
            j = open_paren - 1
            # Skip template args: name<...>(
            if tokens[j].kind == PUNCT and tokens[j].text == ">":
                depth = 0
                while j >= 0:
                    if tokens[j].kind == PUNCT and tokens[j].text == ">":
                        depth += 1
                    elif tokens[j].kind == PUNCT and tokens[j].text == "<":
                        depth -= 1
                        if depth == 0:
                            j -= 1
                            break
                    j -= 1
            if j < 0 or tokens[j].kind != IDENT:
                return None
            name = tokens[j].text
            if name in _CONTROL_KEYWORDS:
                return None
            # Operator overloads: `operator==` lexes as ident `operator` +
            # punct; tokens[j] is then not ident — handled above. `operator()`
            # gives ident `operator`; accept it.
            if seen_colon_init:
                # ctor initializer list confirmed this is a function.
                return name, open_paren, i, False, None
            return name, open_paren, i, False, None
        if t.kind == IDENT and (t.text in _TRAILING_OK):
            i -= 1
            continue
        if t.kind == PUNCT and t.text in ("->", "::", "<", ">", "*", "&", ",",
                                          ")", "(", "]", "["):
            # Trailing return types / ctor init lists contain these; walk a
            # ctor init list back to its `:` then keep going.
            if t.text in (")", "]"):
                # Balance backward over one group.
                close = i
                opener = "(" if t.text == ")" else "["
                closer = t.text
                depth = 0
                while i >= 0:
                    tt = tokens[i]
                    if tt.kind == PUNCT and tt.text == closer:
                        depth += 1
                    elif tt.kind == PUNCT and tt.text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    i -= 1
                if i < 0:
                    return None
                i -= 1
                continue
            i -= 1
            continue
        if t.kind == IDENT or t.kind == lexer.NUMBER or t.kind == lexer.STRING:
            i -= 1
            continue
        if t.kind == PUNCT and t.text == ":":
            # Could be a ctor initializer list; keep walking back.
            seen_colon_init = True
            i -= 1
            continue
        if t.kind == PUNCT and t.text == "{":
            # Brace-init inside an initializer list: Foo() : m_{x} { ... }
            return None
        return None
    return None


def _collect_lambdas(tokens: List[Token], start: int, end: int) -> List[LambdaInfo]:
    out: List[LambdaInfo] = []
    i = start
    while i < end:
        t = tokens[i]
        if t.kind == PUNCT and t.text == "{":
            lam = _find_lambda_intro(tokens, i)
            if lam is not None:
                caps, open_paren, close_paren = lam
                body_end = match_brace(tokens, i)
                cap_texts = [c.text for c in caps]
                has_ref = any(c == "&" for c in cap_texts) or _has_named_ref(caps)
                has_this = "this" in cap_texts
                imm = (body_end < end and tokens[body_end].kind == PUNCT
                       and tokens[body_end].text == "(")
                out.append(LambdaInfo(
                    captures=cap_texts,
                    has_ref_capture=has_ref,
                    has_this_capture=has_this,
                    body_start=i,
                    body_end=body_end,
                    is_coroutine=_coroutine_in(tokens, i, body_end),
                    immediately_invoked=imm,
                    enclosing_call=_enclosing_call_name(tokens, i),
                    line=t.line,
                ))
        i += 1
    return out


def _has_named_ref(caps: List[Token]) -> bool:
    """`[&x]` / `[&, y]`-style: a `&` immediately before an identifier, not
    part of an init-capture value (`[p = &obj]` is by-value)."""
    for k, c in enumerate(caps):
        if c.kind == PUNCT and c.text == "&":
            # `&` at list level binds by reference unless preceded by `=`.
            prev = caps[k - 1] if k > 0 else None
            if prev is not None and prev.kind == PUNCT and prev.text == "=":
                continue
            return True
    return False


def _enclosing_call_name(tokens: List[Token], lambda_brace: int) -> str:
    """Name of the call the lambda is a direct argument of: walk back from
    the lambda intro to an unbalanced `(` and take the identifier before it."""
    # Find the start of the lambda expression (its `[`).
    i = lambda_brace
    # Walk back over (params) / specifiers to the capture `]` then `[`.
    depth = 0
    while i >= 0:
        t = tokens[i]
        if t.kind == PUNCT and t.text == "[" and depth == 0:
            break
        if t.kind == PUNCT:
            if t.text in (")", "]", "}"):
                depth += 1
            elif t.text in ("(", "[", "{"):
                depth -= 1
        i -= 1
    # Now walk back to an unbalanced `(`.
    depth = 0
    j = i - 1
    while j >= 0:
        t = tokens[j]
        if t.kind == PUNCT:
            if t.text == ")":
                depth += 1
            elif t.text == "(":
                if depth == 0:
                    k = j - 1
                    if k >= 0 and tokens[k].kind == IDENT:
                        return tokens[k].text
                    return ""
                depth -= 1
            elif t.text in (";", "{", "}"):
                return ""
        j -= 1
    return ""
