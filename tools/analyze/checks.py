"""Suspension-point and determinism hazard checks (A1-A4).

All checks operate on the lexed token stream plus the function bodies
from scopes.py.  They deliberately have no type system; lifetime
reasoning uses the conventions this codebase actually follows:

  * frame-local state (by-value params, locals) is safe to hold across a
    suspension point — the coroutine frame owns it and the simulator is
    single-threaded;
  * anything reached through `this`, a reference/pointer parameter, a
    `_`-suffixed member, or an unknown name aliases state other
    coroutines can mutate between resumptions — iterators, element
    references and interior pointers into such containers must not be
    live across `co_await`;
  * deferred-event lambdas (Scheduler::After / At / ScheduleAt /
    ScheduleAfter) outlive the enclosing frame: they may capture only
    by value (a shared_ptr copy is the sanctioned lifetime guard),
    never `this` or stack locals by reference;
  * a coroutine lambda's captures live in the lambda OBJECT, not the
    coroutine frame — an immediately-invoked capturing coroutine lambda
    dangles at its first suspension, and by-ref captures dangle whenever
    the spawned task outlives the enclosing scope.  State is passed as
    explicit parameters instead (see sim/task.h conventions).

A finding line may opt out with `// analyze:allow(<check>)` naming the
check (e.g. `// analyze:allow(A1)`), for patterns that are provably safe
— immutable containers, registries that are never iterated — with the
justification in an adjacent comment, visible in review.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from . import lexer, scopes
from .findings import Finding
from .lexer import IDENT, NUMBER, PUNCT, Token

ITERATOR_METHODS = {"find", "begin", "end", "lower_bound", "upper_bound",
                    "rbegin", "rend", "cbegin", "cend"}
ELEMENT_METHODS = {"front", "back", "at"}
DEFERRAL_CALLS = {"After", "At", "ScheduleAt", "ScheduleAfter"}
SUSPEND_KEYWORDS = {"co_await", "co_yield"}
FLOAT_TYPES = {"float", "double"}
PTRINT_TYPES = {"uintptr_t", "intptr_t", "size_t", "ptrdiff_t",
                "uint64_t", "uint32_t", "unsigned"}
ORDERED_CONTAINERS = {"map", "set", "multimap", "multiset",
                      "FlatMap", "FlatSet"}
# Types whose instances live in a recycling slab: a raw pointer to one is a
# loan from the pool, invalidated (payload destroyed, node reused) as soon as
# anything frees it — which can happen while this coroutine is suspended.
# Unlike plain `T*` locals (a pointer VALUE copy, exempt from A1), holding one
# of these across a co_await is a use-after-recycle hazard.
POOLED_TYPES = {"Envelope"}


def _brace_depths(tokens: List[Token], start: int, end: int) -> List[int]:
    """Brace depth per token index within [start, end), relative to start."""
    depths = [0] * (end - start)
    d = 0
    for k in range(start, end):
        t = tokens[k]
        if t.kind == PUNCT and t.text == "{":
            depths[k - start] = d
            d += 1
        elif t.kind == PUNCT and t.text == "}":
            d -= 1
            depths[k - start] = d
        else:
            depths[k - start] = d
    return depths


class FunctionAnalysis:
    """Frame-locality bookkeeping for one function body."""

    def __init__(self, lf: lexer.LexedFile, fb: scopes.FunctionBody):
        self.lf = lf
        self.fb = fb
        self.tokens = lf.tokens
        self.start = fb.body_start
        self.end = fb.body_end
        self.depths = _brace_depths(self.tokens, self.start, self.end)
        # By-value params are frame-local roots; aliasing params are not.
        self.local_roots: Set[str] = {
            p.name for p in fb.params.values() if not p.by_ref}
        self.alias_roots: Set[str] = {
            p.name for p in fb.params.values() if p.by_ref}
        self.tainted: Set[str] = set()      # locals holding interior pointers
        # Suspension points of THIS frame: co_await/co_yield outside nested
        # lambda bodies (those belong to other coroutine frames), and outside
        # co_return statements (control never flows past a co_return, so
        # nothing this frame holds is re-dereferenced afterwards).
        self._lambda_ranges = _nested_lambda_ranges(
            self.tokens, self.start + 1, self.end - 1)
        self.suspends: List[int] = []
        self._stmt_end: Dict[int, int] = {}
        for k in range(self.start, self.end):
            t = self.tokens[k]
            if t.kind != IDENT or t.text not in SUSPEND_KEYWORDS:
                continue
            if any(s <= k < e for s, e in self._lambda_ranges):
                continue
            if self._in_co_return_stmt(k):
                continue
            self.suspends.append(k)
            self._stmt_end[k] = self._find_stmt_end(k)
        self._scan_locals()

    def _in_co_return_stmt(self, idx: int) -> bool:
        for k in range(idx - 1, max(self.start, idx - 64), -1):
            t = self.tokens[k]
            if t.kind == IDENT and t.text == "co_return":
                return True
            if t.kind == PUNCT and t.text in (";", "{", "}"):
                return False
        return False

    def _find_stmt_end(self, idx: int) -> int:
        """Token index where the statement containing the suspension ends:
        argument-building uses before this point happen BEFORE the frame
        suspends; only uses after it see post-resumption state."""
        depth = 0
        for k in range(idx + 1, self.end):
            t = self.tokens[k]
            if t.kind == PUNCT:
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                elif t.text == ";" and depth <= 0:
                    return k
                elif t.text == "{" and depth <= 0:
                    # `if (co_await ...) { ... }`: the block runs resumed.
                    return k
        return self.end

    def stmt_end(self, suspend_idx: int) -> int:
        return self._stmt_end.get(suspend_idx, suspend_idx)

    def depth_at(self, idx: int) -> int:
        return self.depths[idx - self.start]

    def scope_end(self, idx: int) -> int:
        """First token index after idx where the brace depth drops below the
        depth at idx (i.e. the end of the enclosing block)."""
        d = self.depth_at(idx)
        for k in range(idx + 1, self.end):
            if self.depth_at(k) < d:
                return k
        return self.end

    def suspends_between(self, a: int, b: int) -> bool:
        return any(a < s < b for s in self.suspends)

    def _scan_locals(self) -> None:
        """Collect frame-local declaration names: `Type name =/;/(/{`,
        `vector<T> name`, `auto name =`.  A second forward pass classifies
        reference/pointer bindings: `auto& r = <frame-local expr>` is itself
        frame-local; bound to anything else it aliases."""
        toks = self.tokens
        k = self.start
        while k < self.end - 2:
            t = toks[k]
            is_type_tail = (t.kind == IDENT
                            and t.text not in scopes._CONTROL_KEYWORDS) or \
                           (t.kind == PUNCT and t.text in (">", ">>"))
            if is_type_tail:
                nxt = toks[k + 1]
                # `Type name`, `Tmpl<...> name`, `auto name`.
                if nxt.kind == IDENT and k + 2 < self.end:
                    after = toks[k + 2]
                    if after.kind == PUNCT and after.text in ("=", ";", "{", "(", ","):
                        prev = toks[k - 1]
                        # Reject member access and casts: `.name x`, `->name x`.
                        if not (prev.kind == PUNCT and prev.text in (".", "->")):
                            if after.text != "(" or _looks_like_ctor_args(toks, k + 2, self.end):
                                self.local_roots.add(nxt.text)
                            # Multi-declarator: `double a = 0, b = 0;`
                            if after.text in ("=", ","):
                                self._scan_declarator_list(k + 2, nxt.text)
            k += 1
        # Forward pass, in token order: `&`/`*` declarator bindings and
        # range-for loop variables propagate the locality of what they bind.
        k = self.start
        while k < self.end - 3:
            t = toks[k]
            if t.kind == PUNCT and t.text in ("&", "*") \
                    and toks[k + 1].kind == IDENT \
                    and toks[k + 2].kind == PUNCT and toks[k + 2].text == "=" \
                    and toks[k - 1].kind == IDENT:
                name = toks[k + 1].text
                init, _ = _expr_until(toks, k + 3, self.end, (";",))
                # `T* p = vec[i]` copies the element (a pointer value) into
                # the frame: p itself cannot dangle when vec mutates.  Only
                # `T* p = &expr` and `T& r = expr` alias the storage.
                ptr_copy = t.text == "*" and not (
                    init and init[0].kind == PUNCT and init[0].text == "&")
                if ptr_copy or (init and self.root_is_local(init)):
                    self.alias_roots.discard(name)
                    self.local_roots.add(name)
                else:
                    self.local_roots.discard(name)
                    self.alias_roots.add(name)
            elif t.kind == IDENT and t.text == "for" \
                    and toks[k + 1].kind == PUNCT and toks[k + 1].text == "(":
                close = scopes.match_paren(toks, k + 1)
                colon = _range_for_colon(toks, k + 1, close)
                if colon is not None:
                    expr = toks[colon + 1 : close]
                    decl = toks[k + 2 : colon]
                    names = _loop_var_names(decl)
                    by_ref = any(d.kind == PUNCT and d.text in ("&", "*")
                                 for d in decl)
                    ends_call = bool(expr) and expr[-1].kind == PUNCT \
                        and expr[-1].text == ")"
                    # A by-value loop var copies the element; a by-ref var
                    # over frame-local storage stays local; a by-ref var over
                    # anything else (incl. accessor call results, which may
                    # return references to members) aliases.
                    local = (not by_ref) or \
                        (self.root_is_local(expr) and not ends_call)
                    # Reclassification is last-wins: a name reused across
                    # sibling loops (builder loop by-ref over a member map,
                    # then a worker loop by-ref over the local snapshot)
                    # takes its most recent binding.
                    for name in names:
                        if local:
                            self.alias_roots.discard(name)
                            self.local_roots.add(name)
                        else:
                            self.local_roots.discard(name)
                            self.alias_roots.add(name)
            k += 1

    def _scan_declarator_list(self, eq_idx: int, first: str) -> None:
        toks = self.tokens
        depth = 0
        k = eq_idx
        while k < self.end:
            t = toks[k]
            if t.kind == PUNCT:
                if t.text in ("(", "[", "{"):
                    depth += 1
                elif t.text in (")", "]", "}"):
                    if depth == 0:
                        return
                    depth -= 1
                elif t.text == ";" and depth == 0:
                    return
                elif t.text == "," and depth == 0:
                    if k + 1 < self.end and toks[k + 1].kind == IDENT:
                        self.local_roots.add(toks[k + 1].text)
            k += 1

    # --- expression classification ---

    def root_is_local(self, expr: List[Token]) -> bool:
        """True when the expression is rooted in frame-local state."""
        # Strip leading punctuation that doesn't change the root.
        i = 0
        while i < len(expr) and expr[i].kind == PUNCT and expr[i].text in ("(", "*", "&"):
            i += 1
        if i >= len(expr):
            return False
        t = expr[i]
        if t.kind != IDENT:
            return False
        if t.text == "this":
            return False
        if t.text in ("std",):  # std::move(x) etc: recurse into the args
            return self.root_is_local(expr[i + 2:]) if len(expr) > i + 2 else False
        name = t.text
        # A call `name(...)` is not a frame-local root (returns a view into
        # something unless it's a by-value temp — callers special-case temps).
        if i + 1 < len(expr) and expr[i + 1].kind == PUNCT and expr[i + 1].text == "(":
            return False
        if name in self.tainted:
            return False
        if name in self.alias_roots:
            return False
        if name in self.local_roots:
            return True
        if name.endswith("_"):  # member naming convention
            return False
        return False  # unknown: conservative


def _nested_lambda_ranges(tokens: List[Token], start: int,
                          end: int) -> List[Tuple[int, int]]:
    """Body ranges of lambdas nested inside [start, end): their co_awaits
    suspend OTHER frames, not the enclosing one."""
    out: List[Tuple[int, int]] = []
    k = start
    while k < end:
        t = tokens[k]
        if t.kind == PUNCT and t.text == "{" \
                and scopes._find_lambda_intro(tokens, k) is not None:
            close = scopes.match_brace(tokens, k)
            out.append((k, close))
            k = close
            continue
        k += 1
    return out


def _loop_var_names(decl: List[Token]) -> List[str]:
    """Loop variable name(s) of a range-for declaration, including
    structured bindings `auto& [a, b]`."""
    for j, d in enumerate(decl):
        if d.kind == PUNCT and d.text == "[":
            return [x.text for x in decl[j + 1 :] if x.kind == IDENT]
    for d in reversed(decl):
        if d.kind == IDENT and d.text not in ("const", "auto"):
            return [d.text]
        if d.kind == IDENT:
            break
    return []


def _looks_like_ctor_args(tokens: List[Token], paren_idx: int, end: int) -> bool:
    """Distinguish `Type name(args);` (a declaration) from a function
    declaration `Type name(Type arg)`. Heuristic: ctor args rarely contain
    two consecutive identifiers (type + name)."""
    close = scopes.match_paren(tokens, paren_idx)
    if close >= end:
        return False
    k = paren_idx + 1
    while k < close - 1:
        if tokens[k].kind == IDENT and tokens[k + 1].kind == IDENT:
            return False
        k += 1
    return True


def _expr_until(tokens: List[Token], start: int, end: int,
                stops: Tuple[str, ...]) -> Tuple[List[Token], int]:
    """Tokens from start until a stop punct at paren/bracket depth 0."""
    out: List[Token] = []
    depth = 0
    k = start
    while k < end:
        t = tokens[k]
        if t.kind == PUNCT:
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                if depth == 0 and t.text in stops:
                    return out, k
                depth = max(0, depth - 1)
            elif depth == 0 and t.text in stops:
                return out, k
        out.append(t)
        k += 1
    return out, k


# --------------------------------------------------------------------------
# A1: references / iterators / interior pointers across a suspension point.
# --------------------------------------------------------------------------

def check_a1(lf: lexer.LexedFile, functions: List[scopes.FunctionBody],
             path: str) -> List[Finding]:
    out: List[Finding] = []
    for fb in functions:
        if not fb.is_coroutine:
            continue
        fa = FunctionAnalysis(lf, fb)
        _a1_taint_interior_pointer_vectors(fa)
        out += _a1_range_for(fa, path)
        out += _a1_bindings(fa, path)
    return out


def _a1_range_for(fa: FunctionAnalysis, path: str) -> List[Finding]:
    """Range-for over a non-frame-local container with a suspension point in
    the loop body: the hidden iterator is re-dereferenced after resumption,
    after arbitrary code may have mutated the container."""
    out: List[Finding] = []
    toks, k = fa.tokens, fa.start
    while k < fa.end:
        t = toks[k]
        if t.kind == IDENT and t.text == "for" and k + 1 < fa.end \
                and toks[k + 1].kind == PUNCT and toks[k + 1].text == "(":
            close = scopes.match_paren(toks, k + 1)
            colon = _range_for_colon(toks, k + 1, close)
            if colon is not None:
                expr = toks[colon + 1 : close]
                body_start = close + 1
                if body_start < fa.end and toks[body_start].kind == PUNCT \
                        and toks[body_start].text == "{":
                    body_end = scopes.match_brace(toks, body_start)
                else:
                    _, semi = _expr_until(toks, body_start, fa.end, (";",))
                    body_end = semi
                has_suspend = any(body_start <= s < body_end for s in fa.suspends)
                ends_in_call = bool(expr) and expr[-1].kind == PUNCT and expr[-1].text == ")"
                if has_suspend and expr and not ends_in_call \
                        and not fa.root_is_local(expr):
                    cname = "".join(e.text for e in expr)
                    tainted = len(expr) == 1 and expr[0].text in fa.tainted
                    why = ("holds interior pointers into a non-local container"
                           if tainted else "is not owned by this coroutine frame")
                    out.append(Finding(
                        path, t.line, "A1", "A1.range-for",
                        f"range-for over `{cname}` {why} and the loop body "
                        "suspends (co_await): the hidden iterator is "
                        "re-dereferenced after resumption, when the container "
                        "may have been mutated. Snapshot the elements by value "
                        "before the loop, or restructure so no suspension "
                        "happens while iterating.",
                        function=fa.fb.name, symbol=cname))
        k += 1
    return out


def _range_for_colon(tokens: List[Token], open_paren: int,
                     close_paren: int) -> Optional[int]:
    depth = 0
    for k in range(open_paren + 1, close_paren):
        t = tokens[k]
        if t.kind == PUNCT:
            if t.text in ("(", "[", "{", "<"):
                depth += 1
            elif t.text in (")", "]", "}", ">"):
                depth -= 1
            elif t.text == ";" and depth == 0:
                return None  # classic for
            elif t.text == ":" and depth == 0:
                return k
    return None


def _a1_bindings(fa: FunctionAnalysis, path: str) -> List[Finding]:
    """Iterator / element-reference bindings used after a later co_await."""
    out: List[Finding] = []
    toks = fa.tokens
    # Collect bindings: name -> list of (bind_idx, kind, container_repr).
    bindings: List[Tuple[str, int, str, str]] = []
    iterator_vars: Dict[str, str] = {}
    k = fa.start
    while k < fa.end - 1:
        t = toks[k]
        if t.kind == PUNCT and t.text == "=" and k > fa.start:
            name_tok = toks[k - 1]
            if name_tok.kind == IDENT:
                init, _ = _expr_until(toks, k + 1, fa.end, (";",))
                kind, container = _classify_binding(fa, toks, k - 1, init,
                                                    iterator_vars)
                if kind is not None:
                    bindings.append((name_tok.text, k, kind, container))
                    if kind == "iterator":
                        iterator_vars[name_tok.text] = container
        k += 1
    # Liveness: for each binding, any use after an intervening suspension —
    # within the binding's scope and before the next rebinding of the name —
    # is a finding.
    by_name: Dict[str, List[Tuple[int, str, str]]] = {}
    for name, idx, kind, container in bindings:
        by_name.setdefault(name, []).append((idx, kind, container))
    for name, binds in by_name.items():
        binds.sort()
        for bi, (idx, kind, container) in enumerate(binds):
            live_end = fa.scope_end(idx)
            if bi + 1 < len(binds):
                live_end = min(live_end, binds[bi + 1][0] - 1)
            # A use only counts when it comes AFTER the end of the statement
            # containing a suspension: uses inside that statement build the
            # call arguments before the frame suspends.
            first_suspend = use = None
            for s in fa.suspends:
                if not idx < s < live_end:
                    continue
                u = next((u for u in range(fa.stmt_end(s) + 1, live_end)
                          if toks[u].kind == IDENT and toks[u].text == name),
                         None)
                if u is not None:
                    first_suspend, use = s, u
                    break
            if use is None:
                continue
            if kind == "pooled":
                msg = (
                    f"`{name}` points at pool-recycled `{container}` "
                    "storage, which is not owned by this coroutine frame, "
                    "and is used after a co_await at line "
                    f"{toks[first_suspend].line} (use at line "
                    f"{toks[use].line}): the pool can free and reuse the "
                    "node while suspended (payload destroyed, storage "
                    "handed to another message). Move the payload out by "
                    "value (EnvelopePool::Take) before suspending.")
            else:
                what = ("an iterator into" if kind == "iterator"
                        else "a reference/pointer to an element of")
                msg = (
                    f"`{name}` is {what} `{container}`, which is not owned "
                    "by this coroutine frame, and is used after a co_await "
                    f"at line {toks[first_suspend].line} (use at line "
                    f"{toks[use].line}): the container can be mutated while "
                    "suspended, invalidating it. Copy the element by value "
                    "before suspending, or re-look it up after resumption.")
            out.append(Finding(
                path, toks[idx].line, "A1", f"A1.{kind}",
                msg, function=fa.fb.name, symbol=name))
    return out


def _repr_expr(toks: List[Token]) -> str:
    s = "".join(t.text for t in toks)
    return s if len(s) <= 48 else s[:45] + "..."


def _classify_binding(fa: FunctionAnalysis, toks: List[Token], name_idx: int,
                      init: List[Token],
                      iterator_vars: Dict[str, str]):
    """(kind, container) for A1-relevant bindings, else (None, "").
    iterator_vars maps already-seen iterator names to their container."""
    if not init:
        return None, ""
    # Lambda initializers are their own world; nested bindings are analyzed
    # when the lambda body itself is walked.
    if init[0].kind == PUNCT and init[0].text == "[":
        return None, ""
    # Pool-recycled types: `Envelope* e = ...` is a loan from the slab, not a
    # plain pointer-value copy — the pointee is destroyed/reused on Free().
    if name_idx >= 2 and toks[name_idx - 1].kind == PUNCT \
            and toks[name_idx - 1].text == "*" \
            and toks[name_idx - 2].kind == IDENT \
            and toks[name_idx - 2].text in POOLED_TYPES:
        return "pooled", toks[name_idx - 2].text
    # Iterator-yielding member call spanning the WHOLE initializer:
    # `<base> .|-> method ( ... )` — a method result buried inside a larger
    # expression (static_cast<int>(std::max_element(v.begin(), ...))) does
    # not bind an iterator.
    for j in range(len(init) - 3):
        if init[j].kind == PUNCT and init[j].text in (".", "->") \
                and init[j + 1].kind == IDENT \
                and init[j + 1].text in ITERATOR_METHODS \
                and init[j + 2].kind == PUNCT and init[j + 2].text == "(":
            depth = 0
            close = -1
            for m in range(j + 2, len(init)):
                if init[m].kind == PUNCT:
                    if init[m].text == "(":
                        depth += 1
                    elif init[m].text == ")":
                        depth -= 1
                        if depth == 0:
                            close = m
                            break
            if close == len(init) - 1:
                base = init[:j]
                if not fa.root_is_local(base):
                    return "iterator", _repr_expr(base)
            return None, ""
    # Reference / pointer element bindings: `&` declarator, or an address-of
    # initializer.  A `*` declarator WITHOUT `&init` copies the element (a
    # pointer value) and cannot dangle when the container mutates.
    is_ref_decl = name_idx >= 1 and toks[name_idx - 1].kind == PUNCT \
        and toks[name_idx - 1].text == "&"
    addr_of = init[0].kind == PUNCT and init[0].text == "&"
    if not (is_ref_decl or addr_of):
        return None, ""
    body = init[1:] if addr_of else init
    if not body:
        return None, ""
    # Element access forms: X[..], X.front()/back()/at(..), *it, it->...
    if body[0].kind == PUNCT and body[0].text == "*" and len(body) > 1:
        if body[1].kind == IDENT and body[1].text in iterator_vars:
            return "element-ref", iterator_vars[body[1].text]
        # `T& r = *container[i]` dereferences the ELEMENT (a pointer): the
        # ref binds the pointee, whose storage doesn't move with the
        # container.
        return None, ""
    if body[0].kind == IDENT and body[0].text in iterator_vars:
        return "element-ref", iterator_vars[body[0].text]
    for j in range(len(body) - 1):
        if body[j].kind == PUNCT and body[j].text == "[":
            base = body[:j]
            if base and not fa.root_is_local(base):
                return "element-ref", _repr_expr(base)
            return None, ""
        if body[j].kind == PUNCT and body[j].text in (".", "->") \
                and j + 1 < len(body) and body[j + 1].kind == IDENT \
                and body[j + 1].text in ELEMENT_METHODS:
            base = body[:j]
            if base and not fa.root_is_local(base):
                return "element-ref", _repr_expr(base)
            return None, ""
    return None, ""


def _a1_taint_interior_pointer_vectors(fa: FunctionAnalysis) -> None:
    """Mark locals that collect `&element` pointers into non-local containers
    (`keys.push_back(&k)` where `k` ranges over a member container): a later
    range-for over the tainted local that suspends is as dangerous as
    iterating the original container."""
    toks = fa.tokens
    # First: loop variables of range-fors over non-local containers alias.
    loop_aliases: Set[str] = set()
    k = fa.start
    while k < fa.end:
        t = toks[k]
        if t.kind == IDENT and t.text == "for" and k + 1 < fa.end \
                and toks[k + 1].kind == PUNCT and toks[k + 1].text == "(":
            close = scopes.match_paren(toks, k + 1)
            colon = _range_for_colon(toks, k + 1, close)
            if colon is not None:
                expr = toks[colon + 1 : close]
                decl = toks[k + 2 : colon]
                by_ref = any(d.kind == PUNCT and d.text in ("&", "*") for d in decl)
                if by_ref and expr and not fa.root_is_local(expr):
                    for d in reversed(decl):
                        if d.kind == IDENT:
                            loop_aliases.add(d.text)
                            break
        k += 1
    # Second: pushes of addresses of those aliases (or of non-local exprs).
    k = fa.start
    while k < fa.end - 5:
        t = toks[k]
        if t.kind == IDENT and k + 4 < fa.end \
                and toks[k + 1].kind == PUNCT and toks[k + 1].text == "." \
                and toks[k + 2].kind == IDENT \
                and toks[k + 2].text in ("push_back", "emplace_back") \
                and toks[k + 3].kind == PUNCT and toks[k + 3].text == "(" \
                and toks[k + 4].kind == PUNCT and toks[k + 4].text == "&":
            arg_start = k + 5
            close = scopes.match_paren(toks, k + 3)
            arg = toks[arg_start:close]
            if arg and arg[0].kind == IDENT:
                root = arg[0].text
                if root in loop_aliases or not fa.root_is_local(arg):
                    fa.tainted.add(t.text)
        k += 1


# --------------------------------------------------------------------------
# A2: deferred-event and coroutine lambda captures without a lifetime guard.
# --------------------------------------------------------------------------

def check_a2(lf: lexer.LexedFile, functions: List[scopes.FunctionBody],
             path: str) -> List[Finding]:
    out: List[Finding] = []
    seen: Set[int] = set()
    for fb in functions:
        for lam in fb.lambdas:
            if lam.body_start in seen:
                continue
            seen.add(lam.body_start)
            if lam.enclosing_call in DEFERRAL_CALLS and \
                    (lam.has_this_capture or lam.has_ref_capture):
                bad = "this" if lam.has_this_capture else "&"
                out.append(Finding(
                    path, lam.line, "A2", "A2.deferred-capture",
                    f"lambda deferred via {lam.enclosing_call}() captures "
                    f"`{bad}`: the event outlives this frame (and possibly "
                    "this object — crash schedules destroy components before "
                    "their timers fire). Capture a shared_ptr guard or plain "
                    "values instead.",
                    function=fb.name, symbol=f"{lam.enclosing_call}@{lam.line}"))
            elif lam.is_coroutine and lam.has_ref_capture:
                out.append(Finding(
                    path, lam.line, "A2", "A2.coro-ref-capture",
                    "coroutine lambda captures by reference: captures live in "
                    "the lambda OBJECT, not the coroutine frame, and by-ref "
                    "captures of stack locals dangle if the task outlives the "
                    "enclosing scope. Pass state as explicit coroutine "
                    "parameters instead (see sim/task.h conventions).",
                    function=fb.name, symbol=f"coro-lambda@{lam.line}"))
            elif lam.is_coroutine and lam.immediately_invoked and lam.captures:
                out.append(Finding(
                    path, lam.line, "A2", "A2.coro-capture-invoked",
                    "immediately-invoked coroutine lambda with captures: the "
                    "temporary lambda object (which owns the captures) dies "
                    "at the end of this full-expression, while the coroutine "
                    "may still be suspended — every later capture access is a "
                    "use-after-free. Pass state as explicit parameters.",
                    function=fb.name, symbol=f"coro-lambda@{lam.line}"))
    return out


# --------------------------------------------------------------------------
# A3: nondeterminism escapes — address-ordered keys, pointer->int, float
# accumulation over container iteration.
# --------------------------------------------------------------------------

def check_a3(lf: lexer.LexedFile, functions: List[scopes.FunctionBody],
             path: str) -> List[Finding]:
    out: List[Finding] = []
    toks = lf.tokens
    # Pointer-keyed ordered containers (and type_index, whose libstdc++
    # ordering compares type_info name POINTERS — address order in disguise).
    for k in range(len(toks) - 1):
        t = toks[k]
        if t.kind == IDENT and t.text in ORDERED_CONTAINERS \
                and toks[k + 1].kind == PUNCT and toks[k + 1].text == "<":
            key_toks = _first_template_arg(toks, k + 1)
            key = "".join(x.text for x in key_toks)
            bad = None
            if any(x.kind == PUNCT and x.text == "*" for x in key_toks):
                bad = "a pointer"
            elif any(x.kind == IDENT and x.text == "type_index" for x in key_toks):
                bad = "std::type_index (compares type_info name pointers)"
            if bad:
                out.append(Finding(
                    path, t.line, "A3", "A3.pointer-key",
                    f"ordered container keyed on {bad}: iteration order "
                    f"follows allocation addresses (`{key}`), which vary "
                    "across runs/ASLR — any iteration or ordered dump breaks "
                    "same-seed replay. Key on a stable id instead.",
                    function="", symbol=f"{t.text}<{key}>"))
    # Pointer laundered into an integer.
    for k in range(len(toks) - 2):
        t = toks[k]
        if t.kind == IDENT and t.text == "reinterpret_cast" \
                and toks[k + 1].kind == PUNCT and toks[k + 1].text == "<":
            arg = _first_template_arg(toks, k + 1, stop_at_comma=False)
            has_ptr = any(x.kind == PUNCT and x.text == "*" for x in arg)
            is_int = any(x.kind == IDENT and x.text in PTRINT_TYPES for x in arg)
            if is_int and not has_ptr:
                out.append(Finding(
                    path, t.line, "A3", "A3.pointer-to-int",
                    "reinterpret_cast of a pointer to an integer: the value "
                    "is an address, which differs across runs — using it in "
                    "hashes, ordering, or digests breaks same-seed replay.",
                    function="", symbol=f"reinterpret@{t.line}"))
    # Float accumulation across loop iteration.
    for fb in functions:
        out += _a3_float_accumulation(lf, fb, path)
    return out


def _first_template_arg(tokens: List[Token], open_angle: int,
                        stop_at_comma: bool = True) -> List[Token]:
    depth = 0
    out: List[Token] = []
    for k in range(open_angle, min(open_angle + 64, len(tokens))):
        t = tokens[k]
        if t.kind == PUNCT:
            if t.text in ("<", "(", "["):
                depth += 1
                if t.text == "<" and depth == 1:
                    continue
            elif t.text in (">", ")", "]"):
                depth -= 1
                if depth == 0:
                    return out
            elif t.text == "," and depth == 1 and stop_at_comma:
                return out
        out.append(t)
    return out


def _a3_float_accumulation(lf: lexer.LexedFile, fb: scopes.FunctionBody,
                           path: str) -> List[Finding]:
    toks = lf.tokens
    # Names declared float/double in this body.
    float_vars: Set[str] = set()
    k = fb.body_start
    while k < fb.body_end - 1:
        t = toks[k]
        if t.kind == IDENT and t.text in FLOAT_TYPES \
                and toks[k + 1].kind == IDENT:
            # Declarator list: double a = 0, b = 0;
            j = k + 1
            depth = 0
            expect_name = True
            while j < fb.body_end:
                tj = toks[j]
                if tj.kind == IDENT and expect_name:
                    float_vars.add(tj.text)
                    expect_name = False
                elif tj.kind == PUNCT:
                    if tj.text in ("(", "[", "{"):
                        depth += 1
                    elif tj.text in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif tj.text == "," and depth == 0:
                        expect_name = True
                    elif tj.text == ";" and depth == 0:
                        break
                j += 1
        k += 1
    if not float_vars:
        return []
    out: List[Finding] = []
    reported: Set[str] = set()
    for body_start, body_end in _loop_bodies(toks, fb.body_start, fb.body_end):
        for k in range(body_start, body_end - 1):
            t = toks[k]
            if t.kind == IDENT and t.text in float_vars \
                    and toks[k + 1].kind == PUNCT \
                    and toks[k + 1].text in ("+=", "-=") \
                    and t.text not in reported:
                reported.add(t.text)
                out.append(Finding(
                    path, t.line, "A3", "A3.float-accumulation",
                    f"floating-point accumulation into `{t.text}` across "
                    "loop iteration: FP addition is order-sensitive and "
                    "rounds differently across toolchains/FPUs, so decisions "
                    "made from the sum diverge between platforms. Accumulate "
                    "in integers (fixed-point) and compare exactly.",
                    function=fb.name, symbol=t.text))
    return out


def _loop_bodies(tokens: List[Token], start: int, end: int):
    """(body_start, body_end) of every for/while/do loop body in range."""
    k = start
    while k < end:
        t = tokens[k]
        if t.kind == IDENT and t.text in ("for", "while") and k + 1 < end \
                and tokens[k + 1].kind == PUNCT and tokens[k + 1].text == "(":
            close = scopes.match_paren(tokens, k + 1)
            body_start = close + 1
            if body_start < end and tokens[body_start].kind == PUNCT \
                    and tokens[body_start].text == "{":
                yield body_start, scopes.match_brace(tokens, body_start)
            else:
                _, semi = _expr_until(tokens, body_start, end, (";",))
                yield body_start, semi
        elif t.kind == IDENT and t.text == "do" and k + 1 < end \
                and tokens[k + 1].kind == PUNCT and tokens[k + 1].text == "{":
            yield k + 1, scopes.match_brace(tokens, k + 1)
        k += 1


# --------------------------------------------------------------------------
# A4: Status/Result discards the [[nodiscard]] + -Werror net cannot catch.
# --------------------------------------------------------------------------

def collect_status_functions(lf: lexer.LexedFile) -> Set[str]:
    """Names of functions declared to return Status or Result<...> in this
    file (the engine unions the per-file sets across the tree)."""
    toks = lf.tokens
    names: Set[str] = set()
    for k in range(len(toks) - 2):
        t = toks[k]
        if t.kind != IDENT or t.text not in ("Status", "Result"):
            continue
        j = k + 1
        if t.text == "Result":
            if not (toks[j].kind == PUNCT and toks[j].text == "<"):
                continue
            depth = 0
            while j < len(toks):
                if toks[j].kind == PUNCT and toks[j].text == "<":
                    depth += 1
                elif toks[j].kind == PUNCT and toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        if j + 1 < len(toks) and toks[j].kind == IDENT \
                and toks[j + 1].kind == PUNCT and toks[j + 1].text == "(":
            # Method definitions: Class::Name( — the preceding `::` does not
            # change the callable name we record.
            names.add(toks[j].text)
    return names


def check_a4(lf: lexer.LexedFile, functions: List[scopes.FunctionBody],
             path: str, status_fns: Set[str]) -> List[Finding]:
    out: List[Finding] = []
    toks = lf.tokens
    for fb in functions:
        if fb.is_lambda:
            continue
        fa = FunctionAnalysis(lf, fb)
        out += _a4_dead_status_locals(fa, path)
        out += _a4_laundered(fa, path, status_fns)
    return out


def _a4_dead_status_locals(fa: FunctionAnalysis, path: str) -> List[Finding]:
    """`Status st = <fallible>;` never read afterwards: -Wunused-but-set
    skips class types, so the compiler is silent and the error vanishes."""
    out: List[Finding] = []
    toks = fa.tokens
    k = fa.start
    while k < fa.end - 2:
        t = toks[k]
        if t.kind == IDENT and t.text == "Status" \
                and toks[k + 1].kind == IDENT \
                and toks[k + 2].kind == PUNCT and toks[k + 2].text == "=":
            prev = toks[k - 1]
            if prev.kind == PUNCT and prev.text in (".", "->", "::", "<", "("):
                k += 1
                continue  # qualified type use / template arg / param, not a decl
            name = toks[k + 1].text
            _, semi = _expr_until(toks, k + 3, fa.end, (";",))
            live_end = fa.scope_end(k + 1)
            used = any(toks[u].kind == IDENT and toks[u].text == name
                       for u in range(semi + 1, live_end))
            if not used:
                out.append(Finding(
                    path, t.line, "A4", "A4.dead-status",
                    f"`Status {name}` is assigned but never read: the error "
                    "is silently dropped, and -Wunused-but-set-variable does "
                    "not fire for class types. Check it, return it, or make "
                    "the discard explicit with (void).",
                    function=fa.fb.name, symbol=name))
        k += 1
    return out


def _a4_laundered(fa: FunctionAnalysis, path: str,
                  status_fns: Set[str]) -> List[Finding]:
    """Expression-statement ternaries and comma operators that discard a
    Status-returning call: [[nodiscard]] only fires on the full expression,
    and both launderings defeat it."""
    out: List[Finding] = []
    toks = fa.tokens
    for stmt_start, stmt_end in _statements(toks, fa.start, fa.end):
        stmt = toks[stmt_start:stmt_end]
        if not stmt:
            continue
        first = stmt[0]
        # Skip declarations / control flow / returns / assignments.
        if first.kind == IDENT and first.text in (
                "return", "co_return", "if", "for", "while", "switch", "do",
                "else", "case", "break", "continue", "auto", "const",
                "static", "using", "delete", "throw"):
            continue
        has_assign = any(x.kind == PUNCT and x.text == "=" for x in stmt)
        calls_status = _calls_status_fn(stmt, status_fns)
        if not calls_status or has_assign:
            continue
        # Explicit discards are sanctioned.
        text = "".join(x.text for x in stmt[:6])
        if text.startswith("(void)") or text.startswith("static_cast<void>"):
            continue
        depth = 0
        ternary = comma = False
        for x in stmt:
            if x.kind == PUNCT:
                if x.text in ("(", "[", "{"):
                    depth += 1
                elif x.text in (")", "]", "}"):
                    depth -= 1
                elif x.text == "?" and depth == 0:
                    ternary = True
                elif x.text == "," and depth == 0:
                    comma = True
        if ternary or comma:
            via = "ternary" if ternary else "comma operator"
            out.append(Finding(
                path, first.line, "A4", "A4.laundered-discard",
                f"Status-returning call discarded through a {via}: "
                "[[nodiscard]] applies to the full expression, so the "
                "compiler stays silent. Assign the result and check it, or "
                "discard each branch explicitly with (void).",
                function=fa.fb.name, symbol=f"stmt@{first.line}"))
    return out


def _statements(tokens: List[Token], start: int, end: int):
    """Top-level-ish statement ranges: token runs split on `;` at paren
    depth 0 (brace-nested blocks are traversed, their statements included)."""
    k = start + 1
    stmt_start = k
    depth = 0
    while k < end:
        t = tokens[k]
        if t.kind == PUNCT:
            if t.text in ("(", "["):
                depth += 1
            elif t.text in (")", "]"):
                depth = max(0, depth - 1)
            elif t.text in ("{", "}"):
                stmt_start = k + 1
            elif t.text == ";" and depth == 0:
                yield stmt_start, k
                stmt_start = k + 1
        k += 1


def _calls_status_fn(stmt: List[Token], status_fns: Set[str]) -> bool:
    for k in range(len(stmt) - 1):
        if stmt[k].kind == IDENT and stmt[k].text in status_fns \
                and stmt[k + 1].kind == PUNCT and stmt[k + 1].text == "(":
            return True
    return False
