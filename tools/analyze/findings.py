"""Finding record shared by the rule and check passes."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Finding:
    path: str        # repo-relative path
    line: int
    check: str       # "A1".."A4", "R1".."R6"
    rule: str        # finer-grained rule id, e.g. "A1.range-for"
    message: str
    function: str = ""   # enclosing function (baseline fingerprint stability)
    symbol: str = ""     # offending variable/container (fingerprint)

    def fingerprint(self) -> str:
        """Stable identity for the baseline: deliberately excludes the line
        number so unrelated edits above a finding don't churn the file."""
        return f"{self.path}::{self.check}::{self.function}::{self.symbol}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.check} {self.message}"
