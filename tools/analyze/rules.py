"""R1-R6 from the old regex lint, re-hosted on the token stream.

Same rules, same `// lint:allow(<token>)` escape hatch, but the matching
now happens on lexed tokens: a `rand(` inside a comment or a string
literal no longer fires, and `unordered_map` in a doc sentence is
invisible.  R3 stays file-level (it checks declarations in status.h and
a compiler flag in CMakeLists.txt).

  R1  wall-clock / OS randomness        allow token: wall-clock
  R2  unordered containers              allow token: unordered
  R4  raw Network::Call outside rpc/    allow token: raw-rpc
  R5  raw stdout/stderr prints          allow token: raw-print
  R6  by-value byte-vector params       allow token: byvalue-payload
"""

from __future__ import annotations

import pathlib
import re
from typing import List

from . import lexer
from .findings import Finding
from .lexer import IDENT, PREPROC, PUNCT, Token

_R1_CALLS = {"rand": "libc rand()", "srand": "libc srand()",
             "gettimeofday": "gettimeofday()", "clock_gettime": "clock_gettime()"}
_R1_NAMES = {"random_device": "std::random_device",
             "system_clock": "chrono system_clock",
             "steady_clock": "chrono steady_clock",
             "high_resolution_clock": "chrono high_resolution_clock"}
_R1_INCLUDE = re.compile(r'#\s*include\s*[<"]random[>"]')
_R2_NAMES = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}
_R5_CALLS = {"printf", "fprintf", "vfprintf", "puts", "putchar"}
_R5_STREAMS = {"cout", "cerr"}
_R6_ELEM = {"uint8_t", "int8_t", "char", "byte"}

_ALLOW_LINT = re.compile(r"lint:allow\(([a-z-]+)\)")
_ALLOW_ANALYZE = re.compile(r"analyze:allow\((A[1-4])\)")


def lint_allowed(lf: lexer.LexedFile, line: int, token: str) -> bool:
    m = _ALLOW_LINT.search(lf.comment_on(line))
    return bool(m) and m.group(1) == token


def analyze_allowed(lf: lexer.LexedFile, line: int, check: str) -> bool:
    m = _ALLOW_ANALYZE.search(lf.comment_on(line))
    return bool(m) and m.group(1) == check


def check_rules(lf: lexer.LexedFile, path: str, in_rpc_layer: bool,
                is_print_sink: bool) -> List[Finding]:
    toks = lf.tokens
    out: List[Finding] = []

    def add(line: int, rule_id: str, allow_token: str, msg: str,
            symbol: str) -> None:
        if not lint_allowed(lf, line, allow_token):
            out.append(Finding(path, line, rule_id.split(".")[0], rule_id, msg,
                               function="", symbol=symbol))

    for k, t in enumerate(toks):
        if t.kind == PREPROC:
            if _R1_INCLUDE.search(t.text):
                add(t.line, "R1.include-random", "wall-clock",
                    "nondeterministic source: #include <random>; every random "
                    "draw must come from the seeded cfs::Rng", "include<random>")
            continue
        if t.kind != IDENT:
            continue
        nxt = toks[k + 1] if k + 1 < len(toks) else None
        prev = toks[k - 1] if k > 0 else None
        # R1: forbidden calls / clock names.
        if t.text in _R1_CALLS and nxt is not None \
                and nxt.kind == PUNCT and nxt.text == "(" \
                and not (prev is not None and prev.kind == PUNCT
                         and prev.text in (".", "->")):
            add(t.line, "R1.wall-clock-call", "wall-clock",
                f"nondeterministic source: {_R1_CALLS[t.text]}; use the "
                "scheduler's virtual clock / seeded cfs::Rng", t.text)
        elif t.text in _R1_NAMES:
            add(t.line, "R1.wall-clock-name", "wall-clock",
                f"nondeterministic source: {_R1_NAMES[t.text]}; use the "
                "scheduler's virtual clock / seeded cfs::Rng", t.text)
        elif t.text == "time" and nxt is not None and nxt.kind == PUNCT \
                and nxt.text == "(" and k + 2 < len(toks) \
                and toks[k + 2].text in ("NULL", "nullptr", "0") \
                and not (prev is not None and prev.kind == PUNCT
                         and prev.text in (".", "->", "::")):
            add(t.line, "R1.wall-clock-call", "wall-clock",
                "nondeterministic source: time(NULL); use the scheduler's "
                "virtual clock", "time")
        # R2: unordered containers.
        elif t.text in _R2_NAMES:
            add(t.line, "R2.unordered", "unordered",
                "unordered container (iteration order breaks replay); use "
                "std::map/std::set or add // lint:allow(unordered)", t.text)
        # R4: raw transport call — net...->Call< / net...().Call<.
        elif not in_rpc_layer and t.text == "Call" and nxt is not None \
                and nxt.kind == PUNCT and nxt.text == "<":
            base = _member_base(toks, k)
            if base is not None and base.kind == IDENT \
                    and base.text.startswith("net"):
                add(t.line, "R4.raw-rpc", "raw-rpc",
                    "raw Network::Call outside src/rpc/; go through the rpc "
                    "service layer (rpc::Channel / typed stubs) or add "
                    "// lint:allow(raw-rpc)", base.text)
        # R5: raw console prints.
        elif not is_print_sink and t.text in _R5_CALLS and nxt is not None \
                and nxt.kind == PUNCT and nxt.text == "(" \
                and not (prev is not None and prev.kind == PUNCT
                         and prev.text in (".", "->")):
            add(t.line, "R5.raw-print", "raw-print",
                "raw stdout/stderr print in src/; use CFS_LOG "
                "(common/logging.h) or add // lint:allow(raw-print)", t.text)
        elif not is_print_sink and t.text in _R5_STREAMS \
                and prev is not None and prev.kind == PUNCT \
                and prev.text == "::" and k >= 2 and toks[k - 2].kind == IDENT \
                and toks[k - 2].text == "std":
            add(t.line, "R5.raw-print", "raw-print",
                f"raw std::{t.text} in src/; use CFS_LOG (common/logging.h) "
                "or add // lint:allow(raw-print)", t.text)
        # R6: by-value byte-vector parameter: vector<bytelike> NAME [,)]
        elif t.text == "vector" and nxt is not None and nxt.kind == PUNCT \
                and nxt.text == "<":
            close = _close_angle(toks, k + 1)
            if close is None:
                continue
            elem = [x for x in toks[k + 2 : close]
                    if not (x.kind == PUNCT and x.text == "::")
                    and x.text not in ("std", "unsigned")]
            if len(elem) == 1 and elem[0].kind == IDENT \
                    and elem[0].text in _R6_ELEM:
                after = toks[close + 1] if close + 1 < len(toks) else None
                after2 = toks[close + 2] if close + 2 < len(toks) else None
                if after is not None and after.kind == IDENT \
                        and after2 is not None and after2.kind == PUNCT \
                        and after2.text in (",", ")"):
                    add(t.line, "R6.byvalue-payload", "byvalue-payload",
                        "byte-vector parameter passed by value copies the "
                        "payload; take const&/string_view/cfs::Buffer or add "
                        "// lint:allow(byvalue-payload)", after.text)
    return out


def _member_base(toks, call_idx: int):
    """For `X -> Call` / `X . Call` / `X ( ) . Call`, the token X."""
    j = call_idx - 1
    if j < 0 or toks[j].kind != PUNCT or toks[j].text not in (".", "->"):
        return None
    j -= 1
    if j >= 1 and toks[j].kind == PUNCT and toks[j].text == ")" \
            and toks[j - 1].kind == PUNCT and toks[j - 1].text == "(":
        j -= 2  # accessor call: net().Call<
    return toks[j] if j >= 0 else None


def _close_angle(toks, open_idx: int):
    depth = 0
    for k in range(open_idx, min(open_idx + 64, len(toks))):
        t = toks[k]
        if t.kind == PUNCT:
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return k
    return None


def check_r3(root: pathlib.Path) -> List[Finding]:
    """R3 stays file-level: [[nodiscard]] on Status/Result and the
    -Werror=unused-result flag."""
    out: List[Finding] = []
    status_h = root / "src" / "common" / "status.h"
    if not status_h.is_file():
        out.append(Finding("src/common/status.h", 0, "R3", "R3.nodiscard",
                           "missing: src/common/status.h not found",
                           symbol="status.h"))
        return out
    text = status_h.read_text(encoding="utf-8")
    for cls in ("Status", "Result"):
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls + r"\b", text):
            out.append(Finding(
                "src/common/status.h", 0, "R3", "R3.nodiscard",
                f"cfs::{cls} must be declared `class [[nodiscard]] {cls}`",
                symbol=cls))
    cml = root / "CMakeLists.txt"
    if cml.is_file() and "-Werror=unused-result" not in cml.read_text(
            encoding="utf-8"):
        out.append(Finding(
            "CMakeLists.txt", 0, "R3", "R3.werror",
            "top-level CMakeLists.txt must pass -Werror=unused-result so "
            "ignored Status/Result calls fail the build",
            symbol="-Werror=unused-result"))
    return out
