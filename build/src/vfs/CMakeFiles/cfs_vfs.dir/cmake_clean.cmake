file(REMOVE_RECURSE
  "CMakeFiles/cfs_vfs.dir/vfs.cc.o"
  "CMakeFiles/cfs_vfs.dir/vfs.cc.o.d"
  "libcfs_vfs.a"
  "libcfs_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
