# Empty compiler generated dependencies file for cfs_vfs.
# This may be replaced when dependencies are built.
