file(REMOVE_RECURSE
  "libcfs_vfs.a"
)
