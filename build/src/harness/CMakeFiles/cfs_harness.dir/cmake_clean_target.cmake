file(REMOVE_RECURSE
  "libcfs_harness.a"
)
