file(REMOVE_RECURSE
  "CMakeFiles/cfs_harness.dir/cluster.cc.o"
  "CMakeFiles/cfs_harness.dir/cluster.cc.o.d"
  "CMakeFiles/cfs_harness.dir/workloads.cc.o"
  "CMakeFiles/cfs_harness.dir/workloads.cc.o.d"
  "libcfs_harness.a"
  "libcfs_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
