# Empty compiler generated dependencies file for cfs_harness.
# This may be replaced when dependencies are built.
