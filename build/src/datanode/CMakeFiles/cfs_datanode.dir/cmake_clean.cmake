file(REMOVE_RECURSE
  "CMakeFiles/cfs_datanode.dir/data_node.cc.o"
  "CMakeFiles/cfs_datanode.dir/data_node.cc.o.d"
  "CMakeFiles/cfs_datanode.dir/data_partition.cc.o"
  "CMakeFiles/cfs_datanode.dir/data_partition.cc.o.d"
  "libcfs_datanode.a"
  "libcfs_datanode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_datanode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
