file(REMOVE_RECURSE
  "libcfs_datanode.a"
)
