# Empty compiler generated dependencies file for cfs_datanode.
# This may be replaced when dependencies are built.
