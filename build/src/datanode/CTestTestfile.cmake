# CMake generated Testfile for 
# Source directory: /root/repo/src/datanode
# Build directory: /root/repo/build/src/datanode
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
