file(REMOVE_RECURSE
  "CMakeFiles/cfs_common.dir/crc32.cc.o"
  "CMakeFiles/cfs_common.dir/crc32.cc.o.d"
  "CMakeFiles/cfs_common.dir/logging.cc.o"
  "CMakeFiles/cfs_common.dir/logging.cc.o.d"
  "CMakeFiles/cfs_common.dir/status.cc.o"
  "CMakeFiles/cfs_common.dir/status.cc.o.d"
  "libcfs_common.a"
  "libcfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
