# Empty compiler generated dependencies file for cfs_kv.
# This may be replaced when dependencies are built.
