
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raft/log_store.cc" "src/raft/CMakeFiles/cfs_raft.dir/log_store.cc.o" "gcc" "src/raft/CMakeFiles/cfs_raft.dir/log_store.cc.o.d"
  "/root/repo/src/raft/raft_node.cc" "src/raft/CMakeFiles/cfs_raft.dir/raft_node.cc.o" "gcc" "src/raft/CMakeFiles/cfs_raft.dir/raft_node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
