# Empty compiler generated dependencies file for cfs_raft.
# This may be replaced when dependencies are built.
