file(REMOVE_RECURSE
  "CMakeFiles/cfs_raft.dir/log_store.cc.o"
  "CMakeFiles/cfs_raft.dir/log_store.cc.o.d"
  "CMakeFiles/cfs_raft.dir/raft_node.cc.o"
  "CMakeFiles/cfs_raft.dir/raft_node.cc.o.d"
  "libcfs_raft.a"
  "libcfs_raft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_raft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
