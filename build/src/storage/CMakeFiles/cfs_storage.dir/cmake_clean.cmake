file(REMOVE_RECURSE
  "CMakeFiles/cfs_storage.dir/extent_store.cc.o"
  "CMakeFiles/cfs_storage.dir/extent_store.cc.o.d"
  "libcfs_storage.a"
  "libcfs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
