file(REMOVE_RECURSE
  "libcfs_storage.a"
)
