# Empty dependencies file for cfs_storage.
# This may be replaced when dependencies are built.
