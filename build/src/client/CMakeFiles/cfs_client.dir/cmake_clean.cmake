file(REMOVE_RECURSE
  "CMakeFiles/cfs_client.dir/client.cc.o"
  "CMakeFiles/cfs_client.dir/client.cc.o.d"
  "libcfs_client.a"
  "libcfs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
