# Empty compiler generated dependencies file for cfs_client.
# This may be replaced when dependencies are built.
