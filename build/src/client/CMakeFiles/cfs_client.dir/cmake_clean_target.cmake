file(REMOVE_RECURSE
  "libcfs_client.a"
)
