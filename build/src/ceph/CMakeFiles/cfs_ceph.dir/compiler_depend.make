# Empty compiler generated dependencies file for cfs_ceph.
# This may be replaced when dependencies are built.
