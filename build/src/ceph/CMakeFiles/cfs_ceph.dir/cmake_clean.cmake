file(REMOVE_RECURSE
  "CMakeFiles/cfs_ceph.dir/ceph.cc.o"
  "CMakeFiles/cfs_ceph.dir/ceph.cc.o.d"
  "libcfs_ceph.a"
  "libcfs_ceph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_ceph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
