file(REMOVE_RECURSE
  "libcfs_ceph.a"
)
