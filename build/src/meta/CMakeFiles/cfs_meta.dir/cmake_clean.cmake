file(REMOVE_RECURSE
  "CMakeFiles/cfs_meta.dir/meta_node.cc.o"
  "CMakeFiles/cfs_meta.dir/meta_node.cc.o.d"
  "CMakeFiles/cfs_meta.dir/meta_partition.cc.o"
  "CMakeFiles/cfs_meta.dir/meta_partition.cc.o.d"
  "libcfs_meta.a"
  "libcfs_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
