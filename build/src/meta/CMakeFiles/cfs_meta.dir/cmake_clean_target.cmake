file(REMOVE_RECURSE
  "libcfs_meta.a"
)
