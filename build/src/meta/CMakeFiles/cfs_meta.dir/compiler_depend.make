# Empty compiler generated dependencies file for cfs_meta.
# This may be replaced when dependencies are built.
