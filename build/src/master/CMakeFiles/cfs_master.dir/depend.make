# Empty dependencies file for cfs_master.
# This may be replaced when dependencies are built.
