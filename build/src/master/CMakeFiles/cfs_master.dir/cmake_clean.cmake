file(REMOVE_RECURSE
  "CMakeFiles/cfs_master.dir/master.cc.o"
  "CMakeFiles/cfs_master.dir/master.cc.o.d"
  "libcfs_master.a"
  "libcfs_master.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
