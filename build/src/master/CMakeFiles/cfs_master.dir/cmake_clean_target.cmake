file(REMOVE_RECURSE
  "libcfs_master.a"
)
