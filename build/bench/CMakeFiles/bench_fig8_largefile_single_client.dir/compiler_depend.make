# Empty compiler generated dependencies file for bench_fig8_largefile_single_client.
# This may be replaced when dependencies are built.
