
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_largefile_single_client.cc" "bench/CMakeFiles/bench_fig8_largefile_single_client.dir/bench_fig8_largefile_single_client.cc.o" "gcc" "bench/CMakeFiles/bench_fig8_largefile_single_client.dir/bench_fig8_largefile_single_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/cfs_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/cfs_client.dir/DependInfo.cmake"
  "/root/repo/build/src/master/CMakeFiles/cfs_master.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/cfs_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/cfs_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/datanode/CMakeFiles/cfs_datanode.dir/DependInfo.cmake"
  "/root/repo/build/src/raft/CMakeFiles/cfs_raft.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/cfs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ceph/CMakeFiles/cfs_ceph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
