file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_largefile_single_client.dir/bench_fig8_largefile_single_client.cc.o"
  "CMakeFiles/bench_fig8_largefile_single_client.dir/bench_fig8_largefile_single_client.cc.o.d"
  "bench_fig8_largefile_single_client"
  "bench_fig8_largefile_single_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_largefile_single_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
