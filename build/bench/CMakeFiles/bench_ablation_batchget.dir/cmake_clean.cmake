file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batchget.dir/bench_ablation_batchget.cc.o"
  "CMakeFiles/bench_ablation_batchget.dir/bench_ablation_batchget.cc.o.d"
  "bench_ablation_batchget"
  "bench_ablation_batchget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batchget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
