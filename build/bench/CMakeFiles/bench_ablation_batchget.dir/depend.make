# Empty dependencies file for bench_ablation_batchget.
# This may be replaced when dependencies are built.
