# Empty dependencies file for bench_fig10_small_files.
# This may be replaced when dependencies are built.
