# Empty dependencies file for bench_ablation_raftset.
# This may be replaced when dependencies are built.
