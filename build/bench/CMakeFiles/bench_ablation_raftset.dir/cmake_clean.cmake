file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_raftset.dir/bench_ablation_raftset.cc.o"
  "CMakeFiles/bench_ablation_raftset.dir/bench_ablation_raftset.cc.o.d"
  "bench_ablation_raftset"
  "bench_ablation_raftset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_raftset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
