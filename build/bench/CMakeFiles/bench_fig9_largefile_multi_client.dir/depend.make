# Empty dependencies file for bench_fig9_largefile_multi_client.
# This may be replaced when dependencies are built.
