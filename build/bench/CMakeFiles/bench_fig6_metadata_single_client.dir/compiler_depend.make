# Empty compiler generated dependencies file for bench_fig6_metadata_single_client.
# This may be replaced when dependencies are built.
