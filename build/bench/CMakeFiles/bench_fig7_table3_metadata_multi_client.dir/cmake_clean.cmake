file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_table3_metadata_multi_client.dir/bench_fig7_table3_metadata_multi_client.cc.o"
  "CMakeFiles/bench_fig7_table3_metadata_multi_client.dir/bench_fig7_table3_metadata_multi_client.cc.o.d"
  "bench_fig7_table3_metadata_multi_client"
  "bench_fig7_table3_metadata_multi_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_table3_metadata_multi_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
