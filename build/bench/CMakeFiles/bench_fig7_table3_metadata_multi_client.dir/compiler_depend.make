# Empty compiler generated dependencies file for bench_fig7_table3_metadata_multi_client.
# This may be replaced when dependencies are built.
