file(REMOVE_RECURSE
  "CMakeFiles/small_file_store.dir/small_file_store.cpp.o"
  "CMakeFiles/small_file_store.dir/small_file_store.cpp.o.d"
  "small_file_store"
  "small_file_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_file_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
