# Empty compiler generated dependencies file for small_file_store.
# This may be replaced when dependencies are built.
