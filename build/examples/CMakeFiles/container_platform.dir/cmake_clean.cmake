file(REMOVE_RECURSE
  "CMakeFiles/container_platform.dir/container_platform.cpp.o"
  "CMakeFiles/container_platform.dir/container_platform.cpp.o.d"
  "container_platform"
  "container_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
