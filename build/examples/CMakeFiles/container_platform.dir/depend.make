# Empty dependencies file for container_platform.
# This may be replaced when dependencies are built.
