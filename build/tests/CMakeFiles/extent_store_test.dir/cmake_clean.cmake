file(REMOVE_RECURSE
  "CMakeFiles/extent_store_test.dir/extent_store_test.cc.o"
  "CMakeFiles/extent_store_test.dir/extent_store_test.cc.o.d"
  "extent_store_test"
  "extent_store_test.pdb"
  "extent_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extent_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
