# Empty compiler generated dependencies file for extent_store_test.
# This may be replaced when dependencies are built.
