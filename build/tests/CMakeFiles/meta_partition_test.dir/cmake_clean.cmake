file(REMOVE_RECURSE
  "CMakeFiles/meta_partition_test.dir/meta_partition_test.cc.o"
  "CMakeFiles/meta_partition_test.dir/meta_partition_test.cc.o.d"
  "meta_partition_test"
  "meta_partition_test.pdb"
  "meta_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
