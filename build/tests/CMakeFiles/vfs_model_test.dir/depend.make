# Empty dependencies file for vfs_model_test.
# This may be replaced when dependencies are built.
