file(REMOVE_RECURSE
  "CMakeFiles/vfs_model_test.dir/vfs_model_test.cc.o"
  "CMakeFiles/vfs_model_test.dir/vfs_model_test.cc.o.d"
  "vfs_model_test"
  "vfs_model_test.pdb"
  "vfs_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
