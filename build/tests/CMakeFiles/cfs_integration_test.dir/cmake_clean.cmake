file(REMOVE_RECURSE
  "CMakeFiles/cfs_integration_test.dir/cfs_integration_test.cc.o"
  "CMakeFiles/cfs_integration_test.dir/cfs_integration_test.cc.o.d"
  "cfs_integration_test"
  "cfs_integration_test.pdb"
  "cfs_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
