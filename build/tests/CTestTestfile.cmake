# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/extent_store_test[1]_include.cmake")
include("/root/repo/build/tests/meta_partition_test[1]_include.cmake")
include("/root/repo/build/tests/cfs_integration_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_test[1]_include.cmake")
include("/root/repo/build/tests/ceph_test[1]_include.cmake")
include("/root/repo/build/tests/vfs_model_test[1]_include.cmake")
include("/root/repo/build/tests/fault_injection_test[1]_include.cmake")
