#!/usr/bin/env python3
"""Fixture corpus for tools/analyze, run under ctest.

Every fixture line carrying an `// analyze-expect(<CHECK>)` marker must
produce at least that finding ON THAT LINE, and no fixture may produce a
finding on an unmarked line.  *_good.cc fixtures carry no markers, so any
finding in them is a false positive and fails the test.  The run also
asserts R3 (file-level: [[nodiscard]] + -Werror=unused-result) holds for
the real tree, since analyze_tree() evaluates it on every invocation.

Usage: run_fixtures.py [repo_root]
"""

import pathlib
import re
import sys

_EXPECT = re.compile(r"analyze-expect\((A[1-4]|R[1-6])\)")


def main() -> int:
    here = pathlib.Path(__file__).resolve().parent
    root = pathlib.Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else \
        here.parent.parent
    sys.path.insert(0, str(root))
    from tools.analyze import engine

    fixtures = sorted((here / "fixtures").glob("*.cc"))
    if not fixtures:
        print("FAIL: no fixtures found")
        return 1

    failures = []
    for fx in fixtures:
        expected = {}  # line -> set of checks
        for num, text in enumerate(fx.read_text(encoding="utf-8").splitlines(),
                                   start=1):
            for m in _EXPECT.finditer(text):
                expected.setdefault(num, set()).add(m.group(1))

        rel = str(fx.relative_to(root))
        got = {}
        for f in engine.analyze_tree(root, [fx]):
            if f.path == rel:
                got.setdefault(f.line, set()).add(f.check)
            elif f.check != "R3":
                failures.append(f"{fx.name}: stray finding outside fixture: "
                                f"{f.render()}")
            else:
                failures.append(f"R3 violated on the real tree: {f.render()}")

        for line, checks in sorted(expected.items()):
            missing = checks - got.get(line, set())
            for c in sorted(missing):
                failures.append(f"{fx.name}:{line}: expected {c}, not reported")
        for line, checks in sorted(got.items()):
            surplus = checks - expected.get(line, set())
            for c in sorted(surplus):
                failures.append(f"{fx.name}:{line}: unexpected {c} finding "
                                "(false positive)")

    if failures:
        for msg in failures:
            print("FAIL:", msg)
        print(f"analyze fixtures: {len(failures)} failure(s)")
        return 1
    print(f"analyze fixtures: {len(fixtures)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
