// A4 negative fixtures: checked, returned, and explicitly-voided Status
// values.
#include "common/status.h"

using cfs::Status;

class Svc {
 public:
  Status Poke();
  Status Prod();

  Status CheckedLocal() {
    Status st = Poke();
    if (!st.ok()) return st;
    return Prod();
  }

  void ExplicitDiscard() {
    (void)Poke();  // sanctioned: the discard is visible and deliberate
  }

  Status TernaryReturned(bool fast) {
    return fast ? Poke() : Prod();  // the result is consumed
  }
};
