// A1 fixtures: references/iterators/interior pointers into mutable
// containers held live across a suspension point.  Each marked line must
// produce exactly one A1 finding.
#include <map>
#include <vector>

#include "sim/task.h"

class Svc {
 public:
  sim::Task<void> IterAcrossAwait() {
    auto it = table_.find(7);  // analyze-expect(A1)
    if (it == table_.end()) co_return;
    co_await Tick();
    it->second++;
  }

  sim::Task<void> ElementRefAcrossAwait() {
    int& slot = table_[3];  // analyze-expect(A1)
    co_await Tick();
    slot++;
  }

  sim::Task<void> RangeForAcrossAwait() {
    for (const auto& [k, v] : table_) {  // analyze-expect(A1)
      co_await Tick();
    }
  }

  sim::Task<void> InteriorPointerVector() {
    std::vector<const int*> ptrs;
    for (const auto& [k, v] : table_) ptrs.push_back(&v);
    for (const int* p : ptrs) {  // analyze-expect(A1)
      co_await Tick();
      Use(*p);
    }
  }

  sim::Task<void> Tick();
  void Use(int);

 private:
  std::map<int, int> table_;
};
