// A4 fixtures: Status/Result discards that [[nodiscard]] cannot see —
// results laundered through ternaries/commas and dead Status locals.
#include "common/status.h"

using cfs::Status;

class Svc {
 public:
  Status Poke();
  Status Prod();

  void LaunderedThroughTernary(bool fast) {
    fast ? Poke() : Prod();  // analyze-expect(A4)
  }

  void LaunderedThroughComma() {
    Poke(), Prod();  // analyze-expect(A4)
  }

  void DeadStatusLocal() {
    Status st = Poke();  // analyze-expect(A4)
    counter_++;
  }

 private:
  int counter_ = 0;
};
