// A2 fixtures: deferred-event lambdas and coroutine lambdas whose captures
// outlive the frame they point into.
#include "sim/scheduler.h"
#include "sim/task.h"

class Svc {
 public:
  void DeferredThisCapture() {
    sched_->After(10, [this]() { counter_++; });  // analyze-expect(A2)
  }

  void DeferredRefCapture() {
    int local = 0;
    sched_->At(99, [&local]() { local++; });  // analyze-expect(A2)
  }

  void CoroutineRefCapture() {
    int local = 0;
    auto t = [&local]() -> sim::Task<void> {  // analyze-expect(A2)
      co_await Tick();
      local++;
    };
    Spawn(t());
  }

  void CoroutineCaptureInvoked() {
    int local = 0;
    Spawn([local, this]() -> sim::Task<void> {  // analyze-expect(A2)
      co_await Tick();
      Use(local);
    }());
  }

  sim::Task<void> Tick();
  void Use(int);

 private:
  sim::Scheduler* sched_;
  int counter_ = 0;
};
