// R1/R2/R4/R5/R6 fixtures: one marked violation per rule (R3 is file-level
// and validated against the real tree by the runner).
#include <cstdio>
#include <random>  // analyze-expect(R1)
#include <unordered_map>
#include <vector>

#include "sim/network.h"

class Svc {
 public:
  void WallClock() {
    int r = rand();  // analyze-expect(R1)
    std::random_device rd;  // analyze-expect(R1)
    (void)r;
    (void)rd;
  }

  void Unordered() {
    std::unordered_map<int, int> m;  // analyze-expect(R2)
    m[1] = 2;
  }

  void RawRpc() {
    net_->Call<int>(7);  // analyze-expect(R4)
  }

  void RawPrint() {
    printf("debug\n");  // analyze-expect(R5)
  }

  void ByValuePayload(std::vector<uint8_t> payload) {}  // analyze-expect(R6)

 private:
  sim::Network* net_;
};
