// A3 negative fixtures: stable-id keys, pointer-to-pointer casts, and
// integer (fixed-point) accumulation.
#include <cstdint>
#include <map>
#include <vector>

struct Conn {
  int id;
};

class Svc {
 public:
  void StableIdKeyedMap() {
    std::map<uint64_t, int> by_id;
    by_id[7] = 0;
  }

  Conn* PointerToPointerCast(void* raw) {
    return reinterpret_cast<Conn*>(raw);  // stays a pointer: no ordering leak
  }

  uint64_t FixedPointAccumulation(const std::vector<double>& xs) {
    uint64_t sum = 0;
    for (double x : xs) {
      sum += static_cast<uint64_t>(x * 1e12);  // exact integer addition
    }
    return sum;
  }
};
