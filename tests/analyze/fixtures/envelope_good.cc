// A1.pooled negative fixtures: safe Envelope handling patterns that must
// produce zero findings.
#include <utility>

#include "sim/task.h"

struct Payload {
  int x = 0;
};

struct Envelope;
struct EnvelopePool {
  Envelope* Make();
  void Free(Envelope*);
  Payload Take(Envelope*);
};

class Transport {
 public:
  // The payload moves out of the pooled node before the suspension: only a
  // by-value copy crosses the co_await.
  sim::Task<void> TakeBeforeAwait(Envelope* incoming) {
    Payload p = pool_.Take(incoming);
    co_await Tick();
    Use(p);
  }

  // The envelope pointer is consumed synchronously; nothing pooled is live
  // after the suspension.
  sim::Task<void> FreeBeforeAwait() {
    Envelope* env = pool_.Make();
    pool_.Free(env);
    co_await Tick();
  }

  // A plain (non-pooled) pointer value copy stays exempt from A1.
  sim::Task<void> PlainPointerAcrossAwait(Payload* stable) {
    Payload* p = stable;
    co_await Tick();
    Use(*p);
  }

  sim::Task<void> Tick();
  void Use(Payload);
  void Use(const Payload&);

 private:
  EnvelopePool pool_;
};
